package energydb

import (
	"math"
	"testing"
)

func newTestLab(t *testing.T) *Lab {
	t.Helper()
	lab, err := NewLab(LabConfig{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestLabCalibrationRecoversTable2(t *testing.T) {
	lab := newTestLab(t)
	d := lab.Calibration.DeltaE
	if math.Abs(d.L1D-1.30)/1.30 > 0.08 {
		t.Fatalf("ΔE_L1D = %.3f, want ~1.30", d.L1D)
	}
	if math.Abs(d.Mem-103.1)/103.1 > 0.10 {
		t.Fatalf("ΔE_mem = %.2f, want ~103.1", d.Mem)
	}
}

func TestLabVerifyAccuracy(t *testing.T) {
	lab := newTestLab(t)
	results := lab.Verify()
	if len(results) != 7 {
		t.Fatalf("verification rows = %d, want 7", len(results))
	}
	for _, v := range results {
		if v.Accuracy < 0.85 {
			t.Errorf("%s accuracy %.1f%% below the Table 3 regime", v.Name, v.Accuracy*100)
		}
	}
}

// TestHeadlineResult checks the paper's central claim end-to-end through
// the public API: for query workloads, E_L1D + E_Reg2L1D is 39%–67% of
// Active energy, with SQLite at the high end.
func TestHeadlineResult(t *testing.T) {
	lab := newTestLab(t)
	q, err := QueryByID(1)
	if err != nil {
		t.Fatal(err)
	}
	shares := map[EngineKind]float64{}
	for _, kind := range []EngineKind{PostgreSQL, SQLite, MySQL} {
		e := lab.NewEngine(kind, SettingBaseline, Size10MB)
		b, err := lab.ProfileQuery(e, q)
		if err != nil {
			t.Fatal(err)
		}
		shares[kind] = b.L1DShare()
	}
	for kind, s := range shares {
		if s < 0.30 || s > 0.72 {
			t.Errorf("%v L1D share = %.1f%%, outside the paper's 39–67%% band (±tolerance)", kind, s*100)
		}
	}
	if !(shares[SQLite] > shares[PostgreSQL] && shares[SQLite] > shares[MySQL]) {
		t.Errorf("SQLite should have the highest L1D share: %v", shares)
	}
}

func TestExperimentRegistryThroughFacade(t *testing.T) {
	if len(Experiments()) != 21 {
		t.Fatalf("experiments = %d, want 21", len(Experiments()))
	}
	exp, err := ExperimentByID("T1")
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultExperimentOptions()
	o.Quick = true
	res, err := exp.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text == "" || res.CSV == "" {
		t.Fatal("experiment produced no output")
	}
}

func TestDTCMFacade(t *testing.T) {
	saving, perf := DTCMPeakSaving(100)
	if saving < 0.05 || saving > 0.15 {
		t.Fatalf("peak saving = %.1f%%, want ~10%%", saving*100)
	}
	if math.Abs(perf) > 0.01 {
		t.Fatalf("peak perf delta = %v, want ~0", perf)
	}
	m := NewARMMachine()
	e := newARMSQLite(t, m)
	cd, err := OptimizeSQLiteDTCM(e, []string{"lineitem"})
	if err != nil {
		t.Fatal(err)
	}
	if cd.BufferFrames == 0 || cd.BTreeNodes == 0 {
		t.Fatalf("co-design placed nothing: %+v", cd)
	}
}

func newARMSQLite(t *testing.T, m *Machine) *Engine {
	t.Helper()
	lab := &Lab{Machine: m}
	return lab.NewEngine(SQLite, SettingSmall, Size10MB)
}

func TestProfileFunc(t *testing.T) {
	lab := newTestLab(t)
	b := lab.ProfileFunc("busy", func(m *Machine) {
		for _, w := range CPU2006Workloads() {
			if w.Name == "Gobmk" {
				w.Run(m, 0.01)
			}
		}
	})
	if b.EActive <= 0 {
		t.Fatalf("EActive = %v", b.EActive)
	}
}

func TestTraceFacade(t *testing.T) {
	lab := newTestLab(t)
	tr := CaptureTrace(lab.Machine, func() {
		lab.Machine.Hier.Load(0x40, false)
		lab.Machine.Hier.Store(0x80)
	})
	if tr.Len() != 2 {
		t.Fatalf("trace len = %d", tr.Len())
	}
	other, err := NewLab(LabConfig{Scale: 0.02, Noise: -1})
	if err != nil {
		t.Fatal(err)
	}
	before := other.Machine.Hier.Counters()
	ReplayTrace(tr, other.Machine)
	d := other.Machine.Hier.Counters().Sub(before)
	if d.Loads != 1 || d.Stores != 1 {
		t.Fatalf("replay delta = %+v", d)
	}
}
