package energydb

// The benchmark harness regenerates every table and figure of the paper's
// evaluation as testing.B targets (quick-sweep configurations so a full
// `go test -bench=.` completes on a laptop; run cmd/energyprof for the
// full-length versions), plus component micro-benchmarks of the simulator
// substrate and the ablation benches called out in DESIGN.md.
//
// Each paper-artifact benchmark prints its regenerated table once.

import (
	"fmt"
	"sync"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/harness"
	"energydb/internal/memsim"
	"energydb/internal/mubench"
	"energydb/internal/rapl"
	"energydb/internal/tcm"
	"energydb/internal/tpch"

	"energydb/internal/core"
)

var printedTables sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := harness.DefaultOptions()
	opts.Quick = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printedTables.LoadOrStore(id, true); !done {
			b.StopTimer()
			fmt.Printf("\n%s\n", res.Text)
			b.StartTimer()
		}
	}
}

// Paper artifacts: one benchmark per table and figure.

func BenchmarkTable1(b *testing.B)  { runExperiment(b, "T1") }
func BenchmarkTable2(b *testing.B)  { runExperiment(b, "T2") }
func BenchmarkTable3(b *testing.B)  { runExperiment(b, "T3") }
func BenchmarkTable5(b *testing.B)  { runExperiment(b, "T5") }
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "F5") }
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "F6") }
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "F7") }
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "F8") }
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "F9") }

func BenchmarkFigure10(b *testing.B) { runExperiment(b, "F10") }
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "F11") }
func BenchmarkFigure13(b *testing.B) { runExperiment(b, "F13") }

// Substrate micro-benchmarks: raw simulator throughput.

func BenchmarkHierarchyLoadL1DHit(b *testing.B) {
	h := memsim.New(memsim.I7_4790())
	h.Load(0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(0, false)
	}
}

func BenchmarkHierarchyLoadStream(b *testing.B) {
	h := memsim.New(memsim.I7_4790())
	h.SetPrefetchEnabled(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(uint64(i)*memsim.LineSize, false)
	}
}

func BenchmarkHierarchyLoadRandomDRAM(b *testing.B) {
	h := memsim.New(memsim.I7_4790())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(uint64(i*2654435761)%(256<<20), true)
	}
}

func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		meter := rapl.NewMeter(m, 1, 0)
		r := mubench.NewRunner(m, meter)
		r.Scale = 0.02
		r.Repetitions = 1
		if _, err := core.Calibrate(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPCHQ1SQLite(b *testing.B) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	tpch.Setup(e, tpch.Size10MB)
	q, err := tpch.QueryByID(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := q.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPCHQ3HashJoinPostgreSQL(b *testing.B) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.PostgreSQL, m, engine.SettingBaseline)
	tpch.Setup(e, tpch.Size10MB)
	q, err := tpch.QueryByID(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := q.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches (DESIGN.md section 6).

// BenchmarkAblationPrefetcher quantifies what the L2 streamer is worth to a
// scan-heavy query: the same plan runs with the prefetcher on and off, and
// the stall-cycle ratio is reported as a custom metric.
func BenchmarkAblationPrefetcher(b *testing.B) {
	run := func(on bool) float64 {
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		e := engine.New(engine.SQLite, m, engine.SettingBaseline)
		tpch.Setup(e, tpch.Size10MB)
		m.Hier.SetPrefetchEnabled(on)
		q, err := tpch.QueryByID(6)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := q.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
		before := m.Hier.Counters()
		plan, err = q.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
		return float64(m.Hier.Counters().Sub(before).StallCycles)
	}
	var withPf, withoutPf float64
	for i := 0; i < b.N; i++ {
		withPf = run(true)
		withoutPf = run(false)
	}
	if withPf > 0 {
		b.ReportMetric(withoutPf/withPf, "stall-ratio-off/on")
	}
}

// BenchmarkAblationDTCMBudget sweeps how the 32KB DTCM budget split between
// the three co-design strategies affects the saving: all-specials vs the
// paper's 16/4/12KB split (buffer/specials/B-tree).
func BenchmarkAblationDTCMBudget(b *testing.B) {
	measure := func(tables []string) float64 {
		run := func(optimize bool) float64 {
			m := tcm.NewMachine()
			meter := rapl.NewPowerMeter(m, 7, 0)
			e := engine.New(engine.SQLite, m, engine.SettingSmall)
			tpch.Setup(e, tpch.Size10MB)
			if optimize {
				if _, err := tcm.OptimizeSQLite(e, tables); err != nil {
					b.Fatal(err)
				}
			}
			q, err := tpch.QueryByID(6)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := q.Build(e)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(plan); err != nil {
				b.Fatal(err)
			}
			plan, err = q.Build(e)
			if err != nil {
				b.Fatal(err)
			}
			j, _ := meter.MeasureSession(func() {
				if _, err := e.Run(plan); err != nil {
					b.Fatal(err)
				}
			})
			return j
		}
		return 1 - run(true)/run(false)
	}
	var lineitemOnly, allTables float64
	for i := 0; i < b.N; i++ {
		lineitemOnly = measure([]string{"lineitem"})
		allTables = measure([]string{"lineitem", "orders", "customer", "part", "supplier"})
	}
	b.ReportMetric(lineitemOnly*100, "saving%-btree-lineitem")
	b.ReportMetric(allTables*100, "saving%-btree-split")
}

// BenchmarkAblationL1DPrefetcher enables the PMU-invisible L1D next-line
// prefetcher (the paper: the i7-4790's L1D prefetchers "cannot support the
// performance counter") and reports how much true energy becomes invisible
// to the Eq. 1 model on a scan query — one source of the paper's <100%
// verification accuracy.
func BenchmarkAblationL1DPrefetcher(b *testing.B) {
	var hiddenShare float64
	for i := 0; i < b.N; i++ {
		prof := cpusim.IntelI7_4790()
		prof.Mem.Prefetch.L1DNextLine = true
		m := cpusim.NewMachine(prof)
		e := engine.New(engine.SQLite, m, engine.SettingBaseline)
		tpch.Setup(e, tpch.Size10MB)
		m.Hier.SetPrefetchEnabled(true)
		q, err := tpch.QueryByID(6)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := q.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
		before := m.Hier.Counters()
		plan, err = q.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
		d := m.Hier.Counters().Sub(before)
		table := prof.Energy
		hidden := table.PerOp(cpusim.OpL2, m.PState()) * float64(d.UncountedL1DPf)
		visible := table.Active(d, m.PState()).Total() * 1e9
		if visible > 0 {
			hiddenShare = hidden / visible * 100
		}
	}
	b.ReportMetric(hiddenShare, "hidden-energy-%")
}

// BenchmarkAblationFillPolicy quantifies the step-by-step replication
// strategy (Figure 2) against a direct-to-L1 fill: replication costs more
// fill traffic but keeps copies in L2/L3, so re-references stay close.
// Reported metrics compare true active energy and stall cycles for a scan
// query under both policies.
func BenchmarkAblationFillPolicy(b *testing.B) {
	run := func(direct bool) (energy float64, stalls uint64) {
		prof := cpusim.IntelI7_4790()
		prof.Mem.DirectFill = direct
		m := cpusim.NewMachine(prof)
		e := engine.New(engine.PostgreSQL, m, engine.SettingBaseline)
		// The policy only matters when re-references land in L2/L3:
		// an index scan over the 100MB class has exactly that reuse.
		tpch.Setup(e, tpch.Size100MB)
		op, err := tpch.BasicOpByName("index scan")
		if err != nil {
			b.Fatal(err)
		}
		plan, err := op.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
		before := m.Hier.Counters()
		e0 := m.ActiveEnergy().Total()
		plan, err = op.Build(e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(plan); err != nil {
			b.Fatal(err)
		}
		return m.ActiveEnergy().Total() - e0, m.Hier.Counters().Sub(before).StallCycles
	}
	var eRepl, eDirect float64
	var sRepl, sDirect uint64
	for i := 0; i < b.N; i++ {
		eRepl, sRepl = run(false)
		eDirect, sDirect = run(true)
	}
	if eRepl > 0 && sRepl > 0 {
		b.ReportMetric(eDirect/eRepl, "energy-direct/repl")
		b.ReportMetric(float64(sDirect)/float64(sRepl), "stall-direct/repl")
	}
}

// BenchmarkAblationEngineOverhead contrasts the three engine cost models on
// the identical plan shape, reporting instructions per returned row.
func BenchmarkAblationEngineOverhead(b *testing.B) {
	for _, kind := range engine.Kinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			m := cpusim.NewMachine(cpusim.IntelI7_4790())
			e := engine.New(kind, m, engine.SettingBaseline)
			tpch.Setup(e, tpch.Size10MB)
			q, err := tpch.QueryByID(1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var instr, rows uint64
			for i := 0; i < b.N; i++ {
				plan, err := q.Build(e)
				if err != nil {
					b.Fatal(err)
				}
				before := m.Hier.Counters()
				n, err := e.Run(plan)
				if err != nil {
					b.Fatal(err)
				}
				instr += m.Hier.Counters().Sub(before).Instructions()
				rows += uint64(n)
			}
			lines := m.Hier.Counters()
			_ = lines
			if rows > 0 {
				b.ReportMetric(float64(instr)/float64(b.N), "instr/query")
			}
		})
	}
}
