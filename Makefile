# Build/verify entry points. `make check` is the gate for server-layer
# changes: vet everything, run the full test suite, then re-run the
# concurrency surface (server + db) under the race detector.

GO ?= go

.PHONY: all build test vet staticcheck race check bench fuzz smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skipped with a notice when the binary is not
# installed (CI installs it; local runs stay dependency-free).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The race-detector pass covers the packages with real concurrency: the
# server (sessions, scheduler, ledgers) and the engine layers it drives.
race:
	$(GO) test -race ./internal/server/... ./internal/db/...

check: vet staticcheck test race

# End-to-end observability smoke: boots energyd with -metrics-addr, runs
# statements over the wire (incl. \stats), scrapes /metrics and greps the
# core metric families with live values.
smoke:
	./scripts/smoke.sh

# Scaling baseline for future PRs (see internal/server/bench_test.go).
bench:
	$(GO) test -run xxx -bench BenchmarkServerThroughput -benchtime 2s ./internal/server/

# Short fuzz pass over every fuzz target: the SQL parser (raw client text),
# the planner pipeline (parse → optimize → build → execute), and both
# wire-protocol surfaces. FUZZTIME is overridable for CI smoke runs.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/db/sql/
	$(GO) test -run xxx -fuzz FuzzPlan -fuzztime $(FUZZTIME) ./internal/db/plan/
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/server/wire/
	$(GO) test -run xxx -fuzz FuzzQueryRoundTrip -fuzztime $(FUZZTIME) ./internal/server/wire/
