# Build/verify entry points. `make check` is the gate for server-layer
# changes: vet everything, run energylint, run the full test suite, then
# re-run everything under the race detector.

GO ?= go

.PHONY: all build test vet lint lint-bench staticcheck vulncheck race check golden-drift bench bench-txn bench-join fuzz smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# energylint: the project's own stdlib-only analyzer suite (see DESIGN.md
# §10 and §15). The whole module is type-checked once and shared by all
# analyzers — including the CFG/dataflow chargeflow suite — so a full run
# stays in single-digit seconds.
lint:
	$(GO) run ./cmd/energylint ./...

# Budget gate for the analyzer suite itself: the full-repo run (load +
# type-check + all analyzers, chargeflow CFG fixpoint included) must stay
# under 10 seconds so `make lint` remains a pre-commit habit rather than
# a CI-only chore. Uses the prebuilt binary so the budget measures
# analysis, not compilation.
lint-bench:
	@$(GO) build -o /tmp/energylint-bench ./cmd/energylint && \
	start=$$(date +%s%N) && /tmp/energylint-bench ./... && end=$$(date +%s%N) && \
	ms=$$(( (end - start) / 1000000 )) && \
	echo "lint-bench: full-repo analyzer run took $$ms ms (budget 10000 ms)" && \
	if [ $$ms -gt 10000 ]; then echo "lint-bench: over budget"; exit 1; fi

# Static analysis beyond vet. Skipped with a notice when the binary is not
# installed (CI installs it; local runs stay dependency-free).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Known-vulnerability scan. Skipped with a notice when the binary is not
# installed, same policy as staticcheck (the module has zero dependencies,
# so this effectively audits the Go standard library version).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The race-detector pass covers the whole module; no package is carved
# out. -short skips only the single-goroutine simulation sweeps (harness
# figures/tables, tpch goldens), which have nothing for the race detector
# to observe but would dominate the instrumented wall clock. The server
# package's instrumented concurrency matrix alone runs ~11 minutes on a
# single-core host, so the per-package timeout is raised past Go's 10m
# default rather than letting slow machines fail spuriously.
race:
	$(GO) test -race -short -timeout 30m ./...

# Golden-drift gate: regenerate every EXPLAIN golden into a scratch
# directory and diff it against the committed set. TestExplainGolden already
# fails on drift in `make test`; this target additionally catches a stale or
# hand-edited committed golden (the regenerated set is the single source of
# truth) and prints the full diff in one place.
golden-drift:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	EXPLAIN_GOLDEN_DIR="$$tmp" $(GO) test ./internal/tpch -run TestExplainGolden -update >/dev/null && \
	if diff -ru internal/tpch/testdata/explain "$$tmp"; then \
		echo "golden-drift: EXPLAIN goldens match regenerated plans"; \
	else \
		echo "golden-drift: committed goldens differ from regenerated plans (see diff above)"; exit 1; \
	fi

check: vet lint staticcheck test golden-drift race

# End-to-end observability smoke: boots energyd with -metrics-addr, runs
# statements over the wire (incl. \stats), scrapes /metrics and greps the
# core metric families with live values.
smoke:
	./scripts/smoke.sh

# Scaling baselines for future PRs: end-to-end server throughput
# (internal/server/bench_test.go -> BENCH_server.json) and the row-versus-
# vector executor sweep (internal/db/vec/bench_test.go -> BENCH_vector.json).
bench:
	$(GO) test -run xxx -bench BenchmarkServerThroughput -benchtime 2s ./internal/server/
	$(GO) test -run xxx -bench BenchmarkVectorThroughput -benchtime 1s ./internal/db/vec/
	$(GO) test -run xxx -bench BenchmarkVectorJoinSort -benchtime 1s ./internal/db/vec/

# Mixed reader/writer slice of the server matrix only: 16 sessions over 4
# workers with 2/8/16 of them running explicit update transactions. This
# is the CI smoke for the MVCC transaction path — it drives BEGIN/COMMIT
# frames, write-write conflict machinery, and WAL group commit end to end,
# and refreshes just those cells of BENCH_server.json. BENCHTIME is
# overridable so CI can keep it short.
BENCHTIME ?= 1s

bench-txn:
	$(GO) test -run xxx -bench 'BenchmarkServerThroughput/mixed' -benchtime $(BENCHTIME) ./internal/server/

# Join/sort slice of the vector sweep only: lineitem ⋈ orders through the
# row and batch hash joins plus the two-key lineitem sort, at batch widths
# 64/256/1024. Merges just those cells into BENCH_vector.json (the
# filter_agg slice is left untouched), so partial reruns are safe.
bench-join:
	$(GO) test -run xxx -bench BenchmarkVectorJoinSort -benchtime $(BENCHTIME) ./internal/db/vec/

# Short fuzz pass over every fuzz target: the SQL parser (raw client text),
# the planner pipeline (parse → optimize → build → execute), the row-versus-
# vector differential executor, and both wire-protocol surfaces. FUZZTIME is
# overridable for CI smoke runs.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/db/sql/
	$(GO) test -run xxx -fuzz FuzzPlan -fuzztime $(FUZZTIME) ./internal/db/plan/
	$(GO) test -run xxx -fuzz FuzzVecExec -fuzztime $(FUZZTIME) ./internal/db/vec/
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/server/wire/
	$(GO) test -run xxx -fuzz FuzzQueryRoundTrip -fuzztime $(FUZZTIME) ./internal/server/wire/
