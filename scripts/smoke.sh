#!/bin/sh
# Observability smoke test: build energyd + dbshell, start the daemon with a
# metrics listener, run a few statements through the wire protocol, scrape
# /metrics and /healthz, and grep for the core metric families with live
# values. Exercises exactly what a production scrape + STATS client would.
set -eu

PORT="${SMOKE_PORT:-17683}"
MPORT="${SMOKE_METRICS_PORT:-17684}"
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/energyd" ./cmd/energyd
go build -o "$TMP/dbshell" ./cmd/dbshell

"$TMP/energyd" -addr "127.0.0.1:$PORT" -metrics-addr "127.0.0.1:$MPORT" -quiet >"$TMP/energyd.log" 2>&1 &
PID=$!

# Wait for /healthz (calibration takes a moment).
i=0
until curl -fsS "http://127.0.0.1:$MPORT/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 120 ]; then
    echo "smoke: energyd did not become healthy" >&2
    cat "$TMP/energyd.log" >&2
    exit 1
  fi
  sleep 0.5
done
echo "smoke: /healthz ok"

# Run statements through the real wire protocol, including a committed
# transaction and \stats.
"$TMP/dbshell" -connect "127.0.0.1:$PORT" -db sqlite -class 10MB >"$TMP/shell.out" 2>&1 <<'EOF'
\q6
SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag
BEGIN
UPDATE nation SET n_name = 'SMOKE' WHERE n_nationkey = 0
COMMIT
\stats
\quit
EOF
grep -q "Eactive=" "$TMP/shell.out" || {
  echo "smoke: dbshell produced no energy report" >&2
  cat "$TMP/shell.out" >&2
  exit 1
}
grep -q "hottest (E_active):" "$TMP/shell.out" || {
  echo "smoke: \\stats produced no hot-query board" >&2
  cat "$TMP/shell.out" >&2
  exit 1
}
grep -q "rows_affected" "$TMP/shell.out" || {
  echo "smoke: transactional UPDATE reported no affected rows" >&2
  cat "$TMP/shell.out" >&2
  exit 1
}
grep -q "txns: 0 active, 1 started, 1 committed, 0 aborted" "$TMP/shell.out" || {
  echo "smoke: \\stats txn counters wrong" >&2
  cat "$TMP/shell.out" >&2
  exit 1
}
echo "smoke: statements + transaction + \\stats ok"

# Scrape and check the core families carry live values.
curl -fsS "http://127.0.0.1:$MPORT/metrics" >"$TMP/metrics.out"
for family in \
  'energyd_statements_total{status="ok"} 5' \
  'energyd_statement_joules_count 5' \
  'energyd_txns_active 0' \
  'energyd_txns_committed 1' \
  'energyd_txns_aborted 0' \
  'energyd_statement_wall_seconds_bucket' \
  'energyd_energy_joules_total{component="E_L1D"}' \
  'energyd_l1d_share' \
  'energyd_worker_pstate{worker="0"}' \
  'energyd_pstate_transitions_total{worker="0"}' \
  'energyd_slowlog_slowest_seconds' \
  'energyd_connections_total 1'; do
  grep -qF "$family" "$TMP/metrics.out" || {
    echo "smoke: /metrics missing: $family" >&2
    grep "^energyd" "$TMP/metrics.out" >&2 || cat "$TMP/metrics.out" >&2
    exit 1
  }
done
echo "smoke: /metrics families ok"

kill "$PID"
wait "$PID" 2>/dev/null || true
echo "smoke: PASS"
