module energydb

go 1.22
