// Package energydb is a reproduction of "Micro Analysis to Enable
// Energy-Efficient Database Systems" (Yang, Du, Du, Meng — EDBT 2020) as a
// Go library.
//
// It provides, on top of a cycle-approximate machine simulator calibrated
// to the paper's Intel i7-4790 measurements:
//
//   - the micro-analysis methodology of Section 2: micro-benchmarks that
//     isolate individual micro-operations, an energy-model solver that
//     recovers per-operation energies (ΔE_m), and verification;
//   - three instrumented database-engine profiles (PostgreSQL, SQLite,
//     MySQL) with a TPC-H workload, whose Active-energy breakdowns exhibit
//     the paper's headline result: L1D cache load/store is the energy
//     bottleneck (39%–67% of Active energy);
//   - the ARM1176JZF-S + DTCM proof-of-concept co-design of Section 4;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	lab, err := energydb.NewLab(energydb.LabConfig{})
//	if err != nil { ... }
//	eng := lab.NewEngine(energydb.SQLite, energydb.SettingBaseline, energydb.Size100MB)
//	q, _ := energydb.QueryByID(6)
//	b, err := lab.ProfileQuery(eng, q)
//	fmt.Printf("L1D share: %.1f%%\n", b.L1DShare()*100)
//
// See the examples directory for runnable programs and the cmd directory
// for the experiment CLIs.
package energydb

import (
	"energydb/internal/core"
	"energydb/internal/cpu2006"
	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/harness"
	"energydb/internal/memsim"
	"energydb/internal/mubench"
	"energydb/internal/rapl"
	"energydb/internal/tcm"
	"energydb/internal/tpch"
	"energydb/internal/trace"
)

// Machine-level types.
type (
	// Machine is a simulated CPU (hierarchy + P-states + energy).
	Machine = cpusim.Machine
	// Profile describes a machine model.
	Profile = cpusim.Profile
	// PState is an EIST operating point (8–36 on the Intel profile).
	PState = cpusim.PState
	// Counters is the PMU snapshot.
	Counters = memsim.Counters
	// Meter reads RAPL-style energy counters.
	Meter = rapl.Meter
	// PowerMeter is the external wall meter used on the ARM board.
	PowerMeter = rapl.PowerMeter
)

// Methodology types (the paper's contribution).
type (
	// Calibration holds solved ΔE_m values (Table 2).
	Calibration = core.Calibration
	// DeltaE is the per-micro-operation energy set.
	DeltaE = core.DeltaE
	// Breakdown is an Eq. 1 decomposition of a workload's energy.
	Breakdown = core.Breakdown
	// Component indexes breakdown components (E_L1D … E_other).
	Component = core.Component
	// VerifyResult is one Table 3 verification row.
	VerifyResult = core.VerifyResult
	// Profiler measures and breaks down workloads.
	Profiler = core.Profiler
)

// Breakdown components in figure order.
const (
	CompL1D     = core.CompL1D
	CompReg2L1D = core.CompReg2L1D
	CompL2      = core.CompL2
	CompL3      = core.CompL3
	CompMem     = core.CompMem
	CompPf      = core.CompPf
	CompStall   = core.CompStall
	CompOther   = core.CompOther
)

// Database types.
type (
	// Engine is a database instance (one of the three profiles).
	Engine = engine.Engine
	// EngineKind selects PostgreSQL, SQLite or MySQL.
	EngineKind = engine.Kind
	// Setting selects a Table 4 knob row.
	Setting = engine.Setting
	// Query is one of the 22 TPC-H queries.
	Query = tpch.Query
	// BasicOp is one of the 7 basic query operations.
	BasicOp = tpch.BasicOp
	// SizeClass is a dataset size class.
	SizeClass = tpch.SizeClass
)

// Engine profiles.
const (
	PostgreSQL = engine.PostgreSQL
	SQLite     = engine.SQLite
	MySQL      = engine.MySQL
)

// Knob settings (Table 4).
const (
	SettingSmall    = engine.SettingSmall
	SettingBaseline = engine.SettingBaseline
	SettingLarge    = engine.SettingLarge
)

// Size classes.
const (
	Size10MB  = tpch.Size10MB
	Size100MB = tpch.Size100MB
	Size500MB = tpch.Size500MB
	Size1GB   = tpch.Size1GB
)

// P-states the paper evaluates.
const (
	PState36 = cpusim.PState36
	PState24 = cpusim.PState24
	PState12 = cpusim.PState12
)

// Experiment harness types.
type (
	// Experiment regenerates one paper table or figure.
	Experiment = harness.Experiment
	// ExperimentOptions configures an experiment run.
	ExperimentOptions = harness.Options
	// ExperimentResult is a rendered experiment.
	ExperimentResult = harness.Result
)

// Queries returns the 22 TPC-H queries.
func Queries() []Query { return tpch.Queries() }

// QueryByID fetches one TPC-H query (1–22).
func QueryByID(id int) (Query, error) { return tpch.QueryByID(id) }

// BasicOps returns the 7 basic query operations of Section 3.2.
func BasicOps() []BasicOp { return tpch.BasicOps() }

// Experiments returns the registry of all paper tables and figures.
func Experiments() []Experiment { return harness.Experiments() }

// ExperimentByID fetches an experiment (T1, T2, T3, T5, F5–F11, F13).
func ExperimentByID(id string) (Experiment, error) { return harness.ByID(id) }

// DefaultExperimentOptions returns the paper-shaped configuration.
func DefaultExperimentOptions() ExperimentOptions { return harness.DefaultOptions() }

// CPU2006Workloads returns the nine Figure 10 kernels.
func CPU2006Workloads() []cpu2006.Workload { return cpu2006.Workloads() }

// LabConfig configures a measurement lab.
type LabConfig struct {
	// PState fixes the operating point (default: P-state 36).
	PState PState
	// Seed drives deterministic measurement noise (default 42).
	Seed int64
	// Noise is the per-session relative measurement error (default 1%).
	// Set negative for a noise-free lab.
	Noise float64
	// Scale rescales micro-benchmark pass counts (default 0.2; smaller
	// is faster and slightly less accurate).
	Scale float64
}

// Lab is the Intel measurement stack of Section 2.6: an i7-4790 machine, a
// RAPL meter, a micro-benchmark runner and (after NewLab) a calibration.
type Lab struct {
	Machine     *Machine
	Meter       *Meter
	Calibration *Calibration

	runner *mubench.Runner
}

// NewLab builds the measurement stack and calibrates it (runs the MBS
// micro-benchmark set and solves every ΔE_m).
func NewLab(cfg LabConfig) (*Lab, error) {
	if cfg.PState == 0 {
		cfg.PState = PState36
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	switch {
	case cfg.Noise < 0:
		cfg.Noise = 0
	case cfg.Noise == 0:
		cfg.Noise = rapl.DefaultNoise
	}
	if cfg.Scale == 0 {
		cfg.Scale = 0.2
	}
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	if err := m.SetPState(cfg.PState); err != nil {
		return nil, err
	}
	meter := rapl.NewMeter(m, cfg.Seed, cfg.Noise)
	runner := mubench.NewRunner(m, meter)
	runner.Scale = cfg.Scale
	cal, err := core.Calibrate(runner)
	if err != nil {
		return nil, err
	}
	return &Lab{Machine: m, Meter: meter, Calibration: cal, runner: runner}, nil
}

// Verify runs the verification micro-benchmark set (Table 3) against the
// lab's calibration.
func (l *Lab) Verify() []VerifyResult { return l.Calibration.Verify(l.runner) }

// NewEngine creates a database engine on the lab's machine and loads the
// TPC-H dataset of the given class into it.
func (l *Lab) NewEngine(kind EngineKind, setting Setting, class SizeClass) *Engine {
	e := engine.New(kind, l.Machine, setting)
	tpch.Setup(e, class)
	return e
}

// Profiler returns a workload profiler bound to the lab.
func (l *Lab) Profiler() *Profiler {
	return core.NewProfiler(l.Machine, l.Meter, l.Calibration)
}

// ProfileQuery warms and profiles one TPC-H query on the engine, returning
// its Active-energy breakdown.
func (l *Lab) ProfileQuery(e *Engine, q Query) (Breakdown, error) {
	prof := l.Profiler()
	plan, err := q.Build(e)
	if err != nil {
		return Breakdown{}, err
	}
	if _, err := e.Run(plan); err != nil {
		return Breakdown{}, err
	}
	plan, err = q.Build(e)
	if err != nil {
		return Breakdown{}, err
	}
	var runErr error
	b := prof.Profile(q.Name, func() { _, runErr = e.Run(plan) })
	return b, runErr
}

// ProfileFunc profiles an arbitrary workload function on the lab machine.
func (l *Lab) ProfileFunc(name string, fn func(m *Machine)) Breakdown {
	return l.Profiler().Profile(name, func() { fn(l.Machine) })
}

// ARM proof-of-concept re-exports (Section 4).

// NewARMMachine builds the ARM1176JZF-S machine with its 32KB DTCM window.
func NewARMMachine() *Machine { return tcm.NewMachine() }

// OptimizeSQLiteDTCM applies the Section 4.2 co-design to a SQLite-profile
// engine: database buffer, VM special variables and B-tree top layers move
// into DTCM. tables names the queried tables sharing the B-tree budget.
func OptimizeSQLiteDTCM(e *Engine, tables []string) (*tcm.CoDesign, error) {
	return tcm.OptimizeSQLite(e, tables)
}

// DTCMPeakSaving measures the B_DTCM_array peak energy saving (Section 4.3;
// ~10% on this machine model). Pass 0 for the default run length.
func DTCMPeakSaving(passes int) (saving, perfDelta float64) {
	return tcm.PeakSaving(passes)
}

// NewPowerMeter attaches an external wall meter to a machine (the ARM board
// has no RAPL).
func NewPowerMeter(m *Machine, seed int64, noise float64) *PowerMeter {
	return rapl.NewPowerMeter(m, seed, noise)
}

// Trace is a captured access stream, replayable onto machines with
// different architectures (trace-driven design-space exploration; see the
// X5 experiment).
type Trace = trace.Trace

// CaptureTrace records every access fn drives through the machine.
func CaptureTrace(m *Machine, fn func()) *Trace { return trace.Capture(m, fn) }

// ReplayTrace drives a captured trace through another machine's hierarchy,
// reproducing the original access semantics on that architecture.
func ReplayTrace(t *Trace, m *Machine) { trace.Replay(t, m.Hier) }

// LoadTrace reads a trace file written by Trace.Save.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }
