// tcm_codesign reproduces the Section 4 proof of concept: SQLite on the
// ARM1176JZF-S, with the paper's three DTCM placement strategies (database
// buffer, VM special variables, B-tree top layers), measured with the
// external power meter against the unmodified build.
package main

import (
	"fmt"
	"log"

	"energydb"
)

func main() {
	// 1. The DTCM peak saving: B_DTCM_array vs B_L1D_array (Section 4.3
	// reports ~10% with no performance loss).
	peak, perf := energydb.DTCMPeakSaving(0)
	fmt.Printf("B_DTCM_array peak energy saving: %.1f%% (perf delta %.2f%%)\n\n", peak*100, perf*100)

	// 2. The co-design evaluation over a query mix.
	queried := []string{"lineitem", "orders", "customer", "part", "supplier"}
	run := func(optimize bool, q energydb.Query) (joules, seconds float64) {
		m := energydb.NewARMMachine()
		meter := energydb.NewPowerMeter(m, 7, 0)
		lab := &energydb.Lab{Machine: m}
		eng := lab.NewEngine(energydb.SQLite, energydb.SettingSmall, energydb.Size10MB)
		if optimize {
			cd, err := energydb.OptimizeSQLiteDTCM(eng, queried)
			if err != nil {
				log.Fatal(err)
			}
			_ = cd
		}
		plan, err := q.Build(eng)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Run(plan); err != nil { // warm
			log.Fatal(err)
		}
		plan, err = q.Build(eng)
		if err != nil {
			log.Fatal(err)
		}
		var runErr error
		j, s := meter.MeasureSession(func() { _, runErr = eng.Run(plan) })
		if runErr != nil {
			log.Fatal(runErr)
		}
		return j, s
	}

	fmt.Printf("%-5s %15s %18s\n", "query", "energy saving", "perf improvement")
	var sumSave, sumPerf float64
	ids := []int{1, 3, 6, 12, 14, 19}
	for _, id := range ids {
		q, err := energydb.QueryByID(id)
		if err != nil {
			log.Fatal(err)
		}
		e0, t0 := run(false, q)
		e1, t1 := run(true, q)
		save := (1 - e1/e0) * 100
		pf := (1 - t1/t0) * 100
		sumSave += save
		sumPerf += pf
		fmt.Printf("Q%-4d %14.2f%% %17.2f%%\n", id, save, pf)
	}
	n := float64(len(ids))
	fmt.Printf("%-5s %14.2f%% %17.2f%%\n", "avg", sumSave/n, sumPerf/n)
	fmt.Printf("\nAverage saving is %.0f%% of the DTCM peak (the paper reports 60%%:\n", sumSave/n/(peak*100)*100)
	fmt.Println("6% average saving against a 10% peak, with ~1.5% perf improvement).")
}
