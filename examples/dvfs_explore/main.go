// dvfs_explore reproduces the Section 5 analysis: for memory-bound work the
// energy bottleneck is the CPU's stall cycles, not DRAM — so radically
// lowering the P-state trades little performance for a lot of energy, while
// the same move on CPU-bound work is a bad deal. It sweeps P-states over
// the B_mem-style pointer chase and over PostgreSQL's table and index
// scans, printing the energy/performance trade at each point.
package main

import (
	"fmt"
	"log"

	"energydb"
)

func main() {
	fmt.Println("Memory-bound micro-workload (B_mem pointer chase):")
	sweepWorkload(func(lab *energydb.Lab) (func(), error) {
		return func() {
			for _, w := range energydb.CPU2006Workloads() {
				if w.Name == "Mcf" { // the DRAM-bound pointer chase
					w.Run(lab.Machine, 0.3)
				}
			}
		}, nil
	})

	fmt.Println("\nPostgreSQL index scan (memory-bound query path):")
	sweepQueryOp("index scan")

	fmt.Println("\nPostgreSQL table scan (CPU-bound query path):")
	sweepQueryOp("table scan")

	fmt.Println(`
Reading: for memory-bound work, dropping P36 -> P24 costs a few percent of
performance but saves a large share of Active energy (the paper: -7% perf,
-46% energy on B_mem, +70% energy-efficiency). For the CPU-bound table
scan the same move loses performance one-for-one with energy, so a
customized DVFS policy should only down-clock memory-bound plans.`)
}

// sweepWorkload measures one function at P36/P24/P12.
func sweepWorkload(build func(lab *energydb.Lab) (func(), error)) {
	base := -1.0
	baseT := -1.0
	for _, p := range []energydb.PState{energydb.PState36, energydb.PState24, energydb.PState12} {
		lab, err := energydb.NewLab(energydb.LabConfig{PState: p, Scale: 0.1})
		if err != nil {
			log.Fatal(err)
		}
		fn, err := build(lab)
		if err != nil {
			log.Fatal(err)
		}
		b := lab.ProfileFunc("w", func(*energydb.Machine) { fn() })
		report(p, b, &base, &baseT)
	}
}

// sweepQueryOp measures one basic query operation at P36/P24/P12.
func sweepQueryOp(name string) {
	var op energydb.BasicOp
	for _, o := range energydb.BasicOps() {
		if o.Name == name {
			op = o
		}
	}
	base := -1.0
	baseT := -1.0
	for _, p := range []energydb.PState{energydb.PState36, energydb.PState24, energydb.PState12} {
		lab, err := energydb.NewLab(energydb.LabConfig{PState: p, Scale: 0.1})
		if err != nil {
			log.Fatal(err)
		}
		eng := lab.NewEngine(energydb.PostgreSQL, energydb.SettingLarge, energydb.Size500MB)
		plan, err := op.Build(eng)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Run(plan); err != nil {
			log.Fatal(err)
		}
		plan, err = op.Build(eng)
		if err != nil {
			log.Fatal(err)
		}
		var runErr error
		b := lab.Profiler().Profile(name, func() { _, runErr = eng.Run(plan) })
		if runErr != nil {
			log.Fatal(runErr)
		}
		report(p, b, &base, &baseT)
	}
}

func report(p energydb.PState, b energydb.Breakdown, baseE, baseT *float64) {
	if *baseE < 0 {
		*baseE, *baseT = b.EActive, b.Seconds
		fmt.Printf("  %v: Eactive=%.4fJ  t=%.1fms  (baseline)  stall=%.1f%% mem=%.1f%%\n",
			p, b.EActive, b.Seconds*1e3, b.Share(energydb.CompStall)*100, b.Share(energydb.CompMem)*100)
		return
	}
	saving := (1 - b.EActive/(*baseE)) * 100
	perfLoss := (b.Seconds/(*baseT) - 1) * 100
	eff := (1 / (b.Seconds / (*baseT))) / (b.EActive / (*baseE))
	fmt.Printf("  %v: Eactive=%.4fJ  t=%.1fms  saving=%.1f%%  perf loss=%.1f%%  energy-eff. x%.2f\n",
		p, b.EActive, b.Seconds*1e3, saving, perfLoss, eff)
}
