// Quickstart: calibrate the energy model, verify it, run a TPC-H query on
// the SQLite profile and print its Active-energy breakdown — the paper's
// whole methodology in one page of code against the public API.
package main

import (
	"fmt"
	"log"

	"energydb"
)

func main() {
	// 1. Build the measurement lab. NewLab runs the micro-benchmark set
	// (B_L1D_array, B_L1D_list, B_L2, B_L3, B_mem, B_Reg2L1D, B_add,
	// B_nop) and solves the per-micro-operation energies ΔE_m.
	lab, err := energydb.NewLab(energydb.LabConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d := lab.Calibration.DeltaE
	fmt.Println("Solved micro-operation energies (compare with the paper's Table 2):")
	fmt.Printf("  ΔE_L1D=%.2fnJ  ΔE_L2=%.2fnJ  ΔE_L3=%.2fnJ  ΔE_mem=%.2fnJ\n", d.L1D, d.L2, d.L3, d.Mem)
	fmt.Printf("  ΔE_Reg2L1D=%.2fnJ  ΔE_stall=%.2fnJ  ΔE_add=%.2fnJ  ΔE_nop=%.2fnJ\n\n", d.Reg2L1D, d.Stall, d.Add, d.Nop)

	// 2. Verify the calibration against the composite benchmarks.
	results := lab.Verify()
	sum := 0.0
	for _, v := range results {
		sum += v.Accuracy
	}
	fmt.Printf("Verification accuracy over %d composite benchmarks: %.1f%% (paper: 93.47%%)\n\n",
		len(results), sum/float64(len(results))*100)

	// 3. Load TPC-H into the SQLite profile and profile Q6 (the pure
	// scan-and-aggregate query).
	eng := lab.NewEngine(energydb.SQLite, energydb.SettingBaseline, energydb.Size100MB)
	q, err := energydb.QueryByID(6)
	if err != nil {
		log.Fatal(err)
	}
	b, err := lab.ProfileQuery(eng, q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TPC-H Q6 on SQLite (%s):\n", q.Name)
	fmt.Printf("  Active energy:       %.4f J over %.1f ms\n", b.EActive, b.Seconds*1e3)
	fmt.Printf("  E_L1D + E_Reg2L1D:   %.1f%%   <- the paper's bottleneck (39%%-67%% band)\n", b.L1DShare()*100)
	fmt.Printf("  data movement total: %.1f%%\n", b.DataMovementShare()*100)
	fmt.Printf("  background share:    %.1f%% of Busy-CPU energy\n", b.BackgroundShare()*100)
	fmt.Println("\nFull component breakdown:")
	for _, c := range []energydb.Component{
		energydb.CompL1D, energydb.CompReg2L1D, energydb.CompL2, energydb.CompL3,
		energydb.CompMem, energydb.CompPf, energydb.CompStall, energydb.CompOther,
	} {
		fmt.Printf("  %-10s %5.1f%%\n", c, b.Share(c)*100)
	}
}
