// tpch_profile sweeps TPC-H across the three database profiles and prints
// per-query L1D energy shares side by side — a compact Figure 7. It shows
// the paper's cross-system finding: the L1D bottleneck holds on every
// engine, with SQLite (sequential-scan-heavy) at the top of the band.
package main

import (
	"flag"
	"fmt"
	"log"

	"energydb"
)

func main() {
	full := flag.Bool("full", false, "run all 22 queries (default: a fast subset)")
	flag.Parse()

	kinds := []energydb.EngineKind{energydb.PostgreSQL, energydb.SQLite, energydb.MySQL}

	queries := energydb.Queries()
	if !*full {
		var subset []energydb.Query
		for _, q := range queries {
			switch q.ID {
			case 1, 3, 6, 12, 14:
				subset = append(subset, q)
			}
		}
		queries = subset
	}

	type row struct {
		shares map[energydb.EngineKind]float64
	}
	rows := make(map[int]*row)

	for _, kind := range kinds {
		lab, err := energydb.NewLab(energydb.LabConfig{Scale: 0.1})
		if err != nil {
			log.Fatal(err)
		}
		eng := lab.NewEngine(kind, energydb.SettingBaseline, energydb.Size100MB)
		for _, q := range queries {
			b, err := lab.ProfileQuery(eng, q)
			if err != nil {
				log.Fatalf("%v Q%d: %v", kind, q.ID, err)
			}
			r := rows[q.ID]
			if r == nil {
				r = &row{shares: map[energydb.EngineKind]float64{}}
				rows[q.ID] = r
			}
			r.shares[kind] = b.L1DShare()
		}
		fmt.Printf("%v profiled.\n", kind)
	}

	fmt.Printf("\n%-6s %12s %12s %12s\n", "query", "PostgreSQL", "SQLite", "MySQL")
	fmt.Printf("%-6s %12s %12s %12s\n", "------", "----------", "------", "-----")
	avg := map[energydb.EngineKind]float64{}
	for _, q := range queries {
		r := rows[q.ID]
		fmt.Printf("Q%-5d %11.1f%% %11.1f%% %11.1f%%\n", q.ID,
			r.shares[energydb.PostgreSQL]*100,
			r.shares[energydb.SQLite]*100,
			r.shares[energydb.MySQL]*100)
		for _, k := range kinds {
			avg[k] += r.shares[k]
		}
	}
	n := float64(len(queries))
	fmt.Printf("%-6s %11.1f%% %11.1f%% %11.1f%%\n", "avg",
		avg[energydb.PostgreSQL]/n*100, avg[energydb.SQLite]/n*100, avg[energydb.MySQL]/n*100)
	fmt.Println("\n(E_L1D + E_Reg2L1D share of Active energy; the paper reports 46.8% /")
	fmt.Println(" 60% / 38.6% averages for PostgreSQL / SQLite / MySQL in Figure 7.)")
}
