// nosql_profile runs the paper's Section 7 future work: apply the same
// micro analysis to NoSQL systems. It profiles a Redis-style hash store and
// a LevelDB-style LSM store under YCSB-like mixes and contrasts their
// breakdowns with the relational engines' — showing that the L1D bottleneck
// is a property of scan-heavy relational execution, not of databases in
// general.
package main

import (
	"fmt"
	"log"

	"energydb"
)

func main() {
	fmt.Println("Calibrating...")
	res, err := energydb.ExperimentByID("X1")
	if err != nil {
		log.Fatal(err)
	}
	opts := energydb.DefaultExperimentOptions()
	out, err := res.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Text)

	// Contrast: the relational headline on the same machine class.
	lab, err := energydb.NewLab(energydb.LabConfig{Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	eng := lab.NewEngine(energydb.SQLite, energydb.SettingBaseline, energydb.Size100MB)
	q, err := energydb.QueryByID(1)
	if err != nil {
		log.Fatal(err)
	}
	b, err := lab.ProfileQuery(eng, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("For contrast, SQLite TPC-H Q1: L1D+Reg2L1D = %.1f%% of Active energy.\n", b.L1DShare()*100)
	fmt.Println(`
Reading: the relational engines put 39%-67% of their Active energy into the
L1D cache because sequential scans and tuple-slot stores have excellent
locality. Point-read KV workloads invert this: the hash chase and the
binary searches touch cold lines, so stall and DRAM dominate. A customized
architecture for KV stores would target the memory path, not the L1D —
which is exactly why the paper argues for per-system micro analysis.`)
}
