// Command energylint runs the project's static-analysis suite: five
// analyzers that machine-check the energy-accounting and concurrency
// invariants the codebase otherwise enforces by convention (and has
// violated before — see DESIGN.md §10). It is a required gate in `make
// check` and CI.
//
// Usage:
//
//	energylint [-only a,b] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The whole
// module is parsed and type-checked once — stdlib only, no go/packages —
// and every analyzer shares that view, so a full run stays in single-digit
// seconds. Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"energydb/internal/lint"
)

func main() {
	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s (waiver //lint:%s)\n", a.Name, a.Doc, a.Key())
		}
		return
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "energylint: unknown analyzer %q (use -list)\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "energylint:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energylint:", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "energylint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
