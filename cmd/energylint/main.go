// Command energylint runs the project's static-analysis suite: the
// analyzers that machine-check the energy-accounting and concurrency
// invariants the codebase otherwise enforces by convention (and has
// violated before — see DESIGN.md §10 and §15). It is a required gate in
// `make check` and CI.
//
// Usage:
//
//	energylint [-only a,b] [-format text|json|github] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The whole
// module is parsed and type-checked once — stdlib only, no go/packages —
// and every analyzer shares that view, so a full run stays in single-digit
// seconds. Exit status: 0 clean, 1 findings, 2 load/usage error.
//
// -format selects the diagnostic rendering: "text" (default, the
// file:line:col: [analyzer] message lines), "json" (one array of
// {file,line,col,analyzer,message} objects, for tooling), or "github"
// (::error workflow commands, so CI findings surface as inline PR
// annotations).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"energydb/internal/lint"
)

func main() {
	var (
		only   = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		format = flag.String("format", "text", "diagnostic output format: text, json, or github")
		list   = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "energylint: unknown format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s (waiver //lint:%s)\n", a.Name, a.Doc, a.Key())
		}
		return
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "energylint: unknown analyzer %q (use -list)\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "energylint:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energylint:", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, analyzers)
	if err := render(os.Stdout, *format, diags); err != nil {
		fmt.Fprintln(os.Stderr, "energylint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "energylint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the stable machine-readable shape of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// render writes the findings in the selected format. text and github
// print one line per finding; json emits a single array (empty on a
// clean run, so consumers can always parse the output). json and github
// relativize filenames against the working directory — GitHub attaches
// an annotation only when file= is repo-relative.
func render(w *os.File, format string, diags []lint.Diagnostic) error {
	switch format {
	case "text":
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
	case "json":
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     relFile(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Msg,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case "github":
		for _, d := range diags {
			// Workflow-command syntax: property values escape % : ,
			// and the message escapes % \r \n.
			fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=energylint(%s)::%s\n",
				escapeGithubProperty(relFile(d.Pos.Filename)), d.Pos.Line, d.Pos.Column,
				escapeGithubProperty(d.Analyzer), escapeGithubData(d.Msg))
		}
	}
	return nil
}

// relFile renders the path relative to the working directory when it is
// inside it (CI runs from the repo root), leaving outside paths intact.
func relFile(file string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(cwd, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}

func escapeGithubData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func escapeGithubProperty(s string) string {
	s = escapeGithubData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
