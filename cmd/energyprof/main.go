// Command energyprof regenerates the paper's tables and figures.
//
// Usage:
//
//	energyprof -exp F7                 # one experiment
//	energyprof -all                    # everything, in paper order
//	energyprof -exp F7 -quick          # reduced sweep for a fast look
//	energyprof -exp F7 -csv out.csv    # also write the CSV
//	energyprof -list                   # show the registry
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"energydb/internal/db/engine"
	"energydb/internal/harness"
	"energydb/internal/report"
	"energydb/internal/tpch"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id (T1..T5, F5..F13, X1..X9)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments")
		quick   = flag.Bool("quick", false, "reduced query sweep and dataset (fast)")
		csvPath = flag.String("csv", "", "also write results as CSV to this file")
		htmlOut = flag.String("html", "", "also write an HTML report with SVG charts to this file")
		seed    = flag.Int64("seed", 42, "measurement noise seed")
		scale   = flag.Float64("scale", 0.2, "micro-benchmark pass scale")
		class   = flag.String("class", "100MB", "dataset class for single-config experiments (10MB, 100MB, 500MB, 1GB)")
		setting = flag.String("setting", "baseline", "knob setting for single-config experiments (small, baseline, large)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := harness.DefaultOptions()
	opts.Quick = *quick
	opts.Seed = *seed
	opts.Scale = *scale
	cls, err := parseClass(*class)
	if err != nil {
		fatal(err)
	}
	opts.Class = cls
	set, err := parseSetting(*setting)
	if err != nil {
		fatal(err)
	}
	opts.Setting = set

	var exps []harness.Experiment
	switch {
	case *all:
		exps = harness.Experiments()
	case *expID != "":
		e, err := harness.ByID(*expID)
		if err != nil {
			fatal(err)
		}
		exps = []harness.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "energyprof: pass -exp <id>, -all or -list")
		flag.Usage()
		os.Exit(2)
	}

	var csv string
	var results []harness.Result
	for _, e := range exps {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Println(res.Text)
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		csv += "# " + res.Title + "\n" + res.CSV + "\n"
		results = append(results, res)
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("CSV written to %s\n", *csvPath)
	}
	if *htmlOut != "" {
		doc := report.HTML("energydb — paper reproduction results", results)
		if err := os.WriteFile(*htmlOut, []byte(doc), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
}

func parseClass(s string) (tpch.SizeClass, error) {
	for _, c := range []tpch.SizeClass{tpch.Size10MB, tpch.Size100MB, tpch.Size500MB, tpch.Size1GB} {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown class %q (want 10MB, 100MB, 500MB or 1GB)", s)
}

func parseSetting(s string) (engine.Setting, error) {
	switch strings.ToLower(s) {
	case "small":
		return engine.SettingSmall, nil
	case "baseline":
		return engine.SettingBaseline, nil
	case "large":
		return engine.SettingLarge, nil
	}
	return 0, fmt.Errorf("unknown setting %q (want small, baseline or large)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "energyprof:", err)
	os.Exit(1)
}
