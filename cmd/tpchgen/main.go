// Command tpchgen generates the TPC-H-shaped dataset as CSV files, one per
// table, for inspection or external use.
//
// Usage:
//
//	tpchgen -class 100MB -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
	"energydb/internal/tpch"
)

func main() {
	var (
		classFlag = flag.String("class", "100MB", "size class: 10MB, 100MB, 500MB, 1GB")
		out       = flag.String("out", "tpch-data", "output directory")
		seed      = flag.Int64("seed", 7421, "generator seed")
	)
	flag.Parse()

	class, err := parseClass(*classFlag)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	fmt.Printf("Generating %s dataset (seed %d)...\n", class, *seed)
	d := tpch.Generate(class, *seed)

	tables := []struct {
		name   string
		schema *catalog.Schema
		rows   []value.Row
	}{
		{"region", tpch.RegionSchema, d.Region},
		{"nation", tpch.NationSchema, d.Nation},
		{"supplier", tpch.SupplierSchema, d.Supplier},
		{"customer", tpch.CustomerSchema, d.Customer},
		{"part", tpch.PartSchema, d.Part},
		{"partsupp", tpch.PartSuppSchema, d.PartSupp},
		{"orders", tpch.OrdersSchema, d.Orders},
		{"lineitem", tpch.LineitemSchema, d.Lineitem},
	}
	total := 0
	for _, t := range tables {
		path := filepath.Join(*out, t.name+".csv")
		if err := writeCSV(path, t.schema, t.rows); err != nil {
			fatal(err)
		}
		fmt.Printf("  %-10s %8d rows -> %s\n", t.name, len(t.rows), path)
		total += len(t.rows)
	}
	fmt.Printf("Done: %d rows total.\n", total)
}

func parseClass(s string) (tpch.SizeClass, error) {
	for _, c := range []tpch.SizeClass{tpch.Size10MB, tpch.Size100MB, tpch.Size500MB, tpch.Size1GB} {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown class %q (want 10MB, 100MB, 500MB or 1GB)", s)
}

func writeCSV(path string, schema *catalog.Schema, rows []value.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var sb strings.Builder
	sb.WriteString(strings.Join(schema.Names(), ",") + "\n")
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				sb.WriteByte(',')
			}
			s := v.String()
			if strings.ContainsAny(s, ",\"\n") {
				s = `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
			}
			sb.WriteString(s)
		}
		sb.WriteByte('\n')
		if sb.Len() > 1<<20 {
			if _, err := f.WriteString(sb.String()); err != nil {
				return err
			}
			sb.Reset()
		}
	}
	_, err = f.WriteString(sb.String())
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpchgen:", err)
	os.Exit(1)
}
