// Command dbshell is an interactive SQL shell over a simulated database
// engine with TPC-H data loaded, printing a per-query energy breakdown
// after every statement — the paper's methodology at a prompt.
//
// By default the shell simulates locally. With -connect (or the \connect
// meta command) it becomes a remote client of a running energyd server,
// and the breakdown printed after each statement is the server-attributed
// per-session energy report.
//
// Usage:
//
//	dbshell -db sqlite -class 10MB
//	> SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag
//	> \tables
//	> \quit
//
//	dbshell -connect localhost:7683 -db mysql -class 100MB
//	> \q6
//	> \disconnect
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/plan"
	"energydb/internal/db/sql"
	"energydb/internal/db/txn"
	"energydb/internal/db/value"
	"energydb/internal/mubench"
	"energydb/internal/obs"
	"energydb/internal/rapl"
	"energydb/internal/server/client"
	"energydb/internal/server/wire"
	"energydb/internal/tpch"
)

func main() {
	var (
		dbFlag    = flag.String("db", "sqlite", "engine profile: postgresql, sqlite, mysql")
		classFlag = flag.String("class", "10MB", "dataset class: 10MB, 100MB, 500MB, 1GB")
		setting   = flag.String("setting", "baseline", "knobs: small, baseline, large")
		maxRows   = flag.Int("rows", 20, "max rows displayed per query")
		connect   = flag.String("connect", "", "connect to a running energyd at host:port instead of simulating locally")
	)
	flag.Parse()

	kind, err := parseKind(*dbFlag)
	if err != nil {
		fatal(err)
	}
	class, err := parseClass(*classFlag)
	if err != nil {
		fatal(err)
	}
	set, err := parseSetting(*setting)
	if err != nil {
		fatal(err)
	}

	sh := &shell{
		kind:    kind,
		class:   class,
		setting: set,
		maxRows: *maxRows,
	}
	if *connect != "" {
		if err := sh.dial(*connect); err != nil {
			fatal(err)
		}
	} else if err := sh.setupLocal(); err != nil {
		fatal(err)
	}
	fmt.Println(`Ready. End statements with a newline; EXPLAIN [ENERGY] <select> shows the optimizer's plan (ENERGY: measured per-operator attribution); INSERT/UPDATE/DELETE write under snapshot isolation; \begin \commit \rollback (or SQL BEGIN/COMMIT/ROLLBACK) control transactions; \tables lists tables; \connect <addr> goes remote; \stats shows server observability (remote); \quit exits.`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print(sh.prompt())
		if !in.Scan() {
			break
		}
		if !sh.dispatch(strings.TrimSpace(in.Text())) {
			return
		}
	}
	// A failed scan is either EOF (fine) or a real input error — an
	// oversized line, a broken pipe — which must not vanish silently.
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "dbshell: input error:", err)
		os.Exit(1)
	}
}

// shell holds either a local measurement stack or a remote energyd session
// (or both, when \connect follows local statements).
type shell struct {
	kind    engine.Kind
	class   tpch.SizeClass
	setting engine.Setting
	maxRows int

	// Local mode (lazily built).
	eng  *engine.Engine
	prof *core.Profiler
	// tx is the open explicit transaction in local mode (nil: autocommit).
	tx *txn.Txn

	// Remote mode.
	remote *client.Conn
}

// prompt marks an open transaction, locally or on the remote session.
func (sh *shell) prompt() string {
	inTxn := sh.tx != nil
	if sh.remote != nil {
		_, inTxn = sh.remote.InTxn()
	}
	if inTxn {
		return "(txn)> "
	}
	return "> "
}

// dispatch handles one input line; it returns false when the shell should
// exit.
func (sh *shell) dispatch(line string) bool {
	switch {
	case line == "":
		return true
	case line == `\quit` || line == `\q`:
		if sh.remote != nil {
			sh.remote.Close()
		}
		return false
	case strings.HasPrefix(line, `\connect`):
		arg := strings.TrimSpace(strings.TrimPrefix(line, `\connect`))
		if arg == "" {
			fmt.Println(`error: use \connect host:port`)
			return true
		}
		if err := sh.dial(arg); err != nil {
			fmt.Println("error:", err)
		}
		return true
	case line == `\disconnect`:
		if sh.remote == nil {
			fmt.Println("not connected")
			return true
		}
		sh.remote.Close()
		sh.remote = nil
		fmt.Println("disconnected; statements now simulate locally")
		return true
	case line == `\tables`:
		sh.tables()
		return true
	case line == `\stats`:
		sh.stats()
		return true
	case line == `\begin`:
		sh.txnCmd(wire.TxnBegin)
		return true
	case line == `\commit`:
		sh.txnCmd(wire.TxnCommit)
		return true
	case line == `\rollback`:
		sh.txnCmd(wire.TxnRollback)
		return true
	}
	// SQL-spelled transaction controls route through the same handler as
	// the meta commands, so the remote session's txn state (and the
	// prompt) stays in sync.
	switch strings.ToUpper(strings.TrimRight(strings.TrimSuffix(line, ";"), " ")) {
	case "BEGIN", "BEGIN TRANSACTION":
		sh.txnCmd(wire.TxnBegin)
		return true
	case "COMMIT", "COMMIT WORK":
		sh.txnCmd(wire.TxnCommit)
		return true
	case "ROLLBACK", "ROLLBACK WORK":
		sh.txnCmd(wire.TxnRollback)
		return true
	}
	if sh.remote != nil {
		sh.remoteQuery(line)
		return true
	}
	if strings.HasPrefix(line, `\q`) {
		sh.localTPCH(line)
		return true
	}
	sh.localSQL(line)
	return true
}

// dial opens a remote session with the shell's engine parameters.
func (sh *shell) dial(addr string) error {
	conn, err := client.Dial(addr, client.Options{
		Engine:  sh.kind.String(),
		Setting: sh.setting.String(),
		Class:   sh.class.String(),
	})
	if err != nil {
		return err
	}
	if sh.remote != nil {
		sh.remote.Close()
	}
	sh.remote = conn
	ack := conn.Info()
	fmt.Printf("connected to %s: %s / %s knobs / TPC-H %s (%d tables), session %d\n",
		addr, ack.Engine, ack.Setting, ack.Class, ack.Tables, ack.SessionID)
	return nil
}

// setupLocal calibrates the machine and loads the dataset (once).
func (sh *shell) setupLocal() error {
	if sh.eng != nil {
		return nil
	}
	fmt.Printf("Calibrating the i7-4790 energy model...\n")
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	meter := rapl.NewMeter(m, 42, rapl.DefaultNoise)
	runner := mubench.NewRunner(m, meter)
	runner.Scale = 0.1
	cal, err := core.Calibrate(runner)
	if err != nil {
		return err
	}
	sh.prof = core.NewProfiler(m, meter, cal)
	fmt.Printf("Loading TPC-H %s into the %v profile (%v knobs)...\n", sh.class, sh.kind, sh.setting)
	sh.eng = engine.New(sh.kind, m, sh.setting)
	tpch.Setup(sh.eng, sh.class)
	return nil
}

// remoteQuery routes one statement (SQL or \qN) to the server and renders
// the rows plus the server-attributed energy report.
func (sh *shell) remoteQuery(line string) {
	res, err := sh.remote.Query(line)
	if err != nil {
		fmt.Println("error:", err)
		if _, ok := err.(*client.QueryError); !ok {
			// Transport failure: the session is gone.
			sh.remote.Close()
			sh.remote = nil
			fmt.Println("connection lost; statements now simulate locally")
		}
		return
	}
	sh.printRows(res.Cols, res.Rows)
	printRemoteBreakdown(res.Energy)
}

// txnCmd runs one transaction control, against the remote session or the
// local engine. Commit fsyncs the WAL and rollback walks the undo chain, so
// the local path prints their energy breakdown like any statement.
func (sh *shell) txnCmd(op wire.TxnOp) {
	if sh.remote != nil {
		var err error
		switch op {
		case wire.TxnBegin:
			var id uint64
			if id, err = sh.remote.Begin(); err == nil {
				fmt.Printf("BEGIN (txn %d)\n", id)
			}
		case wire.TxnCommit:
			if err = sh.remote.Commit(); err == nil {
				fmt.Println("COMMIT")
			}
		case wire.TxnRollback:
			if err = sh.remote.Rollback(); err == nil {
				fmt.Println("ROLLBACK")
			}
		}
		if err != nil {
			fmt.Println("error:", err)
		}
		return
	}
	if err := sh.setupLocal(); err != nil {
		fmt.Println("error:", err)
		return
	}
	switch op {
	case wire.TxnBegin:
		if sh.tx != nil {
			fmt.Printf("error: transaction %d already open\n", sh.tx.ID())
			return
		}
		sh.tx = sh.eng.Begin()
		fmt.Printf("BEGIN (txn %d)\n", sh.tx.ID())
	case wire.TxnCommit, wire.TxnRollback:
		if sh.tx == nil {
			fmt.Println("error: no transaction open")
			return
		}
		t := sh.tx
		sh.tx = nil
		sh.eng.Bind(t)
		var err error
		b := sh.prof.Profile(strings.ToLower(op.String()), func() {
			if op == wire.TxnCommit {
				err = sh.eng.Commit(t)
			} else {
				err = sh.eng.Rollback(t)
			}
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(op.String())
		printBreakdown(b)
	}
}

// bind establishes the statement snapshot on the local engine: the open
// transaction's pinned one, or a fresh read snapshot.
func (sh *shell) bind() {
	if sh.tx != nil {
		sh.eng.Bind(sh.tx)
	} else {
		sh.eng.Unbind()
	}
}

// localTPCH runs \q<N> against the local engine with the energy breakdown.
func (sh *shell) localTPCH(line string) {
	var id int
	if _, err := fmt.Sscanf(line, `\q%d`, &id); err != nil {
		fmt.Println("error: use \\q<N> with N in 1..22")
		return
	}
	if err := sh.setupLocal(); err != nil {
		fmt.Println("error:", err)
		return
	}
	q, err := tpch.QueryByID(id)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sh.bind()
	plan, err := q.Build(sh.eng)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var rows int
	var runErr error
	b := sh.prof.Profile(q.Name, func() { rows, runErr = sh.eng.Run(plan) })
	if runErr != nil {
		fmt.Println("error:", runErr)
		return
	}
	fmt.Printf("TPC-H Q%d (%s): %d rows\n", id, q.Name, rows)
	printBreakdown(b)
}

// localSQL parses, plans and profiles one SQL statement locally. EXPLAIN
// renders the optimizer's chosen plan with predicted energy; EXPLAIN ENERGY
// executes it with per-operator metering and prints the measured
// attribution.
func (sh *shell) localSQL(line string) {
	if err := sh.setupLocal(); err != nil {
		fmt.Println("error:", err)
		return
	}
	stmt, err := sql.ParseStatement(line)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sh.bind()
	switch stmt.(type) {
	case *sql.InsertStmt, *sql.UpdateStmt, *sql.DeleteStmt:
		var n int
		var runErr error
		b := sh.prof.Profile("dml", func() { n, runErr = plan.ExecWrite(sh.eng, sh.tx, stmt) })
		if runErr != nil {
			// A failed statement may have left writes in the open
			// transaction; roll the whole transaction back rather than
			// let a later commit publish a torn statement.
			if sh.tx != nil {
				t := sh.tx
				sh.tx = nil
				sh.eng.Bind(t)
				if rbErr := sh.eng.Rollback(t); rbErr != nil {
					fmt.Println("rollback error:", rbErr)
				}
				fmt.Printf("error: %v %s\n", runErr, wire.TxnRolledBackSuffix)
				return
			}
			fmt.Println("error:", runErr)
			return
		}
		fmt.Printf("%d rows affected\n", n)
		printBreakdown(b)
		return
	}
	if ex, ok := stmt.(*sql.ExplainStmt); ok {
		p, err := plan.Prepare(sh.eng, ex.Select)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if !ex.Energy {
			rows, _ := p.Explain()
			for _, r := range rows {
				fmt.Println(r[0].S)
			}
			return
		}
		rows, _, b, err := p.ExplainEnergy(sh.prof)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		for _, r := range rows {
			fmt.Println(r[0].S)
		}
		printBreakdown(b)
		return
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		fmt.Printf("error: unsupported statement %T\n", stmt)
		return
	}
	op, err := plan.Plan(sh.eng, sel)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var rows []value.Row
	var runErr error
	b := sh.prof.Profile("query", func() {
		// Rows are collected (not printed) inside the measured
		// region, matching the paper's display-disabled runs.
		rows, runErr = exec.Collect(op)
	})
	if runErr != nil {
		fmt.Println("error:", runErr)
		return
	}
	sh.printRows(op.Schema().Names(), rows)
	printBreakdown(b)
}

// stats fetches and renders the server's observability snapshot (STATS):
// totals, the Eq. 1 component split, and the slow/hot query boards.
func (sh *shell) stats() {
	if sh.remote == nil {
		fmt.Println("not connected: \\stats shows a remote energyd's observability snapshot (use \\connect host:port)")
		return
	}
	s, err := sh.remote.Stats()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s\n%d workers, %d sessions, engines: %s\n",
		s.Banner, s.Workers, s.Sessions, strings.Join(s.Engines, ", "))
	fmt.Printf("totals: %d queries, Eactive=%.4gJ Ebusy=%.4gJ Ebackground=%.4gJ over %.4gs sim time, L1D share %.1f%%\n",
		s.Queries, s.EActiveJ, s.EBusyJ, s.EBackgroundJ, s.Seconds, s.L1DShare*100)
	fmt.Printf("txns: %d active, %d started, %d committed, %d aborted\n",
		s.TxnsActive, s.TxnsStarted, s.TxnsCommitted, s.TxnsAborted)
	fmt.Print("components:")
	for _, c := range core.Components() {
		fmt.Printf(" %s=%.4gJ", c, s.ComponentJoules[c.String()])
	}
	fmt.Println()
	printBoard := func(title string, entries []obs.QueryLogEntry, metric func(obs.QueryLogEntry) string) {
		if len(entries) == 0 {
			return
		}
		fmt.Println(title)
		for i, e := range entries {
			fmt.Printf("  %d. [session %d] %s  %s (%d rows)\n", i+1, e.Session, metric(e), e.String(), e.Rows)
			if e.Plan != "" {
				fmt.Printf("     plan: %s\n", e.Plan)
			}
		}
	}
	printBoard("slowest (wall time):", s.Slowest, func(e obs.QueryLogEntry) string {
		return fmt.Sprintf("%.3gms", e.WallSeconds*1e3)
	})
	printBoard("hottest (E_active):", s.Hottest, func(e obs.QueryLogEntry) string {
		return fmt.Sprintf("%.4gJ", e.EActive)
	})
}

func (sh *shell) printRows(names []string, rows []value.Row) {
	fmt.Println(strings.Join(names, " | "))
	for i, r := range rows {
		if i >= sh.maxRows {
			fmt.Printf("... (%d more)\n", len(rows)-i)
			break
		}
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(rows))
}

func (sh *shell) tables() {
	if sh.remote != nil {
		ack := sh.remote.Info()
		fmt.Printf("remote %s/%s: TPC-H %s, %d tables (region, nation, supplier, customer, part, partsupp, orders, lineitem)\n",
			ack.Engine, ack.Setting, ack.Class, ack.Tables)
		return
	}
	if err := sh.setupLocal(); err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		t, err := sh.eng.Table(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %-10s %8d rows  cols: %s\n", name, t.File.RowCount(), strings.Join(t.Schema().Names(), ", "))
	}
}

func printBreakdown(b core.Breakdown) {
	var shares [core.NumComponents]float64
	for i := range shares {
		shares[i] = b.Share(core.Component(i))
	}
	printShares(b.EActive, shares, "")
}

func printRemoteBreakdown(e wire.EnergyReport) {
	var shares [core.NumComponents]float64
	if e.EActive > 0 {
		for i := range shares {
			shares[i] = e.Joules[i] / e.EActive
		}
	}
	printShares(e.EActive, shares,
		fmt.Sprintf("session: %d queries, %.4gJ active\n", e.SessionQueries, e.SessionActive))
}

func printShares(eActive float64, s [core.NumComponents]float64, extra string) {
	fmt.Printf("energy: Eactive=%.4gJ  L1D=%.1f%% Reg2L1D=%.1f%% L2=%.1f%% L3=%.1f%% mem=%.1f%% pf=%.1f%% stall=%.1f%% other=%.1f%%\n%s\n",
		eActive,
		s[core.CompL1D]*100, s[core.CompReg2L1D]*100,
		s[core.CompL2]*100, s[core.CompL3]*100,
		s[core.CompMem]*100, s[core.CompPf]*100,
		s[core.CompStall]*100, s[core.CompOther]*100,
		extra)
}

func parseKind(s string) (engine.Kind, error) {
	switch strings.ToLower(s) {
	case "postgresql", "postgres", "pg":
		return engine.PostgreSQL, nil
	case "sqlite":
		return engine.SQLite, nil
	case "mysql":
		return engine.MySQL, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

func parseClass(s string) (tpch.SizeClass, error) {
	for _, c := range []tpch.SizeClass{tpch.Size10MB, tpch.Size100MB, tpch.Size500MB, tpch.Size1GB} {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown class %q", s)
}

func parseSetting(s string) (engine.Setting, error) {
	switch strings.ToLower(s) {
	case "small":
		return engine.SettingSmall, nil
	case "baseline":
		return engine.SettingBaseline, nil
	case "large":
		return engine.SettingLarge, nil
	}
	return 0, fmt.Errorf("unknown setting %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbshell:", err)
	os.Exit(1)
}
