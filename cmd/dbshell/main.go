// Command dbshell is an interactive SQL shell over a simulated database
// engine with TPC-H data loaded, printing a per-query energy breakdown
// after every statement — the paper's methodology at a prompt.
//
// Usage:
//
//	dbshell -db sqlite -class 10MB
//	> SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag
//	> \tables
//	> \quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/sql"
	"energydb/internal/db/value"
	"energydb/internal/mubench"
	"energydb/internal/rapl"
	"energydb/internal/tpch"
)

func main() {
	var (
		dbFlag    = flag.String("db", "sqlite", "engine profile: postgresql, sqlite, mysql")
		classFlag = flag.String("class", "10MB", "dataset class: 10MB, 100MB, 500MB, 1GB")
		setting   = flag.String("setting", "baseline", "knobs: small, baseline, large")
		maxRows   = flag.Int("rows", 20, "max rows displayed per query")
	)
	flag.Parse()

	kind, err := parseKind(*dbFlag)
	if err != nil {
		fatal(err)
	}
	class, err := parseClass(*classFlag)
	if err != nil {
		fatal(err)
	}
	set, err := parseSetting(*setting)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Calibrating the i7-4790 energy model...\n")
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	meter := rapl.NewMeter(m, 42, rapl.DefaultNoise)
	runner := mubench.NewRunner(m, meter)
	runner.Scale = 0.1
	cal, err := core.Calibrate(runner)
	if err != nil {
		fatal(err)
	}
	prof := core.NewProfiler(m, meter, cal)

	fmt.Printf("Loading TPC-H %s into the %v profile (%v knobs)...\n", class, kind, set)
	e := engine.New(kind, m, set)
	tpch.Setup(e, class)
	fmt.Println(`Ready. End statements with a newline; \tables lists tables; \quit exits.`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case strings.HasPrefix(line, `\q`) && len(line) > 2:
			// \q<N> runs TPC-H query N with the energy breakdown.
			var id int
			if _, err := fmt.Sscanf(line, `\q%d`, &id); err != nil {
				fmt.Println("error: use \\q<N> with N in 1..22")
				continue
			}
			q, err := tpch.QueryByID(id)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			plan, err := q.Build(e)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			var rows int
			var runErr error
			b := prof.Profile(q.Name, func() { rows, runErr = e.Run(plan) })
			if runErr != nil {
				fmt.Println("error:", runErr)
				continue
			}
			fmt.Printf("TPC-H Q%d (%s): %d rows\n", id, q.Name, rows)
			printBreakdown(b)
			continue
		case line == `\tables`:
			for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
				t, err := e.Table(name)
				if err != nil {
					continue
				}
				fmt.Printf("  %-10s %8d rows  cols: %s\n", name, t.File.RowCount(), strings.Join(t.Schema().Names(), ", "))
			}
			continue
		}

		stmt, err := sql.Parse(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		plan, err := sql.Plan(e, stmt)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		var rows []value.Row
		var runErr error
		b := prof.Profile("query", func() {
			// Rows are collected (not printed) inside the measured
			// region, matching the paper's display-disabled runs.
			rows, runErr = exec.Collect(plan)
		})
		if runErr != nil {
			fmt.Println("error:", runErr)
			continue
		}
		names := plan.Schema().Names()
		fmt.Println(strings.Join(names, " | "))
		for i, r := range rows {
			if i >= *maxRows {
				fmt.Printf("... (%d more)\n", len(rows)-i)
				break
			}
			cells := make([]string, len(r))
			for j, v := range r {
				cells[j] = v.String()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		fmt.Printf("(%d rows)\n", len(rows))
		printBreakdown(b)
	}
}

func printBreakdown(b core.Breakdown) {
	fmt.Printf("energy: Eactive=%.4gJ  L1D=%.1f%% Reg2L1D=%.1f%% L2=%.1f%% L3=%.1f%% mem=%.1f%% pf=%.1f%% stall=%.1f%% other=%.1f%%\n\n",
		b.EActive,
		b.Share(core.CompL1D)*100, b.Share(core.CompReg2L1D)*100,
		b.Share(core.CompL2)*100, b.Share(core.CompL3)*100,
		b.Share(core.CompMem)*100, b.Share(core.CompPf)*100,
		b.Share(core.CompStall)*100, b.Share(core.CompOther)*100)
}

func parseKind(s string) (engine.Kind, error) {
	switch strings.ToLower(s) {
	case "postgresql", "postgres", "pg":
		return engine.PostgreSQL, nil
	case "sqlite":
		return engine.SQLite, nil
	case "mysql":
		return engine.MySQL, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

func parseClass(s string) (tpch.SizeClass, error) {
	for _, c := range []tpch.SizeClass{tpch.Size10MB, tpch.Size100MB, tpch.Size500MB, tpch.Size1GB} {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown class %q", s)
}

func parseSetting(s string) (engine.Setting, error) {
	switch strings.ToLower(s) {
	case "small":
		return engine.SettingSmall, nil
	case "baseline":
		return engine.SettingBaseline, nil
	case "large":
		return engine.SettingLarge, nil
	}
	return 0, fmt.Errorf("unknown setting %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbshell:", err)
	os.Exit(1)
}
