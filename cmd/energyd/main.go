// Command energyd serves the simulated database engines over TCP with
// per-session energy accounting: every query response carries the paper's
// Eq. 1 Active-energy breakdown for that statement, and the daemon keeps a
// running per-session and server-wide energy ledger.
//
// Usage:
//
//	energyd -addr :7683
//	dbshell -connect localhost:7683 -db sqlite -class 10MB
//
// Clients negotiate the engine profile, knob setting and dataset class in
// the handshake; table stores are provisioned lazily and shared between
// sessions that request the same combination. Statements execute in
// parallel on a pool of per-worker simulated machines (-workers, default
// GOMAXPROCS; -workers 1 reproduces the old fully-serialized server), with
// fair round-robin scheduling within each worker, so per-session energy
// attribution stays exact.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"energydb/internal/rapl"
	"energydb/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7683", "listen address")
		seed    = flag.Int64("seed", 42, "measurement-noise seed")
		noise   = flag.Float64("noise", rapl.DefaultNoise, "relative measurement error per session (negative disables)")
		scale   = flag.Float64("scale", 0.1, "calibration micro-benchmark scale (smaller starts faster)")
		workers = flag.Int("workers", 0, "execution workers, each with a private simulated machine (0 = GOMAXPROCS)")
		stmtTO  = flag.Duration("stmt-timeout", 0, "cancel statements running longer than this (0 = no limit)")
		readTO  = flag.Duration("read-timeout", 0, "per-frame client read deadline (0 = no limit)")
		writeTO = flag.Duration("write-timeout", 0, "per-response write deadline (0 = no limit)")
		quiet   = flag.Bool("quiet", false, "suppress per-session logging")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	log.Printf("calibrating the i7-4790 energy model (scale %g)...", *scale)
	srv, err := server.New(server.Config{
		Seed:         *seed,
		Noise:        *noise,
		Scale:        *scale,
		Workers:      *workers,
		StmtTimeout:  *stmtTO,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyd:", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		t := srv.Totals()
		log.Printf("shutting down: %d queries served, %.4g J active energy attributed (L1D share %.1f%%)",
			t.Queries, t.EActive, t.L1DShare()*100)
		srv.Close()
	}()

	log.Printf("listening on %s (%d workers)", *addr, srv.Workers())
	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "energyd:", err)
		os.Exit(1)
	}
}
