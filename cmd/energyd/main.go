// Command energyd serves the simulated database engines over TCP with
// per-session energy accounting: every query response carries the paper's
// Eq. 1 Active-energy breakdown for that statement, and the daemon keeps a
// running per-session and server-wide energy ledger.
//
// Usage:
//
//	energyd -addr :7683
//	dbshell -connect localhost:7683 -db sqlite -class 10MB
//
// Clients negotiate the engine profile, knob setting and dataset class in
// the handshake; table stores are provisioned lazily and shared between
// sessions that request the same combination. Statements execute in
// parallel on a pool of per-worker simulated machines (-workers, default
// GOMAXPROCS; -workers 1 reproduces the old fully-serialized server), with
// fair round-robin scheduling within each worker, so per-session energy
// attribution stays exact.
//
// With -metrics-addr set, energyd additionally serves /metrics (Prometheus
// text: statement latency/energy histograms, Eq. 1 component totals, the
// live L1D share, worker P-states) and /healthz on that address. The same
// snapshot is available in-band via the STATS wire command (dbshell
// \stats). -governor attaches the stall-aware DVFS policy to each worker
// machine.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"energydb/internal/rapl"
	"energydb/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7683", "listen address")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /healthz over HTTP on this address (empty = off)")
		seed        = flag.Int64("seed", 42, "measurement-noise seed")
		noise       = flag.Float64("noise", rapl.DefaultNoise, "relative measurement error per session (negative disables)")
		scale       = flag.Float64("scale", 0.1, "calibration micro-benchmark scale (smaller starts faster)")
		workers     = flag.Int("workers", 0, "execution workers, each with a private simulated machine (0 = GOMAXPROCS)")
		governor    = flag.Bool("governor", false, "attach the stall-aware DVFS governor to each worker machine")
		stmtTO      = flag.Duration("stmt-timeout", 0, "cancel statements running longer than this (0 = no limit)")
		readTO      = flag.Duration("read-timeout", 0, "per-frame client read deadline (0 = no limit)")
		writeTO     = flag.Duration("write-timeout", 0, "per-response write deadline (0 = no limit)")
		quiet       = flag.Bool("quiet", false, "suppress per-session logging")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	log.Printf("calibrating the i7-4790 energy model (scale %g)...", *scale)
	srv, err := server.New(server.Config{
		Seed:         *seed,
		Noise:        *noise,
		Scale:        *scale,
		Workers:      *workers,
		Governor:     *governor,
		StmtTimeout:  *stmtTO,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyd:", err)
		os.Exit(1)
	}

	var msrv *http.Server
	if *metricsAddr != "" {
		msrv = &http.Server{Addr: *metricsAddr, Handler: srv.ObsHandler()}
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	closed := make(chan struct{})
	go func() {
		<-sig
		srv.Close()
		close(closed)
	}()

	log.Printf("listening on %s (%d workers)", *addr, srv.Workers())
	err = srv.ListenAndServe(*addr)
	if err != nil && err != server.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "energyd:", err)
		os.Exit(1)
	}
	// ListenAndServe returns as soon as the listener closes; wait for Close
	// itself to finish so the totals read below happens after the workers
	// have drained and every executed statement is accounted. (The old
	// order — logging totals before Close — could miss statements still
	// retiring.)
	<-closed
	if msrv != nil {
		msrv.Close()
	}
	t := srv.Totals()
	log.Printf("shutting down: %d queries served, %.4g J active energy attributed (L1D share %.1f%%)",
		t.Queries, t.EActive, t.L1DShare()*100)
}
