// Command microbench runs the micro-benchmark methodology standalone: the
// MBS isolation set, the ΔE_m solver, and the VMBS verification set —
// Tables 1, 2 (single P-state) and 3 in one run.
//
// Usage:
//
//	microbench                 # calibrate at P-state 36
//	microbench -pstate 12      # a different operating point
//	microbench -scale 1        # paper-length runs (slower)
package main

import (
	"flag"
	"fmt"
	"os"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/mubench"
	"energydb/internal/rapl"
)

func main() {
	var (
		pstate = flag.Int("pstate", 36, "P-state (8-36)")
		scale  = flag.Float64("scale", 0.2, "pass-count scale (1 = paper-shaped)")
		seed   = flag.Int64("seed", 42, "measurement noise seed")
		noise  = flag.Float64("noise", rapl.DefaultNoise, "per-session measurement error")
	)
	flag.Parse()

	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	if err := m.SetPState(cpusim.PState(*pstate)); err != nil {
		fatal(err)
	}
	meter := rapl.NewMeter(m, *seed, *noise)
	runner := mubench.NewRunner(m, meter)
	runner.Scale = *scale

	fmt.Printf("Calibrating at %v (scale %.2f)...\n\n", m.PState(), *scale)
	cal, err := core.Calibrate(runner)
	if err != nil {
		fatal(err)
	}

	fmt.Println("Runtime behaviors (Table 1):")
	fmt.Printf("%-14s %8s %10s %9s %9s %7s\n", "benchmark", "BLI%", "L1Dmiss%", "L2miss%", "L3miss%", "IPC")
	for _, r := range cal.Results {
		c := r.Counters
		fmt.Printf("%-14s %8.1f %10.2f %9.2f %9.2f %7.3f\n",
			r.Spec.Name, r.BLI, c.L1DMissRate()*100, c.L2MissRate()*100, c.L3MissRate()*100, c.IPC())
	}

	d := cal.DeltaE
	fmt.Println("\nSolved micro-operation energies (Table 2 column):")
	fmt.Printf("  dE_L1D     = %7.2f nJ\n", d.L1D)
	fmt.Printf("  dE_L2      = %7.2f nJ\n", d.L2)
	fmt.Printf("  dE_L3      = %7.2f nJ   (= dE_pf_L2)\n", d.L3)
	fmt.Printf("  dE_mem     = %7.2f nJ   (= dE_pf_L3)\n", d.Mem)
	fmt.Printf("  dE_Reg2L1D = %7.2f nJ\n", d.Reg2L1D)
	fmt.Printf("  dE_stall   = %7.2f nJ\n", d.Stall)
	fmt.Printf("  dE_add     = %7.2f nJ\n", d.Add)
	fmt.Printf("  dE_nop     = %7.2f nJ\n", d.Nop)

	fmt.Println("\nVerification (Table 3):")
	results := cal.Verify(runner)
	fmt.Printf("%-22s %14s %14s %8s\n", "benchmark", "estimated (J)", "measured (J)", "acc%")
	for _, v := range results {
		fmt.Printf("%-22s %14.6f %14.6f %8.2f\n", v.Name, v.EEstimated, v.EMeasured, v.Accuracy*100)
	}
	fmt.Printf("%-22s %14s %14s %8.2f\n", "average", "", "", core.MeanAccuracy(results)*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "microbench:", err)
	os.Exit(1)
}
