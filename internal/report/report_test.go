package report

import (
	"strings"
	"testing"

	"energydb/internal/harness"
)

func sampleResult() harness.Result {
	return harness.Result{
		ID:    "F7",
		Title: "Figure 7",
		Text:  "Database  Query ...",
		CSV: "Database,Query,E_L1D%,E_Reg2L1D%,E_L2%,E_L3%,E_mem%,E_pf%,E_stall%,E_other%\n" +
			"SQLite,Q1,34.8,34.4,0.4,0.0,0.0,0.7,0.7,29.0\n" +
			"MySQL,Q1,23.7,17.4,0.2,0.0,0.1,4.8,0.6,53.2\n",
	}
}

func TestHTMLContainsChartForBreakdownCSV(t *testing.T) {
	doc := HTML("title", []harness.Result{sampleResult()})
	for _, want := range []string{"<svg", "SQLite / Q1", "E_L1D", "<!DOCTYPE html>", "Figure 7"} {
		if !strings.Contains(doc, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Shares become rect widths: 34.8% of 560 = 194.9.
	if !strings.Contains(doc, `width="194.9"`) {
		t.Error("stacked bar widths not rendered")
	}
}

func TestHTMLSkipsChartForNonBreakdownCSV(t *testing.T) {
	res := harness.Result{
		ID: "T2", Title: "Table 2", Text: "dE_L1D ...",
		CSV: "Micro-operation,P36 (nJ)\ndE_L1D,1.31\n",
	}
	doc := HTML("t", []harness.Result{res})
	if strings.Contains(doc, "<svg") {
		t.Error("non-breakdown CSV produced a chart")
	}
	if !strings.Contains(doc, "dE_L1D") {
		t.Error("table text missing")
	}
}

func TestHTMLEscapes(t *testing.T) {
	res := harness.Result{ID: "x", Title: "<script>", Text: "a < b", CSV: ""}
	doc := HTML("<t>", []harness.Result{res})
	if strings.Contains(doc, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(doc, "a &lt; b") {
		t.Error("text not escaped")
	}
}

func TestEndToEndWithRealExperiment(t *testing.T) {
	o := harness.DefaultOptions()
	o.Quick = true
	exp, err := harness.ByID("F10")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	doc := HTML("report", []harness.Result{res})
	if !strings.Contains(doc, "<svg") || !strings.Contains(doc, "Mcf") {
		t.Fatal("real experiment did not chart")
	}
}
