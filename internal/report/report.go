// Package report renders experiment results as a self-contained HTML
// document: each table verbatim, plus SVG stacked-bar charts for every
// result whose CSV carries the eight breakdown components — the closest
// thing to regenerating the paper's figures as figures.
package report

import (
	"fmt"
	"html"
	"strconv"
	"strings"

	"energydb/internal/harness"
)

// componentColumns are the breakdown headers, in stacking order.
var componentColumns = []string{
	"E_L1D%", "E_Reg2L1D%", "E_L2%", "E_L3%", "E_mem%", "E_pf%", "E_stall%", "E_other%",
}

// componentColors shade the stack (L1D family warm, memory path cool,
// other grey).
var componentColors = []string{
	"#d9534f", "#e58368", "#f2b661", "#f7dd72", "#6fb3d9", "#3d7ea8", "#8e6bb3", "#b8b8b8",
}

// HTML renders a full document for the results.
func HTML(title string, results []harness.Result) string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", html.EscapeString(title))
	sb.WriteString(`<style>
body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2rem auto; max-width: 70rem; color: #222; }
pre { background: #f6f6f6; padding: 0.8rem; overflow-x: auto; font-size: 0.78rem; }
h1 { border-bottom: 2px solid #444; padding-bottom: 0.3rem; }
h2 { margin-top: 2.2rem; }
.bar-label { font-size: 0.75rem; }
.legend span { display: inline-block; margin-right: 0.9rem; font-size: 0.75rem; }
.legend i { display: inline-block; width: 0.8rem; height: 0.8rem; margin-right: 0.25rem; vertical-align: -0.1rem; }
</style></head><body>
`)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", html.EscapeString(title))
	for _, r := range results {
		fmt.Fprintf(&sb, "<h2>%s — %s</h2>\n", html.EscapeString(r.ID), html.EscapeString(r.Title))
		fmt.Fprintf(&sb, "<pre>%s</pre>\n", html.EscapeString(r.Text))
		if chart := chartFromCSV(r.CSV); chart != "" {
			sb.WriteString(legendHTML())
			sb.WriteString(chart)
		}
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

func legendHTML() string {
	var sb strings.Builder
	sb.WriteString(`<div class="legend">`)
	for i, name := range componentColumns {
		fmt.Fprintf(&sb, `<span><i style="background:%s"></i>%s</span>`,
			componentColors[i], html.EscapeString(strings.TrimSuffix(name, "%")))
	}
	sb.WriteString("</div>\n")
	return sb.String()
}

// chartFromCSV renders stacked bars when the CSV header contains the eight
// component columns; otherwise it returns "".
func chartFromCSV(csv string) string {
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) < 2 {
		return ""
	}
	header := strings.Split(lines[0], ",")
	idx := make([]int, 0, len(componentColumns))
	for _, want := range componentColumns {
		found := -1
		for i, h := range header {
			if h == want {
				found = i
				break
			}
		}
		if found < 0 {
			return ""
		}
		idx = append(idx, found)
	}
	// Label columns: everything before the first component column.
	labelEnd := idx[0]

	const (
		barW  = 560
		barH  = 16
		gap   = 6
		textW = 260
	)
	rows := lines[1:]
	height := len(rows)*(barH+gap) + gap
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`,
		textW+barW+10, height)
	y := gap
	for _, line := range rows {
		cells := strings.Split(line, ",")
		if len(cells) <= idx[len(idx)-1] {
			continue
		}
		label := strings.Join(cells[:labelEnd], " / ")
		fmt.Fprintf(&sb,
			`<text class="bar-label" x="%d" y="%d" text-anchor="end" font-size="11">%s</text>`,
			textW-6, y+barH-4, html.EscapeString(label))
		x := float64(textW)
		for c, col := range idx {
			v, err := strconv.ParseFloat(cells[col], 64)
			if err != nil || v <= 0 {
				continue
			}
			w := v / 100 * barW
			fmt.Fprintf(&sb,
				`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s %.1f%%</title></rect>`,
				x, y, w, barH, componentColors[c], componentColumns[c], v)
			x += w
		}
		y += barH + gap
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
