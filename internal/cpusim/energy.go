package cpusim

import (
	"energydb/internal/memsim"
)

// MicroOp enumerates the energy-bearing events of the simulator. The first
// seven are the paper's micro-operation set MS; Add/Nop are the verification
// instructions; Other, TLBWalk and the TCM ops are "hardware reality" the
// solver never models directly (they surface as E_other or as measurement
// error, exactly as on real hardware).
type MicroOp int

// Micro-operations.
const (
	OpL1D      MicroOp = iota // load satisfied by L1D
	OpL2                      // load moving a line L2 -> L1D
	OpL3                      // load moving a line L3 -> L2
	OpMem                     // load moving a line DRAM -> L3
	OpReg2L1D                 // store completing in L1D
	OpStall                   // one stalled cycle
	OpPfL2                    // prefetch fill L3 -> L2
	OpPfL3                    // prefetch fill DRAM -> L3
	OpAdd                     // arithmetic instruction
	OpNop                     // nop instruction
	OpOther                   // unmodelled instruction (decode/branch/AGU)
	OpTCMLoad                 // load satisfied by TCM
	OpTCMStore                // store completing in TCM
	OpTLBWalk                 // page-crossing translation overhead
	numMicroOps
)

var microOpNames = [numMicroOps]string{
	"L1D", "L2", "L3", "mem", "Reg2L1D", "stall", "pf_L2", "pf_L3",
	"add", "nop", "other", "tcm_load", "tcm_store", "tlb_walk",
}

// String returns the conventional name of the op.
func (m MicroOp) String() string {
	if m < 0 || m >= numMicroOps {
		return "unknown"
	}
	return microOpNames[m]
}

// EnergyTable is the machine's ground-truth per-event energy in nanojoules,
// specified at three anchor P-states and piecewise-linearly interpolated in
// frequency everywhere else. The Intel table anchors are the paper's
// Table 2; values below the lowest anchor extrapolate along the low-end
// slope but never drop below floorFrac of the lowest anchor.
type EnergyTable struct {
	// Anchors maps each op to its energy at the anchor states, ordered
	// to match AnchorStates.
	Anchors [numMicroOps][3]float64
	// AnchorStates are the P-states of the anchor columns, descending.
	AnchorStates [3]PState
}

const floorFrac = 0.35

// Clone returns a private copy of the table. Machines cloned with
// Machine.NewLike share the same energy values but not the table itself, so
// per-machine mutations (EnableITCM) never leak across workers.
func (t *EnergyTable) Clone() *EnergyTable {
	c := *t
	return &c
}

// PerOp returns the energy in nanojoules of one occurrence of op at P-state p.
func (t *EnergyTable) PerOp(op MicroOp, p PState) float64 {
	a := t.Anchors[op]
	f := p.FrequencyGHz()
	f0, f1, f2 := t.AnchorStates[0].FrequencyGHz(), t.AnchorStates[1].FrequencyGHz(), t.AnchorStates[2].FrequencyGHz()
	var v float64
	switch {
	case f >= f0:
		v = a[0]
	case f >= f1:
		v = lerp(f, f1, f0, a[1], a[0])
	case f >= f2:
		v = lerp(f, f2, f1, a[2], a[1])
	default:
		// Extrapolate below the lowest anchor along the low segment.
		slope := (a[1] - a[2]) / (f1 - f2)
		v = a[2] + slope*(f-f2)
		if floor := a[2] * floorFrac; v < floor {
			v = floor
		}
	}
	return v
}

func lerp(x, x0, x1, y0, y1 float64) float64 {
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// DomainEnergy is energy in joules split across the RAPL-style measurement
// domains of the i7-4790: core (core + L1 + L2), the package extra (L3,
// prefetch engine, memory controller) and DRAM. Package() is core plus the
// extra, matching RAPL's nesting.
type DomainEnergy struct {
	Core         float64
	PackageExtra float64
	DRAM         float64
}

// Package returns the package-domain energy (which includes the core).
func (d DomainEnergy) Package() float64 { return d.Core + d.PackageExtra }

// Total returns package + DRAM energy.
func (d DomainEnergy) Total() float64 { return d.Package() + d.DRAM }

// Add returns d + o.
func (d DomainEnergy) Add(o DomainEnergy) DomainEnergy {
	return DomainEnergy{d.Core + o.Core, d.PackageExtra + o.PackageExtra, d.DRAM + o.DRAM}
}

// memControllerShare is the fraction of a DRAM access's energy charged to
// the package domain (memory controller) rather than the DRAM domain.
const memControllerShare = 0.15

const nanojoule = 1e-9

// Active converts an event-count delta into true active energy at P-state p.
// This is the hidden ground truth that the paper's methodology recovers.
func (t *EnergyTable) Active(c memsim.Counters, p PState) DomainEnergy {
	nj := func(op MicroOp, n uint64) float64 { return t.PerOp(op, p) * float64(n) }

	core := nj(OpL1D, c.L1DAccesses) +
		nj(OpL2, c.L2Accesses) +
		// The uncountable L1D prefetcher moves lines L2 -> L1D; its
		// energy is real but no PMU event exposes it (it surfaces as
		// solver error / E_other, as on the paper's hardware).
		nj(OpL2, c.UncountedL1DPf) +
		nj(OpReg2L1D, c.StoreL1DHits) +
		nj(OpStall, c.StallCycles) +
		nj(OpAdd, c.AddOps) +
		nj(OpNop, c.NopOps) +
		nj(OpOther, c.OtherOps) +
		nj(OpTCMLoad, c.TCMLoads) +
		nj(OpTCMStore, c.TCMStores)

	memEnergy := nj(OpMem, c.MemAccesses) + nj(OpPfL3, c.PrefetchL3)
	pkgExtra := nj(OpL3, c.L3Accesses) +
		nj(OpPfL2, c.PrefetchL2) +
		nj(OpTLBWalk, c.PageCrossings) +
		memEnergy*memControllerShare

	return DomainEnergy{
		Core:         core * nanojoule,
		PackageExtra: pkgExtra * nanojoule,
		DRAM:         memEnergy * (1 - memControllerShare) * nanojoule,
	}
}

// IntelEnergyTable returns the i7-4790 ground truth. The MS-set rows at
// P-states 36/24/12 are exactly the paper's Table 2; add/nop are given at
// P36 by Table 2 and scaled to lower states like the other core-domain ops;
// other/TLB/TCM rows are the unmodelled hardware overheads.
func IntelEnergyTable() *EnergyTable {
	t := &EnergyTable{AnchorStates: [3]PState{PState36, PState24, PState12}}
	set := func(op MicroOp, p36, p24, p12 float64) {
		t.Anchors[op] = [3]float64{p36, p24, p12}
	}
	set(OpL1D, 1.30, 0.90, 0.60)
	set(OpL2, 4.37, 3.25, 1.64)
	set(OpL3, 6.64, 5.91, 5.33)
	set(OpMem, 103.1, 99.1, 99.04)
	set(OpReg2L1D, 2.42, 1.60, 1.10)
	set(OpStall, 1.72, 1.07, 0.80)
	// ΔE_pf_L2 = ΔE_L3 and ΔE_pf_L3 = ΔE_mem (Section 2.5.4 assumption,
	// which holds in this machine's ground truth by construction).
	set(OpPfL2, 6.64, 5.91, 5.33)
	set(OpPfL3, 103.1, 99.1, 99.04)
	set(OpAdd, 1.03, 0.71, 0.48)
	set(OpNop, 0.65, 0.45, 0.30)
	set(OpOther, 0.88, 0.61, 0.41)
	set(OpTCMLoad, 0, 0, 0) // no TCM on the Intel part
	set(OpTCMStore, 0, 0, 0)
	// Page-translation overhead is left at zero: on the real part the
	// walk loads are served from the cache hierarchy and are implicitly
	// part of the measured load energies, which is where this model's
	// solver finds them too.
	set(OpTLBWalk, 0, 0, 0)
	return t
}

// ARMEnergyTable returns the ARM1176JZF-S ground truth used by the Section 4
// proof of concept. Absolute values are far below the Intel part (a ~300MHz
// embedded core); what matters for the reproduction is the relation between
// DTCM and L1D access energy, set so that a pure DTCM-resident array
// traversal measures ~10% below the L1D-resident one — the paper's measured
// peak saving of DTCM on this board.
func ARMEnergyTable() *EnergyTable {
	t := &EnergyTable{AnchorStates: [3]PState{PState12, 10, PStateMin}}
	set := func(op MicroOp, hi, mid, lo float64) {
		t.Anchors[op] = [3]float64{hi, mid, lo}
	}
	set(OpL1D, 0.42, 0.38, 0.34)
	set(OpL2, 0, 0, 0)
	set(OpL3, 0, 0, 0)
	set(OpMem, 28.5, 27.9, 27.5)
	set(OpReg2L1D, 0.58, 0.52, 0.47)
	set(OpStall, 0.34, 0.30, 0.27)
	set(OpPfL2, 0, 0, 0)
	set(OpPfL3, 28.5, 27.9, 27.5)
	set(OpAdd, 0.26, 0.23, 0.21)
	set(OpNop, 0.16, 0.14, 0.13)
	set(OpOther, 0.24, 0.21, 0.19)
	// DTCM access: as fast as L1D, cheaper per access (no tag lookup, no
	// way muxing). The tcm package's B_DTCM_array micro-benchmark
	// measures the end-to-end saving.
	set(OpTCMLoad, 0.336, 0.305, 0.275)
	set(OpTCMStore, 0.46, 0.42, 0.38)
	set(OpTLBWalk, 0, 0, 0)
	return t
}
