package cpusim

// StallAwareGovernor is the customized DVFS policy Section 5 calls for: it
// monitors the memory-stall fraction of each window (instead of OS-visible
// utilization, which stays ~100% on memory-bound work) and radically lowers
// the P-state only when the workload is memory-bound — where ΔE_mem barely
// depends on frequency and stall *cycles* shrink with the clock, so energy
// drops with little performance loss. CPU-bound windows run at full clock.
type StallAwareGovernor struct {
	m *Machine

	// MemBoundThreshold is the stall-cycle fraction above which a window
	// counts as memory-bound.
	MemBoundThreshold float64
	// MidThreshold marks moderately stalled windows.
	MidThreshold float64
	// LowPState is the radical operating point for memory-bound windows.
	LowPState PState
	// MidPState is used between the thresholds.
	MidPState PState

	// Transitions counts the P-state changes the governor has made — the
	// figure energyd exports as its per-worker transition counter.
	Transitions uint64
	// Ticks counts Tick calls (windows observed).
	Ticks uint64

	lastStall  uint64
	lastCycles uint64
}

// NewStallAwareGovernor attaches the policy to a machine with the defaults
// tuned in the Section 5 exploration.
func NewStallAwareGovernor(m *Machine) *StallAwareGovernor {
	return &StallAwareGovernor{
		m:                 m,
		MemBoundThreshold: 0.35,
		MidThreshold:      0.15,
		LowPState:         PState24,
		MidPState:         PState(30),
	}
}

// Tick inspects the window since the last tick and reprograms the P-state.
// It returns the chosen state and the observed stall fraction.
func (g *StallAwareGovernor) Tick() (PState, float64) {
	c := g.m.Hier.Counters()
	// The cumulative counters go backwards when they are reset under the
	// governor (Machine.Reset, Hierarchy.ResetCounters) or when the
	// governor is re-attached across machines (e.g. after NewLike). Raw
	// uint64 subtraction would underflow to ~2^64 and saturate the stall
	// fraction at ~1, pinning the low P-state forever. Treat a backwards
	// window as empty and resynchronize the baselines instead.
	stall := monotonicDelta(c.StallCycles, g.lastStall)
	cycles := monotonicDelta(c.Cycles(), g.lastCycles)
	g.lastStall = c.StallCycles
	g.lastCycles = c.Cycles()
	g.Ticks++

	frac := 0.0
	if cycles > 0 {
		frac = float64(stall) / float64(cycles)
	}
	target := g.m.Profile.MaxPState
	switch {
	case frac >= g.MemBoundThreshold:
		target = g.LowPState
	case frac >= g.MidThreshold:
		target = g.MidPState
	}
	if target < g.m.Profile.MinPState {
		target = g.m.Profile.MinPState
	}
	if target != g.m.PState() {
		// SetPState cannot fail: target is within the profile range.
		_ = g.m.SetPState(target)
		g.Transitions++
	}
	return g.m.PState(), frac
}

// monotonicDelta returns cur - last, clamped to zero when the counter went
// backwards.
func monotonicDelta(cur, last uint64) uint64 {
	if cur < last {
		return 0
	}
	return cur - last
}
