package cpusim

import (
	"testing"

	"energydb/internal/memsim"
)

func TestStallAwareGovernorClassifiesMemoryBound(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	gov := NewStallAwareGovernor(m)
	gov.Tick()
	// Memory-bound window: dependent DRAM loads, no cache reuse.
	for i := 0; i < 2000; i++ {
		m.Hier.Load(uint64(i*2654435761)%(128<<20), true)
	}
	p, frac := gov.Tick()
	if frac < 0.5 {
		t.Fatalf("stall fraction = %.2f, want memory-bound", frac)
	}
	if p != gov.LowPState {
		t.Fatalf("P-state = %v, want %v for memory-bound work", p, gov.LowPState)
	}
}

func TestStallAwareGovernorKeepsCPUBoundFast(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	gov := NewStallAwareGovernor(m)
	gov.Tick()
	m.Hier.Exec(100000, memsim.InstrAdd)
	p, frac := gov.Tick()
	if frac > 0.01 {
		t.Fatalf("stall fraction = %.2f for pure compute", frac)
	}
	if p != m.Profile.MaxPState {
		t.Fatalf("P-state = %v, want max for compute", p)
	}
}

func TestStallAwareGovernorRecovers(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	gov := NewStallAwareGovernor(m)
	gov.Tick()
	for i := 0; i < 1000; i++ {
		m.Hier.Load(uint64(i*2654435761)%(128<<20), true)
	}
	gov.Tick() // memory-bound -> low
	m.Hier.Exec(200000, memsim.InstrAdd)
	p, _ := gov.Tick() // compute window -> back to max
	if p != m.Profile.MaxPState {
		t.Fatalf("governor stuck at %v after compute window", p)
	}
}

// TestStallAwareGovernorSurvivesCounterReset is the regression test for the
// window-delta underflow: when the machine's cumulative counters are reset
// under a live governor, the raw uint64 deltas wrap to ~2^64 and the stall
// fraction saturates near 1, pinning the low P-state even on pure compute.
// The fixed Tick clamps backwards windows to zero and resynchronizes.
func TestStallAwareGovernorSurvivesCounterReset(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	gov := NewStallAwareGovernor(m)
	gov.Tick()
	// Memory-bound window first, so the governor's baselines are large and
	// the machine sits at the low P-state.
	for i := 0; i < 2000; i++ {
		m.Hier.Load(uint64(i*2654435761)%(128<<20), true)
	}
	if p, _ := gov.Tick(); p != gov.LowPState {
		t.Fatalf("setup: P-state %v, want %v", p, gov.LowPState)
	}
	// Counters reset under the governor (Machine.Reset does the same via
	// Hier.ResetState); the next window is pure compute.
	m.Hier.ResetCounters()
	m.Hier.Exec(100000, memsim.InstrAdd)
	p, frac := gov.Tick()
	if frac >= gov.MidThreshold {
		t.Fatalf("stall fraction %.3f after counter reset: window delta underflowed", frac)
	}
	if p != m.Profile.MaxPState {
		t.Fatalf("P-state %v after reset + compute window, want max: governor pinned low", p)
	}
	// And the baselines resynchronized: a further compute window behaves
	// normally.
	m.Hier.Exec(100000, memsim.InstrAdd)
	if p, frac := gov.Tick(); p != m.Profile.MaxPState || frac > 0.01 {
		t.Fatalf("governor did not resync after reset: P-state %v, frac %.3f", p, frac)
	}
}

// TestStallAwareGovernorCountsTransitions checks the transition counter the
// server exports: one low transition, one recovery.
func TestStallAwareGovernorCountsTransitions(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	gov := NewStallAwareGovernor(m)
	gov.Tick() // max → max: no transition
	for i := 0; i < 2000; i++ {
		m.Hier.Load(uint64(i*2654435761)%(128<<20), true)
	}
	gov.Tick() // → low
	m.Hier.Exec(200000, memsim.InstrAdd)
	gov.Tick() // → max
	if gov.Transitions != 2 {
		t.Fatalf("Transitions = %d, want 2", gov.Transitions)
	}
	if gov.Ticks != 3 {
		t.Fatalf("Ticks = %d, want 3", gov.Ticks)
	}
}

func TestEnableITCMScalesInstructionEnergy(t *testing.T) {
	m := NewMachine(ARM1176())
	before := m.Profile.Energy.PerOp(OpOther, m.PState())
	beforeL1D := m.Profile.Energy.PerOp(OpL1D, m.PState())
	m.EnableITCM(0.2)
	after := m.Profile.Energy.PerOp(OpOther, m.PState())
	if diff := after/before - 0.8; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("other energy scaled to %.3f of original, want 0.8", after/before)
	}
	if got := m.Profile.Energy.PerOp(OpL1D, m.PState()); got != beforeL1D {
		t.Fatal("ITCM must not touch data-path energies")
	}
}

func TestEnableITCMDoesNotShareTablesAcrossMachines(t *testing.T) {
	a := NewMachine(ARM1176())
	b := NewMachine(ARM1176())
	a.EnableITCM(0.5)
	if a.Profile.Energy.PerOp(OpOther, a.PState()) == b.Profile.Energy.PerOp(OpOther, b.PState()) {
		t.Fatal("machines share an energy table; EnableITCM leaked")
	}
}

func TestEnableITCMClamps(t *testing.T) {
	m := NewMachine(ARM1176())
	m.EnableITCM(5.0) // clamped to 0.9
	if got := m.Profile.Energy.PerOp(OpAdd, m.PState()); got <= 0 {
		t.Fatalf("add energy = %v after clamped ITCM", got)
	}
}
