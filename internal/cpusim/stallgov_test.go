package cpusim

import (
	"testing"

	"energydb/internal/memsim"
)

func TestStallAwareGovernorClassifiesMemoryBound(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	gov := NewStallAwareGovernor(m)
	gov.Tick()
	// Memory-bound window: dependent DRAM loads, no cache reuse.
	for i := 0; i < 2000; i++ {
		m.Hier.Load(uint64(i*2654435761)%(128<<20), true)
	}
	p, frac := gov.Tick()
	if frac < 0.5 {
		t.Fatalf("stall fraction = %.2f, want memory-bound", frac)
	}
	if p != gov.LowPState {
		t.Fatalf("P-state = %v, want %v for memory-bound work", p, gov.LowPState)
	}
}

func TestStallAwareGovernorKeepsCPUBoundFast(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	gov := NewStallAwareGovernor(m)
	gov.Tick()
	m.Hier.Exec(100000, memsim.InstrAdd)
	p, frac := gov.Tick()
	if frac > 0.01 {
		t.Fatalf("stall fraction = %.2f for pure compute", frac)
	}
	if p != m.Profile.MaxPState {
		t.Fatalf("P-state = %v, want max for compute", p)
	}
}

func TestStallAwareGovernorRecovers(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	gov := NewStallAwareGovernor(m)
	gov.Tick()
	for i := 0; i < 1000; i++ {
		m.Hier.Load(uint64(i*2654435761)%(128<<20), true)
	}
	gov.Tick() // memory-bound -> low
	m.Hier.Exec(200000, memsim.InstrAdd)
	p, _ := gov.Tick() // compute window -> back to max
	if p != m.Profile.MaxPState {
		t.Fatalf("governor stuck at %v after compute window", p)
	}
}

func TestEnableITCMScalesInstructionEnergy(t *testing.T) {
	m := NewMachine(ARM1176())
	before := m.Profile.Energy.PerOp(OpOther, m.PState())
	beforeL1D := m.Profile.Energy.PerOp(OpL1D, m.PState())
	m.EnableITCM(0.2)
	after := m.Profile.Energy.PerOp(OpOther, m.PState())
	if diff := after/before - 0.8; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("other energy scaled to %.3f of original, want 0.8", after/before)
	}
	if got := m.Profile.Energy.PerOp(OpL1D, m.PState()); got != beforeL1D {
		t.Fatal("ITCM must not touch data-path energies")
	}
}

func TestEnableITCMDoesNotShareTablesAcrossMachines(t *testing.T) {
	a := NewMachine(ARM1176())
	b := NewMachine(ARM1176())
	a.EnableITCM(0.5)
	if a.Profile.Energy.PerOp(OpOther, a.PState()) == b.Profile.Energy.PerOp(OpOther, b.PState()) {
		t.Fatal("machines share an energy table; EnableITCM leaked")
	}
}

func TestEnableITCMClamps(t *testing.T) {
	m := NewMachine(ARM1176())
	m.EnableITCM(5.0) // clamped to 0.9
	if got := m.Profile.Energy.PerOp(OpAdd, m.PState()); got <= 0 {
		t.Fatalf("add energy = %v after clamped ITCM", got)
	}
}
