package cpusim

import (
	"testing"

	"energydb/internal/memsim"
)

// exercise runs a fixed access mix on a machine and returns its active
// energy total.
func exercise(m *Machine) float64 {
	h := m.Hier
	base := uint64(1 << 24)
	for i := 0; i < 2000; i++ {
		h.Load(base+uint64(i)*memsim.LineSize, false)
	}
	h.StoreRange(base, 64<<10)
	h.Exec(50000, memsim.InstrAdd)
	return m.ActiveEnergy().Total()
}

// TestNewLikeFreshCounters checks the per-worker clone path: the clone
// starts with zero counters, time and energy, at the parent's P-state.
func TestNewLikeFreshCounters(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	if err := m.SetPState(PState24); err != nil {
		t.Fatal(err)
	}
	exercise(m)
	n := m.NewLike()
	if got := n.Hier.Counters(); got != (memsim.Counters{}) {
		t.Fatalf("clone counters not zero: %+v", got)
	}
	if e := n.ActiveEnergy().Total(); e != 0 {
		t.Fatalf("clone active energy = %g, want 0", e)
	}
	if s := n.WallSeconds(); s != 0 {
		t.Fatalf("clone wall clock = %g, want 0", s)
	}
	if n.PState() != PState24 {
		t.Fatalf("clone P-state = %v, want parent's %v", n.PState(), PState24)
	}
}

// TestNewLikeSameModel checks the clone reproduces the parent's energy
// model exactly: the same cold workload costs the same energy on both.
func TestNewLikeSameModel(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	n := m.NewLike()
	if got, want := exercise(n), exercise(m); got != want {
		t.Fatalf("clone energy %g != parent energy %g for identical workload", got, want)
	}
}

// TestNewLikePrivateEnergyTable checks EnableITCM on one machine never
// leaks into machines cloned from it (and vice versa): each clone owns a
// private EnergyTable copy.
func TestNewLikePrivateEnergyTable(t *testing.T) {
	m := NewMachine(ARM1176())
	n := m.NewLike()
	before := m.Profile.Energy.PerOp(OpAdd, m.PState())
	n.EnableITCM(0.5)
	if got := m.Profile.Energy.PerOp(OpAdd, m.PState()); got != before {
		t.Fatalf("clone's EnableITCM mutated parent table: %g -> %g", before, got)
	}
	if got := n.Profile.Energy.PerOp(OpAdd, n.PState()); got >= before {
		t.Fatalf("clone's EnableITCM had no effect: %g", got)
	}
}
