package cpusim

import (
	"math"
	"testing"
	"testing/quick"

	"energydb/internal/memsim"
)

func TestPStateFrequencyAndVoltage(t *testing.T) {
	if got := PState36.FrequencyGHz(); got != 3.6 {
		t.Fatalf("P36 frequency = %v, want 3.6", got)
	}
	if got := PStateMin.FrequencyGHz(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("P8 frequency = %v, want 0.8", got)
	}
	if v36, v8 := PState36.Voltage(), PStateMin.Voltage(); v36 <= v8 {
		t.Fatalf("voltage not monotonic: V(36)=%v V(8)=%v", v36, v8)
	}
	if n := len(AllPStates()); n != 29 {
		t.Fatalf("AllPStates count = %d, want 29 (paper: 29 candidate P-states)", n)
	}
}

func TestEnergyTableMatchesTable2Anchors(t *testing.T) {
	tbl := IntelEnergyTable()
	cases := []struct {
		op   MicroOp
		p    PState
		want float64
	}{
		{OpL1D, PState36, 1.30}, {OpL1D, PState24, 0.90}, {OpL1D, PState12, 0.60},
		{OpL2, PState36, 4.37}, {OpL2, PState24, 3.25}, {OpL2, PState12, 1.64},
		{OpL3, PState36, 6.64}, {OpL3, PState24, 5.91}, {OpL3, PState12, 5.33},
		{OpMem, PState36, 103.1}, {OpMem, PState24, 99.1}, {OpMem, PState12, 99.04},
		{OpReg2L1D, PState36, 2.42}, {OpReg2L1D, PState24, 1.60}, {OpReg2L1D, PState12, 1.10},
		{OpStall, PState36, 1.72}, {OpStall, PState24, 1.07}, {OpStall, PState12, 0.80},
		{OpAdd, PState36, 1.03},
		{OpNop, PState36, 0.65},
	}
	for _, c := range cases {
		if got := tbl.PerOp(c.op, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("PerOp(%v, %v) = %v, want %v", c.op, c.p, got, c.want)
		}
	}
}

func TestEnergyTablePrefetchAssumption(t *testing.T) {
	tbl := IntelEnergyTable()
	for _, p := range []PState{PState36, PState24, PState12, 18, 30} {
		if tbl.PerOp(OpPfL2, p) != tbl.PerOp(OpL3, p) {
			t.Fatalf("ΔE_pf_L2 != ΔE_L3 at %v", p)
		}
		if tbl.PerOp(OpPfL3, p) != tbl.PerOp(OpMem, p) {
			t.Fatalf("ΔE_pf_L3 != ΔE_mem at %v", p)
		}
	}
}

func TestEnergyTableInterpolationMonotonic(t *testing.T) {
	tbl := IntelEnergyTable()
	// Property: per-op energy is non-increasing as frequency drops, for
	// every op with nonzero anchors.
	f := func(raw uint8) bool {
		p := PState(int(raw)%28 + 8)
		q := (p + 1).Clamp()
		for op := MicroOp(0); op < numMicroOps; op++ {
			if tbl.Anchors[op][0] == 0 {
				continue
			}
			if tbl.PerOp(op, p) > tbl.PerOp(op, q)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyTableFloor(t *testing.T) {
	tbl := IntelEnergyTable()
	if got := tbl.PerOp(OpL1D, PStateMin); got < tbl.Anchors[OpL1D][2]*floorFrac-1e-12 {
		t.Fatalf("extrapolated energy %v fell below floor", got)
	}
	if got := tbl.PerOp(OpL1D, PStateMin); got <= 0 {
		t.Fatalf("energy must stay positive, got %v", got)
	}
}

func TestActiveEnergyComposition(t *testing.T) {
	tbl := IntelEnergyTable()
	c := memsim.Counters{
		L1DAccesses:  1000,
		L2Accesses:   100,
		L3Accesses:   10,
		MemAccesses:  5,
		StoreL1DHits: 200,
		StallCycles:  300,
		AddOps:       50,
	}
	e := tbl.Active(c, PState36)
	wantCore := (1000*1.30 + 100*4.37 + 200*2.42 + 300*1.72 + 50*1.03) * 1e-9
	if math.Abs(e.Core-wantCore) > 1e-15 {
		t.Fatalf("core energy = %v, want %v", e.Core, wantCore)
	}
	memE := 5 * 103.1 * 1e-9
	if math.Abs(e.DRAM-memE*(1-memControllerShare)) > 1e-15 {
		t.Fatalf("dram energy = %v", e.DRAM)
	}
	// Package includes core, L3, MC share.
	if e.Package() <= e.Core {
		t.Fatal("package must include more than core")
	}
	if math.Abs(e.Total()-(e.Core+e.PackageExtra+e.DRAM)) > 1e-18 {
		t.Fatal("total mismatch")
	}
}

func TestMachineSegmentAccounting(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	// Execute at P36, then switch to P12 and execute the same amount;
	// the P12 segment must take 3x the wall time and cost less energy.
	m.Hier.Exec(1_000_000, InstrAddKind())
	m.Sync()
	e36 := m.ActiveEnergy().Total()
	t36 := m.BusySeconds()
	if err := m.SetPState(PState12); err != nil {
		t.Fatal(err)
	}
	m.Hier.Exec(1_000_000, InstrAddKind())
	m.Sync()
	e12 := m.ActiveEnergy().Total() - e36
	t12 := m.BusySeconds() - t36
	if math.Abs(t12/t36-3.0) > 0.01 {
		t.Fatalf("P12 wall time ratio = %v, want 3", t12/t36)
	}
	if e12 >= e36 {
		t.Fatalf("P12 energy %v should be below P36 energy %v", e12, e36)
	}
}

// InstrAddKind re-exports the memsim add kind for tests in this package.
func InstrAddKind() memsim.InstrKind { return memsim.InstrAdd }

func TestMachinePStateRange(t *testing.T) {
	m := NewMachine(ARM1176())
	if err := m.SetPState(PState36); err == nil {
		t.Fatal("ARM profile must reject P-state 36")
	}
	if err := m.SetPState(PState12); err != nil {
		t.Fatalf("ARM profile should accept P-state 12: %v", err)
	}
}

func TestBackgroundEnergyAccumulatesOverIdle(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	m.AddIdle(2.0)
	bg := m.BackgroundEnergy()
	want := (4.0 + 3.0 + 1.6) * 2.0
	if math.Abs(bg.Total()-want) > 1e-9 {
		t.Fatalf("background = %v, want %v", bg.Total(), want)
	}
	if m.ActiveEnergy().Total() != 0 {
		t.Fatal("idle must not add active energy")
	}
}

func TestGovernorRaisesUnderLoadAndSagsWhenIdle(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	if err := m.SetPState(PState12); err != nil {
		t.Fatal(err)
	}
	m.SetEIST(true)
	// Pure compute window -> utilization 1 -> top state.
	m.Hier.Exec(100000, InstrAddKind())
	if got := m.GovernorTick(); got != PStateMax {
		t.Fatalf("after busy window P-state = %v, want %v", got, PStateMax)
	}
	// Mostly idle window -> sag.
	m.Hier.Exec(100, InstrAddKind())
	m.AddIdle(0.1)
	if got := m.GovernorTick(); got >= PStateMax {
		t.Fatalf("after idle window P-state = %v, want below max", got)
	}
}

func TestMachineReset(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	m.Hier.Load(0x40, true)
	m.AddIdle(1)
	m.Reset()
	if m.WallSeconds() != 0 || m.ActiveEnergy().Total() != 0 {
		t.Fatal("reset did not clear accounting")
	}
	if m.PState() != PStateMax {
		t.Fatal("reset should restore the top P-state")
	}
}

func TestEISTToggleDoesNotLoseEnergy(t *testing.T) {
	m := NewMachine(IntelI7_4790())
	m.Hier.Exec(1000, InstrAddKind())
	before := m.ActiveEnergy().Total()
	m.SetEIST(true)
	m.SetEIST(false)
	if got := m.ActiveEnergy().Total(); got != before {
		t.Fatalf("energy changed across EIST toggle: %v -> %v", before, got)
	}
}

func TestMicroOpString(t *testing.T) {
	if OpL1D.String() != "L1D" || OpReg2L1D.String() != "Reg2L1D" || OpMem.String() != "mem" {
		t.Fatal("micro-op names wrong")
	}
	if MicroOp(99).String() != "unknown" {
		t.Fatal("out-of-range op should be unknown")
	}
}
