// Package cpusim models the processor around the memory hierarchy: P-states
// (frequency/voltage operating points), the EIST dynamic governor, per
// micro-operation energy ground truth calibrated to the paper's Table 2, and
// wall-clock/energy accounting for measurement sessions.
//
// The package is the "hardware" of this reproduction: internal/core must
// recover the energy table defined here through the paper's micro-benchmark
// methodology without peeking at it.
package cpusim

import "fmt"

// PState is an EIST operating point. As on the paper's i7-4790, the state
// number times 100MHz is the core frequency: P-state 36 = 3.6GHz (highest),
// P-state 8 = 800MHz (lowest). 29 states exist in between, 100MHz apart.
type PState int

// P-state bounds of the i7-4790.
const (
	PStateMin PState = 8
	PStateMax PState = 36
)

// The three P-states the paper evaluates in Tables 2 and 5 and Figure 11.
const (
	PState36 PState = 36
	PState24 PState = 24
	PState12 PState = 12
)

// FrequencyHz returns the core frequency of the state.
func (p PState) FrequencyHz() float64 { return float64(p) * 100e6 }

// FrequencyGHz returns the core frequency in GHz.
func (p PState) FrequencyGHz() float64 { return float64(p) * 0.1 }

// Voltage returns the modelled core voltage of the operating point. The
// linear V/f relation spans 0.65V at 800MHz to 1.10V at 3.6GHz, typical for
// the Haswell voltage/frequency curve. The value is informational: the
// energy table already embodies the V²f scaling.
func (p PState) Voltage() float64 {
	f := p.FrequencyGHz()
	return 0.65 + (f-0.8)*(1.10-0.65)/(3.6-0.8)
}

// Valid reports whether the state is within the supported range.
func (p PState) Valid() bool { return p >= PStateMin && p <= PStateMax }

// Clamp returns p limited to the valid range.
func (p PState) Clamp() PState {
	if p < PStateMin {
		return PStateMin
	}
	if p > PStateMax {
		return PStateMax
	}
	return p
}

// String renders the state the way the paper writes it.
func (p PState) String() string { return fmt.Sprintf("P-state %d (%.1fGHz)", int(p), p.FrequencyGHz()) }

// AllPStates lists every supported state, lowest first.
func AllPStates() []PState {
	out := make([]PState, 0, PStateMax-PStateMin+1)
	for p := PStateMin; p <= PStateMax; p++ {
		out = append(out, p)
	}
	return out
}
