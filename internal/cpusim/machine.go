package cpusim

import (
	"fmt"

	"energydb/internal/memsim"
)

// BackgroundPower is the fixed per-domain power drawn whenever the machine
// is powered on (C-states disabled), in watts. The paper measures it by
// running an only-blocked program and reading RAPL; here it is part of the
// machine's ground truth. It does not scale with P-state in this model
// (leakage-dominated), which matches the paper's treatment of it as a fixed
// cost subtracted from Busy-CPU energy.
type BackgroundPower struct {
	Core         float64
	PackageExtra float64
	DRAM         float64
}

// Over returns the background energy accumulated over d seconds.
func (b BackgroundPower) Over(seconds float64) DomainEnergy {
	return DomainEnergy{b.Core * seconds, b.PackageExtra * seconds, b.DRAM * seconds}
}

// Profile bundles everything that defines a machine model.
type Profile struct {
	Name       string
	Mem        memsim.Config
	Energy     *EnergyTable
	Background BackgroundPower
	MinPState  PState
	MaxPState  PState
	// HasRAPL distinguishes the Intel part (RAPL counters) from the ARM
	// board, which is measured with an external power meter.
	HasRAPL bool
}

// IntelI7_4790 is the paper's measurement machine (Section 2.6): i7-4790,
// 32GB DDR3-1600, RAPL. Background power is sized so that, as in Section 3,
// the background share of Busy-CPU energy for database workloads lands in
// the 47%–52% band.
func IntelI7_4790() Profile {
	return Profile{
		Name:       "Intel i7-4790",
		Mem:        memsim.I7_4790(),
		Energy:     IntelEnergyTable(),
		Background: BackgroundPower{Core: 4.0, PackageExtra: 3.0, DRAM: 1.6},
		MinPState:  PStateMin,
		MaxPState:  PStateMax,
		HasRAPL:    true,
	}
}

// ARM1176 is the proof-of-concept board of Section 4: ARM1176JZF-S with
// 16KB L1D, 32KB DTCM, 256MB memory, fixed 1.2GHz-equivalent clock in this
// model, no RAPL (external power meter).
func ARM1176() Profile {
	return Profile{
		Name:       "ARM1176JZF-S",
		Mem:        memsim.ARM1176JZFS(),
		Energy:     ARMEnergyTable(),
		Background: BackgroundPower{Core: 0.55, PackageExtra: 0.15, DRAM: 0.30},
		MinPState:  PStateMin,
		MaxPState:  PState12,
		HasRAPL:    false,
	}
}

// Machine ties a hierarchy to a P-state, accumulating wall-clock time and
// true active energy segment by segment so that P-state changes mid-run are
// accounted correctly. It also implements the EIST governor used when DVFS
// is enabled.
type Machine struct {
	Profile Profile
	Hier    *memsim.Hierarchy

	pstate PState
	eist   bool

	// Segment accounting.
	lastCounters memsim.Counters
	active       DomainEnergy
	busySeconds  float64
	idleSeconds  float64

	// EIST governor state.
	gov governor
}

// NewMachine builds a machine from a profile, fixed at the highest P-state
// with EIST off (the paper's trunk-experiment configuration).
func NewMachine(p Profile) *Machine {
	m := &Machine{
		Profile: p,
		Hier:    memsim.New(p.Mem),
		pstate:  p.MaxPState,
	}
	m.Hier.SetFrequencyHz(m.pstate.FrequencyHz())
	return m
}

// NewLike returns a fresh machine of the same model at the same operating
// point: the profile (including any energy-table mutations such as ITCM) and
// the current P-state/EIST setting are replicated, the hierarchy is rebuilt
// cold with the same configuration, and all counter/energy accounting starts
// at zero. This is the per-worker clone path: N machines share one
// P-state/energy-model configuration but own private PMU counters, caches
// and energy accumulators, so statements executing on different clones never
// share mutable state and need no locks.
func (m *Machine) NewLike() *Machine {
	m.Sync()
	p := m.Profile
	p.Energy = m.Profile.Energy.Clone()
	n := &Machine{
		Profile: p,
		Hier:    m.Hier.NewLike(),
		pstate:  m.pstate,
		eist:    m.eist,
	}
	n.Hier.SetFrequencyHz(n.pstate.FrequencyHz())
	return n
}

// PState returns the current operating point.
func (m *Machine) PState() PState { return m.pstate }

// SetPState fixes the operating point (EIST off), folding the elapsed
// segment first.
func (m *Machine) SetPState(p PState) error {
	if p < m.Profile.MinPState || p > m.Profile.MaxPState {
		return fmt.Errorf("cpusim: %v out of range [%d, %d] for %s",
			p, m.Profile.MinPState, m.Profile.MaxPState, m.Profile.Name)
	}
	m.Sync()
	m.pstate = p
	m.Hier.SetFrequencyHz(p.FrequencyHz())
	return nil
}

// SetEIST turns the dynamic governor on or off.
func (m *Machine) SetEIST(on bool) {
	m.Sync()
	m.eist = on
	m.gov = governor{}
}

// EIST reports whether the governor is active.
func (m *Machine) EIST() bool { return m.eist }

// Sync folds the cycles executed since the last sync into wall-clock time
// and active energy at the current P-state. Callers that change the P-state
// or read energy must sync first; public entry points do it automatically.
func (m *Machine) Sync() {
	cur := m.Hier.Counters()
	delta := cur.Sub(m.lastCounters)
	m.lastCounters = cur
	if delta.Cycles() == 0 {
		return
	}
	m.active = m.active.Add(m.Profile.Energy.Active(delta, m.pstate))
	m.busySeconds += float64(delta.Cycles()) / m.pstate.FrequencyHz()
}

// AddIdle advances wall-clock time without executing instructions, modelling
// I/O waits. Background power keeps burning (C-states are disabled in the
// paper's measurement setup); if EIST is on, the governor sees the idle time
// as low utilization.
func (m *Machine) AddIdle(seconds float64) {
	m.Sync()
	m.idleSeconds += seconds
	if m.eist {
		m.gov.observeIdle(seconds)
	}
}

// GovernorTick must be called periodically by EIST-enabled workload drivers
// (the paper samples at 100ms). It folds the elapsed segment, computes the
// window utilization, and picks the next P-state the way EIST does: high
// load pushes toward the top state quickly, idle windows decay it.
func (m *Machine) GovernorTick() PState {
	if !m.eist {
		return m.pstate
	}
	m.Sync()
	busy := m.busySeconds - m.gov.lastBusy
	idle := m.idleSeconds - m.gov.lastIdle
	m.gov.lastBusy = m.busySeconds
	m.gov.lastIdle = m.idleSeconds
	total := busy + idle
	util := 1.0
	if total > 0 {
		util = busy / total
	}
	next := m.gov.next(util, m.Profile.MinPState, m.Profile.MaxPState)
	if next != m.pstate {
		m.pstate = next
		m.Hier.SetFrequencyHz(next.FrequencyHz())
	}
	return m.pstate
}

// ActiveEnergy returns the true cumulative active energy (the quantity the
// paper calls Active energy) by domain.
func (m *Machine) ActiveEnergy() DomainEnergy {
	m.Sync()
	return m.active
}

// BackgroundEnergy returns the cumulative background energy.
func (m *Machine) BackgroundEnergy() DomainEnergy {
	m.Sync()
	return m.Profile.Background.Over(m.busySeconds + m.idleSeconds)
}

// TotalEnergy returns active + background by domain: what a physical counter
// actually reads (before measurement noise, which the rapl package adds).
func (m *Machine) TotalEnergy() DomainEnergy {
	m.Sync()
	return m.active.Add(m.Profile.Background.Over(m.busySeconds + m.idleSeconds))
}

// BusySeconds returns accumulated executing wall-clock time.
func (m *Machine) BusySeconds() float64 { m.Sync(); return m.busySeconds }

// IdleSeconds returns accumulated idle (I/O wait) wall-clock time.
func (m *Machine) IdleSeconds() float64 { m.Sync(); return m.idleSeconds }

// WallSeconds returns total elapsed simulated time.
func (m *Machine) WallSeconds() float64 { m.Sync(); return m.busySeconds + m.idleSeconds }

// Reset returns the machine to a cold, zero-energy state at the top P-state.
func (m *Machine) Reset() {
	m.Hier.ResetState()
	m.lastCounters = memsim.Counters{}
	m.active = DomainEnergy{}
	m.busySeconds = 0
	m.idleSeconds = 0
	m.pstate = m.Profile.MaxPState
	m.Hier.SetFrequencyHz(m.pstate.FrequencyHz())
	m.gov = governor{}
}

// EnableITCM models an instruction tightly-coupled memory (the Section 5
// suggestion for E_other-heavy systems): the hot instruction stream is
// served from scratchpad instead of the L1I cache, scaling the
// instruction-class energies (add/nop/other) down by the given saving
// fraction. The machine's energy table is mutated in place (each profile
// constructor builds a private table), after folding the elapsed segment.
func (m *Machine) EnableITCM(saving float64) {
	if saving < 0 {
		saving = 0
	}
	if saving > 0.9 {
		saving = 0.9
	}
	m.Sync()
	for _, op := range []MicroOp{OpAdd, OpNop, OpOther} {
		for i := range m.Profile.Energy.Anchors[op] {
			m.Profile.Energy.Anchors[op][i] *= 1 - saving
		}
	}
}

// governor is a simple EIST model: utilization above the up-threshold jumps
// straight to the top state (race-to-idle), utilization below the
// down-threshold steps down proportionally, and intermediate utilization
// holds. This reproduces the paper's observation that high-CPU-load query
// workloads sit at P-state 36 for most 100ms samples, while I/O-heavy
// phases sag.
type governor struct {
	lastBusy float64
	lastIdle float64
}

const (
	govUpThreshold = 0.90
)

func (g *governor) observeIdle(float64) {}

func (g *governor) next(util float64, min, max PState) PState {
	if util >= govUpThreshold {
		return max
	}
	span := float64(max - min)
	target := min + PState(util*span+0.5)
	return target.Clamp()
}
