package obs

import (
	"sort"
	"strings"
	"sync"
)

// QueryLogEntry is one retired statement in the slow/hot-query log.
type QueryLogEntry struct {
	// Session is the server-assigned session id that issued the statement.
	Session uint64 `json:"session"`
	// Seq is the log's own monotonic sequence number (admission order).
	Seq uint64 `json:"seq"`
	// Name is the statement label ("query", "tpch-q6", "explain-energy").
	Name string `json:"name"`
	// Text is the statement text, truncated to MaxTextLen.
	Text string `json:"text"`
	// Plan is the optimizer's winning plan, as a one-line summary.
	Plan string `json:"plan,omitempty"`
	// Rows is the result row count.
	Rows uint64 `json:"rows"`
	// WallSeconds is the host wall-clock execution time on the worker.
	WallSeconds float64 `json:"wall_seconds"`
	// SimSeconds is the simulated machine time the statement consumed.
	SimSeconds float64 `json:"sim_seconds"`
	// EActive is the statement's measured Active energy (J).
	EActive float64 `json:"e_active_joules"`
}

// MaxTextLen bounds the statement text retained per entry.
const MaxTextLen = 256

// QueryLog is a bounded statement log: a ring buffer of the most recent
// retirements plus two top-N boards — the slowest statements by wall time and
// the hottest by E_active — each with the winning plan summary. Memory is
// fixed (ring + 2N entries); Record is O(N) only when a statement makes a
// board.
type QueryLog struct {
	mu      sync.Mutex
	seq     uint64
	ring    []QueryLogEntry // most recent, ring[cursor-1] newest
	cursor  int
	ringLen int             // entries filled, up to len(ring)
	slow    []QueryLogEntry // descending WallSeconds, ≤ topN
	hot     []QueryLogEntry // descending EActive, ≤ topN
	topN    int
}

// NewQueryLog builds a log keeping the last ringSize statements and the top
// topN on each board.
func NewQueryLog(ringSize, topN int) *QueryLog {
	if ringSize < 1 {
		ringSize = 1
	}
	if topN < 1 {
		topN = 1
	}
	return &QueryLog{ring: make([]QueryLogEntry, ringSize), topN: topN}
}

// Record admits one retired statement.
func (q *QueryLog) Record(e QueryLogEntry) {
	if len(e.Text) > MaxTextLen {
		e.Text = e.Text[:MaxTextLen] + "…"
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	e.Seq = q.seq
	q.ring[q.cursor] = e
	q.cursor = (q.cursor + 1) % len(q.ring)
	if q.ringLen < len(q.ring) {
		q.ringLen++
	}
	q.slow = admit(q.slow, e, q.topN, func(a, b QueryLogEntry) bool { return a.WallSeconds > b.WallSeconds })
	q.hot = admit(q.hot, e, q.topN, func(a, b QueryLogEntry) bool { return a.EActive > b.EActive })
}

// admit inserts e into the descending board if it ranks, keeping ≤ n entries.
func admit(board []QueryLogEntry, e QueryLogEntry, n int, better func(a, b QueryLogEntry) bool) []QueryLogEntry {
	if len(board) == n && !better(e, board[n-1]) {
		return board
	}
	i := sort.Search(len(board), func(i int) bool { return !better(board[i], e) })
	board = append(board, QueryLogEntry{})
	copy(board[i+1:], board[i:])
	board[i] = e
	if len(board) > n {
		board = board[:n]
	}
	return board
}

// Slowest returns the top-N statements by wall time, slowest first.
func (q *QueryLog) Slowest() []QueryLogEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]QueryLogEntry(nil), q.slow...)
}

// Hottest returns the top-N statements by E_active, hottest first.
func (q *QueryLog) Hottest() []QueryLogEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]QueryLogEntry(nil), q.hot...)
}

// Recent returns the retained ring of recent statements, newest first.
func (q *QueryLog) Recent() []QueryLogEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QueryLogEntry, 0, q.ringLen)
	for i := 1; i <= q.ringLen; i++ {
		out = append(out, q.ring[(q.cursor-i+len(q.ring))%len(q.ring)])
	}
	return out
}

// SlowestWall returns the current worst wall time (0 when empty) — the value
// behind the energyd_slowlog_slowest_seconds gauge.
func (q *QueryLog) SlowestWall() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.slow) == 0 {
		return 0
	}
	return q.slow[0].WallSeconds
}

// HottestJoules returns the current worst E_active (0 when empty).
func (q *QueryLog) HottestJoules() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.hot) == 0 {
		return 0
	}
	return q.hot[0].EActive
}

// String renders the boards for logs and the dbshell \stats view.
func (e QueryLogEntry) String() string {
	var sb strings.Builder
	sb.WriteString(e.Name)
	if e.Text != "" && e.Text != e.Name {
		sb.WriteString(" ")
		sb.WriteString(e.Text)
	}
	return sb.String()
}
