// Package obs is energyd's observability layer: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms) with Prometheus
// text-format exposition and a JSON snapshot, plus a bounded slow/hot-query
// log. The paper's premise is that energy behavior must be measured to be
// optimized (§2–§3); this package makes the serving system's measurements —
// per-statement latency and E_active, the Eq. 1 component totals, the L1D
// share band — continuously visible while it serves traffic instead of only
// inside one-shot experiments.
//
// Concurrency: every metric handle is safe for concurrent use. Counters and
// gauges are lock-free (CAS over float64 bits); histograms and the registry
// index carry small mutexes. Collection (Snapshot, WritePrometheus) runs
// concurrently with updates and observes each metric atomically, though not
// the registry as one consistent cut — standard scrape semantics.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the metric families.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry holds metric families by name. Metrics register lazily: asking
// for the same (name, labels) twice returns the same handle, so callers can
// resolve label children (e.g. an error class) at the point of use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a fixed kind and a child per label set.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64 // histogram upper bounds (excluding +Inf)

	mu       sync.Mutex
	children map[string]*child
}

// child is one concrete time series: a label set plus its value cell.
type child struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// Label is one name="value" pair.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelPairs turns alternating key, value strings into sorted Labels.
func labelPairs(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Name: kv[i], Value: kv[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// signature keys a child inside its family.
func signature(ls []Label) string {
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(',')
	}
	return sb.String()
}

// lookup returns the family, creating it with the given kind, or panics on a
// kind clash — mixing kinds under one name is a programming error that would
// corrupt the exposition.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			children: make(map[string]*child)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %v, requested as %v", name, f.kind, kind))
	}
	return f
}

// Counter returns the monotonically increasing counter for (name, labels),
// registering it on first use. labels are alternating key, value strings.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.lookup(name, help, KindCounter, nil)
	ls := labelPairs(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := signature(ls)
	c, ok := f.children[sig]
	if !ok {
		c = &child{labels: ls, ctr: &Counter{}}
		f.children[sig] = c
	}
	return c.ctr
}

// Gauge returns the settable gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.lookup(name, help, KindGauge, nil)
	ls := labelPairs(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := signature(ls)
	c, ok := f.children[sig]
	if !ok {
		c = &child{labels: ls, gauge: &Gauge{}}
		f.children[sig] = c
	}
	return c.gauge
}

// GaugeFunc registers a gauge computed at collection time (derived metrics
// such as the live L1D-share band). fn must be safe to call from any
// goroutine. Re-registering the same (name, labels) replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.lookup(name, help, KindGauge, nil)
	ls := labelPairs(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.children[signature(ls)] = &child{labels: ls, fn: fn}
}

// Histogram returns the fixed-bucket histogram for (name, labels). buckets
// are the upper bounds (le), in increasing order, excluding +Inf, and must
// match the family's buckets on every call.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: %s buckets not increasing at %d", name, i))
		}
	}
	f := r.lookup(name, help, KindHistogram, buckets)
	ls := labelPairs(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := signature(ls)
	c, ok := f.children[sig]
	if !ok {
		c = &child{labels: ls, hist: newHistogram(f.buckets)}
		f.children[sig] = c
	}
	return c.hist
}

// Counter is a monotonically increasing float64. Negative and NaN increments
// are dropped (a counter never goes backwards).
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	upper []float64 // shared, immutable

	mu     sync.Mutex
	counts []uint64 // len(upper)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]uint64, len(upper)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v (le semantics)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshotBuckets returns cumulative bucket counts (per Prometheus le
// semantics, ending with +Inf), the sum and the count, atomically.
func (h *Histogram) snapshotBuckets() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return cum, h.sum, h.count
}

// ExpBuckets returns n upper bounds starting at start, each factor apart —
// the standard shape for latency and energy distributions spanning decades.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Snapshot is a point-in-time copy of the registry, ordered deterministically
// (families by name, series by label signature). It marshals to the JSON the
// STATS wire command returns.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help"`
	Kind    string           `json:"kind"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one time series. Value is set for counters and gauges;
// Buckets/Sum/Count for histograms.
type MetricSnapshot struct {
	Labels  []Label          `json:"labels,omitempty"`
	Value   float64          `json:"value"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket. LE is rendered as a
// string because the final bucket's bound is +Inf, which JSON numbers cannot
// carry.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// FormatValue renders a float64 the way both expositions do.
func FormatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot collects every family.
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	for _, f := range r.sortedFamilies() {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, c := range f.sortedChildren() {
			m := MetricSnapshot{Labels: c.labels}
			switch {
			case c.ctr != nil:
				m.Value = c.ctr.Value()
			case c.gauge != nil:
				m.Value = c.gauge.Value()
			case c.fn != nil:
				m.Value = c.fn()
			case c.hist != nil:
				cum, sum, count := c.hist.snapshotBuckets()
				for i, n := range cum {
					le := "+Inf"
					if i < len(c.hist.upper) {
						le = FormatValue(c.hist.upper[i])
					}
					m.Buckets = append(m.Buckets, BucketSnapshot{LE: le, Count: n})
				}
				m.Sum, m.Count = sum, count
			}
			fs.Metrics = append(fs.Metrics, m)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	kids := make([]*child, 0, len(f.children))
	sigs := make([]string, 0, len(f.children))
	for sig := range f.children {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		kids = append(kids, f.children[sig])
	}
	f.mu.Unlock()
	return kids
}
