package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(2.5)
	c.Inc()
	c.Add(-4)         // dropped
	c.Add(math.NaN()) // dropped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %g, want 6.5", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation equal
// to an upper bound lands in that bucket (le is inclusive), one just above
// lands in the next, and out-of-range observations land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0000001, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	cum, sum, count := h.snapshotBuckets()
	// le=1: 0.5, 1 → 2; le=10: +1.0000001, 10 → 4; le=100: +99, 100 → 6; +Inf: +101, 1e9 → 8.
	want := []uint64{2, 4, 6, 8}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative bucket %d = %d, want %d", i, cum[i], w)
		}
	}
	if count != 8 {
		t.Errorf("count = %d, want 8", count)
	}
	if math.Abs(sum-(0.5+1+1.0000001+10+99+100+101+1e9)) > 1e-6 {
		t.Errorf("sum = %g", sum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(got[i]-want[i])/want[i] > 1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestSameHandle checks lazy registration is idempotent: the same
// (name, labels) resolves to the same cell, different labels to siblings.
func TestSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("errs", "h", "class", "parse")
	b := r.Counter("errs", "h", "class", "parse")
	c := r.Counter("errs", "h", "class", "exec")
	if a != b {
		t.Fatal("same labels returned distinct counters")
	}
	if a == c {
		t.Fatal("distinct labels share a counter")
	}
	a.Inc()
	if b.Value() != 1 || c.Value() != 0 {
		t.Fatalf("values: b=%g c=%g", b.Value(), c.Value())
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind clash")
		}
	}()
	r.Gauge("m", "h")
}

// TestConcurrentAddCollect hammers every metric kind from many goroutines
// while snapshots and expositions run concurrently — the -race gate for the
// registry.
func TestConcurrentAddCollect(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "counter")
	g := r.Gauge("g", "gauge")
	h := r.Histogram("h", "hist", ExpBuckets(1e-3, 10, 5))
	r.GaugeFunc("f", "derived", func() float64 { return c.Value() + g.Value() })

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(0.5)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%7) * 0.01)
				// Lazy child resolution under contention.
				r.Counter("lazy", "h", "w", string(rune('a'+w))).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*iters*0.5 {
		t.Errorf("counter = %g, want %g", got, workers*iters*0.5)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// goldenRegistry builds the fixture shared by the exposition golden tests.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("energyd_statements_total", "Statements retired.", "status", "ok").Add(5)
	r.Counter("energyd_statements_total", "Statements retired.", "status", "error").Add(2)
	g := r.Gauge("energyd_sessions_active", "Connected sessions.")
	g.Set(3)
	r.GaugeFunc("energyd_l1d_share", "Live (E_L1D+E_Reg2L1D)/E_active.", func() float64 { return 0.48 })
	h := r.Histogram("energyd_statement_joules", "Per-statement E_active (J).", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)
	return r
}

// TestPrometheusGolden pins the text exposition byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP energyd_l1d_share Live (E_L1D+E_Reg2L1D)/E_active.
# TYPE energyd_l1d_share gauge
energyd_l1d_share 0.48
# HELP energyd_sessions_active Connected sessions.
# TYPE energyd_sessions_active gauge
energyd_sessions_active 3
# HELP energyd_statement_joules Per-statement E_active (J).
# TYPE energyd_statement_joules histogram
energyd_statement_joules_bucket{le="0.001"} 1
energyd_statement_joules_bucket{le="0.1"} 2
energyd_statement_joules_bucket{le="+Inf"} 3
energyd_statement_joules_sum 7.0505
energyd_statement_joules_count 3
# HELP energyd_statements_total Statements retired.
# TYPE energyd_statements_total counter
energyd_statements_total{status="error"} 2
energyd_statements_total{status="ok"} 5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotJSONGolden pins the STATS JSON shape.
func TestSnapshotJSONGolden(t *testing.T) {
	data, err := json.Marshal(goldenRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"families":[` +
		`{"name":"energyd_l1d_share","help":"Live (E_L1D+E_Reg2L1D)/E_active.","kind":"gauge","metrics":[{"value":0.48}]},` +
		`{"name":"energyd_sessions_active","help":"Connected sessions.","kind":"gauge","metrics":[{"value":3}]},` +
		`{"name":"energyd_statement_joules","help":"Per-statement E_active (J).","kind":"histogram","metrics":[` +
		`{"value":0,"buckets":[{"le":"0.001","count":1},{"le":"0.1","count":2},{"le":"+Inf","count":3}],"sum":7.0505,"count":3}]},` +
		`{"name":"energyd_statements_total","help":"Statements retired.","kind":"counter","metrics":[` +
		`{"labels":[{"name":"status","value":"error"}],"value":2},` +
		`{"labels":[{"name":"status","value":"ok"}],"value":5}]}]}`
	if string(data) != want {
		t.Errorf("snapshot JSON mismatch:\n got: %s\nwant: %s", data, want)
	}
	// And it round-trips.
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Families) != 4 {
		t.Fatalf("round trip lost families: %d", len(back.Families))
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h", "q", "say \"hi\"\nback\\slash").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m{q="say \"hi\"\nback\\slash"} 1`) {
		t.Errorf("bad escaping:\n%s", sb.String())
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "energyd_statements_total{status=\"ok\"} 5") {
		t.Errorf("body missing counter:\n%s", body)
	}
}

func TestQueryLogBoards(t *testing.T) {
	q := NewQueryLog(4, 3)
	for i, e := range []QueryLogEntry{
		{Name: "a", WallSeconds: 0.5, EActive: 1},
		{Name: "b", WallSeconds: 0.1, EActive: 9},
		{Name: "c", WallSeconds: 0.9, EActive: 2},
		{Name: "d", WallSeconds: 0.2, EActive: 3},
		{Name: "e", WallSeconds: 0.7, EActive: 0.5},
	} {
		e.Session = uint64(i)
		q.Record(e)
	}
	slow := q.Slowest()
	if got := names(slow); got != "c,e,a" {
		t.Errorf("slowest = %s, want c,e,a", got)
	}
	hot := q.Hottest()
	if got := names(hot); got != "b,d,c" {
		t.Errorf("hottest = %s, want b,d,c", got)
	}
	if q.SlowestWall() != 0.9 || q.HottestJoules() != 9 {
		t.Errorf("extremes: wall=%g joules=%g", q.SlowestWall(), q.HottestJoules())
	}
	// Ring keeps only the last 4, newest first.
	recent := q.Recent()
	if got := names(recent); got != "e,d,c,b" {
		t.Errorf("recent = %s, want e,d,c,b", got)
	}
	// Boards survive ring eviction: "b" left the ring—still hottest.
	if q.Hottest()[0].Name != "b" {
		t.Error("board entry evicted with the ring")
	}
}

func TestQueryLogTruncatesText(t *testing.T) {
	q := NewQueryLog(2, 2)
	q.Record(QueryLogEntry{Name: "big", Text: strings.Repeat("x", MaxTextLen+50)})
	got := q.Recent()[0].Text
	if len(got) > MaxTextLen+len("…") {
		t.Fatalf("text not truncated: %d bytes", len(got))
	}
	if !strings.HasSuffix(got, "…") {
		t.Fatal("truncation marker missing")
	}
}

func TestQueryLogConcurrent(t *testing.T) {
	q := NewQueryLog(16, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q.Record(QueryLogEntry{Name: "q", WallSeconds: float64(i), EActive: float64(w)})
				q.Slowest()
				q.Hottest()
				q.Recent()
			}
		}(w)
	}
	wg.Wait()
	if got := q.Slowest()[0].WallSeconds; got != 499 {
		t.Fatalf("slowest wall = %g, want 499", got)
	}
}

func names(es []QueryLogEntry) string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return strings.Join(out, ",")
}
