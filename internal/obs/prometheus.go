package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, one line per
// series, histograms as cumulative le-labelled buckets plus _sum and _count.
// Output order is deterministic: families by name, series by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if f.Kind != KindHistogram.String() {
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					f.Name, renderLabels(m.Labels, "", ""), FormatValue(m.Value)); err != nil {
					return err
				}
				continue
			}
			for _, b := range m.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.Name, renderLabels(m.Labels, "le", b.LE), b.Count); err != nil {
					return err
				}
			}
			ls := renderLabels(m.Labels, "", "")
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				f.Name, ls, FormatValue(m.Sum), f.Name, ls, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels renders {k="v",...}, appending one extra pair when extraKey is
// non-empty (the histogram le label). Returns "" for an empty label set.
func renderLabels(ls []Label, extraKey, extraVal string) string {
	if len(ls) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(ls) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// Handler serves the registry at any path (mount it at /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are client disconnects; nothing to do.
		_ = r.WritePrometheus(w)
	})
}
