package nosql

import (
	"sort"

	"energydb/internal/cpusim"
	"energydb/internal/memsim"
)

// LSMKV is a LevelDB-style store: writes go to a skiplist memtable; when it
// fills it is flushed to a sorted run (SSTable); reads check the memtable,
// then each run newest-first, with a Bloom filter gating each run probe.
// Lookups are a mix of pointer chasing (skiplist), hot probes (Bloom) and
// binary search over large sorted arrays (runs) — a different energy
// signature again from both the hash store and the relational engines.
type LSMKV struct {
	m     *cpusim.Machine
	arena *memsim.Arena

	mem      *skiplist
	memLimit int
	runs     []*sstable

	hot            uint64
	HotLoadsPerOp  int
	HotStoresPerOp int
	InstrPerOp     int
}

// NewLSMKV builds a store that flushes its memtable after memLimit entries.
func NewLSMKV(m *cpusim.Machine, memLimit int, expectKeys, valueBytes int) *LSMKV {
	size := uint64(expectKeys)*uint64(valueBytes+48)*3 + (8 << 20)
	arena := memsim.NewArena(1<<36, size)
	kv := &LSMKV{
		m:              m,
		arena:          arena,
		memLimit:       memLimit,
		hot:            arena.Alloc(512, memsim.PageSize),
		HotLoadsPerOp:  20,
		HotStoresPerOp: 6,
		InstrPerOp:     110,
	}
	kv.mem = newSkiplist(m, arena)
	return kv
}

func (kv *LSMKV) opOverhead() {
	h := kv.m.Hier
	h.LoadRepeat(kv.hot, uint64(kv.HotLoadsPerOp))
	h.StoreRepeat(kv.hot+memsim.LineSize, uint64(kv.HotStoresPerOp))
	h.Exec(uint64(kv.InstrPerOp), memsim.InstrOther)
}

// Put inserts into the memtable, flushing when full.
func (kv *LSMKV) Put(key, val string) {
	kv.opOverhead()
	kv.mem.put(key, val)
	if kv.mem.len() >= kv.memLimit {
		kv.Flush()
	}
}

// Flush materializes the memtable as a new sorted run.
func (kv *LSMKV) Flush() {
	if kv.mem.len() == 0 {
		return
	}
	run := newSSTable(kv.m, kv.arena, kv.mem.entries())
	kv.runs = append(kv.runs, run)
	kv.mem = newSkiplist(kv.m, kv.arena)
}

// Get searches the memtable, then the runs newest-first.
func (kv *LSMKV) Get(key string) (string, bool) {
	kv.opOverhead()
	if v, ok := kv.mem.get(key); ok {
		return v, true
	}
	for i := len(kv.runs) - 1; i >= 0; i-- {
		if v, ok := kv.runs[i].get(key); ok {
			return v, true
		}
	}
	return "", false
}

// Scan iterates keys in [lo, hi) across the memtable and all runs, calling
// fn for each (key, value); duplicate keys yield the newest version only.
func (kv *LSMKV) Scan(lo, hi string, fn func(k, v string)) {
	kv.opOverhead()
	seen := make(map[string]bool)
	emit := func(k, v string) {
		if k >= lo && k < hi && !seen[k] {
			seen[k] = true
			fn(k, v)
		}
	}
	for _, e := range kv.mem.rangeEntries(lo, hi) {
		emit(e.key, e.val)
	}
	for i := len(kv.runs) - 1; i >= 0; i-- {
		kv.runs[i].scanRange(lo, hi, emit)
	}
}

// Runs returns the number of sorted runs.
func (kv *LSMKV) Runs() int { return len(kv.runs) }

// MemLen returns the memtable entry count.
func (kv *LSMKV) MemLen() int { return kv.mem.len() }

// ---- skiplist memtable ----

const maxSkipLevel = 12

type skipNode struct {
	key  string
	val  string
	addr uint64
	next [maxSkipLevel]*skipNode
}

type skiplist struct {
	m     *cpusim.Machine
	arena *memsim.Arena
	head  *skipNode
	level int
	n     int
	rng   uint64
}

func newSkiplist(m *cpusim.Machine, arena *memsim.Arena) *skiplist {
	return &skiplist{
		m:     m,
		arena: arena,
		head:  &skipNode{addr: arena.Alloc(64, memsim.LineSize)},
		level: 1,
		rng:   0x853c49e6748fea9b,
	}
}

func (s *skiplist) randLevel() int {
	s.rng = s.rng*6364136223846793005 + 1442695040888963407
	lvl := 1
	v := s.rng
	for lvl < maxSkipLevel && v&3 == 0 {
		lvl++
		v >>= 2
	}
	return lvl
}

func (s *skiplist) len() int { return s.n }

// search walks down the levels issuing a dependent load per visited node.
func (s *skiplist) search(key string, update *[maxSkipLevel]*skipNode) *skipNode {
	h := s.m.Hier
	x := s.head
	for lvl := s.level - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil {
			h.Load(x.next[lvl].addr, true)
			if x.next[lvl].key < key {
				x = x.next[lvl]
				continue
			}
			break
		}
		if update != nil {
			update[lvl] = x
		}
	}
	return x.next[0]
}

func (s *skiplist) put(key, val string) {
	var update [maxSkipLevel]*skipNode
	for i := range update {
		update[i] = s.head
	}
	found := s.search(key, &update)
	h := s.m.Hier
	if found != nil && found.key == key {
		found.val = val
		h.Store(found.addr)
		return
	}
	lvl := s.randLevel()
	if lvl > s.level {
		s.level = lvl
	}
	node := &skipNode{
		key:  key,
		val:  val,
		addr: s.arena.Alloc(uint64(64+align(len(val))), memsim.LineSize),
	}
	h.StoreRange(node.addr, uint64(48+len(val)))
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
		h.Store(update[i].addr)
	}
	s.n++
}

func (s *skiplist) get(key string) (string, bool) {
	found := s.search(key, nil)
	if found != nil && found.key == key {
		s.m.Hier.Load(found.addr, true)
		return found.val, true
	}
	return "", false
}

type kvPair struct{ key, val string }

func (s *skiplist) entries() []kvPair {
	out := make([]kvPair, 0, s.n)
	for x := s.head.next[0]; x != nil; x = x.next[0] {
		s.m.Hier.Load(x.addr, true)
		out = append(out, kvPair{x.key, x.val})
	}
	return out
}

func (s *skiplist) rangeEntries(lo, hi string) []kvPair {
	var out []kvPair
	for x := s.search(lo, nil); x != nil && x.key < hi; x = x.next[0] {
		s.m.Hier.Load(x.addr, false)
		out = append(out, kvPair{x.key, x.val})
	}
	return out
}

// ---- sorted runs ----

// sstEntryBytes is the simulated index-entry width of a run.
const sstEntryBytes = 32

type sstable struct {
	m     *cpusim.Machine
	base  uint64
	pairs []kvPair
	bloom []uint64
	bbase uint64
}

func newSSTable(m *cpusim.Machine, arena *memsim.Arena, pairs []kvPair) *sstable {
	sorted := make([]kvPair, len(pairs))
	copy(sorted, pairs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key < sorted[j].key })
	t := &sstable{
		m:     m,
		pairs: sorted,
		bloom: make([]uint64, max(len(pairs)/4, 1)),
	}
	t.base = arena.Alloc(uint64(len(sorted)*sstEntryBytes)+memsim.LineSize, memsim.PageSize)
	t.bbase = arena.Alloc(uint64(len(t.bloom)*8)+memsim.LineSize, memsim.PageSize)
	h := m.Hier
	for i, p := range sorted {
		h.Store(t.base + uint64(i*sstEntryBytes))
		for k := 0; k < 2; k++ {
			bit := bloomBit(p.key, k, len(t.bloom)*64)
			t.bloom[bit/64] |= 1 << (bit % 64)
			h.Store(t.bbase + uint64(bit/64*8))
		}
	}
	return t
}

func bloomBit(key string, k, bits int) int {
	h := hashString(key) ^ uint64(k)*0x9E3779B97F4A7C15
	return int(h % uint64(bits))
}

// mightContain probes the Bloom filter (hot loads; filters are small).
func (t *sstable) mightContain(key string) bool {
	h := t.m.Hier
	for k := 0; k < 2; k++ {
		bit := bloomBit(key, k, len(t.bloom)*64)
		h.Load(t.bbase+uint64(bit/64*8), true)
		if t.bloom[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// get binary-searches the run; every probe is a dependent load into a
// large sorted array (the classic cache-hostile access pattern).
func (t *sstable) get(key string) (string, bool) {
	if !t.mightContain(key) {
		return "", false
	}
	h := t.m.Hier
	lo, hi := 0, len(t.pairs)
	for lo < hi {
		mid := (lo + hi) / 2
		h.Load(t.base+uint64(mid*sstEntryBytes), true)
		h.Exec(2, memsim.InstrOther)
		switch {
		case t.pairs[mid].key < key:
			lo = mid + 1
		case t.pairs[mid].key > key:
			hi = mid
		default:
			return t.pairs[mid].val, true
		}
	}
	return "", false
}

// scanRange streams the matching slice of the run.
func (t *sstable) scanRange(lo, hi string, fn func(k, v string)) {
	start := sort.Search(len(t.pairs), func(i int) bool { return t.pairs[i].key >= lo })
	h := t.m.Hier
	for i := start; i < len(t.pairs) && t.pairs[i].key < hi; i++ {
		h.Load(t.base+uint64(i*sstEntryBytes), false)
		fn(t.pairs[i].key, t.pairs[i].val)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
