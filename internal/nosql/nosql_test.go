package nosql

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/memsim"
)

func newM(t *testing.T) *cpusim.Machine {
	t.Helper()
	return cpusim.NewMachine(cpusim.IntelI7_4790())
}

func TestHashKVRoundTrip(t *testing.T) {
	kv := NewHashKV(newM(t), 1000, 100)
	for i := 0; i < 1000; i++ {
		if err := kv.Put(Key(i), Value(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if kv.Len() != 1000 {
		t.Fatalf("len = %d", kv.Len())
	}
	for i := 0; i < 1000; i += 37 {
		v, ok := kv.Get(Key(i))
		if !ok || v != Value(i, 100) {
			t.Fatalf("Get(%s) = %q, %v", Key(i), v, ok)
		}
	}
	if _, ok := kv.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	// Overwrite keeps the newest value.
	if err := kv.Put(Key(5), "newval"); err != nil {
		t.Fatal(err)
	}
	if v, _ := kv.Get(Key(5)); v != "newval" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if kv.Len() != 1000 {
		t.Fatalf("overwrite changed len to %d", kv.Len())
	}
}

func TestLSMKVRoundTripAcrossFlushes(t *testing.T) {
	m := newM(t)
	kv := NewLSMKV(m, 100, 1000, 64) // flush every 100 entries
	for i := 0; i < 1000; i++ {
		kv.Put(Key(i), Value(i, 64))
	}
	if kv.Runs() < 9 {
		t.Fatalf("runs = %d, want several flushes", kv.Runs())
	}
	for i := 0; i < 1000; i += 13 {
		v, ok := kv.Get(Key(i))
		if !ok || v != Value(i, 64) {
			t.Fatalf("Get(%s) = %q, %v", Key(i), v, ok)
		}
	}
	if _, ok := kv.Get("zzz"); ok {
		t.Fatal("missing key found")
	}
	// Newest version wins across runs and memtable.
	kv.Put(Key(3), "v2")
	if v, _ := kv.Get(Key(3)); v != "v2" {
		t.Fatalf("stale read: %q", v)
	}
}

func TestLSMScan(t *testing.T) {
	m := newM(t)
	kv := NewLSMKV(m, 50, 300, 32)
	for i := 0; i < 300; i++ {
		kv.Put(Key(i), Value(i, 32))
	}
	var got []string
	kv.Scan(Key(100), Key(110), func(k, v string) { got = append(got, k) })
	if len(got) != 10 {
		t.Fatalf("scan returned %d keys, want 10: %v", len(got), got)
	}
	// Scan must return the newest version.
	kv.Put(Key(105), "fresh")
	found := false
	kv.Scan(Key(105), Key(106), func(k, v string) { found = v == "fresh" })
	if !found {
		t.Fatal("scan returned a stale version")
	}
}

func TestSkiplistOrdering(t *testing.T) {
	m := newM(t)
	arena := memsim.NewArena(1<<40, 1<<20)
	s := newSkiplist(m, arena)
	keys := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, k := range keys {
		s.put(k, Value(i, 8))
	}
	entries := s.entries()
	if len(entries) != len(keys) {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].key >= entries[i].key {
			t.Fatalf("entries out of order: %v", entries)
		}
	}
}

func TestZipfSkewAndDeterminism(t *testing.T) {
	z1 := NewZipf(1000, 0.99, 7)
	z2 := NewZipf(1000, 0.99, 7)
	counts := make([]int, 1000)
	for i := 0; i < 20000; i++ {
		a, b := z1.Next(), z2.Next()
		if a != b {
			t.Fatal("zipf not deterministic")
		}
		counts[a]++
	}
	// Popular head: the top item should be drawn far more often than the
	// median item.
	if counts[0] < 50*maxInt(counts[500], 1) {
		t.Fatalf("zipf not skewed: head=%d mid=%d", counts[0], counts[500])
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestUniformCoversRange(t *testing.T) {
	u := NewUniform(10, 3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := u.Next()
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform missed values: %v", seen)
	}
}

func TestWorkloadsRunOnBothEngines(t *testing.T) {
	for _, kind := range []EngineKind{HashEngine, LSMEngine} {
		m := newM(t)
		inst, err := NewInstance(kind, m, 2000, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range Workloads() {
			n, err := inst.Run(w, 0.05)
			if err != nil {
				t.Fatalf("%v %s: %v", kind, w.Name, err)
			}
			if n == 0 {
				t.Fatalf("%v %s ran nothing", kind, w.Name)
			}
		}
	}
}

// TestPointReadsAreCacheHostile is the structural claim behind the X1
// experiment: zipf point reads over a DRAM-sized store miss caches far more
// than a relational scan would, giving a lower L1D-hit share.
func TestPointReadsAreCacheHostile(t *testing.T) {
	m := newM(t)
	inst, err := NewInstance(HashEngine, m, 120_000, 128) // ~25MB working set
	if err != nil {
		t.Fatal(err)
	}
	before := m.Hier.Counters()
	if _, err := inst.Run(Workload{Name: "u", ReadFraction: 1, Theta: 0, Ops: 5000}, 1); err != nil {
		t.Fatal(err)
	}
	d := m.Hier.Counters().Sub(before)
	if d.MemAccesses == 0 {
		t.Fatal("uniform point reads never reached DRAM")
	}
	// The hot command path still hits, but the per-op index+value chase
	// must produce a visible DRAM rate per operation.
	if perOp := float64(d.MemAccesses) / 5000; perOp < 0.5 {
		t.Fatalf("DRAM accesses per op = %.2f, want >= 0.5", perOp)
	}
}
