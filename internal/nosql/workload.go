package nosql

import (
	"fmt"

	"energydb/internal/cpusim"
)

// Store is the interface both engines satisfy for the workload drivers.
type Store interface {
	Get(key string) (string, bool)
}

// Workload is a YCSB-shaped driver.
type Workload struct {
	Name string
	// ReadFraction of operations are Gets; the rest are Puts.
	ReadFraction float64
	// Zipfian skew; 0 means uniform.
	Theta float64
	// Ops is the operation count at scale 1.
	Ops int
}

// Workloads returns the YCSB-style mixes used by the X1 experiment:
// C (read-only, zipfian), B (95% reads, zipfian) and a uniform read-only
// variant that defeats even popularity locality.
func Workloads() []Workload {
	return []Workload{
		{Name: "ycsb-c (zipf reads)", ReadFraction: 1.0, Theta: 0.99, Ops: 60_000},
		{Name: "ycsb-b (95/5 zipf)", ReadFraction: 0.95, Theta: 0.99, Ops: 60_000},
		{Name: "uniform reads", ReadFraction: 1.0, Theta: 0, Ops: 60_000},
	}
}

// Key formats the i'th key.
func Key(i int) string { return fmt.Sprintf("user%08d", i) }

// Value builds a deterministic value of the given size.
func Value(i, size int) string {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte('a' + (i+j)%26)
	}
	return string(b)
}

// Putter is the write half of the store interface.
type Putter interface {
	Put(key, val string) error
}

// lsmPutter adapts LSMKV's error-free Put.
type lsmPutter struct{ kv *LSMKV }

func (p lsmPutter) Put(key, val string) error { p.kv.Put(key, val); return nil }
func (p lsmPutter) Get(key string) (string, bool) {
	return p.kv.Get(key)
}

// EngineKind selects a store flavour.
type EngineKind int

// Store flavours.
const (
	HashEngine EngineKind = iota
	LSMEngine
)

// String names the flavour.
func (k EngineKind) String() string {
	if k == HashEngine {
		return "HashKV"
	}
	return "LSMKV"
}

// Instance is a loaded store ready to run workloads.
type Instance struct {
	Kind  EngineKind
	Keys  int
	Value int

	hash *HashKV
	lsm  *LSMKV
}

// NewInstance builds and bulk-loads a store with nKeys keys of valueBytes
// values.
func NewInstance(kind EngineKind, m *cpusim.Machine, nKeys, valueBytes int) (*Instance, error) {
	inst := &Instance{Kind: kind, Keys: nKeys, Value: valueBytes}
	switch kind {
	case HashEngine:
		inst.hash = NewHashKV(m, nKeys, valueBytes)
		for i := 0; i < nKeys; i++ {
			if err := inst.hash.Put(Key(i), Value(i, valueBytes)); err != nil {
				return nil, err
			}
		}
	default:
		inst.lsm = NewLSMKV(m, nKeys/8+1, nKeys, valueBytes)
		for i := 0; i < nKeys; i++ {
			inst.lsm.Put(Key(i), Value(i, valueBytes))
		}
		inst.lsm.Flush()
	}
	return inst, nil
}

// Get reads one key.
func (inst *Instance) Get(key string) (string, bool) {
	if inst.hash != nil {
		return inst.hash.Get(key)
	}
	return inst.lsm.Get(key)
}

// Put writes one key.
func (inst *Instance) Put(key, val string) error {
	if inst.hash != nil {
		return inst.hash.Put(key, val)
	}
	inst.lsm.Put(key, val)
	return nil
}

// Run drives the workload against the instance; scale rescales the
// operation count. It returns the number of operations executed and an
// error on any failed read of a loaded key.
func (inst *Instance) Run(w Workload, scale float64) (int, error) {
	ops := int(float64(w.Ops) * scale)
	if ops < 1 {
		ops = 1
	}
	var keys interface{ Next() int }
	if w.Theta > 0 {
		keys = NewZipf(inst.Keys, w.Theta, 12345)
	} else {
		keys = NewUniform(inst.Keys, 12345)
	}
	mix := NewUniform(1000, 777)
	for i := 0; i < ops; i++ {
		k := Key(keys.Next())
		if float64(mix.Next())/1000 < w.ReadFraction {
			if _, ok := inst.Get(k); !ok {
				return i, fmt.Errorf("nosql: loaded key %q missing", k)
			}
		} else {
			if err := inst.Put(k, Value(i, inst.Value)); err != nil {
				return i, err
			}
		}
	}
	return ops, nil
}
