// Package nosql implements the paper's stated future work (Section 7):
// profiling the energy distribution of NoSQL systems with the same micro
// analysis. Two key-value engines are built on the simulated machine — a
// Redis-style in-memory hash store and a LevelDB-style LSM store — plus
// YCSB-shaped workloads to drive them.
//
// The interesting outcome (reproduced by the X1 experiment in the harness)
// is that the L1D bottleneck is *not* universal: point-read KV workloads
// have far weaker locality than relational scans, shifting energy toward
// DRAM and stall — evidence for the paper's claim that per-system micro
// analysis is needed before choosing a customized architecture.
package nosql

import "math"

// Zipf is a deterministic Zipfian key-index generator (YCSB's skewed
// access pattern) over [0, n). It uses the classic rejection-free inverse
// CDF approximation with a fixed linear-congruential stream so runs are
// reproducible.
type Zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	state uint64
}

// NewZipf builds a generator over n items with skew theta (YCSB default
// 0.99; 0 would be uniform — use Uniform for that).
func NewZipf(n int, theta float64, seed uint64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{n: n, theta: theta, state: seed*2862933555777941757 + 3037000493}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// next returns a uniform float64 in [0, 1).
func (z *Zipf) nextFloat() float64 {
	z.state = z.state*6364136223846793005 + 1442695040888963407
	return float64(z.state>>11) / float64(1<<53)
}

// Next returns the next key index, most-popular-first.
func (z *Zipf) Next() int {
	u := z.nextFloat()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}

// Uniform is a deterministic uniform key-index generator.
type Uniform struct {
	n     int
	state uint64
}

// NewUniform builds a uniform generator over [0, n).
func NewUniform(n int, seed uint64) *Uniform {
	if n < 1 {
		n = 1
	}
	return &Uniform{n: n, state: seed*0x9E3779B97F4A7C15 + 1}
}

// Next returns the next key index.
func (u *Uniform) Next() int {
	u.state = u.state*6364136223846793005 + 1442695040888963407
	return int(u.state>>33) % u.n
}
