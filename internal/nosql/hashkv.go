package nosql

import (
	"fmt"

	"energydb/internal/cpusim"
	"energydb/internal/memsim"
)

// valueLogRecordOverhead is the per-record header in the value log.
const valueLogRecordOverhead = 16

// HashKV is a Redis-style in-memory key-value store: an open-chaining hash
// index whose entries point into a value log. Point lookups are pointer
// chases across an index that is much larger than the caches — the weak
// locality that distinguishes KV point reads from relational scans.
type HashKV struct {
	m     *cpusim.Machine
	arena *memsim.Arena

	buckets    int
	bucketBase uint64
	logBase    uint64
	logOff     uint64
	logCap     uint64

	// table maps key -> value-log address and length (Go-side contents;
	// the simulated addresses drive the energy model).
	table map[string]logEntry
	// chainLen approximates bucket chain lengths for probe simulation.
	chainLen []uint8

	// hot is the dispatch state touched on every command (request
	// parsing, command table), like a real server's hot path.
	hot uint64
	// Cost knobs.
	HotLoadsPerOp  int
	HotStoresPerOp int
	InstrPerOp     int
}

type logEntry struct {
	addr uint64
	size int
	val  string
}

// bucketBytes is the simulated size of one hash bucket head.
const bucketBytes = 16

// NewHashKV sizes the store for the expected number of keys.
func NewHashKV(m *cpusim.Machine, expectKeys int, valueBytes int) *HashKV {
	buckets := 1
	for buckets < expectKeys*2 {
		buckets *= 2
	}
	logCap := uint64(expectKeys) * uint64(valueBytes+valueLogRecordOverhead) * 2
	arena := memsim.NewArena(1<<35, uint64(buckets)*bucketBytes+logCap+(1<<20))
	kv := &HashKV{
		m:              m,
		arena:          arena,
		buckets:        buckets,
		table:          make(map[string]logEntry, expectKeys),
		chainLen:       make([]uint8, buckets),
		HotLoadsPerOp:  24,
		HotStoresPerOp: 8,
		InstrPerOp:     90,
	}
	kv.bucketBase = arena.Alloc(uint64(buckets)*bucketBytes, memsim.PageSize)
	kv.logBase = arena.Alloc(logCap, memsim.PageSize)
	kv.logCap = logCap
	kv.hot = arena.Alloc(512, memsim.PageSize)
	return kv
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// opOverhead simulates the per-command hot path.
func (kv *HashKV) opOverhead() {
	h := kv.m.Hier
	h.LoadRepeat(kv.hot, uint64(kv.HotLoadsPerOp))
	h.StoreRepeat(kv.hot+memsim.LineSize, uint64(kv.HotStoresPerOp))
	h.Exec(uint64(kv.InstrPerOp), memsim.InstrOther)
}

// Put stores a value.
func (kv *HashKV) Put(key, val string) error {
	kv.opOverhead()
	h := kv.m.Hier
	b := hashString(key) % uint64(kv.buckets)
	h.Load(kv.bucketBase+b*bucketBytes, true) // bucket head probe
	size := len(val) + valueLogRecordOverhead
	if kv.logOff+uint64(size) > kv.logCap {
		return fmt.Errorf("nosql: value log full")
	}
	addr := kv.logBase + kv.logOff
	kv.logOff += uint64(align(size))
	h.StoreRange(addr, uint64(size)) // append to the log
	h.Store(kv.bucketBase + b*bucketBytes)
	if old, ok := kv.table[key]; !ok {
		if kv.chainLen[b] < 255 {
			kv.chainLen[b]++
		}
		_ = old
	}
	kv.table[key] = logEntry{addr: addr, size: size, val: val}
	return nil
}

// Get fetches a value; found=false when the key is absent. The simulated
// access pattern is a dependent chase: bucket head, chain entries, then the
// value record (usually DRAM-resident at realistic store sizes).
func (kv *HashKV) Get(key string) (string, bool) {
	kv.opOverhead()
	h := kv.m.Hier
	b := hashString(key) % uint64(kv.buckets)
	h.Load(kv.bucketBase+b*bucketBytes, true)
	// Chain walk: each link is a dependent load.
	for i := uint8(1); i < kv.chainLen[b]; i++ {
		h.Load(kv.bucketBase+(b^uint64(i)*7)%uint64(kv.buckets)*bucketBytes, true)
	}
	e, ok := kv.table[key]
	if !ok {
		return "", false
	}
	// First value line is a dependent load; the rest stream.
	h.Load(e.addr, true)
	if e.size > memsim.LineSize {
		h.LoadRange(e.addr+memsim.LineSize, uint64(e.size-memsim.LineSize))
	}
	return e.val, true
}

// Len returns the number of live keys.
func (kv *HashKV) Len() int { return len(kv.table) }

func align(n int) int {
	return (n + memsim.LineSize - 1) &^ (memsim.LineSize - 1)
}
