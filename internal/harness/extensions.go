package harness

import (
	"fmt"

	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/nosql"
	"energydb/internal/rapl"
	"energydb/internal/tcm"
	"energydb/internal/tpch"
)

// The X experiments implement the paper's stated extensions: Section 7's
// future work (profile NoSQL systems) and Section 5's two optimization
// suggestions (a customized memory-bound-aware DVFS policy, and ITCM for
// instruction-heavy engines).

// RunExtensionNoSQL (X1) profiles the two key-value engines under YCSB-like
// mixes with the same Eq. 1 breakdown used for the relational systems —
// the Section 7 future work. The outcome to look for: point-read KV
// workloads do NOT show the relational L1D bottleneck; their energy shifts
// toward DRAM and stall because per-operation locality is poor.
func RunExtensionNoSQL(o Options) (Result, error) {
	o = o.effective()
	l, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	prof := l.profiler()

	keys, valueBytes := 120_000, 128 // ~25MB live data: past L3, like the DB classes
	if o.Quick {
		keys = 30_000
	}

	header := append([]string{"Engine", "Workload"}, append(shareHeader, "L1D+St%")...)
	var rows [][]string
	for _, kind := range []nosql.EngineKind{nosql.HashEngine, nosql.LSMEngine} {
		inst, err := nosql.NewInstance(kind, l.m, keys, valueBytes)
		if err != nil {
			return Result{}, err
		}
		for _, w := range Workloadsets(o) {
			w := w
			// Warm pass, then the measured run.
			if _, err := inst.Run(w, 0.05); err != nil {
				return Result{}, err
			}
			var runErr error
			b := prof.Profile(w.Name, func() {
				_, runErr = inst.Run(w, workloadScale(o))
			})
			if runErr != nil {
				return Result{}, runErr
			}
			rows = append(rows, append(append([]string{kind.String(), w.Name}, shareCells(b)...),
				fmt.Sprintf("%.1f", b.L1DShare()*100)))
		}
	}
	text, csv := table("Extension X1: Active energy breakdown of NoSQL key-value stores (Section 7 future work)", header, rows)
	return Result{ID: "X1", Title: "Extension X1 (NoSQL)", Text: text, CSV: csv}, nil
}

// Workloadsets returns the YCSB mixes for the options.
func Workloadsets(o Options) []nosql.Workload {
	ws := nosql.Workloads()
	if o.Quick {
		return ws[:2]
	}
	return ws
}

func workloadScale(o Options) float64 {
	if o.Quick {
		return 0.1
	}
	return 1
}

// RunExtensionDVFS (X2) evaluates the Section 5 suggestion: a stall-aware
// DVFS policy that down-clocks only memory-bound execution. It compares
// three policies — fixed P36, and the stall-aware governor — on a
// memory-bound plan (index scan over a DRAM-sized table) and a CPU-bound
// plan (warm table scan), reporting energy, runtime and energy-efficiency
// (Perf/Energy, the metric of [14] the paper uses).
func RunExtensionDVFS(o Options) (Result, error) {
	o = o.effective()
	class := tpch.Size500MB
	if o.Quick {
		class = tpch.Size100MB
	}

	type outcome struct {
		energy, seconds float64
	}
	run := func(opName string, stallAware bool) (outcome, error) {
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		meter := rapl.NewMeter(m, o.Seed, 0)
		e := engine.New(engine.PostgreSQL, m, engine.SettingLarge)
		tpch.Setup(e, class)
		op, err := tpch.BasicOpByName(opName)
		if err != nil {
			return outcome{}, err
		}
		plan, err := op.Build(e)
		if err != nil {
			return outcome{}, err
		}
		if _, err := e.Run(plan); err != nil { // warm buffers
			return outcome{}, err
		}
		plan, err = op.Build(e)
		if err != nil {
			return outcome{}, err
		}
		gov := cpusim.NewStallAwareGovernor(m)
		if stallAware {
			// Probe outside the measured session: run a short prefix
			// of the plan so the policy locks onto its stall profile
			// (a real implementation would read the plan type and the
			// memory-access counters, as Section 5 suggests).
			probe, err := op.Build(e)
			if err != nil {
				return outcome{}, err
			}
			gov.Tick() // reset the window
			if _, err := e.Run(&exec.Limit{Child: probe, N: 2000}); err != nil {
				return outcome{}, err
			}
			gov.Tick()
		}
		sess := meter.Begin()
		t0 := m.WallSeconds()
		if _, err := e.Run(plan); err != nil {
			return outcome{}, err
		}
		meas := sess.End()
		bg := meter.BackgroundPower(1.0)
		bgE := (bg.Package + bg.DRAM) * meas.Seconds
		return outcome{
			energy:  meas.Energy.Package + meas.Energy.DRAM - bgE,
			seconds: m.WallSeconds() - t0,
		}, nil
	}

	header := []string{"Plan", "Policy", "E_active (J)", "time (s)", "vs fixed P36"}
	var rows [][]string
	for _, opName := range []string{"index scan", "table scan"} {
		fixed, err := run(opName, false)
		if err != nil {
			return Result{}, err
		}
		aware, err := run(opName, true)
		if err != nil {
			return Result{}, err
		}
		// Energy-efficiency = Perf/Energy, the paper's [14] metric.
		eff := (fixed.seconds / aware.seconds) / (aware.energy / fixed.energy)
		rows = append(rows,
			[]string{opName, "fixed P36", fmt.Sprintf("%.4f", fixed.energy), fmt.Sprintf("%.4f", fixed.seconds), "-"},
			[]string{opName, "stall-aware", fmt.Sprintf("%.4f", aware.energy), fmt.Sprintf("%.4f", aware.seconds),
				fmt.Sprintf("energy %+.1f%%, time %+.1f%%, eff x%.2f",
					(aware.energy/fixed.energy-1)*100, (aware.seconds/fixed.seconds-1)*100, eff)},
		)
	}
	text, csv := table("Extension X2: stall-aware DVFS policy (Section 5 suggestion)", header, rows)
	return Result{ID: "X2", Title: "Extension X2 (custom DVFS)", Text: text, CSV: csv}, nil
}

// RunExtensionWrites (X4) profiles update statements with the same Eq. 1
// breakdown used for reads — the write-query analysis the paper explicitly
// defers ("a totally different problem", Section 2.3). The write path is
// fully modelled: journaling (WAL records or rollback-journal page images
// per profile), in-place row stores, dirty-page write-back and a closing
// checkpoint. The expected contrast with Figure 7: the store-side
// (E_Reg2L1D) share grows and journal/write-back streaming adds memory
// traffic, while the L1D bottleneck itself persists.
func RunExtensionWrites(o Options) (Result, error) {
	o = o.effective()
	type workload struct {
		name string
		frac float64 // fraction of lineitem updated
	}
	workloads := []workload{
		{"selective update (~2%)", 0.02},
		{"bulk update (~20%)", 0.20},
	}

	header := append([]string{"Database", "Statement"},
		append(shareHeader, "L1D+St%", "WAL recs", "writebacks")...)
	var rows [][]string
	for _, kind := range engine.Kinds() {
		l, err := newLab(o, cpusim.PState36)
		if err != nil {
			return Result{}, err
		}
		e := l.setupEngine(kind, o.Setting, o.Class)
		prof := l.profiler()
		li, err := e.Table("lineitem")
		if err != nil {
			return Result{}, err
		}
		qtyIdx := li.Schema().MustColIndex("l_quantity")
		dateIdx := li.Schema().MustColIndex("l_shipdate")
		for _, w := range workloads {
			// Select by a shipdate prefix whose width sets the
			// update fraction (shipdates spread ~uniformly).
			cutoff := int64(float64(2405) * w.frac)
			pred := exec.BinOp{Op: exec.OpLt,
				L: exec.Col{Idx: dateIdx, Name: "l_shipdate"},
				R: exec.Const{V: value.Date(cutoff)}}
			// Warm the table.
			if _, err := e.Run(e.Scan(li, nil)); err != nil {
				return Result{}, err
			}
			walBefore := e.WAL().Records.Load()
			wbBefore := e.Pool.WriteBacks
			var updated int
			var runErr error
			b := prof.Profile(w.name, func() {
				updated, runErr = e.UpdateWhere(li, pred, func(r value.Row) value.Row {
					r[qtyIdx] = value.Float(r[qtyIdx].AsFloat() + 1)
					return r
				})
				e.Checkpoint()
			})
			if runErr != nil {
				return Result{}, runErr
			}
			if updated == 0 {
				return Result{}, fmt.Errorf("harness: %s updated no rows", w.name)
			}
			walRecs := e.WAL().Records.Load() - walBefore //lint:monotonic WAL counters never reset within a run
			rows = append(rows, append(append([]string{kind.String(), w.name}, shareCells(b)...),
				fmt.Sprintf("%.1f", b.L1DShare()*100),
				fmt.Sprintf("%d", walRecs),
				fmt.Sprintf("%d", e.Pool.WriteBacks-wbBefore)))
		}
	}
	text, csv := table("Extension X4: Active energy breakdown of update statements (the write path the paper defers)", header, rows)
	return Result{ID: "X4", Title: "Extension X4 (write queries)", Text: text, CSV: csv}, nil
}

// RunExtensionITCM (X3) evaluates the Section 5 ITCM suggestion on the ARM
// proof-of-concept: on top of the DTCM co-design, serving the hot
// instruction stream from ITCM trims the instruction-class energies, which
// matters most for engines with a high E_other share.
func RunExtensionITCM(o Options) (Result, error) {
	o = o.effective()
	// Scratchpad literature (the paper cites Banakar et al.: ~40% below
	// cache per access); instruction fetch is roughly a third of an
	// instruction's energy, so ITCM trims instruction-class energy ~13%.
	const itcmSaving = 0.13

	run := func(dtcm, itcm bool) (float64, error) {
		m := tcm.NewMachine()
		if itcm {
			m.EnableITCM(itcmSaving)
		}
		meter := rapl.NewPowerMeter(m, o.Seed, 0)
		e := engine.New(engine.SQLite, m, engine.SettingSmall)
		tpch.Setup(e, tpch.Size10MB)
		if dtcm {
			if _, err := tcm.OptimizeSQLite(e, []string{"lineitem", "orders", "customer"}); err != nil {
				return 0, err
			}
		}
		q, err := tpch.QueryByID(1)
		if err != nil {
			return 0, err
		}
		plan, err := q.Build(e)
		if err != nil {
			return 0, err
		}
		if _, err := e.Run(plan); err != nil {
			return 0, err
		}
		plan, err = q.Build(e)
		if err != nil {
			return 0, err
		}
		var runErr error
		j, _ := meter.MeasureSession(func() { _, runErr = e.Run(plan) })
		return j, runErr
	}

	base, err := run(false, false)
	if err != nil {
		return Result{}, err
	}
	dtcmOnly, err := run(true, false)
	if err != nil {
		return Result{}, err
	}
	both, err := run(true, true)
	if err != nil {
		return Result{}, err
	}

	header := []string{"Configuration", "Energy (J)", "Saving vs baseline"}
	rows := [][]string{
		{"baseline SQLite", fmt.Sprintf("%.6f", base), "-"},
		{"+ DTCM co-design", fmt.Sprintf("%.6f", dtcmOnly), fmt.Sprintf("%.2f%%", (1-dtcmOnly/base)*100)},
		{"+ DTCM + ITCM", fmt.Sprintf("%.6f", both), fmt.Sprintf("%.2f%%", (1-both/base)*100)},
	}
	text, csv := table("Extension X3: adding ITCM to the co-design (Section 5 suggestion)", header, rows)
	return Result{ID: "X3", Title: "Extension X3 (ITCM)", Text: text, CSV: csv}, nil
}
