package harness

import (
	"fmt"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/tpch"
)

// RunFigure6 reproduces Figure 6: the Active-energy breakdown of the seven
// basic query operations on the three database systems (baseline data size
// and knobs).
func RunFigure6(o Options) (Result, error) {
	o = o.effective()
	header := append([]string{"Database", "Operation"}, shareHeader...)
	var rows [][]string
	var labels []string
	var bds []core.Breakdown
	for _, kind := range engine.Kinds() {
		l, err := newLab(o, cpusim.PState36)
		if err != nil {
			return Result{}, err
		}
		e := l.setupEngine(kind, o.Setting, o.Class)
		prof := l.profiler()
		for _, op := range tpch.BasicOps() {
			plan, err := op.Build(e)
			if err != nil {
				return Result{}, err
			}
			if _, err := e.Run(plan); err != nil { // warm
				return Result{}, err
			}
			plan, err = op.Build(e)
			if err != nil {
				return Result{}, err
			}
			var runErr error
			b := prof.Profile(op.Name, func() { _, runErr = e.Run(plan) })
			if runErr != nil {
				return Result{}, runErr
			}
			rows = append(rows, append([]string{kind.String(), op.Name}, shareCells(b)...))
			labels = append(labels, fmt.Sprintf("%s/%s", kind, op.Name))
			bds = append(bds, b)
		}
	}
	text, csv := table("Figure 6: Active energy cost breakdown of the basic query operations", header, rows)
	text += chart("Figure 6 as stacked bars:", labels, bds)
	return Result{ID: "F6", Title: "Figure 6", Text: text, CSV: csv}, nil
}

// RunFigure7 reproduces Figure 7: the breakdown of the TPC-H queries on the
// three systems, plus per-system summary lines (data-movement share and
// L1D+Reg2L1D share, the paper's headline metrics).
func RunFigure7(o Options) (Result, error) {
	o = o.effective()
	header := append([]string{"Database", "Query"}, append(shareHeader, "L1D+St%", "DataMove%", "Bg/Busy%")...)
	var rows [][]string
	var avgs []core.Breakdown
	var avgLabels []string
	for _, kind := range engine.Kinds() {
		l, err := newLab(o, cpusim.PState36)
		if err != nil {
			return Result{}, err
		}
		e := l.setupEngine(kind, o.Setting, o.Class)
		prof := l.profiler()
		var all []core.Breakdown
		for _, q := range queriesFor(o) {
			b, err := profileQuery(prof, e, q)
			if err != nil {
				return Result{}, fmt.Errorf("%v Q%d: %w", kind, q.ID, err)
			}
			all = append(all, b)
			rows = append(rows, append(append([]string{kind.String(), b.Name}, shareCells(b)...),
				fmt.Sprintf("%.1f", b.L1DShare()*100),
				fmt.Sprintf("%.1f", b.DataMovementShare()*100),
				fmt.Sprintf("%.1f", b.BackgroundShare()*100)))
		}
		avg := core.AverageBreakdown(kind.String()+" avg", all)
		avgs = append(avgs, avg)
		avgLabels = append(avgLabels, kind.String())
		rows = append(rows, append(append([]string{kind.String(), "average"}, shareCells(avg)...),
			fmt.Sprintf("%.1f", avg.L1DShare()*100),
			fmt.Sprintf("%.1f", avg.DataMovementShare()*100),
			fmt.Sprintf("%.1f", avg.BackgroundShare()*100)))
	}
	text, csv := table("Figure 7: Active energy cost breakdown of TPC-H", header, rows)
	text += chart("Figure 7 per-system averages as stacked bars:", avgLabels, avgs)
	return Result{ID: "F7", Title: "Figure 7", Text: text, CSV: csv}, nil
}

// averageVector profiles the query sweep and returns the energy-weighted
// average breakdown, the presentation of Figures 8, 9 and 11.
func averageVector(o Options, kind engine.Kind, setting engine.Setting, class tpch.SizeClass, p cpusim.PState) (core.Breakdown, error) {
	l, err := newLab(o, p)
	if err != nil {
		return core.Breakdown{}, err
	}
	e := l.setupEngine(kind, setting, class)
	prof := l.profiler()
	var all []core.Breakdown
	for _, q := range queriesFor(o) {
		b, err := profileQuery(prof, e, q)
		if err != nil {
			return core.Breakdown{}, fmt.Errorf("%v Q%d: %w", kind, q.ID, err)
		}
		all = append(all, b)
	}
	return core.AverageBreakdown(kind.String(), all), nil
}

// RunFigure8 reproduces Figure 8: per-system average breakdown across the
// 100MB / 500MB / 1GB size classes.
func RunFigure8(o Options) (Result, error) {
	o = o.effective()
	classes := []tpch.SizeClass{tpch.Size100MB, tpch.Size500MB, tpch.Size1GB}
	if o.Quick {
		classes = []tpch.SizeClass{tpch.Size10MB, tpch.Size100MB}
	}
	header := append([]string{"Database-Size"}, shareHeader...)
	var rows [][]string
	for _, kind := range engine.Kinds() {
		for _, class := range classes {
			b, err := averageVector(o, kind, o.Setting, class, cpusim.PState36)
			if err != nil {
				return Result{}, err
			}
			rows = append(rows, append([]string{fmt.Sprintf("%s-%s", kind, class)}, shareCells(b)...))
		}
	}
	text, csv := table("Figure 8: impact of data size", header, rows)
	return Result{ID: "F8", Title: "Figure 8", Text: text, CSV: csv}, nil
}

// RunFigure9 reproduces Figure 9: per-system average breakdown across the
// small / baseline / large knob settings of Table 4.
func RunFigure9(o Options) (Result, error) {
	o = o.effective()
	header := append([]string{"Database-Setting"}, shareHeader...)
	var rows [][]string
	for _, kind := range engine.Kinds() {
		for _, setting := range engine.Settings() {
			b, err := averageVector(o, kind, setting, o.Class, cpusim.PState36)
			if err != nil {
				return Result{}, err
			}
			rows = append(rows, append([]string{fmt.Sprintf("%s-%s", kind, setting)}, shareCells(b)...))
		}
	}
	text, csv := table("Figure 9: impact of database setting", header, rows)
	return Result{ID: "F9", Title: "Figure 9", Text: text, CSV: csv}, nil
}

// RunFigure11 reproduces Figure 11: per-system average breakdown at
// P-states 36, 24 and 12, each with its own calibration (as in the paper,
// which first re-evaluates ΔE_m per P-state).
func RunFigure11(o Options) (Result, error) {
	o = o.effective()
	header := append([]string{"Database-Pstate"}, append(shareHeader, "Eactive (J)")...)
	var rows [][]string
	for _, kind := range engine.Kinds() {
		for _, p := range []cpusim.PState{cpusim.PState36, cpusim.PState24, cpusim.PState12} {
			b, err := averageVector(o, kind, o.Setting, o.Class, p)
			if err != nil {
				return Result{}, err
			}
			rows = append(rows, append(append([]string{fmt.Sprintf("%s-Pstate%d", kind, int(p))}, shareCells(b)...),
				fmt.Sprintf("%.4f", b.EActive)))
		}
	}
	text, csv := table("Figure 11: impact of CPU frequencies and voltages", header, rows)
	return Result{ID: "F11", Title: "Figure 11", Text: text, CSV: csv}, nil
}
