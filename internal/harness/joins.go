package harness

import (
	"fmt"
	"strings"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/plan"
	"energydb/internal/db/sql"
	"energydb/internal/db/vec"
	"energydb/internal/memsim"
	"energydb/internal/tpch"
)

// joinDominatedShare is the cut for the join-dominated subset: a query
// belongs when its join operators (hash or index) are predicted to draw at
// least this fraction of the plan's active energy on the forced-row plan.
const joinDominatedShare = 0.25

// RunExtensionJoin (X8) isolates what batch-at-a-time joins and sorts do to
// the paper's L1D bottleneck. X7 showed the filter/aggregate pipeline's
// share shift; the join build/probe loop and the sort's key extraction are
// the remaining per-tuple interpreters, and their vectorized replacements
// (one hash kernel per probe batch, bulk key extraction, lazily rows-backed
// gather) remove the same dispatch-per-row load/store storm.
//
// The sweep runs on the PostgreSQL profile: its optimizer hash-joins any
// build side that fits work_mem, so the batch join actually fires (SQLite's
// bytecode VM prefers index nested loops, which stay row-at-a-time by
// design). Every TPC-H SQL query runs twice on identically calibrated
// machines — optimizer free to vectorize versus the DisableVectorExec knob
// forcing the row path — and the table reports measured E_active and the
// L1D+Reg2L1D share for both. Queries whose join operators are predicted to
// draw at least 25% of plan energy form the join-dominated subset the
// acceptance targets; their deltas are summarized separately.
//
// Because the optimizer's index preference keeps most stock TPC-H joins on
// the index nested loop, a join lab follows the sweep: the batch hash join
// and sort are profiled head-to-head against their row twins on TPC-H base
// tables, where the build side is well past one batch. The run ends with a
// meter-partition check: a mixed row/vector plan is rebuilt with
// per-operator meters and the per-operator counter deltas must sum exactly
// to the statement's ledger delta.
func RunExtensionJoin(o Options) (Result, error) {
	o = o.effective()

	lv, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	profV := lv.profiler()
	ev := lv.setupEngine(engine.PostgreSQL, o.Setting, o.Class)

	lr, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	profR := lr.profiler()
	er := lr.setupEngine(engine.PostgreSQL, o.Setting, o.Class)
	er.Knobs.DisableVectorExec = true

	queries := joinQueriesFor(o)
	header := []string{"Query", "join E%", "vec j/s", "E_vec (mJ)", "E_row (mJ)", "dE%", "L1D+St% vec", "L1D+St% row", "dShare (pp)"}
	var rows [][]string
	var energyV, energyR float64
	var subsetIDs []string
	var subV, subR, subShareV, subShareR float64
	vectorized := 0
	for _, q := range queries {
		jshare, err := joinEnergyShare(er, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d plan: %v", q.ID, err)
		}
		_, bv, err := profileSQLQuery(profV, ev, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d vector: %v", q.ID, err)
		}
		_, br, err := profileSQLQuery(profR, er, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d row: %v", q.ID, err)
		}
		nVec := countVectorJoinSort(ev, q)
		if nVec > 0 {
			vectorized++
		}
		energyV += bv.EActive
		energyR += br.EActive
		if jshare >= joinDominatedShare {
			subsetIDs = append(subsetIDs, fmt.Sprintf("Q%d", q.ID))
			subV += bv.EActive
			subR += br.EActive
			subShareV += bv.L1DShare()
			subShareR += br.L1DShare()
		}
		rows = append(rows, []string{
			fmt.Sprintf("Q%d", q.ID),
			fmt.Sprintf("%.1f", jshare*100),
			fmt.Sprintf("%d", nVec),
			fmt.Sprintf("%.3f", bv.EActive*1e3),
			fmt.Sprintf("%.3f", br.EActive*1e3),
			fmt.Sprintf("%+.1f", (bv.EActive/br.EActive-1)*100),
			fmt.Sprintf("%.1f", bv.L1DShare()*100),
			fmt.Sprintf("%.1f", br.L1DShare()*100),
			fmt.Sprintf("%+.1f", (bv.L1DShare()-br.L1DShare())*100),
		})
	}

	partition, err := meterPartitionLine(ev)
	if err != nil {
		return Result{}, err
	}
	labText, labCSV, err := joinLab(profV, ev, profR, er)
	if err != nil {
		return Result{}, err
	}

	text, csv := table("Extension X8: vector join/sort vs forced-row (PostgreSQL, warm buffers)", header, rows)
	text += "\nnote: stock TPC-H plans on this profile favor index nested-loop joins\n" +
		"(every join key is indexed) and the surviving hash joins build dimension\n" +
		"tables smaller than one batch, so the sweep's deltas come mostly from\n" +
		"vector scans and aggregates; the join lab below isolates the batch join.\n"
	text += "\n" + labText
	csv += "\n" + labCSV
	text += fmt.Sprintf("\nqueries with a vectorized join or sort: %d/%d\n", vectorized, len(queries))
	text += fmt.Sprintf("total E_active: vector %.3f mJ vs row %.3f mJ (%+.1f%%)\n",
		energyV*1e3, energyR*1e3, (energyV/energyR-1)*100)
	if n := float64(len(subsetIDs)); n > 0 {
		text += fmt.Sprintf("join-dominated subset (join ops >= %.0f%% of predicted plan energy): %s\n",
			joinDominatedShare*100, strings.Join(subsetIDs, ", "))
		text += fmt.Sprintf("subset E_active: vector %.3f mJ vs row %.3f mJ (%+.1f%%)\n",
			subV*1e3, subR*1e3, (subV/subR-1)*100)
		text += fmt.Sprintf("subset avg L1D+Reg2L1D share: vector %.1f%% vs row %.1f%% (measured delta %+.1f pp)\n",
			subShareV/n*100, subShareR/n*100, (subShareV-subShareR)/n*100)
	}
	text += partition + "\n"
	return Result{ID: "X8", Title: "Extension X8 (vectorized join/sort vs forced-row execution)", Text: text, CSV: csv}, nil
}

// joinQueriesFor returns the X8 sweep: all 22 queries, or a quick subset
// that keeps Q9 — the join-dominated representative the acceptance names —
// alongside a scan-bound control (Q6) and two mid-weight join queries.
func joinQueriesFor(o Options) []tpch.SQLQuery {
	qs := tpch.SQLQueries()
	if !o.Quick {
		return qs
	}
	var out []tpch.SQLQuery
	for _, q := range qs {
		switch q.ID {
		case 3, 6, 9, 13:
			out = append(out, q)
		}
	}
	return out
}

// joinEnergyShare prepares the query and returns the fraction of the plan's
// predicted active energy spent in join operators (hash or index), using
// each node's exclusive estimate. The share is computed on whichever engine
// is passed; X8 uses the forced-row engine so the subset definition does not
// depend on the mode choice under measurement.
func joinEnergyShare(e *engine.Engine, q tpch.SQLQuery) (float64, error) {
	stmt, err := sql.Parse(q.Text)
	if err != nil {
		return 0, err
	}
	p, err := plan.Prepare(e, stmt)
	if err != nil {
		return 0, err
	}
	var join, total float64
	var walk func(nd *plan.Node)
	walk = func(nd *plan.Node) {
		total += nd.EstEJ
		if isJoinNode(nd) {
			join += nd.EstEJ
		}
		for _, k := range nd.Kids {
			walk(k)
		}
	}
	walk(p.Root)
	if total <= 0 {
		return 0, nil
	}
	return join / total, nil
}

// joinLab isolates the batch join and sort on TPC-H base tables, where the
// optimizer's index preference cannot hide them: lineitem ⋈ orders on the
// order key (the build side is well past one batch, so the guard that keeps
// tiny dimension builds on the row path does not apply) and the two-key
// lineitem sort. Each operator tree is drained once to warm the buffer pool,
// then rebuilt and profiled — the row executor on the forced-row lab, the
// batch executor on the vector lab — so the E_active and L1D+Reg2L1D deltas
// are the join/sort kernels' own.
func joinLab(profV *core.Profiler, ev *engine.Engine, profR *core.Profiler, er *engine.Engine) (string, string, error) {
	sortKeys := []exec.SortKey{
		{Expr: exec.Col{Idx: 5}, Desc: true}, // l_extendedprice
		{Expr: exec.Col{Idx: 4}},             // l_quantity
	}
	rowJoin := func(e *engine.Engine) exec.Operator {
		return &exec.HashJoin{
			Ctx:   e.Ctx,
			Build: e.Scan(e.MustTable("orders"), nil), Probe: e.Scan(e.MustTable("lineitem"), nil),
			BuildKey: []int{0}, ProbeKey: []int{0},
		}
	}
	vecJoin := func(e *engine.Engine) exec.Operator {
		return &vec.RowSource{Child: &vec.HashJoin{
			Ctx:      e.Ctx,
			Build:    &vec.Scan{Ctx: e.Ctx, File: e.MustTable("orders").File},
			Probe:    &vec.Scan{Ctx: e.Ctx, File: e.MustTable("lineitem").File},
			BuildKey: []int{0}, ProbeKey: []int{0},
		}}
	}
	rowSort := func(e *engine.Engine) exec.Operator {
		return e.Sort(e.Scan(e.MustTable("lineitem"), nil), sortKeys)
	}
	vecSort := func(e *engine.Engine) exec.Operator {
		return &vec.RowSource{Child: &vec.Sort{
			Ctx:   e.Ctx,
			Child: &vec.Scan{Ctx: e.Ctx, File: e.MustTable("lineitem").File},
			Keys:  sortKeys,
		}}
	}
	profileOp := func(prof *core.Profiler, e *engine.Engine, name string, mk func(*engine.Engine) exec.Operator) (core.Breakdown, error) {
		if _, err := exec.Drain(mk(e)); err != nil {
			return core.Breakdown{}, err
		}
		var runErr error
		b := prof.Profile(name, func() {
			_, runErr = exec.Drain(mk(e))
		})
		return b, runErr
	}

	header := []string{"Op", "E_vec (mJ)", "E_row (mJ)", "dE%", "L1D+St% vec", "L1D+St% row", "dShare (pp)"}
	var rows [][]string
	for _, lab := range []struct {
		op       string
		row, vec func(*engine.Engine) exec.Operator
	}{
		{"hash_join", rowJoin, vecJoin},
		{"sort", rowSort, vecSort},
	} {
		bv, err := profileOp(profV, ev, lab.op+"-vec", lab.vec)
		if err != nil {
			return "", "", fmt.Errorf("join lab %s vector: %v", lab.op, err)
		}
		br, err := profileOp(profR, er, lab.op+"-row", lab.row)
		if err != nil {
			return "", "", fmt.Errorf("join lab %s row: %v", lab.op, err)
		}
		rows = append(rows, []string{
			lab.op,
			fmt.Sprintf("%.3f", bv.EActive*1e3),
			fmt.Sprintf("%.3f", br.EActive*1e3),
			fmt.Sprintf("%+.1f", (bv.EActive/br.EActive-1)*100),
			fmt.Sprintf("%.1f", bv.L1DShare()*100),
			fmt.Sprintf("%.1f", br.L1DShare()*100),
			fmt.Sprintf("%+.1f", (bv.L1DShare()-br.L1DShare())*100),
		})
	}
	text, csv := table("X8 join lab: lineitem JOIN orders and two-key lineitem sort, batch vs row", header, rows)
	return text, csv, nil
}

func isJoinNode(nd *plan.Node) bool {
	t := nd.Title()
	return strings.HasPrefix(t, "HashJoin") || strings.HasPrefix(t, "IndexJoin")
}

// countVectorJoinSort prepares the query on the vector-enabled engine and
// counts the join and sort operators the optimizer switched to vector mode.
func countVectorJoinSort(e *engine.Engine, q tpch.SQLQuery) int {
	stmt, err := sql.Parse(q.Text)
	if err != nil {
		return 0
	}
	p, err := plan.Prepare(e, stmt)
	if err != nil {
		return 0
	}
	n := 0
	var walk func(nd *plan.Node)
	walk = func(nd *plan.Node) {
		if nd.Mode == plan.ModeVector && (isJoinNode(nd) || strings.HasPrefix(nd.Title(), "Sort")) {
			n++
		}
		for _, k := range nd.Kids {
			walk(k)
		}
	}
	walk(p.Root)
	return n
}

// meterPartitionLine re-runs Q3 — a mixed plan: vector join/sort chain under
// a row-mode aggregate on this class — with every operator wrapped in a
// counter meter, and checks the per-operator exclusive deltas sum exactly to
// the statement's ledger delta. This is the attribution invariant EXPLAIN
// ENERGY relies on, now covering plans that cross the row/vector boundary.
func meterPartitionLine(e *engine.Engine) (string, error) {
	q, err := tpch.SQLByID(3)
	if err != nil {
		return "", err
	}
	stmt, err := sql.Parse(q.Text)
	if err != nil {
		return "", err
	}
	p, err := plan.Prepare(e, stmt)
	if err != nil {
		return "", err
	}
	op, meters, err := p.BuildMetered()
	if err != nil {
		return "", err
	}
	c0 := e.M.Hier.Counters()
	if _, err := exec.Collect(op); err != nil {
		return "", err
	}
	delta := e.M.Hier.Counters().Sub(c0)
	var sum memsim.Counters
	for _, m := range meters {
		sum = sum.Add(m.Own())
	}
	if sum != delta {
		return "", fmt.Errorf("meter partition violated on Q3: operators sum %+v, statement delta %+v", sum, delta)
	}
	return fmt.Sprintf("meter partition: %d operator meters sum exactly to the Q3 statement delta", len(meters)), nil
}
