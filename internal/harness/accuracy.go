package harness

import (
	"fmt"
	"math"

	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/plan"
	"energydb/internal/db/sql"
	"energydb/internal/tpch"
)

// ReadmeJoinQuery is the wide-row join-plus-sort example the README walks
// through: a vector chain (two scans, a many-match hash join, a large sort)
// whose estimate X8 showed over-predicting by more than double. X9 pins it
// alongside the TPC-H sweep because it exercises exactly the paths the
// chain-wise estimator fixes target — the consumer-aware gather, the
// merge-locality comparator and the boundary transition charge.
const ReadmeJoinQuery = `SELECT * FROM lineitem JOIN partsupp ON l_suppkey = ps_suppkey WHERE l_quantity < 2 ORDER BY ps_availqty DESC`

// RunExtensionAccuracy (X9) validates the cost model's predicted E_active
// against the measured E_active of every TPC-H query's optimizer-chosen
// plan, after the chain-wise mode selection and gather/sort/scan estimator
// fixes. X6 established the pred-vs-meas protocol; X9 is its acceptance
// sweep for the estimator rework: every query runs warm under the Eq. 1
// profiler on the SQLite profile, the README join example rides along as a
// 23rd row, and the table reports the signed error per query plus the
// within-±25% count the fixes are accepted on. Rows also show the plan's
// vector-operator count, so a prediction error can be read against how much
// of the plan went batch-at-a-time.
func RunExtensionAccuracy(o Options) (Result, error) {
	o = o.effective()
	l, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	prof := l.profiler()
	e := l.setupEngine(engine.SQLite, o.Setting, o.Class)

	queries := sqlQueriesFor(o)
	queries = append(queries, tpch.SQLQuery{ID: 0, Text: ReadmeJoinQuery, Exact: true,
		Note: "README join example"})

	header := []string{"Query", "pred (mJ)", "meas (mJ)", "err%", "vec ops"}
	var rows [][]string
	within, total := 0, 0
	worstErr, worstID := 0.0, ""
	var readmeErr float64
	for _, q := range queries {
		pred, b, err := profileSQLQuery(prof, e, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d: %v", q.ID, err)
		}
		errPct := (pred/b.EActive - 1) * 100
		name := fmt.Sprintf("Q%d", q.ID)
		if q.ID == 0 {
			name = "README"
			readmeErr = errPct
		} else {
			total++
			if math.Abs(errPct) <= 25 {
				within++
			}
		}
		if math.Abs(errPct) > math.Abs(worstErr) {
			worstErr, worstID = errPct, name
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3f", pred*1e3),
			fmt.Sprintf("%.3f", b.EActive*1e3),
			fmt.Sprintf("%+.1f", errPct),
			fmt.Sprintf("%d", countVecOps(e, q)),
		})
	}
	text, csv := table("Extension X9: estimator accuracy — predicted vs measured E_active after chain-wise mode pricing (SQLite, warm buffers)", header, rows)
	text += fmt.Sprintf("\nprediction within +/-25%%: %d/%d queries\n", within, total)
	text += fmt.Sprintf("README join example error: %+.1f%% (band +/-25%%)\n", readmeErr)
	text += fmt.Sprintf("worst absolute error: %+.1f%% on %s\n", worstErr, worstID)
	return Result{ID: "X9", Title: "Extension X9 (estimator accuracy sweep)", Text: text, CSV: csv}, nil
}

// countVecOps replans the query text and counts vector-mode operators in the
// chosen plan (planning is deterministic given the warm engine state, so the
// count matches the profiled run's plan).
func countVecOps(e *engine.Engine, q tpch.SQLQuery) int {
	stmt, err := sql.Parse(q.Text)
	if err != nil {
		return 0
	}
	p, err := plan.Prepare(e, stmt)
	if err != nil {
		return 0
	}
	count := 0
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n.Mode == plan.ModeVector {
			count++
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(p.Root)
	return count
}
