package harness

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func quickOpts() Options {
	o := DefaultOptions()
	o.Quick = true
	return o
}

// skipIfShort skips a simulation sweep in -short mode. The harness runs
// everything on one goroutine — there is nothing for the race detector to
// observe — yet the sweeps dominate the wall clock of a -race pass, so
// `make race` runs with -short and keeps full coverage of the concurrent
// packages instead.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short mode")
	}
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T5", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F13", "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
	}
	if _, err := ByID("f7"); err != nil {
		t.Error("ByID should be case-insensitive")
	}
	if _, err := ByID("F99"); err == nil {
		t.Error("expected error for unknown id")
	}
}

func TestTable1Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunTable1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"B_L1D_list", "B_L1D_array", "B_L2", "B_L3", "B_mem", "B_Reg2L1D", "B_add", "B_nop"} {
		if !strings.Contains(res.Text, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
	if !strings.Contains(res.CSV, "IPC") {
		t.Error("CSV header missing")
	}
}

func TestTable2Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunTable2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "dE_L1D") || !strings.Contains(res.Text, "dE_mem") {
		t.Fatalf("Table 2 rows missing:\n%s", res.Text)
	}
}

func TestTable3Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunTable3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "B_mem_nop") || !strings.Contains(res.Text, "average") {
		t.Fatalf("Table 3 incomplete:\n%s", res.Text)
	}
}

func TestTable5Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunTable5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "E_stall") || !strings.Contains(res.Text, "P36->P24") {
		t.Fatalf("Table 5 incomplete:\n%s", res.Text)
	}
}

func TestFigure6Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunFigure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"index scan", "table scan", "SQLite", "MySQL", "PostgreSQL"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("Figure 6 missing %q", s)
		}
	}
}

func TestFigure7Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunFigure7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "average") {
		t.Fatalf("Figure 7 missing averages:\n%s", res.Text)
	}
}

func TestFigure10Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunFigure10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"Mcf", "Libquantum", "Bzip2"} {
		if !strings.Contains(res.Text, w) {
			t.Errorf("Figure 10 missing %s", w)
		}
	}
}

func TestFigure13Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunFigure13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "DTCM peak saving") {
		t.Fatalf("Figure 13 incomplete:\n%s", res.Text)
	}
}

func TestFigure5Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunFigure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "90-100") {
		t.Fatalf("Figure 5 missing buckets:\n%s", res.Text)
	}
}

func TestFigure8Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunFigure8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "SQLite-100MB") {
		t.Fatalf("Figure 8 missing size rows:\n%s", res.Text)
	}
}

func TestFigure9Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunFigure9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"PostgreSQL-small", "MySQL-large"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("Figure 9 missing %q", s)
		}
	}
}

func TestFigure11Quick(t *testing.T) {
	skipIfShort(t)
	res, err := RunFigure11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"SQLite-Pstate36", "SQLite-Pstate12"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("Figure 11 missing %q", s)
		}
	}
}

func TestExtensionNoSQLQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionNoSQL(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"HashKV", "LSMKV", "ycsb-c"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("X1 missing %q:\n%s", s, res.Text)
		}
	}
}

func TestExtensionDVFSQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionDVFS(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"index scan", "table scan", "stall-aware"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("X2 missing %q:\n%s", s, res.Text)
		}
	}
}

func TestExtensionWritesQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionWrites(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"bulk update", "WAL recs", "SQLite"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("X4 missing %q:\n%s", s, res.Text)
		}
	}
}

func TestExtensionArchSweepQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionArchSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"stock", "Arch 1", "-40% L1D energy"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("X5 missing %q:\n%s", s, res.Text)
		}
	}
}

func TestExtensionOptimizerQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionOptimizer(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"Q1", "Q6", "prediction within", "avg L1D+Reg2L1D share by engine"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("X6 missing %q:\n%s", s, res.Text)
		}
	}
}

func TestExtensionVectorQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionVector(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"Q1", "Q6", "vector operator", "measured delta"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("X7 missing %q:\n%s", s, res.Text)
		}
	}
}

// TestExtensionAccuracyQuick checks X9's shape: the sweep rows, the README
// join example row, and the within-band summary lines all render. It also
// pins the acceptance band on the README join example itself — the query
// whose 2x over-prediction motivated the chain-wise estimator rework — so a
// cost-model regression that pushes it back out of +/-25% fails here, not
// only in the full X9 sweep.
func TestExtensionAccuracyQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionAccuracy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"Q1", "Q6", "README", "prediction within", "README join example error", "worst absolute error"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("X9 missing %q:\n%s", s, res.Text)
		}
	}
	readme := ""
	for _, line := range strings.Split(res.Text, "\n") {
		if strings.HasPrefix(line, "README join example error:") {
			readme = line
		}
	}
	var errPct float64
	if _, err := fmt.Sscanf(readme, "README join example error: %f%%", &errPct); err != nil {
		t.Fatalf("cannot parse README error line %q: %v", readme, err)
	}
	if math.Abs(errPct) > 25 {
		t.Errorf("README join example predicted E_active off by %+.1f%%, want within +/-25%%", errPct)
	}
}

// TestExtensionJoinQuick checks X8's acceptance shape: Q9 lands in the
// join-dominated subset, the subset's E_active moves down under the vector
// join/sort, and the per-operator meter partition holds on the mixed plan.
func TestExtensionJoinQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionJoin(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"Q9", "join-dominated subset", "join lab", "meter partition", "sum exactly"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("X8 missing %q:\n%s", s, res.Text)
		}
	}
	// Q9 must be inside the subset line, the subset delta negative, and the
	// join lab must show the batch join cutting E_active.
	subset := ""
	for _, line := range strings.Split(res.Text, "\n") {
		if strings.HasPrefix(line, "join-dominated subset") {
			subset = line
		}
		if strings.HasPrefix(line, "subset E_active") && !strings.Contains(line, "(-") {
			t.Errorf("X8 subset shows no E_active reduction: %s", line)
		}
		if strings.HasPrefix(line, "hash_join") && !strings.Contains(line, "-") {
			t.Errorf("X8 join lab shows no E_active reduction: %s", line)
		}
	}
	if !strings.Contains(subset, "Q9") {
		t.Errorf("Q9 not in the join-dominated subset: %s", subset)
	}
}

func TestExtensionITCMQuick(t *testing.T) {
	skipIfShort(t)
	res, err := RunExtensionITCM(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "+ DTCM + ITCM") {
		t.Fatalf("X3 incomplete:\n%s", res.Text)
	}
}
