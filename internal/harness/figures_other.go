package harness

import (
	"fmt"

	"energydb/internal/core"
	"energydb/internal/cpu2006"
	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/rapl"
	"energydb/internal/tcm"
	"energydb/internal/tpch"
)

// govSampleSec is the governor sampling period. The paper samples the
// P-state every 100ms over multi-second queries; simulated queries are
// ~100x shorter, so the period scales to 1ms to keep a comparable number of
// samples per query.
const govSampleSec = 1e-3

// interRunGapSec is the client round-trip / setup idle between repeated
// query executions in a benchmarking session. Short queries spend a larger
// share of their session in this gap, so the governor sags more often for
// them — the mechanism behind the Figure 5 spread.
const interRunGapSec = 0.8e-3

// figure5Reps is how many warm executions one sampled session contains.
const figure5Reps = 4

// RunFigure5 reproduces Figure 5: with EIST on, run each TPC-H query as a
// warm benchmarking session (repeated executions with client gaps between
// them, as the paper's 100-run methodology does), sample the P-state
// periodically, and histogram the queries by their percentage of samples
// spent at P-state 36.
func RunFigure5(o Options) (Result, error) {
	o = o.effective()
	buckets := []string{"<50", "50-60", "60-70", "70-80", "80-90", "90-100"}
	counts := make(map[engine.Kind][]int)

	for _, kind := range engine.Kinds() {
		counts[kind] = make([]int, len(buckets))
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		e := engine.New(kind, m, o.Setting)
		tpch.Setup(e, o.Class)
		m.SetEIST(true)
		for _, q := range queriesFor(o) {
			plan, err := q.Build(e)
			if err != nil {
				return Result{}, err
			}
			if _, err := e.Run(plan); err != nil { // warm caches
				return Result{}, err
			}
			p36, total, err := runWithGovernor(m, func() error {
				for rep := 0; rep < figure5Reps; rep++ {
					plan, err := q.Build(e)
					if err != nil {
						return err
					}
					if _, err := e.Run(plan); err != nil {
						return err
					}
					m.AddIdle(interRunGapSec)
					m.GovernorTick()
				}
				return nil
			})
			if err != nil {
				return Result{}, fmt.Errorf("%v Q%d: %w", kind, q.ID, err)
			}
			pct := 100.0
			if total > 0 {
				pct = float64(p36) / float64(total) * 100
			}
			counts[kind][bucketOf(pct)]++
		}
		m.SetEIST(false)
	}

	header := []string{"Percent of P-state 36", "PostgreSQL", "SQLite", "MySQL"}
	var rows [][]string
	for i, b := range buckets {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%d", counts[engine.PostgreSQL][i]),
			fmt.Sprintf("%d", counts[engine.SQLite][i]),
			fmt.Sprintf("%d", counts[engine.MySQL][i]),
		})
	}
	text, csv := table("Figure 5: query count distribution over the percent of P-state 36 (EIST on)", header, rows)
	return Result{ID: "F5", Title: "Figure 5", Text: text, CSV: csv}, nil
}

func bucketOf(pct float64) int {
	switch {
	case pct < 50:
		return 0
	case pct < 60:
		return 1
	case pct < 70:
		return 2
	case pct < 80:
		return 3
	case pct < 90:
		return 4
	default:
		return 5
	}
}

// runWithGovernor drives fn with EIST active and reconstructs the paper's
// periodic P-state sampling from the run's busy/idle mix: the governor
// holds the top state while window utilization clears its threshold, so the
// share of top-state samples is the share of sampling windows above it.
// Window-to-window jitter is deterministic, standing in for the bursty
// arrival of I/O waits at page boundaries.
func runWithGovernor(m *cpusim.Machine, fn func() error) (top, total int, err error) {
	startBusy, startIdle := m.BusySeconds(), m.IdleSeconds()
	m.GovernorTick()
	if err := fn(); err != nil {
		return 0, 0, err
	}
	m.GovernorTick()
	busy := m.BusySeconds() - startBusy
	idle := m.IdleSeconds() - startIdle
	elapsed := busy + idle
	util := 1.0
	if elapsed > 0 {
		util = busy / elapsed
	}
	total = int(elapsed / govSampleSec)
	if total < 8 {
		total = 8
	}
	for i := 0; i < total; i++ {
		phase := float64(i%7)/7.0 - 0.5 // deterministic window jitter
		if util+phase*0.12 >= 0.90 {
			top++
		}
	}
	return top, total, nil
}

// RunFigure10 reproduces Figure 10: the Active-energy breakdown of the nine
// CPU2006-like kernels, which is dissimilar from query workloads (and from
// each other).
func RunFigure10(o Options) (Result, error) {
	o = o.effective()
	l, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	prof := l.profiler()
	header := append([]string{"Workload"}, append(shareHeader, "L1D+St%")...)
	var rows [][]string
	var labels []string
	var bds []core.Breakdown
	for _, w := range cpu2006.Workloads() {
		w := w
		// Warm pass: CPU2006 workloads are long-running, so steady-state
		// cache contents (not cold-start streaming) shape the profile.
		warm := o.WorkScale / 4
		if warm > 0.05 {
			warm = 0.05
		}
		w.Run(l.m, warm)
		b := prof.Profile(w.Name, func() { w.Run(l.m, o.WorkScale) })
		rows = append(rows, append(append([]string{w.Name}, shareCells(b)...),
			fmt.Sprintf("%.1f", b.L1DShare()*100)))
		labels = append(labels, w.Name)
		bds = append(bds, b)
	}
	text, csv := table("Figure 10: energy cost breakdown of CPU2006", header, rows)
	text += chart("Figure 10 as stacked bars:", labels, bds)
	return Result{ID: "F10", Title: "Figure 10", Text: text, CSV: csv}, nil
}

// RunFigure13 reproduces Figure 13: per-query energy saving and performance
// improvement of the DTCM-optimized SQLite against the unmodified build on
// the ARM1176JZF-S (10MB data, small setting), measured with the external
// power meter.
func RunFigure13(o Options) (Result, error) {
	o = o.effective()

	runQuery := func(optimize bool, q tpch.Query) (joules, seconds float64, err error) {
		m := tcm.NewMachine()
		meter := rapl.NewPowerMeter(m, o.Seed, 0)
		e := engine.New(engine.SQLite, m, engine.SettingSmall)
		tpch.Setup(e, tpch.Size10MB)
		if optimize {
			if _, err := tcm.OptimizeSQLite(e, []string{"lineitem", "orders", "customer", "part", "supplier"}); err != nil {
				return 0, 0, err
			}
		}
		plan, err := q.Build(e)
		if err != nil {
			return 0, 0, err
		}
		if _, err := e.Run(plan); err != nil { // warm
			return 0, 0, err
		}
		plan, err = q.Build(e)
		if err != nil {
			return 0, 0, err
		}
		var runErr error
		j, s := meter.MeasureSession(func() { _, runErr = e.Run(plan) })
		return j, s, runErr
	}

	header := []string{"Query", "Energy saving%", "Perf improvement%"}
	var rows [][]string
	var sumSave, sumPerf float64
	qs := queriesFor(o)
	for _, q := range qs {
		e0, t0, err := runQuery(false, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d base: %w", q.ID, err)
		}
		e1, t1, err := runQuery(true, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d dtcm: %w", q.ID, err)
		}
		save := (1 - e1/e0) * 100
		perf := (1 - t1/t0) * 100
		sumSave += save
		sumPerf += perf
		rows = append(rows, []string{fmt.Sprintf("Q%d", q.ID),
			fmt.Sprintf("%.2f", save), fmt.Sprintf("%.2f", perf)})
	}
	avgSave := sumSave / float64(len(qs))
	avgPerf := sumPerf / float64(len(qs))
	rows = append(rows, []string{"average", fmt.Sprintf("%.2f", avgSave), fmt.Sprintf("%.2f", avgPerf)})

	peak, _ := tcm.PeakSaving(0)
	rows = append(rows, []string{"DTCM peak saving", fmt.Sprintf("%.2f", peak*100), ""})
	rows = append(rows, []string{"share of peak", fmt.Sprintf("%.0f%%", avgSave/(peak*100)*100), ""})

	text, csv := table("Figure 13: energy saving and performance improvement for SQLite using DTCM on ARM1176JZF-S", header, rows)
	return Result{ID: "F13", Title: "Figure 13", Text: text, CSV: csv}, nil
}
