package harness

import (
	"fmt"

	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/plan"
	"energydb/internal/db/sql"
	"energydb/internal/tpch"
)

// RunExtensionVector (X7) measures what vectorized execution does to the
// paper's headline bottleneck: the E_L1D+E_Reg2L1D share of Active energy.
// The row executor's per-tuple interpretation is exactly the hot-loop
// load/store storm Section 3 attributes the L1D share to; batch-at-a-time
// execution amortizes one dispatch over a cache-resident vector, so the
// interpretation component shrinks and the share shifts toward the data
// accesses themselves. Every TPC-H SQL query runs twice on identical
// machines — once with the optimizer free to choose vector operators, once
// with the DisableVectorExec knob forcing the row path — and the table
// reports measured E_active and L1D+Reg2L1D share for both, per query,
// plus the share delta the ISSUE's acceptance asks for.
func RunExtensionVector(o Options) (Result, error) {
	o = o.effective()

	lv, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	profV := lv.profiler()
	ev := lv.setupEngine(engine.SQLite, o.Setting, o.Class)

	lr, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	profR := lr.profiler()
	er := lr.setupEngine(engine.SQLite, o.Setting, o.Class)
	er.Knobs.DisableVectorExec = true

	queries := sqlQueriesFor(o)
	header := []string{"Query", "vec ops", "E_vec (mJ)", "E_row (mJ)", "dE%", "L1D+St% vec", "L1D+St% row", "dShare (pp)"}
	var rows [][]string
	var shareV, shareR, energyV, energyR float64
	vectorized := 0
	for _, q := range queries {
		_, bv, err := profileSQLQuery(profV, ev, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d vector: %v", q.ID, err)
		}
		_, br, err := profileSQLQuery(profR, er, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d row: %v", q.ID, err)
		}
		nVec := countVectorOps(ev, q)
		if nVec > 0 {
			vectorized++
		}
		shareV += bv.L1DShare()
		shareR += br.L1DShare()
		energyV += bv.EActive
		energyR += br.EActive
		rows = append(rows, []string{
			fmt.Sprintf("Q%d", q.ID),
			fmt.Sprintf("%d", nVec),
			fmt.Sprintf("%.3f", bv.EActive*1e3),
			fmt.Sprintf("%.3f", br.EActive*1e3),
			fmt.Sprintf("%+.1f", (bv.EActive/br.EActive-1)*100),
			fmt.Sprintf("%.1f", bv.L1DShare()*100),
			fmt.Sprintf("%.1f", br.L1DShare()*100),
			fmt.Sprintf("%+.1f", (bv.L1DShare()-br.L1DShare())*100),
		})
	}
	n := float64(len(queries))
	text, csv := table("Extension X7: L1D-share with and without vectorization (SQLite, warm buffers)", header, rows)
	text += fmt.Sprintf("\nqueries with at least one vector operator: %d/%d\n", vectorized, len(queries))
	text += fmt.Sprintf("total E_active: vector %.3f mJ vs row %.3f mJ (%+.1f%%)\n",
		energyV*1e3, energyR*1e3, (energyV/energyR-1)*100)
	text += fmt.Sprintf("avg L1D+Reg2L1D share: vector %.1f%% vs row %.1f%% (measured delta %+.1f pp)\n",
		shareV/n*100, shareR/n*100, (shareV-shareR)/n*100)
	return Result{ID: "X7", Title: "Extension X7 (vectorized execution vs the L1D bottleneck)", Text: text, CSV: csv}, nil
}

// countVectorOps prepares the query on the vector-enabled engine and counts
// the operators the optimizer switched to vector mode.
func countVectorOps(e *engine.Engine, q tpch.SQLQuery) int {
	stmt, err := sql.Parse(q.Text)
	if err != nil {
		return 0
	}
	p, err := plan.Prepare(e, stmt)
	if err != nil {
		return 0
	}
	n := 0
	var walk func(nd *plan.Node)
	walk = func(nd *plan.Node) {
		if nd.Mode == plan.ModeVector {
			n++
		}
		for _, k := range nd.Kids {
			walk(k)
		}
	}
	walk(p.Root)
	return n
}
