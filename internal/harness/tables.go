package harness

import (
	"fmt"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/mubench"
)

// RunTable1 reproduces Table 1: BLI, per-level miss rates and IPC of the
// eight MBS micro-benchmarks at P-state 36.
func RunTable1(o Options) (Result, error) {
	o = o.effective()
	l, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	header := []string{"Micro-benchmark", "BLI%", "L1D miss%", "L2 miss%", "L3 miss%", "IPC"}
	var rows [][]string
	for _, res := range l.cal.Results {
		c := res.Counters
		dash := func(v float64, have bool) string {
			if !have {
				return "-"
			}
			return fmt.Sprintf("%.2f", v*100)
		}
		rows = append(rows, []string{
			res.Spec.Name,
			fmt.Sprintf("%.1f", res.BLI),
			dash(c.L1DMissRate(), c.L1DAccesses > 0),
			dash(c.L2MissRate(), c.L2Accesses > 0),
			dash(c.L3MissRate(), c.L3Accesses > 0),
			fmt.Sprintf("%.3f", c.IPC()),
		})
	}
	text, csv := table("Table 1: runtime behaviors of micro-benchmarks", header, rows)
	return Result{ID: "T1", Title: "Table 1", Text: text, CSV: csv}, nil
}

// RunTable2 reproduces Table 2: solved ΔE_m at P-states 36, 24 and 12.
func RunTable2(o Options) (Result, error) {
	o = o.effective()
	cals := make(map[cpusim.PState]*core.Calibration)
	for _, p := range []cpusim.PState{cpusim.PState36, cpusim.PState24, cpusim.PState12} {
		l, err := newLab(o, p)
		if err != nil {
			return Result{}, err
		}
		cals[p] = l.cal
	}
	header := []string{"Micro-operation", "P36 (nJ)", "P24 (nJ)", "P12 (nJ)"}
	row := func(name string, get func(d core.DeltaE) float64) []string {
		return []string{name,
			fmt.Sprintf("%.2f", get(cals[cpusim.PState36].DeltaE)),
			fmt.Sprintf("%.2f", get(cals[cpusim.PState24].DeltaE)),
			fmt.Sprintf("%.2f", get(cals[cpusim.PState12].DeltaE)),
		}
	}
	rows := [][]string{
		row("dE_L1D", func(d core.DeltaE) float64 { return d.L1D }),
		row("dE_L2", func(d core.DeltaE) float64 { return d.L2 }),
		row("dE_L3, dE_pf_L2", func(d core.DeltaE) float64 { return d.L3 }),
		row("dE_mem, dE_pf_L3", func(d core.DeltaE) float64 { return d.Mem }),
		row("dE_Reg2L1D", func(d core.DeltaE) float64 { return d.Reg2L1D }),
		row("dE_stall", func(d core.DeltaE) float64 { return d.Stall }),
		row("dE_add", func(d core.DeltaE) float64 { return d.Add }),
		row("dE_nop", func(d core.DeltaE) float64 { return d.Nop }),
	}
	text, csv := table("Table 2: energy cost of micro-operations at different CPU frequencies and voltages", header, rows)
	return Result{ID: "T2", Title: "Table 2", Text: text, CSV: csv}, nil
}

// RunTable3 reproduces Table 3: measured vs estimated Active energy of the
// verification set and the accuracy metric.
func RunTable3(o Options) (Result, error) {
	o = o.effective()
	l, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	results := l.cal.Verify(l.runner)
	header := []string{"Verification benchmark", "Eactive_est (J)", "Eactive (J)", "acc%"}
	var rows [][]string
	for _, v := range results {
		rows = append(rows, []string{
			v.Name,
			fmt.Sprintf("%.6f", v.EEstimated),
			fmt.Sprintf("%.6f", v.EMeasured),
			fmt.Sprintf("%.2f", v.Accuracy*100),
		})
	}
	rows = append(rows, []string{"average", "", "", fmt.Sprintf("%.2f", core.MeanAccuracy(results)*100)})
	text, csv := table("Table 3: energy cost of verification micro-benchmarks and the accuracy", header, rows)
	return Result{ID: "T3", Title: "Table 3", Text: text, CSV: csv}, nil
}

// RunTable5 reproduces Table 5: the B_mem energy bottleneck (E_mem vs
// E_stall vs E_active) across P-states — the Section 5 motivation that even
// memory-bound workloads have their *energy* bottleneck in the CPU.
func RunTable5(o Options) (Result, error) {
	o = o.effective()
	type rowData struct {
		p            cpusim.PState
		emem, estall float64
		eactive      float64
		seconds      float64
	}
	var data []rowData
	for _, p := range []cpusim.PState{cpusim.PState36, cpusim.PState24, cpusim.PState12} {
		l, err := newLab(o, p)
		if err != nil {
			return Result{}, err
		}
		spec, err := mubench.FindSpec("B_mem")
		if err != nil {
			return Result{}, err
		}
		res := l.runner.Run(spec)
		d := l.cal.DeltaE
		data = append(data, rowData{
			p:       p,
			emem:    d.Mem * float64(res.Counters.MemAccesses) * 1e-9,
			estall:  d.Stall * float64(res.Counters.StallCycles) * 1e-9,
			eactive: res.EActive,
			seconds: res.Seconds,
		})
	}
	header := []string{"Quantity", "P36 (3.6GHz)", "P24 (2.4GHz)", "P12 (1.2GHz)"}
	cell := func(v, total float64) string {
		return fmt.Sprintf("%.4fJ (%.1f%%)", v, v/total*100)
	}
	rows := [][]string{
		{"E_mem", cell(data[0].emem, data[0].eactive), cell(data[1].emem, data[1].eactive), cell(data[2].emem, data[2].eactive)},
		{"E_stall", cell(data[0].estall, data[0].eactive), cell(data[1].estall, data[1].eactive), cell(data[2].estall, data[2].eactive)},
		{"E_active", cell(data[0].eactive, data[0].eactive), cell(data[1].eactive, data[1].eactive), cell(data[2].eactive, data[2].eactive)},
		{"elapsed", fmt.Sprintf("%.4fs", data[0].seconds), fmt.Sprintf("%.4fs", data[1].seconds), fmt.Sprintf("%.4fs", data[2].seconds)},
	}
	// The Section 5 headline: P36 -> P24 trades little performance for a
	// lot of energy on memory-bound work.
	perfLoss := data[1].seconds/data[0].seconds - 1
	saving := 1 - data[1].eactive/data[0].eactive
	rows = append(rows, []string{
		"P36->P24",
		fmt.Sprintf("perf loss %.1f%%", perfLoss*100),
		fmt.Sprintf("Eactive saving %.1f%%", saving*100),
		fmt.Sprintf("energy-eff. +%.0f%%", ((1/(1+perfLoss))/(1-saving)-1)*100),
	})
	text, csv := table("Table 5: energy cost bottleneck of B_mem at different CPU frequencies and voltages", header, rows)
	return Result{ID: "T5", Title: "Table 5", Text: text, CSV: csv}, nil
}
