package harness

import (
	"fmt"
	"math"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/plan"
	"energydb/internal/db/sql"
	"energydb/internal/tpch"
)

// RunExtensionOptimizer (X6) validates the energy-aware logical-plan
// optimizer against the paper's measurement stack. For every TPC-H query
// text it compares the cost model's predicted E_active with the measured
// E_active of the optimizer's chosen plan (warm-buffer run under the Eq. 1
// profiler), checks that the plans preserve the paper's headline result
// (E_L1D+E_Reg2L1D dominates Active energy), and — for the queries whose
// SQL is an exact transcription of the hand-built plan — that the
// optimizer's plan does not cost more energy than the hand-built one.
// A final sweep over all three engine profiles checks the Figure 7 share
// ordering (SQLite > PostgreSQL > MySQL) survives optimizer-chosen plans.
func RunExtensionOptimizer(o Options) (Result, error) {
	o = o.effective()
	l, err := newLab(o, cpusim.PState36)
	if err != nil {
		return Result{}, err
	}
	prof := l.profiler()
	e := l.setupEngine(engine.SQLite, o.Setting, o.Class)

	queries := sqlQueriesFor(o)
	header := []string{"Query", "pred (mJ)", "meas (mJ)", "err%", "L1D+St%", "hand (mJ)", "vs hand", "exact"}
	var rows [][]string
	within := 0
	var shareSum float64
	worstDelta, worstID := math.Inf(-1), 0
	for _, q := range queries {
		pred, b, err := profileSQLQuery(prof, e, q)
		if err != nil {
			return Result{}, fmt.Errorf("Q%d: %v", q.ID, err)
		}
		errPct := (pred/b.EActive - 1) * 100
		if math.Abs(errPct) <= 25 {
			within++
		}
		shareSum += b.L1DShare()
		handCell, deltaCell, exactCell := "-", "-", ""
		if q.Exact {
			exactCell = "yes"
			hand, err := tpch.QueryByID(q.ID)
			if err != nil {
				return Result{}, err
			}
			hb, err := profileQuery(prof, e, hand)
			if err != nil {
				return Result{}, fmt.Errorf("Q%d hand-built: %v", q.ID, err)
			}
			delta := (b.EActive/hb.EActive - 1) * 100
			if delta > worstDelta {
				worstDelta, worstID = delta, q.ID
			}
			handCell = fmt.Sprintf("%.3f", hb.EActive*1e3)
			deltaCell = fmt.Sprintf("%+.1f%%", delta)
		}
		rows = append(rows, []string{
			fmt.Sprintf("Q%d", q.ID),
			fmt.Sprintf("%.3f", pred*1e3),
			fmt.Sprintf("%.3f", b.EActive*1e3),
			fmt.Sprintf("%+.1f", errPct),
			fmt.Sprintf("%.1f", b.L1DShare()*100),
			handCell, deltaCell, exactCell,
		})
	}
	text, csv := table("Extension X6: energy-aware optimizer — predicted vs measured E_active (SQLite, warm buffers)", header, rows)
	text += fmt.Sprintf("\nprediction within +/-25%%: %d/%d queries\n", within, len(queries))
	if worstID != 0 {
		text += fmt.Sprintf("worst optimizer-vs-hand-built E_active delta (exact queries): %+.1f%% on Q%d\n", worstDelta, worstID)
	}
	text += fmt.Sprintf("avg L1D+Reg2L1D share of optimizer plans (SQLite): %.1f%%\n", shareSum/float64(len(queries))*100)

	// The Figure 7 cross-engine ordering, on optimizer-chosen plans: the
	// SQLite engine profile spends the largest E_L1D+E_Reg2L1D share,
	// PostgreSQL next, MySQL least.
	engText, err := optimizerEngineShares(o, queries)
	if err != nil {
		return Result{}, err
	}
	text += engText
	return Result{ID: "X6", Title: "Extension X6 (energy-aware optimizer)", Text: text, CSV: csv}, nil
}

// optimizerEngineShares profiles the optimizer's plans under each engine
// profile and renders the average L1D+Reg2L1D share per engine.
func optimizerEngineShares(o Options, queries []tpch.SQLQuery) (string, error) {
	shares := make(map[engine.Kind]float64)
	for _, kind := range engine.Kinds() {
		l, err := newLab(o, cpusim.PState36)
		if err != nil {
			return "", err
		}
		prof := l.profiler()
		e := l.setupEngine(kind, o.Setting, o.Class)
		var sum float64
		for _, q := range queries {
			_, b, err := profileSQLQuery(prof, e, q)
			if err != nil {
				return "", fmt.Errorf("%s Q%d: %v", kind, q.ID, err)
			}
			sum += b.L1DShare()
		}
		shares[kind] = sum / float64(len(queries))
	}
	ordered := shares[engine.SQLite] > shares[engine.PostgreSQL] &&
		shares[engine.PostgreSQL] > shares[engine.MySQL]
	mark := "ok"
	if !ordered {
		mark = "VIOLATED"
	}
	return fmt.Sprintf("avg L1D+Reg2L1D share by engine: SQLite %.1f%% > PostgreSQL %.1f%% > MySQL %.1f%% (Figure 7 ordering %s)\n",
		shares[engine.SQLite]*100, shares[engine.PostgreSQL]*100, shares[engine.MySQL]*100, mark), nil
}

// sqlQueriesFor returns the SQL-text query sweep for the options, mirroring
// queriesFor's quick subset.
func sqlQueriesFor(o Options) []tpch.SQLQuery {
	qs := tpch.SQLQueries()
	if !o.Quick {
		return qs
	}
	var out []tpch.SQLQuery
	for _, q := range qs {
		switch q.ID {
		case 1, 3, 4, 6, 13:
			out = append(out, q)
		}
	}
	return out
}

// profileSQLQuery plans and runs the SQL text once to warm the buffer pool,
// then re-plans — so the cost model's residency estimates see the warm pool,
// matching what it is asked to predict — and profiles the re-planned run.
func profileSQLQuery(prof *core.Profiler, e *engine.Engine, q tpch.SQLQuery) (predEJ float64, b core.Breakdown, err error) {
	stmt, err := sql.Parse(q.Text)
	if err != nil {
		return 0, b, err
	}
	p, err := plan.Prepare(e, stmt)
	if err != nil {
		return 0, b, err
	}
	op, err := p.Build()
	if err != nil {
		return 0, b, err
	}
	if _, err := exec.Collect(op); err != nil {
		return 0, b, err
	}
	p, err = plan.Prepare(e, stmt)
	if err != nil {
		return 0, b, err
	}
	op, err = p.Build()
	if err != nil {
		return 0, b, err
	}
	var runErr error
	b = prof.Profile(fmt.Sprintf("Q%d-sql", q.ID), func() {
		_, runErr = exec.Collect(op)
	})
	return p.PredictedEJ(), b, runErr
}
