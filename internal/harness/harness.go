// Package harness regenerates every table and figure of the paper's
// evaluation: Tables 1, 2, 3 and 5 (the micro-benchmark methodology) and
// Figures 5–11 and 13 (the database energy study and the proof-of-concept
// system). Each experiment renders a fixed-width text table and a CSV.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/mubench"
	"energydb/internal/rapl"
	"energydb/internal/tpch"
)

// Options configures an experiment run.
type Options struct {
	// Class is the dataset size class (experiments that sweep sizes
	// ignore it).
	Class tpch.SizeClass
	// Setting is the knob setting (experiments that sweep settings
	// ignore it).
	Setting engine.Setting
	// Scale rescales micro-benchmark pass counts (1 = paper-shaped).
	Scale float64
	// WorkScale rescales CPU2006 kernel iteration counts.
	WorkScale float64
	// Quick restricts query sweeps to a subset and the smallest class,
	// for tests and smoke runs.
	Quick bool
	// Seed drives measurement noise.
	Seed int64
}

// DefaultOptions returns the paper-shaped configuration.
func DefaultOptions() Options {
	return Options{
		Class:     tpch.Size100MB,
		Setting:   engine.SettingBaseline,
		Scale:     0.2,
		WorkScale: 0.2,
		Seed:      42,
	}
}

// quickOptions reduces everything for fast runs.
func (o Options) effective() Options {
	if o.Scale <= 0 {
		o.Scale = 0.2
	}
	if o.WorkScale <= 0 {
		o.WorkScale = 0.2
	}
	if o.Quick {
		o.Class = tpch.Size10MB
		if o.Scale > 0.05 {
			o.Scale = 0.05
		}
		if o.WorkScale > 0.05 {
			o.WorkScale = 0.05
		}
	}
	return o
}

// Result is a rendered experiment.
type Result struct {
	ID    string
	Title string
	// Text is the human-readable table.
	Text string
	// CSV is the same data in machine-readable form.
	CSV string
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) (Result, error)
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"T1", "Table 1: runtime behaviors of micro-benchmarks", RunTable1},
		{"T2", "Table 2: energy cost of micro-operations at P-states 36/24/12", RunTable2},
		{"T3", "Table 3: verification micro-benchmarks and accuracy", RunTable3},
		{"T5", "Table 5: energy bottleneck of B_mem at different P-states", RunTable5},
		{"F5", "Figure 5: query count distribution over percent of P-state 36", RunFigure5},
		{"F6", "Figure 6: Active energy breakdown of basic query operations", RunFigure6},
		{"F7", "Figure 7: Active energy breakdown of TPC-H", RunFigure7},
		{"F8", "Figure 8: impact of data size", RunFigure8},
		{"F9", "Figure 9: impact of database setting", RunFigure9},
		{"F10", "Figure 10: energy cost breakdown of CPU2006", RunFigure10},
		{"F11", "Figure 11: impact of CPU frequencies and voltages", RunFigure11},
		{"F13", "Figure 13: energy saving and performance improvement with DTCM", RunFigure13},
		{"X1", "Extension: NoSQL key-value store breakdown (Section 7 future work)", RunExtensionNoSQL},
		{"X2", "Extension: stall-aware DVFS policy (Section 5 suggestion)", RunExtensionDVFS},
		{"X3", "Extension: ITCM on top of the DTCM co-design (Section 5 suggestion)", RunExtensionITCM},
		{"X4", "Extension: update-statement breakdown (the write path deferred in Section 2.3)", RunExtensionWrites},
		{"X5", "Extension: customized-CPU architecture sweep via trace replay (Section 4.1 design space)", RunExtensionArchSweep},
		{"X6", "Extension: energy-aware logical-plan optimizer accuracy (predicted vs measured E_active)", RunExtensionOptimizer},
		{"X7", "Extension: vectorized execution and the L1D bottleneck (share with/without vectorization)", RunExtensionVector},
		{"X8", "Extension: vectorized join/sort vs forced-row execution (join-dominated subset deltas)", RunExtensionJoin},
		{"X9", "Extension: estimator accuracy sweep after chain-wise mode pricing (predicted vs measured E_active)", RunExtensionAccuracy},
	}
}

// ByID fetches an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: no experiment %q (have %s)", id, strings.Join(ids(), ", "))
}

func ids() []string {
	out := make([]string, 0)
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// lab bundles the Intel measurement stack: machine, meter, runner and a
// calibration at the requested P-state.
type lab struct {
	m      *cpusim.Machine
	meter  *rapl.Meter
	runner *mubench.Runner
	cal    *core.Calibration
}

// newLab calibrates a fresh machine at the given P-state.
func newLab(o Options, p cpusim.PState) (*lab, error) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	if err := m.SetPState(p); err != nil {
		return nil, err
	}
	meter := rapl.NewMeter(m, o.Seed, rapl.DefaultNoise)
	runner := mubench.NewRunner(m, meter)
	runner.Scale = o.Scale
	if o.Quick {
		runner.Repetitions = 2
	}
	cal, err := core.Calibrate(runner)
	if err != nil {
		return nil, err
	}
	return &lab{m: m, meter: meter, runner: runner, cal: cal}, nil
}

// profiler builds a workload profiler over the lab.
func (l *lab) profiler() *core.Profiler {
	return core.NewProfiler(l.m, l.meter, l.cal)
}

// setupEngine loads TPC-H into a fresh engine on the lab's machine.
func (l *lab) setupEngine(kind engine.Kind, setting engine.Setting, class tpch.SizeClass) *engine.Engine {
	e := engine.New(kind, l.m, setting)
	tpch.Setup(e, class)
	return e
}

// queriesFor returns the query sweep for the options.
func queriesFor(o Options) []tpch.Query {
	qs := tpch.Queries()
	if !o.Quick {
		return qs
	}
	// A representative quick subset: scan (Q1, Q6), join-heavy (Q3),
	// index-flavoured (Q4), aggregation (Q13).
	var out []tpch.Query
	for _, q := range qs {
		switch q.ID {
		case 1, 3, 4, 6, 13:
			out = append(out, q)
		}
	}
	return out
}

// profileQuery warms the plan once, rebuilds it and profiles the run.
func profileQuery(prof *core.Profiler, e *engine.Engine, q tpch.Query) (core.Breakdown, error) {
	plan, err := q.Build(e)
	if err != nil {
		return core.Breakdown{}, err
	}
	if _, err := e.Run(plan); err != nil {
		return core.Breakdown{}, err
	}
	plan, err = q.Build(e)
	if err != nil {
		return core.Breakdown{}, err
	}
	var runErr error
	b := prof.Profile(fmt.Sprintf("Q%d", q.ID), func() {
		_, runErr = e.Run(plan)
	})
	return b, runErr
}

// shareHeader is the component header of every breakdown table.
var shareHeader = []string{"E_L1D%", "E_Reg2L1D%", "E_L2%", "E_L3%", "E_mem%", "E_pf%", "E_stall%", "E_other%"}

// shareCells renders a breakdown's component shares.
func shareCells(b core.Breakdown) []string {
	out := make([]string, 0, core.NumComponents)
	for _, c := range core.Components() {
		out = append(out, fmt.Sprintf("%.1f", b.Share(c)*100))
	}
	return out
}

// barGlyphs letters the components in a stacked bar: L=E_L1D, S=E_Reg2L1D,
// 2=E_L2, 3=E_L3, M=E_mem, P=E_pf, W=E_stall (wait), .=E_other.
var barGlyphs = [core.NumComponents]byte{'L', 'S', '2', '3', 'M', 'P', 'W', '.'}

// barWidth is the stacked-bar width in characters (each char ~1.67%).
const barWidth = 60

// bar renders one breakdown as an ASCII stacked bar, the textual analogue
// of the paper's figure bars.
func bar(b core.Breakdown) string {
	out := make([]byte, 0, barWidth+2)
	out = append(out, '|')
	used := 0
	for i, c := range core.Components() {
		n := int(b.Share(c)*barWidth + 0.5)
		if used+n > barWidth {
			n = barWidth - used
		}
		for j := 0; j < n; j++ {
			out = append(out, barGlyphs[i])
		}
		used += n
	}
	for used < barWidth {
		out = append(out, ' ')
		used++
	}
	return string(append(out, '|'))
}

// barLegend explains the glyphs once per chart.
const barLegend = "legend: L=E_L1D S=E_Reg2L1D 2=E_L2 3=E_L3 M=E_mem P=E_pf W=E_stall .=E_other"

// chart renders labelled stacked bars.
func chart(title string, labels []string, bds []core.Breakdown) string {
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	var sb strings.Builder
	sb.WriteString("\n" + title + "\n" + barLegend + "\n")
	for i, b := range bds {
		fmt.Fprintf(&sb, "%-*s %s\n", width, labels[i], bar(b))
	}
	return sb.String()
}

// table renders rows as fixed-width text and CSV.
func table(title string, header []string, rows [][]string) (string, string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var text strings.Builder
	text.WriteString(title + "\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				text.WriteString("  ")
			}
			fmt.Fprintf(&text, "%-*s", widths[i], c)
		}
		text.WriteString("\n")
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			text.WriteString("  ")
		}
		text.WriteString(strings.Repeat("-", w))
	}
	text.WriteString("\n")
	for _, r := range rows {
		writeRow(r)
	}

	var csv strings.Builder
	csv.WriteString(strings.Join(header, ",") + "\n")
	for _, r := range rows {
		csv.WriteString(strings.Join(r, ",") + "\n")
	}
	return text.String(), csv.String()
}
