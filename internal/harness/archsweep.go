package harness

import (
	"fmt"

	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/tpch"
	"energydb/internal/trace"
)

// RunExtensionArchSweep (X5) explores the customized-CPU design space the
// paper motivates: one TPC-H query is captured as an access trace on the
// stock i7-4790 and replayed onto candidate architectures —
//
//   - L1D geometry sweep (8KB–128KB), showing the capacity/energy trade;
//   - "Arch 1" of Section 4.1: the same geometry with an L1D whose
//     per-access energy is 40% lower (the optimized scratchpad of the
//     paper's [9], which Section 4.3 extrapolates to "a maximum 24%
//     energy saving").
//
// Energies are the machine's ground truth (no solver in the loop): this is
// a design-space study, not a measurement study.
func RunExtensionArchSweep(o Options) (Result, error) {
	o = o.effective()

	// Capture the query stream once on the baseline machine.
	base := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, base, o.Setting)
	tpch.Setup(e, o.Class)
	base.Hier.SetPrefetchEnabled(true)
	q, err := tpch.QueryByID(1)
	if err != nil {
		return Result{}, err
	}
	plan, err := q.Build(e)
	if err != nil {
		return Result{}, err
	}
	if _, err := e.Run(plan); err != nil { // warm
		return Result{}, err
	}
	plan, err = q.Build(e)
	if err != nil {
		return Result{}, err
	}
	var runErr error
	tr := trace.Capture(base, func() { _, runErr = e.Run(plan) })
	if runErr != nil {
		return Result{}, runErr
	}

	type config struct {
		name      string
		l1dBytes  int
		l1dEnergy float64 // scale on ΔE_L1D and ΔE_Reg2L1D
	}
	configs := []config{
		{"L1D 8KB", 8 << 10, 1},
		{"L1D 16KB", 16 << 10, 1},
		{"L1D 32KB (stock)", 32 << 10, 1},
		{"L1D 64KB", 64 << 10, 1},
		{"L1D 128KB", 128 << 10, 1},
		{"Arch 1: 32KB, -40% L1D energy", 32 << 10, 0.6},
	}

	replayOn := func(c config) (energy float64, stalls uint64, missRate float64) {
		prof := cpusim.IntelI7_4790()
		prof.Mem.L1D.SizeBytes = c.l1dBytes
		prof.Mem.Prefetch.Enabled = true
		if c.l1dEnergy != 1 {
			for i := range prof.Energy.Anchors[cpusim.OpL1D] {
				prof.Energy.Anchors[cpusim.OpL1D][i] *= c.l1dEnergy
			}
			for i := range prof.Energy.Anchors[cpusim.OpReg2L1D] {
				prof.Energy.Anchors[cpusim.OpReg2L1D][i] *= c.l1dEnergy
			}
		}
		m := cpusim.NewMachine(prof)
		// Warm replay (populate caches), then the measured replay.
		trace.Replay(tr, m.Hier)
		m.Sync()
		e0 := m.ActiveEnergy().Total()
		before := m.Hier.Counters()
		trace.Replay(tr, m.Hier)
		m.Sync()
		d := m.Hier.Counters().Sub(before)
		return m.ActiveEnergy().Total() - e0, d.StallCycles, d.L1DMissRate()
	}

	var baseEnergy float64
	header := []string{"Architecture", "E_active (J)", "vs stock", "stalls", "L1D miss%"}
	var rows [][]string
	for _, c := range configs {
		energy, stalls, miss := replayOn(c)
		if c.name == "L1D 32KB (stock)" {
			baseEnergy = energy
		}
		rows = append(rows, []string{
			c.name,
			fmt.Sprintf("%.4f", energy),
			"", // filled below once the stock baseline is known
			fmt.Sprintf("%d", stalls),
			fmt.Sprintf("%.2f", miss*100),
		})
	}
	for i, c := range configs {
		energy := 0.0
		fmt.Sscanf(rows[i][1], "%f", &energy)
		if baseEnergy > 0 {
			rows[i][2] = fmt.Sprintf("%+.1f%%", (energy/baseEnergy-1)*100)
		}
		_ = c
	}

	text, csv := table(fmt.Sprintf(
		"Extension X5: customized-CPU architecture sweep (trace of TPC-H Q1 on SQLite, %d events replayed)", tr.Len()),
		header, rows)
	return Result{ID: "X5", Title: "Extension X5 (architecture sweep)", Text: text, CSV: csv}, nil
}
