package rapl

import (
	"math"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/memsim"
)

func TestReadingIsQuantizedAndCumulative(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	mt := NewMeter(m, 1, 0)
	r0 := mt.Read()
	m.Hier.Exec(10_000_000, memsim.InstrAdd)
	r1 := mt.Read()
	if r1.Package <= r0.Package {
		t.Fatal("package counter did not advance")
	}
	lsbMultiple := r1.Package / raplLSB
	if math.Abs(lsbMultiple-math.Round(lsbMultiple)) > 1e-6 {
		t.Fatalf("reading %v is not an LSB multiple", r1.Package)
	}
}

func TestSessionMeasuresDelta(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	mt := NewMeter(m, 1, 0) // no noise
	s := mt.Begin()
	m.Hier.Exec(50_000_000, memsim.InstrAdd)
	got := s.End()
	// 50M adds at 1.03nJ plus background over the busy time.
	wantActive := 50e6 * 1.03e-9
	if got.Energy.Core < wantActive {
		t.Fatalf("core energy %v below active floor %v", got.Energy.Core, wantActive)
	}
	if got.Seconds <= 0 {
		t.Fatal("session has no duration")
	}
}

func TestSessionNoiseIsBoundedAndDeterministic(t *testing.T) {
	run := func(seed int64) Measurement {
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		mt := NewMeter(m, seed, DefaultNoise)
		s := mt.Begin()
		m.Hier.Exec(80_000_000, memsim.InstrAdd)
		return s.End()
	}
	a, b := run(7), run(7)
	if a.Energy != b.Energy {
		t.Fatal("same seed must give identical measurements")
	}
	c := run(8)
	if a.Energy == c.Energy {
		t.Fatal("different seeds should perturb measurements")
	}
	// Bounded: within amp*(1+1/4) of the noise-free value.
	clean := run(0)
	mNoNoise := cpusim.NewMachine(cpusim.IntelI7_4790())
	mt := NewMeter(mNoNoise, 0, 0)
	s := mt.Begin()
	mNoNoise.Hier.Exec(80_000_000, memsim.InstrAdd)
	truth := s.End()
	reldiff := math.Abs(clean.Energy.Core-truth.Energy.Core) / truth.Energy.Core
	if reldiff > DefaultNoise*1.3 {
		t.Fatalf("noise %.4f exceeds bound", reldiff)
	}
}

func TestBackgroundPowerMatchesProfile(t *testing.T) {
	prof := cpusim.IntelI7_4790()
	m := cpusim.NewMachine(prof)
	mt := NewMeter(m, 1, DefaultNoise)
	bg := mt.BackgroundPower(1.0)
	if math.Abs(bg.Core-prof.Background.Core) > 0.01 {
		t.Fatalf("core background = %v, want about %v", bg.Core, prof.Background.Core)
	}
	wantPkg := prof.Background.Core + prof.Background.PackageExtra
	if math.Abs(bg.Package-wantPkg) > 0.01 {
		t.Fatalf("package background = %v, want about %v", bg.Package, wantPkg)
	}
	// Measuring background must not disturb the target machine.
	if m.WallSeconds() != 0 {
		t.Fatal("BackgroundPower advanced the target machine")
	}
}

func TestPowerMeterMeasuresTotal(t *testing.T) {
	m := cpusim.NewMachine(cpusim.ARM1176())
	pm := NewPowerMeter(m, 3, 0)
	j, s := pm.MeasureSession(func() {
		m.Hier.Exec(200_000_000, memsim.InstrAdd)
	})
	if j <= 0 || s <= 0 {
		t.Fatalf("measurement = %vJ %vs", j, s)
	}
}

func TestDomainString(t *testing.T) {
	if DomainCore.String() != "core" || DomainPackage.String() != "package" || DomainDRAM.String() != "dram" {
		t.Fatal("domain names wrong")
	}
}
