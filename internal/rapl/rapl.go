// Package rapl models the Running Average Power Limit energy counters the
// paper measures with (Section 2.6), plus the external power meter used on
// the ARM board (Section 4.3, which has no RAPL).
//
// A Meter sits between the true machine energy and the experimenter: it
// quantizes readings to the RAPL LSB and applies a small deterministic
// per-session measurement error, so that downstream estimates (the solved
// ΔE_m, the verification accuracies of Table 3) are realistically imperfect.
//
// # Concurrency
//
// Reading energy is not a passive observation: Machine.TotalEnergy folds
// the elapsed counter segment into machine time (Machine.Sync), so callers
// must serialize all access to one machine — the server layer does this by
// giving each pool worker a private machine (Machine.NewLike) and a
// private Meter with its own noise stream, all driven only from that
// worker's goroutine (see internal/server). The Meter's own mutable state
// (the measurement-noise stream shared by all Sessions) is additionally
// guarded by an internal mutex, so mis-ordered Begin/End pairs can skew a
// reading but can never race.
package rapl

import (
	"math"
	"math/rand"
	"sync"

	"energydb/internal/cpusim"
)

// Domain selects a RAPL measurement domain.
type Domain int

// RAPL domains of the i7-4790. Package includes the core domain plus L3 and
// the memory controller; DRAM is separate.
const (
	DomainCore Domain = iota
	DomainPackage
	DomainDRAM
)

// String names the domain as RAPL does.
func (d Domain) String() string {
	switch d {
	case DomainCore:
		return "core"
	case DomainPackage:
		return "package"
	case DomainDRAM:
		return "dram"
	default:
		return "unknown"
	}
}

// raplLSB is the counter resolution. Haswell's hardware unit is 2^-14 J
// (61 µJ), which the paper amortizes by running micro-benchmarks for ~1e9
// iterations (joules per run). The simulator runs ~1000x shorter, so the
// LSB is scaled down by 2^10 to keep the *relative* quantization error in
// the same regime as the paper's measurements.
const raplLSB = 1.0 / (16384 * 1024)

// Meter reads the machine's energy counters.
type Meter struct {
	m *cpusim.Machine
	// mu guards rng: sessions share one deterministic noise stream, and
	// concurrent session Ends must draw from it atomically.
	mu  sync.Mutex
	rng *rand.Rand
	// amp is the maximum relative per-session measurement error.
	amp float64
}

// NewMeter attaches a meter to a machine. The seed drives the deterministic
// measurement-error stream; amp is the maximum relative error per session
// (0 disables noise; the paper-shaped default is 1.5%).
func NewMeter(m *cpusim.Machine, seed int64, amp float64) *Meter {
	return &Meter{m: m, rng: rand.New(rand.NewSource(seed)), amp: amp}
}

// DefaultNoise is the measurement-error amplitude used by the experiments.
const DefaultNoise = 0.01

// Reading is one measurement of cumulative energy, in joules, per domain.
type Reading struct {
	Core    float64
	Package float64
	DRAM    float64
}

// Sub returns r - base.
func (r Reading) Sub(base Reading) Reading {
	return Reading{r.Core - base.Core, r.Package - base.Package, r.DRAM - base.DRAM}
}

// Total returns package + DRAM: the paper's Busy-CPU energy observation for
// workloads that touch main memory.
func (r Reading) Total() float64 { return r.Package + r.DRAM }

// Read returns the current cumulative counters, quantized to the RAPL LSB.
// Cumulative reads carry no noise; error is applied per measured session,
// where calibration drift actually bites.
func (mt *Meter) Read() Reading {
	e := mt.m.TotalEnergy()
	return Reading{
		Core:    quantize(e.Core),
		Package: quantize(e.Package()),
		DRAM:    quantize(e.DRAM),
	}
}

func quantize(j float64) float64 {
	return math.Floor(j/raplLSB) * raplLSB
}

// Session measures the energy of one region of execution.
type Session struct {
	meter *Meter
	start Reading
	wall0 float64
}

// Begin snapshots the counters.
func (mt *Meter) Begin() *Session {
	return &Session{meter: mt, start: mt.Read(), wall0: mt.m.WallSeconds()}
}

// Measurement is the result of a session.
type Measurement struct {
	// Energy is the measured (noisy) energy delta per domain.
	Energy Reading
	// Seconds is the session wall-clock duration.
	Seconds float64
}

// End reads the counters again and returns the measured delta with the
// session's measurement error applied.
func (s *Session) End() Measurement {
	delta := s.meter.Read().Sub(s.start)
	s.meter.mu.Lock()
	defer s.meter.mu.Unlock()
	eps := func() float64 {
		if s.meter.amp == 0 {
			return 0
		}
		return (s.meter.rng.Float64()*2 - 1) * s.meter.amp
	}
	// Domain errors are correlated (same ADC path): one base error plus
	// small per-domain deviations.
	base := eps()
	return Measurement{
		Energy: Reading{
			Core:    delta.Core * (1 + base + eps()/4),
			Package: delta.Package * (1 + base + eps()/4),
			DRAM:    delta.DRAM * (1 + base + eps()/4),
		},
		Seconds: s.meter.m.WallSeconds() - s.wall0,
	}
}

// BackgroundPower measures the per-domain background power the way the
// paper does: run an only-blocked program (sleep) for the given duration
// with C-states disabled and divide the counter delta by the time. The
// measurement runs on a scratch machine of the same profile so the target
// machine's accounting is not disturbed.
func (mt *Meter) BackgroundPower(seconds float64) Reading {
	scratch := cpusim.NewMachine(mt.m.Profile)
	scratch.AddIdle(seconds)
	e := scratch.TotalEnergy()
	return Reading{
		Core:    quantize(e.Core) / seconds,
		Package: quantize(e.Package()) / seconds,
		DRAM:    quantize(e.DRAM) / seconds,
	}
}

// PowerMeter models the external wall-power meter used for the ARM board:
// it sees only total energy, at coarser resolution, with its own error.
type PowerMeter struct {
	m   *cpusim.Machine
	rng *rand.Rand
	amp float64
}

// NewPowerMeter attaches an external meter to a machine.
func NewPowerMeter(m *cpusim.Machine, seed int64, amp float64) *PowerMeter {
	return &PowerMeter{m: m, rng: rand.New(rand.NewSource(seed)), amp: amp}
}

// meterLSB is the external meter resolution. A physical wall meter resolves
// ~10mJ over multi-second sessions; the simulator's sessions are ~10^4x
// shorter, so the LSB scales down accordingly to keep the relative
// quantization error in the same regime (see the raplLSB note above).
const meterLSB = 1e-6

// TotalEnergy returns cumulative total energy as the external meter sees it.
func (pm *PowerMeter) TotalEnergy() float64 {
	e := pm.m.TotalEnergy().Total()
	return math.Floor(e/meterLSB) * meterLSB
}

// MeasureSession runs fn and returns the measured total energy and duration.
func (pm *PowerMeter) MeasureSession(fn func()) (joules, seconds float64) {
	e0, t0 := pm.TotalEnergy(), pm.m.WallSeconds()
	fn()
	delta := pm.TotalEnergy() - e0
	if pm.amp > 0 {
		delta *= 1 + (pm.rng.Float64()*2-1)*pm.amp
	}
	return delta, pm.m.WallSeconds() - t0
}
