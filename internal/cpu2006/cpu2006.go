// Package cpu2006 provides nine synthetic kernels with the memory-access
// signatures of the SPEC CPU2006 workloads the paper contrasts against
// query workloads in Figure 10: bzip2, perlbench, gcc, mcf, gobmk, sjeng,
// libquantum, h264ref and astar.
//
// Each kernel reproduces its original's dominant microarchitectural
// behaviour rather than its computation: mcf chases pointers across a
// DRAM-sized graph (E_L1D+E_Reg2L1D ≈ 5.6% in the paper), libquantum
// streams a huge vector with no reuse, perlbench hammers hot interpreter
// state, and so on. The point of Figure 10 is that these breakdowns are
// wildly dissimilar from each other and from query workloads — the kernels
// are tuned to preserve exactly that contrast.
package cpu2006

import (
	"fmt"
	"math/rand"

	"energydb/internal/cpusim"
	"energydb/internal/memsim"
)

// Workload is one synthetic CPU2006 kernel.
type Workload struct {
	Name string
	// Run drives the kernel on the machine; scale multiplies the
	// iteration count (1 = the experiment default).
	Run func(m *cpusim.Machine, scale float64)
}

// Workloads returns the nine kernels in the paper's figure order.
func Workloads() []Workload {
	return []Workload{
		{"Bzip2", runBzip2},
		{"Perlbench", runPerlbench},
		{"Gcc", runGcc},
		{"Mcf", runMcf},
		{"Gobmk", runGobmk},
		{"Jseng", runSjeng}, // the paper's figure labels sjeng "Jseng"
		{"Libquantum", runLibquantum},
		{"H264ref", runH264ref},
		{"Astar", runAstar},
	}
}

// ByName fetches one kernel.
func ByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("cpu2006: no workload %q", name)
}

func iters(scale float64, base int) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// arena returns a scratch arena for a kernel run.
func arena(size uint64) *memsim.Arena {
	return memsim.NewArena(1<<34, size)
}

// runBzip2 models block compression: stream a block, heavy bit-twiddling
// compute against hot tables, moderate output stores.
func runBzip2(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(8 << 20)
	block := a.Alloc(1<<20, memsim.PageSize)
	tables := a.Alloc(32<<10, memsim.PageSize)
	out := a.Alloc(1<<20, memsim.PageSize)
	for it := 0; it < iters(scale, 3); it++ {
		for off := uint64(0); off < 1<<20; off += memsim.LineSize {
			h.Load(block+off, false)
			h.LoadRepeat(tables+(off%(32<<10)), 6) // Huffman/MTF tables
			h.Exec(28, memsim.InstrOther)
			h.Exec(6, memsim.InstrAdd)
			if off%(2*memsim.LineSize) == 0 {
				h.Store(out + off/2)
			}
		}
	}
}

// runPerlbench models a bytecode interpreter: dominated by hot-state loads
// and branches, little deep-memory traffic.
func runPerlbench(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(4 << 20)
	state := a.Alloc(4<<10, memsim.PageSize)
	heapz := a.Alloc(2<<20, memsim.PageSize)
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < iters(scale, 120_000); it++ {
		h.LoadRepeat(state+uint64(it%64)*memsim.LineSize%4096, 10)
		h.StoreRepeat(state+uint64(it%32)*memsim.LineSize%4096, 4)
		h.Exec(34, memsim.InstrOther)
		h.Exec(4, memsim.InstrAdd)
		if it%16 == 0 { // occasional SV allocation touch
			h.Load(heapz+uint64(rng.Intn(2<<20))/64*64, true)
		}
	}
}

// runGcc models AST walking: dependent pointer chasing over an L2/L3-sized
// graph with moderate node mutation.
func runGcc(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(8 << 20)
	nodes := a.Alloc(3<<20, memsim.PageSize)
	symtab := a.Alloc(8<<10, memsim.PageSize)
	rng := rand.New(rand.NewSource(12))
	for it := 0; it < iters(scale, 150_000); it++ {
		addr := nodes + uint64(rng.Intn(3<<20))/64*64
		h.Load(addr, true)
		h.LoadRepeat(symtab+uint64(it%128)*memsim.LineSize%8192, 9)
		h.StoreRepeat(symtab+uint64(it%64)*memsim.LineSize%8192, 2)
		h.Exec(22, memsim.InstrOther)
		h.Exec(3, memsim.InstrAdd)
		if it%4 == 0 {
			h.Store(addr)
		}
	}
}

// runMcf models network-simplex pointer chasing across a DRAM-sized arc
// array: nearly every load misses all caches, so stall and mem energy
// dominate and the L1D share collapses (the paper's extreme case).
func runMcf(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(96 << 20)
	arcs := a.Alloc(64<<20, memsim.PageSize)
	rng := rand.New(rand.NewSource(13))
	for it := 0; it < iters(scale, 120_000); it++ {
		h.Load(arcs+uint64(rng.Intn(64<<20))/64*64, true)
		h.Exec(6, memsim.InstrOther)
		h.Exec(1, memsim.InstrAdd)
	}
}

// runGobmk models board evaluation: hot board state, heavy branching.
func runGobmk(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(2 << 20)
	board := a.Alloc(8<<10, memsim.PageSize)
	for it := 0; it < iters(scale, 120_000); it++ {
		h.LoadRepeat(board+uint64(it%128)*memsim.LineSize%8192, 8)
		h.Exec(42, memsim.InstrOther)
		h.Exec(5, memsim.InstrAdd)
		if it%8 == 0 {
			h.Store(board + uint64(it%64)*memsim.LineSize%8192)
		}
	}
}

// runSjeng models game-tree search with a large transposition table:
// random probes into an L3-to-DRAM-sized table plus hot search state.
func runSjeng(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(24 << 20)
	tt := a.Alloc(16<<20, memsim.PageSize)
	stack := a.Alloc(4<<10, memsim.PageSize)
	rng := rand.New(rand.NewSource(14))
	for it := 0; it < iters(scale, 110_000); it++ {
		h.LoadRepeat(stack+uint64(it%32)*memsim.LineSize%4096, 6)
		h.Load(tt+uint64(rng.Intn(16<<20))/64*64, true)
		h.Exec(24, memsim.InstrOther)
		h.Exec(3, memsim.InstrAdd)
		if it%5 == 0 {
			h.Store(tt + uint64(rng.Intn(16<<20))/64*64)
		}
	}
}

// runLibquantum models gate application over a huge amplitude vector:
// pure streaming with no reuse — prefetch/DRAM energy dominates (the
// paper's other extreme case).
func runLibquantum(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(96 << 20)
	vec := a.Alloc(64<<20, memsim.PageSize)
	for it := 0; it < iters(scale, 2); it++ {
		for off := uint64(0); off < 64<<20; off += memsim.LineSize {
			h.Load(vec+off, false)
			h.Exec(3, memsim.InstrOther)
			h.Exec(2, memsim.InstrAdd)
		}
	}
}

// runH264ref models motion estimation: block-local 2D references with
// strong L1/L2 locality and heavy arithmetic.
func runH264ref(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(8 << 20)
	frame := a.Alloc(2<<20, memsim.PageSize)
	ref := a.Alloc(2<<20, memsim.PageSize)
	for it := 0; it < iters(scale, 40); it++ {
		base := uint64(it%32) * (64 << 10)
		for b := uint64(0); b < 64<<10; b += memsim.LineSize {
			h.Load(frame+base+b, false)
			h.Load(ref+base+b, false)
			h.Exec(16, memsim.InstrOther)
			h.Exec(8, memsim.InstrAdd)
			if b%(4*memsim.LineSize) == 0 {
				h.Store(frame + base + b)
			}
		}
	}
}

// runAstar models grid pathfinding: dependent neighbour loads over an
// L3-sized map plus open-list mutation.
func runAstar(m *cpusim.Machine, scale float64) {
	h := m.Hier
	a := arena(12 << 20)
	grid := a.Alloc(6<<20, memsim.PageSize)
	openList := a.Alloc(64<<10, memsim.PageSize)
	rng := rand.New(rand.NewSource(15))
	for it := 0; it < iters(scale, 130_000); it++ {
		h.Load(grid+uint64(rng.Intn(6<<20))/64*64, true)
		h.LoadRepeat(openList+uint64(it%512)*memsim.LineSize%(64<<10), 3)
		h.Exec(12, memsim.InstrOther)
		h.Exec(2, memsim.InstrAdd)
		if it%3 == 0 {
			h.Store(openList + uint64(it%256)*memsim.LineSize%(64<<10))
		}
	}
}
