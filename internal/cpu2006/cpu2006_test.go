package cpu2006

import (
	"testing"

	"energydb/internal/cpusim"
)

func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range Workloads() {
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		m.Hier.SetPrefetchEnabled(true)
		w.Run(m, 0.02)
		c := m.Hier.Counters()
		if c.Instructions() == 0 {
			t.Errorf("%s executed nothing", w.Name)
		}
		if c.Loads == 0 {
			t.Errorf("%s issued no loads", w.Name)
		}
	}
}

func TestWorkloadCount(t *testing.T) {
	if n := len(Workloads()); n != 9 {
		t.Fatalf("workloads = %d, want 9 (Figure 10)", n)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Mcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

// TestMcfAndLibquantumAreMemoryExtreme checks the signature contrast the
// paper highlights: mcf and libquantum have tiny L1D-hit shares relative to
// hot-state workloads like perlbench and gobmk.
func TestMcfAndLibquantumAreMemoryExtreme(t *testing.T) {
	hitShare := func(name string) float64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		m.Hier.SetPrefetchEnabled(true)
		w.Run(m, 0.05)
		c := m.Hier.Counters()
		if c.L1DAccesses == 0 {
			t.Fatalf("%s made no L1D accesses", name)
		}
		return float64(c.L1DHits) / float64(c.L1DAccesses)
	}
	mcf := hitShare("Mcf")
	lib := hitShare("Libquantum")
	perl := hitShare("Perlbench")
	gobmk := hitShare("Gobmk")
	if mcf > 0.35 {
		t.Errorf("mcf L1D hit share = %.2f, want low (pointer chase misses)", mcf)
	}
	if lib > 0.35 {
		t.Errorf("libquantum L1D hit share = %.2f, want low (pure streaming)", lib)
	}
	if perl < 0.9 || gobmk < 0.9 {
		t.Errorf("hot-state workloads should hit L1D: perl=%.2f gobmk=%.2f", perl, gobmk)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		w, _ := ByName("Gcc")
		w.Run(m, 0.02)
		return m.Hier.Counters().Instructions()
	}
	if run() != run() {
		t.Fatal("kernel runs are not deterministic")
	}
}
