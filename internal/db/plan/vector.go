package plan

import (
	"math"

	"energydb/internal/db/exec"
	"energydb/internal/db/vec"
)

// Row-versus-vector mode choice. After the plan shape is fixed, chooseModes
// walks it bottom-up and flips eligible operators to the vectorized engine
// when the vector implementation's predicted active energy beats the row
// implementation's. The estimators below mirror the vec package's charging
// scheme exactly — one per-batch dispatch (a tuple's worth of interpretation
// overhead) per primitive plus per-element payload traffic — priced with the
// same calibrated ΔE_m table as every other estimate, so the crossover falls
// out of the model: tiny inputs stay on the row path (the batch dispatch
// does not amortize), large scans go vector.
//
// A vectorized operator exchanges columnar batches, so it can only stack on
// a vectorized child; chains are rooted at sequential scans — and, with the
// batch-first join and sort, can carry batches edge to edge through hash
// joins (both inputs vectorized) and sorts — adapted back to rows
// (charge-free) only where a row-only parent, or the drain loop at the top,
// takes over.

// vecEligibleKind reports whether the node kind has a vectorized
// implementation at all (used by EXPLAIN to decide which nodes carry a mode
// annotation).
func vecEligibleKind(k opKind) bool {
	switch k {
	case opSeqScan, opFilter, opPrune, opProject, opAggregate, opHashJoin, opSort:
		return true
	}
	return false
}

// supportedExpr treats a missing predicate as vectorizable.
func supportedExpr(e exec.Expr) bool { return e == nil || vec.Supported(e) }

func allSupported(exprs []exec.Expr) bool {
	for _, e := range exprs {
		if !supportedExpr(e) {
			return false
		}
	}
	return true
}

// lazyBatch is the planner's model of a lazily materialized scan batch
// (vec.Batch backed by raw source rows): mat records the columns already
// materialized by the subtree below, rows the backing scan's positions per
// stream (materialization covers every position, selected or not).
type lazyBatch struct {
	mat  map[int]bool
	rows float64
}

func cloneLazy(lz *lazyBatch) *lazyBatch {
	if lz == nil {
		return nil
	}
	mat := make(map[int]bool, len(lz.mat))
	for c := range lz.mat {
		mat[c] = true
	}
	return &lazyBatch{mat: mat, rows: lz.rows}
}

// chooseModes assigns execution modes bottom-up: a node goes vector when it
// is implemented, its inputs arrive as batches, its expressions compile to
// kernels, and the predicted vector energy is lower than the row estimate
// already stored in EstEJ. The winning estimate replaces EstEJ so EXPLAIN's
// predictions describe the plan that will actually run. Alongside the cost,
// each estimator returns the node's output lazy-batch state (nil when the
// output is fully materialized), committed only when the node actually
// flips to vector mode.
func (pc *planCtx) chooseModes(n *Node) {
	for _, k := range n.Kids {
		pc.chooseModes(k)
	}
	if pc.e.Knobs.DisableVectorExec {
		return
	}
	var vecEJ float64
	var lz *lazyBatch
	switch n.Kind {
	case opSeqScan:
		if !supportedExpr(n.Filter) {
			return
		}
		vecEJ, lz = pc.costVecSeqScan(n)
	case opFilter:
		if n.Kids[0].Mode != ModeVector || !supportedExpr(n.Filter) {
			return
		}
		vecEJ, lz = pc.costVecFilter(n)
	case opPrune:
		if n.Kids[0].Mode != ModeVector {
			return
		}
		vecEJ, lz = pc.costVecPrune(n)
	case opProject:
		if n.Kids[0].Mode != ModeVector || !allSupported(n.Exprs) {
			return
		}
		vecEJ, lz = pc.costVecProject(n)
	case opAggregate:
		if n.Kids[0].Mode != ModeVector {
			return
		}
		if !allSupported(n.GroupExprs) || !allSupported(n.PostExprs) {
			return
		}
		for _, a := range n.Aggs {
			if !supportedExpr(a.Arg) {
				return
			}
		}
		vecEJ, lz = pc.costVecAggregate(n)
	case opHashJoin:
		if n.Kids[0].Mode != ModeVector || n.Kids[1].Mode != ModeVector || !supportedExpr(n.Filter) {
			return
		}
		// A build side smaller than one batch never fills a single build
		// chunk: the batched build degenerates to the row path plus extra
		// buffering, and at that size the estimator is below its resolution
		// (one dispatch either way decides the comparison). Keep such joins
		// on the row path.
		if n.Kids[1].EstRows < pc.batchWidth() {
			return
		}
		vecEJ, lz = pc.costVecHashJoin(n)
	case opSort:
		if n.Kids[0].Mode != ModeVector {
			return
		}
		for _, k := range n.SortKeys {
			if !supportedExpr(k.Expr) {
				return
			}
		}
		vecEJ, lz = pc.costVecSort(n)
	default:
		return
	}
	if vecEJ < n.EstEJ {
		n.Mode = ModeVector
		n.EstEJ = vecEJ
		if lz != nil {
			if pc.lazy == nil {
				pc.lazy = map[*Node]*lazyBatch{}
			}
			pc.lazy[n] = lz
		}
	}
}

// vector-mode estimators ------------------------------------------------------

// batchWidth is the planner's view of the L1D-derived batch size.
func (pc *planCtx) batchWidth() float64 {
	return float64(vec.BatchSizeFor(pc.e.M.Profile.Mem))
}

// batchesFor counts the batches a stream of n rows occupies.
func (pc *planCtx) batchesFor(n float64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Ceil(n / pc.batchWidth())
}

// vecKernel charges one vectorized primitive over n elements spread across
// `batches` batches with `inputs` non-constant input vectors: a per-batch
// dispatch, then per element the kernel's payload loads, ALU work and
// payload store (vec.chargeKernel's counters).
func (pc *planCtx) vecKernel(a *est, batches, n, inputs float64) {
	pc.c.tuple(a, batches)
	a.l1d += n * inputs * vec.KernelLoadsPerVal
	a.add += n * vec.KernelInstrPerVal
	a.reg2 += n * vec.KernelStoresPerVal
}

// nonConstInput counts an expression operand as one vector load stream
// unless it is a constant (broadcast vectors have no payload to load).
func nonConstInput(e exec.Expr) float64 {
	if _, ok := e.(exec.Const); ok {
		return 0
	}
	return 1
}

// vecExpr charges the kernels of one expression tree over n selected
// elements: each computed node is one primitive; columns alias batch vectors
// and constants broadcast, both free.
func (pc *planCtx) vecExpr(a *est, e exec.Expr, batches, n float64) {
	switch t := e.(type) {
	case exec.BinOp:
		pc.vecExpr(a, t.L, batches, n)
		pc.vecExpr(a, t.R, batches, n)
		pc.vecKernel(a, batches, n, nonConstInput(t.L)+nonConstInput(t.R))
	case exec.Not:
		pc.vecExpr(a, t.E, batches, n)
		pc.vecKernel(a, batches, n, nonConstInput(t.E))
	case exec.Like:
		pc.vecExpr(a, t.E, batches, n)
		pc.vecKernel(a, batches, n, nonConstInput(t.E))
	case exec.InList:
		pc.vecExpr(a, t.E, batches, n)
		pc.vecKernel(a, batches, n, nonConstInput(t.E))
	}
}

// vecPred charges predicate evaluation plus the selection narrowing
// (vec.applyPred): the predicate kernels, one branch pass over the n
// candidates, and the selection-vector store for the `selected` survivors.
func (pc *planCtx) vecPred(a *est, pred exec.Expr, batches, n, selected float64) {
	if pred == nil {
		return
	}
	pc.vecExpr(a, pred, batches, n)
	pc.c.tuple(a, batches)
	a.l1d += n
	a.other += n
	a.reg2 += selected
}

// exprCols collects the column indexes an expression references. Only the
// kernel-supported node types can appear under vector mode, so the walk
// covers exactly those.
func exprCols(e exec.Expr, set map[int]bool) {
	switch t := e.(type) {
	case exec.Col:
		set[t.Idx] = true
	case exec.BinOp:
		exprCols(t.L, set)
		exprCols(t.R, set)
	case exec.Not:
		exprCols(t.E, set)
	case exec.Like:
		exprCols(t.E, set)
	case exec.InList:
		exprCols(t.E, set)
	}
}

// vecMaterialize charges the lazy materializations this node's kernels
// trigger (vec.Batch.Col): for each referenced column the subtree has not
// touched yet, one primitive per batch — a dispatch, then a move and a
// payload store per backing position — and marks it materialized in lz.
func (pc *planCtx) vecMaterialize(a *est, lz *lazyBatch, cols map[int]bool) {
	if lz == nil {
		return
	}
	fresh := 0.0
	for c := range cols {
		if !lz.mat[c] {
			lz.mat[c] = true
			fresh++
		}
	}
	if fresh == 0 {
		return
	}
	pc.c.tuple(a, pc.batchesFor(lz.rows)*fresh)
	a.add += lz.rows * fresh
	a.reg2 += lz.rows * fresh
}

// costVecSeqScan predicts the vectorized scan: the same heap traffic as the
// row scan (the batch scanner touches the same pages and lines), then the
// pushed predicate over lazily materialized columns — only columns the
// predicate references move payload bytes here; the rest materialize where
// (and if) a parent kernel first touches them. There is no output-row copy —
// batches are handed to the parent by reference.
func (pc *planCtx) costVecSeqScan(n *Node) (float64, *lazyBatch) {
	var a est
	rows := float64(n.Table.File.RowCount())
	batches := pc.batchesFor(rows)
	pc.c.scanHeap(&a, n.Table)
	pc.c.tuple(&a, batches) // per-batch driver dispatch
	lz := &lazyBatch{mat: map[int]bool{}, rows: rows}
	if n.Filter != nil {
		cols := map[int]bool{}
		exprCols(n.Filter, cols)
		pc.vecMaterialize(&a, lz, cols)
		pc.vecPred(&a, n.Filter, batches, rows, n.EstRows)
	}
	return pc.c.price(a), lz
}

// costVecFilter predicts a vectorized selection narrowing. The batch passes
// through by reference, so the output stays lazily backed.
func (pc *planCtx) costVecFilter(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	exprCols(n.Filter, cols)
	pc.vecMaterialize(&a, lz, cols)
	in := n.Kids[0].EstRows
	pc.vecPred(&a, n.Filter, pc.batchesFor(in), in, n.EstRows)
	return pc.c.price(a), lz
}

// costVecPrune predicts a vectorized column prune: one dispatch per batch
// remapping column slots, materializing the kept columns (no further
// payload movement). The pruned batch is fully materialized.
func (pc *planCtx) costVecPrune(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	for _, c := range n.Cols {
		cols[c] = true
	}
	pc.vecMaterialize(&a, lz, cols)
	batches := pc.batchesFor(n.Kids[0].EstRows)
	pc.c.tuple(&a, batches)
	a.add += batches * float64(len(n.Cols))
	return pc.c.price(a), nil
}

// costVecProject predicts one kernel tree per output expression, plus the
// lazy materialization of the input columns those kernels touch. The
// projected batch is fully materialized.
func (pc *planCtx) costVecProject(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	for _, e := range n.Exprs {
		exprCols(e, cols)
	}
	pc.vecMaterialize(&a, lz, cols)
	in := n.Kids[0].EstRows
	batches := pc.batchesFor(in)
	for _, e := range n.Exprs {
		pc.vecExpr(&a, e, batches, in)
	}
	return pc.c.price(a), nil
}

// costVecAggregate predicts the batch-at-a-time hash aggregation: key and
// argument kernels, one table-update primitive per batch (probe loads,
// accumulator stores and update arithmetic, all L1-resident — the simulated
// table fits the cache), then the group materialization and the select-list
// re-projection over the group batches.
func (pc *planCtx) costVecAggregate(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	for _, e := range n.GroupExprs {
		exprCols(e, cols)
	}
	for _, ag := range n.Aggs {
		if ag.Arg != nil {
			exprCols(ag.Arg, cols)
		}
	}
	pc.vecMaterialize(&a, lz, cols)
	in := n.Kids[0].EstRows
	groups := n.EstRows
	batches := pc.batchesFor(in)
	for _, e := range n.GroupExprs {
		pc.vecExpr(&a, e, batches, in)
	}
	for _, ag := range n.Aggs {
		if ag.Arg != nil {
			pc.vecExpr(&a, ag.Arg, batches, in)
		}
	}
	pc.c.tuple(&a, batches)
	a.l1d += 2 * in
	a.reg2 += in
	a.add += in * float64(2+len(n.Aggs))

	outCols := float64(len(n.GroupExprs) + len(n.Aggs))
	gBatches := pc.batchesFor(groups)
	pc.c.tuple(&a, gBatches*outCols)
	a.add += groups * outCols
	a.reg2 += groups * outCols
	for _, e := range n.PostExprs {
		pc.vecExpr(&a, e, gBatches, groups)
	}
	return pc.c.price(a), nil
}

// costVecHashJoin predicts the batch-at-a-time hash join, mirroring
// vec.HashJoin's charging: the build side is collected and hashed in chunks
// (bulk buffer copy and hash arithmetic, per-row dependent bucket accesses
// into the same simulated table the row join probes), each probe batch runs
// one key-hash kernel plus a dependent bucket-head load per element, and
// every match is gathered — one primitive per output column per output
// batch — into a lazily row-backed output batch, so only the probe key
// columns materialize here and the parent pays for the columns it touches.
// The per-tuple dispatch, probe-row clone and per-match output copy of the
// row join are gone; for tiny inputs the fixed per-batch dispatches do not
// amortize and the row estimate wins.
func (pc *planCtx) costVecHashJoin(n *Node) (float64, *lazyBatch) {
	var a est
	buildRows := n.Kids[1].EstRows
	probeRows := n.Kids[0].EstRows
	matches := n.EstRows
	tableBytes := (buildRows + 1) * 32
	buildBatches := pc.batchesFor(buildRows)
	probeBatches := pc.batchesFor(probeRows)
	outBatches := pc.batchesFor(matches)
	probeCols := float64(len(n.Kids[0].schema.Columns))
	buildCols := float64(len(n.Kids[1].schema.Columns))
	rowLines := math.Ceil(float64(n.Kids[1].schema.RowWidth()) / 64)

	// Build: a collect dispatch and a chunk dispatch per build batch, the
	// row-buffer copy, bulk key loads and hash arithmetic, then a dependent
	// bucket load and an entry store per row.
	pc.c.tuple(&a, 2*buildBatches)
	a.reg2 += buildRows * rowLines
	a.l1d += buildRows
	a.add += 3 * buildRows
	pc.c.randLoad(&a, buildRows, tableBytes)
	a.reg2 += buildRows

	// Probe: the key-hash kernel materializes only the probe key column of a
	// lazily backed probe batch.
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	pc.vecMaterialize(&a, lz, map[int]bool{n.OuterKey: true})
	// Key-hash kernel per probe batch plus the dependent bucket-head loads.
	pc.c.tuple(&a, probeBatches)
	a.l1d += probeRows * vec.KernelLoadsPerVal
	a.add += 2 * probeRows
	pc.c.randLoad(&a, probeRows, tableBytes)

	// Matches: the bucket-chain chase stays per element; the gather is one
	// primitive per output column per batch (source load, move, store), and
	// the output batch comes out lazily backed by the assembled rows.
	pc.c.randLoad(&a, matches, tableBytes)
	pc.c.tuple(&a, outBatches*(probeCols+buildCols))
	a.l1d += matches * (probeCols + buildCols) * vec.KernelLoadsPerVal
	a.add += matches * (probeCols + buildCols)
	a.reg2 += matches * (probeCols + buildCols) * vec.KernelStoresPerVal

	// Residual predicate, vectorized over the gathered output batch: its
	// columns materialize from the backing rows first.
	outLz := &lazyBatch{mat: map[int]bool{}, rows: matches}
	if n.Filter != nil {
		cols := map[int]bool{}
		exprCols(n.Filter, cols)
		pc.vecMaterialize(&a, outLz, cols)
		pc.vecPred(&a, n.Filter, outBatches, matches, matches)
	}
	return pc.c.price(a), outLz
}

// costVecSort predicts the batch-at-a-time sort, mirroring vec.Sort: bulk
// key extraction (expression kernels plus one packing primitive per key per
// batch), the chunked sort-buffer fill, the same O(n log n) comparator
// costs as the row sort, and a lazily backed emit — one dispatch and a
// streaming read of the sorted run per output batch, with no per-row output
// copy. The output batch is backed by the sorted rows, so parent kernels
// pay materialization only for the columns they touch.
func (pc *planCtx) costVecSort(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	for _, k := range n.SortKeys {
		exprCols(k.Expr, cols)
	}
	pc.vecMaterialize(&a, lz, cols)
	in := n.Kids[0].EstRows
	batches := pc.batchesFor(in)
	nkeys := float64(len(n.SortKeys))
	for _, k := range n.SortKeys {
		pc.vecExpr(&a, k.Expr, batches, in)
	}
	// Key packing: one primitive per key per batch.
	pc.c.tuple(&a, batches*nkeys)
	a.l1d += in * nkeys * vec.KernelLoadsPerVal
	a.add += in * nkeys
	a.reg2 += in * nkeys * vec.KernelStoresPerVal
	// Collect dispatch per batch, then the chunked sort-buffer fill.
	pc.c.tuple(&a, 2*batches)
	a.reg2 += in
	// Ordering pass: identical to the row sort's comparator costs.
	if in > 1 {
		compares := in * math.Log2(in)
		pc.c.randLoad(&a, 2*compares, in*16)
		a.add += compares * nkeys
	}
	a.reg2 += in // final placement (the ordering vector store)
	// Emit: one dispatch and a streaming run read per output batch.
	pc.c.tuple(&a, pc.batchesFor(n.EstRows))
	a.l1d += in * 16 / 64
	return pc.c.price(a), &lazyBatch{mat: map[int]bool{}, rows: n.EstRows}
}
