package plan

import (
	"math"

	"energydb/internal/db/exec"
	"energydb/internal/db/vec"
)

// Row-versus-vector mode choice. After the plan shape is fixed, chooseModes
// prices every mode assignment chain-wise: a two-state dynamic program over
// the tree computes, per node, the cheapest subtree total with the node in
// row mode (each child free to pick its own cheaper state, every vector→row
// transition explicitly charged) and in vector mode (every child forced to
// stay in the chain), then commits the cheaper assignment top-down. The
// estimators below mirror the vec package's charging scheme exactly — one
// per-batch dispatch (a tuple's worth of interpretation overhead) per
// primitive plus per-element payload traffic — priced with the same
// calibrated ΔE_m table as every other estimate, so the crossover falls out
// of the model: tiny inputs stay on the row path (the batch dispatch does
// not amortize), large scans go vector.
//
// A vectorized operator exchanges columnar batches, so it can only stack on
// a vectorized child; chains are rooted at sequential scans — and, with the
// batch-first join and sort, can carry batches edge to edge through hash
// joins (both inputs vectorized) and sorts — adapted back to rows only
// where a row-only parent, or the drain loop at the top, takes over. That
// adaptation is not free: RowSource charges one dispatch per batch plus a
// full-width row copy per row (the loss of lazy materialization — a row
// consumer takes whole rows), so a cheap row-mode operator sandwiched into
// an otherwise-vector chain is priced against the whole chain it breaks,
// including the extra boundary it forces, instead of winning a node-local
// comparison and silently paying un-priced crossings (the X8 stranded-Prune
// misprediction).

// vecEligibleKind reports whether the node kind has a vectorized
// implementation at all (used by EXPLAIN to decide which nodes carry a mode
// annotation).
func vecEligibleKind(k opKind) bool {
	switch k {
	case opSeqScan, opFilter, opPrune, opProject, opAggregate, opHashJoin, opSort:
		return true
	}
	return false
}

// supportedExpr treats a missing predicate as vectorizable.
func supportedExpr(e exec.Expr) bool { return e == nil || vec.Supported(e) }

func allSupported(exprs []exec.Expr) bool {
	for _, e := range exprs {
		if !supportedExpr(e) {
			return false
		}
	}
	return true
}

// lazyBatch is the planner's model of a lazily materialized scan batch
// (vec.Batch backed by raw source rows): mat records the columns already
// materialized by the subtree below, rows the backing scan's positions per
// stream (materialization covers every position, selected or not).
type lazyBatch struct {
	mat  map[int]bool
	rows float64
}

func cloneLazy(lz *lazyBatch) *lazyBatch {
	if lz == nil {
		return nil
	}
	mat := make(map[int]bool, len(lz.mat))
	for c := range lz.mat {
		mat[c] = true
	}
	return &lazyBatch{mat: mat, rows: lz.rows}
}

// modePrice is the two-state chain price of a subtree: rowTotal is the
// cheapest subtree total with this node in row mode (each child picks the
// cheaper of staying row or running its vector chain plus the boundary
// crossing back to rows), vecTotal the total with this node in vector mode
// (every child forced to stay in the chain; +Inf when the node cannot run
// vectorized). vecEJ/lz are the node's own vector estimate and output
// lazy-batch state under the vector hypothesis, boundary the RowSource
// adaptation price of handing this node's vectorized output to a row
// consumer.
type modePrice struct {
	rowTotal float64
	vecTotal float64
	vecEJ    float64
	boundary float64
	lz       *lazyBatch
}

// chooseModes assigns execution modes chain-wise: priceModes runs the
// two-state DP bottom-up, then commitModes walks top-down comparing, at
// each point where a row consumer takes over, the transition-priced vector
// chain against the all-row subtree. Winning vector estimates replace
// EstEJ (plus the boundary price at the chain top) so EXPLAIN's predictions
// describe — and sum to — the plan that will actually run.
func (pc *planCtx) chooseModes(root *Node) {
	if pc.e.Knobs.DisableVectorExec {
		return
	}
	pc.prices = map[*Node]modePrice{}
	pc.priceModes(root)
	pc.commitModes(root, false) // the drain loop at the top consumes rows
}

// priceModes computes the two-state price of n's subtree. While pricing the
// vector hypothesis, each child's lazy-batch state is staged in pc.lazy so
// the estimators see the chain's materialization state — the mechanism that
// threads the consumer's column demand down a chain: a parent's estimator
// charges Batch.Col materialization only for the columns it references,
// against the child's output state (the parent's demand, not the child's
// supply).
func (pc *planCtx) priceModes(n *Node) modePrice {
	rowKids, vecKids := 0.0, 0.0
	chainKids := true
	for _, k := range n.Kids {
		p := pc.priceModes(k)
		rowKids += math.Min(p.rowTotal, p.vecTotal+p.boundary)
		if math.IsInf(p.vecTotal, 1) {
			chainKids = false
		} else {
			vecKids += p.vecTotal
		}
	}
	mp := modePrice{rowTotal: n.EstEJ + rowKids, vecTotal: math.Inf(1)}
	if chainKids && pc.vecSupported(n) {
		for _, k := range n.Kids {
			pc.setLazy(k, pc.prices[k].lz)
		}
		mp.vecEJ, mp.lz = pc.costVec(n)
		mp.vecTotal = mp.vecEJ + vecKids
		mp.boundary = pc.costBoundary(n)
	}
	pc.prices[n] = mp
	return mp
}

// commitModes commits the cheaper assignment top-down. Inside a committed
// vector chain every node stays vector (the parent's price assumed it); at
// each row-consumer point the transition-priced chain total competes with
// the all-row subtree, and a winning chain top absorbs the boundary price
// into its estimate (surfaced by EXPLAIN as xfer≈).
func (pc *planCtx) commitModes(n *Node, vecConsumer bool) {
	mp := pc.prices[n]
	if vecConsumer || mp.vecTotal+mp.boundary < mp.rowTotal {
		n.Mode = ModeVector
		n.EstEJ = mp.vecEJ
		if !vecConsumer {
			n.BoundaryEJ = mp.boundary
			n.EstEJ += mp.boundary
		}
		pc.setLazy(n, mp.lz)
		for _, k := range n.Kids {
			pc.commitModes(k, true)
		}
		return
	}
	for _, k := range n.Kids {
		pc.commitModes(k, false)
	}
}

// setLazy stages a node's output lazy-batch state for its consumer's
// estimator (nil states are recorded as absent).
func (pc *planCtx) setLazy(n *Node, lz *lazyBatch) {
	if pc.lazy == nil {
		pc.lazy = map[*Node]*lazyBatch{}
	}
	if lz == nil {
		delete(pc.lazy, n)
		return
	}
	pc.lazy[n] = lz
}

// vecSupported reports whether n can run vectorized at all, given batch
// inputs: the kind has a kernel implementation and every expression
// compiles to kernels.
func (pc *planCtx) vecSupported(n *Node) bool {
	switch n.Kind {
	case opSeqScan:
		return supportedExpr(n.Filter)
	case opFilter:
		return supportedExpr(n.Filter)
	case opPrune:
		return true
	case opProject:
		return allSupported(n.Exprs)
	case opAggregate:
		if !allSupported(n.GroupExprs) || !allSupported(n.PostExprs) {
			return false
		}
		for _, a := range n.Aggs {
			if !supportedExpr(a.Arg) {
				return false
			}
		}
		return true
	case opHashJoin:
		// A build side smaller than one batch never fills a single build
		// chunk: the batched build degenerates to the row path plus extra
		// buffering, and at that size the estimator is below its resolution
		// (one dispatch either way decides the comparison). Keep such joins
		// on the row path.
		return supportedExpr(n.Filter) && n.Kids[1].EstRows >= pc.batchWidth()
	case opSort:
		for _, k := range n.SortKeys {
			if !supportedExpr(k.Expr) {
				return false
			}
		}
		return true
	}
	return false
}

// costVec dispatches to the node kind's vector estimator. Callers must have
// staged the children's lazy-batch states (priceModes does).
func (pc *planCtx) costVec(n *Node) (float64, *lazyBatch) {
	switch n.Kind {
	case opSeqScan:
		return pc.costVecSeqScan(n)
	case opFilter:
		return pc.costVecFilter(n)
	case opPrune:
		return pc.costVecPrune(n)
	case opProject:
		return pc.costVecProject(n)
	case opAggregate:
		return pc.costVecAggregate(n)
	case opHashJoin:
		return pc.costVecHashJoin(n)
	case opSort:
		return pc.costVecSort(n)
	}
	return math.Inf(1), nil
}

// costBoundary prices the vector→row transition under n: the RowSource
// adaptation (one adapter dispatch per batch) plus the loss of lazy
// materialization — the row consumer takes whole rows, so every row pays a
// full-width copy out of the batch's backing regardless of which columns
// the chain below materialized. Mirrors vec.RowSource's charges exactly
// (the exported Boundary* constants).
func (pc *planCtx) costBoundary(n *Node) float64 {
	var a est
	rows := n.EstRows
	lines := math.Ceil(float64(n.schema.RowWidth()) / 64)
	if lines < 1 {
		lines = 1
	}
	pc.c.tuple(&a, pc.batchesFor(rows))
	a.l1d += rows * lines * vec.BoundaryLoadsPerLine
	a.reg2 += rows * lines * vec.BoundaryStoresPerLine
	a.other += rows * vec.BoundaryInstrPerRow
	return pc.c.price(a)
}

// vector-mode estimators ------------------------------------------------------

// batchWidth is the planner's view of the L1D-derived batch size.
func (pc *planCtx) batchWidth() float64 {
	return float64(vec.BatchSizeFor(pc.e.M.Profile.Mem))
}

// batchesFor counts the batches a stream of n rows occupies.
func (pc *planCtx) batchesFor(n float64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Ceil(n / pc.batchWidth())
}

// vecKernel charges one vectorized primitive over n elements spread across
// `batches` batches with `inputs` non-constant input vectors: a per-batch
// dispatch, then per element the kernel's payload loads, ALU work and
// payload store (vec.chargeKernel's counters).
func (pc *planCtx) vecKernel(a *est, batches, n, inputs float64) {
	pc.c.tuple(a, batches)
	a.l1d += n * inputs * vec.KernelLoadsPerVal
	a.add += n * vec.KernelInstrPerVal
	a.reg2 += n * vec.KernelStoresPerVal
}

// nonConstInput counts an expression operand as one vector load stream
// unless it is a constant (broadcast vectors have no payload to load).
func nonConstInput(e exec.Expr) float64 {
	if _, ok := e.(exec.Const); ok {
		return 0
	}
	return 1
}

// vecExpr charges the kernels of one expression tree over n selected
// elements: each computed node is one primitive; columns alias batch vectors
// and constants broadcast, both free.
func (pc *planCtx) vecExpr(a *est, e exec.Expr, batches, n float64) {
	switch t := e.(type) {
	case exec.BinOp:
		pc.vecExpr(a, t.L, batches, n)
		pc.vecExpr(a, t.R, batches, n)
		pc.vecKernel(a, batches, n, nonConstInput(t.L)+nonConstInput(t.R))
	case exec.Not:
		pc.vecExpr(a, t.E, batches, n)
		pc.vecKernel(a, batches, n, nonConstInput(t.E))
	case exec.Like:
		pc.vecExpr(a, t.E, batches, n)
		pc.vecKernel(a, batches, n, nonConstInput(t.E))
	case exec.InList:
		pc.vecExpr(a, t.E, batches, n)
		pc.vecKernel(a, batches, n, nonConstInput(t.E))
	}
}

// vecPred charges predicate evaluation plus the selection narrowing
// (vec.applyPred): the predicate kernels, one branch pass over the n
// candidates, and the selection-vector store for the `selected` survivors.
func (pc *planCtx) vecPred(a *est, pred exec.Expr, batches, n, selected float64) {
	if pred == nil {
		return
	}
	pc.vecExpr(a, pred, batches, n)
	pc.c.tuple(a, batches)
	a.l1d += n
	a.other += n
	a.reg2 += selected
}

// exprCols collects the column indexes an expression references. Only the
// kernel-supported node types can appear under vector mode, so the walk
// covers exactly those.
func exprCols(e exec.Expr, set map[int]bool) {
	switch t := e.(type) {
	case exec.Col:
		set[t.Idx] = true
	case exec.BinOp:
		exprCols(t.L, set)
		exprCols(t.R, set)
	case exec.Not:
		exprCols(t.E, set)
	case exec.Like:
		exprCols(t.E, set)
	case exec.InList:
		exprCols(t.E, set)
	}
}

// vecMaterialize charges the lazy materializations this node's kernels
// trigger (vec.Batch.Col): for each referenced column the subtree has not
// touched yet, one primitive per batch — a dispatch, then a move and a
// payload store per backing position — and marks it materialized in lz.
func (pc *planCtx) vecMaterialize(a *est, lz *lazyBatch, cols map[int]bool) {
	if lz == nil {
		return
	}
	fresh := 0.0
	for c := range cols {
		if !lz.mat[c] {
			lz.mat[c] = true
			fresh++
		}
	}
	if fresh == 0 {
		return
	}
	pc.c.tuple(a, pc.batchesFor(lz.rows)*fresh)
	a.add += lz.rows * fresh
	a.reg2 += lz.rows * fresh
}

// costVecSeqScan predicts the vectorized scan: the same heap traffic as the
// row scan (the batch scanner touches the same pages and lines), then the
// pushed predicate over lazily materialized columns — only columns the
// predicate references move payload bytes here; the rest materialize where
// (and if) a parent kernel first touches them. There is no output-row copy —
// batches are handed to the parent by reference.
func (pc *planCtx) costVecSeqScan(n *Node) (float64, *lazyBatch) {
	var a est
	rows := float64(n.Table.File.RowCount())
	batches := pc.batchesFor(rows)
	pc.c.scanHeap(&a, n.Table)
	pc.c.tuple(&a, batches) // per-batch driver dispatch
	lz := &lazyBatch{mat: map[int]bool{}, rows: rows}
	if n.Filter != nil {
		cols := map[int]bool{}
		exprCols(n.Filter, cols)
		pc.vecMaterialize(&a, lz, cols)
		pc.vecPred(&a, n.Filter, batches, rows, n.EstRows)
	}
	return pc.c.price(a), lz
}

// costVecFilter predicts a vectorized selection narrowing. The batch passes
// through by reference, so the output stays lazily backed.
func (pc *planCtx) costVecFilter(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	exprCols(n.Filter, cols)
	pc.vecMaterialize(&a, lz, cols)
	in := n.Kids[0].EstRows
	pc.vecPred(&a, n.Filter, pc.batchesFor(in), in, n.EstRows)
	return pc.c.price(a), lz
}

// costVecPrune predicts a vectorized column prune: one dispatch per batch
// remapping column slots, materializing the kept columns (no further
// payload movement). The pruned batch is fully materialized.
func (pc *planCtx) costVecPrune(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	for _, c := range n.Cols {
		cols[c] = true
	}
	pc.vecMaterialize(&a, lz, cols)
	batches := pc.batchesFor(n.Kids[0].EstRows)
	pc.c.tuple(&a, batches)
	a.add += batches * float64(len(n.Cols))
	return pc.c.price(a), nil
}

// costVecProject predicts one kernel tree per output expression, plus the
// lazy materialization of the input columns those kernels touch. The
// projected batch is fully materialized.
func (pc *planCtx) costVecProject(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	for _, e := range n.Exprs {
		exprCols(e, cols)
	}
	pc.vecMaterialize(&a, lz, cols)
	in := n.Kids[0].EstRows
	batches := pc.batchesFor(in)
	for _, e := range n.Exprs {
		pc.vecExpr(&a, e, batches, in)
	}
	return pc.c.price(a), nil
}

// costVecAggregate predicts the batch-at-a-time hash aggregation: key and
// argument kernels, one table-update primitive per batch (probe loads,
// accumulator stores and update arithmetic, all L1-resident — the simulated
// table fits the cache), then the group materialization and the select-list
// re-projection over the group batches.
func (pc *planCtx) costVecAggregate(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	for _, e := range n.GroupExprs {
		exprCols(e, cols)
	}
	for _, ag := range n.Aggs {
		if ag.Arg != nil {
			exprCols(ag.Arg, cols)
		}
	}
	pc.vecMaterialize(&a, lz, cols)
	in := n.Kids[0].EstRows
	groups := n.EstRows
	batches := pc.batchesFor(in)
	for _, e := range n.GroupExprs {
		pc.vecExpr(&a, e, batches, in)
	}
	for _, ag := range n.Aggs {
		if ag.Arg != nil {
			pc.vecExpr(&a, ag.Arg, batches, in)
		}
	}
	pc.c.tuple(&a, batches)
	a.l1d += 2 * in
	a.reg2 += in
	a.add += in * float64(2+len(n.Aggs))

	outCols := float64(len(n.GroupExprs) + len(n.Aggs))
	gBatches := pc.batchesFor(groups)
	pc.c.tuple(&a, gBatches*outCols)
	a.add += groups * outCols
	a.reg2 += groups * outCols
	for _, e := range n.PostExprs {
		pc.vecExpr(&a, e, gBatches, groups)
	}
	return pc.c.price(a), nil
}

// costVecHashJoin predicts the batch-at-a-time hash join, mirroring
// vec.HashJoin's charging: the build side is collected and hashed in chunks
// (bulk buffer copy and hash arithmetic, per-row dependent bucket accesses
// into the same simulated table the row join probes), each probe batch runs
// one key-hash kernel plus a dependent bucket-head load per element, and
// every match is gathered — one dispatch per output batch plus two block
// row-copies per match — into a lazily row-backed output batch. The gather
// moves cache lines, not per-column vector elements: which output columns
// become vectors is the consumer's decision, priced by the consumer's own
// estimator against the outLz state returned here (or by costBoundary when
// a row consumer takes whole rows). That demand-side accounting is what
// stops the wide-row over-prediction X8 surfaced — the old model charged a
// per-element primitive for every output column, supply-side, even when the
// parent materialized almost none of them. The per-tuple dispatch,
// probe-row clone and per-match output copy of the row join are gone; for
// tiny inputs the fixed per-batch dispatches do not amortize and the row
// estimate wins.
func (pc *planCtx) costVecHashJoin(n *Node) (float64, *lazyBatch) {
	var a est
	buildRows := n.Kids[1].EstRows
	probeRows := n.Kids[0].EstRows
	matches := n.EstRows
	tableBytes := (buildRows + 1) * 32
	buildBatches := pc.batchesFor(buildRows)
	probeBatches := pc.batchesFor(probeRows)
	outBatches := pc.batchesFor(matches)
	rowLines := math.Ceil(float64(n.Kids[1].schema.RowWidth()) / 64)
	probeLines := math.Ceil(float64(n.Kids[0].schema.RowWidth()) / 64)
	bufBytes := math.Max(64, buildRows*float64(n.Kids[1].schema.RowWidth()))

	// Build: a collect dispatch and a chunk dispatch per build batch, the
	// row-buffer copy, bulk key loads and hash arithmetic, then a dependent
	// bucket load and an entry store per row.
	pc.c.tuple(&a, 2*buildBatches)
	a.reg2 += buildRows * rowLines
	a.l1d += buildRows
	a.add += 3 * buildRows
	pc.c.randLoad(&a, buildRows, tableBytes)
	a.reg2 += buildRows

	// Probe: the key-hash kernel materializes only the probe key column of a
	// lazily backed probe batch.
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	pc.vecMaterialize(&a, lz, map[int]bool{n.OuterKey: true})
	// Key-hash kernel per probe batch plus the dependent bucket-head loads.
	pc.c.tuple(&a, probeBatches)
	a.l1d += probeRows * vec.KernelLoadsPerVal
	a.add += 2 * probeRows
	pc.c.randLoad(&a, probeRows, tableBytes)

	// Matches: the bucket-chain chase stays per element; the gather is one
	// dispatch per output batch and two block row-copies per match — a
	// dependent first-line load of the matched build row at its scattered
	// buffer offset, the trailing build lines and the cache-hot probe row,
	// and the assembled-row stores — leaving the output lazily backed.
	pc.c.randLoad(&a, matches, tableBytes)
	pc.c.tuple(&a, outBatches)
	pc.c.randLoad(&a, matches, bufBytes)
	a.l1d += matches * (rowLines - 1 + probeLines)
	a.reg2 += matches * (probeLines + rowLines)
	a.add += 2 * matches

	// Residual predicate, vectorized over the gathered output batch: its
	// columns materialize from the backing rows first.
	outLz := &lazyBatch{mat: map[int]bool{}, rows: matches}
	if n.Filter != nil {
		cols := map[int]bool{}
		exprCols(n.Filter, cols)
		pc.vecMaterialize(&a, outLz, cols)
		pc.vecPred(&a, n.Filter, outBatches, matches, matches)
	}
	return pc.c.price(a), outLz
}

// costVecSort predicts the batch-at-a-time sort, mirroring vec.Sort: bulk
// key extraction (expression kernels plus one packing primitive per key per
// batch), the chunked sort-buffer fill, the same O(n log n) comparator
// costs as the row sort, and a lazily backed emit — one dispatch and a
// streaming read of the sorted run per output batch, with no per-row output
// copy. The output batch is backed by the sorted rows, so parent kernels
// pay materialization only for the columns they touch.
func (pc *planCtx) costVecSort(n *Node) (float64, *lazyBatch) {
	var a est
	lz := cloneLazy(pc.lazy[n.Kids[0]])
	cols := map[int]bool{}
	for _, k := range n.SortKeys {
		exprCols(k.Expr, cols)
	}
	pc.vecMaterialize(&a, lz, cols)
	in := n.Kids[0].EstRows
	batches := pc.batchesFor(in)
	nkeys := float64(len(n.SortKeys))
	for _, k := range n.SortKeys {
		pc.vecExpr(&a, k.Expr, batches, in)
	}
	// Key packing: one primitive per key per batch.
	pc.c.tuple(&a, batches*nkeys)
	a.l1d += in * nkeys * vec.KernelLoadsPerVal
	a.add += in * nkeys
	a.reg2 += in * nkeys * vec.KernelStoresPerVal
	// Collect dispatch per batch, then the chunked sort-buffer fill.
	pc.c.tuple(&a, 2*batches)
	a.reg2 += in
	// Ordering pass: identical to the row sort's comparator costs — the
	// merge-locality model, not a uniform-random blend (see sortCompares).
	pc.c.sortCompares(&a, in, 16, nkeys)
	a.reg2 += in // final placement (the ordering vector store)
	// Emit: one dispatch and a streaming run read per output batch.
	pc.c.tuple(&a, pc.batchesFor(n.EstRows))
	a.l1d += in * 16 / 64
	return pc.c.price(a), &lazyBatch{mat: map[int]bool{}, rows: n.EstRows}
}
