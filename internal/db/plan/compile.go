package plan

import (
	"fmt"
	"strings"

	"energydb/internal/db/catalog"
	"energydb/internal/db/exec"
	"energydb/internal/db/sql"
	"energydb/internal/db/value"
)

// monthDays is the cumulative day count at the start of each month under
// the generator's leap-free calendar (tpch.MkDate uses the same one).
var monthDays = [12]int{0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334}

// dateLiteral parses a 'YYYY-MM-DD' string into a date datum (days since
// the 1992-01-01 TPC-H epoch, leap-free calendar). String literals shaped
// like dates are compiled to date values so comparisons against date
// columns order chronologically; value.Compare would otherwise compare a
// date's empty string field against the literal.
func dateLiteral(s string) (value.Value, bool) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return value.Value{}, false
	}
	num := func(sub string) (int, bool) {
		n := 0
		for i := 0; i < len(sub); i++ {
			if sub[i] < '0' || sub[i] > '9' {
				return 0, false
			}
			n = n*10 + int(sub[i]-'0')
		}
		return n, true
	}
	y, ok1 := num(s[0:4])
	m, ok2 := num(s[5:7])
	d, ok3 := num(s[8:10])
	if !ok1 || !ok2 || !ok3 || m < 1 || m > 12 || d < 1 || d > 31 {
		return value.Value{}, false
	}
	return value.Date(int64((y-1992)*365 + monthDays[m-1] + d - 1)), true
}

// literal converts a string literal, promoting date-shaped strings.
func literal(s string) value.Value {
	if d, ok := dateLiteral(s); ok {
		return d
	}
	return value.Str(s)
}

func aggKind(name string) (exec.AggKind, error) {
	switch strings.ToUpper(name) {
	case "SUM":
		return exec.AggSum, nil
	case "AVG":
		return exec.AggAvg, nil
	case "COUNT":
		return exec.AggCount, nil
	case "MIN":
		return exec.AggMin, nil
	case "MAX":
		return exec.AggMax, nil
	default:
		return 0, fmt.Errorf("plan: unknown aggregate %q", name)
	}
}

// compile lowers an AST node to an executor expression over the schema.
func compile(n sql.Node, schema *catalog.Schema) (exec.Expr, error) {
	switch v := n.(type) {
	case sql.ColNode:
		idx, err := schema.ColIndex(v.Name)
		if err != nil {
			return nil, err
		}
		return exec.Col{Idx: idx, Name: v.Name}, nil
	case sql.NumNode:
		if v.Value == float64(int64(v.Value)) {
			return exec.Const{V: value.Int(int64(v.Value))}, nil
		}
		return exec.Const{V: value.Float(v.Value)}, nil
	case sql.StrNode:
		return exec.Const{V: literal(v.Value)}, nil
	case sql.NotNode:
		e, err := compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		return exec.Not{E: e}, nil
	case sql.LikeNode:
		e, err := compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		return exec.Like{E: e, Pattern: v.Pattern}, nil
	case sql.InNode:
		e, err := compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		list := make([]value.Value, 0, len(v.List))
		for _, item := range v.List {
			c, err := compile(item, schema)
			if err != nil {
				return nil, err
			}
			k, ok := c.(exec.Const)
			if !ok {
				return nil, fmt.Errorf("plan: IN list must contain literals")
			}
			list = append(list, k.V)
		}
		return exec.InList{E: e, List: list}, nil
	case sql.BetweenNode:
		e, err := compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		lo, err := compile(v.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := compile(v.Hi, schema)
		if err != nil {
			return nil, err
		}
		// SQL BETWEEN is inclusive on both ends.
		return exec.BinOp{Op: exec.OpAnd,
			L: exec.BinOp{Op: exec.OpGe, L: e, R: lo},
			R: exec.BinOp{Op: exec.OpLe, L: e, R: hi},
		}, nil
	case sql.BinNode:
		l, err := compile(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := compile(v.R, schema)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[v.Op]
		if !ok {
			return nil, fmt.Errorf("plan: unknown operator %q", v.Op)
		}
		return exec.BinOp{Op: op, L: l, R: r}, nil
	case sql.AggNode:
		return nil, fmt.Errorf("plan: aggregate %s used outside the select list", v.Func)
	default:
		return nil, fmt.Errorf("plan: cannot compile %T", n)
	}
}

var binOps = map[string]exec.BinOpKind{
	"+": exec.OpAdd, "-": exec.OpSub, "*": exec.OpMul, "/": exec.OpDiv,
	"=": exec.OpEq, "<>": exec.OpNe, "<": exec.OpLt, "<=": exec.OpLe,
	">": exec.OpGt, ">=": exec.OpGe, "AND": exec.OpAnd, "OR": exec.OpOr,
}

// compileWithAliases resolves output-column aliases before falling back to
// schema resolution (ORDER BY can name select-list aliases).
func compileWithAliases(n sql.Node, schema *catalog.Schema, aliases map[string]int) (exec.Expr, error) {
	if c, ok := n.(sql.ColNode); ok {
		if idx, ok := aliases[c.Name]; ok {
			return exec.Col{Idx: idx, Name: c.Name}, nil
		}
	}
	return compile(n, schema)
}

// render produces a canonical string for AST matching (GROUP BY keys) and
// EXPLAIN display.
func render(n sql.Node) string {
	switch v := n.(type) {
	case sql.ColNode:
		return v.Name
	case sql.NumNode:
		return fmt.Sprintf("%g", v.Value)
	case sql.StrNode:
		return fmt.Sprintf("'%s'", v.Value)
	case sql.BinNode:
		return fmt.Sprintf("(%s %s %s)", render(v.L), v.Op, render(v.R))
	case sql.NotNode:
		return "NOT " + render(v.E)
	case sql.LikeNode:
		return fmt.Sprintf("%s LIKE '%s'", render(v.E), v.Pattern)
	case sql.InNode:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = render(e)
		}
		return fmt.Sprintf("%s IN (%s)", render(v.E), strings.Join(parts, ", "))
	case sql.BetweenNode:
		return fmt.Sprintf("%s BETWEEN %s AND %s", render(v.E), render(v.Lo), render(v.Hi))
	case sql.AggNode:
		if v.Arg == nil {
			return strings.ToLower(v.Func) + "(*)"
		}
		return fmt.Sprintf("%s(%s)", strings.ToLower(v.Func), render(v.Arg))
	default:
		return "?"
	}
}

// andChain folds conjuncts back into one AND tree (nil for none).
func andChain(conds []sql.Node) sql.Node {
	var out sql.Node
	for _, c := range conds {
		if out == nil {
			out = c
		} else {
			out = sql.BinNode{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// splitConjuncts flattens a predicate's top-level AND chain.
func splitConjuncts(n sql.Node) []sql.Node {
	if n == nil {
		return nil
	}
	if b, ok := n.(sql.BinNode); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Node{n}
}

// colRefs collects the column names a node references.
func colRefs(n sql.Node, out map[string]bool) {
	switch v := n.(type) {
	case sql.ColNode:
		out[v.Name] = true
	case sql.BinNode:
		colRefs(v.L, out)
		colRefs(v.R, out)
	case sql.NotNode:
		colRefs(v.E, out)
	case sql.LikeNode:
		colRefs(v.E, out)
	case sql.InNode:
		colRefs(v.E, out)
		for _, e := range v.List {
			colRefs(e, out)
		}
	case sql.BetweenNode:
		colRefs(v.E, out)
		colRefs(v.Lo, out)
		colRefs(v.Hi, out)
	case sql.AggNode:
		if v.Arg != nil {
			colRefs(v.Arg, out)
		}
	}
}

// hasAggregateItem reports whether any select item or the given flag makes
// the statement aggregated.
func aggregated(stmt *sql.SelectStmt) bool {
	if len(stmt.GroupBy) > 0 {
		return true
	}
	for _, it := range stmt.Items {
		if !it.Star && sql.HasAggregate(it.Expr) {
			return true
		}
	}
	return false
}
