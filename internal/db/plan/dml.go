package plan

import (
	"errors"
	"fmt"

	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/sql"
	"energydb/internal/db/txn"
	"energydb/internal/db/value"
)

// ExecWrite lowers a DML statement (INSERT, UPDATE, DELETE) onto the
// engine's transactional write paths and returns the number of rows
// affected. With tx nil the statement autocommits (one statement, one
// transaction); otherwise the writes join tx and become visible at its
// commit. Write-write conflicts surface as txn.ErrWriteConflict — under an
// explicit transaction the caller decides whether to roll back.
func ExecWrite(e *engine.Engine, tx *txn.Txn, stmt sql.Statement) (int, error) {
	if tx == nil {
		t := e.Begin()
		n, err := execWriteTxn(e, t, stmt)
		if err != nil {
			if rbErr := e.Rollback(t); rbErr != nil {
				return n, errors.Join(err, rbErr)
			}
			return n, err
		}
		return n, e.Commit(t)
	}
	return execWriteTxn(e, tx, stmt)
}

func execWriteTxn(e *engine.Engine, tx *txn.Txn, stmt sql.Statement) (int, error) {
	switch s := stmt.(type) {
	case *sql.InsertStmt:
		return execInsert(e, tx, s)
	case *sql.UpdateStmt:
		return execUpdate(e, tx, s)
	case *sql.DeleteStmt:
		return execDelete(e, tx, s)
	default:
		return 0, fmt.Errorf("plan: %T is not a DML statement", stmt)
	}
}

func execInsert(e *engine.Engine, tx *txn.Txn, s *sql.InsertStmt) (int, error) {
	t, err := e.Table(s.Table)
	if err != nil {
		return 0, err
	}
	schema := t.Schema()
	cols := s.Cols
	if len(cols) == 0 {
		if len(s.Values) != len(schema.Columns) {
			return 0, fmt.Errorf("plan: INSERT supplies %d values for %d columns",
				len(s.Values), len(schema.Columns))
		}
		cols = schema.Names()
	}
	row := make(value.Row, len(schema.Columns))
	nodes := 0
	for i, col := range cols {
		ci, err := schema.ColIndex(col)
		if err != nil {
			return 0, err
		}
		v, n, err := evalLiteral(s.Values[i])
		if err != nil {
			return 0, fmt.Errorf("plan: INSERT value for %q: %w", col, err)
		}
		nodes += n
		row[ci], err = coerce(v, schema.Columns[ci].Type)
		if err != nil {
			return 0, fmt.Errorf("plan: INSERT value for %q: %w", col, err)
		}
	}
	e.Ctx.EvalCost(nodes)
	e.InsertTxn(tx, t, row)
	return 1, nil
}

func execUpdate(e *engine.Engine, tx *txn.Txn, s *sql.UpdateStmt) (int, error) {
	t, err := e.Table(s.Table)
	if err != nil {
		return 0, err
	}
	schema := t.Schema()
	pred, err := compileOptional(s.Where, schema)
	if err != nil {
		return 0, err
	}
	type setter struct {
		ci    int
		expr  setExpr
		nodes int
	}
	sets := make([]setter, 0, len(s.Sets))
	for _, sc := range s.Sets {
		ci, err := schema.ColIndex(sc.Col)
		if err != nil {
			return 0, err
		}
		ex, err := compile(sc.Expr, schema)
		if err != nil {
			return 0, err
		}
		sets = append(sets, setter{ci: ci, expr: ex, nodes: ex.Nodes()})
	}
	return e.UpdateWhereTxn(tx, t, pred, func(r value.Row) value.Row {
		for _, st := range sets {
			e.Ctx.EvalCost(st.nodes)
			v, cerr := coerce(st.expr.Eval(r), schema.Columns[st.ci].Type)
			if cerr != nil {
				// Type mismatch on an expression result: keep the value
				// as evaluated (comparisons handle mixed numerics).
				v = st.expr.Eval(r)
			}
			r[st.ci] = v
		}
		return r
	})
}

func execDelete(e *engine.Engine, tx *txn.Txn, s *sql.DeleteStmt) (int, error) {
	t, err := e.Table(s.Table)
	if err != nil {
		return 0, err
	}
	pred, err := compileOptional(s.Where, t.Schema())
	if err != nil {
		return 0, err
	}
	return e.DeleteWhereTxn(tx, t, pred)
}

// setExpr is the evaluable slice of exec.Expr the setters need.
type setExpr interface {
	Eval(value.Row) value.Value
	Nodes() int
}

// compileOptional compiles a possibly-absent predicate.
func compileOptional(n sql.Node, schema *catalog.Schema) (exec.Expr, error) {
	if n == nil {
		return nil, nil
	}
	return compile(n, schema)
}

// evalLiteral folds a literal expression (numbers, strings, arithmetic over
// them) to a value; column references are rejected — INSERT VALUES has no
// input row. It returns the value and the expression's node count for eval
// costing.
func evalLiteral(n sql.Node) (value.Value, int, error) {
	refs := make(map[string]bool)
	colRefs(n, refs)
	if len(refs) > 0 {
		return value.Value{}, 0, fmt.Errorf("column references are not allowed in VALUES")
	}
	ex, err := compile(n, catalog.NewSchema())
	if err != nil {
		return value.Value{}, 0, err
	}
	return ex.Eval(nil), ex.Nodes(), nil
}

// coerce converts a literal to the column type (INSERT and UPDATE write
// typed rows; 1 must land as Int in an int column and 1.0 as Float in a
// float column, or chained comparisons and index keys would misbehave).
func coerce(v value.Value, t value.Type) (value.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case value.TypeInt:
		if v.T == value.TypeStr {
			return v, fmt.Errorf("cannot store string in int column")
		}
		return value.Int(v.AsInt()), nil
	case value.TypeFloat:
		if v.T == value.TypeStr {
			return v, fmt.Errorf("cannot store string in float column")
		}
		return value.Float(v.AsFloat()), nil
	case value.TypeDate:
		if v.T == value.TypeStr {
			return v, fmt.Errorf("cannot store string in date column")
		}
		return value.Date(v.AsInt()), nil
	case value.TypeStr:
		if v.T != value.TypeStr {
			return v, fmt.Errorf("cannot store %v in string column", v.T)
		}
		return v, nil
	default:
		return v, nil
	}
}
