package plan

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"energydb/internal/core"
	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/sql"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
	"energydb/internal/mubench"
	"energydb/internal/rapl"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	return seedEngine(engine.New(engine.SQLite, m, engine.SettingBaseline))
}

func seedEngine(e *engine.Engine) *engine.Engine {
	items := e.CreateTable("items", catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "cat", Type: value.TypeInt},
		catalog.Column{Name: "price", Type: value.TypeFloat},
		catalog.Column{Name: "name", Type: value.TypeStr, Width: 16},
	))
	names := []string{"apple", "banana", "cherry", "avocado"}
	for i := 0; i < 100; i++ {
		e.Insert(items, value.Row{
			value.Int(int64(i)),
			value.Int(int64(i % 4)),
			value.Float(float64(i) * 1.5),
			value.Str(names[i%4]),
		})
	}
	e.CreateIndex(items, "id")

	cats := e.CreateTable("cats", catalog.NewSchema(
		catalog.Column{Name: "cat_id", Type: value.TypeInt},
		catalog.Column{Name: "cat_name", Type: value.TypeStr, Width: 16},
	))
	for i := 0; i < 4; i++ {
		e.Insert(cats, value.Row{value.Int(int64(i)), value.Str([]string{"fruit", "veg", "dairy", "meat"}[i])})
	}
	e.CreateIndex(cats, "cat_id")
	return e
}

func TestSelectStar(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT * FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestWherePushdown(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT id FROM items WHERE price < 15 AND cat = 1")
	if err != nil {
		t.Fatal(err)
	}
	// price < 15 -> id < 10; cat = 1 -> id % 4 == 1: ids 1, 5, 9.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestProjectionArithmetic(t *testing.T) {
	e := testEngine(t)
	rows, names, err := Run(e, "SELECT id, price * 2 AS double_price FROM items WHERE id = 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].AsFloat() != 30 {
		t.Fatalf("rows = %v", rows)
	}
	if names[1] != "double_price" {
		t.Fatalf("names = %v", names)
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, `
		SELECT cat, COUNT(*) AS n, SUM(price) AS total, MIN(id), MAX(id)
		FROM items GROUP BY cat ORDER BY cat`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0][1].AsInt() != 25 {
		t.Fatalf("count = %v", rows[0][1])
	}
	if rows[1][3].AsInt() != 1 || rows[1][4].AsInt() != 97 {
		t.Fatalf("min/max of cat 1 = %v/%v", rows[1][3], rows[1][4])
	}
}

func TestScalarAggregate(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT COUNT(*), AVG(price) FROM items WHERE cat = 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 25 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoin(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, `
		SELECT name, cat_name FROM items
		JOIN cats ON cat = cat_id
		WHERE id < 8 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][1].S != "veg" {
		t.Fatalf("joined cat of id 1 = %v", rows[1][1])
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT id, price FROM items ORDER BY price DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].AsInt() != 99 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLikeInBetween(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT id FROM items WHERE name LIKE 'a%' AND id BETWEEN 0 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	// apple (i%4==0) and avocado (i%4==3) in [0, 20]: 0,4,8,12,16,20 + 3,7,11,15,19 = 11.
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	rows, _, err = Run(e, "SELECT id FROM items WHERE cat IN (1, 2) LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestPlanErrors(t *testing.T) {
	e := testEngine(t)
	bad := []string{
		"SELECT * FROM missing",
		"SELECT nope FROM items",
		"SELECT id FROM items JOIN cats ON wrong = cat_id",
		"SELECT id, SUM(price) FROM items",               // id not grouped
		"SELECT *, id FROM items",                        // star mixed
		"SELECT MAX(price) FROM items WHERE SUM(id) > 0", // aggregate in WHERE
	}
	for _, q := range bad {
		if _, _, err := Run(e, q); err == nil {
			t.Errorf("Run(%q) should fail", q)
		}
	}
}

func TestResultsMatchAcrossEngines(t *testing.T) {
	query := "SELECT cat, COUNT(*) AS n FROM items GROUP BY cat ORDER BY cat"
	var want []value.Row
	for i, kind := range engine.Kinds() {
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		e := engine.New(kind, m, engine.SettingBaseline)
		items := e.CreateTable("items", catalog.NewSchema(
			catalog.Column{Name: "id", Type: value.TypeInt},
			catalog.Column{Name: "cat", Type: value.TypeInt},
			catalog.Column{Name: "price", Type: value.TypeFloat},
			catalog.Column{Name: "name", Type: value.TypeStr, Width: 16},
		))
		for j := 0; j < 60; j++ {
			e.Insert(items, value.Row{value.Int(int64(j)), value.Int(int64(j % 3)), value.Float(1), value.Str("x")})
		}
		rows, _, err := Run(e, query)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = rows
			continue
		}
		if len(rows) != len(want) {
			t.Fatalf("%v: %d rows, want %d", kind, len(rows), len(want))
		}
		for r := range rows {
			if rows[r][1].AsInt() != want[r][1].AsInt() {
				t.Fatalf("%v row %d differs", kind, r)
			}
		}
	}
}

// TestJoinPushdownReducesScan is the regression test for the missed-pushdown
// bug in the old planner (WHERE was pushed into the scan only when the
// statement had no joins). The optimized plan must scan only the matching
// base tuples and spend measurably less L1D energy than the unpushed
// scan→join→filter tree the old planner emitted.
func TestJoinPushdownReducesScan(t *testing.T) {
	const query = `SELECT name, cat_name FROM items JOIN cats ON cat = cat_id WHERE price < 15`

	// Optimized plan with per-operator meters.
	e := testEngine(t)
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(e, stmt)
	if err != nil {
		t.Fatal(err)
	}
	op, meters, err := p.BuildMetered()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // price < 15 -> ids 0..9
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	var scanRows = -1
	var pushed memsim.Counters
	for n, m := range meters {
		if n.TableName == "items" && (n.Kind == opSeqScan || n.Kind == opIndexScan) {
			scanRows = m.Rows()
		}
		pushed = pushed.Add(m.Own())
	}
	if scanRows < 0 {
		t.Fatal("no scan of items in the plan")
	}
	if scanRows != 10 {
		t.Fatalf("items scan emitted %d tuples, want 10 (predicate pushed through the join)", scanRows)
	}

	// Hand-built unpushed tree on a fresh, identically seeded engine:
	// full scan → join → post-join filter (what the old planner produced).
	e2 := testEngine(t)
	items := e2.MustTable("items")
	join := e2.EquiJoin(e2.Scan(items, nil), 1, e2.MustTable("cats"), "cat_id", nil)
	cond, err := sql.Parse("SELECT * FROM items WHERE price < 15")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := compile(cond.Where, join.Schema())
	if err != nil {
		t.Fatal(err)
	}
	c0 := e2.M.Hier.Counters()
	rows2, err := exec.Collect(&exec.Filter{Ctx: e2.Ctx, Child: join, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	unpushed := e2.M.Hier.Counters().Sub(c0)
	if len(rows2) != 10 {
		t.Fatalf("unpushed rows = %d, want 10", len(rows2))
	}

	if pushed.L1DAccesses >= unpushed.L1DAccesses {
		t.Fatalf("pushed plan L1D accesses = %d, not below unpushed = %d",
			pushed.L1DAccesses, unpushed.L1DAccesses)
	}
	price := func(c memsim.Counters) float64 {
		return e.M.Profile.Energy.Active(c, e.M.PState()).Total()
	}
	if price(pushed) >= price(unpushed) {
		t.Fatalf("pushed plan energy %.3g J, not below unpushed %.3g J",
			price(pushed), price(unpushed))
	}
}

// TestJoinResolutionError checks the diagnosable join error: it must report
// where each ON column was (not) found and list both schemas.
func TestJoinResolutionError(t *testing.T) {
	e := testEngine(t)
	_, _, err := Run(e, "SELECT id FROM items JOIN cats ON wrong = cat_id")
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	for _, want := range []string{
		`"wrong" is in neither side`,
		`"cat_id" is only in table "cats"`,
		"outer relation columns: [cat id name price]",
		`table "cats" columns: [cat_id cat_name]`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q\nmissing %q", msg, want)
		}
	}
}

func explainLines(t *testing.T, e *engine.Engine, query string) []string {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(e, stmt)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := p.Explain()
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = r[0].S
	}
	return lines
}

func TestExplainChoosesIndexScan(t *testing.T) {
	e := testEngine(t)
	lines := explainLines(t, e, "SELECT price FROM items WHERE id = 50")
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "IndexScan items (id)") {
		t.Fatalf("point lookup did not choose the index:\n%s", joined)
	}
	if !strings.Contains(lines[len(lines)-1], "predicted total") {
		t.Fatalf("missing predicted-total footer:\n%s", joined)
	}
}

func TestExplainSeqScanForFullTable(t *testing.T) {
	e := testEngine(t)
	joined := strings.Join(explainLines(t, e, "SELECT * FROM items"), "\n")
	if !strings.Contains(joined, "SeqScan items") {
		t.Fatalf("full-table read should sequential-scan:\n%s", joined)
	}
}

func newProfiledEngine(t *testing.T) (*engine.Engine, *core.Profiler) {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	meter := rapl.NewMeter(m, 5, 0)
	r := mubench.NewRunner(m, meter)
	r.Scale = 0.05
	cal, err := core.Calibrate(r)
	if err != nil {
		t.Fatal(err)
	}
	return seedEngine(engine.New(engine.SQLite, m, engine.SettingBaseline)),
		core.NewProfiler(m, meter, cal)
}

// TestExplainEnergyAttribution checks the EXPLAIN ENERGY contract: the
// per-operator measured energies (rendered as shares of Eactive) sum to the
// statement ledger total.
func TestExplainEnergyAttribution(t *testing.T) {
	e, prof := newProfiledEngine(t)
	stmt, err := sql.Parse(`SELECT cat, SUM(price) FROM items JOIN cats ON cat = cat_id
		WHERE id < 50 GROUP BY cat ORDER BY cat`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(e, stmt)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, b, err := p.ExplainEnergy(prof)
	if err != nil {
		t.Fatal(err)
	}
	if b.EActive <= 0 {
		t.Fatalf("EActive = %v", b.EActive)
	}
	shareRE := regexp.MustCompile(`E=\S+\s+([0-9.]+)%,`)
	sumShare := 0.0
	opLines := 0
	for _, r := range rows {
		line := r[0].S
		if strings.HasPrefix(line, "measured total") || strings.HasPrefix(line, "predicted total") {
			continue
		}
		opLines++
		m := shareRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("cannot parse share from %q", line)
		}
		share, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("cannot parse %q: %v", line, err)
		}
		sumShare += share
	}
	if opLines < 4 {
		t.Fatalf("only %d operator lines", opLines)
	}
	if sumShare < 99.0 || sumShare > 101.0 {
		t.Fatalf("operator shares sum to %.2f%%, want ~100%%", sumShare)
	}
}

// TestOptimizerPredictionWithinBound sanity-checks the cost model on the toy
// schema: the predicted total should land within a factor of a few of the
// measured Eactive (the tight 25% acceptance bound is enforced on TPC-H by
// experiment X6).
func TestOptimizerPredictionWithinBound(t *testing.T) {
	e, prof := newProfiledEngine(t)
	for _, q := range []string{
		"SELECT * FROM items",
		"SELECT id, price FROM items WHERE cat = 2",
		"SELECT cat, COUNT(*) FROM items GROUP BY cat",
	} {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Prepare(e, stmt)
		if err != nil {
			t.Fatal(err)
		}
		pred := p.PredictedEJ()
		op, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		b := prof.Profile("q", func() {
			_, err = exec.Drain(op)
		})
		if err != nil {
			t.Fatal(err)
		}
		if pred <= 0 || b.EActive <= 0 {
			t.Fatalf("%s: pred=%v meas=%v", q, pred, b.EActive)
		}
		if ratio := pred / b.EActive; ratio < 0.2 || ratio > 5 {
			t.Errorf("%s: predicted %.3g J vs measured %.3g J (ratio %.2f)", q, pred, b.EActive, ratio)
		}
	}
}
