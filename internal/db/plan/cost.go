package plan

import (
	"math"

	"energydb/internal/db/engine"
	"energydb/internal/memsim"
)

// est accumulates estimated micro-operation counts for a plan fragment, in
// fractional units. The fields mirror the energy-bearing PMU counters of
// memsim.Counters (the paper's N_m terms); pricing converts them through the
// machine's calibrated ΔE_m table, so the cost model and the measurement
// share one energy vocabulary.
type est struct {
	l1d   float64 // demand L1D accesses (N_L1D)
	reg2  float64 // stores completing in L1D (N_Reg2L1D)
	l2    float64 // demand L2 accesses
	l3    float64 // demand L3 accesses
	mem   float64 // demand DRAM accesses
	pfL2  float64 // streamer prefetches filling L2 (priced ΔE_L3)
	pfL3  float64 // streamer prefetches filling L3 (priced ΔE_mem)
	stall float64 // stall cycles (N_stall)
	add   float64 // arithmetic ops
	other float64 // plain instructions (E_other carrier)
}

func (a *est) addIn(b est) {
	a.l1d += b.l1d
	a.reg2 += b.reg2
	a.l2 += b.l2
	a.l3 += b.l3
	a.mem += b.mem
	a.pfL2 += b.pfL2
	a.pfL3 += b.pfL3
	a.stall += b.stall
	a.add += b.add
	a.other += b.other
}

// counters rounds the estimate into PMU counter form for pricing.
func (a est) counters() memsim.Counters {
	r := func(f float64) uint64 {
		if f <= 0 {
			return 0
		}
		return uint64(f + 0.5)
	}
	return memsim.Counters{
		L1DAccesses:  r(a.l1d),
		StoreL1DHits: r(a.reg2),
		L2Accesses:   r(a.l2),
		L3Accesses:   r(a.l3),
		MemAccesses:  r(a.mem),
		PrefetchL2:   r(a.pfL2),
		PrefetchL3:   r(a.pfL3),
		StallCycles:  r(a.stall),
		AddOps:       r(a.add),
		OtherOps:     r(a.other),
	}
}

// coster estimates operator energy on one engine: it knows the machine's
// cache geometry and latencies, the profile's executor cost model, and how to
// price a micro-op estimate with the machine's ground-truth ΔE table.
type coster struct {
	e                         *engine.Engine
	l1Bytes, l2Bytes, l3Bytes float64
	depL1, depL2, depL3       float64 // dependent-load stall cycles per level
	depMem                    float64
	indL2, indL3, indMem      float64 // independent (pipelined) stalls per level
	// footprint is the whole plan's working-set size in bytes (scanned
	// heaps plus materialized intermediates). Prepare sets it after the
	// tree is built and re-costs the scans: a scan whose plan builds a
	// bigger-than-L3 sort buffer streams from DRAM no matter how small the
	// table itself is, because the intermediates evict it between runs.
	footprint float64
}

func newCoster(e *engine.Engine) *coster {
	cfg := e.M.Profile.Mem
	dep := func(lat int) float64 { return float64(lat - 1) }
	ind := func(lat int) float64 { return float64((lat - 4) / 4) }
	return &coster{
		e:       e,
		l1Bytes: float64(cfg.L1D.SizeBytes),
		l2Bytes: float64(cfg.L2.SizeBytes),
		l3Bytes: float64(cfg.L3.SizeBytes),
		depL1:   dep(cfg.L1D.LatencyCycles),
		depL2:   dep(cfg.L2.LatencyCycles),
		depL3:   dep(cfg.L3.LatencyCycles),
		depMem:  dep(cfg.MemLatencyCycles),
		indL2:   ind(cfg.L2.LatencyCycles),
		indL3:   ind(cfg.L3.LatencyCycles),
		indMem:  ind(cfg.MemLatencyCycles),
	}
}

// price converts a micro-op estimate to joules of active energy at the
// engine's current operating point.
func (c *coster) price(a est) float64 {
	return c.e.M.Profile.Energy.Active(a.counters(), c.e.M.PState()).Total()
}

// tuple charges the profile's per-tuple interpretation overhead for n rows
// (hot loads, hot stores, plain instructions — all cache-resident).
func (c *coster) tuple(a *est, n float64) {
	cm := c.e.Ctx.Cost
	a.l1d += n * float64(cm.TupleLoads)
	a.reg2 += n * float64(cm.TupleStores)
	a.other += n * float64(cm.TupleInstr)
}

// eval charges expression evaluation of `nodes` AST nodes over n rows.
func (c *coster) eval(a *est, n float64, nodes int) {
	if nodes <= 0 {
		return
	}
	cm := c.e.Ctx.Cost
	f := n * float64(nodes)
	a.l1d += f * float64(cm.EvalLoads)
	a.reg2 += f * float64(cm.EvalStores)
	a.other += f * float64(cm.EvalInstr)
}

// emit charges the output-row copy for n rows of the given byte width.
func (c *coster) emit(a *est, n, width float64) {
	if !c.e.Ctx.Cost.EmitRowCopy || width <= 0 {
		return
	}
	a.reg2 += n * math.Ceil(width/64)
}

// randLoad charges n dependent loads at uniformly random addresses within a
// working set of setBytes, blending hit levels by the fraction of the set
// each cache level holds.
func (c *coster) randLoad(a *est, n, setBytes float64) {
	if n <= 0 {
		return
	}
	clamp := func(f float64) float64 { return math.Min(1, math.Max(0, f)) }
	p1 := 1.0
	if setBytes > 0 {
		p1 = clamp(c.l1Bytes / setBytes)
	}
	p2 := clamp(c.l2Bytes/setBytes) - p1
	p3 := clamp(c.l3Bytes/setBytes) - p1 - p2
	pm := 1 - p1 - p2 - p3
	a.l1d += n
	a.l2 += n * (1 - p1)
	a.l3 += n * (1 - p1 - p2)
	a.mem += n * pm
	a.stall += n * (p1*c.depL1 + p2*c.depL2 + p3*c.depL3 + pm*c.depMem)
}

// sortInsertionBlock is the run length below which sort.SliceStable switches
// to insertion sort; merge levels only exist above it.
const sortInsertionBlock = 20

// sortCmpFactor scales n·log2(n) to sort.SliceStable's actual comparison
// count: symmerge plus the insertion-sorted blocks run ~27% over the
// information-theoretic bound (measured: 2.04M comparator calls ordering
// 97k entries, vs n·log2(n) = 1.61M).
const sortCmpFactor = 1.27

// sortCompares charges the comparator traffic of ordering n entries of
// entryBytes each: two dependent buffer loads per comparison, as both the
// row and vector sorts issue them. Unlike randLoad's uniform-random blend,
// the comparison sequence of a merge-style sort (sort.SliceStable:
// insertion-sorted blocks, then pairwise run merges) has strong locality —
// the run heads being merged stay hot, so misses are per merge level, not
// per load: each level streams the two run halves against each other and
// the permuted index, costing roughly two cold passes over the buffer when
// it exceeds L2. Measured sort counters confirm it: ordering a ~1.5MB
// buffer took 660k comparator misses ≈ 2 × 13 merge levels × 24.3k buffer
// lines, with ~84% of loads hitting L1D and essentially no DRAM traffic —
// which the old uniform-random model over-priced by >3x (the X8 +125%
// sort misprediction).
func (c *coster) sortCompares(a *est, n, entryBytes, nkeys float64) {
	if n <= 1 {
		return
	}
	compares := sortCmpFactor * n * math.Log2(n)
	loads := 2 * compares
	a.l1d += loads
	a.add += compares * nkeys
	bufBytes := n * entryBytes
	miss := 0.0
	if bufBytes > c.l1Bytes {
		mergeLevels := math.Ceil(math.Log2(n / sortInsertionBlock))
		passes := 1.0
		if bufBytes > c.l2Bytes {
			passes = 2
		}
		miss = math.Min(loads, passes*mergeLevels*bufBytes/64)
	}
	a.stall += (loads - miss) * c.depL1
	if miss <= 0 {
		return
	}
	clamp := func(f float64) float64 { return math.Min(1, math.Max(0, f)) }
	p2 := clamp(c.l2Bytes / bufBytes)
	p3 := clamp(c.l3Bytes/bufBytes) - p2
	pm := 1 - p2 - p3
	a.l2 += miss
	a.l3 += miss * (1 - p2)
	a.mem += miss * pm
	a.stall += miss * (p2*c.depL2 + p3*c.depL3 + pm*c.depMem)
}

// l3ShareFrac is the fraction of L3 a warm working set can actually keep
// once it outgrows the cache: LRU pressure from indexes, hash state and the
// pool's own metadata means a spilling set never holds the whole cache
// (measured warm re-scans of an 8.0MB heap: 1.6% DRAM refill when the heap
// is the plan's entire working set, ~39% when join build state pushes the
// set to 11MB, ~91% at 26.5MB — the graded blend below tracks the last two;
// the first stays in the fits-in-L3 branch).
const l3ShareFrac = 0.85

// seqLines charges `lines` cache lines streamed sequentially out of a
// stream of streamBytes inside a plan working set of setBytes, under the
// streamer prefetcher the profiler enables for database workloads: streams
// within L2 hit L2 directly (concurrent probe/agg state competes for L3,
// not for a fitting L2 stream — measured, Q2's part scan keeps >99% L2 hits
// with 100KB of interleaved index-fetch pages in flight); sets within L3
// are prefetched L3→L2 ahead of the demand stream; larger sets also
// prefetch DRAM→L3, with a couple of demand misses per 4KB page going all
// the way to memory while the streamer retrains. A set past L3 evicts even
// a small stream through L3's inclusive backfill, so the L2 case demands
// both bounds.
func (c *coster) seqLines(a *est, lines, streamBytes, setBytes float64) {
	if lines <= 0 {
		return
	}
	switch {
	case streamBytes <= c.l2Bytes && setBytes <= c.l3Bytes:
		a.l2 += lines
		a.stall += lines * c.indL2
	case setBytes <= c.l3Bytes:
		a.l2 += lines
		a.pfL2 += lines
		a.stall += lines * c.indL2
	default:
		// Steady state: one L3→L2 prefetch per line; only the stream
		// fraction that does not fit in the stream's L3 share is refilled
		// from DRAM, with ~2 training lines per 4KB page (64 lines)
		// missing all the way.
		miss := math.Min(1, math.Max(0, 1-l3ShareFrac*c.l3Bytes/setBytes))
		const trainFrac = 2.0 / 64
		deep := lines * trainFrac * miss
		rest := lines - deep
		a.l2 += lines
		a.pfL2 += rest
		a.pfL3 += rest * miss
		a.l3 += deep
		a.mem += deep
		a.stall += rest*c.indL2 + deep*c.indMem
	}
}

// coldLines charges `lines` page-fault fill lines: each faulted line is
// store-missed into the pool frame (walking L2, L3 and DRAM), after which the
// row loads on that page hit L1D.
func (c *coster) coldLines(a *est, lines float64) {
	a.l2 += lines
	a.l3 += lines
	a.mem += lines
	a.stall += lines * c.indMem
}

// table-shaped helpers -------------------------------------------------------

// heapRowWidth is the on-page row width including the profile's tuple header.
func (c *coster) heapRowWidth(t *engine.Table) float64 {
	return float64(t.Schema().RowWidth() + c.e.Knobs.TupleOverhead)
}

// heapBytes approximates the heap file's footprint.
func (c *coster) heapBytes(t *engine.Table) float64 {
	return float64(t.File.RowCount()) * c.heapRowWidth(t)
}

// residentFrac reports the fraction of the heap's pages currently in the
// buffer pool (plan-time residency stands in for the steady-state hit rate).
func residentFrac(t *engine.Table) float64 {
	res, total := t.File.ResidentPages()
	if total == 0 {
		return 1
	}
	return float64(res) / float64(total)
}

// scanHeap charges a full sequential scan of the heap (excluding per-row
// executor overhead, which callers charge against the scanned row count).
func (c *coster) scanHeap(a *est, t *engine.Table) {
	rows := float64(t.File.RowCount())
	if rows == 0 {
		return
	}
	w := c.heapRowWidth(t)
	rowLines := math.Ceil(w / 64)
	newLines := w / 64
	a.l1d += rows * rowLines // LoadRange issues one load per covered line
	r := residentFrac(t)
	// The stream competes for L3 with the whole plan's working set, not just
	// its own heap: a big sort or build buffer evicts the lines between
	// touches, so the DRAM-refill fraction follows the plan footprint
	// (measured: the same 7.9MB heap refills ~12% of its lines under a
	// footprint that just fits L3, ~39% under an 11MB one, and ~91% when a
	// 21MB sort buffer streams over it).
	c.seqLines(a, rows*newLines*r, c.heapBytes(t), math.Max(c.heapBytes(t), c.footprint))
	if r < 1 {
		// Faulted pages fill frame lines from the device; subsequent row
		// loads on the page then hit L1D (already counted above).
		pages := (1 - r) * c.heapBytes(t) / float64(c.e.Knobs.PageBytes)
		c.coldLines(a, pages*float64(c.e.Knobs.PageBytes)/64)
	}
	// One pool-frame lookup per page.
	pageRows := float64(c.e.Knobs.PageBytes) / w
	c.randLoad(a, rows/pageRows, c.l2Bytes)
}

// indexBytes approximates a secondary index's footprint (16-byte entries
// plus interior-node overhead).
func indexBytes(entries int) float64 {
	return float64(entries) * 16 * 1.07
}

// btreeDescend charges n root-to-leaf descents of the index on t.col.
func (c *coster) btreeDescend(a *est, n float64, height, order, entries int) {
	if n <= 0 || height <= 0 {
		return
	}
	perNode := float64(order) / 2
	probes := math.Ceil(math.Log2(math.Max(2, perNode))) + 1
	setBytes := indexBytes(entries)
	for lvl := 0; lvl < height; lvl++ {
		// Header load plus the binary-search probes, all dependent.
		c.randLoad(a, n*(1+probes), setBytes)
		a.other += n * probes
	}
}

// indexEntries charges iterating `n` consecutive index entries (four 16-byte
// entries per line; leaf hops are folded into the per-line miss).
func (c *coster) indexEntries(a *est, n float64, entries int) {
	if n <= 0 {
		return
	}
	a.l1d += n
	miss := est{}
	c.randLoad(&miss, n/4, indexBytes(entries))
	miss.l1d = 0 // the demand access is already counted
	a.addIn(miss)
}

// heapFetch charges n random single-row fetches from the heap.
func (c *coster) heapFetch(a *est, n float64, t *engine.Table) {
	if n <= 0 {
		return
	}
	w := c.heapRowWidth(t)
	lines := math.Ceil(w / 64)
	r := residentFrac(t)
	c.randLoad(a, n*lines*r, c.heapBytes(t))
	if r < 1 {
		pageLines := float64(c.e.Knobs.PageBytes) / 64
		c.coldLines(a, n*(1-r)*pageLines)
		a.l1d += n * (1 - r) * lines
	}
	// Pool frame lookup.
	c.randLoad(a, n, c.l2Bytes)
}
