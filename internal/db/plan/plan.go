// Package plan is the logical-plan optimizer: it rewrites a parsed SELECT
// into a relational tree, applies rewrite rules (predicate pushdown through
// joins, statistics-driven join reordering, column pruning), and picks
// physical operators — sequential versus index scans, hash versus index
// nested-loop joins — by predicted active energy rather than abstract cost
// units.
//
// The cost model estimates each candidate operator's micro-operation counts
// (the paper's N_m terms: L1D, Reg2L1D, L2, L3, mem, prefetch, stall) from
// catalog statistics and cache geometry, then prices them with the same
// calibrated ΔE_m table the measurement pipeline uses (Eq. 1). Plans are
// therefore chosen, displayed (EXPLAIN) and verified (EXPLAIN ENERGY, which
// meters each operator's counter delta during execution) in one energy
// vocabulary.
package plan

import (
	"fmt"

	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/sql"
	"energydb/internal/db/value"
	"energydb/internal/db/vec"
)

// Prepared is an optimized statement: the chosen physical plan with every
// decision recorded, bound to the engine view it was planned on. Build
// re-instantiates the same executor tree each time — planning decisions are
// never revisited, so a Prepared plan is stable across executions even as
// buffer-pool residency shifts.
type Prepared struct {
	E    *engine.Engine
	Stmt *sql.SelectStmt
	Root *Node
}

// Prepare plans a parsed statement on the engine.
func Prepare(e *engine.Engine, stmt *sql.SelectStmt) (*Prepared, error) {
	lp, err := buildLogical(e, stmt)
	if err != nil {
		return nil, err
	}
	pc := newPlanCtx(e, stmt, lp)
	chain, err := pc.buildChain()
	if err != nil {
		return nil, err
	}
	root, err := pc.buildTop(chain)
	if err != nil {
		return nil, err
	}
	pc.c.footprint = pc.planFootprint(root)
	pc.recostScans(root)
	pc.chooseModes(root)
	return &Prepared{E: e, Stmt: stmt, Root: root}, nil
}

// Names returns the output column names.
func (p *Prepared) Names() []string { return p.Root.Schema().Names() }

// Build instantiates the executor tree for one execution.
func (p *Prepared) Build() (exec.Operator, error) {
	op, err := p.instantiate(p.Root, nil, nil)
	return op, err
}

// BuildMetered instantiates the executor tree with every operator wrapped in
// a counter meter, for per-operator energy attribution. The returned map
// locates each node's meter.
func (p *Prepared) BuildMetered() (exec.Operator, map[*Node]*exec.Meter, error) {
	ms := exec.NewMeterSet(p.E.Ctx)
	meters := make(map[*Node]*exec.Meter)
	op, err := p.instantiate(p.Root, ms, meters)
	return op, meters, err
}

func (p *Prepared) instantiate(n *Node, ms *exec.MeterSet, meters map[*Node]*exec.Meter) (exec.Operator, error) {
	if n.Mode == ModeVector {
		// The whole vector chain rooted here is built batch-at-a-time and
		// adapted back to rows for the (row-mode) parent. The adapter
		// charges the boundary-crossing model; its charges are attributed
		// to the chain-top node's meter — the same node whose estimate the
		// planner folded the transition price into — so per-operator
		// predicted-vs-measured stays aligned and the partition stays
		// exact.
		vop, err := p.instantiateVec(n, ms, meters)
		if err != nil {
			return nil, err
		}
		rs := &vec.RowSource{Ctx: p.E.Ctx, Child: vop}
		if ms != nil {
			rs.Set, rs.M = ms, meters[n]
		}
		return rs, nil
	}
	e := p.E
	kids := make([]exec.Operator, len(n.Kids))
	var kidMeters []*exec.Meter
	for i, k := range n.Kids {
		op, err := p.instantiate(k, ms, meters)
		if err != nil {
			return nil, err
		}
		kids[i] = op
		if ms != nil {
			kidMeters = append(kidMeters, meters[k])
		}
	}
	var op exec.Operator
	switch n.Kind {
	case opSeqScan:
		op = e.Scan(n.Table, n.Filter)
	case opIndexScan:
		var err error
		op, err = e.IndexRange(n.Table, n.IdxCol, n.Lo, n.Hi, n.Filter)
		if err != nil {
			return nil, err
		}
	case opIndexJoin:
		op = &exec.IndexJoin{
			Ctx: e.Ctx, Outer: kids[0], Inner: n.Table.File,
			Index: n.Table.Index(n.InnerColName), OuterKey: n.OuterKey,
			Residual: n.Filter,
		}
	case opHashJoin:
		op = &exec.HashJoin{
			Ctx: e.Ctx, Build: kids[1], Probe: kids[0],
			BuildKey: []int{n.InnerKey}, ProbeKey: []int{n.OuterKey},
			Residual: n.Filter,
		}
	case opFilter:
		op = &exec.Filter{Ctx: e.Ctx, Child: kids[0], Pred: n.Filter}
	case opPrune:
		op = &exec.Prune{Ctx: e.Ctx, Child: kids[0], Cols: n.Cols}
	case opProject:
		op = &exec.Project{Ctx: e.Ctx, Child: kids[0], Exprs: n.Exprs, Names: n.Names}
	case opAggregate:
		g := e.GroupBy(kids[0], n.GroupExprs, n.Aggs)
		op = &exec.Project{Ctx: e.Ctx, Child: g, Exprs: n.PostExprs, Names: n.PostNames}
	case opSort:
		op = e.Sort(kids[0], n.SortKeys)
	case opLimit:
		op = &exec.Limit{Child: kids[0], N: n.LimitN}
	}
	if ms != nil {
		m := &exec.Meter{Label: n.Title(), Kids: kidMeters}
		meters[n] = m
		return &exec.Metered{Set: ms, Child: op, M: m}, nil
	}
	return op, nil
}

// instantiateVec builds the vectorized executor for a vector-mode node.
// chooseModes guarantees every child of a vector node is itself in vector
// mode, so the recursion bottoms out at the sequential scans and batches
// move edge to edge — through joins and sorts included — with no row
// adapter in between.
func (p *Prepared) instantiateVec(n *Node, ms *exec.MeterSet, meters map[*Node]*exec.Meter) (vec.Operator, error) {
	e := p.E
	kids := make([]vec.Operator, len(n.Kids))
	var kidMeters []*exec.Meter
	for i, k := range n.Kids {
		kid, err := p.instantiateVec(k, ms, meters)
		if err != nil {
			return nil, err
		}
		kids[i] = kid
		if ms != nil {
			kidMeters = append(kidMeters, meters[k])
		}
	}
	var op vec.Operator
	switch n.Kind {
	case opSeqScan:
		op = &vec.Scan{Ctx: e.Ctx, File: n.Table.File, Pred: n.Filter}
	case opFilter:
		op = &vec.Filter{Ctx: e.Ctx, Child: kids[0], Pred: n.Filter}
	case opPrune:
		op = &vec.Prune{Ctx: e.Ctx, Child: kids[0], Cols: n.Cols}
	case opProject:
		op = &vec.Project{Ctx: e.Ctx, Child: kids[0], Exprs: n.Exprs, Names: n.Names}
	case opAggregate:
		a := &vec.Agg{Ctx: e.Ctx, Child: kids[0], GroupBy: n.GroupExprs, Aggs: n.Aggs}
		op = &vec.Project{Ctx: e.Ctx, Child: a, Exprs: n.PostExprs, Names: n.PostNames}
	case opHashJoin:
		op = &vec.HashJoin{
			Ctx: e.Ctx, Build: kids[1], Probe: kids[0],
			BuildKey: []int{n.InnerKey}, ProbeKey: []int{n.OuterKey},
			Residual: n.Filter,
		}
	case opSort:
		op = &vec.Sort{Ctx: e.Ctx, Child: kids[0], Keys: n.SortKeys}
	default:
		return nil, fmt.Errorf("plan: no vectorized implementation for %s", n.Title())
	}
	if ms != nil {
		m := &exec.Meter{Label: n.Title(), Kids: kidMeters}
		meters[n] = m
		op = &vec.Metered{Set: ms, Child: op, M: m}
	}
	return op, nil
}

// Plan optimizes and instantiates a statement in one step (the planning
// entry point used by the server and shell).
func Plan(e *engine.Engine, stmt *sql.SelectStmt) (exec.Operator, error) {
	p, err := Prepare(e, stmt)
	if err != nil {
		return nil, err
	}
	return p.Build()
}

// Run parses, plans and drains a query, returning the result rows and the
// output column names.
func Run(e *engine.Engine, query string) ([]value.Row, []string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	p, err := Prepare(e, stmt)
	if err != nil {
		return nil, nil, err
	}
	op, err := p.Build()
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.Collect(op)
	if err != nil {
		return nil, nil, err
	}
	return rows, op.Schema().Names(), nil
}
