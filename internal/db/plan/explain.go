package plan

import (
	"fmt"
	"strings"

	"energydb/internal/core"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// Title names the operator for EXPLAIN output and meter labels.
func (n *Node) Title() string {
	switch n.Kind {
	case opSeqScan:
		return "SeqScan " + n.TableName
	case opIndexScan:
		return fmt.Sprintf("IndexScan %s (%s)", n.TableName, n.IdxCol)
	case opIndexJoin:
		return fmt.Sprintf("IndexJoin %s (%s = %s)", n.TableName, n.OuterColName, n.InnerColName)
	case opHashJoin:
		return fmt.Sprintf("HashJoin (%s = %s)", n.OuterColName, n.InnerColName)
	case opFilter:
		return "Filter"
	case opPrune:
		return fmt.Sprintf("Prune [%s]", strings.Join(n.schema.Names(), ", "))
	case opProject:
		return fmt.Sprintf("Project [%s]", strings.Join(n.Names, ", "))
	case opAggregate:
		return "HashAggregate"
	case opSort:
		return fmt.Sprintf("Sort [%s]", strings.Join(n.SortNames, ", "))
	case opLimit:
		return fmt.Sprintf("Limit %d", n.LimitN)
	default:
		return "?"
	}
}

// detail renders the node's mode/predicate/bound/key annotations.
func (n *Node) detail() string {
	var parts []string
	if vecEligibleKind(n.Kind) {
		parts = append(parts, "mode="+n.Mode.String())
	}
	if n.BoundaryEJ > 0 {
		// The RowSource transition price folded into this chain top's
		// estimate: what the chain pays to hand rows to its row consumer.
		parts = append(parts, "xfer≈"+fmtEnergy(n.BoundaryEJ))
	}
	if n.Kind == opIndexScan {
		lo, hi := "..", ".."
		if n.Lo != nil {
			lo = n.Lo.String()
		}
		if n.Hi != nil {
			hi = n.Hi.String()
		}
		parts = append(parts, fmt.Sprintf("range=[%s, %s]", lo, hi))
	}
	if n.Kind == opAggregate {
		parts = append(parts, fmt.Sprintf("keys=[%s]", strings.Join(n.GroupNames, ", ")))
		names := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			names[i] = a.Name
		}
		parts = append(parts, fmt.Sprintf("aggs=[%s]", strings.Join(names, ", ")))
	}
	if n.FilterStr != "" {
		parts = append(parts, "filter=("+n.FilterStr+")")
	}
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}

// fmtEnergy renders joules with a readable unit.
func fmtEnergy(j float64) string {
	switch {
	case j >= 1:
		return fmt.Sprintf("%.3gJ", j)
	case j >= 1e-3:
		return fmt.Sprintf("%.3gmJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3guJ", j*1e6)
	default:
		return fmt.Sprintf("%.3gnJ", j*1e9)
	}
}

// walkTree renders the node tree with box-drawing connectors; line receives
// each node and its rendered prefix.
func walkTree(root *Node, line func(n *Node, prefix string)) {
	var walk func(n *Node, prefix, childPrefix string)
	walk = func(n *Node, prefix, childPrefix string) {
		line(n, prefix)
		for i, k := range n.Kids {
			if i == len(n.Kids)-1 {
				walk(k, childPrefix+"└─ ", childPrefix+"   ")
			} else {
				walk(k, childPrefix+"├─ ", childPrefix+"│  ")
			}
		}
	}
	walk(root, "", "")
}

// ExplainColumns is the output schema of EXPLAIN results.
var ExplainColumns = []string{"plan"}

// Explain renders the chosen physical plan, one row per operator, with the
// optimizer's cardinality and active-energy predictions.
func (p *Prepared) Explain() ([]value.Row, []string) {
	var rows []value.Row
	walkTree(p.Root, func(n *Node, prefix string) {
		line := fmt.Sprintf("%s%s%s  (rows≈%.0f, E≈%s)",
			prefix, n.Title(), n.detail(), n.EstRows, fmtEnergy(n.EstEJ))
		rows = append(rows, value.Row{value.Str(line)})
	})
	total := fmt.Sprintf("predicted total: E≈%s", fmtEnergy(p.PredictedEJ()))
	rows = append(rows, value.Row{value.Str(total)})
	return rows, ExplainColumns
}

// Summary renders the winning plan as one line — operators in execution
// order, leaves first — for the slow-query log and metric labels, where the
// multi-line EXPLAIN tree would not fit. E.g.
// "SeqScan lineitem → Filter → HashAggregate → Sort [revenue]".
func (p *Prepared) Summary() string {
	var titles []string
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, k := range n.Kids {
			walk(k)
		}
		titles = append(titles, n.Title())
	}
	walk(p.Root)
	return strings.Join(titles, " → ")
}

// PredictedEJ sums the per-operator energy predictions.
func (p *Prepared) PredictedEJ() float64 {
	total := 0.0
	var walk func(n *Node)
	walk = func(n *Node) {
		total += n.EstEJ
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(p.Root)
	return total
}

// ExplainEnergy executes the plan with per-operator metering under the
// profiler and renders the measured attribution: each operator's exclusive
// counters are priced with the calibrated ΔE_m table and scaled so the
// per-operator energies sum exactly to the statement's measured Eactive
// (the counter deltas partition the run, so the scale factor only absorbs
// the E_other residual that Eq. 1 cannot place).
//
// It returns the rendered rows and the statement-level breakdown (for the
// caller's energy ledger).
func (p *Prepared) ExplainEnergy(prof *core.Profiler) ([]value.Row, []string, core.Breakdown, error) {
	op, meters, err := p.BuildMetered()
	if err != nil {
		return nil, nil, core.Breakdown{}, err
	}
	var runErr error
	b := prof.Profile("explain-energy", func() {
		_, runErr = exec.Drain(op)
	})
	if runErr != nil {
		return nil, nil, core.Breakdown{}, runErr
	}

	price := func(c memsim.Counters) float64 {
		return p.E.M.Profile.Energy.Active(c, p.E.M.PState()).Total()
	}
	sum := 0.0
	var each func(n *Node)
	each = func(n *Node) {
		sum += price(meters[n].Own())
		for _, k := range n.Kids {
			each(k)
		}
	}
	each(p.Root)
	scale := 1.0
	if sum > 0 && b.EActive > 0 {
		scale = b.EActive / sum
	}

	var rows []value.Row
	walkTree(p.Root, func(n *Node, prefix string) {
		m := meters[n]
		eJ := price(m.Own()) * scale
		nb := prof.Cal.BreakdownCounters(n.Title(), m.Own(), eJ)
		share := 0.0
		if b.EActive > 0 {
			share = eJ / b.EActive
		}
		line := fmt.Sprintf("%s%s%s  (rows=%d, E=%s %4.1f%%, L1D+Reg2L1D %4.1f%%)",
			prefix, n.Title(), n.detail(), m.Rows(), fmtEnergy(eJ),
			share*100, nb.L1DShare()*100)
		rows = append(rows, value.Row{value.Str(line)})
	})
	stmt := prof.Cal.BreakdownCounters("statement", b.Counters, b.EActive)
	rows = append(rows,
		value.Row{value.Str(fmt.Sprintf("measured total: Eactive=%s, L1D+Reg2L1D %.1f%%",
			fmtEnergy(b.EActive), stmt.L1DShare()*100))},
		value.Row{value.Str(fmt.Sprintf("predicted total: E≈%s (%+.1f%% vs measured)",
			fmtEnergy(p.PredictedEJ()), relErr(p.PredictedEJ(), b.EActive)*100))},
	)
	return rows, ExplainColumns, b, nil
}

// relErr is (predicted - measured) / measured.
func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	return (pred - meas) / meas
}
