package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/sql"
	"energydb/internal/db/value"
)

// rel is one base relation in the logical plan: a stored table, its
// statistics, and the single-table conjuncts pushed down to it.
type rel struct {
	name  string
	t     *engine.Table
	stats *catalog.TableStats
	join  *sql.JoinClause // nil for the FROM relation
	conds []sql.Node      // single-table conjuncts on this relation

	// Resolved after join ordering (join relations only).
	outerCol, innerCol string

	// sel is the estimated fraction of rows passing conds.
	sel float64
	// estRows = RowCount × sel.
	estRows float64
}

// residual is a conjunct spanning several relations, applied at the earliest
// join position where all its columns are available.
type residual struct {
	cond sql.Node
	pos  int // index into logical.rels of the join that makes it evaluable
}

// logical is the rewritten query: relations in execution order with pushed
// predicates, plus the cross-relation residuals.
type logical struct {
	rels      []*rel
	residuals []residual
	// unplaced conjuncts reference columns in no relation; they are compiled
	// against the full join schema so the usual resolution error surfaces.
	unplaced []sql.Node
}

// defaultSel is the selectivity assumed when a predicate cannot be estimated
// from the sample (for example, it fails to compile until later).
const defaultSel = 1.0 / 3

// residualSel is the assumed selectivity of a cross-relation conjunct.
const residualSel = 0.3

// selectivity estimates the fraction of t's rows passing the conjunction of
// conds. Conjuncts comparing an ordered column against literals are priced
// analytically from the column's bounds (a 128-row sample cannot resolve a
// 1% date range); the rest are evaluated over the statistics sample, and the
// two estimates multiply under the usual independence assumption.
func selectivity(stats *catalog.TableStats, schema *catalog.Schema, conds []sql.Node) float64 {
	sel := 1.0
	var rest []sql.Node
	for _, c := range conds {
		if s, ok := analyticSel(stats, schema, c); ok {
			sel *= s
			continue
		}
		rest = append(rest, c)
	}
	pred := andChain(rest)
	if pred == nil {
		return sel
	}
	ex, err := compile(pred, schema)
	if err != nil {
		return sel * defaultSel
	}
	return sel * stats.Selectivity(func(r value.Row) bool { return exec.Truthy(ex.Eval(r)) }, defaultSel)
}

// analyticSel prices one conjunct from column statistics under a uniform
// value distribution: equality through the distinct count, ranges through the
// [Min, Max] span (discretized by the distinct count, so inclusive bounds on
// coarse domains cover their boundary bucket). Returns ok=false for shapes it
// cannot price — those fall back to the sample.
func analyticSel(stats *catalog.TableStats, schema *catalog.Schema, cond sql.Node) (float64, bool) {
	if stats == nil {
		return 0, false
	}
	colStats := func(name string) (min, max, step, distinct float64, ok bool) {
		idx, err := schema.ColIndex(name)
		if err != nil || idx >= len(stats.Cols) {
			return
		}
		cs := stats.Cols[idx]
		if cs.Min.T == value.TypeStr || cs.Max.T == value.TypeStr ||
			cs.Min.IsNull() || cs.Max.IsNull() {
			return
		}
		min, max = cs.Min.AsFloat(), cs.Max.AsFloat()
		distinct = float64(cs.Distinct)
		if distinct < 1 {
			distinct = 1
		}
		if distinct > 1 {
			step = (max - min) / (distinct - 1)
		} else {
			step = max - min
		}
		if max <= min {
			return 0, 0, 0, 0, false
		}
		return min, max, step, distinct, true
	}
	clamp := func(f float64) float64 {
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	switch v := cond.(type) {
	case sql.BetweenNode:
		c, okC := v.E.(sql.ColNode)
		loV, okL := litValue(v.Lo)
		hiV, okH := litValue(v.Hi)
		if !okC || !okL || !okH || loV.T == value.TypeStr || hiV.T == value.TypeStr {
			return 0, false
		}
		min, max, step, _, ok := colStats(c.Name)
		if !ok {
			return 0, false
		}
		lo := math.Max(loV.AsFloat(), min)
		hi := math.Min(hiV.AsFloat(), max)
		if hi < lo {
			return 0, true
		}
		return clamp((hi - lo + step) / (max - min + step)), true
	case sql.BinNode:
		op := v.Op
		c, okC := v.L.(sql.ColNode)
		lit, okV := litValue(v.R)
		if !okC || !okV {
			if c2, ok := v.R.(sql.ColNode); ok {
				if lit2, ok2 := litValue(v.L); ok2 {
					c, lit, okC, okV = c2, lit2, true, true
					switch op {
					case "<":
						op = ">"
					case "<=":
						op = ">="
					case ">":
						op = "<"
					case ">=":
						op = "<="
					}
				}
			}
		}
		if !okC || !okV || lit.T == value.TypeStr {
			return 0, false
		}
		min, max, step, distinct, ok := colStats(c.Name)
		if !ok {
			return 0, false
		}
		span := max - min + step
		l := lit.AsFloat()
		switch op {
		case "=":
			return 1 / distinct, true
		case "<>":
			return 1 - 1/distinct, true
		case "<":
			return clamp((l - min) / span), true
		case "<=":
			return clamp((l - min + step) / span), true
		case ">":
			return clamp((max - l) / span), true
		case ">=":
			return clamp((max - l + step) / span), true
		}
	}
	return 0, false
}

// distinctOf returns the distinct count of a column, clamped to [1, rows].
func distinctOf(stats *catalog.TableStats, schema *catalog.Schema, col string) float64 {
	idx, err := schema.ColIndex(col)
	if err != nil || idx >= len(stats.Cols) {
		return math1(float64(stats.RowCount))
	}
	d := float64(stats.Cols[idx].Distinct)
	if d < 1 {
		d = 1
	}
	if r := float64(stats.RowCount); d > r && r >= 1 {
		d = r
	}
	return d
}

func math1(f float64) float64 {
	if f < 1 {
		return 1
	}
	return f
}

// buildLogical rewrites the statement into relations with pushed-down
// predicates and a statistics-driven join order. Single-relation conjuncts
// are pushed through the join chain to their base relation — including the
// FROM relation when joins are present (the old planner only pushed the
// WHERE clause on join-free statements).
func buildLogical(e *engine.Engine, stmt *sql.SelectStmt) (*logical, error) {
	base, err := e.Table(stmt.From)
	if err != nil {
		return nil, err
	}
	pool := make([]*rel, 0, len(stmt.Joins))
	all := []*rel{{name: stmt.From, t: base, stats: e.Stats(base)}}
	for i := range stmt.Joins {
		j := &stmt.Joins[i]
		t, err := e.Table(j.Table)
		if err != nil {
			return nil, err
		}
		r := &rel{name: j.Table, t: t, stats: e.Stats(t), join: j}
		pool = append(pool, r)
		all = append(all, r)
	}

	lp := &logical{}

	// Classify WHERE conjuncts: a conjunct whose columns all live in one
	// relation is pushed to that relation's scan; conjuncts spanning
	// relations become join residuals.
	var multi []sql.Node
	for _, cond := range splitConjuncts(stmt.Where) {
		refs := map[string]bool{}
		colRefs(cond, refs)
		var owner *rel
		ok := true
		for col := range refs {
			var found *rel
			for _, r := range all {
				if _, err := r.t.Schema().ColIndex(col); err == nil {
					found = r
					break
				}
			}
			if found == nil {
				ok = false
				break
			}
			if owner == nil {
				owner = found
			} else if owner != found {
				owner = nil
				break
			}
		}
		switch {
		case !ok:
			lp.unplaced = append(lp.unplaced, cond)
		case owner != nil && len(refs) > 0:
			owner.conds = append(owner.conds, cond)
		default:
			multi = append(multi, cond)
		}
	}

	for _, r := range all {
		r.sel = selectivity(r.stats, r.t.Schema(), r.conds)
		r.estRows = float64(r.stats.RowCount) * r.sel
	}

	// Greedy join ordering: keep the FROM relation leftmost (it fixes the
	// output column layout's head), then repeatedly take the eligible join
	// with the smallest estimated output cardinality. A join is eligible
	// when one ON side resolves in the accumulated outer schema and the
	// other in the joined table.
	lp.rels = []*rel{all[0]}
	avail := map[string]bool{}
	for _, c := range all[0].t.Schema().Columns {
		avail[c.Name] = true
	}
	card := all[0].estRows
	for len(pool) > 0 {
		bestIdx := -1
		var bestCard float64
		var bestOuter, bestInner string
		for i, r := range pool {
			outerCol, innerCol, ok := orient(r.join, avail, r.t.Schema())
			if !ok {
				continue
			}
			matches := r.estRows / distinctOf(r.stats, r.t.Schema(), innerCol)
			out := card * matches
			if bestIdx < 0 || out < bestCard {
				bestIdx, bestCard = i, out
				bestOuter, bestInner = outerCol, innerCol
			}
		}
		if bestIdx < 0 {
			return nil, orientError(pool[0].join, avail, pool[0].t.Schema())
		}
		r := pool[bestIdx]
		pool = append(pool[:bestIdx], pool[bestIdx+1:]...)
		r.outerCol, r.innerCol = bestOuter, bestInner
		lp.rels = append(lp.rels, r)
		card = bestCard
		for _, c := range r.t.Schema().Columns {
			avail[c.Name] = true
		}
	}

	// Residuals attach to the earliest join position where every referenced
	// column is available.
	for _, cond := range multi {
		refs := map[string]bool{}
		colRefs(cond, refs)
		pos := -1
		have := map[string]bool{}
		for i, r := range lp.rels {
			for _, c := range r.t.Schema().Columns {
				have[c.Name] = true
			}
			all := true
			for col := range refs {
				if !have[col] {
					all = false
					break
				}
			}
			if all {
				pos = i
				break
			}
		}
		if pos < 1 {
			// Spanning conjunct that somehow resolves nowhere past the
			// base: let full-schema compilation report it.
			lp.unplaced = append(lp.unplaced, cond)
			continue
		}
		lp.residuals = append(lp.residuals, residual{cond: cond, pos: pos})
	}
	return lp, nil
}

// sampleProbeCap bounds the number of index probes one join estimate spends.
const sampleProbeCap = 48

// sampleJoinEstimate measures a join's fan-out and predicate selectivity
// empirically: it probes the inner index with sample rows of the relation
// owning the outer key (filtered by that relation's own pushed conjuncts, so
// cross-table correlations like "orders before D join lineitems shipped
// after D" survive) and evaluates the join's pushed-inner and residual
// conjuncts on the real matched pairs. Conjuncts referencing other relations
// keep the default residual selectivity. Returns ok=false when there is no
// usable index, sample, or match — callers then fall back to the
// distinct-count estimate.
func (pc *planCtx) sampleJoinEstimate(r *rel, resConds []sql.Node) (fan, condSel float64, ok bool) {
	tree := r.t.Index(r.innerCol)
	if tree == nil {
		return 0, 0, false
	}
	var owner *rel
	for _, o := range pc.lp.rels {
		if o == r {
			break
		}
		if _, err := o.t.Schema().ColIndex(r.outerCol); err == nil {
			owner = o
			break
		}
	}
	if owner == nil || owner.stats == nil || len(owner.stats.Sample) == 0 {
		return 0, 0, false
	}
	keyIdx, err := owner.t.Schema().ColIndex(r.outerCol)
	if err != nil {
		return 0, 0, false
	}
	// Partition the join's conjuncts: those resolvable over owner ++ inner
	// are evaluated on sampled pairs; the rest keep the default.
	joint := owner.t.Schema().Concat(r.t.Schema())
	defaultMul := 1.0
	var evalConds []sql.Node
	for _, c := range append(append([]sql.Node{}, r.conds...), resConds...) {
		refs := map[string]bool{}
		colRefs(c, refs)
		resolvable := true
		for col := range refs {
			if _, err := joint.ColIndex(col); err != nil {
				resolvable = false
				break
			}
		}
		if resolvable {
			evalConds = append(evalConds, c)
		} else {
			defaultMul *= pc.residualSelOf(c)
		}
	}
	pred, err := compileConds(evalConds, joint)
	if err != nil {
		return 0, 0, false
	}
	ownPred, err := compileConds(owner.conds, owner.t.Schema())
	if err != nil {
		ownPred = nil
	}
	probes, matches, passed := 0, 0, 0
	var out value.Row
	for _, s := range owner.stats.Sample {
		if ownPred != nil && !exec.Truthy(ownPred.Eval(s)) {
			continue
		}
		probes++
		for _, id := range tree.Lookup(s[keyIdx]) {
			matches++
			if pred == nil {
				passed++
				continue
			}
			inner, visible, err := r.t.File.ReadRow(id, false)
			if err != nil || !visible {
				continue
			}
			out = append(append(out[:0], s...), inner...)
			if exec.Truthy(pred.Eval(out)) {
				passed++
			}
		}
		if probes >= sampleProbeCap {
			break
		}
	}
	if probes == 0 || matches == 0 {
		return 0, 0, false
	}
	fan = float64(matches) / float64(probes)
	condSel = float64(passed) / float64(matches)
	// A zero pass count does not prove emptiness; keep downstream work visible.
	if min := 0.5 / float64(matches); condSel < min {
		condSel = min
	}
	return fan, condSel * defaultMul, true
}

// residualSelOf prices one cross-relation conjunct: a plain column=column
// equijoin residual follows the System-R rule 1/max(distinct) — the paper's
// Q5-style "local supplier" condition (c_nationkey = s_nationkey) passes one
// nation pair in 25, not the 0.3 default, and every operator above it prices
// its energy on the resulting cardinality. Other shapes keep the default.
func (pc *planCtx) residualSelOf(cond sql.Node) float64 {
	b, ok := cond.(sql.BinNode)
	if !ok || b.Op != "=" {
		return residualSel
	}
	lc, okL := b.L.(sql.ColNode)
	rc, okR := b.R.(sql.ColNode)
	if !okL || !okR {
		return residualSel
	}
	d := 1.0
	for _, name := range []string{lc.Name, rc.Name} {
		for _, r := range pc.lp.rels {
			if _, err := r.t.Schema().ColIndex(name); err == nil {
				if dd := distinctOf(r.stats, r.t.Schema(), name); dd > d {
					d = dd
				}
				break
			}
		}
	}
	return 1 / d
}

// orient resolves which ON side belongs to the accumulated outer relation
// and which to the joined table.
func orient(j *sql.JoinClause, avail map[string]bool, inner *catalog.Schema) (outerCol, innerCol string, ok bool) {
	inInner := func(col string) bool { _, err := inner.ColIndex(col); return err == nil }
	if avail[j.LeftCol] && inInner(j.RightCol) {
		return j.LeftCol, j.RightCol, true
	}
	if avail[j.RightCol] && inInner(j.LeftCol) {
		return j.RightCol, j.LeftCol, true
	}
	return "", "", false
}

// orientError explains an unresolvable join, naming where each ON column was
// (and was not) found and listing both schemas, so a typo on either side is
// diagnosable from the message alone.
func orientError(j *sql.JoinClause, avail map[string]bool, inner *catalog.Schema) error {
	where := func(col string) string {
		inOuter := avail[col]
		_, err := inner.ColIndex(col)
		inInner := err == nil
		switch {
		case inOuter && inInner:
			return "in both sides"
		case inOuter:
			return "only in the outer relation"
		case inInner:
			return fmt.Sprintf("only in table %q", j.Table)
		default:
			return "in neither side"
		}
	}
	outerCols := make([]string, 0, len(avail))
	for c := range avail {
		outerCols = append(outerCols, c)
	}
	sort.Strings(outerCols)
	return fmt.Errorf(
		"plan: cannot resolve JOIN %s ON %s = %s: need one column on each side, but %q is %s and %q is %s; outer relation columns: [%s]; table %q columns: [%s]",
		j.Table, j.LeftCol, j.RightCol,
		j.LeftCol, where(j.LeftCol), j.RightCol, where(j.RightCol),
		strings.Join(outerCols, " "), j.Table, strings.Join(inner.Names(), " "))
}
