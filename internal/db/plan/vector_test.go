package plan

import (
	"reflect"
	"strings"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/sql"
	"energydb/internal/db/value"
)

// vecTestEngine builds an engine with one `facts` table of the given size.
func vecTestEngine(t *testing.T, rows int) *engine.Engine {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	facts := e.CreateTable("facts", catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "amount", Type: value.TypeFloat},
	))
	for i := 0; i < rows; i++ {
		e.Insert(facts, value.Row{
			value.Int(int64(i)),
			value.Int(int64(i % 5)),
			value.Float(float64(i%89) / 3),
		})
	}
	return e
}

// findNode returns the first node of the kind in preorder.
func findNode(n *Node, k opKind) *Node {
	if n.Kind == k {
		return n
	}
	for _, kid := range n.Kids {
		if f := findNode(kid, k); f != nil {
			return f
		}
	}
	return nil
}

func prepare(t *testing.T, e *engine.Engine, query string) *Prepared {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(e, stmt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestVectorModeChoice checks the optimizer's row-versus-vector decision: a
// full-table filter+aggregate over many rows goes vector (the per-batch
// dispatch amortizes), while the same query over a handful of rows falls
// back to row mode — the ISSUE's tiny-cardinality regression.
func TestVectorModeChoice(t *testing.T) {
	const query = "SELECT grp, SUM(amount) FROM facts WHERE amount > 1 GROUP BY grp"

	big := prepare(t, vecTestEngine(t, 5000), query)
	scan := findNode(big.Root, opSeqScan)
	agg := findNode(big.Root, opAggregate)
	if scan == nil || agg == nil {
		t.Fatalf("plan shape: %s", big.Summary())
	}
	if scan.Mode != ModeVector {
		t.Errorf("5000-row scan chose %v, want vector", scan.Mode)
	}
	if agg.Mode != ModeVector {
		t.Errorf("5000-row aggregate chose %v, want vector", agg.Mode)
	}

	tiny := prepare(t, vecTestEngine(t, 3), query)
	if scan := findNode(tiny.Root, opSeqScan); scan == nil || scan.Mode != ModeRow {
		t.Errorf("3-row scan must stay on the row path, got %v", scan.Mode)
	}
}

// TestDisableVectorExecKnob checks the X7 escape hatch: with the knob set,
// every operator stays in row mode regardless of cardinality.
func TestDisableVectorExecKnob(t *testing.T) {
	e := vecTestEngine(t, 5000)
	e.Knobs.DisableVectorExec = true
	p := prepare(t, e, "SELECT grp, SUM(amount) FROM facts GROUP BY grp")
	var assertRow func(n *Node)
	assertRow = func(n *Node) {
		if n.Mode != ModeRow {
			t.Errorf("%s chose %v with DisableVectorExec", n.Title(), n.Mode)
		}
		for _, k := range n.Kids {
			assertRow(k)
		}
	}
	assertRow(p.Root)
}

// TestVectorPlanMatchesRowPlan runs the same statement through the vector
// plan and the forced-row plan and requires identical result sets.
func TestVectorPlanMatchesRowPlan(t *testing.T) {
	const query = `SELECT grp, COUNT(*) AS n, SUM(amount) AS total
		FROM facts WHERE id < 4000 AND amount > 2 GROUP BY grp ORDER BY grp`

	ev := vecTestEngine(t, 5000)
	got, _, err := Run(ev, query)
	if err != nil {
		t.Fatal(err)
	}
	if p := prepare(t, ev, query); findNode(p.Root, opSeqScan).Mode != ModeVector {
		t.Fatalf("test premise: plan did not choose vector mode:\n%s", p.Summary())
	}

	er := vecTestEngine(t, 5000)
	er.Knobs.DisableVectorExec = true
	want, _, err := Run(er, query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("vector plan result differs from row plan:\n got %v\nwant %v", got, want)
	}
}

// joinVecEngine builds a PostgreSQL-profile engine with an unindexed
// dim/facts pair, so the optimizer's join choice is a hash join and the
// row-versus-vector decision is exercised on it (the SQLite profile prefers
// index joins whenever an index exists).
func joinVecEngine(t *testing.T, dimRows, factRows int) *engine.Engine {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.PostgreSQL, m, engine.SettingBaseline)
	dim := e.CreateTable("dim", catalog.NewSchema(
		catalog.Column{Name: "did", Type: value.TypeInt},
		catalog.Column{Name: "label", Type: value.TypeStr, Width: 8},
	))
	for i := 0; i < dimRows; i++ {
		e.Insert(dim, value.Row{value.Int(int64(i)), value.Str([]string{"a", "b", "c"}[i%3])})
	}
	facts := e.CreateTable("facts", catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "amount", Type: value.TypeFloat},
	))
	for i := 0; i < factRows; i++ {
		e.Insert(facts, value.Row{
			value.Int(int64(i)),
			value.Int(int64(i % dimRows)),
			value.Float(float64(i%89) / 3),
		})
	}
	return e
}

const joinQuery = "SELECT id, label FROM facts JOIN dim ON grp = did ORDER BY amount DESC"

// TestJoinSortModeChoice checks the extended crossover model: with both join
// inputs large the hash join and the sort above it go vector, while a build
// side smaller than one batch keeps its scan — and therefore the join — on
// the row path (the ISSUE's tiny-cardinality join regression).
func TestJoinSortModeChoice(t *testing.T) {
	p := prepare(t, joinVecEngine(t, 4000, 6000), joinQuery)
	join := findNode(p.Root, opHashJoin)
	srt := findNode(p.Root, opSort)
	if join == nil || srt == nil {
		t.Fatalf("plan shape:\n%s", p.Summary())
	}
	if join.Mode != ModeVector {
		t.Errorf("big hash join chose %v, want vector:\n%s", join.Mode, p.Summary())
	}
	if srt.Mode != ModeVector {
		t.Errorf("big sort chose %v, want vector:\n%s", srt.Mode, p.Summary())
	}

	tiny := prepare(t, joinVecEngine(t, 8, 6000), joinQuery)
	tj := findNode(tiny.Root, opHashJoin)
	if tj == nil {
		t.Fatalf("tiny plan shape:\n%s", tiny.Summary())
	}
	if tj.Mode != ModeRow {
		t.Errorf("8-row-build hash join chose %v, want row fallback:\n%s", tj.Mode, tiny.Summary())
	}
}

// TestVectorJoinPlanMatchesRowPlan runs the join+sort statement through the
// vector plan and the forced-row plan and requires identical result sets.
func TestVectorJoinPlanMatchesRowPlan(t *testing.T) {
	ev := joinVecEngine(t, 4000, 6000)
	got, _, err := Run(ev, joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if p := prepare(t, ev, joinQuery); findNode(p.Root, opHashJoin).Mode != ModeVector {
		t.Fatalf("test premise: plan did not choose a vector join:\n%s", p.Summary())
	}

	er := joinVecEngine(t, 4000, 6000)
	er.Knobs.DisableVectorExec = true
	want, _, err := Run(er, joinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("vector join plan differs from row plan: %d vs %d rows", len(got), len(want))
	}
}

// TestExplainShowsJoinSortMode checks the EXPLAIN mode annotation lands on
// the join and sort nodes themselves.
func TestExplainShowsJoinSortMode(t *testing.T) {
	e := joinVecEngine(t, 4000, 6000)
	for _, line := range explainLines(t, e, joinQuery) {
		if strings.Contains(line, "HashJoin") && !strings.Contains(line, "mode=vector") {
			t.Errorf("join line missing mode=vector: %s", line)
		}
		if strings.Contains(line, "Sort") && !strings.Contains(line, "mode=vector") {
			t.Errorf("sort line missing mode=vector: %s", line)
		}
	}
}

// TestExplainShowsMode checks the EXPLAIN annotation on both paths.
func TestExplainShowsMode(t *testing.T) {
	e := vecTestEngine(t, 5000)
	lines := explainLines(t, e, "SELECT grp, SUM(amount) FROM facts GROUP BY grp")
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "mode=vector") {
		t.Errorf("big-table EXPLAIN missing mode=vector:\n%s", joined)
	}

	e2 := vecTestEngine(t, 3)
	joined2 := strings.Join(explainLines(t, e2,
		"SELECT grp, SUM(amount) FROM facts WHERE amount > 1 GROUP BY grp"), "\n")
	if !strings.Contains(joined2, "mode=row") {
		t.Errorf("tiny-table EXPLAIN missing mode=row:\n%s", joined2)
	}
}

// TestChainModePricing is the table-driven contract of the chain-wise mode
// chooser: operators sandwiched inside a profitable vector chain stay in the
// chain (a node-local row win would silently force two un-priced boundary
// crossings), a chain consumed by a row parent carries its transition price
// exactly at the chain top, and when the transition-priced chain genuinely
// loses — a selective filter leaving a handful of rows above a big scan —
// the operators above the scan drop to row mode while the scan keeps its
// priced boundary. Every chosen plan must also beat (or match) the all-row
// alternative, since the DP explicitly prices that hypothesis.
func TestChainModePricing(t *testing.T) {
	cases := []struct {
		name  string
		rows  int
		query string
		want  map[opKind]Mode
		// boundaryOn is the node kind expected to carry the chain top's
		// transition price (xfer≈ in EXPLAIN).
		boundaryOn opKind
	}{
		{
			name:  "mid-chain sort stays vector inside a committed chain",
			rows:  5000,
			query: "SELECT id, amount FROM facts WHERE amount > 1 ORDER BY amount DESC",
			want: map[opKind]Mode{
				opProject: ModeVector, opSort: ModeVector, opSeqScan: ModeVector,
			},
			boundaryOn: opProject,
		},
		{
			name:  "mid-chain projected expression stays vector",
			rows:  5000,
			query: "SELECT id + 1 AS x FROM facts WHERE amount > 1 ORDER BY x",
			want: map[opKind]Mode{
				opProject: ModeVector, opSort: ModeVector, opSeqScan: ModeVector,
			},
			boundaryOn: opProject,
		},
		{
			name:  "aggregate chain top absorbs the boundary under a row sort",
			rows:  5000,
			query: "SELECT grp, COUNT(*) AS n FROM facts GROUP BY grp ORDER BY grp",
			want: map[opKind]Mode{
				opSort: ModeRow, opAggregate: ModeVector, opSeqScan: ModeVector,
			},
			boundaryOn: opAggregate,
		},
		{
			name:  "selective chain drops to row above the scan, scan keeps its priced boundary",
			rows:  5000,
			query: "SELECT id FROM facts WHERE id < 40 ORDER BY amount",
			want: map[opKind]Mode{
				opProject: ModeRow, opSort: ModeRow, opSeqScan: ModeVector,
			},
			boundaryOn: opSeqScan,
		},
		{
			name:  "tiny table stays all-row (no chain worth a boundary)",
			rows:  3,
			query: "SELECT grp, SUM(amount) AS s FROM facts WHERE amount > 1 GROUP BY grp",
			want: map[opKind]Mode{
				opAggregate: ModeRow, opSeqScan: ModeRow,
			},
			boundaryOn: opKind(-1),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := prepare(t, vecTestEngine(t, tc.rows), tc.query)
			checkChainConsistency(t, tc.query, p.Root, false)
			for kind, want := range tc.want {
				n := findNode(p.Root, kind)
				if n == nil {
					t.Fatalf("plan has no %v node: %s", kind, p.Summary())
				}
				if n.Mode != want {
					t.Errorf("%s chose %v, want %v\n%s", n.Title(), n.Mode, want, p.Summary())
				}
			}
			var walk func(n *Node)
			walk = func(n *Node) {
				if n.Kind == tc.boundaryOn && !(n.BoundaryEJ > 0) {
					t.Errorf("%s should carry the chain's transition price", n.Title())
				}
				if n.Kind != tc.boundaryOn && n.BoundaryEJ != 0 {
					t.Errorf("%s carries an unexpected transition price %g", n.Title(), n.BoundaryEJ)
				}
				for _, k := range n.Kids {
					walk(k)
				}
			}
			walk(p.Root)

			// The committed plan must not lose to the all-row hypothesis the
			// DP priced against it.
			er := vecTestEngine(t, tc.rows)
			er.Knobs.DisableVectorExec = true
			allRow := prepare(t, er, tc.query)
			if p.PredictedEJ() > allRow.PredictedEJ()*(1+1e-9) {
				t.Errorf("chosen plan predicts %g J, all-row predicts %g J — chooser left energy on the table",
					p.PredictedEJ(), allRow.PredictedEJ())
			}
		})
	}
}
