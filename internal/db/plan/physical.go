package plan

import (
	"fmt"
	"math"
	"strings"

	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/sql"
	"energydb/internal/db/value"
)

// opKind enumerates the physical operators a plan node can choose.
type opKind int

const (
	opSeqScan opKind = iota
	opIndexScan
	opIndexJoin
	opHashJoin
	opFilter
	opPrune
	opProject
	opAggregate
	opSort
	opLimit
)

// Mode selects the executor implementation of a plan node: the classic
// row-at-a-time interpreter or the vectorized batch-at-a-time engine
// (internal/db/vec). The optimizer picks per operator by predicted active
// energy; vectorized nodes can only stack on vectorized children, so a plan
// is a row tree with vector chains rooted at sequential scans.
type Mode int

const (
	ModeRow Mode = iota
	ModeVector
)

// String renders the mode as it appears in EXPLAIN output.
func (m Mode) String() string {
	if m == ModeVector {
		return "vector"
	}
	return "row"
}

// Node is one operator of a chosen physical plan. Every decision the
// optimizer makes — scan method, index bounds, join strategy and order,
// pruned columns, row-versus-vector execution mode — is recorded in the
// node, so Build re-instantiates exactly the same executor tree every time
// (re-planning could flip choices as buffer-pool residency shifts; a
// Prepared plan must not).
type Node struct {
	Kind opKind
	Mode Mode
	Kids []*Node

	// Scans and the index-join inner side.
	Table     *engine.Table
	TableName string
	// Filter is the pushed scan filter, join residual or filter predicate.
	Filter    exec.Expr
	FilterStr string
	// IdxCol with Lo/Hi bound an index range scan ([nil, nil] is full).
	IdxCol string
	Lo, Hi *value.Value

	// Joins: OuterKey indexes the probe/outer schema; InnerKey indexes the
	// hash build subtree's schema.
	OuterKey     int
	InnerKey     int
	OuterColName string
	InnerColName string

	// Prune: kept child-column indexes, in output order.
	Cols []int

	// Project.
	Exprs []exec.Expr
	Names []string

	// Aggregate (hash aggregation plus the select-list re-projection).
	GroupExprs  []exec.Expr
	GroupNames  []string
	Aggs        []exec.AggSpec
	aggArgNodes int
	PostExprs   []exec.Expr
	PostNames   []string

	// Sort.
	SortKeys  []exec.SortKey
	SortNames []string

	// Limit.
	LimitN int

	schema *catalog.Schema
	// EstRows is the estimated output cardinality.
	EstRows float64
	// EstEJ is the predicted exclusive active energy of this operator in
	// joules (Eq. 1 micro-op counts priced with the machine's ΔE table).
	EstEJ float64
	// BoundaryEJ is the predicted RowSource adaptation cost folded into
	// EstEJ when this node tops a vector chain under a row consumer (zero
	// elsewhere). EXPLAIN surfaces it as xfer≈ so a mode choice that
	// breaks a chain can be audited against the transition it pays for.
	BoundaryEJ float64
}

// Schema returns the node's output schema.
func (n *Node) Schema() *catalog.Schema { return n.schema }

// planCtx carries the state of one planning run.
type planCtx struct {
	e    *engine.Engine
	c    *coster
	stmt *sql.SelectStmt
	lp   *logical
	// star disables column pruning (SELECT * needs every column).
	star bool
	// topRefs are the columns referenced above the join chain.
	topRefs map[string]bool
	// lazy tracks, per vector-mode node whose output batch is lazily
	// backed by raw scan rows, which columns its subtree has already
	// materialized (see chooseModes).
	lazy map[*Node]*lazyBatch
	// prices holds the chain DP's two-state subtree prices (see
	// priceModes/commitModes in vector.go).
	prices map[*Node]modePrice
}

func newPlanCtx(e *engine.Engine, stmt *sql.SelectStmt, lp *logical) *planCtx {
	pc := &planCtx{e: e, c: newCoster(e), stmt: stmt, lp: lp, topRefs: map[string]bool{}}
	for _, it := range stmt.Items {
		if it.Star {
			pc.star = true
			continue
		}
		colRefs(it.Expr, pc.topRefs)
	}
	for _, g := range stmt.GroupBy {
		colRefs(g, pc.topRefs)
	}
	for _, k := range stmt.OrderBy {
		colRefs(k.Expr, pc.topRefs)
	}
	if len(lp.unplaced) > 0 {
		// Unresolvable conjuncts keep the full schema so their compile
		// error mentions the real relation.
		pc.star = true
	}
	return pc
}

// exprNodes sums compiled expression node counts.
func exprNodes(exprs ...exec.Expr) int {
	n := 0
	for _, e := range exprs {
		if e != nil {
			n += e.Nodes()
		}
	}
	return n
}

// renderConds renders an AND chain for display.
func renderConds(conds []sql.Node) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = render(c)
	}
	return strings.Join(parts, " AND ")
}

// chooseScan picks the cheapest access path for one relation: a sequential
// scan with the pushed predicate, or — when a usable index bound exists — an
// index range scan with the remaining conjuncts as residual. The choice is
// by predicted active energy, not row count.
func (pc *planCtx) chooseScan(r *rel) (*Node, error) {
	pred, err := compileConds(r.conds, r.t.Schema())
	if err != nil {
		return nil, err
	}
	seq := &Node{
		Kind: opSeqScan, Table: r.t, TableName: r.name,
		Filter: pred, FilterStr: renderConds(r.conds),
		schema:  r.t.Schema(),
		EstRows: r.estRows,
	}
	pc.costSeqScan(seq)
	best := seq

	for col := range r.t.Indexes {
		lo, hi, captured, rest := extractBounds(col, r.conds)
		if lo == nil && hi == nil {
			continue
		}
		resid, err := compileConds(rest, r.t.Schema())
		if err != nil {
			return nil, err
		}
		rangeSel := selectivity(r.stats, r.t.Schema(), captured)
		cand := &Node{
			Kind: opIndexScan, Table: r.t, TableName: r.name,
			IdxCol: col, Lo: lo, Hi: hi,
			Filter: resid, FilterStr: renderConds(rest),
			schema:  r.t.Schema(),
			EstRows: r.estRows,
		}
		pc.costIndexScan(cand, float64(r.stats.RowCount)*rangeSel)
		if cand.EstEJ < best.EstEJ {
			best = cand
		}
	}
	return best, nil
}

func compileConds(conds []sql.Node, schema *catalog.Schema) (exec.Expr, error) {
	pred := andChain(conds)
	if pred == nil {
		return nil, nil
	}
	return compile(pred, schema)
}

// litValue lowers an AST literal to a datum (date-aware), or fails.
func litValue(n sql.Node) (value.Value, bool) {
	switch v := n.(type) {
	case sql.NumNode:
		if v.Value == float64(int64(v.Value)) {
			return value.Int(int64(v.Value)), true
		}
		return value.Float(v.Value), true
	case sql.StrNode:
		return literal(v.Value), true
	}
	return value.Value{}, false
}

// extractBounds derives index range bounds on col from single-table
// conjuncts. Conjuncts fully captured by the inclusive [lo, hi] range are
// dropped from the residual; strict comparisons tighten the bound but stay
// residual (the index range is inclusive).
func extractBounds(col string, conds []sql.Node) (lo, hi *value.Value, captured, rest []sql.Node) {
	setLo := func(v value.Value) {
		if lo == nil || value.Compare(v, *lo) > 0 {
			lo = &v
		}
	}
	setHi := func(v value.Value) {
		if hi == nil || value.Compare(v, *hi) < 0 {
			hi = &v
		}
	}
	for _, cond := range conds {
		full := false // fully captured by the inclusive range?
		switch v := cond.(type) {
		case sql.BetweenNode:
			c, ok := v.E.(sql.ColNode)
			loV, okL := litValue(v.Lo)
			hiV, okH := litValue(v.Hi)
			if ok && c.Name == col && okL && okH {
				setLo(loV)
				setHi(hiV)
				full = true
			}
		case sql.BinNode:
			op := v.Op
			c, okC := v.L.(sql.ColNode)
			lit, okV := litValue(v.R)
			if !okC || !okV {
				// literal OP col — mirror the operator.
				if c2, ok := v.R.(sql.ColNode); ok {
					if lit2, ok2 := litValue(v.L); ok2 {
						c, lit, okC, okV = c2, lit2, true, true
						switch op {
						case "<":
							op = ">"
						case "<=":
							op = ">="
						case ">":
							op = "<"
						case ">=":
							op = "<="
						}
					}
				}
			}
			if okC && okV && c.Name == col {
				switch op {
				case "=":
					setLo(lit)
					setHi(lit)
					full = true
				case "<=":
					setHi(lit)
					full = true
				case ">=":
					setLo(lit)
					full = true
				case "<":
					setHi(lit) // overshoots the boundary entry; keep residual
				case ">":
					setLo(lit)
				}
			}
		}
		if full {
			captured = append(captured, cond)
		} else {
			rest = append(rest, cond)
		}
	}
	// Strict bounds still narrow the range estimate.
	for _, cond := range rest {
		if b, ok := cond.(sql.BinNode); ok {
			if c, ok := b.L.(sql.ColNode); ok && c.Name == col {
				if _, okV := litValue(b.R); okV && (b.Op == "<" || b.Op == ">") {
					captured = append(captured, cond)
				}
			}
		}
	}
	return lo, hi, captured, rest
}

// chooseJoin joins the chain to relation r. SQLite's profile only has the
// index nested loop; PostgreSQL and MySQL compare the predicted energy of a
// hash join (build on the filtered inner scan) against the index nested
// loop and take the cheaper — replacing the old fixed row-count threshold.
func (pc *planCtx) chooseJoin(outer *Node, r *rel, resConds []sql.Node) (*Node, error) {
	outerKey, err := outer.schema.ColIndex(r.outerCol)
	if err != nil {
		return nil, err
	}
	// Cardinality: prefer the empirical probe-sample estimate (it sees
	// cross-table correlations and data skew the per-column statistics
	// cannot); fall back to the distinct-count model without an index or
	// sample.
	fan, condSel, sampled := pc.sampleJoinEstimate(r, resConds)
	var matches, preMatches float64
	if sampled {
		preMatches = outer.EstRows * fan
		matches = preMatches * condSel
	} else {
		d := distinctOf(r.stats, r.t.Schema(), r.innerCol)
		preMatches = outer.EstRows * float64(r.stats.RowCount) / d
		matches = outer.EstRows * r.estRows / d
		for _, rc := range resConds {
			matches *= pc.residualSelOf(rc)
		}
	}
	tree := r.t.Index(r.innerCol)

	var indexNode *Node
	if tree != nil {
		// Index nested loop reads full inner rows, so the pushed inner
		// conjuncts are evaluated per match together with the residuals.
		schema := outer.schema.Concat(r.t.Schema())
		all := append(append([]sql.Node{}, r.conds...), resConds...)
		resid, err := compileConds(all, schema)
		if err != nil {
			return nil, err
		}
		indexNode = &Node{
			Kind: opIndexJoin, Kids: []*Node{outer},
			Table: r.t, TableName: r.name,
			OuterKey: outerKey, OuterColName: r.outerCol, InnerColName: r.innerCol,
			Filter: resid, FilterStr: renderConds(all),
			schema:  schema,
			EstRows: matches,
		}
		pc.costIndexJoin(indexNode, preMatches)
	}
	if pc.e.Kind == engine.SQLite && indexNode != nil {
		return indexNode, nil
	}

	build, err := pc.chooseScan(r)
	if err != nil {
		return nil, err
	}
	innerKey, err := build.schema.ColIndex(r.innerCol)
	if err != nil {
		return nil, err
	}
	schema := outer.schema.Concat(build.schema)
	resid, err := compileConds(resConds, schema)
	if err != nil {
		return nil, err
	}
	hashNode := &Node{
		Kind: opHashJoin, Kids: []*Node{outer, build},
		OuterKey: outerKey, InnerKey: innerKey,
		OuterColName: r.outerCol, InnerColName: r.innerCol,
		Filter: resid, FilterStr: renderConds(resConds),
		schema:  schema,
		EstRows: matches,
	}
	pc.costHashJoin(hashNode)

	if indexNode != nil && indexNode.EstEJ < hashNode.EstEJ+build.EstEJ {
		return indexNode, nil
	}
	return hashNode, nil
}

// node cost estimators ------------------------------------------------------

func (pc *planCtx) costSeqScan(n *Node) {
	var a est
	rows := float64(n.Table.File.RowCount())
	pc.c.scanHeap(&a, n.Table)
	pc.c.tuple(&a, rows)
	pc.c.eval(&a, rows, exprNodes(n.Filter))
	pc.c.emit(&a, n.EstRows, float64(n.schema.RowWidth()))
	n.EstEJ = pc.c.price(a)
}

func (pc *planCtx) costIndexScan(n *Node, entries float64) {
	var a est
	tree := n.Table.Index(n.IdxCol)
	pc.c.btreeDescend(&a, 1, tree.Height(), tree.Order(), tree.Len())
	pc.c.indexEntries(&a, entries, tree.Len())
	pc.c.heapFetch(&a, entries, n.Table)
	pc.c.tuple(&a, entries)
	pc.c.eval(&a, entries, exprNodes(n.Filter))
	pc.c.emit(&a, n.EstRows, float64(n.schema.RowWidth()))
	n.EstEJ = pc.c.price(a)
}

func (pc *planCtx) costIndexJoin(n *Node, preMatches float64) {
	var a est
	outer := n.Kids[0].EstRows
	tree := n.Table.Index(n.InnerColName)
	pc.c.btreeDescend(&a, outer, tree.Height(), tree.Order(), tree.Len())
	pc.c.indexEntries(&a, preMatches, tree.Len())
	pc.c.heapFetch(&a, preMatches, n.Table)
	pc.c.tuple(&a, preMatches)
	pc.c.eval(&a, preMatches, exprNodes(n.Filter))
	pc.c.emit(&a, n.EstRows, float64(len(n.schema.Columns)*8))
	n.EstEJ = pc.c.price(a)
}

func (pc *planCtx) costHashJoin(n *Node) {
	var a est
	buildRows := n.Kids[1].EstRows
	probeRows := n.Kids[0].EstRows
	tableBytes := (buildRows + 1) * 32
	// Build: hash (3 adds), bucket load, entry store per row.
	a.add += 3 * buildRows
	pc.c.randLoad(&a, buildRows, tableBytes)
	a.reg2 += buildRows
	// Probe: hash (2 adds) and bucket load per row.
	a.add += 2 * probeRows
	pc.c.randLoad(&a, probeRows, tableBytes)
	// Matches: entry chase, tuple overhead, residual, output copy.
	pc.c.randLoad(&a, n.EstRows, tableBytes)
	pc.c.tuple(&a, n.EstRows)
	pc.c.eval(&a, n.EstRows, exprNodes(n.Filter))
	pc.c.emit(&a, n.EstRows, float64(len(n.schema.Columns)*8))
	n.EstEJ = pc.c.price(a)
}

func (pc *planCtx) costFilter(n *Node) {
	var a est
	pc.c.eval(&a, n.Kids[0].EstRows, exprNodes(n.Filter))
	n.EstEJ = pc.c.price(a)
}

func (pc *planCtx) costPrune(n *Node) {
	var a est
	rows := n.Kids[0].EstRows
	a.add += rows * float64(len(n.Cols))
	pc.c.emit(&a, rows, float64(n.schema.RowWidth()))
	n.EstEJ = pc.c.price(a)
}

func (pc *planCtx) costProject(n *Node) {
	var a est
	rows := n.Kids[0].EstRows
	pc.c.eval(&a, rows, exprNodes(n.Exprs...))
	pc.c.emit(&a, rows, float64(len(n.Exprs)*8))
	n.EstEJ = pc.c.price(a)
}

// groupTableBytes is the default hash-aggregation table footprint (the
// executor's group cap times its entry size).
const groupTableBytes = 32 << 10

func (pc *planCtx) costAggregate(n *Node) {
	var a est
	in := n.Kids[0].EstRows
	groups := n.EstRows
	pc.c.tuple(&a, in)
	pc.c.eval(&a, in, exprNodes(n.GroupExprs...)+n.aggArgNodes)
	a.add += 2 * in
	pc.c.randLoad(&a, 2*in, groupTableBytes)
	a.add += in * float64(len(n.Aggs))
	a.reg2 += in * float64(len(n.Aggs))
	a.reg2 += groups
	// Group output (16-byte string keys, 8-byte aggregates), then the
	// select-list re-projection.
	pc.c.emit(&a, groups, float64(16*len(n.GroupExprs)+8*len(n.Aggs)))
	pc.c.eval(&a, groups, exprNodes(n.PostExprs...))
	pc.c.emit(&a, groups, float64(len(n.PostExprs)*8))
	n.EstEJ = pc.c.price(a)
}

func (pc *planCtx) costSort(n *Node) {
	var a est
	rows := n.Kids[0].EstRows
	keyNodes := 0
	for _, k := range n.SortKeys {
		keyNodes += k.Expr.Nodes()
	}
	pc.c.eval(&a, rows, keyNodes)
	a.reg2 += 2 * rows // collect and final placement stores
	pc.c.sortCompares(&a, rows, 16, float64(len(n.SortKeys)))
	a.l1d += rows // key-buffer read on emit
	pc.c.emit(&a, rows, float64(n.schema.RowWidth()))
	n.EstEJ = pc.c.price(a)
}

// planFootprint sums the plan's working set: scanned heaps, the touched
// slices of index-fetched heaps, hash-join row buffers and tables, sort
// buffers and aggregation state. It is the set the caches must juggle over
// the whole execution — once it exceeds L3, each scan's stream is evicted
// between touches no matter how small the table is, and the scan estimates
// must price DRAM refills (see coster.footprint).
func (pc *planCtx) planFootprint(n *Node) float64 {
	total := 0.0
	switch n.Kind {
	case opSeqScan:
		total += pc.c.heapBytes(n.Table)
	case opIndexScan:
		// A keyed range touches at most the heap, at least the match set.
		total += math.Min(pc.c.heapBytes(n.Table), n.EstRows*pc.c.heapRowWidth(n.Table))
	case opIndexJoin:
		// Probe keys arrive in outer order, so the inner fetches scatter
		// across the inner heap: each probe drags in the B-tree leaf path
		// plus the heap page around the row, a page-granular touch that
		// saturates at the whole heap once probes outnumber pages. The
		// match-set slice alone badly under-counts the pressure — measured,
		// Q12's 8.0MB lineitem stream refills 17% of its lines from DRAM
		// once its index join into the 1.7MB orders heap runs interleaved,
		// versus 1.6% for the same stream feeding only an aggregate.
		probes := n.Kids[0].EstRows
		total += math.Min(pc.c.heapBytes(n.Table), probes*float64(pc.e.Knobs.PageBytes))
	case opHashJoin:
		build := n.Kids[1]
		total += build.EstRows*float64(build.schema.RowWidth()) + (build.EstRows+1)*32
	case opAggregate:
		total += groupTableBytes
	case opSort:
		total += n.Kids[0].EstRows * (float64(n.Kids[0].schema.RowWidth()) + 16)
	}
	for _, k := range n.Kids {
		total += pc.planFootprint(k)
	}
	return total
}

// recostScans re-prices every sequential scan after the coster learns the
// plan-wide footprint. Access-path and join choices were made with the
// optimistic (footprint-free) estimates — those compare candidates under
// equal cache pressure, which is what a choice needs — but the *absolute*
// numbers EXPLAIN reports and chooseModes prices must reflect the eviction
// the full plan causes.
func (pc *planCtx) recostScans(n *Node) {
	for _, k := range n.Kids {
		pc.recostScans(k)
	}
	if n.Kind == opSeqScan {
		pc.costSeqScan(n)
	}
}

// chain assembly ------------------------------------------------------------

// residualsAt collects the cross-relation conjuncts attached to join i.
func (lp *logical) residualsAt(i int) []sql.Node {
	var out []sql.Node
	for _, r := range lp.residuals {
		if r.pos == i {
			out = append(out, r.cond)
		}
	}
	return out
}

// outerKeep lists the outer-schema columns still needed at join position i:
// everything referenced above the chain, by residuals at or after i, and by
// the ON keys of joins at or after i.
func (pc *planCtx) outerKeep(schema *catalog.Schema, i int) ([]int, bool) {
	if pc.star {
		return nil, false
	}
	need := map[string]bool{}
	for c := range pc.topRefs {
		need[c] = true
	}
	for _, r := range pc.lp.residuals {
		if r.pos >= i {
			colRefs(r.cond, need)
		}
	}
	for j := i; j < len(pc.lp.rels); j++ {
		need[pc.lp.rels[j].outerCol] = true
		need[pc.lp.rels[j].innerCol] = true
	}
	var keep []int
	for idx, c := range schema.Columns {
		if need[c.Name] {
			keep = append(keep, idx)
		}
	}
	if len(keep) == 0 || len(keep) == len(schema.Columns) {
		return nil, false
	}
	return keep, true
}

// maybePrune inserts a column-pruning node over child when the predicted
// energy saved in the parent's per-match output copies exceeds the prune's
// own per-row cost.
func (pc *planCtx) maybePrune(child *Node, keep []int, parentRows float64, parentExtraCols int) *Node {
	fullCols := len(child.schema.Columns)
	linesFull := math.Ceil(float64((fullCols+parentExtraCols)*8) / 64)
	linesKept := math.Ceil(float64((len(keep)+parentExtraCols)*8) / 64)
	var benefit est
	benefit.reg2 = parentRows * (linesFull - linesKept)
	prune := &Node{
		Kind: opPrune, Kids: []*Node{child},
		Cols:    keep,
		schema:  child.schema.Project(keep),
		EstRows: child.EstRows,
	}
	pc.costPrune(prune)
	if prune.EstEJ < pc.c.price(benefit) {
		return prune
	}
	return child
}

// buildChain assembles the scan-join part of the plan, then applies any
// conjuncts that never resolved (surfacing their resolution errors).
func (pc *planCtx) buildChain() (*Node, error) {
	node, err := pc.chooseScan(pc.lp.rels[0])
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(pc.lp.rels); i++ {
		r := pc.lp.rels[i]
		if keep, ok := pc.outerKeep(node.schema, i); ok {
			innerCols := len(r.t.Schema().Columns)
			node = pc.maybePrune(node, keep, node.EstRows, innerCols)
		}
		node, err = pc.chooseJoin(node, r, pc.lp.residualsAt(i))
		if err != nil {
			return nil, err
		}
	}
	if len(pc.lp.unplaced) > 0 {
		pred, err := compileConds(pc.lp.unplaced, node.schema)
		if err != nil {
			return nil, err
		}
		f := &Node{
			Kind: opFilter, Kids: []*Node{node},
			Filter: pred, FilterStr: renderConds(pc.lp.unplaced),
			schema:  node.schema,
			EstRows: node.EstRows * defaultSel,
		}
		pc.costFilter(f)
		node = f
	}
	return node, nil
}

// groupEstimate bounds the group count by the product of the key columns'
// distinct counts (non-column keys contribute √input).
func (pc *planCtx) groupEstimate(in float64) float64 {
	if len(pc.stmt.GroupBy) == 0 {
		return 1
	}
	prod := 1.0
	for _, g := range pc.stmt.GroupBy {
		d := math.Sqrt(math.Max(1, in))
		if c, ok := g.(sql.ColNode); ok {
			for _, r := range pc.lp.rels {
				if _, err := r.t.Schema().ColIndex(c.Name); err == nil {
					d = distinctOf(r.stats, r.t.Schema(), c.Name)
					// The key values reaching the aggregate come from the
					// rows surviving that relation's pushed filter: a
					// 26-part filter yields at most 26 part keys, however
					// many matches each fans out to downstream.
					d = math.Min(d, math.Max(1, r.estRows))
					break
				}
			}
		}
		prod *= d
	}
	return math.Min(math.Max(1, in), prod)
}

// buildTop adds sort, projection/aggregation and limit above the chain,
// mirroring SQL's resolution rules (pre-projection ORDER BY with alias
// substitution for plain selects; post-projection for aggregates).
func (pc *planCtx) buildTop(node *Node) (*Node, error) {
	stmt := pc.stmt
	agg := aggregated(stmt)

	if !agg && len(stmt.OrderBy) > 0 {
		// Prune to the sorted-and-projected columns first when it pays:
		// Sort copies whole rows, so dropping wide unused columns saves
		// a line per row per copy.
		if keep, ok := pc.outerKeep(node.schema, len(pc.lp.rels)); ok {
			node = pc.maybeSortPrune(node, keep)
		}
		aliasExprs := map[string]sql.Node{}
		for _, it := range stmt.Items {
			if it.As != "" && !it.Star {
				aliasExprs[it.As] = it.Expr
			}
		}
		keys := make([]exec.SortKey, 0, len(stmt.OrderBy))
		names := make([]string, 0, len(stmt.OrderBy))
		for _, k := range stmt.OrderBy {
			nodeAST := k.Expr
			if c, ok := nodeAST.(sql.ColNode); ok {
				if repl, ok := aliasExprs[c.Name]; ok {
					nodeAST = repl
				}
			}
			expr, err := compile(nodeAST, node.schema)
			if err != nil {
				return nil, err
			}
			keys = append(keys, exec.SortKey{Expr: expr, Desc: k.Desc})
			names = append(names, sortName(k))
		}
		s := &Node{
			Kind: opSort, Kids: []*Node{node},
			SortKeys: keys, SortNames: names,
			schema:  node.schema,
			EstRows: node.EstRows,
		}
		pc.costSort(s)
		node = s
	}

	node, outNames, err := pc.projection(node)
	if err != nil {
		return nil, err
	}

	if agg && len(stmt.OrderBy) > 0 {
		keys := make([]exec.SortKey, 0, len(stmt.OrderBy))
		names := make([]string, 0, len(stmt.OrderBy))
		for _, k := range stmt.OrderBy {
			expr, err := compileWithAliases(k.Expr, node.schema, outNames)
			if err != nil {
				return nil, err
			}
			keys = append(keys, exec.SortKey{Expr: expr, Desc: k.Desc})
			names = append(names, sortName(k))
		}
		s := &Node{
			Kind: opSort, Kids: []*Node{node},
			SortKeys: keys, SortNames: names,
			schema:  node.schema,
			EstRows: node.EstRows,
		}
		pc.costSort(s)
		node = s
	}
	if stmt.Limit > 0 {
		node = &Node{
			Kind: opLimit, Kids: []*Node{node},
			LimitN:  stmt.Limit,
			schema:  node.schema,
			EstRows: math.Min(float64(stmt.Limit), node.EstRows),
		}
	}
	return node, nil
}

// maybeSortPrune inserts a prune below a sort when the saved row-copy width
// beats the prune cost.
func (pc *planCtx) maybeSortPrune(child *Node, keep []int) *Node {
	pruned := child.schema.Project(keep)
	fullLines := math.Ceil(float64(child.schema.RowWidth()) / 64)
	keptLines := math.Ceil(float64(pruned.RowWidth()) / 64)
	var benefit est
	benefit.reg2 = child.EstRows * (fullLines - keptLines)
	prune := &Node{
		Kind: opPrune, Kids: []*Node{child},
		Cols:    keep,
		schema:  pruned,
		EstRows: child.EstRows,
	}
	pc.costPrune(prune)
	if prune.EstEJ < pc.c.price(benefit) {
		return prune
	}
	return child
}

func sortName(k sql.OrderKey) string {
	s := render(k.Expr)
	if k.Desc {
		s += " DESC"
	}
	return s
}

// projection lowers the select list: pass-through for `SELECT *`, a Project
// node for plain expressions, or an Aggregate node (hash aggregation plus
// the select-order re-projection) when aggregates or GROUP BY appear.
func (pc *planCtx) projection(node *Node) (*Node, map[string]int, error) {
	stmt := pc.stmt
	names := map[string]int{}
	if !aggregated(stmt) {
		if len(stmt.Items) == 1 && stmt.Items[0].Star {
			return node, names, nil
		}
		exprs := make([]exec.Expr, 0, len(stmt.Items))
		outNames := make([]string, 0, len(stmt.Items))
		for i, it := range stmt.Items {
			if it.Star {
				return nil, nil, fmt.Errorf("plan: * cannot be mixed with expressions")
			}
			ex, err := compile(it.Expr, node.schema)
			if err != nil {
				return nil, nil, err
			}
			exprs = append(exprs, ex)
			name := it.As
			if name == "" {
				name = render(it.Expr)
			}
			outNames = append(outNames, name)
			names[name] = i
		}
		p := &Node{
			Kind: opProject, Kids: []*Node{node},
			Exprs: exprs, Names: outNames,
			schema:  projectSchema(outNames),
			EstRows: node.EstRows,
		}
		pc.costProject(p)
		return p, names, nil
	}

	// Aggregation: group keys are the GROUP BY expressions; every
	// non-aggregate select item must match one of them.
	groupExprs := make([]exec.Expr, 0, len(stmt.GroupBy))
	groupKeys := make([]string, 0, len(stmt.GroupBy))
	for _, g := range stmt.GroupBy {
		ex, err := compile(g, node.schema)
		if err != nil {
			return nil, nil, err
		}
		groupExprs = append(groupExprs, ex)
		groupKeys = append(groupKeys, render(g))
	}
	var aggs []exec.AggSpec
	argNodes := 0
	type outCol struct {
		name   string
		grpIdx int
		aggIdx int
	}
	var outs []outCol
	for _, it := range stmt.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("plan: * cannot be used with GROUP BY")
		}
		name := it.As
		if name == "" {
			name = render(it.Expr)
		}
		if agg, ok := it.Expr.(sql.AggNode); ok {
			var arg exec.Expr
			if agg.Arg != nil {
				var err error
				arg, err = compile(agg.Arg, node.schema)
				if err != nil {
					return nil, nil, err
				}
				argNodes += arg.Nodes()
			}
			kind, err := aggKind(agg.Func)
			if err != nil {
				return nil, nil, err
			}
			aggs = append(aggs, exec.AggSpec{Kind: kind, Arg: arg, Name: name})
			outs = append(outs, outCol{name: name, grpIdx: -1, aggIdx: len(aggs) - 1})
			continue
		}
		key := render(it.Expr)
		idx := -1
		for i, gk := range groupKeys {
			if gk == key {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, nil, fmt.Errorf("plan: %s must appear in GROUP BY or inside an aggregate", key)
		}
		outs = append(outs, outCol{name: name, grpIdx: idx, aggIdx: -1})
	}
	postExprs := make([]exec.Expr, 0, len(outs))
	postNames := make([]string, 0, len(outs))
	for i, oc := range outs {
		var idx int
		if oc.grpIdx >= 0 {
			idx = oc.grpIdx
		} else {
			idx = len(groupExprs) + oc.aggIdx
		}
		postExprs = append(postExprs, exec.Col{Idx: idx, Name: oc.name})
		postNames = append(postNames, oc.name)
		names[oc.name] = i
	}
	a := &Node{
		Kind: opAggregate, Kids: []*Node{node},
		GroupExprs: groupExprs, GroupNames: groupKeys,
		Aggs: aggs, aggArgNodes: argNodes,
		PostExprs: postExprs, PostNames: postNames,
		schema:  projectSchema(postNames),
		EstRows: pc.groupEstimate(node.EstRows),
	}
	pc.costAggregate(a)
	return a, names, nil
}

// projectSchema mirrors exec.Project's output schema: anonymous 8-byte
// float slots with the output names.
func projectSchema(names []string) *catalog.Schema {
	cols := make([]catalog.Column, len(names))
	for i, n := range names {
		cols[i] = catalog.Column{Name: n, Type: value.TypeFloat, Width: 8}
	}
	return &catalog.Schema{Columns: cols}
}
