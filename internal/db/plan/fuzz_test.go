package plan

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/sql"
	"energydb/internal/db/value"
)

// fuzzEngine builds a tiny seeded engine for each fuzz execution: two small
// joinable tables with an index each, enough to exercise every physical
// operator the optimizer can pick without making iterations slow.
func fuzzEngine() *engine.Engine {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	items := e.CreateTable("items", catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "cat", Type: value.TypeInt},
		catalog.Column{Name: "price", Type: value.TypeFloat},
		catalog.Column{Name: "name", Type: value.TypeStr, Width: 8},
	))
	for i := 0; i < 8; i++ {
		e.Insert(items, value.Row{
			value.Int(int64(i)), value.Int(int64(i % 2)),
			value.Float(float64(i)), value.Str("n"),
		})
	}
	e.CreateIndex(items, "id")
	cats := e.CreateTable("cats", catalog.NewSchema(
		catalog.Column{Name: "cat_id", Type: value.TypeInt},
		catalog.Column{Name: "cat_name", Type: value.TypeStr, Width: 8},
	))
	for i := 0; i < 2; i++ {
		e.Insert(cats, value.Row{value.Int(int64(i)), value.Str("c")})
	}
	e.CreateIndex(cats, "cat_id")
	return e
}

// FuzzPlan checks the optimizer's crash-safety contract end to end: for any
// input the pipeline (parse → plan → execute) must return rows or an error,
// never panic or hang — the server feeds client text straight into it. Seeds
// cover each physical-operator choice (seq/index scan, index/hash join,
// aggregate, sort, limit) plus shapes that must fail cleanly in the planner.
func FuzzPlan(f *testing.F) {
	seeds := []string{
		"SELECT * FROM items",
		"SELECT id FROM items WHERE id = 3",
		"SELECT id, price FROM items WHERE id BETWEEN 1 AND 5 AND price > 2",
		"SELECT name, cat_name FROM items JOIN cats ON cat = cat_id WHERE price < 4",
		"SELECT cat, COUNT(*) AS n, SUM(price) FROM items GROUP BY cat ORDER BY cat",
		"SELECT COUNT(*), AVG(price) FROM items WHERE name LIKE 'n%'",
		"SELECT id FROM items WHERE cat IN (0, 1) ORDER BY price DESC LIMIT 3",
		"SELECT id, price * 2 AS d FROM items WHERE id < '1995-01-01'",
		// Planner-error shapes: unknown tables/columns, unresolvable joins,
		// misplaced aggregates — must fail with errors, not panic.
		"SELECT * FROM missing",
		"SELECT nope FROM items",
		"SELECT id FROM items JOIN cats ON wrong = cat_id",
		"SELECT id, SUM(price) FROM items",
		"SELECT MAX(price) FROM items WHERE SUM(id) > 0",
		"SELECT * FROM items JOIN items ON id = id",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := sql.Parse(src)
		if err != nil {
			return
		}
		e := fuzzEngine()
		p, err := Prepare(e, stmt)
		if err != nil {
			return
		}
		checkChainConsistency(t, src, p.Root, false)
		op, err := p.Build()
		if err != nil {
			t.Fatalf("Build failed after successful Prepare on %q: %v", src, err)
		}
		if _, err := exec.Collect(op); err != nil {
			t.Fatalf("execution failed after successful plan on %q: %v", src, err)
		}
		p.Explain() // must not panic either
	})
}

// checkChainConsistency asserts the chain-wise mode contract on a chosen
// plan: vector chains are contiguous (a vector node never has a row child,
// so no row operator is ever sandwiched between two vector ones), the
// row↔vector transition is priced exactly at each chain top (BoundaryEJ > 0
// where a row consumer takes over, and only there), and interior chain
// nodes carry no boundary charge.
func checkChainConsistency(t *testing.T, src string, n *Node, vecParent bool) {
	t.Helper()
	if n.Mode == ModeVector {
		if vecParent && n.BoundaryEJ != 0 {
			t.Fatalf("interior vector node %s carries a boundary charge %g on %q",
				n.Title(), n.BoundaryEJ, src)
		}
		if !vecParent && !(n.BoundaryEJ > 0) {
			t.Fatalf("vector chain top %s under a row consumer has no priced transition on %q",
				n.Title(), src)
		}
		for _, k := range n.Kids {
			if k.Mode != ModeVector {
				t.Fatalf("vector node %s has row-mode child %s on %q",
					n.Title(), k.Title(), src)
			}
		}
	} else if n.BoundaryEJ != 0 {
		t.Fatalf("row node %s carries a boundary charge %g on %q", n.Title(), n.BoundaryEJ, src)
	}
	for _, k := range n.Kids {
		checkChainConsistency(t, src, k, n.Mode == ModeVector)
	}
}
