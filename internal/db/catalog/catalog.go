// Package catalog holds schemas and table metadata shared by the storage
// layer and the executor.
package catalog

import (
	"fmt"

	"energydb/internal/db/value"
)

// Column describes one attribute.
type Column struct {
	Name string
	Type value.Type
	// Width is the on-page width in bytes. Numeric columns are 8 bytes;
	// string columns are fixed-width (TPC-H style CHAR/VARCHAR budgets).
	Width int
}

// Schema is an ordered column list.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema, defaulting widths for numeric columns.
func NewSchema(cols ...Column) *Schema {
	for i := range cols {
		if cols[i].Width == 0 {
			switch cols[i].Type {
			case value.TypeStr:
				cols[i].Width = 16
			default:
				cols[i].Width = 8
			}
		}
	}
	return &Schema{Columns: cols}
}

// RowWidth returns the fixed on-page row width in bytes.
func (s *Schema) RowWidth() int {
	w := 0
	for _, c := range s.Columns {
		w += c.Width
	}
	return w
}

// ColIndex returns the position of the named column, or an error.
func (s *Schema) ColIndex(name string) (int, error) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("catalog: no column %q", name)
}

// MustColIndex is ColIndex for statically-known names.
func (s *Schema) MustColIndex(name string) int {
	i, err := s.ColIndex(name)
	if err != nil {
		panic(err)
	}
	return i
}

// ColOffset returns the byte offset of column i within the row.
func (s *Schema) ColOffset(i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += s.Columns[j].Width
	}
	return off
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Project returns a schema with the selected columns.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return &Schema{Columns: cols}
}

// Concat returns the schema of a join output: s's columns then o's.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return &Schema{Columns: cols}
}

// ColStats summarizes one column for the optimizer: distinct-value count
// and value bounds, the inputs to equality and range selectivity estimates.
type ColStats struct {
	// Distinct is the number of distinct values observed (0 for an empty
	// column).
	Distinct int
	// Min and Max bound the observed values; Null when the column is
	// empty.
	Min value.Value
	Max value.Value
}

// TableStats carries optimizer statistics for one table: cardinality,
// per-column summaries and a uniform row sample for predicate selectivity.
type TableStats struct {
	RowCount int
	// Cols holds per-column statistics, indexed like Schema.Columns.
	Cols []ColStats
	// Sample is a uniform sample of full rows (every k-th row, up to a
	// small cap); selectivity of arbitrary predicates is estimated by
	// evaluating them over the sample.
	Sample []value.Row
}

// Selectivity estimates the fraction of rows matching pred by evaluating it
// over the sample. With no sample it returns def.
func (s *TableStats) Selectivity(pred func(value.Row) bool, def float64) float64 {
	if s == nil || len(s.Sample) == 0 {
		return def
	}
	hit := 0
	for _, r := range s.Sample {
		if pred(r) {
			hit++
		}
	}
	// Clamp away from 0: a sample miss does not prove emptiness, and a
	// zero estimate would let the cost model assume free downstream work.
	sel := float64(hit) / float64(len(s.Sample))
	if min := 0.5 / float64(len(s.Sample)); sel < min {
		sel = min
	}
	return sel
}
