package catalog

import (
	"testing"

	"energydb/internal/db/value"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Type: value.TypeInt},
		Column{Name: "name", Type: value.TypeStr, Width: 24},
		Column{Name: "amount", Type: value.TypeFloat},
	)
}

func TestDefaultWidths(t *testing.T) {
	s := NewSchema(
		Column{Name: "i", Type: value.TypeInt},
		Column{Name: "s", Type: value.TypeStr},
		Column{Name: "d", Type: value.TypeDate},
	)
	if s.Columns[0].Width != 8 || s.Columns[1].Width != 16 || s.Columns[2].Width != 8 {
		t.Fatalf("default widths = %v", s.Columns)
	}
}

func TestRowWidthAndOffsets(t *testing.T) {
	s := testSchema()
	if s.RowWidth() != 8+24+8 {
		t.Fatalf("row width = %d", s.RowWidth())
	}
	if s.ColOffset(0) != 0 || s.ColOffset(1) != 8 || s.ColOffset(2) != 32 {
		t.Fatalf("offsets = %d %d %d", s.ColOffset(0), s.ColOffset(1), s.ColOffset(2))
	}
}

func TestColIndex(t *testing.T) {
	s := testSchema()
	i, err := s.ColIndex("amount")
	if err != nil || i != 2 {
		t.Fatalf("ColIndex = %d, %v", i, err)
	}
	if _, err := s.ColIndex("missing"); err == nil {
		t.Fatal("expected error")
	}
	if s.MustColIndex("name") != 1 {
		t.Fatal("MustColIndex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustColIndex should panic on missing column")
		}
	}()
	s.MustColIndex("nope")
}

func TestProjectAndConcat(t *testing.T) {
	s := testSchema()
	p := s.Project([]int{2, 0})
	if len(p.Columns) != 2 || p.Columns[0].Name != "amount" || p.Columns[1].Name != "id" {
		t.Fatalf("projected = %v", p.Names())
	}
	c := s.Concat(p)
	if len(c.Columns) != 5 || c.Columns[3].Name != "amount" {
		t.Fatalf("concat = %v", c.Names())
	}
	// Concat must not alias the source slices.
	c.Columns[0].Name = "mutated"
	if s.Columns[0].Name == "mutated" {
		t.Fatal("concat aliases the source schema")
	}
}

func TestNames(t *testing.T) {
	got := testSchema().Names()
	want := []string{"id", "name", "amount"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v", got)
		}
	}
}
