package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Date(10), Date(20), -1},
		{Date(10), Int(10), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for i, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("case %d: Compare(%v, %v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func randValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return Int(int64(rng.Intn(100) - 50))
	case 1:
		return Float(float64(rng.Intn(100)) / 4)
	case 2:
		return Str(string(rune('a' + rng.Intn(26))))
	default:
		return Null()
	}
}

func TestComparePropertyAntisymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			a, b := randValue(rng), randValue(rng)
			if Compare(a, b) != -Compare(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComparePropertyTransitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 30; i++ {
			a, b, c := randValue(rng), randValue(rng), randValue(rng)
			// Skip mixed string/number triples: SQL-style comparison
			// across those is not transitive by design and the engine
			// never compares mixed types within one column.
			if (a.T == TypeStr) != (b.T == TypeStr) || (b.T == TypeStr) != (c.T == TypeStr) {
				continue
			}
			if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeKeyDistinguishesTuples(t *testing.T) {
	a := MakeKey(Int(1), Str("ab"))
	b := MakeKey(Int(1), Str("ab"))
	if a != b {
		t.Fatal("equal tuples must map to equal keys")
	}
	distinct := []Key{
		MakeKey(Int(1), Str("ab")),
		MakeKey(Int(1), Str("a"), Str("b")),
		MakeKey(Str("1"), Str("ab")),
		MakeKey(Int(1)),
		MakeKey(Float(1), Str("ab")),
		MakeKey(Null(), Str("ab")),
	}
	for i := range distinct {
		for j := i + 1; j < len(distinct); j++ {
			if distinct[i] == distinct[j] {
				t.Fatalf("keys %d and %d collide", i, j)
			}
		}
	}
}

func TestKeyHashDeterministic(t *testing.T) {
	a := MakeKey(Int(42), Str("x"))
	if a.Hash() != MakeKey(Int(42), Str("x")).Hash() {
		t.Fatal("hash not deterministic")
	}
	if a.Hash() == MakeKey(Int(43), Str("x")).Hash() {
		t.Fatal("suspicious collision on near keys")
	}
}

func TestCoercions(t *testing.T) {
	if Int(5).AsFloat() != 5.0 || Float(2.5).AsInt() != 2 || Date(7).AsInt() != 7 {
		t.Fatal("coercions wrong")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Fatal("null detection wrong")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].I != 1 {
		t.Fatal("clone aliases the original")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL": Null(), "5": Int(5), "2.50": Float(2.5), "hi": Str("hi"), "D+3": Date(3),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.T, got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if TypeInt.String() != "int" || TypeStr.String() != "str" || TypeDate.String() != "date" {
		t.Fatal("type names wrong")
	}
}
