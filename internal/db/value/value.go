// Package value defines the datum types that flow through the database
// engines: 64-bit integers, 64-bit floats, fixed-width strings and dates
// (stored as days). Values are compact and comparable; the storage layer
// maps them onto fixed-width row slots in simulated memory.
package value

import (
	"fmt"
	"strconv"
)

// Type enumerates datum types.
type Type uint8

// Datum types.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeStr
	TypeDate // days since 1992-01-01 (the TPC-H epoch)
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeStr:
		return "str"
	case TypeDate:
		return "date"
	default:
		return "unknown"
	}
}

// Value is one datum. The zero Value is NULL.
type Value struct {
	T Type
	I int64   // TypeInt, TypeDate
	F float64 // TypeFloat
	S string  // TypeStr
}

// Int builds an integer datum.
func Int(v int64) Value { return Value{T: TypeInt, I: v} }

// Float builds a float datum.
func Float(v float64) Value { return Value{T: TypeFloat, F: v} }

// Str builds a string datum.
func Str(v string) Value { return Value{T: TypeStr, S: v} }

// Date builds a date datum from days since the TPC-H epoch (1992-01-01).
func Date(days int64) Value { return Value{T: TypeDate, I: days} }

// Null is the NULL datum.
func Null() Value { return Value{} }

// IsNull reports whether the datum is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// AsFloat coerces numeric datums to float64.
func (v Value) AsFloat() float64 {
	switch v.T {
	case TypeInt, TypeDate:
		return float64(v.I)
	case TypeFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt coerces numeric datums to int64.
func (v Value) AsInt() int64 {
	switch v.T {
	case TypeInt, TypeDate:
		return v.I
	case TypeFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// Compare orders two datums: -1, 0, +1. NULL sorts first. Numeric types
// compare by value across int/float/date; strings compare lexically.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if a.T == TypeStr || b.T == TypeStr {
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Equal reports datum equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// String renders the datum for display.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'f', 2, 64)
	case TypeStr:
		return v.S
	case TypeDate:
		return fmt.Sprintf("D+%d", v.I)
	default:
		return "?"
	}
}

// Row is one tuple.
type Row []Value

// Clone copies a row (operators that buffer rows must clone them because
// iterators reuse backing storage).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Key is a comparable composite key built from a row prefix, usable as a Go
// map key for hash joins and aggregation.
type Key struct {
	s string
}

// MakeKey encodes the given values into a composite key.
func MakeKey(vals ...Value) Key {
	var b []byte
	for _, v := range vals {
		b = append(b, byte(v.T))
		switch v.T {
		case TypeInt, TypeDate:
			b = appendInt(b, v.I)
		case TypeFloat:
			b = strconv.AppendFloat(b, v.F, 'g', -1, 64)
		case TypeStr:
			b = append(b, v.S...)
		}
		b = append(b, 0)
	}
	return Key{s: string(b)}
}

func appendInt(b []byte, v int64) []byte {
	return strconv.AppendInt(b, v, 36)
}

// Hash returns a 64-bit FNV-1a hash of the key, used by hash operators to
// derive simulated bucket addresses.
func (k Key) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.s); i++ {
		h ^= uint64(k.s[i])
		h *= prime64
	}
	return h
}
