package sql

import "testing"

// FuzzParse checks the parser's crash-safety contract: Parse must return a
// statement or an error for any input, never panic or hang — the server
// feeds it raw client text straight off the wire. Seeds cover the
// TPC-H-style shapes the planner supports (joins, aggregates, BETWEEN,
// LIKE, ORDER BY/LIMIT) plus pathological fragments.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM lineitem",
		"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag",
		"SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, " +
			"AVG(l_extendedprice) FROM lineitem WHERE l_shipdate <= '1998-09-02' " +
			"GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag",
		"SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem " +
			"WHERE l_shipdate >= '1994-01-01' AND l_discount BETWEEN 0.05 AND 0.07 " +
			"AND l_quantity < 24",
		"SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey = 7 LIMIT 1",
		"SELECT c_name, o_totalprice FROM orders JOIN customer ON o_custkey = c_custkey " +
			"WHERE o_totalprice > 100000 ORDER BY o_totalprice DESC LIMIT 10",
		"SELECT id, price * 2 AS double_price FROM items WHERE name LIKE 'a%'",
		"SELECT COUNT(*), MIN(id), MAX(id), AVG(price) FROM items WHERE cat = 0",
		// Pathological fragments: unterminated strings, deep nesting, stray
		// operators, unicode, empty and whitespace-only statements.
		"",
		"   ",
		"SELECT",
		"SELECT * FROM",
		"SELECT (((((((((1)))))))))",
		"SELECT 'unterminated FROM t",
		"SELECT * FROM t WHERE a = = b",
		"SELECT \x00\xff FROM \xfe",
		"select ä, ö from tµble",
		"SELECT * FROM t ORDER BY LIMIT",
		"SELECT a FROM t WHERE a BETWEEN AND 3",
		"SELECT -- comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatal("Parse returned nil statement and nil error")
		}
	})
}
