package sql

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/value"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	items := e.CreateTable("items", catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "cat", Type: value.TypeInt},
		catalog.Column{Name: "price", Type: value.TypeFloat},
		catalog.Column{Name: "name", Type: value.TypeStr, Width: 16},
	))
	names := []string{"apple", "banana", "cherry", "avocado"}
	for i := 0; i < 100; i++ {
		e.Insert(items, value.Row{
			value.Int(int64(i)),
			value.Int(int64(i % 4)),
			value.Float(float64(i) * 1.5),
			value.Str(names[i%4]),
		})
	}
	e.CreateIndex(items, "id")

	cats := e.CreateTable("cats", catalog.NewSchema(
		catalog.Column{Name: "cat_id", Type: value.TypeInt},
		catalog.Column{Name: "cat_name", Type: value.TypeStr, Width: 16},
	))
	for i := 0; i < 4; i++ {
		e.Insert(cats, value.Row{value.Int(int64(i)), value.Str([]string{"fruit", "veg", "dairy", "meat"}[i])})
	}
	e.CreateIndex(cats, "cat_id")
	return e
}

func TestSelectStar(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT * FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestWherePushdown(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT id FROM items WHERE price < 15 AND cat = 1")
	if err != nil {
		t.Fatal(err)
	}
	// price < 15 -> id < 10; cat = 1 -> id % 4 == 1: ids 1, 5, 9.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestProjectionArithmetic(t *testing.T) {
	e := testEngine(t)
	rows, names, err := Run(e, "SELECT id, price * 2 AS double_price FROM items WHERE id = 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].AsFloat() != 30 {
		t.Fatalf("rows = %v", rows)
	}
	if names[1] != "double_price" {
		t.Fatalf("names = %v", names)
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, `
		SELECT cat, COUNT(*) AS n, SUM(price) AS total, MIN(id), MAX(id)
		FROM items GROUP BY cat ORDER BY cat`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0][1].AsInt() != 25 {
		t.Fatalf("count = %v", rows[0][1])
	}
	if rows[1][3].AsInt() != 1 || rows[1][4].AsInt() != 97 {
		t.Fatalf("min/max of cat 1 = %v/%v", rows[1][3], rows[1][4])
	}
}

func TestScalarAggregate(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT COUNT(*), AVG(price) FROM items WHERE cat = 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsInt() != 25 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoin(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, `
		SELECT name, cat_name FROM items
		JOIN cats ON cat = cat_id
		WHERE id < 8 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][1].S != "veg" {
		t.Fatalf("joined cat of id 1 = %v", rows[1][1])
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT id, price FROM items ORDER BY price DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].AsInt() != 99 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLikeInBetween(t *testing.T) {
	e := testEngine(t)
	rows, _, err := Run(e, "SELECT id FROM items WHERE name LIKE 'a%' AND id BETWEEN 0 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	// apple (i%4==0) and avocado (i%4==3) in [0, 20]: 0,4,8,12,16,20 + 3,7,11,15,19 = 11.
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	rows, _, err = Run(e, "SELECT id FROM items WHERE cat IN (1, 2) LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * WHERE x",
		"SELECT * FROM t WHERE",
		"SELECT * FROM items LIMIT x",
		"SELECT id FROM items GROUP BY",
		"SELECT 'unterminated FROM items",
		"SELECT * FROM items; DROP TABLE items",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	e := testEngine(t)
	bad := []string{
		"SELECT * FROM missing",
		"SELECT nope FROM items",
		"SELECT id FROM items JOIN cats ON wrong = cat_id",
		"SELECT id, SUM(price) FROM items",               // id not grouped
		"SELECT *, id FROM items",                        // star mixed
		"SELECT MAX(price) FROM items WHERE SUM(id) > 0", // aggregate in WHERE
	}
	for _, q := range bad {
		if _, _, err := Run(e, q); err == nil {
			t.Errorf("Run(%q) should fail", q)
		}
	}
}

func TestResultsMatchAcrossEngines(t *testing.T) {
	query := "SELECT cat, COUNT(*) AS n FROM items GROUP BY cat ORDER BY cat"
	var want []value.Row
	for i, kind := range engine.Kinds() {
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		e := engine.New(kind, m, engine.SettingBaseline)
		items := e.CreateTable("items", catalog.NewSchema(
			catalog.Column{Name: "id", Type: value.TypeInt},
			catalog.Column{Name: "cat", Type: value.TypeInt},
			catalog.Column{Name: "price", Type: value.TypeFloat},
			catalog.Column{Name: "name", Type: value.TypeStr, Width: 16},
		))
		for j := 0; j < 60; j++ {
			e.Insert(items, value.Row{value.Int(int64(j)), value.Int(int64(j % 3)), value.Float(1), value.Str("x")})
		}
		rows, _, err := Run(e, query)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = rows
			continue
		}
		if len(rows) != len(want) {
			t.Fatalf("%v: %d rows, want %d", kind, len(rows), len(want))
		}
		for r := range rows {
			if rows[r][1].AsInt() != want[r][1].AsInt() {
				t.Fatalf("%v row %d differs", kind, r)
			}
		}
	}
}
