package sql

import "testing"

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * WHERE x",
		"SELECT * FROM t WHERE",
		"SELECT * FROM items LIMIT x",
		"SELECT id FROM items GROUP BY",
		"SELECT 'unterminated FROM items",
		"SELECT * FROM items; DROP TABLE items",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseStatementExplain(t *testing.T) {
	st, err := ParseStatement("EXPLAIN SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*ExplainStmt)
	if !ok || ex.Energy {
		t.Fatalf("got %#v", st)
	}
	st, err = ParseStatement("EXPLAIN ENERGY SELECT id FROM t WHERE id < 3")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok = st.(*ExplainStmt)
	if !ok || !ex.Energy {
		t.Fatalf("got %#v", st)
	}
	if _, err := ParseStatement("EXPLAIN"); err == nil {
		t.Fatal("bare EXPLAIN should fail")
	}
}
