package sql

import (
	"fmt"
	"strings"

	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
)

// Plan compiles a parsed statement into an executor plan on the engine. The
// engine picks physical join strategies per its profile, exactly as the
// hand-built TPC-H plans do.
func Plan(e *engine.Engine, stmt *SelectStmt) (exec.Operator, error) {
	base, err := e.Table(stmt.From)
	if err != nil {
		return nil, err
	}

	var op exec.Operator
	// Push the WHERE clause into the scan when the query has no joins
	// (the common fast path); otherwise filter after the join chain.
	pushdown := stmt.Where != nil && len(stmt.Joins) == 0
	if pushdown {
		pred, err := compile(stmt.Where, base.Schema())
		if err != nil {
			return nil, err
		}
		op = e.Scan(base, pred)
	} else {
		op = e.Scan(base, nil)
	}

	for _, j := range stmt.Joins {
		inner, err := e.Table(j.Table)
		if err != nil {
			return nil, err
		}
		outerCol, innerCol := j.LeftCol, j.RightCol
		if _, err := op.Schema().ColIndex(outerCol); err != nil {
			outerCol, innerCol = innerCol, outerCol
		}
		outerIdx, err := op.Schema().ColIndex(outerCol)
		if err != nil {
			return nil, fmt.Errorf("sql: join column %q not in outer relation", j.LeftCol)
		}
		if _, err := inner.Schema().ColIndex(innerCol); err != nil {
			return nil, fmt.Errorf("sql: join column %q not in table %q", innerCol, j.Table)
		}
		op = e.EquiJoin(op, outerIdx, inner, innerCol, nil)
	}

	if stmt.Where != nil && !pushdown {
		pred, err := compile(stmt.Where, op.Schema())
		if err != nil {
			return nil, err
		}
		op = &exec.Filter{Ctx: e.Ctx, Child: op, Pred: pred}
	}

	aggregated := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if !it.Star && hasAggregate(it.Expr) {
			aggregated = true
		}
	}

	if !aggregated && len(stmt.OrderBy) > 0 {
		// SQL resolves ORDER BY against the pre-projection relation
		// (plus select-list aliases), so sort before projecting.
		aliasExprs := map[string]Node{}
		for _, it := range stmt.Items {
			if it.As != "" && !it.Star {
				aliasExprs[it.As] = it.Expr
			}
		}
		keys := make([]exec.SortKey, 0, len(stmt.OrderBy))
		for _, k := range stmt.OrderBy {
			node := k.Expr
			if c, ok := node.(ColNode); ok {
				if repl, ok := aliasExprs[c.Name]; ok {
					node = repl
				}
			}
			expr, err := compile(node, op.Schema())
			if err != nil {
				return nil, err
			}
			keys = append(keys, exec.SortKey{Expr: expr, Desc: k.Desc})
		}
		op = e.Sort(op, keys)
	}

	op, outNames, err := planProjection(e, op, stmt)
	if err != nil {
		return nil, err
	}

	if aggregated && len(stmt.OrderBy) > 0 {
		keys := make([]exec.SortKey, 0, len(stmt.OrderBy))
		for _, k := range stmt.OrderBy {
			expr, err := compileWithAliases(k.Expr, op.Schema(), outNames)
			if err != nil {
				return nil, err
			}
			keys = append(keys, exec.SortKey{Expr: expr, Desc: k.Desc})
		}
		op = e.Sort(op, keys)
	}
	if stmt.Limit > 0 {
		op = &exec.Limit{Child: op, N: stmt.Limit}
	}
	return op, nil
}

// planProjection handles the select list: plain projection, or hash
// aggregation when aggregates or GROUP BY appear.
func planProjection(e *engine.Engine, op exec.Operator, stmt *SelectStmt) (exec.Operator, map[string]int, error) {
	names := map[string]int{}
	aggregated := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if !it.Star && hasAggregate(it.Expr) {
			aggregated = true
		}
	}

	if !aggregated {
		if len(stmt.Items) == 1 && stmt.Items[0].Star {
			return op, names, nil // pass-through
		}
		exprs := make([]exec.Expr, 0, len(stmt.Items))
		outNames := make([]string, 0, len(stmt.Items))
		for i, it := range stmt.Items {
			if it.Star {
				return nil, nil, fmt.Errorf("sql: * cannot be mixed with expressions")
			}
			ex, err := compile(it.Expr, op.Schema())
			if err != nil {
				return nil, nil, err
			}
			exprs = append(exprs, ex)
			name := it.As
			if name == "" {
				name = render(it.Expr)
			}
			outNames = append(outNames, name)
			names[name] = i
		}
		return &exec.Project{Ctx: e.Ctx, Child: op, Exprs: exprs, Names: outNames}, names, nil
	}

	// Aggregation: group keys are the GROUP BY expressions; every
	// non-aggregate select item must match one of them.
	groupExprs := make([]exec.Expr, 0, len(stmt.GroupBy))
	groupKeys := make([]string, 0, len(stmt.GroupBy))
	for _, g := range stmt.GroupBy {
		ex, err := compile(g, op.Schema())
		if err != nil {
			return nil, nil, err
		}
		groupExprs = append(groupExprs, ex)
		groupKeys = append(groupKeys, render(g))
	}
	var aggs []exec.AggSpec
	type outCol struct {
		name   string
		grpIdx int // >= 0 when a group key
		aggIdx int // >= 0 when an aggregate
	}
	var outs []outCol
	for _, it := range stmt.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("sql: * cannot be used with GROUP BY")
		}
		name := it.As
		if name == "" {
			name = render(it.Expr)
		}
		if agg, ok := it.Expr.(AggNode); ok {
			var arg exec.Expr
			if agg.Arg != nil {
				var err error
				arg, err = compile(agg.Arg, op.Schema())
				if err != nil {
					return nil, nil, err
				}
			}
			kind, err := aggKind(agg.Func)
			if err != nil {
				return nil, nil, err
			}
			aggs = append(aggs, exec.AggSpec{Kind: kind, Arg: arg, Name: name})
			outs = append(outs, outCol{name: name, grpIdx: -1, aggIdx: len(aggs) - 1})
			continue
		}
		key := render(it.Expr)
		idx := -1
		for i, gk := range groupKeys {
			if gk == key {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, nil, fmt.Errorf("sql: %s must appear in GROUP BY or inside an aggregate", key)
		}
		outs = append(outs, outCol{name: name, grpIdx: idx, aggIdx: -1})
	}
	g := e.GroupBy(op, groupExprs, aggs)

	// Re-project group output into the select-list order and names.
	exprs := make([]exec.Expr, 0, len(outs))
	outNames := make([]string, 0, len(outs))
	for i, oc := range outs {
		var idx int
		if oc.grpIdx >= 0 {
			idx = oc.grpIdx
		} else {
			idx = len(groupExprs) + oc.aggIdx
		}
		exprs = append(exprs, exec.Col{Idx: idx, Name: oc.name})
		outNames = append(outNames, oc.name)
		names[oc.name] = i
	}
	return &exec.Project{Ctx: e.Ctx, Child: g, Exprs: exprs, Names: outNames}, names, nil
}

func aggKind(name string) (exec.AggKind, error) {
	switch strings.ToUpper(name) {
	case "SUM":
		return exec.AggSum, nil
	case "AVG":
		return exec.AggAvg, nil
	case "COUNT":
		return exec.AggCount, nil
	case "MIN":
		return exec.AggMin, nil
	case "MAX":
		return exec.AggMax, nil
	default:
		return 0, fmt.Errorf("sql: unknown aggregate %q", name)
	}
}

// compile lowers an AST node to an executor expression over the schema.
func compile(n Node, schema *catalog.Schema) (exec.Expr, error) {
	switch v := n.(type) {
	case ColNode:
		idx, err := schema.ColIndex(v.Name)
		if err != nil {
			return nil, err
		}
		return exec.Col{Idx: idx, Name: v.Name}, nil
	case NumNode:
		if v.Value == float64(int64(v.Value)) {
			return exec.Const{V: value.Int(int64(v.Value))}, nil
		}
		return exec.Const{V: value.Float(v.Value)}, nil
	case StrNode:
		return exec.Const{V: value.Str(v.Value)}, nil
	case NotNode:
		e, err := compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		return exec.Not{E: e}, nil
	case LikeNode:
		e, err := compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		return exec.Like{E: e, Pattern: v.Pattern}, nil
	case InNode:
		e, err := compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		list := make([]value.Value, 0, len(v.List))
		for _, item := range v.List {
			c, err := compile(item, schema)
			if err != nil {
				return nil, err
			}
			k, ok := c.(exec.Const)
			if !ok {
				return nil, fmt.Errorf("sql: IN list must contain literals")
			}
			list = append(list, k.V)
		}
		return exec.InList{E: e, List: list}, nil
	case BetweenNode:
		e, err := compile(v.E, schema)
		if err != nil {
			return nil, err
		}
		lo, err := compile(v.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := compile(v.Hi, schema)
		if err != nil {
			return nil, err
		}
		// SQL BETWEEN is inclusive on both ends.
		return exec.BinOp{Op: exec.OpAnd,
			L: exec.BinOp{Op: exec.OpGe, L: e, R: lo},
			R: exec.BinOp{Op: exec.OpLe, L: e, R: hi},
		}, nil
	case BinNode:
		l, err := compile(v.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := compile(v.R, schema)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[v.Op]
		if !ok {
			return nil, fmt.Errorf("sql: unknown operator %q", v.Op)
		}
		return exec.BinOp{Op: op, L: l, R: r}, nil
	case AggNode:
		return nil, fmt.Errorf("sql: aggregate %s used outside the select list", v.Func)
	default:
		return nil, fmt.Errorf("sql: cannot compile %T", n)
	}
}

var binOps = map[string]exec.BinOpKind{
	"+": exec.OpAdd, "-": exec.OpSub, "*": exec.OpMul, "/": exec.OpDiv,
	"=": exec.OpEq, "<>": exec.OpNe, "<": exec.OpLt, "<=": exec.OpLe,
	">": exec.OpGt, ">=": exec.OpGe, "AND": exec.OpAnd, "OR": exec.OpOr,
}

// compileWithAliases resolves output-column aliases before falling back to
// schema resolution (ORDER BY can name select-list aliases).
func compileWithAliases(n Node, schema *catalog.Schema, aliases map[string]int) (exec.Expr, error) {
	if c, ok := n.(ColNode); ok {
		if idx, ok := aliases[c.Name]; ok {
			return exec.Col{Idx: idx, Name: c.Name}, nil
		}
	}
	return compile(n, schema)
}

// render produces a canonical string for AST matching (GROUP BY keys).
func render(n Node) string {
	switch v := n.(type) {
	case ColNode:
		return v.Name
	case NumNode:
		return fmt.Sprintf("%g", v.Value)
	case StrNode:
		return fmt.Sprintf("'%s'", v.Value)
	case BinNode:
		return fmt.Sprintf("(%s %s %s)", render(v.L), v.Op, render(v.R))
	case NotNode:
		return "NOT " + render(v.E)
	case LikeNode:
		return fmt.Sprintf("%s LIKE '%s'", render(v.E), v.Pattern)
	case InNode:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = render(e)
		}
		return fmt.Sprintf("%s IN (%s)", render(v.E), strings.Join(parts, ", "))
	case BetweenNode:
		return fmt.Sprintf("%s BETWEEN %s AND %s", render(v.E), render(v.Lo), render(v.Hi))
	case AggNode:
		if v.Arg == nil {
			return strings.ToLower(v.Func) + "(*)"
		}
		return fmt.Sprintf("%s(%s)", strings.ToLower(v.Func), render(v.Arg))
	default:
		return "?"
	}
}

// Run parses, plans and drains a query, returning the result rows and the
// output column names.
func Run(e *engine.Engine, query string) ([]value.Row, []string, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, nil, err
	}
	plan, err := Plan(e, stmt)
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.Collect(plan)
	if err != nil {
		return nil, nil, err
	}
	return rows, plan.Schema().Names(), nil
}
