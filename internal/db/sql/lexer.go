// Package sql implements a small SQL subset over the executor: SELECT with
// expressions and aggregates, FROM with equijoin chains, WHERE, GROUP BY,
// ORDER BY and LIMIT. It exists so the engines can be driven interactively
// (cmd/dbshell) and from examples without hand-building plans.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved words, upper-cased
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "JOIN": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "LIKE": true, "IN": true,
	"BETWEEN": true, "ASC": true, "DESC": true, "SUM": true, "AVG": true,
	"COUNT": true, "MIN": true, "MAX": true, "NULL": true, "EXPLAIN": true,
	"ENERGY": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "TRANSACTION": true, "WORK": true,
}

// lexer scans SQL text into tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[strings.ToUpper(text)] {
			return token{kind: tokKeyword, text: strings.ToUpper(text), pos: start}, nil
		}
		return token{kind: tokIdent, text: text, pos: start}, nil
	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("sql: unterminated string at %d", start)
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, pos: start}, nil
	default:
		// Multi-char operators first.
		for _, op := range []string{"<=", ">=", "<>", "!="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tokSymbol, text: op, pos: start}, nil
			}
		}
		if strings.ContainsRune("(),*=<>+-/.", rune(c)) {
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected character %q at %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// lexAll scans the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
