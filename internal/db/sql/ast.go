package sql

// SelectStmt is the parsed form of a query.
type SelectStmt struct {
	// Items are the select-list entries; a single Star item means `*`.
	Items []SelectItem
	// From is the first table.
	From string
	// Joins are the chained equijoins, in order.
	Joins []JoinClause
	// Where is the optional predicate.
	Where Node
	// GroupBy lists grouping expressions.
	GroupBy []Node
	// OrderBy lists ordering keys.
	OrderBy []OrderKey
	// Limit is the row limit; 0 means none.
	Limit int
}

// SelectItem is one output column.
type SelectItem struct {
	Star bool
	Expr Node
	// As is the optional alias.
	As string
}

// JoinClause is `JOIN table ON left = right`.
type JoinClause struct {
	Table string
	// LeftCol and RightCol are the two sides of the ON equality; which
	// belongs to the joined table is resolved by the planner.
	LeftCol  string
	RightCol string
}

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	Expr Node
	Desc bool
}

// InsertStmt is `INSERT INTO table [(cols...)] VALUES (exprs...)`.
type InsertStmt struct {
	Table string
	// Cols names the target columns; empty means schema order.
	Cols []string
	// Values are the literal expressions, one per column.
	Values []Node
}

// SetClause is one `col = expr` assignment in an UPDATE.
type SetClause struct {
	Col  string
	Expr Node
}

// UpdateStmt is `UPDATE table SET col = expr, ... [WHERE pred]`.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Node
}

// DeleteStmt is `DELETE FROM table [WHERE pred]`.
type DeleteStmt struct {
	Table string
	Where Node
}

// BeginStmt is `BEGIN [TRANSACTION]`.
type BeginStmt struct{}

// CommitStmt is `COMMIT [WORK]`.
type CommitStmt struct{}

// RollbackStmt is `ROLLBACK [WORK]`.
type RollbackStmt struct{}

// Node is an expression AST node.
type Node interface{ node() }

// ColNode references a column (optionally table-qualified).
type ColNode struct{ Name string }

// NumNode is a numeric literal.
type NumNode struct{ Value float64 }

// StrNode is a string literal.
type StrNode struct{ Value string }

// BinNode is a binary operation.
type BinNode struct {
	Op   string // + - * / = <> < <= > >= AND OR
	L, R Node
}

// NotNode negates a boolean expression.
type NotNode struct{ E Node }

// LikeNode is `expr LIKE 'pattern'`.
type LikeNode struct {
	E       Node
	Pattern string
}

// InNode is `expr IN (literals...)`.
type InNode struct {
	E    Node
	List []Node
}

// BetweenNode is `expr BETWEEN lo AND hi`.
type BetweenNode struct {
	E      Node
	Lo, Hi Node
}

// AggNode is an aggregate call.
type AggNode struct {
	Func string // SUM AVG COUNT MIN MAX
	Arg  Node   // nil for COUNT(*)
}

func (ColNode) node()     {}
func (NumNode) node()     {}
func (StrNode) node()     {}
func (BinNode) node()     {}
func (NotNode) node()     {}
func (LikeNode) node()    {}
func (InNode) node()      {}
func (BetweenNode) node() {}
func (AggNode) node()     {}

// HasAggregate reports whether the node tree contains an aggregate call.
func HasAggregate(n Node) bool {
	switch v := n.(type) {
	case AggNode:
		return true
	case BinNode:
		return HasAggregate(v.L) || HasAggregate(v.R)
	case NotNode:
		return HasAggregate(v.E)
	case LikeNode:
		return HasAggregate(v.E)
	case InNode:
		return HasAggregate(v.E)
	case BetweenNode:
		return HasAggregate(v.E) || HasAggregate(v.Lo) || HasAggregate(v.Hi)
	default:
		return false
	}
}
