package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return token{}, fmt.Errorf("sql: expected %q, found %q", text, p.cur().text)
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}

	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.From = from.text

	for p.accept(tokKeyword, "JOIN") {
		jt, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		right, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: jt.text, LeftCol: left, RightCol: right})
	}

	if p.accept(tokKeyword, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", n.text)
		}
		stmt.Limit = limit
	}
	return stmt, nil
}

// insertStmt parses `INSERT INTO table [(cols...)] VALUES (exprs...)`.
func (p *parser) insertStmt() (*InsertStmt, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: tbl.text}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, c.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Values = append(stmt.Values, e)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if len(stmt.Cols) > 0 && len(stmt.Cols) != len(stmt.Values) {
		return nil, fmt.Errorf("sql: INSERT names %d columns but supplies %d values",
			len(stmt.Cols), len(stmt.Values))
	}
	return stmt, nil
}

// updateStmt parses `UPDATE table SET col = expr, ... [WHERE pred]`.
func (p *parser) updateStmt() (*UpdateStmt, error) {
	if _, err := p.expect(tokKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: tbl.text}
	for {
		col, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Col: col, Expr: e})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// deleteStmt parses `DELETE FROM table [WHERE pred]`.
func (p *parser) deleteStmt() (*DeleteStmt, error) {
	if _, err := p.expect(tokKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: tbl.text}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.orExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.As = alias.text
	}
	return item, nil
}

// qualifiedIdent reads ident or ident.ident, returning the bare column name
// (table qualifiers only disambiguate visually; columns are globally unique
// in the TPC-H schema).
func (p *parser) qualifiedIdent() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	name := t.text
	if p.accept(tokSymbol, ".") {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return "", err
		}
		name = c.text
	}
	return name, nil
}

// Expression grammar: or > and > not > comparison > additive >
// multiplicative > primary.

func (p *parser) orExpr() (Node, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinNode{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Node, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = BinNode{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Node, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return NotNode{E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Node, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept(tokKeyword, "LIKE"):
		pat, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return LikeNode{E: l, Pattern: pat.text}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return BetweenNode{E: l, Lo: lo, Hi: hi}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Node
		for {
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return InNode{E: l, List: list}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return BinNode{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) additive() (Node, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = BinNode{Op: "+", L: l, R: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.multiplicative()
			if err != nil {
				return nil, err
			}
			l = BinNode{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) multiplicative() (Node, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = BinNode{Op: "*", L: l, R: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = BinNode{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) primary() (Node, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return NumNode{Value: v}, nil
	case t.kind == tokString:
		p.pos++
		return StrNode{Value: t.text}, nil
	case t.kind == tokKeyword && isAggKeyword(t.text):
		p.pos++
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var arg Node
		if p.accept(tokSymbol, "*") {
			if t.text != "COUNT" {
				return nil, fmt.Errorf("sql: %s(*) is not valid", t.text)
			}
		} else {
			a, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			arg = a
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return AggNode{Func: t.text, Arg: arg}, nil
	case t.kind == tokIdent:
		name, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		return ColNode{Name: name}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokSymbol && t.text == "-":
		p.pos++
		e, err := p.primary()
		if err != nil {
			return nil, err
		}
		return BinNode{Op: "-", L: NumNode{}, R: e}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected token %q", t.text)
	}
}

func isAggKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "SUM", "AVG", "COUNT", "MIN", "MAX":
		return true
	}
	return false
}
