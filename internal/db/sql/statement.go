package sql

import "fmt"

// Statement is any parsed top-level statement: *SelectStmt or *ExplainStmt.
type Statement interface{ stmt() }

func (*SelectStmt) stmt()  {}
func (*ExplainStmt) stmt() {}

// ExplainStmt is `EXPLAIN [ENERGY] <select>`. Plain EXPLAIN asks for the
// optimizer's chosen plan with estimated cardinalities and predicted energy;
// EXPLAIN ENERGY additionally executes the statement with per-operator
// counter snapshots and reports each operator's measured Eactive breakdown.
type ExplainStmt struct {
	Energy bool
	Select *SelectStmt
}

// ParseStatement parses one top-level statement: a SELECT, or an EXPLAIN /
// EXPLAIN ENERGY wrapping one. Parse remains the SELECT-only entry point.
func ParseStatement(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.accept(tokKeyword, "EXPLAIN")
	energy := false
	if explain {
		energy = p.accept(tokKeyword, "ENERGY")
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	if explain {
		return &ExplainStmt{Energy: energy, Select: sel}, nil
	}
	return sel, nil
}
