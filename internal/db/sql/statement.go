package sql

import "fmt"

// Statement is any parsed top-level statement: *SelectStmt, *ExplainStmt,
// *InsertStmt, *UpdateStmt, *DeleteStmt, or one of the transaction controls
// *BeginStmt / *CommitStmt / *RollbackStmt.
type Statement interface{ stmt() }

func (*SelectStmt) stmt()   {}
func (*ExplainStmt) stmt()  {}
func (*InsertStmt) stmt()   {}
func (*UpdateStmt) stmt()   {}
func (*DeleteStmt) stmt()   {}
func (*BeginStmt) stmt()    {}
func (*CommitStmt) stmt()   {}
func (*RollbackStmt) stmt() {}

// ExplainStmt is `EXPLAIN [ENERGY] <select>`. Plain EXPLAIN asks for the
// optimizer's chosen plan with estimated cardinalities and predicted energy;
// EXPLAIN ENERGY additionally executes the statement with per-operator
// counter snapshots and reports each operator's measured Eactive breakdown.
type ExplainStmt struct {
	Energy bool
	Select *SelectStmt
}

// ParseStatement parses one top-level statement: a SELECT (optionally under
// EXPLAIN / EXPLAIN ENERGY), a DML statement (INSERT, UPDATE, DELETE), or a
// transaction control (BEGIN, COMMIT, ROLLBACK). Parse remains the
// SELECT-only entry point.
func ParseStatement(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	switch {
	case p.accept(tokKeyword, "BEGIN"):
		p.accept(tokKeyword, "TRANSACTION")
		stmt = &BeginStmt{}
	case p.accept(tokKeyword, "COMMIT"):
		p.accept(tokKeyword, "WORK")
		stmt = &CommitStmt{}
	case p.accept(tokKeyword, "ROLLBACK"):
		p.accept(tokKeyword, "WORK")
		stmt = &RollbackStmt{}
	case p.at(tokKeyword, "INSERT"):
		stmt, err = p.insertStmt()
	case p.at(tokKeyword, "UPDATE"):
		stmt, err = p.updateStmt()
	case p.at(tokKeyword, "DELETE"):
		stmt, err = p.deleteStmt()
	default:
		explain := p.accept(tokKeyword, "EXPLAIN")
		energy := false
		if explain {
			energy = p.accept(tokKeyword, "ENERGY")
		}
		var sel *SelectStmt
		sel, err = p.selectStmt()
		if err == nil && explain {
			stmt = &ExplainStmt{Energy: energy, Select: sel}
		} else if err == nil {
			stmt = sel
		}
	}
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return stmt, nil
}
