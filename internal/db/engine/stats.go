package engine

import (
	"energydb/internal/db/catalog"
	"energydb/internal/db/storage"
	"energydb/internal/db/value"
)

// statsSampleCap bounds the uniform row sample kept per table. Selectivity
// estimates carry ~sqrt(expected hits) sampling noise, and every downstream
// operator's energy estimate scales with the cardinality built on them — at
// 128 rows, a 1.3% joint predicate expects fewer than 2 hits and the whole
// plan's prediction swings 2x on one row. 2048 keeps the ANALYZE pass cheap
// (it walks raw rows Go-side, unsimulated), cuts the noise 4x, and makes
// small dimension tables (part, supplier, customer at this scale) exact.
const statsSampleCap = 2048

// statsSketchK is the k-minimum-values sketch size for distinct counting:
// exact below k, ~6% relative error above it — plenty for selectivity and
// join fan-out estimates.
const statsSketchK = 1024

// Stats returns optimizer statistics for a table, computing them on first
// use and caching them on the shared table store. The ANALYZE pass walks raw
// rows on the Go side (no simulated accesses), so collecting statistics
// never pollutes a measured statement. The cache is invalidated whenever the
// row count changes; it is guarded by its own mutex so concurrent workers
// planning under the statement read lock race neither each other nor the
// cache.
func (e *Engine) Stats(t *Table) *catalog.TableStats {
	st, ok := e.shared.tables[t.Name]
	if !ok {
		// A table not in the store (unit-test constructions): compute
		// uncached.
		return analyze(t.File.Data(), t.Schema())
	}
	st.statsMu.Lock()
	defer st.statsMu.Unlock()
	n := t.File.RowCount()
	if st.stats == nil || st.stats.RowCount != n {
		st.stats = analyze(st.data, st.schema)
	}
	return st.stats
}

// analyze computes table statistics in one raw pass: row count, per-column
// min/max and distinct sketches, and a uniform row sample.
func analyze(data *storage.TableData, schema *catalog.Schema) *catalog.TableStats {
	ncols := len(schema.Columns)
	sketches := make([]kmvSketch, ncols)
	for i := range sketches {
		sketches[i] = newKMV(statsSketchK)
	}
	stats := &catalog.TableStats{Cols: make([]catalog.ColStats, ncols)}
	cols := stats.Cols
	for i := range cols {
		cols[i].Min = value.Null()
		cols[i].Max = value.Null()
	}
	count := 0
	data.ForEachRaw(func(id int, row value.Row) { count++ })
	stride := 1
	if count > statsSampleCap {
		stride = (count + statsSampleCap - 1) / statsSampleCap
	}
	data.ForEachRaw(func(id int, row value.Row) {
		stats.RowCount++
		if id%stride == 0 {
			stats.Sample = append(stats.Sample, row.Clone())
		}
		for i := 0; i < ncols && i < len(row); i++ {
			v := row[i]
			if v.IsNull() {
				continue
			}
			if cols[i].Min.IsNull() || value.Compare(v, cols[i].Min) < 0 {
				cols[i].Min = v
			}
			if cols[i].Max.IsNull() || value.Compare(v, cols[i].Max) > 0 {
				cols[i].Max = v
			}
			sketches[i].add(value.MakeKey(v).Hash())
		}
	})
	for i := range cols {
		cols[i].Distinct = sketches[i].estimate()
	}
	return stats
}

// kmvSketch estimates a column's distinct count by tracking the k smallest
// distinct 64-bit value hashes: exact while fewer than k distinct hashes
// were seen, else distinct ≈ (k-1)·2^64/kthMin.
type kmvSketch struct {
	k   int
	set map[uint64]struct{}
	max uint64
}

func newKMV(k int) kmvSketch {
	return kmvSketch{k: k, set: make(map[uint64]struct{}, k)}
}

func (s *kmvSketch) add(h uint64) {
	if _, ok := s.set[h]; ok {
		return
	}
	if len(s.set) < s.k {
		s.set[h] = struct{}{}
		if h > s.max {
			s.max = h
		}
		return
	}
	if h >= s.max {
		return
	}
	delete(s.set, s.max)
	s.set[h] = struct{}{}
	s.max = 0
	for x := range s.set {
		if x > s.max {
			s.max = x
		}
	}
}

func (s *kmvSketch) estimate() int {
	if len(s.set) < s.k {
		return len(s.set)
	}
	// kthMin as a fraction of the hash space.
	frac := float64(s.max) / float64(^uint64(0))
	if frac <= 0 {
		return len(s.set)
	}
	return int(float64(s.k-1) / frac)
}
