package engine

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
)

func newEngine(t *testing.T, kind Kind, setting Setting) *Engine {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	return New(kind, m, setting)
}

func loadSample(t *testing.T, e *Engine, rows int) *Table {
	t.Helper()
	schema := catalog.NewSchema(
		catalog.Column{Name: "k", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "v", Type: value.TypeFloat},
	)
	tbl := e.CreateTable("sample", schema)
	for i := 0; i < rows; i++ {
		e.Insert(tbl, value.Row{value.Int(int64(i)), value.Int(int64(i % 7)), value.Float(float64(i))})
	}
	e.CreateIndex(tbl, "k")
	return tbl
}

func TestKnobsMatchTable4(t *testing.T) {
	// PostgreSQL baseline: shared_buffers 128MB, work_mem 64MB (1:10).
	k := KnobsFor(PostgreSQL, SettingBaseline)
	if k.BufferBytes != 128<<20/10 || k.WorkMemBytes != 64<<20/10 {
		t.Fatalf("PG baseline knobs = %+v", k)
	}
	if k.PageBytes != 8<<10 {
		t.Fatalf("PG page size = %d", k.PageBytes)
	}
	// SQLite small: 2000 pages x 4KB.
	k = KnobsFor(SQLite, SettingSmall)
	if k.PageBytes != 4<<10 || k.BufferBytes != 2000*(4<<10)/10 {
		t.Fatalf("SQLite small knobs = %+v", k)
	}
	// MySQL large: 16KB pages, 1024MB pool.
	k = KnobsFor(MySQL, SettingLarge)
	if k.PageBytes != 16<<10 || k.BufferBytes != 1024<<20/10 {
		t.Fatalf("MySQL large knobs = %+v", k)
	}
	// Settings must be ordered: small < baseline < large.
	for _, kind := range Kinds() {
		s := KnobsFor(kind, SettingSmall).BufferBytes
		b := KnobsFor(kind, SettingBaseline).BufferBytes
		l := KnobsFor(kind, SettingLarge).BufferBytes
		if !(s < b && b < l) {
			t.Errorf("%v buffer knobs not increasing: %d/%d/%d", kind, s, b, l)
		}
	}
}

func TestInsertAndScan(t *testing.T) {
	e := newEngine(t, SQLite, SettingBaseline)
	tbl := loadSample(t, e, 500)
	n, err := e.Run(e.Scan(tbl, nil))
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("scanned %d rows", n)
	}
}

func TestIndexRange(t *testing.T) {
	e := newEngine(t, PostgreSQL, SettingBaseline)
	tbl := loadSample(t, e, 500)
	lo, hi := value.Int(100), value.Int(199)
	plan, err := e.IndexRange(tbl, "k", &lo, &hi, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("index range returned %d rows, want 100", n)
	}
	if _, err := e.IndexRange(tbl, "v", nil, nil, nil); err == nil {
		t.Fatal("expected error for unindexed column")
	}
}

func TestJoinStrategyByProfile(t *testing.T) {
	build := func(kind Kind) exec.Operator {
		e := newEngine(t, kind, SettingBaseline)
		tbl := loadSample(t, e, 500)
		outer := e.Scan(tbl, nil)
		return e.EquiJoin(outer, 0, tbl, "k", nil)
	}
	if _, ok := build(SQLite).(*exec.IndexJoin); !ok {
		t.Error("SQLite must use the index nested-loop join")
	}
	if _, ok := build(PostgreSQL).(*exec.HashJoin); !ok {
		t.Error("PostgreSQL should hash-join a 500-row inner table")
	}
	if _, ok := build(MySQL).(*exec.HashJoin); !ok {
		t.Error("MySQL should hash-join a 500-row inner table")
	}
}

func TestSmallInnerTableUsesIndexJoinEverywhere(t *testing.T) {
	e := newEngine(t, PostgreSQL, SettingBaseline)
	tbl := loadSample(t, e, 20) // below joinHashThreshold
	outer := e.Scan(tbl, nil)
	if _, ok := e.EquiJoin(outer, 0, tbl, "k", nil).(*exec.IndexJoin); !ok {
		t.Error("small inner tables should index-join even on PostgreSQL")
	}
}

func TestJoinStrategiesAgreeOnResults(t *testing.T) {
	counts := map[Kind]int{}
	for _, kind := range Kinds() {
		e := newEngine(t, kind, SettingBaseline)
		tbl := loadSample(t, e, 300)
		outer := e.Scan(tbl, nil)
		j := e.EquiJoin(outer, 1 /* grp */, tbl, "k", nil)
		n, err := e.Run(j)
		if err != nil {
			t.Fatal(err)
		}
		counts[kind] = n
	}
	if counts[SQLite] != counts[PostgreSQL] || counts[MySQL] != counts[PostgreSQL] {
		t.Fatalf("join results differ across engines: %v", counts)
	}
}

func TestUnknownTable(t *testing.T) {
	e := newEngine(t, MySQL, SettingSmall)
	if _, err := e.Table("missing"); err == nil {
		t.Fatal("expected error")
	}
}

func TestKindAndSettingStrings(t *testing.T) {
	if PostgreSQL.String() != "PostgreSQL" || SQLite.String() != "SQLite" || MySQL.String() != "MySQL" {
		t.Fatal("kind names wrong")
	}
	if SettingSmall.String() != "small" || SettingBaseline.String() != "baseline" || SettingLarge.String() != "large" {
		t.Fatal("setting names wrong")
	}
}

func TestUpdateWhere(t *testing.T) {
	e := newEngine(t, PostgreSQL, SettingBaseline)
	tbl := loadSample(t, e, 400)
	n, err := e.UpdateWhere(tbl,
		exec.BinOp{Op: exec.OpLt, L: exec.Col{Idx: 0}, R: exec.Const{V: value.Int(100)}},
		func(r value.Row) value.Row {
			r[2] = value.Float(r[2].AsFloat() + 1000)
			return r
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("updated %d rows, want 100", n)
	}
	// Values visible through a scan.
	rows, err := exec.Collect(e.Scan(tbl, exec.BinOp{Op: exec.OpGe,
		L: exec.Col{Idx: 2}, R: exec.Const{V: value.Float(1000)}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("scan sees %d updated rows, want 100", len(rows))
	}
	// WAL recorded the statement.
	if e.WAL() == nil || e.WAL().Records.Load() == 0 || e.WAL().Syncs.Load() == 0 {
		t.Fatalf("WAL not written: records=%d syncs=%d",
			e.WAL().Records.Load(), e.WAL().Syncs.Load())
	}
	// Dirty pages exist until checkpoint.
	if e.Pool.DirtyCount() == 0 {
		t.Fatal("no dirty pages after updates")
	}
	written := e.Checkpoint()
	if written == 0 || e.Pool.DirtyCount() != 0 {
		t.Fatalf("checkpoint wrote %d, dirty left %d", written, e.Pool.DirtyCount())
	}
}

func TestUpdateWhereRejectsIndexedColumn(t *testing.T) {
	e := newEngine(t, SQLite, SettingBaseline)
	tbl := loadSample(t, e, 50)
	_, err := e.UpdateWhere(tbl, nil, func(r value.Row) value.Row {
		r[0] = value.Int(r[0].AsInt() + 1) // k is indexed
		return r
	})
	if err == nil {
		t.Fatal("expected error for indexed-column update")
	}
}

func TestJournalModesByProfile(t *testing.T) {
	if newEngine(t, SQLite, SettingSmall).Journal() != JournalRollback {
		t.Fatal("SQLite should use the rollback journal")
	}
	if newEngine(t, PostgreSQL, SettingSmall).Journal() != JournalWAL {
		t.Fatal("PostgreSQL should use WAL")
	}
}

func TestRollbackJournalCopiesPagesOnce(t *testing.T) {
	e := newEngine(t, SQLite, SettingBaseline)
	tbl := loadSample(t, e, 400)
	if _, err := e.UpdateWhere(tbl, nil, func(r value.Row) value.Row {
		r[2] = value.Float(0)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	// Rollback journal: every row logs a logical record for replay (400
	// updates + the commit), but only the first touch of each page pays a
	// full page image — later rows on the same page journal just their
	// after-image, so bytes stay page-granular, not row-count-granular.
	if got := e.WAL().Records.Load(); got != 401 {
		t.Fatalf("journal records = %d, want 401 (400 rows + commit)", got)
	}
	pages := uint64(tbl.File.PageCount())
	minBytes := pages * uint64(e.Knobs.PageBytes)
	maxBytes := minBytes + 400*uint64(tbl.Schema().RowWidth()) + 401*64
	got := e.WAL().Bytes.Load()
	if got < minBytes || got > maxBytes {
		t.Fatalf("journal bytes = %d, want one page image per touched page plus row records (%d..%d)",
			got, minBytes, maxBytes)
	}
}
