package engine

import (
	"sync"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
)

// TestSharedView checks the per-worker engine path: a second engine view
// over one store sees tables, rows and indexes created through the first,
// and scanning through it drives only its own machine.
func TestSharedView(t *testing.T) {
	e := newEngine(t, SQLite, SettingBaseline)
	tbl := loadSample(t, e, 200)

	m2 := cpusim.NewMachine(cpusim.IntelI7_4790())
	e2 := e.Shared().View(m2)
	if e2.Tables() != e.Tables() {
		t.Fatalf("view sees %d tables, base %d", e2.Tables(), e.Tables())
	}
	tbl2, err := e2.Table("sample")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.File.RowCount() != tbl.File.RowCount() {
		t.Fatalf("view rows %d != base rows %d", tbl2.File.RowCount(), tbl.File.RowCount())
	}
	if tbl2.Index("k") == nil {
		t.Fatal("view does not see the index built through the base engine")
	}

	before := e.M.Hier.Counters()
	before2 := m2.Hier.Counters()
	n, err := e2.Run(e2.Scan(tbl2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("view scan returned %d rows, want 200", n)
	}
	if e.M.Hier.Counters() != before {
		t.Fatal("view scan advanced the base engine's machine")
	}
	if m2.Hier.Counters() == before2 {
		t.Fatal("view scan did not advance the view's machine")
	}

	// Index lookups through the view hit the shared structure.
	lo := value.Int(50)
	hi := value.Int(59)
	op, err := e2.IndexRange(tbl2, "k", &lo, &hi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := e2.Run(op); err != nil || n != 10 {
		t.Fatalf("view index range = (%d, %v), want 10 rows", n, err)
	}
}

// TestSharedViewSeesLaterDDL checks a view built before an index existed
// picks it up afterwards (the view's table cache refreshes).
func TestSharedViewSeesLaterDDL(t *testing.T) {
	e := newEngine(t, PostgreSQL, SettingBaseline)
	schema := catalog.NewSchema(
		catalog.Column{Name: "k", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "v", Type: value.TypeFloat},
	)
	tbl := e.CreateTable("sample", schema)
	for i := 0; i < 50; i++ {
		e.Insert(tbl, value.Row{value.Int(int64(i)), value.Int(int64(i % 7)), value.Float(float64(i))})
	}

	m2 := cpusim.NewMachine(cpusim.IntelI7_4790())
	e2 := e.Shared().View(m2)
	t2, err := e2.Table("sample")
	if err != nil {
		t.Fatal(err)
	}
	if t2.Index("k") != nil {
		t.Fatal("index exists before CreateIndex")
	}
	e.CreateIndex(tbl, "k")
	t2, err = e2.Table("sample")
	if err != nil {
		t.Fatal(err)
	}
	if t2.Index("k") == nil {
		t.Fatal("view table cache did not refresh after CreateIndex on the base")
	}
}

// TestSharedParallelReaders checks the MVCC statement contract: many
// workers scanning under per-statement snapshots while a writer inserts
// concurrently, race-free, with no reader ever blocking on the writer and a
// consistent final count.
func TestSharedParallelReaders(t *testing.T) {
	e := newEngine(t, SQLite, SettingBaseline)
	tbl := loadSample(t, e, 300)
	sh := e.Shared()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := cpusim.NewMachine(cpusim.IntelI7_4790())
			ev := sh.View(m)
			for i := 0; i < 5; i++ {
				vt, err := ev.Table("sample")
				if err != nil {
					t.Error(err)
					return
				}
				n, err := ev.Run(ev.Scan(vt, nil))
				if err != nil {
					t.Error(err)
					return
				}
				if n < 300 {
					t.Errorf("scan saw %d rows, want >= 300", n)
					return
				}
			}
		}()
	}
	// Concurrent writer: Insert publishes committed versions internally.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			e.Insert(tbl, value.Row{value.Int(int64(1000 + i)), value.Int(0), value.Float(0)})
		}
	}()
	wg.Wait()
	if got := tbl.File.RowCount(); got != 320 {
		t.Fatalf("final row count %d, want 320", got)
	}
}

// TestUpdateWhereStillWorks guards the internally-locked DML entry point.
func TestUpdateWhereStillWorks(t *testing.T) {
	e := newEngine(t, PostgreSQL, SettingBaseline)
	tbl := loadSample(t, e, 50)
	n, err := e.UpdateWhere(tbl, nil, func(r value.Row) value.Row {
		r[2] = value.Float(1.5)
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("updated %d rows, want 50", n)
	}
	row, visible, err := tbl.File.ReadRow(7, true)
	if err != nil {
		t.Fatal(err)
	}
	if !visible {
		t.Fatal("committed update not visible to a fresh snapshot")
	}
	if row[2].F != 1.5 {
		t.Fatalf("row not updated: %v", row)
	}
}
