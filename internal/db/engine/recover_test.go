package engine

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
)

// TestWalCrashRecovery kills a server mid-commit and replays the durable
// log tail on a fresh engine. The crash point is engineered with group
// commit: txn2's row records reach stable storage (flushed by txn3's
// fsync), but its commit record is still in the volatile buffer when the
// "power cut" happens. Recovery must re-apply txn1 and txn3, roll txn2
// back, charge the replay energy exactly once, and append nothing back to
// the new log.
func TestWalCrashRecovery(t *testing.T) {
	e := newEngine(t, SQLite, SettingBaseline)
	tbl := loadSample(t, e, 50)

	row := func(k int64) value.Row {
		return value.Row{value.Int(k), value.Int(k % 7), value.Float(float64(k))}
	}

	// txn1 commits under GroupCommit=1: fully durable.
	txn1 := e.Begin()
	e.InsertTxn(txn1, tbl, row(100))
	if err := e.Commit(txn1); err != nil {
		t.Fatal(err)
	}

	// txn2 writes but does not commit yet: two inserts and one update.
	txn2 := e.Begin()
	e.InsertTxn(txn2, tbl, row(101))
	e.InsertTxn(txn2, tbl, row(102))
	k5 := exec.BinOp{Op: exec.OpEq, L: exec.Col{Idx: 0}, R: exec.Const{V: value.Int(5)}}
	if n, err := e.UpdateWhereTxn(txn2, tbl, k5, func(r value.Row) value.Row {
		out := append(value.Row(nil), r...)
		out[2] = value.Float(-1)
		return out
	}); err != nil || n != 1 {
		t.Fatalf("txn2 update: n=%d err=%v", n, err)
	}

	// txn3's commit fsync flushes everything appended so far — including
	// txn2's row records, which are now durable without their commit.
	txn3 := e.Begin()
	e.InsertTxn(txn3, tbl, row(103))
	if err := e.Commit(txn3); err != nil {
		t.Fatal(err)
	}

	// Widen group commit so txn2's commit record stays buffered, then cut
	// power between the append and the fsync.
	e.WAL().GroupCommit = 1 << 20
	if err := e.Commit(txn2); err != nil {
		t.Fatal(err)
	}
	if e.WAL().PendingLen() == 0 {
		t.Fatal("txn2's commit record should still be volatile")
	}
	durable := e.WAL().Durable()
	if len(durable) == 0 {
		t.Fatal("no durable records to replay")
	}

	// Fresh machine, fresh engine, same DDL and checkpointed base load:
	// what a restart sees.
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	f := New(SQLite, m, SettingBaseline)
	ftbl := loadSample(t, f, 50)
	loadEnergy := m.ActiveEnergy().Total()

	applied, err := f.Recover(durable)
	if err != nil {
		t.Fatal(err)
	}
	// Row changes replayed: txn1's insert, txn2's 2 inserts + 1 update
	// (applied, then undone by the abort), txn3's insert.
	if applied != 5 {
		t.Fatalf("replayed %d row changes, want 5", applied)
	}
	if m.ActiveEnergy().Total() <= loadEnergy {
		t.Fatal("replay charged no energy; recovered work must be metered once")
	}
	// Recovery never appends to the new log — the records it replays are
	// already durable. A non-zero count here would mean replayed work is
	// logged (and so energy-charged) twice.
	if got := f.WAL().Records.Load(); got != 0 {
		t.Fatalf("recovery appended %d log records, want 0", got)
	}

	// Committed work is back: 50 base rows + txn1's k=100 + txn3's k=103.
	n, err := f.Run(f.Scan(ftbl, nil))
	if err != nil {
		t.Fatal(err)
	}
	if n != 52 {
		t.Fatalf("recovered snapshot has %d visible rows, want 52", n)
	}
	// txn2 lost: its inserts are invisible and its update is undone.
	for _, k := range []int64{101, 102} {
		pred := exec.BinOp{Op: exec.OpEq, L: exec.Col{Idx: 0}, R: exec.Const{V: value.Int(k)}}
		if n, err := f.Run(f.Scan(ftbl, pred)); err != nil || n != 0 {
			t.Fatalf("uncommitted insert k=%d visible after recovery (n=%d err=%v)", k, n, err)
		}
	}
	rows, err := exec.Collect(f.Scan(ftbl, k5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].AsFloat() != 5 {
		t.Fatalf("k=5 after recovery = %v, want v=5 (txn2's update rolled back)", rows)
	}

	// Replaying the same tail twice must be refused or idempotent-safe;
	// here the second engine start from the same durable tail yields the
	// same snapshot — determinism of log order.
	g := New(SQLite, cpusim.NewMachine(cpusim.IntelI7_4790()), SettingBaseline)
	gtbl := loadSample(t, g, 50)
	if _, err := g.Recover(durable); err != nil {
		t.Fatal(err)
	}
	gn, err := g.Run(g.Scan(gtbl, nil))
	if err != nil {
		t.Fatal(err)
	}
	if gn != n {
		t.Fatalf("replay not deterministic: %d vs %d visible rows", gn, n)
	}
}
