package engine

import (
	"testing"

	"energydb/internal/db/value"
)

// TestCommitChargesStamping pins the walerr/chargepath fix: committing a
// write transaction must charge the committing worker for every version
// stamp (a header load plus a timestamp-line store per write), mirroring
// how Rollback charges the undo walk via ChargeUndo. Before the fix the
// stamping loop in txn.Manager.Commit ran on the shared manager with no
// machine attached, so commit-time work was energy-free.
func TestCommitChargesStamping(t *testing.T) {
	e := newEngine(t, PostgreSQL, SettingBaseline)
	tbl := loadSample(t, e, 10)

	const n = 64
	tx := e.Begin()
	e.Bind(tx)
	for i := 0; i < n; i++ {
		e.InsertTxn(tx, tbl, value.Row{value.Int(int64(1000 + i)), value.Int(0), value.Float(0)})
	}
	if got := tx.Writes(); got != n {
		t.Fatalf("registered %d write records, want %d", got, n)
	}

	before := e.M.Hier.Counters()
	if err := e.Commit(tx); err != nil {
		t.Fatal(err)
	}
	d := e.M.Hier.Counters().Sub(before)
	if d.Loads < n {
		t.Errorf("commit of %d writes charged %d loads; each stamp must load its version header", n, d.Loads)
	}
	if d.Stores < n {
		t.Errorf("commit of %d writes charged %d stores; each stamp must store its timestamp line", n, d.Stores)
	}
}

// TestReadOnlyCommitChargesNothing checks the other side of the contract:
// a transaction with no writes skips the WAL commit record and the stamp
// charging entirely.
func TestReadOnlyCommitChargesNothing(t *testing.T) {
	e := newEngine(t, PostgreSQL, SettingBaseline)
	loadSample(t, e, 10)

	tx := e.Begin()
	e.Bind(tx)
	before := e.M.Hier.Counters()
	if err := e.Commit(tx); err != nil {
		t.Fatal(err)
	}
	d := e.M.Hier.Counters().Sub(before)
	if d.Instructions() != 0 {
		t.Errorf("read-only commit charged %d instructions; want 0", d.Instructions())
	}
}

// TestCommitRollbackSymmetry checks that committing N writes and rolling
// back N writes are both O(N) charged walks over the version store:
// neither outcome is free, so throwing work away and keeping it cost
// energy of the same order.
func TestCommitRollbackSymmetry(t *testing.T) {
	const n = 32
	run := func(commit bool) uint64 {
		e := newEngine(t, PostgreSQL, SettingBaseline)
		tbl := loadSample(t, e, 10)
		tx := e.Begin()
		e.Bind(tx)
		for i := 0; i < n; i++ {
			e.InsertTxn(tx, tbl, value.Row{value.Int(int64(2000 + i)), value.Int(0), value.Float(0)})
		}
		before := e.M.Hier.Counters()
		var err error
		if commit {
			err = e.Commit(tx)
		} else {
			err = e.Rollback(tx)
		}
		if err != nil {
			t.Fatal(err)
		}
		return e.M.Hier.Counters().Sub(before).Instructions()
	}
	c, r := run(true), run(false)
	if c == 0 || r == 0 {
		t.Fatalf("commit charged %d instructions, rollback charged %d; both must be nonzero", c, r)
	}
}
