// Package engine assembles the storage and executor layers into the three
// database-system profiles the paper benchmarks: PostgreSQL 9.5, SQLite
// 3.14 and MySQL 8.0. One codebase implements all three; a profile sets the
// distinguishing behaviours the paper's Section 3 analysis attributes the
// energy differences to:
//
//   - SQLite: lean bytecode VM (low per-tuple overhead), sequential-scan
//     bias, index nested-loop joins only — the highest L1D energy share.
//   - PostgreSQL: heap tables + shared buffers, hash joins and sorts under
//     work_mem, moderate executor overhead.
//   - MySQL/InnoDB: clustered primary index, heavier per-row bookkeeping —
//     the highest E_other share.
//
// Knob settings follow Table 4, scaled 1:10 alongside the dataset size
// classes (see DESIGN.md).
//
// # Concurrency and locking model
//
// A database instance is split in two. Shared is the table store — schemas,
// row data (storage.TableData) and index structure (btree shared halves) —
// and is what all workers see. Engine is a per-worker view over one Shared:
// it binds the store to one cpusim.Machine via a private device, buffer pool
// and executor context, so every simulated load, store and instruction cost
// a statement issues lands on that worker's PMU counters alone — the paper's
// Eq. 1 attribution depends on those counters advancing only for the
// statement being measured.
//
// An individual Engine is still NOT goroutine-safe: one worker owns it, and
// all access to it (plan building, execution, counter/energy snapshots) must
// stay on that worker's goroutine. Cross-worker safety comes from the store:
//
//   - Shared.mu is a statement-scoped RWMutex. Query execution holds the
//     read lock for the whole statement (the server layer does this);
//     concurrent readers proceed in parallel on their own machines.
//   - The write entry points — CreateTable, CreateIndex, Insert,
//     UpdateWhere — take the write lock internally, so DDL/DML excludes
//     every in-flight statement. Never call them while already holding the
//     store lock.
//   - Below it, storage.TableData and the btree shared halves are protected
//     by that contract (TableData additionally carries its own RWMutex for
//     raw row access). Lock order is always Shared.mu, then TableData.mu.
//
// Table and MustTable read the store without locking; call them either under
// the statement read lock or from a context where no DDL can run. Snapshot
// APIs (memsim.Hierarchy.Counters, perfmon.Take, rapl sessions) return value
// copies, so snapshots taken on the owner goroutine may be diffed and read
// anywhere afterwards.
package engine

import (
	"fmt"
	"sync"

	"energydb/internal/cpusim"
	"energydb/internal/db/btree"
	"energydb/internal/db/catalog"
	"energydb/internal/db/exec"
	"energydb/internal/db/storage"
	"energydb/internal/db/value"
)

// Kind selects a database-system profile.
type Kind int

// Database systems under test.
const (
	PostgreSQL Kind = iota
	SQLite
	MySQL
)

// String names the system as the paper abbreviates it.
func (k Kind) String() string {
	switch k {
	case PostgreSQL:
		return "PostgreSQL"
	case SQLite:
		return "SQLite"
	case MySQL:
		return "MySQL"
	default:
		return "unknown"
	}
}

// Kinds lists all profiles in the paper's figure order.
func Kinds() []Kind { return []Kind{PostgreSQL, SQLite, MySQL} }

// Setting selects a Table 4 knob row.
type Setting int

// Knob settings.
const (
	SettingSmall Setting = iota
	SettingBaseline
	SettingLarge
)

// String names the setting.
func (s Setting) String() string {
	switch s {
	case SettingSmall:
		return "small"
	case SettingBaseline:
		return "baseline"
	case SettingLarge:
		return "large"
	default:
		return "unknown"
	}
}

// Settings lists all knob settings.
func Settings() []Setting { return []Setting{SettingSmall, SettingBaseline, SettingLarge} }

// Knobs are the resolved engine parameters (Table 4 rows, scaled 1:10 with
// the data).
type Knobs struct {
	// BufferBytes sizes the buffer pool: shared_buffers (PostgreSQL),
	// cache_size × page_size (SQLite), innodb_buffer_pool_size (MySQL).
	BufferBytes int
	// PageBytes is the page size: 8KB for PostgreSQL, page_size for
	// SQLite, innodb_page_size for MySQL.
	PageBytes int
	// WorkMemBytes bounds sort/hash memory (PostgreSQL work_mem; the
	// other engines derive a share of the buffer).
	WorkMemBytes int
	// TupleOverhead is the per-row on-page header width.
	TupleOverhead int
	// DisableVectorExec forces the planner to keep every operator on the
	// row-at-a-time path, ignoring the vectorized implementations (used by
	// the X7 experiment to isolate the vectorization effect).
	DisableVectorExec bool
}

// scale is the knob scale-down matching the dataset scale-down.
const scale = 10

// KnobsFor resolves Table 4 for a profile and setting.
func KnobsFor(kind Kind, setting Setting) Knobs {
	mb := func(n int) int { return n << 20 / scale }
	var k Knobs
	switch kind {
	case PostgreSQL:
		k.PageBytes = 8 << 10
		k.TupleOverhead = 24
		switch setting {
		case SettingSmall:
			k.BufferBytes, k.WorkMemBytes = mb(8), mb(4)
		case SettingBaseline:
			k.BufferBytes, k.WorkMemBytes = mb(128), mb(64)
		default:
			k.BufferBytes, k.WorkMemBytes = mb(1024), mb(512)
		}
	case SQLite:
		k.TupleOverhead = 6
		switch setting {
		case SettingSmall:
			k.PageBytes = 4 << 10
			k.BufferBytes = 2000 * k.PageBytes / scale
		case SettingBaseline:
			k.PageBytes = 8 << 10
			k.BufferBytes = 16000 * k.PageBytes / scale
		default:
			k.PageBytes = 16 << 10
			k.BufferBytes = 65000 * k.PageBytes / scale
		}
		k.WorkMemBytes = k.BufferBytes / 4
	case MySQL:
		k.TupleOverhead = 18
		switch setting {
		case SettingSmall:
			k.PageBytes = 4 << 10
			k.BufferBytes = mb(8)
		case SettingBaseline:
			k.PageBytes = 8 << 10
			k.BufferBytes = mb(128)
		default:
			k.PageBytes = 16 << 10
			k.BufferBytes = mb(1024)
		}
		k.WorkMemBytes = k.BufferBytes / 4
	}
	return k
}

// costFor returns the executor cost model of a profile. The numbers encode
// the Section 3.3 analysis: SQLite's VM is lean and scan-friendly;
// PostgreSQL and MySQL add per-tuple bookkeeping ("extra calculations" that
// "hinder hardware optimization"), lowering the L1D energy share and
// raising E_other.
func costFor(kind Kind) exec.CostModel {
	switch kind {
	case SQLite:
		// Lean bytecode VM: fewer instructions per tuple, but nearly all
		// its memory traffic hits the hot register file and cursor — the
		// highest L1D energy share of the three systems.
		return exec.CostModel{
			TupleInstr: 260, TupleLoads: 230, TupleStores: 115,
			EvalInstr: 14, EvalLoads: 10, EvalStores: 6,
			EmitRowCopy: true,
		}
	case PostgreSQL:
		// Heavier executor (slot deforming, memory contexts, expression
		// trees): more plain instructions per tuple, so a larger E_other.
		return exec.CostModel{
			TupleInstr: 560, TupleLoads: 250, TupleStores: 95,
			EvalInstr: 30, EvalLoads: 12, EvalStores: 5,
			EmitRowCopy: true,
		}
	default: // MySQL
		// The heaviest per-row bookkeeping (InnoDB record formats, latch
		// protocol): the highest E_other share of the three.
		return exec.CostModel{
			TupleInstr: 950, TupleLoads: 265, TupleStores: 95,
			EvalInstr: 38, EvalLoads: 13, EvalStores: 6,
			EmitRowCopy: true,
		}
	}
}

// Table is a stored table with optional secondary indexes.
type Table struct {
	Name    string
	File    *storage.HeapFile
	Indexes map[string]*btree.Tree
	schema  *catalog.Schema
}

// Schema returns the table schema.
func (t *Table) Schema() *catalog.Schema { return t.schema }

// Index returns the index on the named column, if any.
func (t *Table) Index(col string) *btree.Tree { return t.Indexes[col] }

// sharedTable is the cross-worker half of a table: schema, shared row data
// and the shared index structures (stored as trees bound to the creating
// worker's hierarchy; other workers re-view them).
type sharedTable struct {
	name    string
	schema  *catalog.Schema
	data    *storage.TableData
	indexes map[string]*btree.Tree

	// statsMu guards the cached optimizer statistics below. It is
	// independent of the statement-scoped store lock: planning happens
	// under Shared.RLock on many workers at once, and the first planner
	// to need statistics computes them for everyone.
	statsMu sync.Mutex
	stats   *catalog.TableStats
}

// Shared is the table store of one database instance: everything that is
// common across workers. Engines are per-worker views created with View.
// mu is the statement-scoped lock described in the package documentation.
type Shared struct {
	Kind  Kind
	Knobs Knobs

	mu     sync.RWMutex
	tables map[string]*sharedTable
}

// NewShared creates an empty table store for the given profile and setting.
func NewShared(kind Kind, setting Setting) *Shared {
	return &Shared{
		Kind:   kind,
		Knobs:  KnobsFor(kind, setting),
		tables: make(map[string]*sharedTable),
	}
}

// RLock takes the statement-scoped read lock. Query execution holds it for
// the whole statement so DDL/DML cannot shift data under a running scan.
func (sh *Shared) RLock() { sh.mu.RLock() }

// RUnlock releases the statement-scoped read lock.
func (sh *Shared) RUnlock() { sh.mu.RUnlock() }

// Lock takes the store write lock (DDL/DML exclusion). The engine write
// entry points take it themselves; explicit use is for multi-statement
// critical sections.
func (sh *Shared) Lock() { sh.mu.Lock() }

// Unlock releases the store write lock.
func (sh *Shared) Unlock() { sh.mu.Unlock() }

// TableCount returns the number of tables in the store.
func (sh *Shared) TableCount() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.tables)
}

// Engine is one per-worker view of a database instance: the shared table
// store bound to one simulated machine through a private device, buffer pool
// and executor context.
type Engine struct {
	Kind  Kind
	Knobs Knobs
	M     *cpusim.Machine
	Dev   *storage.Device
	Pool  *storage.BufferPool
	Ctx   *exec.Ctx

	shared *Shared
	tables map[string]*Table // per-view table cache
	wal    *storage.WAL
}

// arenaBytes is the per-engine simulated address space (buffers, indexes,
// hash tables, scratch).
const arenaBytes = 3 << 30

// New creates an engine of the given profile at the given knob setting, with
// a store of its own. Additional workers attach to the same store with
// Shared().View(m).
func New(kind Kind, m *cpusim.Machine, setting Setting) *Engine {
	return NewShared(kind, setting).View(m)
}

// View creates an engine over this store bound to machine m. The view owns a
// fresh device, buffer pool and executor context, so its simulated accesses
// drive m alone; table data and index structure stay shared.
func (sh *Shared) View(m *cpusim.Machine) *Engine {
	dev := storage.NewDevice(m, arenaBytes)
	pool := storage.NewBufferPool(dev, sh.Knobs.BufferBytes, sh.Knobs.PageBytes)
	return &Engine{
		Kind:   sh.Kind,
		Knobs:  sh.Knobs,
		M:      m,
		Dev:    dev,
		Pool:   pool,
		Ctx:    exec.NewCtx(m, dev.Arena, costFor(sh.Kind)),
		shared: sh,
		tables: make(map[string]*Table),
	}
}

// Shared returns the table store behind this engine.
func (e *Engine) Shared() *Shared { return e.shared }

// CreateTable registers a table, taking the store write lock. MySQL's
// profile organizes rows under the clustered primary index; the others use
// plain heap files (SQLite's B-tree tables scan sequentially in rowid order,
// which the heap file reproduces).
func (e *Engine) CreateTable(name string, schema *catalog.Schema) *Table {
	sh := e.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	file := storage.NewHeapFile(e.Dev, e.Pool, schema, e.Knobs.TupleOverhead)
	sh.tables[name] = &sharedTable{
		name:    name,
		schema:  schema,
		data:    file.Data(),
		indexes: make(map[string]*btree.Tree),
	}
	t := &Table{
		Name:    name,
		File:    file,
		Indexes: make(map[string]*btree.Tree),
		schema:  schema,
	}
	e.tables[name] = t
	return t
}

// viewTable builds this engine's view of a shared table.
func (e *Engine) viewTable(st *sharedTable) *Table {
	t := &Table{
		Name:    st.name,
		File:    st.data.View(e.Dev, e.Pool),
		Indexes: make(map[string]*btree.Tree, len(st.indexes)),
		schema:  st.schema,
	}
	for col, tree := range st.indexes {
		t.Indexes[col] = tree.View(e.M.Hier)
	}
	return t
}

// Table fetches this engine's view of a table by name, building it on first
// use (and rebuilding when indexes were added through another view). Call it
// under the statement read lock, or from a context where no DDL can run.
func (e *Engine) Table(name string) (*Table, error) {
	st, ok := e.shared.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	t, ok := e.tables[name]
	if !ok || len(t.Indexes) != len(st.indexes) {
		t = e.viewTable(st)
		e.tables[name] = t
	}
	return t, nil
}

// MustTable fetches a statically-known table.
func (e *Engine) MustTable(name string) *Table {
	t, err := e.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Tables returns the number of tables in the store.
func (e *Engine) Tables() int { return e.shared.TableCount() }

// Insert appends a row, taking the store write lock.
func (e *Engine) Insert(t *Table, row value.Row) {
	sh := e.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	id := t.File.Append(row)
	for col, idx := range t.Indexes {
		ci := t.schema.MustColIndex(col)
		idx.Insert(row[ci], id)
	}
}

// CreateIndex builds a secondary index on one column, inserting existing
// rows. It takes the store write lock; the index becomes visible to every
// view of the store.
func (e *Engine) CreateIndex(t *Table, col string) *btree.Tree {
	sh := e.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ci := t.schema.MustColIndex(col)
	tree := btree.New(e.M.Hier, e.Dev.Arena, e.Knobs.PageBytes)
	for i := 0; i < t.File.RowCount(); i++ {
		row, err := t.File.ReadRow(i, true)
		if err != nil {
			panic(err)
		}
		tree.Insert(row[ci], i)
	}
	t.Indexes[col] = tree
	if st, ok := sh.tables[t.Name]; ok {
		st.indexes[col] = tree
	}
	return tree
}

// Scan builds a sequential scan with an optional pushed-down filter.
func (e *Engine) Scan(t *Table, filter exec.Expr) exec.Operator {
	return &exec.SeqScan{Ctx: e.Ctx, File: t.File, Filter: filter}
}

// IndexRange builds an index range scan over [lo, hi] on the indexed column
// (nil bounds are open).
func (e *Engine) IndexRange(t *Table, col string, lo, hi *value.Value, residual exec.Expr) (exec.Operator, error) {
	idx := t.Index(col)
	if idx == nil {
		return nil, fmt.Errorf("engine: table %q has no index on %q", t.Name, col)
	}
	return &exec.IndexScan{Ctx: e.Ctx, File: t.File, Tree: idx, Lo: lo, Hi: hi, Filter: residual}, nil
}

// joinHashThreshold is the probe-side cardinality above which the
// PostgreSQL and MySQL profiles prefer a hash join over an index join.
const joinHashThreshold = 64

// EquiJoin joins an outer operator to a stored table on outer[outerKey] ==
// inner[innerCol], picking the profile's strategy: SQLite always uses the
// index nested loop (its only strategy); PostgreSQL and MySQL build a hash
// table when the inner side is large, else use the index.
func (e *Engine) EquiJoin(outer exec.Operator, outerKey int, inner *Table, innerCol string, residual exec.Expr) exec.Operator {
	innerIdx := inner.schema.MustColIndex(innerCol)
	tree := inner.Index(innerCol)
	useIndex := tree != nil
	if e.Kind != SQLite && inner.File.RowCount() > 0 {
		// Cost-based: hash join wins when the inner table is scanned
		// anyway or matches are dense.
		if inner.File.RowCount() >= joinHashThreshold && !e.preferIndexJoin(inner) {
			useIndex = false
		}
	}
	if useIndex && tree != nil {
		return &exec.IndexJoin{
			Ctx: e.Ctx, Outer: outer, Inner: inner.File, Index: tree,
			OuterKey: outerKey, Residual: residual,
		}
	}
	// Hash join: build on the stored table, probe with the outer rows.
	// The joined row is probe columns then build columns, matching the
	// index-join layout, so callers index identically either way.
	return &exec.HashJoin{
		Ctx:      e.Ctx,
		Build:    e.Scan(inner, nil),
		Probe:    outer,
		BuildKey: []int{innerIdx},
		ProbeKey: []int{outerKey},
		Residual: residual,
	}
}

// preferIndexJoin reports whether the profile would rather chase the index
// (small tables stay index-joined even on PostgreSQL/MySQL).
func (e *Engine) preferIndexJoin(inner *Table) bool {
	return inner.File.RowCount() < joinHashThreshold
}

// Sort builds a sort node under the profile's work_mem (the simulation cost
// is the same; the knob is recorded for completeness).
func (e *Engine) Sort(child exec.Operator, keys []exec.SortKey) exec.Operator {
	return &exec.Sort{Ctx: e.Ctx, Child: child, Keys: keys}
}

// GroupBy builds a hash aggregation.
func (e *Engine) GroupBy(child exec.Operator, groupBy []exec.Expr, aggs []exec.AggSpec) exec.Operator {
	return &exec.GroupBy{Ctx: e.Ctx, Child: child, GroupBy: groupBy, Aggs: aggs}
}

// Run drains a plan with result display disabled (the paper's measurement
// methodology) and returns the row count.
func (e *Engine) Run(plan exec.Operator) (int, error) {
	return exec.Drain(plan)
}

// JournalMode selects the engine's durability mechanism for writes.
type JournalMode int

// Journal modes: PostgreSQL and MySQL log records to a write-ahead log;
// SQLite's default rollback journal copies each page image on first touch.
const (
	JournalWAL JournalMode = iota
	JournalRollback
)

// String names the mode.
func (j JournalMode) String() string {
	if j == JournalRollback {
		return "rollback-journal"
	}
	return "wal"
}

// Journal returns the engine's journal mode (by profile).
func (e *Engine) Journal() JournalMode {
	if e.Kind == SQLite {
		return JournalRollback
	}
	return JournalWAL
}

// ensureWAL lazily creates the log (read-only workloads never pay for it).
func (e *Engine) ensureWAL() *storage.WAL {
	if e.wal == nil {
		e.wal = storage.NewWAL(e.Dev)
	}
	return e.wal
}

// WAL exposes the engine's log for inspection (nil until the first write).
func (e *Engine) WAL() *storage.WAL { return e.wal }

// UpdateWhere updates every row matching pred: set receives the current row
// and returns the replacement. The write path is journaled per the
// engine's mode and committed once at the end (one statement = one
// transaction). Updated rows must not change indexed columns; the paper
// defers write-query analysis and so does this engine's index maintenance.
// The whole statement runs under the store write lock.
//
// It returns the number of rows updated.
func (e *Engine) UpdateWhere(t *Table, pred exec.Expr, set func(value.Row) value.Row) (int, error) {
	e.shared.mu.Lock()
	defer e.shared.mu.Unlock()
	wal := e.ensureWAL()
	journaled := make(map[int]bool) // pages copied to the rollback journal
	predNodes := 0
	if pred != nil {
		predNodes = pred.Nodes()
	}
	updated := 0
	for sc := t.File.Scan(); ; {
		row, id, ok := sc.Next()
		if !ok {
			break
		}
		e.Ctx.TupleCost()
		if pred != nil {
			e.Ctx.EvalCost(predNodes)
			if !exec.Truthy(pred.Eval(row)) {
				continue
			}
		}
		newRow := set(row.Clone())
		for col, idx := range t.Indexes {
			ci := t.schema.MustColIndex(col)
			if !value.Equal(row[ci], newRow[ci]) {
				return updated, fmt.Errorf("engine: UpdateWhere cannot change indexed column %q", col)
			}
			_ = idx
		}
		// Journal before modifying (write-ahead).
		switch e.Journal() {
		case JournalRollback:
			page := id / t.File.RowsPerPage()
			if !journaled[page] {
				journaled[page] = true
				wal.Append(e.Knobs.PageBytes) // whole page image
			}
		default:
			wal.Append(t.schema.RowWidth()) // logical record
		}
		if _, err := t.File.Update(id, newRow); err != nil {
			return updated, err
		}
		updated++
	}
	wal.Commit()
	return updated, nil
}

// Checkpoint flushes dirty buffer pages (and implicitly bounds recovery
// work), returning the number of pages written back.
func (e *Engine) Checkpoint() int {
	return e.Pool.Checkpoint()
}
