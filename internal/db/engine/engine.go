// Package engine assembles the storage and executor layers into the three
// database-system profiles the paper benchmarks: PostgreSQL 9.5, SQLite
// 3.14 and MySQL 8.0. One codebase implements all three; a profile sets the
// distinguishing behaviours the paper's Section 3 analysis attributes the
// energy differences to:
//
//   - SQLite: lean bytecode VM (low per-tuple overhead), sequential-scan
//     bias, index nested-loop joins only — the highest L1D energy share.
//   - PostgreSQL: heap tables + shared buffers, hash joins and sorts under
//     work_mem, moderate executor overhead.
//   - MySQL/InnoDB: clustered primary index, heavier per-row bookkeeping —
//     the highest E_other share.
//
// Knob settings follow Table 4, scaled 1:10 alongside the dataset size
// classes (see DESIGN.md).
//
// # Concurrency and transactions
//
// A database instance is split in two. Shared is the table store — schemas,
// row data (storage.TableData), index structure (btree shared halves), the
// transaction manager and the write-ahead log — and is what all workers see.
// Engine is a per-worker view over one Shared: it binds the store to one
// cpusim.Machine via a private device, buffer pool and executor context, so
// every simulated load, store and instruction cost a statement issues lands
// on that worker's PMU counters alone — the paper's Eq. 1 attribution
// depends on those counters advancing only for the statement being measured.
//
// Statements run under MVCC snapshot isolation, not a statement-scoped
// store lock. Readers resolve versioned tuple chains against the snapshot
// bound to their device (Device.Snap): autocommit statements take a fresh
// snapshot per statement (BeginRead), explicit transactions keep one
// snapshot from Begin to Commit/Rollback (repeatable reads). Writers never
// block readers; write-write conflicts abort the second writer
// (first-updater-wins, txn.ErrWriteConflict).
//
// Shared.mu is catalog-scoped only: it guards the tables map (CreateTable,
// CreateIndex, Table lookups), never statement execution. Lock order across
// the stack is engine (Shared.mu) → txn (Manager.commitMu) → storage
// (TableData.mu) → btree (tree shared mu); no layer calls back up.
//
// An individual Engine is still NOT goroutine-safe: one worker owns it, and
// all access to it (plan building, execution, transaction binding,
// counter/energy snapshots) must stay on that worker's goroutine. Snapshot
// APIs (memsim.Hierarchy.Counters, perfmon.Take, rapl sessions) return
// value copies, so snapshots taken on the owner goroutine may be diffed and
// read anywhere afterwards.
//
// DDL (CreateTable, CreateIndex, PlaceTopLevels) is assumed not to run
// concurrently with DML on the affected table: the benchmark harnesses and
// the server build their catalogs before serving statements.
package engine

import (
	"errors"
	"fmt"
	"sync"

	"energydb/internal/cpusim"
	"energydb/internal/db/btree"
	"energydb/internal/db/catalog"
	"energydb/internal/db/exec"
	"energydb/internal/db/storage"
	"energydb/internal/db/txn"
	"energydb/internal/db/value"
)

// Kind selects a database-system profile.
type Kind int

// Database systems under test.
const (
	PostgreSQL Kind = iota
	SQLite
	MySQL
)

// String names the system as the paper abbreviates it.
func (k Kind) String() string {
	switch k {
	case PostgreSQL:
		return "PostgreSQL"
	case SQLite:
		return "SQLite"
	case MySQL:
		return "MySQL"
	default:
		return "unknown"
	}
}

// Kinds lists all profiles in the paper's figure order.
func Kinds() []Kind { return []Kind{PostgreSQL, SQLite, MySQL} }

// Setting selects a Table 4 knob row.
type Setting int

// Knob settings.
const (
	SettingSmall Setting = iota
	SettingBaseline
	SettingLarge
)

// String names the setting.
func (s Setting) String() string {
	switch s {
	case SettingSmall:
		return "small"
	case SettingBaseline:
		return "baseline"
	case SettingLarge:
		return "large"
	default:
		return "unknown"
	}
}

// Settings lists all knob settings.
func Settings() []Setting { return []Setting{SettingSmall, SettingBaseline, SettingLarge} }

// Knobs are the resolved engine parameters (Table 4 rows, scaled 1:10 with
// the data).
type Knobs struct {
	// BufferBytes sizes the buffer pool: shared_buffers (PostgreSQL),
	// cache_size × page_size (SQLite), innodb_buffer_pool_size (MySQL).
	BufferBytes int
	// PageBytes is the page size: 8KB for PostgreSQL, page_size for
	// SQLite, innodb_page_size for MySQL.
	PageBytes int
	// WorkMemBytes bounds sort/hash memory (PostgreSQL work_mem; the
	// other engines derive a share of the buffer).
	WorkMemBytes int
	// TupleOverhead is the per-row on-page header width.
	TupleOverhead int
	// DisableVectorExec forces the planner to keep every operator on the
	// row-at-a-time path, ignoring the vectorized implementations (used by
	// the X7 experiment to isolate the vectorization effect).
	DisableVectorExec bool
}

// scale is the knob scale-down matching the dataset scale-down.
const scale = 10

// KnobsFor resolves Table 4 for a profile and setting.
func KnobsFor(kind Kind, setting Setting) Knobs {
	mb := func(n int) int { return n << 20 / scale }
	var k Knobs
	switch kind {
	case PostgreSQL:
		k.PageBytes = 8 << 10
		k.TupleOverhead = 24
		switch setting {
		case SettingSmall:
			k.BufferBytes, k.WorkMemBytes = mb(8), mb(4)
		case SettingBaseline:
			k.BufferBytes, k.WorkMemBytes = mb(128), mb(64)
		default:
			k.BufferBytes, k.WorkMemBytes = mb(1024), mb(512)
		}
	case SQLite:
		k.TupleOverhead = 6
		switch setting {
		case SettingSmall:
			k.PageBytes = 4 << 10
			k.BufferBytes = 2000 * k.PageBytes / scale
		case SettingBaseline:
			k.PageBytes = 8 << 10
			k.BufferBytes = 16000 * k.PageBytes / scale
		default:
			k.PageBytes = 16 << 10
			k.BufferBytes = 65000 * k.PageBytes / scale
		}
		k.WorkMemBytes = k.BufferBytes / 4
	case MySQL:
		k.TupleOverhead = 18
		switch setting {
		case SettingSmall:
			k.PageBytes = 4 << 10
			k.BufferBytes = mb(8)
		case SettingBaseline:
			k.PageBytes = 8 << 10
			k.BufferBytes = mb(128)
		default:
			k.PageBytes = 16 << 10
			k.BufferBytes = mb(1024)
		}
		k.WorkMemBytes = k.BufferBytes / 4
	}
	return k
}

// costFor returns the executor cost model of a profile. The numbers encode
// the Section 3.3 analysis: SQLite's VM is lean and scan-friendly;
// PostgreSQL and MySQL add per-tuple bookkeeping ("extra calculations" that
// "hinder hardware optimization"), lowering the L1D energy share and
// raising E_other.
func costFor(kind Kind) exec.CostModel {
	switch kind {
	case SQLite:
		// Lean bytecode VM: fewer instructions per tuple, but nearly all
		// its memory traffic hits the hot register file and cursor — the
		// highest L1D energy share of the three systems.
		return exec.CostModel{
			TupleInstr: 260, TupleLoads: 230, TupleStores: 115,
			EvalInstr: 14, EvalLoads: 10, EvalStores: 6,
			EmitRowCopy: true,
		}
	case PostgreSQL:
		// Heavier executor (slot deforming, memory contexts, expression
		// trees): more plain instructions per tuple, so a larger E_other.
		return exec.CostModel{
			TupleInstr: 560, TupleLoads: 250, TupleStores: 95,
			EvalInstr: 30, EvalLoads: 12, EvalStores: 5,
			EmitRowCopy: true,
		}
	default: // MySQL
		// The heaviest per-row bookkeeping (InnoDB record formats, latch
		// protocol): the highest E_other share of the three.
		return exec.CostModel{
			TupleInstr: 950, TupleLoads: 265, TupleStores: 95,
			EvalInstr: 38, EvalLoads: 13, EvalStores: 6,
			EmitRowCopy: true,
		}
	}
}

// Table is a stored table with optional secondary indexes.
type Table struct {
	Name    string
	File    *storage.HeapFile
	Indexes map[string]*btree.Tree
	schema  *catalog.Schema
}

// Schema returns the table schema.
func (t *Table) Schema() *catalog.Schema { return t.schema }

// Index returns the index on the named column, if any.
func (t *Table) Index(col string) *btree.Tree { return t.Indexes[col] }

// sharedTable is the cross-worker half of a table: schema, shared row data
// and the shared index structures (stored as trees bound to the creating
// worker's hierarchy; other workers re-view them).
type sharedTable struct {
	name    string
	schema  *catalog.Schema
	data    *storage.TableData
	indexes map[string]*btree.Tree

	// statsMu guards the cached optimizer statistics below. Planning
	// happens on many workers at once, and the first planner to need
	// statistics computes them for everyone.
	statsMu sync.Mutex
	stats   *catalog.TableStats
}

// Shared is the table store of one database instance: everything that is
// common across workers — tables, the transaction manager and the
// write-ahead log. Engines are per-worker views created with View. mu is
// catalog-scoped (it guards the tables map, never statement execution);
// statement isolation comes from MVCC snapshots, per the package
// documentation.
type Shared struct {
	Kind  Kind
	Knobs Knobs

	// Txns hands out snapshots and transaction IDs and drives
	// commit/abort of the version stamps.
	Txns *txn.Manager
	// Wal is the instance-wide write-ahead log. All sessions append to
	// the one log (as real engines do); each append/fsync is charged to
	// the calling worker's device so per-session energy attribution
	// stays exact.
	Wal *storage.WAL

	mu     sync.RWMutex
	tables map[string]*sharedTable
}

// NewShared creates an empty table store for the given profile and setting.
func NewShared(kind Kind, setting Setting) *Shared {
	return &Shared{
		Kind:   kind,
		Knobs:  KnobsFor(kind, setting),
		Txns:   txn.NewManager(),
		Wal:    storage.NewWAL(),
		tables: make(map[string]*sharedTable),
	}
}

// TableCount returns the number of tables in the store.
func (sh *Shared) TableCount() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.tables)
}

// Engine is one per-worker view of a database instance: the shared table
// store bound to one simulated machine through a private device, buffer pool
// and executor context.
type Engine struct {
	Kind  Kind
	Knobs Knobs
	M     *cpusim.Machine
	Dev   *storage.Device
	Pool  *storage.BufferPool
	Ctx   *exec.Ctx

	shared *Shared
	tables map[string]*Table // per-view table cache

	// tx is the explicit transaction bound to this worker, nil in
	// autocommit mode. While bound, the device snapshot is pinned to the
	// transaction's snapshot (repeatable reads + read-own-writes).
	tx *txn.Txn
}

// arenaBytes is the per-engine simulated address space (buffers, indexes,
// hash tables, scratch).
const arenaBytes = 3 << 30

// New creates an engine of the given profile at the given knob setting, with
// a store of its own. Additional workers attach to the same store with
// Shared().View(m).
func New(kind Kind, m *cpusim.Machine, setting Setting) *Engine {
	return NewShared(kind, setting).View(m)
}

// View creates an engine over this store bound to machine m. The view owns a
// fresh device, buffer pool and executor context, so its simulated accesses
// drive m alone; table data, index structure, transactions and the log stay
// shared.
func (sh *Shared) View(m *cpusim.Machine) *Engine {
	dev := storage.NewDevice(m, arenaBytes)
	pool := storage.NewBufferPool(dev, sh.Knobs.BufferBytes, sh.Knobs.PageBytes)
	return &Engine{
		Kind:   sh.Kind,
		Knobs:  sh.Knobs,
		M:      m,
		Dev:    dev,
		Pool:   pool,
		Ctx:    exec.NewCtx(m, dev.Arena, costFor(sh.Kind)),
		shared: sh,
		tables: make(map[string]*Table),
	}
}

// Shared returns the table store behind this engine.
func (e *Engine) Shared() *Shared { return e.shared }

// Begin opens an explicit transaction and binds it to this worker: until
// Commit or Rollback, every statement run through the engine reads the
// transaction's snapshot and writes under its ID.
func (e *Engine) Begin() *txn.Txn {
	t := e.shared.Txns.Begin()
	e.Bind(t)
	return t
}

// Bind pins the worker to an existing transaction (the server re-binds a
// session's transaction to its worker on every statement).
func (e *Engine) Bind(t *txn.Txn) {
	e.tx = t
	e.Dev.Snap = t.Snap()
}

// Unbind returns the worker to autocommit mode with a fresh read snapshot.
func (e *Engine) Unbind() {
	e.tx = nil
	e.Dev.Snap = e.shared.Txns.ReadSnap()
}

// Txn returns the transaction bound to this worker, nil in autocommit mode.
func (e *Engine) Txn() *txn.Txn { return e.tx }

// BeginRead establishes the snapshot for one read statement: autocommit
// statements see everything committed so far; inside an explicit
// transaction the snapshot stays pinned (repeatable reads). Call it before
// planning/running each statement.
func (e *Engine) BeginRead() {
	if e.tx == nil {
		e.Dev.Snap = e.shared.Txns.ReadSnap()
	}
}

// Commit makes t's writes durable and visible: the WAL commit record is
// appended and fsynced (group commit) on this worker's device, then the
// version stamps publish — each stamped version charged to this worker via
// Device.ChargeCommit, the mirror of Rollback's undo walk. Read-only
// transactions skip the log and the stamping entirely.
func (e *Engine) Commit(t *txn.Txn) error {
	if n := t.Writes(); n > 0 {
		e.shared.Wal.Commit(e.Dev, t.ID())
		e.Dev.ChargeCommit(n)
	}
	_, err := e.shared.Txns.Commit(t)
	e.Unbind()
	return err
}

// Rollback aborts t, unwinding its version-chain writes in reverse order.
// The undo walk and the WAL abort record are charged to this worker, so
// throwing work away costs energy in proportion to the work.
func (e *Engine) Rollback(t *txn.Txn) error {
	n := t.Writes()
	err := e.shared.Txns.Abort(t)
	if n > 0 {
		e.Dev.ChargeUndo(n)
		e.shared.Wal.Abort(e.Dev, t.ID())
	}
	e.Unbind()
	return err
}

// CreateTable registers a table, taking the catalog lock. MySQL's profile
// organizes rows under the clustered primary index; the others use plain
// heap files (SQLite's B-tree tables scan sequentially in rowid order,
// which the heap file reproduces).
func (e *Engine) CreateTable(name string, schema *catalog.Schema) *Table {
	sh := e.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	file := storage.NewHeapFile(e.Dev, e.Pool, schema, e.Knobs.TupleOverhead)
	sh.tables[name] = &sharedTable{
		name:    name,
		schema:  schema,
		data:    file.Data(),
		indexes: make(map[string]*btree.Tree),
	}
	t := &Table{
		Name:    name,
		File:    file,
		Indexes: make(map[string]*btree.Tree),
		schema:  schema,
	}
	e.tables[name] = t
	return t
}

// viewTable builds this engine's view of a shared table.
func (e *Engine) viewTable(st *sharedTable) *Table {
	t := &Table{
		Name:    st.name,
		File:    st.data.View(e.Dev, e.Pool),
		Indexes: make(map[string]*btree.Tree, len(st.indexes)),
		schema:  st.schema,
	}
	for col, tree := range st.indexes {
		t.Indexes[col] = tree.View(e.M.Hier)
	}
	return t
}

// Table fetches this engine's view of a table by name, building it on first
// use (and rebuilding when indexes were added through another view).
func (e *Engine) Table(name string) (*Table, error) {
	sh := e.shared
	sh.mu.RLock()
	st, ok := sh.tables[name]
	var nIdx int
	if ok {
		nIdx = len(st.indexes)
	}
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	t, ok := e.tables[name]
	if !ok || len(t.Indexes) != nIdx {
		t = e.viewTable(st)
		e.tables[name] = t
	}
	return t, nil
}

// MustTable fetches a statically-known table.
func (e *Engine) MustTable(name string) *Table {
	t, err := e.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Tables returns the number of tables in the store.
func (e *Engine) Tables() int { return e.shared.TableCount() }

// Insert bulk-loads a row outside any transaction (visible to every
// snapshot, no logging) — the TPC-H loader and test-fixture path. The
// storage and btree layers carry their own locks, so concurrent readers
// are safe; transactional inserts go through InsertTxn.
func (e *Engine) Insert(t *Table, row value.Row) {
	id := t.File.Append(row)
	for col, idx := range t.Indexes {
		ci := t.schema.MustColIndex(col)
		idx.Insert(row[ci], id)
	}
}

// InsertTxn appends a row under transaction tx: the new version is
// invisible to other snapshots until commit, and the insert is logged for
// replay. Index entries are published immediately (as in PostgreSQL);
// readers filter them through the heap visibility check.
func (e *Engine) InsertTxn(tx *txn.Txn, t *Table, row value.Row) int {
	e.Bind(tx)
	id := t.File.InsertTxn(tx, row)
	e.shared.Wal.Append(e.Dev, storage.LogRecord{
		Kind: storage.RecInsert, Txn: tx.ID(), Table: t.Name, Row: id, Data: row.Clone(),
	}, t.schema.RowWidth())
	for col, idx := range t.Indexes {
		ci := t.schema.MustColIndex(col)
		idx.Insert(row[ci], id)
	}
	return id
}

// Scan builds a sequential scan with an optional pushed-down filter.
func (e *Engine) Scan(t *Table, filter exec.Expr) exec.Operator {
	return &exec.SeqScan{Ctx: e.Ctx, File: t.File, Filter: filter}
}

// CreateIndex builds a secondary index on one column over the latest
// committed data, taking the catalog lock for the registration. It must not
// run concurrently with DML on the table (see the package documentation).
func (e *Engine) CreateIndex(t *Table, col string) *btree.Tree {
	ci := t.schema.MustColIndex(col)
	tree := btree.New(e.M.Hier, e.Dev.Arena, e.Knobs.PageBytes)
	prev := e.Dev.Snap
	e.Dev.Snap = txn.Latest()
	for i := 0; i < t.File.RowCount(); i++ {
		row, visible, err := t.File.ReadRow(i, true)
		if err != nil {
			e.Dev.Snap = prev
			panic(err)
		}
		if !visible {
			continue
		}
		tree.Insert(row[ci], i)
	}
	e.Dev.Snap = prev
	sh := e.shared
	sh.mu.Lock()
	t.Indexes[col] = tree
	if st, ok := sh.tables[t.Name]; ok {
		st.indexes[col] = tree
	}
	sh.mu.Unlock()
	return tree
}

// IndexRange builds an index range scan over [lo, hi] on the indexed column
// (nil bounds are open).
func (e *Engine) IndexRange(t *Table, col string, lo, hi *value.Value, residual exec.Expr) (exec.Operator, error) {
	idx := t.Index(col)
	if idx == nil {
		return nil, fmt.Errorf("engine: table %q has no index on %q", t.Name, col)
	}
	return &exec.IndexScan{Ctx: e.Ctx, File: t.File, Tree: idx, Lo: lo, Hi: hi, Filter: residual}, nil
}

// joinHashThreshold is the probe-side cardinality above which the
// PostgreSQL and MySQL profiles prefer a hash join over an index join.
const joinHashThreshold = 64

// EquiJoin joins an outer operator to a stored table on outer[outerKey] ==
// inner[innerCol], picking the profile's strategy: SQLite always uses the
// index nested loop (its only strategy); PostgreSQL and MySQL build a hash
// table when the inner side is large, else use the index.
func (e *Engine) EquiJoin(outer exec.Operator, outerKey int, inner *Table, innerCol string, residual exec.Expr) exec.Operator {
	innerIdx := inner.schema.MustColIndex(innerCol)
	tree := inner.Index(innerCol)
	useIndex := tree != nil
	if e.Kind != SQLite && inner.File.RowCount() > 0 {
		// Cost-based: hash join wins when the inner table is scanned
		// anyway or matches are dense.
		if inner.File.RowCount() >= joinHashThreshold && !e.preferIndexJoin(inner) {
			useIndex = false
		}
	}
	if useIndex && tree != nil {
		return &exec.IndexJoin{
			Ctx: e.Ctx, Outer: outer, Inner: inner.File, Index: tree,
			OuterKey: outerKey, Residual: residual,
		}
	}
	// Hash join: build on the stored table, probe with the outer rows.
	// The joined row is probe columns then build columns, matching the
	// index-join layout, so callers index identically either way.
	return &exec.HashJoin{
		Ctx:      e.Ctx,
		Build:    e.Scan(inner, nil),
		Probe:    outer,
		BuildKey: []int{innerIdx},
		ProbeKey: []int{outerKey},
		Residual: residual,
	}
}

// preferIndexJoin reports whether the profile would rather chase the index
// (small tables stay index-joined even on PostgreSQL/MySQL).
func (e *Engine) preferIndexJoin(inner *Table) bool {
	return inner.File.RowCount() < joinHashThreshold
}

// Sort builds a sort node under the profile's work_mem (the simulation cost
// is the same; the knob is recorded for completeness).
func (e *Engine) Sort(child exec.Operator, keys []exec.SortKey) exec.Operator {
	return &exec.Sort{Ctx: e.Ctx, Child: child, Keys: keys}
}

// GroupBy builds a hash aggregation.
func (e *Engine) GroupBy(child exec.Operator, groupBy []exec.Expr, aggs []exec.AggSpec) exec.Operator {
	return &exec.GroupBy{Ctx: e.Ctx, Child: child, GroupBy: groupBy, Aggs: aggs}
}

// Run establishes the statement snapshot and drains a plan with result
// display disabled (the paper's measurement methodology), returning the row
// count.
func (e *Engine) Run(plan exec.Operator) (int, error) {
	e.BeginRead()
	return exec.Drain(plan)
}

// JournalMode selects the engine's durability mechanism for writes.
type JournalMode int

// Journal modes: PostgreSQL and MySQL log records to a write-ahead log;
// SQLite's default rollback journal copies each page image on first touch.
const (
	JournalWAL JournalMode = iota
	JournalRollback
)

// String names the mode.
func (j JournalMode) String() string {
	if j == JournalRollback {
		return "rollback-journal"
	}
	return "wal"
}

// Journal returns the engine's journal mode (by profile).
func (e *Engine) Journal() JournalMode {
	if e.Kind == SQLite {
		return JournalRollback
	}
	return JournalWAL
}

// WAL exposes the instance-wide log (always present; read-only workloads
// simply never append to it).
func (e *Engine) WAL() *storage.WAL { return e.shared.Wal }

// journalPayload sizes one logged row change under the engine's journal
// mode: WAL engines log a logical record per row; the rollback journal
// copies the whole page image on the first touch of each page and rides it
// for later rows. journaled tracks first touches across one statement.
func (e *Engine) journalPayload(t *Table, id int, journaled map[int]bool) int {
	if e.Journal() == JournalRollback {
		page := id / t.File.RowsPerPage()
		if !journaled[page] {
			journaled[page] = true
			return e.Knobs.PageBytes
		}
	}
	return t.schema.RowWidth()
}

// UpdateWhereTxn updates every row matching pred under transaction tx: set
// receives the current row and returns the replacement. Each change is
// logged (write-ahead) before the version chain is touched. A write-write
// conflict aborts the statement with txn.ErrWriteConflict; the caller
// decides whether to roll the transaction back. Updated rows must not
// change indexed columns; the paper defers write-query analysis and so does
// this engine's index maintenance.
//
// It returns the number of rows updated.
func (e *Engine) UpdateWhereTxn(tx *txn.Txn, t *Table, pred exec.Expr, set func(value.Row) value.Row) (updated int, err error) {
	defer exec.RecoverCanceled(&err)
	e.Bind(tx)
	journaled := make(map[int]bool)
	predNodes := 0
	if pred != nil {
		predNodes = pred.Nodes()
	}
	for sc := t.File.Scan(); ; {
		row, id, ok := sc.Next()
		if !ok {
			break
		}
		e.Ctx.TupleCost()
		if pred != nil {
			e.Ctx.EvalCost(predNodes)
			if !exec.Truthy(pred.Eval(row)) {
				continue
			}
		}
		newRow := set(row.Clone())
		for col := range t.Indexes {
			ci := t.schema.MustColIndex(col)
			if !value.Equal(row[ci], newRow[ci]) {
				return updated, fmt.Errorf("engine: UpdateWhere cannot change indexed column %q", col)
			}
		}
		// Journal before modifying (write-ahead).
		e.shared.Wal.Append(e.Dev, storage.LogRecord{
			Kind: storage.RecUpdate, Txn: tx.ID(), Table: t.Name, Row: id, Data: newRow,
		}, e.journalPayload(t, id, journaled))
		if _, err := t.File.UpdateTxn(tx, id, newRow); err != nil {
			return updated, err
		}
		updated++
	}
	return updated, nil
}

// UpdateWhere is the autocommit form of UpdateWhereTxn: one statement, one
// transaction. Any error (including a write-write conflict) rolls back.
func (e *Engine) UpdateWhere(t *Table, pred exec.Expr, set func(value.Row) value.Row) (int, error) {
	tx := e.Begin()
	n, err := e.UpdateWhereTxn(tx, t, pred, set)
	if err != nil {
		if rbErr := e.Rollback(tx); rbErr != nil {
			return n, errors.Join(err, rbErr)
		}
		return n, err
	}
	if err := e.Commit(tx); err != nil {
		return n, err
	}
	return n, nil
}

// DeleteWhereTxn deletes every row matching pred under transaction tx,
// logging each delete (write-ahead). Conflict semantics match
// UpdateWhereTxn. It returns the number of rows deleted.
func (e *Engine) DeleteWhereTxn(tx *txn.Txn, t *Table, pred exec.Expr) (deleted int, err error) {
	defer exec.RecoverCanceled(&err)
	e.Bind(tx)
	journaled := make(map[int]bool)
	predNodes := 0
	if pred != nil {
		predNodes = pred.Nodes()
	}
	for sc := t.File.Scan(); ; {
		row, id, ok := sc.Next()
		if !ok {
			break
		}
		e.Ctx.TupleCost()
		if pred != nil {
			e.Ctx.EvalCost(predNodes)
			if !exec.Truthy(pred.Eval(row)) {
				continue
			}
		}
		e.shared.Wal.Append(e.Dev, storage.LogRecord{
			Kind: storage.RecDelete, Txn: tx.ID(), Table: t.Name, Row: id,
		}, e.journalPayload(t, id, journaled))
		if err := t.File.DeleteTxn(tx, id); err != nil {
			return deleted, err
		}
		deleted++
	}
	return deleted, nil
}

// DeleteWhere is the autocommit form of DeleteWhereTxn.
func (e *Engine) DeleteWhere(t *Table, pred exec.Expr) (int, error) {
	tx := e.Begin()
	n, err := e.DeleteWhereTxn(tx, t, pred)
	if err != nil {
		if rbErr := e.Rollback(tx); rbErr != nil {
			return n, errors.Join(err, rbErr)
		}
		return n, err
	}
	if err := e.Commit(tx); err != nil {
		return n, err
	}
	return n, nil
}

// Recover replays durable log records (storage.WAL.Durable) after a crash:
// committed transactions are re-applied in log order, transactions with no
// durable commit record are rolled back. The replayed work drives this
// worker's device — charged once, here — and appends nothing back to the
// log (the records are already durable). Inserts land on their original
// slot ids so later records address the right rows. It returns the number
// of row changes applied.
func (e *Engine) Recover(records []storage.LogRecord) (applied int, err error) {
	defer exec.RecoverCanceled(&err)
	open := make(map[uint64]*txn.Txn)
	for i, rec := range records {
		e.Ctx.PollEvery(i)
		switch rec.Kind {
		case storage.RecCommit:
			if tx := open[rec.Txn]; tx != nil {
				delete(open, rec.Txn)
				if _, err := e.shared.Txns.Commit(tx); err != nil {
					return applied, err
				}
			}
		case storage.RecAbort:
			if tx := open[rec.Txn]; tx != nil {
				delete(open, rec.Txn)
				if err := e.shared.Txns.Abort(tx); err != nil {
					return applied, err
				}
			}
		default:
			tx := open[rec.Txn]
			if tx == nil {
				// Replay order mirrors original append order, so the
				// lazy Begin sees every commit that preceded this
				// transaction's first write.
				tx = e.shared.Txns.Begin()
				open[rec.Txn] = tx
			}
			t, terr := e.Table(rec.Table)
			if terr != nil {
				return applied, terr
			}
			switch rec.Kind {
			case storage.RecInsert:
				if err := t.File.InsertAtTxn(tx, rec.Row, rec.Data); err != nil {
					return applied, err
				}
				for col, idx := range t.Indexes {
					ci := t.schema.MustColIndex(col)
					idx.Insert(rec.Data[ci], rec.Row)
				}
			case storage.RecUpdate:
				if _, err := t.File.UpdateTxn(tx, rec.Row, rec.Data); err != nil {
					return applied, err
				}
			case storage.RecDelete:
				if err := t.File.DeleteTxn(tx, rec.Row); err != nil {
					return applied, err
				}
			}
			applied++
		}
	}
	// Transactions whose commit record did not survive the crash lose.
	for _, tx := range open {
		n := tx.Writes()
		if err := e.shared.Txns.Abort(tx); err != nil {
			return applied, err
		}
		e.Dev.ChargeUndo(n)
	}
	e.Unbind()
	return applied, nil
}

// Checkpoint flushes dirty buffer pages (and implicitly bounds recovery
// work), returning the number of pages written back.
func (e *Engine) Checkpoint() int {
	return e.Pool.Checkpoint()
}
