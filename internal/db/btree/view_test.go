package btree

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// TestTreeView checks per-hierarchy views: a view sees the shared node
// structure (same entries, same shape) while its descents drive its own
// hierarchy's counters, not the builder's.
func TestTreeView(t *testing.T) {
	tr := newTree(t, 4096)
	for i := 0; i < 5000; i++ {
		tr.Insert(value.Int(int64(i)), i)
	}

	other := cpusim.NewMachine(cpusim.IntelI7_4790())
	v := tr.View(other.Hier)
	if v.Len() != tr.Len() || v.Height() != tr.Height() || v.Order() != tr.Order() {
		t.Fatalf("view shape (%d,%d,%d) != base shape (%d,%d,%d)",
			v.Len(), v.Height(), v.Order(), tr.Len(), tr.Height(), tr.Order())
	}

	baseBefore := tr.h.Counters()
	otherBefore := other.Hier.Counters()
	if ids := v.Lookup(value.Int(4321)); len(ids) != 1 || ids[0] != 4321 {
		t.Fatalf("view lookup = %v, want [4321]", ids)
	}
	if tr.h.Counters() != baseBefore {
		t.Fatal("view lookup advanced the builder's counters")
	}
	if other.Hier.Counters() == otherBefore {
		t.Fatal("view lookup did not advance the view's counters")
	}

	// Inserts through the view are visible to the base (same structure).
	v.Insert(value.Int(999999), 5000)
	if ids := tr.Lookup(value.Int(999999)); len(ids) != 1 || ids[0] != 5000 {
		t.Fatalf("base lookup after view insert = %v, want [5000]", ids)
	}
}

// TestTreeViewIteration checks a full in-order walk through a view matches
// the base.
func TestTreeViewIteration(t *testing.T) {
	tr := newTree(t, 512)
	const n = 1000
	for i := n - 1; i >= 0; i-- {
		tr.Insert(value.Int(int64(i)), i)
	}
	v := tr.View(memsim.New(memsim.I7_4790()))
	i := 0
	for it := v.First(); it.Valid(); it.Next() {
		if it.RowID() != i {
			t.Fatalf("view iteration position %d has rowID %d", i, it.RowID())
		}
		i++
	}
	if i != n {
		t.Fatalf("view iteration saw %d entries, want %d", i, n)
	}
}
