// Package btree implements a B+tree over simulated memory. It backs the
// engines' clustered tables and secondary indexes. Every node carries a
// simulated address; descents issue dependent (pointer-chasing) loads and
// leaf scans issue streaming loads, reproducing the locality contrast the
// paper observes between index scan and table scan (Section 3.3).
//
// The tree also supports relocating its top layers into a TCM window — the
// Section 4.2 co-design places "the root and first few layers of the B-tree
// of current tables" into DTCM.
//
// # Sharing model
//
// The node structure (keys, row ids, simulated addresses) lives in a shared
// half; a Tree is a per-hierarchy view over it. Workers attach views of one
// shared index with View, so all of them descend the same structure while
// every simulated load and store drives the view's own machine. The shared
// structure carries no internal lock: callers must hold the owning store's
// read lock across Seek/Lookup/iteration and its write lock across
// Insert/PlaceTopLevels — engine.Shared enforces exactly that contract.
package btree

import (
	"sort"

	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// entryBytes is the on-node width of one (key, pointer) entry.
const entryBytes = 16

// nodeHeaderBytes is the on-node header width.
const nodeHeaderBytes = 16

// Tree is a B+tree view mapping composite keys to row ids: the node
// structure is shared, the hierarchy the traversals drive is the view's own.
type Tree struct {
	h *memsim.Hierarchy
	s *shared
}

// shared is the cross-view tree structure.
type shared struct {
	arena  *memsim.Arena
	order  int // max children per interior node / entries per leaf
	root   *node
	height int
	size   int
}

type node struct {
	addr   uint64
	leaf   bool
	keys   []value.Value // first key component only, for ordering
	full   []value.Row   // full composite keys (leaf only when composite)
	kids   []*node       // interior
	rowIDs []int         // leaf
	next   *node         // leaf chain
}

// New creates an empty tree whose nodes fit the given page size.
func New(h *memsim.Hierarchy, arena *memsim.Arena, pageSize int) *Tree {
	order := (pageSize - nodeHeaderBytes) / entryBytes
	if order < 8 {
		order = 8
	}
	t := &Tree{h: h, s: &shared{arena: arena, order: order}}
	t.s.root = t.newNode(true)
	t.s.height = 1
	return t
}

// View returns a tree over the same shared node structure whose simulated
// accesses drive h instead of the receiver's hierarchy. Views are cheap to
// create and safe to use concurrently under the owning store's lock.
func (t *Tree) View(h *memsim.Hierarchy) *Tree {
	return &Tree{h: h, s: t.s}
}

func (t *Tree) newNode(leaf bool) *node {
	size := nodeHeaderBytes + t.s.order*entryBytes
	return &node{
		addr: t.s.arena.Alloc(uint64(size), memsim.LineSize),
		leaf: leaf,
	}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.s.size }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.s.height }

// Order returns the node fanout.
func (t *Tree) Order() int { return t.s.order }

// Insert adds (key, rowID). Keys may repeat; entries with equal keys are
// kept in insertion order. The simulated descent and node writes are issued.
func (t *Tree) Insert(key value.Value, rowID int) {
	t.s.size++
	split, sep := t.insert(t.s.root, key, rowID)
	if split != nil {
		newRoot := t.newNode(false)
		newRoot.keys = []value.Value{sep}
		newRoot.kids = []*node{t.s.root, split}
		t.s.root = newRoot
		t.s.height++
		t.h.StoreRange(newRoot.addr, uint64(nodeHeaderBytes+2*entryBytes))
	}
}

func (t *Tree) insert(n *node, key value.Value, rowID int) (*node, value.Value) {
	t.touchNode(n, len(n.keys))
	if n.leaf {
		idx := sort.Search(len(n.keys), func(i int) bool {
			return value.Compare(n.keys[i], key) > 0
		})
		n.keys = insertAt(n.keys, idx, key)
		n.rowIDs = insertIntAt(n.rowIDs, idx, rowID)
		t.h.StoreRange(n.addr+uint64(nodeHeaderBytes+idx*entryBytes), entryBytes)
		if len(n.keys) <= t.s.order {
			return nil, value.Value{}
		}
		return t.splitLeaf(n)
	}
	idx := sort.Search(len(n.keys), func(i int) bool {
		return value.Compare(n.keys[i], key) > 0
	})
	child := n.kids[idx]
	split, sep := t.insert(child, key, rowID)
	if split == nil {
		return nil, value.Value{}
	}
	n.keys = insertAt(n.keys, idx, sep)
	n.kids = insertNodeAt(n.kids, idx+1, split)
	t.h.StoreRange(n.addr+uint64(nodeHeaderBytes+idx*entryBytes), entryBytes)
	if len(n.kids) <= t.s.order {
		return nil, value.Value{}
	}
	return t.splitInterior(n)
}

func (t *Tree) splitLeaf(n *node) (*node, value.Value) {
	mid := len(n.keys) / 2
	right := t.newNode(true)
	right.keys = append(right.keys, n.keys[mid:]...)
	right.rowIDs = append(right.rowIDs, n.rowIDs[mid:]...)
	n.keys = n.keys[:mid]
	n.rowIDs = n.rowIDs[:mid]
	right.next = n.next
	n.next = right
	t.h.StoreRange(right.addr, uint64(nodeHeaderBytes+len(right.keys)*entryBytes))
	return right, right.keys[0]
}

func (t *Tree) splitInterior(n *node) (*node, value.Value) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := t.newNode(false)
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.kids = append(right.kids, n.kids[mid+1:]...)
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	t.h.StoreRange(right.addr, uint64(nodeHeaderBytes+len(right.keys)*entryBytes))
	return right, sep
}

// touchNode simulates reading a node during a descent: a dependent load of
// the header plus the binary-search probes within the node.
func (t *Tree) touchNode(n *node, entries int) {
	t.h.Load(n.addr, true)
	probes := 1
	for e := entries; e > 1; e >>= 1 {
		probes++
	}
	for i := 0; i < probes; i++ {
		off := uint64(nodeHeaderBytes + (i*37%maxInt(entries, 1))*entryBytes)
		t.h.Load(n.addr+off, true)
	}
	t.h.Exec(uint64(probes), memsim.InstrOther) // comparisons
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Seek positions at the first entry with key >= target and returns an
// iterator. The descent issues dependent loads at each level.
func (t *Tree) Seek(target value.Value) *Iter {
	n := t.s.root
	for !n.leaf {
		t.touchNode(n, len(n.keys))
		// Descend into the leftmost child that can hold target:
		// duplicates equal to a separator may live in the child left
		// of it, so the interior search uses >=.
		idx := sort.Search(len(n.keys), func(i int) bool {
			return value.Compare(n.keys[i], target) >= 0
		})
		n = n.kids[idx]
	}
	t.touchNode(n, len(n.keys))
	idx := sort.Search(len(n.keys), func(i int) bool {
		return value.Compare(n.keys[i], target) >= 0
	})
	it := &Iter{t: t, n: n, idx: idx}
	// The first >= entry may live in a later leaf.
	for it.n != nil && it.idx >= len(it.n.keys) {
		it.n = it.n.next
		it.idx = 0
		if it.n != nil {
			t.h.Load(it.n.addr, true)
		}
	}
	return it
}

// First returns an iterator at the smallest entry.
func (t *Tree) First() *Iter {
	n := t.s.root
	for !n.leaf {
		t.touchNode(n, len(n.keys))
		n = n.kids[0]
	}
	t.touchNode(n, len(n.keys))
	return &Iter{t: t, n: n}
}

// Lookup returns the rowIDs of entries equal to key.
func (t *Tree) Lookup(key value.Value) []int {
	var out []int
	for it := t.Seek(key); it.Valid(); it.Next() {
		if value.Compare(it.Key(), key) != 0 {
			break
		}
		out = append(out, it.RowID())
	}
	return out
}

// Iter walks leaf entries in key order.
type Iter struct {
	t   *Tree
	n   *node
	idx int
}

// Valid reports whether the iterator points at an entry.
func (it *Iter) Valid() bool {
	return it.n != nil && it.idx < len(it.n.keys)
}

// Key returns the current key.
func (it *Iter) Key() value.Value { return it.n.keys[it.idx] }

// RowID returns the current row id.
func (it *Iter) RowID() int { return it.n.rowIDs[it.idx] }

// Next advances, issuing a streaming load within the leaf and a dependent
// load when hopping to the next leaf.
func (it *Iter) Next() {
	it.idx++
	if it.idx < len(it.n.keys) {
		it.t.h.Load(it.n.addr+uint64(nodeHeaderBytes+it.idx*entryBytes), false)
		return
	}
	it.n = it.n.next
	it.idx = 0
	if it.n != nil {
		it.t.h.Load(it.n.addr, true)
	}
}

// PlaceTopLevels relocates the root and as many upper levels as fit into
// addresses drawn from the given allocator (a DTCM arena in the Section 4
// co-design). It returns the number of nodes moved. Allocation stops when
// the budget runs out; lower levels keep their ordinary addresses.
func (t *Tree) PlaceTopLevels(alloc func(size uint64) (uint64, bool)) int {
	moved := 0
	levelNodes := []*node{t.s.root}
	for len(levelNodes) > 0 {
		next := make([]*node, 0, len(levelNodes)*4)
		for _, n := range levelNodes {
			size := uint64(nodeHeaderBytes + t.s.order*entryBytes)
			addr, ok := alloc(size)
			if !ok {
				return moved
			}
			n.addr = addr
			moved++
			if !n.leaf {
				next = append(next, n.kids...)
			}
		}
		levelNodes = next
	}
	return moved
}

func insertAt(s []value.Value, i int, v value.Value) []value.Value {
	s = append(s, value.Value{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertIntAt(s []int, i, v int) []int {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNodeAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
