// Package btree implements a B+tree over simulated memory. It backs the
// engines' clustered tables and secondary indexes. Every node carries a
// simulated address; descents issue dependent (pointer-chasing) loads and
// leaf scans issue streaming loads, reproducing the locality contrast the
// paper observes between index scan and table scan (Section 3.3).
//
// The tree also supports relocating its top layers into a TCM window — the
// Section 4.2 co-design places "the root and first few layers of the B-tree
// of current tables" into DTCM.
//
// # Sharing model
//
// The node structure (keys, row ids, simulated addresses) lives in a shared
// half; a Tree is a per-hierarchy view over it. Workers attach views of one
// shared index with View, so all of them descend the same structure while
// every simulated load and store drives the view's own machine.
//
// Concurrency is copy-on-write: Insert clones every node it modifies
// (reusing the node's simulated address, so the energy stream is identical
// to an in-place write) and publishes a new root under the shared half's
// internal lock. Published nodes are immutable, so a reader captures the
// root once and traverses a consistent snapshot of the whole tree without
// holding any lock — index scans never block behind inserts, and an
// iterator never observes a half-applied split. Entries inserted after the
// root capture are simply absent from that snapshot, which is exactly the
// MVCC contract: such entries belong to concurrent transactions whose
// versions the reader's snapshot filters out anyway.
//
// PlaceTopLevels is the one exception: it rewrites node addresses in place
// and must not run concurrently with readers (it is a load-time/experiment
// path).
package btree

import (
	"sort"
	"sync"

	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// entryBytes is the on-node width of one (key, pointer) entry.
const entryBytes = 16

// nodeHeaderBytes is the on-node header width.
const nodeHeaderBytes = 16

// Tree is a B+tree view mapping composite keys to row ids: the node
// structure is shared, the hierarchy the traversals drive is the view's own.
type Tree struct {
	h *memsim.Hierarchy
	s *shared
}

// shared is the cross-view tree structure. mu guards root/size/height;
// nodes reachable from a published root are immutable (copy-on-write).
type shared struct {
	mu     sync.RWMutex
	arena  *memsim.Arena
	order  int // max children per interior node / entries per leaf
	root   *node
	height int
	size   int
}

type node struct {
	addr   uint64
	leaf   bool
	keys   []value.Value // first key component only, for ordering
	kids   []*node       // interior
	rowIDs []int         // leaf
}

// clone returns a mutable copy of n at the same simulated address. The
// original stays immutable for readers holding older roots.
func (n *node) clone() *node {
	c := &node{addr: n.addr, leaf: n.leaf}
	c.keys = append([]value.Value(nil), n.keys...)
	if n.leaf {
		c.rowIDs = append([]int(nil), n.rowIDs...)
	} else {
		c.kids = append([]*node(nil), n.kids...)
	}
	return c
}

// New creates an empty tree whose nodes fit the given page size.
func New(h *memsim.Hierarchy, arena *memsim.Arena, pageSize int) *Tree {
	order := (pageSize - nodeHeaderBytes) / entryBytes
	if order < 8 {
		order = 8
	}
	t := &Tree{h: h, s: &shared{arena: arena, order: order}}
	t.s.root = t.newNode(true)
	t.s.height = 1
	return t
}

// View returns a tree over the same shared node structure whose simulated
// accesses drive h instead of the receiver's hierarchy. Views are cheap to
// create and safe to use concurrently.
func (t *Tree) View(h *memsim.Hierarchy) *Tree {
	return &Tree{h: h, s: t.s}
}

func (t *Tree) newNode(leaf bool) *node {
	size := nodeHeaderBytes + t.s.order*entryBytes
	return &node{
		addr: t.s.arena.Alloc(uint64(size), memsim.LineSize),
		leaf: leaf,
	}
}

// snapshotRoot captures the current published root; everything reachable
// from it is immutable.
func (t *Tree) snapshotRoot() *node {
	t.s.mu.RLock()
	defer t.s.mu.RUnlock()
	return t.s.root
}

// Len returns the number of entries.
func (t *Tree) Len() int {
	t.s.mu.RLock()
	defer t.s.mu.RUnlock()
	return t.s.size
}

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int {
	t.s.mu.RLock()
	defer t.s.mu.RUnlock()
	return t.s.height
}

// Order returns the node fanout.
func (t *Tree) Order() int { return t.s.order }

// Insert adds (key, rowID). Keys may repeat; entries with equal keys are
// kept in insertion order. The simulated descent and node writes are issued
// against the inserting view's hierarchy; structurally the insert is
// copy-on-write (see the package comment), so concurrent readers keep a
// consistent snapshot.
func (t *Tree) Insert(key value.Value, rowID int) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.s.size++
	root, split, sep := t.insert(t.s.root, key, rowID)
	if split != nil {
		newRoot := t.newNode(false)
		newRoot.keys = []value.Value{sep}
		newRoot.kids = []*node{root, split}
		root = newRoot
		t.s.height++
		t.h.StoreRange(newRoot.addr, uint64(nodeHeaderBytes+2*entryBytes))
	}
	t.s.root = root
}

// insert returns the cloned replacement for n with (key, rowID) added, plus
// a split sibling when n overflowed.
func (t *Tree) insert(n *node, key value.Value, rowID int) (*node, *node, value.Value) {
	t.touchNode(n, len(n.keys))
	c := n.clone()
	if c.leaf {
		idx := sort.Search(len(c.keys), func(i int) bool {
			return value.Compare(c.keys[i], key) > 0
		})
		c.keys = insertAt(c.keys, idx, key)
		c.rowIDs = insertIntAt(c.rowIDs, idx, rowID)
		t.h.StoreRange(c.addr+uint64(nodeHeaderBytes+idx*entryBytes), entryBytes)
		if len(c.keys) <= t.s.order {
			return c, nil, value.Value{}
		}
		right, sep := t.splitLeaf(c)
		return c, right, sep
	}
	idx := sort.Search(len(c.keys), func(i int) bool {
		return value.Compare(c.keys[i], key) > 0
	})
	child, split, sep := t.insert(c.kids[idx], key, rowID)
	c.kids[idx] = child
	if split == nil {
		return c, nil, value.Value{}
	}
	c.keys = insertAt(c.keys, idx, sep)
	c.kids = insertNodeAt(c.kids, idx+1, split)
	t.h.StoreRange(c.addr+uint64(nodeHeaderBytes+idx*entryBytes), entryBytes)
	if len(c.kids) <= t.s.order {
		return c, nil, value.Value{}
	}
	right, rsep := t.splitInterior(c)
	return c, right, rsep
}

func (t *Tree) splitLeaf(n *node) (*node, value.Value) {
	mid := len(n.keys) / 2
	right := t.newNode(true)
	right.keys = append(right.keys, n.keys[mid:]...)
	right.rowIDs = append(right.rowIDs, n.rowIDs[mid:]...)
	n.keys = n.keys[:mid]
	n.rowIDs = n.rowIDs[:mid]
	t.h.StoreRange(right.addr, uint64(nodeHeaderBytes+len(right.keys)*entryBytes))
	return right, right.keys[0]
}

func (t *Tree) splitInterior(n *node) (*node, value.Value) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := t.newNode(false)
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.kids = append(right.kids, n.kids[mid+1:]...)
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	t.h.StoreRange(right.addr, uint64(nodeHeaderBytes+len(right.keys)*entryBytes))
	return right, sep
}

// touchNode simulates reading a node during a descent: a dependent load of
// the header plus the binary-search probes within the node.
func (t *Tree) touchNode(n *node, entries int) {
	t.h.Load(n.addr, true)
	probes := 1
	for e := entries; e > 1; e >>= 1 {
		probes++
	}
	for i := 0; i < probes; i++ {
		off := uint64(nodeHeaderBytes + (i*37%maxInt(entries, 1))*entryBytes)
		t.h.Load(n.addr+off, true)
	}
	t.h.Exec(uint64(probes), memsim.InstrOther) // comparisons
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// frame is one interior level of an iterator's descent path.
type frame struct {
	n   *node
	idx int
}

// Seek positions at the first entry with key >= target and returns an
// iterator over the tree snapshot current at the call. The descent issues
// dependent loads at each level.
func (t *Tree) Seek(target value.Value) *Iter {
	it := &Iter{t: t}
	n := t.snapshotRoot()
	for !n.leaf {
		t.touchNode(n, len(n.keys))
		// Descend into the leftmost child that can hold target:
		// duplicates equal to a separator may live in the child left
		// of it, so the interior search uses >=.
		idx := sort.Search(len(n.keys), func(i int) bool {
			return value.Compare(n.keys[i], target) >= 0
		})
		it.stack = append(it.stack, frame{n, idx})
		n = n.kids[idx]
	}
	t.touchNode(n, len(n.keys))
	it.n = n
	it.idx = sort.Search(len(n.keys), func(i int) bool {
		return value.Compare(n.keys[i], target) >= 0
	})
	// The first >= entry may live in a later leaf.
	for it.n != nil && it.idx >= len(it.n.keys) {
		it.advanceLeaf()
	}
	return it
}

// First returns an iterator at the smallest entry of the current snapshot.
func (t *Tree) First() *Iter {
	it := &Iter{t: t}
	n := t.snapshotRoot()
	for !n.leaf {
		t.touchNode(n, len(n.keys))
		it.stack = append(it.stack, frame{n, 0})
		n = n.kids[0]
	}
	t.touchNode(n, len(n.keys))
	it.n = n
	return it
}

// Lookup returns the rowIDs of entries equal to key.
func (t *Tree) Lookup(key value.Value) []int {
	var out []int
	for it := t.Seek(key); it.Valid(); it.Next() {
		if value.Compare(it.Key(), key) != 0 {
			break
		}
		out = append(out, it.RowID())
	}
	return out
}

// Iter walks leaf entries in key order over one immutable tree snapshot:
// the descent path is kept as a stack, so no sibling pointers are needed
// and a concurrent insert can never tear the traversal.
type Iter struct {
	t     *Tree
	stack []frame
	n     *node
	idx   int
}

// Valid reports whether the iterator points at an entry.
func (it *Iter) Valid() bool {
	return it.n != nil && it.idx < len(it.n.keys)
}

// Key returns the current key.
func (it *Iter) Key() value.Value { return it.n.keys[it.idx] }

// RowID returns the current row id.
func (it *Iter) RowID() int { return it.n.rowIDs[it.idx] }

// advanceLeaf moves to the next leaf in key order via the descent stack,
// charging one dependent load for the leaf hop (the on-disk structure's
// sibling link).
func (it *Iter) advanceLeaf() {
	//lint:nocharge stack pops revisit interior nodes charged during the descent; the leaf hop below charges its dependent load
	for len(it.stack) > 0 {
		top := &it.stack[len(it.stack)-1]
		top.idx++
		if top.idx < len(top.n.kids) {
			n := top.n.kids[top.idx]
			for !n.leaf {
				it.stack = append(it.stack, frame{n, 0})
				n = n.kids[0]
			}
			it.n = n
			it.idx = 0
			it.t.h.Load(n.addr, true)
			return
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	it.n = nil
	it.idx = 0
}

// Next advances, issuing a streaming load within the leaf and a dependent
// load when hopping to the next leaf.
func (it *Iter) Next() {
	it.idx++
	if it.idx < len(it.n.keys) {
		it.t.h.Load(it.n.addr+uint64(nodeHeaderBytes+it.idx*entryBytes), false)
		return
	}
	it.advanceLeaf()
	for it.n != nil && len(it.n.keys) == 0 {
		it.advanceLeaf()
	}
}

// PlaceTopLevels relocates the root and as many upper levels as fit into
// addresses drawn from the given allocator (a DTCM arena in the Section 4
// co-design). It returns the number of nodes moved. Allocation stops when
// the budget runs out; lower levels keep their ordinary addresses.
//
// Unlike Insert this rewrites node addresses in place: it must not run
// concurrently with readers (it is a load-time / experiment-harness path).
func (t *Tree) PlaceTopLevels(alloc func(size uint64) (uint64, bool)) int {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	moved := 0
	levelNodes := []*node{t.s.root}
	for len(levelNodes) > 0 {
		next := make([]*node, 0, len(levelNodes)*4)
		for _, n := range levelNodes {
			size := uint64(nodeHeaderBytes + t.s.order*entryBytes)
			addr, ok := alloc(size)
			if !ok {
				return moved
			}
			n.addr = addr
			moved++
			if !n.leaf {
				next = append(next, n.kids...)
			}
		}
		levelNodes = next
	}
	return moved
}

func insertAt(s []value.Value, i int, v value.Value) []value.Value {
	s = append(s, value.Value{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertIntAt(s []int, i, v int) []int {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNodeAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
