package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"energydb/internal/cpusim"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

func newTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	arena := memsim.NewArena(1<<33, 512<<20)
	return New(m.Hier, arena, pageSize)
}

func TestInsertLookup(t *testing.T) {
	tr := newTree(t, 4096)
	for i := 0; i < 10000; i++ {
		tr.Insert(value.Int(int64(i*7%10000)), i)
	}
	if tr.Len() != 10000 {
		t.Fatalf("len = %d", tr.Len())
	}
	ids := tr.Lookup(value.Int(21))
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("lookup(21) = %v, want [3]", ids)
	}
	if got := tr.Lookup(value.Int(10001)); got != nil {
		t.Fatalf("lookup(missing) = %v", got)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := newTree(t, 4096)
	for i := 0; i < 100; i++ {
		tr.Insert(value.Int(42), i)
	}
	tr.Insert(value.Int(41), 1000)
	tr.Insert(value.Int(43), 1001)
	if got := len(tr.Lookup(value.Int(42))); got != 100 {
		t.Fatalf("duplicates found = %d, want 100", got)
	}
}

func TestOrderedIteration(t *testing.T) {
	tr := newTree(t, 1024)
	rng := rand.New(rand.NewSource(9))
	keys := rng.Perm(5000)
	for i, k := range keys {
		tr.Insert(value.Int(int64(k)), i)
	}
	var got []int64
	for it := tr.First(); it.Valid(); it.Next() {
		got = append(got, it.Key().I)
	}
	if len(got) != 5000 {
		t.Fatalf("iterated %d entries", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("iteration out of order")
	}
}

func TestSeekRange(t *testing.T) {
	tr := newTree(t, 1024)
	for i := 0; i < 1000; i++ {
		tr.Insert(value.Int(int64(i*2)), i) // even keys 0..1998
	}
	it := tr.Seek(value.Int(501)) // first key >= 501 is 502
	if !it.Valid() || it.Key().I != 502 {
		t.Fatalf("seek(501) at %v", it.Key())
	}
	count := 0
	for ; it.Valid() && it.Key().I <= 600; it.Next() {
		count++
	}
	if count != 50 {
		t.Fatalf("range [502, 600] has %d entries, want 50", count)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := newTree(t, 1024) // order = (1024-16)/16 = 63
	for i := 0; i < 100000; i++ {
		tr.Insert(value.Int(int64(i)), i)
	}
	if h := tr.Height(); h < 2 || h > 4 {
		t.Fatalf("height = %d for 100k entries at order %d", h, tr.Order())
	}
}

func TestDescentIssuesDependentLoads(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	arena := memsim.NewArena(1<<33, 512<<20)
	tr := New(m.Hier, arena, 4096)
	for i := 0; i < 50000; i++ {
		tr.Insert(value.Int(int64(i)), i)
	}
	before := m.Hier.Counters()
	tr.Lookup(value.Int(33333))
	d := m.Hier.Counters().Sub(before)
	if d.Loads == 0 {
		t.Fatal("lookup issued no loads")
	}
	// Pointer chasing means stalls: at least one stall cycle per level.
	if d.StallCycles < uint64(tr.Height()) {
		t.Fatalf("lookup stalled %d cycles over %d levels", d.StallCycles, tr.Height())
	}
}

func TestPlaceTopLevels(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	arena := memsim.NewArena(1<<33, 512<<20)
	tr := New(m.Hier, arena, 4096)
	for i := 0; i < 100000; i++ {
		tr.Insert(value.Int(int64(i)), i)
	}
	// A 12KB budget holds the root plus part of the next level.
	budget := uint64(12 << 10)
	used := uint64(0)
	moved := tr.PlaceTopLevels(func(size uint64) (uint64, bool) {
		if used+size > budget {
			return 0, false
		}
		addr := uint64(0x1000_0000) + used
		used += size
		return addr, true
	})
	if moved == 0 {
		t.Fatal("no nodes moved")
	}
	if tr.s.root.addr < 0x1000_0000 {
		t.Fatal("root not relocated")
	}
	// Tree still works after relocation.
	if ids := tr.Lookup(value.Int(777)); len(ids) != 1 || ids[0] != 777 {
		t.Fatalf("lookup after relocation = %v", ids)
	}
}

func TestPropertyInsertedKeysFound(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		count := int(n%500) + 1
		m := cpusim.NewMachine(cpusim.IntelI7_4790())
		tr := New(m.Hier, memsim.NewArena(1<<33, 64<<20), 512)
		rng := rand.New(rand.NewSource(seed))
		want := make(map[int64][]int)
		for i := 0; i < count; i++ {
			k := int64(rng.Intn(100))
			tr.Insert(value.Int(k), i)
			want[k] = append(want[k], i)
		}
		for k, ids := range want {
			got := tr.Lookup(value.Int(k))
			if len(got) != len(ids) {
				return false
			}
		}
		return tr.Len() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStringKeys(t *testing.T) {
	tr := newTree(t, 1024)
	words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
	for i, w := range words {
		tr.Insert(value.Str(w), i)
	}
	it := tr.First()
	if it.Key().S != "alpha" {
		t.Fatalf("first key = %q", it.Key().S)
	}
	if ids := tr.Lookup(value.Str("charlie")); len(ids) != 1 || ids[0] != 4 {
		t.Fatalf("lookup(charlie) = %v", ids)
	}
}
