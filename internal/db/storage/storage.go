// Package storage implements the disk, buffer-pool and heap-file layers the
// database engines run on. All in-memory structures live at simulated
// addresses: every page touch, row read and row write is driven through the
// memory-hierarchy simulator so the energy profiler sees the same access
// stream a real engine would generate.
package storage

import (
	"fmt"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// Device bundles the simulated machine resources the storage layer uses.
type Device struct {
	M *cpusim.Machine
	// Arena allocates simulated addresses for buffer frames, indexes and
	// scratch memory.
	Arena *memsim.Arena
	// Disk models I/O latency.
	Disk DiskModel

	// everRead tracks pages that have been read from disk at least once
	// and therefore live in the OS page cache: the paper's testbed has
	// 32GB of memory against at most 1GB of data, so only first-ever
	// reads pay disk latency; buffer-pool misses on previously-read
	// pages cost a pread from the page cache (a memory copy).
	everRead map[PageID]bool
}

// NewDevice builds a device with a private arena.
func NewDevice(m *cpusim.Machine, arenaBytes uint64) *Device {
	return &Device{
		M:        m,
		Arena:    memsim.NewArena(1<<32, arenaBytes),
		Disk:     DefaultDisk(),
		everRead: make(map[PageID]bool),
	}
}

// DiskModel gives per-page read latencies for the local SATA drive of the
// paper's testbed plus the OS page-cache hit cost. Sequential reads ride OS
// readahead; random reads seek.
type DiskModel struct {
	RandomReadSec     float64
	SequentialReadSec float64
	// PageCacheSec is the syscall + lookup overhead of a pread served
	// from the OS page cache (the copy itself is simulated as stores).
	PageCacheSec float64
}

// DefaultDisk returns latencies for a 500GB SATA hard drive under a large
// OS page cache.
func DefaultDisk() DiskModel {
	return DiskModel{RandomReadSec: 2e-3, SequentialReadSec: 30e-6, PageCacheSec: 1.5e-6}
}

// PageID identifies a page within a file.
type PageID struct {
	File int
	Page int
}

// BufferPool caches pages in simulated-memory frames with clock eviction.
// Its size and page size are the knobs of the paper's Table 4
// (shared_buffers / cache_size / innodb_buffer_pool_size).
type BufferPool struct {
	dev        *Device
	pageSize   int
	frames     int
	frameAddr  []uint64
	framePage  []PageID
	frameUsed  []bool
	frameRef   []bool
	frameDirty []bool
	pageTable  map[PageID]int
	clockHand  int

	// Misses counts pages read from disk; Hits counts buffer hits.
	Hits   uint64
	Misses uint64
	// WriteBacks counts dirty pages written back on eviction or
	// checkpoint.
	WriteBacks uint64
	// WriteBackSec is the (asynchronous, mostly-hidden) latency charged
	// per written-back page.
	WriteBackSec float64
}

// NewBufferPool allocates the frame array from the device arena.
func NewBufferPool(dev *Device, poolBytes, pageSize int) *BufferPool {
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	frames := poolBytes / pageSize
	if frames < 4 {
		frames = 4
	}
	bp := &BufferPool{
		dev:          dev,
		pageSize:     pageSize,
		frames:       frames,
		frameAddr:    make([]uint64, frames),
		framePage:    make([]PageID, frames),
		frameUsed:    make([]bool, frames),
		frameRef:     make([]bool, frames),
		frameDirty:   make([]bool, frames),
		pageTable:    make(map[PageID]int, frames),
		WriteBackSec: 5e-6,
	}
	for i := 0; i < frames; i++ {
		bp.frameAddr[i] = dev.Arena.Alloc(uint64(pageSize), memsim.PageSize)
	}
	return bp
}

// PageSize returns the pool's page size.
func (bp *BufferPool) PageSize() int { return bp.pageSize }

// Frames returns the number of frames.
func (bp *BufferPool) Frames() int { return bp.frames }

// Fetch returns the simulated frame address of the page, reading it from
// disk on a miss. sequential marks accesses that ride readahead. The page
// header is touched (one dependent load) on every fetch, as an engine
// touches the page's slot directory.
func (bp *BufferPool) Fetch(id PageID, sequential bool) uint64 {
	h := bp.dev.M.Hier
	if idx, ok := bp.pageTable[id]; ok {
		bp.Hits++
		bp.frameRef[idx] = true
		h.Load(bp.frameAddr[idx], true)
		return bp.frameAddr[idx]
	}
	bp.Misses++
	idx := bp.evict()
	bp.pageTable[id] = idx
	bp.framePage[idx] = id
	bp.frameUsed[idx] = true
	bp.frameRef[idx] = true

	// First-ever reads pay disk latency; re-reads are served by the OS
	// page cache for syscall cost only. Either way the page is copied
	// into the frame (one store per cache line, as memcpy issues).
	switch {
	case bp.dev.everRead[id]:
		bp.dev.M.AddIdle(bp.dev.Disk.PageCacheSec)
	case sequential:
		bp.dev.M.AddIdle(bp.dev.Disk.SequentialReadSec)
		bp.dev.everRead[id] = true
	default:
		bp.dev.M.AddIdle(bp.dev.Disk.RandomReadSec)
		bp.dev.everRead[id] = true
	}
	h.StoreRange(bp.frameAddr[idx], uint64(bp.pageSize))
	h.Load(bp.frameAddr[idx], true)
	return bp.frameAddr[idx]
}

// Contains reports whether the page is resident (no accesses simulated).
func (bp *BufferPool) Contains(id PageID) bool {
	_, ok := bp.pageTable[id]
	return ok
}

// evict picks a frame with the clock algorithm.
func (bp *BufferPool) evict() int {
	for {
		idx := bp.clockHand
		bp.clockHand = (bp.clockHand + 1) % bp.frames
		if !bp.frameUsed[idx] {
			return idx
		}
		if bp.frameRef[idx] {
			bp.frameRef[idx] = false
			continue
		}
		if bp.frameDirty[idx] {
			bp.writeBack(idx)
		}
		delete(bp.pageTable, bp.framePage[idx])
		return idx
	}
}

// writeBack flushes one dirty frame: the kernel reads the frame out and the
// (buffered, asynchronous) write costs a small latency.
func (bp *BufferPool) writeBack(idx int) {
	bp.dev.M.Hier.LoadRange(bp.frameAddr[idx], uint64(bp.pageSize))
	bp.dev.M.AddIdle(bp.WriteBackSec)
	bp.frameDirty[idx] = false
	bp.WriteBacks++
}

// MarkDirty flags a resident page as modified; it will be written back on
// eviction or checkpoint. Marking a non-resident page is a no-op.
func (bp *BufferPool) MarkDirty(id PageID) {
	if idx, ok := bp.pageTable[id]; ok {
		bp.frameDirty[idx] = true
	}
}

// Checkpoint writes back every dirty frame (the periodic flush real engines
// run), returning how many pages were written.
func (bp *BufferPool) Checkpoint() int {
	n := 0
	for idx := range bp.frameDirty {
		if bp.frameDirty[idx] {
			bp.writeBack(idx)
			n++
		}
	}
	return n
}

// DirtyCount returns the number of dirty resident pages.
func (bp *BufferPool) DirtyCount() int {
	n := 0
	for _, d := range bp.frameDirty {
		if d {
			n++
		}
	}
	return n
}

// Flush drops every cached page, forcing subsequent fetches to disk (used
// by cold-run experiments).
func (bp *BufferPool) Flush() {
	bp.pageTable = make(map[PageID]int, bp.frames)
	for i := range bp.frameUsed {
		bp.frameUsed[i] = false
		bp.frameRef[i] = false
		bp.frameDirty[i] = false
	}
	bp.clockHand = 0
}

// RelocateFrames moves the first frames of the pool to addresses drawn from
// alloc until it declines. It returns how many frames moved. The Section 4.2
// co-design uses this to put a slice of the database buffer into DTCM.
func (bp *BufferPool) RelocateFrames(alloc func(size uint64) (uint64, bool)) int {
	moved := 0
	for i := 0; i < bp.frames; i++ {
		addr, ok := alloc(uint64(bp.pageSize))
		if !ok {
			break
		}
		bp.frameAddr[i] = addr
		moved++
	}
	return moved
}

// HitRate returns the buffer hit ratio.
func (bp *BufferPool) HitRate() float64 {
	total := bp.Hits + bp.Misses
	if total == 0 {
		return 0
	}
	return float64(bp.Hits) / float64(total)
}

// pageHeaderBytes models the slotted-page header walked on row access.
const pageHeaderBytes = 24

// HeapFile stores fixed-width rows in slotted pages behind a buffer pool.
// Row *contents* live on the Go side (rows slice); the page/slot geometry
// determines the simulated addresses touched when rows are read.
type HeapFile struct {
	dev      *Device
	pool     *BufferPool
	fileID   int
	schema   *catalog.Schema
	rows     []value.Row
	rowWidth int
	perPage  int
	// TupleOverhead is the per-row header width (PostgreSQL's 24-byte
	// heap tuple header, InnoDB's record header, ...), an engine knob.
	TupleOverhead int
}

var nextFileID = 1

// NewHeapFile creates an empty heap file on the pool.
func NewHeapFile(dev *Device, pool *BufferPool, schema *catalog.Schema, tupleOverhead int) *HeapFile {
	width := schema.RowWidth() + tupleOverhead
	perPage := (pool.pageSize - pageHeaderBytes) / width
	if perPage < 1 {
		perPage = 1
	}
	hf := &HeapFile{
		dev:           dev,
		pool:          pool,
		fileID:        nextFileID,
		schema:        schema,
		rowWidth:      width,
		perPage:       perPage,
		TupleOverhead: tupleOverhead,
	}
	nextFileID++
	return hf
}

// Schema returns the row schema.
func (hf *HeapFile) Schema() *catalog.Schema { return hf.schema }

// RowCount returns the number of rows.
func (hf *HeapFile) RowCount() int { return len(hf.rows) }

// PageCount returns the number of pages the rows occupy.
func (hf *HeapFile) PageCount() int {
	if len(hf.rows) == 0 {
		return 0
	}
	return (len(hf.rows) + hf.perPage - 1) / hf.perPage
}

// RowsPerPage returns the slot count per page.
func (hf *HeapFile) RowsPerPage() int { return hf.perPage }

// Append bulk-loads a row, simulating the page write.
func (hf *HeapFile) Append(r value.Row) int {
	id := len(hf.rows)
	hf.rows = append(hf.rows, r.Clone())
	page, slot := id/hf.perPage, id%hf.perPage
	addr := hf.pool.Fetch(PageID{hf.fileID, page}, true)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*hf.rowWidth), uint64(hf.rowWidth))
	return id
}

// Update overwrites row id in place: a random page fetch, the row store,
// and the dirty mark (write-back happens on eviction or checkpoint). It
// returns the number of bytes logically written, for WAL sizing.
func (hf *HeapFile) Update(id int, row value.Row) (int, error) {
	if id < 0 || id >= len(hf.rows) {
		return 0, fmt.Errorf("storage: row %d out of range [0, %d)", id, len(hf.rows))
	}
	page, slot := id/hf.perPage, id%hf.perPage
	pid := PageID{hf.fileID, page}
	addr := hf.pool.Fetch(pid, false)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*hf.rowWidth), uint64(hf.rowWidth))
	hf.pool.MarkDirty(pid)
	hf.rows[id] = row.Clone()
	return hf.rowWidth, nil
}

// Pool returns the backing buffer pool.
func (hf *HeapFile) Pool() *BufferPool { return hf.pool }

// ReadRow fetches row id, simulating the page fetch and the row's cache-line
// loads. sequential marks scan order access (readahead + independent loads);
// random access (index lookups) issues dependent loads.
func (hf *HeapFile) ReadRow(id int, sequential bool) (value.Row, error) {
	if id < 0 || id >= len(hf.rows) {
		return nil, fmt.Errorf("storage: row %d out of range [0, %d)", id, len(hf.rows))
	}
	page, slot := id/hf.perPage, id%hf.perPage
	addr := hf.pool.Fetch(PageID{hf.fileID, page}, sequential)
	rowAddr := addr + uint64(pageHeaderBytes+slot*hf.rowWidth)
	h := hf.dev.M.Hier
	if sequential {
		h.LoadRange(rowAddr, uint64(hf.rowWidth))
	} else {
		// The slot lookup is a pointer chase; remaining lines stream.
		h.Load(rowAddr, true)
		if hf.rowWidth > memsim.LineSize {
			h.LoadRange(rowAddr+memsim.LineSize, uint64(hf.rowWidth-memsim.LineSize))
		}
	}
	return hf.rows[id], nil
}

// Machine exposes the device machine (operators issue compute through it).
func (hf *HeapFile) Machine() *cpusim.Machine { return hf.dev.M }

// Scanner iterates a heap file in row order, fetching each page once and
// streaming the rows off it — the sequential-scan access pattern whose L1D
// locality the paper identifies as the energy bottleneck's root cause.
type Scanner struct {
	hf       *HeapFile
	next     int
	curPage  int
	pageAddr uint64
}

// Scan starts a full-file sequential scan.
func (hf *HeapFile) Scan() *Scanner {
	return &Scanner{hf: hf, curPage: -1}
}

// Next returns the next row and its id, or ok=false at the end.
func (s *Scanner) Next() (value.Row, int, bool) {
	hf := s.hf
	if s.next >= len(hf.rows) {
		return nil, 0, false
	}
	id := s.next
	s.next++
	page, slot := id/hf.perPage, id%hf.perPage
	if page != s.curPage {
		s.pageAddr = hf.pool.Fetch(PageID{hf.fileID, page}, true)
		s.curPage = page
	}
	rowAddr := s.pageAddr + uint64(pageHeaderBytes+slot*hf.rowWidth)
	hf.dev.M.Hier.LoadRange(rowAddr, uint64(hf.rowWidth))
	return hf.rows[id], id, true
}
