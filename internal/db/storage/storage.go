// Package storage implements the disk, buffer-pool and heap-file layers the
// database engines run on. All in-memory structures live at simulated
// addresses: every page touch, row read and row write is driven through the
// memory-hierarchy simulator so the energy profiler sees the same access
// stream a real engine would generate.
//
// # Sharing model
//
// A heap file is split in two: TableData is the shared half (rows, schema,
// page geometry) that every worker sees, and HeapFile is a per-worker view
// that binds the shared data to one device and buffer pool. Views over the
// same TableData read and write identical row contents while driving their
// own simulated machine, so per-worker energy attribution stays exact.
// TableData guards its row storage with an RWMutex (reads take the read
// lock, Append/Update the write lock); statement-scoped exclusion between
// queries and DML is layered above this in engine.Shared.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// Device bundles the simulated machine resources the storage layer uses.
type Device struct {
	M *cpusim.Machine
	// Arena allocates simulated addresses for buffer frames, indexes and
	// scratch memory.
	Arena *memsim.Arena
	// Disk models I/O latency.
	Disk DiskModel

	// everRead tracks pages that have been read from disk at least once
	// and therefore live in the OS page cache: the paper's testbed has
	// 32GB of memory against at most 1GB of data, so only first-ever
	// reads pay disk latency; buffer-pool misses on previously-read
	// pages cost a pread from the page cache (a memory copy).
	everRead map[PageID]bool
}

// NewDevice builds a device with a private arena.
func NewDevice(m *cpusim.Machine, arenaBytes uint64) *Device {
	return &Device{
		M:        m,
		Arena:    memsim.NewArena(1<<32, arenaBytes),
		Disk:     DefaultDisk(),
		everRead: make(map[PageID]bool),
	}
}

// DiskModel gives per-page read latencies for the local SATA drive of the
// paper's testbed plus the OS page-cache hit cost. Sequential reads ride OS
// readahead; random reads seek.
type DiskModel struct {
	RandomReadSec     float64
	SequentialReadSec float64
	// PageCacheSec is the syscall + lookup overhead of a pread served
	// from the OS page cache (the copy itself is simulated as stores).
	PageCacheSec float64
}

// DefaultDisk returns latencies for a 500GB SATA hard drive under a large
// OS page cache.
func DefaultDisk() DiskModel {
	return DiskModel{RandomReadSec: 2e-3, SequentialReadSec: 30e-6, PageCacheSec: 1.5e-6}
}

// PageID identifies a page within a file.
type PageID struct {
	File int
	Page int
}

// BufferPool caches pages in simulated-memory frames with clock eviction.
// Its size and page size are the knobs of the paper's Table 4
// (shared_buffers / cache_size / innodb_buffer_pool_size).
type BufferPool struct {
	dev        *Device
	pageSize   int
	frames     int
	frameAddr  []uint64
	framePage  []PageID
	frameUsed  []bool
	frameRef   []bool
	frameDirty []bool
	pageTable  map[PageID]int
	clockHand  int

	// Misses counts pages read from disk; Hits counts buffer hits.
	Hits   uint64
	Misses uint64
	// WriteBacks counts dirty pages written back on eviction or
	// checkpoint.
	WriteBacks uint64
	// WriteBackSec is the (asynchronous, mostly-hidden) latency charged
	// per written-back page.
	WriteBackSec float64
}

// NewBufferPool allocates the frame array from the device arena.
func NewBufferPool(dev *Device, poolBytes, pageSize int) *BufferPool {
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	frames := poolBytes / pageSize
	if frames < 4 {
		frames = 4
	}
	bp := &BufferPool{
		dev:          dev,
		pageSize:     pageSize,
		frames:       frames,
		frameAddr:    make([]uint64, frames),
		framePage:    make([]PageID, frames),
		frameUsed:    make([]bool, frames),
		frameRef:     make([]bool, frames),
		frameDirty:   make([]bool, frames),
		pageTable:    make(map[PageID]int, frames),
		WriteBackSec: 5e-6,
	}
	for i := 0; i < frames; i++ {
		bp.frameAddr[i] = dev.Arena.Alloc(uint64(pageSize), memsim.PageSize)
	}
	return bp
}

// PageSize returns the pool's page size.
func (bp *BufferPool) PageSize() int { return bp.pageSize }

// Frames returns the number of frames.
func (bp *BufferPool) Frames() int { return bp.frames }

// Fetch returns the simulated frame address of the page, reading it from
// disk on a miss. sequential marks accesses that ride readahead. The page
// header is touched (one dependent load) on every fetch, as an engine
// touches the page's slot directory.
func (bp *BufferPool) Fetch(id PageID, sequential bool) uint64 {
	h := bp.dev.M.Hier
	if idx, ok := bp.pageTable[id]; ok {
		bp.Hits++
		bp.frameRef[idx] = true
		h.Load(bp.frameAddr[idx], true)
		return bp.frameAddr[idx]
	}
	bp.Misses++
	idx := bp.evict()
	bp.pageTable[id] = idx
	bp.framePage[idx] = id
	bp.frameUsed[idx] = true
	bp.frameRef[idx] = true

	// First-ever reads pay disk latency; re-reads are served by the OS
	// page cache for syscall cost only. Either way the page is copied
	// into the frame (one store per cache line, as memcpy issues).
	switch {
	case bp.dev.everRead[id]:
		bp.dev.M.AddIdle(bp.dev.Disk.PageCacheSec)
	case sequential:
		bp.dev.M.AddIdle(bp.dev.Disk.SequentialReadSec)
		bp.dev.everRead[id] = true
	default:
		bp.dev.M.AddIdle(bp.dev.Disk.RandomReadSec)
		bp.dev.everRead[id] = true
	}
	h.StoreRange(bp.frameAddr[idx], uint64(bp.pageSize))
	h.Load(bp.frameAddr[idx], true)
	return bp.frameAddr[idx]
}

// Contains reports whether the page is resident (no accesses simulated).
func (bp *BufferPool) Contains(id PageID) bool {
	_, ok := bp.pageTable[id]
	return ok
}

// evict picks a frame with the clock algorithm.
func (bp *BufferPool) evict() int {
	for {
		idx := bp.clockHand
		bp.clockHand = (bp.clockHand + 1) % bp.frames
		if !bp.frameUsed[idx] {
			return idx
		}
		if bp.frameRef[idx] {
			bp.frameRef[idx] = false
			continue
		}
		if bp.frameDirty[idx] {
			bp.writeBack(idx)
		}
		delete(bp.pageTable, bp.framePage[idx])
		return idx
	}
}

// writeBack flushes one dirty frame: the kernel reads the frame out and the
// (buffered, asynchronous) write costs a small latency.
func (bp *BufferPool) writeBack(idx int) {
	bp.dev.M.Hier.LoadRange(bp.frameAddr[idx], uint64(bp.pageSize))
	bp.dev.M.AddIdle(bp.WriteBackSec)
	bp.frameDirty[idx] = false
	bp.WriteBacks++
}

// MarkDirty flags a resident page as modified; it will be written back on
// eviction or checkpoint. Marking a non-resident page is a no-op.
func (bp *BufferPool) MarkDirty(id PageID) {
	if idx, ok := bp.pageTable[id]; ok {
		bp.frameDirty[idx] = true
	}
}

// Checkpoint writes back every dirty frame (the periodic flush real engines
// run), returning how many pages were written.
func (bp *BufferPool) Checkpoint() int {
	n := 0
	for idx := range bp.frameDirty {
		if bp.frameDirty[idx] {
			bp.writeBack(idx)
			n++
		}
	}
	return n
}

// DirtyCount returns the number of dirty resident pages.
func (bp *BufferPool) DirtyCount() int {
	n := 0
	for _, d := range bp.frameDirty {
		if d {
			n++
		}
	}
	return n
}

// Flush drops every cached page, forcing subsequent fetches to disk (used
// by cold-run experiments).
func (bp *BufferPool) Flush() {
	bp.pageTable = make(map[PageID]int, bp.frames)
	for i := range bp.frameUsed {
		bp.frameUsed[i] = false
		bp.frameRef[i] = false
		bp.frameDirty[i] = false
	}
	bp.clockHand = 0
}

// RelocateFrames moves the first frames of the pool to addresses drawn from
// alloc until it declines. It returns how many frames moved. The Section 4.2
// co-design uses this to put a slice of the database buffer into DTCM.
func (bp *BufferPool) RelocateFrames(alloc func(size uint64) (uint64, bool)) int {
	moved := 0
	for i := 0; i < bp.frames; i++ {
		addr, ok := alloc(uint64(bp.pageSize))
		if !ok {
			break
		}
		bp.frameAddr[i] = addr
		moved++
	}
	return moved
}

// HitRate returns the buffer hit ratio.
func (bp *BufferPool) HitRate() float64 {
	total := bp.Hits + bp.Misses
	if total == 0 {
		return 0
	}
	return float64(bp.Hits) / float64(total)
}

// pageHeaderBytes models the slotted-page header walked on row access.
const pageHeaderBytes = 24

// TableData is the shared half of a heap file: row contents, schema and
// page/slot geometry. Per-worker HeapFile views over one TableData see
// identical rows while simulating their accesses on their own machines. The
// row storage is guarded by an RWMutex so the storage layer is safe on its
// own; statement-scoped exclusion (no DML while a query runs anywhere) is
// the engine.Shared store's job.
type TableData struct {
	mu       sync.RWMutex
	schema   *catalog.Schema
	rows     []value.Row
	fileID   int
	rowWidth int
	perPage  int
	// TupleOverhead is the per-row header width (PostgreSQL's 24-byte
	// heap tuple header, InnoDB's record header, ...), an engine knob.
	TupleOverhead int
}

// rowCount returns the number of rows under the read lock.
func (d *TableData) rowCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.rows)
}

// row returns row id (and true) under the read lock. The returned Row is
// never mutated in place — Update replaces the slice element — so it stays
// valid after the lock is released.
func (d *TableData) row(id int) (value.Row, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.rows) {
		return nil, false
	}
	return d.rows[id], true
}

// ForEachRaw visits every row under the read lock without simulating any
// accesses. It is the ANALYZE path: statistics collection is bookkeeping on
// the Go side, not part of any measured statement, so it must not advance
// the PMU counters of whichever worker happens to run it.
func (d *TableData) ForEachRaw(fn func(id int, row value.Row)) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for i, r := range d.rows {
		fn(i, r)
	}
}

// rowSpan copies up to len(dst) row headers starting at lo into dst under
// one read lock, returning how many were copied. Rows are never mutated in
// place (Update replaces the slice element), so the copied headers stay
// valid after the lock is released.
func (d *TableData) rowSpan(lo int, dst []value.Row) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if lo < 0 || lo >= len(d.rows) {
		return 0
	}
	return copy(dst, d.rows[lo:])
}

var nextFileID atomic.Int64

// HeapFile stores fixed-width rows in slotted pages behind a buffer pool.
// Row *contents* live on the Go side (the shared TableData); the page/slot
// geometry determines the simulated addresses touched when rows are read.
// A HeapFile is a per-worker view: the data is shared, the device and pool
// (and therefore every simulated access) belong to this view alone.
type HeapFile struct {
	dev  *Device
	pool *BufferPool
	data *TableData
}

// NewHeapFile creates an empty heap file on the pool, with fresh shared
// table data.
func NewHeapFile(dev *Device, pool *BufferPool, schema *catalog.Schema, tupleOverhead int) *HeapFile {
	width := schema.RowWidth() + tupleOverhead
	perPage := (pool.pageSize - pageHeaderBytes) / width
	if perPage < 1 {
		perPage = 1
	}
	data := &TableData{
		schema:        schema,
		fileID:        int(nextFileID.Add(1)),
		rowWidth:      width,
		perPage:       perPage,
		TupleOverhead: tupleOverhead,
	}
	return &HeapFile{dev: dev, pool: pool, data: data}
}

// Data returns the shared table data behind this view.
func (hf *HeapFile) Data() *TableData { return hf.data }

// View returns a heap file over the same shared table data bound to a
// different device and buffer pool — the per-worker attachment path: row
// contents and page geometry are shared, while every simulated access (page
// fetches, row loads, row stores) drives the view's own machine.
func (d *TableData) View(dev *Device, pool *BufferPool) *HeapFile {
	return &HeapFile{dev: dev, pool: pool, data: d}
}

// Schema returns the row schema.
func (hf *HeapFile) Schema() *catalog.Schema { return hf.data.schema }

// RowCount returns the number of rows.
func (hf *HeapFile) RowCount() int { return hf.data.rowCount() }

// PageCount returns the number of pages the rows occupy.
func (hf *HeapFile) PageCount() int {
	n := hf.data.rowCount()
	if n == 0 {
		return 0
	}
	return (n + hf.data.perPage - 1) / hf.data.perPage
}

// RowsPerPage returns the slot count per page.
func (hf *HeapFile) RowsPerPage() int { return hf.data.perPage }

// TupleOverhead returns the per-row header width knob.
func (hf *HeapFile) TupleOverhead() int { return hf.data.TupleOverhead }

// Append bulk-loads a row, simulating the page write. It takes the table
// write lock for the row insertion.
func (hf *HeapFile) Append(r value.Row) int {
	d := hf.data
	d.mu.Lock()
	id := len(d.rows)
	d.rows = append(d.rows, r.Clone())
	d.mu.Unlock()
	page, slot := id/d.perPage, id%d.perPage
	addr := hf.pool.Fetch(PageID{d.fileID, page}, true)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*d.rowWidth), uint64(d.rowWidth))
	return id
}

// Update overwrites row id in place: a random page fetch, the row store,
// and the dirty mark (write-back happens on eviction or checkpoint). It
// returns the number of bytes logically written, for WAL sizing. The row
// slot is replaced (not mutated), so rows handed out earlier stay intact.
func (hf *HeapFile) Update(id int, row value.Row) (int, error) {
	d := hf.data
	d.mu.Lock()
	if id < 0 || id >= len(d.rows) {
		n := len(d.rows)
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: row %d out of range [0, %d)", id, n)
	}
	d.rows[id] = row.Clone()
	d.mu.Unlock()
	page, slot := id/d.perPage, id%d.perPage
	pid := PageID{d.fileID, page}
	addr := hf.pool.Fetch(pid, false)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*d.rowWidth), uint64(d.rowWidth))
	hf.pool.MarkDirty(pid)
	return d.rowWidth, nil
}

// Pool returns the backing buffer pool.
func (hf *HeapFile) Pool() *BufferPool { return hf.pool }

// ReadRow fetches row id, simulating the page fetch and the row's cache-line
// loads. sequential marks scan order access (readahead + independent loads);
// random access (index lookups) issues dependent loads.
func (hf *HeapFile) ReadRow(id int, sequential bool) (value.Row, error) {
	d := hf.data
	row, ok := d.row(id)
	if !ok {
		return nil, fmt.Errorf("storage: row %d out of range [0, %d)", id, d.rowCount())
	}
	page, slot := id/d.perPage, id%d.perPage
	addr := hf.pool.Fetch(PageID{d.fileID, page}, sequential)
	rowAddr := addr + uint64(pageHeaderBytes+slot*d.rowWidth)
	h := hf.dev.M.Hier
	if sequential {
		h.LoadRange(rowAddr, uint64(d.rowWidth))
	} else {
		// The slot lookup is a pointer chase; remaining lines stream.
		h.Load(rowAddr, true)
		if d.rowWidth > memsim.LineSize {
			h.LoadRange(rowAddr+memsim.LineSize, uint64(d.rowWidth-memsim.LineSize))
		}
	}
	return row, nil
}

// Machine exposes the device machine (operators issue compute through it).
func (hf *HeapFile) Machine() *cpusim.Machine { return hf.dev.M }

// ResidentPages reports how many of the file's pages are currently resident
// in this view's buffer pool, and the total page count. No accesses are
// simulated; the cost model uses this to predict buffer hit behaviour.
func (hf *HeapFile) ResidentPages() (resident, total int) {
	total = hf.PageCount()
	for p := 0; p < total; p++ {
		if hf.pool.Contains(PageID{hf.data.fileID, p}) {
			resident++
		}
	}
	return resident, total
}

// Scanner iterates a heap file in row order, fetching each page once and
// streaming the rows off it — the sequential-scan access pattern whose L1D
// locality the paper identifies as the energy bottleneck's root cause.
type Scanner struct {
	hf       *HeapFile
	next     int
	curPage  int
	pageAddr uint64
}

// Scan starts a full-file sequential scan.
func (hf *HeapFile) Scan() *Scanner {
	return &Scanner{hf: hf, curPage: -1}
}

// Next returns the next row and its id, or ok=false at the end.
func (s *Scanner) Next() (value.Row, int, bool) {
	hf := s.hf
	d := hf.data
	row, ok := d.row(s.next)
	if !ok {
		return nil, 0, false
	}
	id := s.next
	s.next++
	page, slot := id/d.perPage, id%d.perPage
	if page != s.curPage {
		s.pageAddr = hf.pool.Fetch(PageID{d.fileID, page}, true)
		s.curPage = page
	}
	rowAddr := s.pageAddr + uint64(pageHeaderBytes+slot*d.rowWidth)
	hf.dev.M.Hier.LoadRange(rowAddr, uint64(d.rowWidth))
	return row, id, true
}

// BatchScanner iterates a heap file in row order a batch at a time: each
// page is fetched once and each page's row run is streamed with a single
// range load, so the batch touches the same pages and cache lines as the
// row-at-a-time Scanner while amortizing the per-call bookkeeping over the
// whole batch — the vectorized-scan access pattern.
type BatchScanner struct {
	hf       *HeapFile
	next     int
	curPage  int
	pageAddr uint64
	buf      []value.Row
}

// BatchScan starts a full-file sequential scan that yields up to max rows
// per batch.
func (hf *HeapFile) BatchScan(max int) *BatchScanner {
	if max < 1 {
		max = 1
	}
	return &BatchScanner{hf: hf, curPage: -1, buf: make([]value.Row, max)}
}

// NextBatch returns the next run of rows and the id of the first, or
// ok=false at the end of the file. The returned slice is only valid until
// the following NextBatch call (the batch buffer is reused).
func (s *BatchScanner) NextBatch() ([]value.Row, int, bool) {
	hf := s.hf
	d := hf.data
	n := d.rowSpan(s.next, s.buf)
	if n == 0 {
		return nil, 0, false
	}
	base := s.next
	s.next += n
	h := hf.dev.M.Hier
	for id := base; id < base+n; {
		page, slot := id/d.perPage, id%d.perPage
		if page != s.curPage {
			s.pageAddr = hf.pool.Fetch(PageID{d.fileID, page}, true)
			s.curPage = page
		}
		run := d.perPage - slot
		if rem := base + n - id; run > rem {
			run = rem
		}
		rowAddr := s.pageAddr + uint64(pageHeaderBytes+slot*d.rowWidth)
		h.LoadRange(rowAddr, uint64(run*d.rowWidth))
		id += run
	}
	return s.buf[:n], base, true
}
