// Package storage implements the disk, buffer-pool and heap-file layers the
// database engines run on. All in-memory structures live at simulated
// addresses: every page touch, row read and row write is driven through the
// memory-hierarchy simulator so the energy profiler sees the same access
// stream a real engine would generate.
//
// # Sharing model
//
// A heap file is split in two: TableData is the shared half (versioned tuple
// chains, schema, page geometry) that every worker sees, and HeapFile is a
// per-worker view that binds the shared data to one device and buffer pool.
// Views over the same TableData read and write identical row contents while
// driving their own simulated machine, so per-worker energy attribution
// stays exact.
//
// # Versioning model
//
// Every slot holds a chain of Versions, newest first. A version carries
// begin/end timestamps in the encoding of internal/db/txn (commit timestamp
// or writing-transaction ID) and an immutable row payload. Readers resolve a
// slot against the ambient snapshot on their Device (Device.Snap) without
// blocking writers: TableData's RWMutex only guards the slot slice itself
// (growth on insert, head swaps on update/abort), never a whole statement.
// Version begin/end fields are atomics because commit stamping races
// concurrent readers by design; the txn manager's publish-last protocol
// makes torn commits unobservable.
//
// Chain walks are charged to the reading device as dependent loads in a
// dedicated simulated region (old versions live off-page, as in a real MVCC
// engine's version store), so snapshot overhead shows up in the energy
// ledgers.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/txn"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// Device bundles the simulated machine resources the storage layer uses.
type Device struct {
	M *cpusim.Machine
	// Arena allocates simulated addresses for buffer frames, indexes and
	// scratch memory.
	Arena *memsim.Arena
	// Disk models I/O latency.
	Disk DiskModel

	// Snap is the ambient MVCC snapshot every read through this device
	// resolves version chains against. The engine sets it per statement
	// (autocommit reads) or per transaction (Bind); its zero value sees
	// exactly the bulk-loaded data (begin timestamp 0).
	Snap txn.Snap

	// everRead tracks pages that have been read from disk at least once
	// and therefore live in the OS page cache: the paper's testbed has
	// 32GB of memory against at most 1GB of data, so only first-ever
	// reads pay disk latency; buffer-pool misses on previously-read
	// pages cost a pread from the page cache (a memory copy).
	everRead map[PageID]bool

	// verBase/verOff place version-chain hops in a lazily allocated
	// simulated region: each hop is a dependent load of the next
	// version's header line in the version store.
	verBase uint64
	verOff  uint64
}

// versionArenaBytes sizes the simulated version-store region chain hops are
// charged against.
const versionArenaBytes = 1 << 20

// NewDevice builds a device with a private arena.
func NewDevice(m *cpusim.Machine, arenaBytes uint64) *Device {
	return &Device{
		M:        m,
		Arena:    memsim.NewArena(1<<32, arenaBytes),
		Disk:     DefaultDisk(),
		everRead: make(map[PageID]bool),
	}
}

// ChargeChain simulates walking n version-chain hops: one dependent load of
// the next version's header line per hop, placed in the version-store
// region so snapshot overhead is attributed like any other memory traffic.
func (dev *Device) ChargeChain(n int) {
	if n <= 0 {
		return
	}
	if dev.verBase == 0 {
		dev.verBase = dev.Arena.Alloc(versionArenaBytes, memsim.PageSize)
	}
	h := dev.M.Hier
	for i := 0; i < n; i++ {
		h.Load(dev.verBase+dev.verOff, true)
		dev.verOff = (dev.verOff + memsim.LineSize) % versionArenaBytes
	}
}

// ChargeUndo simulates rolling back n undo records: each is a dependent load
// of the record in the version store followed by a line store that unwinds
// it, so aborts cost energy in proportion to the work being thrown away.
func (dev *Device) ChargeUndo(n int) {
	if n <= 0 {
		return
	}
	if dev.verBase == 0 {
		dev.verBase = dev.Arena.Alloc(versionArenaBytes, memsim.PageSize)
	}
	h := dev.M.Hier
	for i := 0; i < n; i++ {
		h.Load(dev.verBase+dev.verOff, true)
		h.StoreRange(dev.verBase+dev.verOff, memsim.LineSize)
		dev.verOff = (dev.verOff + memsim.LineSize) % versionArenaBytes
	}
}

// ChargeCommit simulates stamping n written versions at commit: each stamp
// is a dependent load of the version header followed by a store of the
// begin/end timestamp line — the mirror image of ChargeUndo, so publishing
// work costs energy in proportion to the work being published. The txn
// manager's stamping loop itself is machine-free (it is shared across
// workers); the committing worker pays here.
func (dev *Device) ChargeCommit(n int) {
	if n <= 0 {
		return
	}
	if dev.verBase == 0 {
		dev.verBase = dev.Arena.Alloc(versionArenaBytes, memsim.PageSize)
	}
	h := dev.M.Hier
	for i := 0; i < n; i++ {
		h.Load(dev.verBase+dev.verOff, true)
		h.StoreRange(dev.verBase+dev.verOff, memsim.LineSize)
		dev.verOff = (dev.verOff + memsim.LineSize) % versionArenaBytes
	}
}

// DiskModel gives per-page read latencies for the local SATA drive of the
// paper's testbed plus the OS page-cache hit cost. Sequential reads ride OS
// readahead; random reads seek.
type DiskModel struct {
	RandomReadSec     float64
	SequentialReadSec float64
	// PageCacheSec is the syscall + lookup overhead of a pread served
	// from the OS page cache (the copy itself is simulated as stores).
	PageCacheSec float64
}

// DefaultDisk returns latencies for a 500GB SATA hard drive under a large
// OS page cache.
func DefaultDisk() DiskModel {
	return DiskModel{RandomReadSec: 2e-3, SequentialReadSec: 30e-6, PageCacheSec: 1.5e-6}
}

// PageID identifies a page within a file.
type PageID struct {
	File int
	Page int
}

// BufferPool caches pages in simulated-memory frames with clock eviction.
// Its size and page size are the knobs of the paper's Table 4
// (shared_buffers / cache_size / innodb_buffer_pool_size).
type BufferPool struct {
	dev        *Device
	pageSize   int
	frames     int
	frameAddr  []uint64
	framePage  []PageID
	frameUsed  []bool
	frameRef   []bool
	frameDirty []bool
	pageTable  map[PageID]int
	clockHand  int

	// Misses counts pages read from disk; Hits counts buffer hits.
	Hits   uint64
	Misses uint64
	// WriteBacks counts dirty pages written back on eviction or
	// checkpoint.
	WriteBacks uint64
	// WriteBackSec is the (asynchronous, mostly-hidden) latency charged
	// per written-back page.
	WriteBackSec float64
}

// NewBufferPool allocates the frame array from the device arena.
func NewBufferPool(dev *Device, poolBytes, pageSize int) *BufferPool {
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	frames := poolBytes / pageSize
	if frames < 4 {
		frames = 4
	}
	bp := &BufferPool{
		dev:          dev,
		pageSize:     pageSize,
		frames:       frames,
		frameAddr:    make([]uint64, frames),
		framePage:    make([]PageID, frames),
		frameUsed:    make([]bool, frames),
		frameRef:     make([]bool, frames),
		frameDirty:   make([]bool, frames),
		pageTable:    make(map[PageID]int, frames),
		WriteBackSec: 5e-6,
	}
	for i := 0; i < frames; i++ {
		bp.frameAddr[i] = dev.Arena.Alloc(uint64(pageSize), memsim.PageSize)
	}
	return bp
}

// PageSize returns the pool's page size.
func (bp *BufferPool) PageSize() int { return bp.pageSize }

// Frames returns the number of frames.
func (bp *BufferPool) Frames() int { return bp.frames }

// Fetch returns the simulated frame address of the page, reading it from
// disk on a miss. sequential marks accesses that ride readahead. The page
// header is touched (one dependent load) on every fetch, as an engine
// touches the page's slot directory.
func (bp *BufferPool) Fetch(id PageID, sequential bool) uint64 {
	h := bp.dev.M.Hier
	if idx, ok := bp.pageTable[id]; ok {
		bp.Hits++
		bp.frameRef[idx] = true
		h.Load(bp.frameAddr[idx], true)
		return bp.frameAddr[idx]
	}
	bp.Misses++
	idx := bp.evict()
	bp.pageTable[id] = idx
	bp.framePage[idx] = id
	bp.frameUsed[idx] = true
	bp.frameRef[idx] = true

	// First-ever reads pay disk latency; re-reads are served by the OS
	// page cache for syscall cost only. Either way the page is copied
	// into the frame (one store per cache line, as memcpy issues).
	switch {
	case bp.dev.everRead[id]:
		bp.dev.M.AddIdle(bp.dev.Disk.PageCacheSec)
	case sequential:
		bp.dev.M.AddIdle(bp.dev.Disk.SequentialReadSec)
		bp.dev.everRead[id] = true
	default:
		bp.dev.M.AddIdle(bp.dev.Disk.RandomReadSec)
		bp.dev.everRead[id] = true
	}
	h.StoreRange(bp.frameAddr[idx], uint64(bp.pageSize))
	h.Load(bp.frameAddr[idx], true)
	return bp.frameAddr[idx]
}

// Contains reports whether the page is resident (no accesses simulated).
func (bp *BufferPool) Contains(id PageID) bool {
	_, ok := bp.pageTable[id]
	return ok
}

// evict picks a frame with the clock algorithm.
func (bp *BufferPool) evict() int {
	for {
		idx := bp.clockHand
		bp.clockHand = (bp.clockHand + 1) % bp.frames
		if !bp.frameUsed[idx] {
			return idx
		}
		if bp.frameRef[idx] {
			bp.frameRef[idx] = false
			continue
		}
		if bp.frameDirty[idx] {
			bp.writeBack(idx)
		}
		delete(bp.pageTable, bp.framePage[idx])
		return idx
	}
}

// writeBack flushes one dirty frame: the kernel reads the frame out and the
// (buffered, asynchronous) write costs a small latency.
func (bp *BufferPool) writeBack(idx int) {
	bp.dev.M.Hier.LoadRange(bp.frameAddr[idx], uint64(bp.pageSize))
	bp.dev.M.AddIdle(bp.WriteBackSec)
	bp.frameDirty[idx] = false
	bp.WriteBacks++
}

// MarkDirty flags a resident page as modified; it will be written back on
// eviction or checkpoint. Marking a non-resident page is a no-op.
func (bp *BufferPool) MarkDirty(id PageID) {
	if idx, ok := bp.pageTable[id]; ok {
		bp.frameDirty[idx] = true
	}
}

// Checkpoint writes back every dirty frame (the periodic flush real engines
// run), returning how many pages were written.
func (bp *BufferPool) Checkpoint() int {
	n := 0
	for idx := range bp.frameDirty {
		if bp.frameDirty[idx] {
			bp.writeBack(idx)
			n++
		}
	}
	return n
}

// DirtyCount returns the number of dirty resident pages.
func (bp *BufferPool) DirtyCount() int {
	n := 0
	for _, d := range bp.frameDirty {
		if d {
			n++
		}
	}
	return n
}

// Flush drops every cached page, forcing subsequent fetches to disk (used
// by cold-run experiments).
func (bp *BufferPool) Flush() {
	bp.pageTable = make(map[PageID]int, bp.frames)
	for i := range bp.frameUsed {
		bp.frameUsed[i] = false
		bp.frameRef[i] = false
		bp.frameDirty[i] = false
	}
	bp.clockHand = 0
}

// RelocateFrames moves the first frames of the pool to addresses drawn from
// alloc until it declines. It returns how many frames moved. The Section 4.2
// co-design uses this to put a slice of the database buffer into DTCM.
func (bp *BufferPool) RelocateFrames(alloc func(size uint64) (uint64, bool)) int {
	moved := 0
	for i := 0; i < bp.frames; i++ {
		addr, ok := alloc(uint64(bp.pageSize))
		if !ok {
			break
		}
		bp.frameAddr[i] = addr
		moved++
	}
	return moved
}

// HitRate returns the buffer hit ratio.
func (bp *BufferPool) HitRate() float64 {
	total := bp.Hits + bp.Misses
	if total == 0 {
		return 0
	}
	return float64(bp.Hits) / float64(total)
}

// pageHeaderBytes models the slotted-page header walked on row access.
const pageHeaderBytes = 24

// Version is one entry in a slot's tuple chain, newest first. begin/end
// hold the txn-package timestamp encoding and are atomics because commit
// stamping races snapshot readers by design. The row payload is immutable
// once the version is published; updates push a new chain head instead.
type Version struct {
	begin atomic.Uint64
	end   atomic.Uint64
	row   value.Row
	prev  *Version
}

// newVersion builds a live version (open end timestamp).
func newVersion(begin uint64, row value.Row, prev *Version) *Version {
	v := &Version{row: row, prev: prev}
	v.begin.Store(begin)
	v.end.Store(txn.Infinity)
	return v
}

// resolve walks the chain to the newest version visible to snap, returning
// its payload (nil if no version is visible) and the number of chain hops
// taken past the head. Callers charge the hops via Device.ChargeChain.
func resolve(v *Version, snap txn.Snap) (value.Row, int) {
	hops := 0
	for v != nil {
		if snap.Visible(v.begin.Load(), v.end.Load()) {
			return v.row, hops
		}
		v = v.prev
		hops++
	}
	return nil, hops
}

// TableData is the shared half of a heap file: versioned tuple chains,
// schema and page/slot geometry. Per-worker HeapFile views over one
// TableData see identical rows while simulating their accesses on their own
// machines. The RWMutex guards only the slot slice (growth, head swaps) —
// reads resolve snapshots lock-free against version atomics, so statements
// never serialize behind DML.
type TableData struct {
	mu       sync.RWMutex
	schema   *catalog.Schema
	slots    []*Version
	fileID   int
	rowWidth int
	perPage  int
	// TupleOverhead is the per-row header width (PostgreSQL's 24-byte
	// heap tuple header, InnoDB's record header, ...), an engine knob.
	TupleOverhead int
}

// rowCount returns the number of slots under the read lock.
func (d *TableData) rowCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.slots)
}

// row resolves slot id against snap under the read lock: row is nil when no
// version is visible, hops counts chain hops past the head, ok is false
// only when id is out of range. Returned rows are immutable payloads, so
// they stay valid after the lock is released.
func (d *TableData) row(id int, snap txn.Snap) (row value.Row, hops int, ok bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.slots) {
		return nil, 0, false
	}
	row, hops = resolve(d.slots[id], snap)
	return row, hops, true
}

// ForEachRaw visits the latest committed version of every slot under the
// read lock without simulating any accesses. It is the ANALYZE path:
// statistics collection is bookkeeping on the Go side, not part of any
// measured statement, so it must not advance the PMU counters of whichever
// worker happens to run it. Slots with no committed version (in-flight
// inserts, aborted tombstones, committed deletes) are skipped.
func (d *TableData) ForEachRaw(fn func(id int, row value.Row)) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	latest := txn.Latest()
	for i, v := range d.slots {
		if row, _ := resolve(v, latest); row != nil {
			fn(i, row)
		}
	}
}

// LiveCount returns the number of slots with a version visible to the
// latest-committed snapshot (no accesses simulated).
func (d *TableData) LiveCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	latest := txn.Latest()
	n := 0
	for _, v := range d.slots {
		if row, _ := resolve(v, latest); row != nil {
			n++
		}
	}
	return n
}

// rowSpan resolves up to len(dst) slots starting at lo against snap under
// one read lock. Invisible slots leave nil holes in dst. It returns the
// number of slots examined and the total chain hops taken.
func (d *TableData) rowSpan(lo int, dst []value.Row, snap txn.Snap) (n, hops int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if lo < 0 || lo >= len(d.slots) {
		return 0, 0
	}
	n = len(d.slots) - lo
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		row, h := resolve(d.slots[lo+i], snap)
		dst[i] = row
		hops += h
	}
	return n, hops
}

var nextFileID atomic.Int64

// HeapFile stores fixed-width rows in slotted pages behind a buffer pool.
// Row *contents* live on the Go side (the shared TableData); the page/slot
// geometry determines the simulated addresses touched when rows are read.
// A HeapFile is a per-worker view: the data is shared, the device and pool
// (and therefore every simulated access) belong to this view alone.
type HeapFile struct {
	dev  *Device
	pool *BufferPool
	data *TableData
}

// NewHeapFile creates an empty heap file on the pool, with fresh shared
// table data.
func NewHeapFile(dev *Device, pool *BufferPool, schema *catalog.Schema, tupleOverhead int) *HeapFile {
	width := schema.RowWidth() + tupleOverhead
	perPage := (pool.pageSize - pageHeaderBytes) / width
	if perPage < 1 {
		perPage = 1
	}
	data := &TableData{
		schema:        schema,
		fileID:        int(nextFileID.Add(1)),
		rowWidth:      width,
		perPage:       perPage,
		TupleOverhead: tupleOverhead,
	}
	return &HeapFile{dev: dev, pool: pool, data: data}
}

// Data returns the shared table data behind this view.
func (hf *HeapFile) Data() *TableData { return hf.data }

// Device returns the device this view simulates its accesses on.
func (hf *HeapFile) Device() *Device { return hf.dev }

// View returns a heap file over the same shared table data bound to a
// different device and buffer pool — the per-worker attachment path: row
// contents and page geometry are shared, while every simulated access (page
// fetches, row loads, row stores) drives the view's own machine.
func (d *TableData) View(dev *Device, pool *BufferPool) *HeapFile {
	return &HeapFile{dev: dev, pool: pool, data: d}
}

// Schema returns the row schema.
func (hf *HeapFile) Schema() *catalog.Schema { return hf.data.schema }

// RowCount returns the number of slots (including dead versions' slots);
// it determines the file's page geometry.
func (hf *HeapFile) RowCount() int { return hf.data.rowCount() }

// PageCount returns the number of pages the slots occupy.
func (hf *HeapFile) PageCount() int {
	n := hf.data.rowCount()
	if n == 0 {
		return 0
	}
	return (n + hf.data.perPage - 1) / hf.data.perPage
}

// RowsPerPage returns the slot count per page.
func (hf *HeapFile) RowsPerPage() int { return hf.data.perPage }

// TupleOverhead returns the per-row header width knob.
func (hf *HeapFile) TupleOverhead() int { return hf.data.TupleOverhead }

// Append bulk-loads a row outside any transaction (begin timestamp 0:
// committed before every snapshot), simulating the page write. It takes the
// table write lock for the slot insertion. The TPC-H loader and tests use
// this path; transactional inserts go through InsertTxn.
func (hf *HeapFile) Append(r value.Row) int {
	d := hf.data
	v := newVersion(0, r.Clone(), nil)
	d.mu.Lock()
	id := len(d.slots)
	d.slots = append(d.slots, v)
	d.mu.Unlock()
	page, slot := id/d.perPage, id%d.perPage
	addr := hf.pool.Fetch(PageID{d.fileID, page}, true)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*d.rowWidth), uint64(d.rowWidth))
	return id
}

// insertRecord undoes/commits an InsertTxn: commit stamps the begin
// timestamp, abort leaves an aborted tombstone in the slot (row IDs are
// never reused, so recovery and concurrent scans keep stable geometry).
type insertRecord struct{ v *Version }

func (r *insertRecord) Commit(ts uint64) { r.v.begin.Store(ts) }
func (r *insertRecord) Abort()           { r.v.begin.Store(txn.Aborted) }

// updateRecord undoes/commits an UpdateTxn: commit stamps the new head's
// begin and the old head's end with the commit timestamp; abort swaps the
// old head back and reopens its end timestamp.
type updateRecord struct {
	d   *TableData
	id  int
	old *Version
	neu *Version
}

func (r *updateRecord) Commit(ts uint64) {
	r.neu.begin.Store(ts)
	r.old.end.Store(ts)
}

func (r *updateRecord) Abort() {
	r.old.end.Store(txn.Infinity)
	r.d.mu.Lock()
	r.d.slots[r.id] = r.old
	r.d.mu.Unlock()
}

// deleteRecord undoes/commits a DeleteTxn: commit stamps the end timestamp,
// abort reopens it.
type deleteRecord struct{ v *Version }

func (r *deleteRecord) Commit(ts uint64) { r.v.end.Store(ts) }
func (r *deleteRecord) Abort()           { r.v.end.Store(txn.Infinity) }

// wwConflict applies first-updater-wins to a slot head: the write loses if
// the head was deleted or superseded (any stamped end), written by another
// in-flight or aborted transaction, or committed after t's snapshot.
func wwConflict(head *Version, t *txn.Txn) bool {
	b, e := head.begin.Load(), head.end.Load()
	if e != txn.Infinity {
		return true
	}
	if b >= txn.TxnIDBase {
		return b != t.ID()
	}
	return b > t.Snap().TS
}

// InsertTxn appends a new row version owned by t and registers the undo
// record. The slot becomes visible to other snapshots only at commit; abort
// leaves an invisible tombstone. The page write is simulated like Append
// plus a dirty mark.
func (hf *HeapFile) InsertTxn(t *txn.Txn, r value.Row) int {
	d := hf.data
	v := newVersion(t.ID(), r.Clone(), nil)
	d.mu.Lock()
	id := len(d.slots)
	d.slots = append(d.slots, v)
	d.mu.Unlock()
	t.Log(&insertRecord{v: v})
	page, slot := id/d.perPage, id%d.perPage
	pid := PageID{d.fileID, page}
	addr := hf.pool.Fetch(pid, true)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*d.rowWidth), uint64(d.rowWidth))
	hf.pool.MarkDirty(pid)
	return id
}

// InsertAtTxn applies a recovered insert at a specific slot id (WAL replay
// must reproduce the original row geometry because later log records address
// rows by id). Slots lost to the crash — allocated by transactions whose
// records never became durable — are back-filled with aborted tombstones.
// It simulates the same page write as InsertTxn.
func (hf *HeapFile) InsertAtTxn(t *txn.Txn, id int, r value.Row) error {
	d := hf.data
	v := newVersion(t.ID(), r.Clone(), nil)
	d.mu.Lock()
	if id < len(d.slots) {
		n := len(d.slots)
		d.mu.Unlock()
		return fmt.Errorf("storage: replay slot %d already allocated (have %d)", id, n)
	}
	for len(d.slots) < id {
		d.slots = append(d.slots, newVersion(txn.Aborted, nil, nil))
	}
	d.slots = append(d.slots, v)
	d.mu.Unlock()
	t.Log(&insertRecord{v: v})
	page, slot := id/d.perPage, id%d.perPage
	pid := PageID{d.fileID, page}
	addr := hf.pool.Fetch(pid, true)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*d.rowWidth), uint64(d.rowWidth))
	hf.pool.MarkDirty(pid)
	return nil
}

// UpdateTxn pushes a new version of slot id owned by t, first-updater-wins:
// txn.ErrWriteConflict reports a head written by another in-flight
// transaction or committed past t's snapshot. The old head stays reachable
// for older snapshots (its end is stamped at commit). It returns the number
// of bytes logically written, for WAL sizing.
func (hf *HeapFile) UpdateTxn(t *txn.Txn, id int, row value.Row) (int, error) {
	d := hf.data
	d.mu.Lock()
	if id < 0 || id >= len(d.slots) {
		n := len(d.slots)
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: row %d out of range [0, %d)", id, n)
	}
	head := d.slots[id]
	if wwConflict(head, t) {
		d.mu.Unlock()
		return 0, txn.ErrWriteConflict
	}
	nv := newVersion(t.ID(), row.Clone(), head)
	head.end.Store(t.ID())
	d.slots[id] = nv
	d.mu.Unlock()
	t.Log(&updateRecord{d: d, id: id, old: head, neu: nv})
	page, slot := id/d.perPage, id%d.perPage
	pid := PageID{d.fileID, page}
	addr := hf.pool.Fetch(pid, false)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*d.rowWidth), uint64(d.rowWidth))
	hf.pool.MarkDirty(pid)
	return d.rowWidth, nil
}

// DeleteTxn stamps slot id's head with t's ID (first-updater-wins, as
// UpdateTxn) so it disappears from snapshots after commit. The simulated
// write touches the tuple header line only.
func (hf *HeapFile) DeleteTxn(t *txn.Txn, id int) error {
	d := hf.data
	d.mu.Lock()
	if id < 0 || id >= len(d.slots) {
		n := len(d.slots)
		d.mu.Unlock()
		return fmt.Errorf("storage: row %d out of range [0, %d)", id, n)
	}
	head := d.slots[id]
	if wwConflict(head, t) {
		d.mu.Unlock()
		return txn.ErrWriteConflict
	}
	head.end.Store(t.ID())
	d.mu.Unlock()
	t.Log(&deleteRecord{v: head})
	page, slot := id/d.perPage, id%d.perPage
	pid := PageID{d.fileID, page}
	addr := hf.pool.Fetch(pid, false)
	hf.dev.M.Hier.StoreRange(addr+uint64(pageHeaderBytes+slot*d.rowWidth), memsim.LineSize)
	hf.pool.MarkDirty(pid)
	return nil
}

// Pool returns the backing buffer pool.
func (hf *HeapFile) Pool() *BufferPool { return hf.pool }

// ReadRow fetches row id under the device's ambient snapshot, simulating
// the page fetch, chain hops and the row's cache-line loads. visible is
// false (with a nil row) when no version of the slot is visible — index
// probes skip such hits. sequential marks scan-order access (readahead +
// independent loads); random access (index lookups) issues dependent loads.
func (hf *HeapFile) ReadRow(id int, sequential bool) (row value.Row, visible bool, err error) {
	d := hf.data
	row, hops, ok := d.row(id, hf.dev.Snap)
	if !ok {
		return nil, false, fmt.Errorf("storage: row %d out of range [0, %d)", id, d.rowCount())
	}
	page, slot := id/d.perPage, id%d.perPage
	addr := hf.pool.Fetch(PageID{d.fileID, page}, sequential)
	rowAddr := addr + uint64(pageHeaderBytes+slot*d.rowWidth)
	h := hf.dev.M.Hier
	hf.dev.ChargeChain(hops)
	if row == nil {
		// Invisible: only the tuple header was examined.
		h.Load(rowAddr, !sequential)
		return nil, false, nil
	}
	if sequential {
		h.LoadRange(rowAddr, uint64(d.rowWidth))
	} else {
		// The slot lookup is a pointer chase; remaining lines stream.
		h.Load(rowAddr, true)
		if d.rowWidth > memsim.LineSize {
			h.LoadRange(rowAddr+memsim.LineSize, uint64(d.rowWidth-memsim.LineSize))
		}
	}
	return row, true, nil
}

// Machine exposes the device machine (operators issue compute through it).
func (hf *HeapFile) Machine() *cpusim.Machine { return hf.dev.M }

// ResidentPages reports how many of the file's pages are currently resident
// in this view's buffer pool, and the total page count. No accesses are
// simulated; the cost model uses this to predict buffer hit behaviour.
func (hf *HeapFile) ResidentPages() (resident, total int) {
	total = hf.PageCount()
	for p := 0; p < total; p++ {
		if hf.pool.Contains(PageID{hf.data.fileID, p}) {
			resident++
		}
	}
	return resident, total
}

// Scanner iterates a heap file in row order, fetching each page once and
// streaming the rows off it — the sequential-scan access pattern whose L1D
// locality the paper identifies as the energy bottleneck's root cause.
// Slots invisible to the device's snapshot are skipped after a header
// check, so callers only ever see rows their snapshot may read.
type Scanner struct {
	hf       *HeapFile
	next     int
	curPage  int
	pageAddr uint64
}

// Scan starts a full-file sequential scan under the device's snapshot.
func (hf *HeapFile) Scan() *Scanner {
	return &Scanner{hf: hf, curPage: -1}
}

// Next returns the next visible row and its id, or ok=false at the end.
func (s *Scanner) Next() (value.Row, int, bool) {
	hf := s.hf
	d := hf.data
	h := hf.dev.M.Hier
	for {
		row, hops, ok := d.row(s.next, hf.dev.Snap)
		if !ok {
			return nil, 0, false
		}
		id := s.next
		s.next++
		page, slot := id/d.perPage, id%d.perPage
		if page != s.curPage {
			s.pageAddr = hf.pool.Fetch(PageID{d.fileID, page}, true)
			s.curPage = page
		}
		rowAddr := s.pageAddr + uint64(pageHeaderBytes+slot*d.rowWidth)
		hf.dev.ChargeChain(hops)
		if row == nil {
			// Invisible: the scan still touched the tuple header.
			h.Load(rowAddr, false)
			continue
		}
		h.LoadRange(rowAddr, uint64(d.rowWidth))
		return row, id, true
	}
}

// BatchScanner iterates a heap file in row order a batch at a time: each
// page is fetched once and each page's row run is streamed with a single
// range load, so the batch touches the same pages and cache lines as the
// row-at-a-time Scanner while amortizing the per-call bookkeeping over the
// whole batch — the vectorized-scan access pattern. Slots invisible to the
// device's snapshot come back as nil holes; the vectorized scan drops them
// via its selection vector.
type BatchScanner struct {
	hf       *HeapFile
	next     int
	curPage  int
	pageAddr uint64
	buf      []value.Row
}

// BatchScan starts a full-file sequential scan that yields up to max rows
// per batch.
func (hf *HeapFile) BatchScan(max int) *BatchScanner {
	if max < 1 {
		max = 1
	}
	return &BatchScanner{hf: hf, curPage: -1, buf: make([]value.Row, max)}
}

// NextBatch returns the next run of rows (nil entries mark slots invisible
// to the snapshot) and the id of the first, or ok=false at the end of the
// file. The returned slice is only valid until the following NextBatch call
// (the batch buffer is reused).
func (s *BatchScanner) NextBatch() ([]value.Row, int, bool) {
	hf := s.hf
	d := hf.data
	n, hops := d.rowSpan(s.next, s.buf, hf.dev.Snap)
	if n == 0 {
		return nil, 0, false
	}
	base := s.next
	s.next += n
	h := hf.dev.M.Hier
	hf.dev.ChargeChain(hops)
	for id := base; id < base+n; {
		page, slot := id/d.perPage, id%d.perPage
		if page != s.curPage {
			s.pageAddr = hf.pool.Fetch(PageID{d.fileID, page}, true)
			s.curPage = page
		}
		run := d.perPage - slot
		if rem := base + n - id; run > rem {
			run = rem
		}
		rowAddr := s.pageAddr + uint64(pageHeaderBytes+slot*d.rowWidth)
		h.LoadRange(rowAddr, uint64(run*d.rowWidth))
		id += run
	}
	return s.buf[:n], base, true
}
