package storage

import (
	"sync"
	"sync/atomic"

	"energydb/internal/db/value"
)

// RecordKind tags a WAL record.
type RecordKind int

// WAL record kinds. Data records (insert/update/delete) carry the logical
// after-image; commit/abort close a transaction.
const (
	RecInsert RecordKind = iota + 1
	RecUpdate
	RecDelete
	RecCommit
	RecAbort
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case RecInsert:
		return "insert"
	case RecUpdate:
		return "update"
	case RecDelete:
		return "delete"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	default:
		return "unknown"
	}
}

// LogRecord is one logical WAL entry: which transaction touched which row
// of which table, with the after-image for redo. Replay applies data
// records in log order and commits/aborts transactions as their closing
// records appear (see engine.Recover).
type LogRecord struct {
	Kind  RecordKind
	Txn   uint64
	Table string
	Row   int
	Data  value.Row
}

// walBufBytes is the log buffer size (PostgreSQL's wal_buffers default
// scale, scaled down like the rest of the knobs).
const walBufBytes = 64 << 10

// walBufBase is the simulated address of the shared log buffer. It sits
// below every device arena (arenas start at 1<<32), so all workers' append
// traffic lands on the same hot region — as a real engine's WAL insert
// buffer does.
const walBufBase = uint64(0xE000_0000)

// WAL is the shared write-ahead log of one table store: every
// transactional write appends a logical record before touching the heap,
// commit forces the buffer to stable storage (fsync-charged to the
// committing worker's device), and replay on open restores committed work.
// The log is one structure shared by all workers — the internal mutex
// guards buffer state; counters are atomics so observers never race
// appenders. Simulated costs (buffer stores, flush loads, fsync latency)
// are charged to the Device passed by the calling worker, keeping
// per-session energy attribution exact.
type WAL struct {
	mu sync.Mutex
	// bufOff is the fill point of the simulated log buffer.
	bufOff uint64
	// pending are records appended but not yet durable; a crash loses
	// them.
	pending []LogRecord
	// durable are records that reached stable storage.
	durable        []LogRecord
	pendingCommits int

	// FsyncSec is the commit-time flush latency. Set before use; not
	// synchronized.
	FsyncSec float64
	// GroupCommit batches this many commits per fsync (1 = every commit
	// syncs, as PostgreSQL's synchronous_commit=on). Set before use.
	GroupCommit int

	// Records counts appended records; Syncs counts fsyncs; Bytes counts
	// logical log bytes.
	Records atomic.Uint64
	Syncs   atomic.Uint64
	Bytes   atomic.Uint64
}

// walRecordHeader is the per-record header size charged on append.
const walRecordHeader = 24

// NewWAL returns an empty log.
func NewWAL() *WAL {
	return &WAL{
		FsyncSec:    120e-6, // one rotational-latency-ish flush
		GroupCommit: 1,
	}
}

// Append logs one data record of the given payload size: a header plus the
// payload streamed into the log buffer (stores with excellent L1D
// locality), charged to dev.
func (w *WAL) Append(dev *Device, rec LogRecord, payload int) {
	size := uint64(payload + walRecordHeader)
	w.mu.Lock()
	if w.bufOff+size > walBufBytes {
		// Buffer wrap forces a background flush of the filled portion.
		w.flushLocked(dev)
	}
	dev.M.Hier.StoreRange(walBufBase+w.bufOff, size)
	w.bufOff += size
	w.pending = append(w.pending, rec)
	w.mu.Unlock()
	w.Records.Add(1)
	w.Bytes.Add(size)
}

// Commit logs the transaction's commit record and makes everything
// appended so far durable; with group commit, only every GroupCommit'th
// call pays the fsync. The flush cost lands on the committing worker's
// device.
func (w *WAL) Commit(dev *Device, txnID uint64) {
	size := uint64(walRecordHeader)
	w.mu.Lock()
	if w.bufOff+size > walBufBytes {
		w.flushLocked(dev)
	}
	dev.M.Hier.StoreRange(walBufBase+w.bufOff, size)
	w.bufOff += size
	w.pending = append(w.pending, LogRecord{Kind: RecCommit, Txn: txnID})
	w.pendingCommits++
	if w.pendingCommits >= w.GroupCommit {
		w.flushLocked(dev)
	}
	w.mu.Unlock()
	w.Records.Add(1)
	w.Bytes.Add(size)
}

// Abort logs the transaction's abort record. No fsync is forced — an abort
// needs no durability guarantee (replay aborts unclosed transactions
// anyway); the record rides the next flush.
func (w *WAL) Abort(dev *Device, txnID uint64) {
	size := uint64(walRecordHeader)
	w.mu.Lock()
	if w.bufOff+size > walBufBytes {
		w.flushLocked(dev)
	}
	dev.M.Hier.StoreRange(walBufBase+w.bufOff, size)
	w.bufOff += size
	w.pending = append(w.pending, LogRecord{Kind: RecAbort, Txn: txnID})
	w.mu.Unlock()
	w.Records.Add(1)
	w.Bytes.Add(size)
}

// Sync forces the buffer to stable storage (checkpoint / shutdown path).
func (w *WAL) Sync(dev *Device) {
	w.mu.Lock()
	w.flushLocked(dev)
	w.mu.Unlock()
}

// flushLocked forces the buffer to stable storage. Caller holds w.mu.
func (w *WAL) flushLocked(dev *Device) {
	if w.bufOff == 0 && w.pendingCommits == 0 {
		return
	}
	// The kernel copies the buffer out (loads of the log buffer).
	dev.M.Hier.LoadRange(walBufBase, w.bufOff)
	dev.M.AddIdle(w.FsyncSec)
	w.durable = append(w.durable, w.pending...)
	w.pending = w.pending[:0]
	w.bufOff = 0
	w.pendingCommits = 0
	w.Syncs.Add(1)
}

// Durable returns a copy of the records that have reached stable storage —
// what a crash would leave behind for replay. Records still in the buffer
// (appended but never flushed) are lost, exactly like a real log.
func (w *WAL) Durable() []LogRecord {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]LogRecord, len(w.durable))
	copy(out, w.durable)
	return out
}

// PendingLen reports how many records sit in the volatile buffer (test and
// observability hook; no accesses simulated).
func (w *WAL) PendingLen() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}
