package storage

import (
	"energydb/internal/memsim"
)

// WAL is a write-ahead log: records append into a hot log buffer (stores
// with excellent L1D locality) and commits force the buffer to disk. The
// paper defers write queries ("a totally different problem", Section 2.3);
// this implements the machinery so the X4 extension experiment can profile
// them with the same methodology.
type WAL struct {
	dev *Device
	// buf is the in-memory log buffer (a hot, reused region).
	buf     uint64
	bufSize uint64
	bufOff  uint64
	// FsyncSec is the commit-time flush latency.
	FsyncSec float64
	// GroupCommit batches this many commits per fsync (1 = every commit
	// syncs, as PostgreSQL's synchronous_commit=on).
	GroupCommit int

	pendingCommits int
	// Records counts appended records; Syncs counts fsyncs.
	Records uint64
	Syncs   uint64
	Bytes   uint64
}

// walBufBytes is the log buffer size (PostgreSQL's wal_buffers default
// scale, scaled down like the rest of the knobs).
const walBufBytes = 64 << 10

// NewWAL allocates the log buffer from the device arena.
func NewWAL(dev *Device) *WAL {
	return &WAL{
		dev:         dev,
		buf:         dev.Arena.Alloc(walBufBytes, memsim.PageSize),
		bufSize:     walBufBytes,
		FsyncSec:    120e-6, // one rotational-latency-ish flush
		GroupCommit: 1,
	}
}

// Append writes one log record of the given payload size: a header plus the
// payload streamed into the log buffer.
func (w *WAL) Append(payload int) {
	size := uint64(payload + 24)
	if w.bufOff+size > w.bufSize {
		// Buffer wrap forces a background flush of the filled portion.
		w.flush()
	}
	w.dev.M.Hier.StoreRange(w.buf+w.bufOff, size)
	w.bufOff += size
	w.Records++
	w.Bytes += size
}

// Commit makes appended records durable; with group commit, only every
// GroupCommit'th call pays the fsync.
func (w *WAL) Commit() {
	w.pendingCommits++
	if w.pendingCommits >= w.GroupCommit {
		w.flush()
	}
}

// flush forces the buffer to stable storage.
func (w *WAL) flush() {
	if w.bufOff == 0 && w.pendingCommits == 0 {
		return
	}
	// The kernel copies the buffer out (loads of the log buffer).
	w.dev.M.Hier.LoadRange(w.buf, w.bufOff)
	w.dev.M.AddIdle(w.FsyncSec)
	w.bufOff = 0
	w.pendingCommits = 0
	w.Syncs++
}
