package storage

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/txn"
	"energydb/internal/db/value"
)

func TestWALAppendAndCommit(t *testing.T) {
	dev := newDev(t)
	w := NewWAL()
	for i := 0; i < 10; i++ {
		w.Append(dev, LogRecord{Kind: RecUpdate, Txn: 1, Table: "t", Row: i}, 100)
	}
	if w.Records.Load() != 10 {
		t.Fatalf("records = %d", w.Records.Load())
	}
	if w.Syncs.Load() != 0 {
		t.Fatal("no commit yet, no sync expected")
	}
	if len(w.Durable()) != 0 {
		t.Fatal("records durable before any flush")
	}
	idle0 := dev.M.IdleSeconds()
	w.Commit(dev, 1)
	if w.Syncs.Load() != 1 {
		t.Fatalf("syncs = %d after commit", w.Syncs.Load())
	}
	if dev.M.IdleSeconds()-idle0 < w.FsyncSec*0.99 {
		t.Fatal("commit did not pay fsync latency")
	}
	recs := w.Durable()
	if len(recs) != 11 {
		t.Fatalf("durable records = %d, want 11 (10 data + commit)", len(recs))
	}
	if last := recs[len(recs)-1]; last.Kind != RecCommit || last.Txn != 1 {
		t.Fatalf("last durable record = %+v, want commit of txn 1", last)
	}
}

func TestWALGroupCommit(t *testing.T) {
	dev := newDev(t)
	w := NewWAL()
	w.GroupCommit = 4
	for i := 0; i < 8; i++ {
		w.Append(dev, LogRecord{Kind: RecUpdate, Txn: uint64(i), Table: "t"}, 64)
		w.Commit(dev, uint64(i))
	}
	if w.Syncs.Load() != 2 {
		t.Fatalf("syncs = %d, want 2 (group commit of 4)", w.Syncs.Load())
	}
}

func TestWALBufferWrapFlushes(t *testing.T) {
	dev := newDev(t)
	w := NewWAL()
	// Fill past the 64KB buffer: background flushes must happen.
	for i := 0; i < 200; i++ {
		w.Append(dev, LogRecord{Kind: RecInsert, Txn: 1, Table: "t", Row: i}, 1<<10)
	}
	if w.Syncs.Load() == 0 {
		t.Fatal("buffer wrap never flushed")
	}
	if w.Bytes.Load() < 200*(1<<10) {
		t.Fatalf("bytes = %d", w.Bytes.Load())
	}
	// Wrap-flushed records are durable even without a commit.
	if len(w.Durable())+w.PendingLen() != 200 {
		t.Fatalf("durable %d + pending %d != 200", len(w.Durable()), w.PendingLen())
	}
}

func TestWALEmptyCommitIsFree(t *testing.T) {
	dev := newDev(t)
	w := NewWAL()
	w.Sync(dev)
	if w.Bytes.Load() != 0 || w.Syncs.Load() != 0 {
		t.Fatalf("empty sync: bytes=%d syncs=%d", w.Bytes.Load(), w.Syncs.Load())
	}
}

// TestWALCrashLosesUnflushedTail is the crash contract: records never
// flushed are not in Durable(), and a transaction whose data records are
// durable but whose commit record is not must be treated as unclosed by
// replay.
func TestWALCrashLosesUnflushedTail(t *testing.T) {
	dev := newDev(t)
	w := NewWAL()
	w.Append(dev, LogRecord{Kind: RecInsert, Txn: 1, Table: "t", Row: 0}, 64)
	w.Commit(dev, 1)
	// Txn 2 appends and flushes its data (buffer pressure), then "crashes"
	// before commit.
	w.Append(dev, LogRecord{Kind: RecUpdate, Txn: 2, Table: "t", Row: 0}, 64)
	w.Sync(dev)
	w.Append(dev, LogRecord{Kind: RecUpdate, Txn: 2, Table: "t", Row: 1}, 64)

	recs := w.Durable()
	if len(recs) != 3 {
		t.Fatalf("durable = %d records, want 3", len(recs))
	}
	committed := map[uint64]bool{}
	for _, r := range recs {
		if r.Kind == RecCommit {
			committed[r.Txn] = true
		}
	}
	if !committed[1] || committed[2] {
		t.Fatalf("committed set = %v, want {1}", committed)
	}
}

func newTxnPair() (*txn.Manager, *txn.Txn) {
	m := txn.NewManager()
	return m, m.Begin()
}

func TestHeapFileUpdateRoundTrip(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 1<<20, 8<<10)
	hf := NewHeapFile(dev, bp, testSchema(), 8)
	for i := 0; i < 100; i++ {
		hf.Append(value.Row{value.Int(int64(i)), value.Float(0), value.Str("x")})
	}
	mgr, tx := newTxnPair()
	if _, err := hf.UpdateTxn(tx, 42, value.Row{value.Int(42), value.Float(9.5), value.Str("y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	dev.Snap = mgr.ReadSnap()
	r, visible, err := hf.ReadRow(42, true)
	if err != nil {
		t.Fatal(err)
	}
	if !visible || r[1].F != 9.5 || r[2].S != "y" {
		t.Fatalf("updated row = %v (visible=%v)", r, visible)
	}
	if bp.DirtyCount() == 0 {
		t.Fatal("update left no dirty page")
	}
	tx2 := mgr.Begin()
	if _, err := hf.UpdateTxn(tx2, 100, nil); err == nil {
		t.Fatal("out-of-range update must error")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 32<<10, 8<<10) // 4 frames
	// Dirty 4 pages, then fault 4 more: evictions must write back.
	for i := 0; i < 4; i++ {
		bp.Fetch(PageID{9, i}, true)
		bp.MarkDirty(PageID{9, i})
	}
	for i := 4; i < 8; i++ {
		bp.Fetch(PageID{9, i}, true)
	}
	if bp.WriteBacks == 0 {
		t.Fatal("dirty evictions did not write back")
	}
}

func TestCheckpointIdempotent(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 64<<10, 8<<10)
	bp.Fetch(PageID{3, 0}, true)
	bp.MarkDirty(PageID{3, 0})
	if n := bp.Checkpoint(); n != 1 {
		t.Fatalf("checkpoint wrote %d, want 1", n)
	}
	if n := bp.Checkpoint(); n != 0 {
		t.Fatalf("second checkpoint wrote %d, want 0", n)
	}
}

func TestMarkDirtyNonResidentIsNoop(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 64<<10, 8<<10)
	bp.MarkDirty(PageID{5, 77})
	if bp.DirtyCount() != 0 {
		t.Fatal("non-resident mark dirtied something")
	}
}

func TestRelocateFrames(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 64<<10, 8<<10) // 8 frames
	budget := uint64(3 * 8 << 10)
	used := uint64(0)
	moved := bp.RelocateFrames(func(size uint64) (uint64, bool) {
		if used+size > budget {
			return 0, false
		}
		addr := uint64(0x2000_0000) + used
		used += size
		return addr, true
	})
	if moved != 3 {
		t.Fatalf("moved %d frames, want 3", moved)
	}
	// Fetches into relocated frames return the new addresses.
	if addr := bp.Fetch(PageID{1, 0}, true); addr < 0x2000_0000 || addr >= 0x2000_0000+budget {
		t.Fatalf("frame 0 address %#x not relocated", addr)
	}
}

func TestScannerEmptyFile(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 64<<10, 8<<10)
	hf := NewHeapFile(dev, bp, testSchema(), 0)
	if _, _, ok := hf.Scan().Next(); ok {
		t.Fatal("empty file scanner returned a row")
	}
	if hf.PageCount() != 0 {
		t.Fatalf("page count = %d", hf.PageCount())
	}
}

func testSchemaWide() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "a", Type: value.TypeStr, Width: 128},
		catalog.Column{Name: "b", Type: value.TypeStr, Width: 128},
	)
}

func TestWideRowsSpanMultipleLines(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 1<<20, 8<<10)
	hf := NewHeapFile(dev, bp, testSchemaWide(), 0)
	hf.Append(value.Row{value.Str("x"), value.Str("y")})
	before := dev.M.Hier.Counters()
	if _, _, err := hf.ReadRow(0, false); err != nil {
		t.Fatal(err)
	}
	d := dev.M.Hier.Counters().Sub(before)
	// 256-byte rows cover 4+ cache lines plus the page-header touch.
	if d.Loads < 5 {
		t.Fatalf("wide-row read issued %d loads, want >= 5", d.Loads)
	}
}

func TestMachineAccessor(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	dev := NewDevice(m, 64<<20)
	bp := NewBufferPool(dev, 64<<10, 8<<10)
	hf := NewHeapFile(dev, bp, testSchema(), 0)
	if hf.Machine() != m {
		t.Fatal("Machine() accessor wrong")
	}
	if hf.Pool() != bp {
		t.Fatal("Pool() accessor wrong")
	}
	if hf.Device() != dev {
		t.Fatal("Device() accessor wrong")
	}
}
