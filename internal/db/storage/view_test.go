package storage

import (
	"sync"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/txn"
	"energydb/internal/db/value"
)

// TestTableDataView checks the per-worker view path: two HeapFile views
// over one TableData see identical rows while driving their own machines.
func TestTableDataView(t *testing.T) {
	devA := newDev(t)
	poolA := NewBufferPool(devA, 64<<10, 8<<10)
	hf := NewHeapFile(devA, poolA, testSchema(), 8)
	for i := 0; i < 100; i++ {
		hf.Append(value.Row{value.Int(int64(i)), value.Float(float64(i)), value.Str("x")})
	}

	devB := newDev(t)
	poolB := NewBufferPool(devB, 64<<10, 8<<10)
	view := hf.Data().View(devB, poolB)

	if view.RowCount() != hf.RowCount() {
		t.Fatalf("view rows %d != base rows %d", view.RowCount(), hf.RowCount())
	}
	if view.RowsPerPage() != hf.RowsPerPage() || view.TupleOverhead() != hf.TupleOverhead() {
		t.Fatal("view geometry differs from base")
	}

	beforeA := devA.M.Hier.Counters()
	beforeB := devB.M.Hier.Counters()
	row, _, err := view.ReadRow(42, false)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != 42 {
		t.Fatalf("view read wrong row: %v", row)
	}
	if devA.M.Hier.Counters() != beforeA {
		t.Fatal("reading through the view advanced the base machine's counters")
	}
	if devB.M.Hier.Counters() == beforeB {
		t.Fatal("reading through the view did not advance the view machine's counters")
	}

	// Committed writes through one view are visible to the other.
	mgr := txn.NewManager()
	tx := mgr.Begin()
	if _, err := view.UpdateTxn(tx, 42, value.Row{value.Int(-1), value.Float(0), value.Str("y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	devA.Snap = mgr.ReadSnap()
	row, _, err = hf.ReadRow(42, false)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].I != -1 {
		t.Fatalf("update through view not visible to base: %v", row)
	}
}

// TestTableDataConcurrentReaders checks raw TableData locking: many
// goroutines scanning their own views of one table race-free.
func TestTableDataConcurrentReaders(t *testing.T) {
	devA := newDev(t)
	poolA := NewBufferPool(devA, 64<<10, 8<<10)
	hf := NewHeapFile(devA, poolA, testSchema(), 8)
	const rows = 500
	for i := 0; i < rows; i++ {
		hf.Append(value.Row{value.Int(int64(i)), value.Float(float64(i)), value.Str("x")})
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := NewDevice(cpusim.NewMachine(cpusim.IntelI7_4790()), 256<<20)
			view := hf.Data().View(dev, NewBufferPool(dev, 64<<10, 8<<10))
			n := 0
			for sc := view.Scan(); ; n++ {
				if _, _, ok := sc.Next(); !ok {
					break
				}
			}
			if n != rows {
				t.Errorf("concurrent scan saw %d rows, want %d", n, rows)
			}
		}()
	}
	wg.Wait()
}
