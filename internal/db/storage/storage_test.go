package storage

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
)

func newDev(t *testing.T) *Device {
	t.Helper()
	return NewDevice(cpusim.NewMachine(cpusim.IntelI7_4790()), 256<<20)
}

func testSchema() *catalog.Schema {
	return catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "val", Type: value.TypeFloat},
		catalog.Column{Name: "tag", Type: value.TypeStr, Width: 16},
	)
}

func TestBufferPoolHitAndMiss(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 64<<10, 8<<10) // 8 frames
	id := PageID{1, 0}
	a1 := bp.Fetch(id, false)
	if bp.Misses != 1 || bp.Hits != 0 {
		t.Fatalf("first fetch: hits=%d misses=%d", bp.Hits, bp.Misses)
	}
	a2 := bp.Fetch(id, false)
	if a1 != a2 {
		t.Fatal("same page must return the same frame")
	}
	if bp.Hits != 1 {
		t.Fatalf("second fetch should hit, hits=%d", bp.Hits)
	}
}

func TestBufferPoolEvicts(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 32<<10, 8<<10) // 4 frames
	for i := 0; i < 6; i++ {
		bp.Fetch(PageID{1, i}, true)
	}
	if bp.Contains(PageID{1, 0}) && bp.Contains(PageID{1, 1}) {
		t.Fatal("pool of 4 frames cannot hold 6 pages")
	}
	resident := 0
	for i := 0; i < 6; i++ {
		if bp.Contains(PageID{1, i}) {
			resident++
		}
	}
	if resident != 4 {
		t.Fatalf("resident pages = %d, want 4", resident)
	}
}

func TestBufferMissAddsIdleTime(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 64<<10, 8<<10)
	bp.Fetch(PageID{1, 0}, false)
	if got := dev.M.IdleSeconds(); got < dev.Disk.RandomReadSec*0.99 {
		t.Fatalf("idle = %v, want at least the random read latency", got)
	}
	before := dev.M.IdleSeconds()
	bp.Fetch(PageID{1, 0}, false)
	if dev.M.IdleSeconds() != before {
		t.Fatal("buffer hit must not add idle time")
	}
}

func TestPageCacheServesRereads(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 32<<10, 8<<10) // 4 frames
	// Read 8 pages: all first-ever -> disk latency each.
	for i := 0; i < 8; i++ {
		bp.Fetch(PageID{1, i}, false)
	}
	afterCold := dev.M.IdleSeconds()
	if afterCold < 8*dev.Disk.RandomReadSec*0.99 {
		t.Fatalf("cold reads too cheap: %v", afterCold)
	}
	// Page 0 was evicted (4 frames); re-fetching it must hit the OS page
	// cache, not the disk.
	bp.Fetch(PageID{1, 0}, false)
	delta := dev.M.IdleSeconds() - afterCold
	if delta > dev.Disk.PageCacheSec*1.5 {
		t.Fatalf("re-read cost %v, want page-cache cost ~%v", delta, dev.Disk.PageCacheSec)
	}
}

func TestSequentialMissIsCheaper(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 64<<10, 8<<10)
	bp.Fetch(PageID{1, 0}, true)
	seqIdle := dev.M.IdleSeconds()
	bp.Fetch(PageID{1, 1}, false)
	randIdle := dev.M.IdleSeconds() - seqIdle
	if randIdle <= seqIdle {
		t.Fatalf("random read (%v) should cost more than sequential (%v)", randIdle, seqIdle)
	}
}

func TestHeapFileRoundTrip(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 1<<20, 8<<10)
	hf := NewHeapFile(dev, bp, testSchema(), 24)
	for i := 0; i < 1000; i++ {
		id := hf.Append(value.Row{value.Int(int64(i)), value.Float(float64(i) * 1.5), value.Str("x")})
		if id != i {
			t.Fatalf("row id = %d, want %d", id, i)
		}
	}
	if hf.RowCount() != 1000 {
		t.Fatalf("row count = %d", hf.RowCount())
	}
	r, visible, err := hf.ReadRow(500, true)
	if err != nil {
		t.Fatal(err)
	}
	if !visible {
		t.Fatal("bulk-loaded row invisible to zero snapshot")
	}
	if r[0].I != 500 || r[1].F != 750 {
		t.Fatalf("row 500 = %v", r)
	}
	if _, _, err := hf.ReadRow(1000, true); err == nil {
		t.Fatal("out-of-range read must error")
	}
}

func TestHeapFileGeometry(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 1<<20, 8<<10)
	hf := NewHeapFile(dev, bp, testSchema(), 24)
	// Row width = 8+8+16+24 = 56; (8192-24)/56 = 145 rows per page.
	if hf.RowsPerPage() != 145 {
		t.Fatalf("rows per page = %d, want 145", hf.RowsPerPage())
	}
	for i := 0; i < 300; i++ {
		hf.Append(value.Row{value.Int(int64(i)), value.Float(0), value.Str("x")})
	}
	if hf.PageCount() != 3 {
		t.Fatalf("page count = %d, want 3", hf.PageCount())
	}
}

func TestSequentialScanLoadsStreamIndependently(t *testing.T) {
	dev := newDev(t)
	bp := NewBufferPool(dev, 4<<20, 8<<10)
	hf := NewHeapFile(dev, bp, testSchema(), 0)
	for i := 0; i < 2000; i++ {
		hf.Append(value.Row{value.Int(int64(i)), value.Float(0), value.Str("abcdefgh")})
	}
	// Warm: scan everything once so pages are resident.
	for sc := hf.Scan(); ; {
		if _, _, ok := sc.Next(); !ok {
			break
		}
	}
	before := dev.M.Hier.Counters()
	n := 0
	for sc := hf.Scan(); ; n++ {
		if _, _, ok := sc.Next(); !ok {
			break
		}
	}
	if n != 2000 {
		t.Fatalf("scanned %d rows", n)
	}
	d := dev.M.Hier.Counters().Sub(before)
	// Warm sequential scan: the 64KB file exceeds L1D, so first-touch
	// line misses happen, but every miss is served by L2 (no DRAM) and
	// streaming keeps stalls low.
	if mr := d.L1DMissRate(); mr > 0.45 {
		t.Fatalf("warm scan L1D miss rate = %.3f, want < 0.45", mr)
	}
	if d.MemAccesses != 0 {
		t.Fatalf("warm scan went to DRAM %d times", d.MemAccesses)
	}
	if d.StallCycles > d.Loads {
		t.Fatalf("scan stalls too much: %d stalls over %d loads", d.StallCycles, d.Loads)
	}
}
