package storage

import (
	"testing"

	"energydb/internal/db/txn"
	"energydb/internal/db/value"
)

func newHeap(t *testing.T) (*Device, *HeapFile) {
	t.Helper()
	dev := newDev(t)
	bp := NewBufferPool(dev, 1<<20, 8<<10)
	hf := NewHeapFile(dev, bp, testSchema(), 8)
	for i := 0; i < 10; i++ {
		hf.Append(value.Row{value.Int(int64(i)), value.Float(float64(i)), value.Str("x")})
	}
	return dev, hf
}

func TestInsertTxnInvisibleUntilCommit(t *testing.T) {
	dev, hf := newHeap(t)
	mgr := txn.NewManager()
	tx := mgr.Begin()
	id := hf.InsertTxn(tx, value.Row{value.Int(99), value.Float(0), value.Str("n")})
	if id != 10 {
		t.Fatalf("insert id = %d", id)
	}

	// An autocommit snapshot taken now must not see it; the writer must.
	dev.Snap = mgr.ReadSnap()
	if _, visible, err := hf.ReadRow(id, true); err != nil || visible {
		t.Fatalf("uncommitted insert visible to other snapshot (err=%v)", err)
	}
	dev.Snap = tx.Snap()
	if row, visible, _ := hf.ReadRow(id, true); !visible || row[0].I != 99 {
		t.Fatalf("writer cannot read own insert: %v %v", row, visible)
	}

	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	dev.Snap = mgr.ReadSnap()
	if _, visible, _ := hf.ReadRow(id, true); !visible {
		t.Fatal("committed insert invisible to fresh snapshot")
	}
}

func TestInsertTxnAbortLeavesTombstone(t *testing.T) {
	dev, hf := newHeap(t)
	mgr := txn.NewManager()
	tx := mgr.Begin()
	id := hf.InsertTxn(tx, value.Row{value.Int(99), value.Float(0), value.Str("n")})
	if err := mgr.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if hf.RowCount() != 11 {
		t.Fatalf("row ids must not be reused; count = %d", hf.RowCount())
	}
	dev.Snap = txn.Latest()
	if _, visible, _ := hf.ReadRow(id, true); visible {
		t.Fatal("aborted insert visible")
	}
	if hf.Data().LiveCount() != 10 {
		t.Fatalf("live count = %d, want 10", hf.Data().LiveCount())
	}
}

func TestUpdateTxnSnapshotStability(t *testing.T) {
	dev, hf := newHeap(t)
	mgr := txn.NewManager()

	// Reader snapshots before the update commits.
	reader := mgr.ReadSnap()

	tx := mgr.Begin()
	if _, err := hf.UpdateTxn(tx, 3, value.Row{value.Int(3), value.Float(99), value.Str("u")}); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}

	// Old snapshot walks the chain to the pre-update version.
	dev.Snap = reader
	row, visible, err := hf.ReadRow(3, true)
	if err != nil || !visible {
		t.Fatalf("old snapshot lost the row: %v", err)
	}
	if row[1].F != 3 {
		t.Fatalf("old snapshot sees new version: %v", row)
	}
	// New snapshot sees the update.
	dev.Snap = mgr.ReadSnap()
	row, _, _ = hf.ReadRow(3, true)
	if row[1].F != 99 {
		t.Fatalf("new snapshot missed the update: %v", row)
	}
}

func TestWriteWriteConflictFirstUpdaterWins(t *testing.T) {
	_, hf := newHeap(t)
	mgr := txn.NewManager()
	t1 := mgr.Begin()
	t2 := mgr.Begin()
	if _, err := hf.UpdateTxn(t1, 5, value.Row{value.Int(5), value.Float(1), value.Str("a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := hf.UpdateTxn(t2, 5, value.Row{value.Int(5), value.Float(2), value.Str("b")}); err != txn.ErrWriteConflict {
		t.Fatalf("second updater got %v, want ErrWriteConflict", err)
	}
	// Conflict persists after t1 commits (committed past t2's snapshot).
	if _, err := mgr.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := hf.UpdateTxn(t2, 5, value.Row{value.Int(5), value.Float(2), value.Str("b")}); err != txn.ErrWriteConflict {
		t.Fatalf("post-commit update got %v, want ErrWriteConflict", err)
	}
	// A transaction begun after the commit may update.
	t3 := mgr.Begin()
	if _, err := hf.UpdateTxn(t3, 5, value.Row{value.Int(5), value.Float(3), value.Str("c")}); err != nil {
		t.Fatalf("fresh-snapshot update failed: %v", err)
	}
}

func TestUpdateTxnAbortRestoresHead(t *testing.T) {
	dev, hf := newHeap(t)
	mgr := txn.NewManager()
	tx := mgr.Begin()
	if _, err := hf.UpdateTxn(tx, 3, value.Row{value.Int(3), value.Float(99), value.Str("u")}); err != nil {
		t.Fatal(err)
	}
	// Second update in the same txn chains on the first.
	if _, err := hf.UpdateTxn(tx, 3, value.Row{value.Int(3), value.Float(100), value.Str("v")}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Abort(tx); err != nil {
		t.Fatal(err)
	}
	dev.Snap = txn.Latest()
	row, visible, _ := hf.ReadRow(3, true)
	if !visible || row[1].F != 3 || row[2].S != "x" {
		t.Fatalf("abort did not restore original: %v %v", row, visible)
	}
	// The slot is writable again.
	t2 := mgr.Begin()
	if _, err := hf.UpdateTxn(t2, 3, value.Row{value.Int(3), value.Float(7), value.Str("w")}); err != nil {
		t.Fatalf("post-abort update failed: %v", err)
	}
}

func TestDeleteTxnLifecycle(t *testing.T) {
	dev, hf := newHeap(t)
	mgr := txn.NewManager()

	// Abort path: row survives.
	tx := mgr.Begin()
	if err := hf.DeleteTxn(tx, 2); err != nil {
		t.Fatal(err)
	}
	dev.Snap = tx.Snap()
	if _, visible, _ := hf.ReadRow(2, true); visible {
		t.Fatal("deleter still sees deleted row")
	}
	dev.Snap = mgr.ReadSnap()
	if _, visible, _ := hf.ReadRow(2, true); !visible {
		t.Fatal("uncommitted delete visible to others")
	}
	if err := mgr.Abort(tx); err != nil {
		t.Fatal(err)
	}
	dev.Snap = txn.Latest()
	if _, visible, _ := hf.ReadRow(2, true); !visible {
		t.Fatal("aborted delete removed the row")
	}

	// Commit path: old snapshots keep the row, new ones lose it.
	before := mgr.ReadSnap()
	tx2 := mgr.Begin()
	if err := hf.DeleteTxn(tx2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	dev.Snap = before
	if _, visible, _ := hf.ReadRow(2, true); !visible {
		t.Fatal("pre-delete snapshot lost the row")
	}
	dev.Snap = mgr.ReadSnap()
	if _, visible, _ := hf.ReadRow(2, true); visible {
		t.Fatal("committed delete still visible")
	}
	// Deleted head conflicts for any later writer.
	t3 := mgr.Begin()
	if _, err := hf.UpdateTxn(t3, 2, value.Row{value.Int(2), value.Float(0), value.Str("z")}); err != txn.ErrWriteConflict {
		t.Fatalf("update of deleted row got %v, want ErrWriteConflict", err)
	}
}

func TestScannerSkipsInvisible(t *testing.T) {
	dev, hf := newHeap(t)
	mgr := txn.NewManager()
	tx := mgr.Begin()
	hf.InsertTxn(tx, value.Row{value.Int(100), value.Float(0), value.Str("n")})
	if err := hf.DeleteTxn(tx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}

	// Pre-txn snapshot: 10 original rows.
	dev.Snap = txn.Snap{}
	n := 0
	for sc := hf.Scan(); ; n++ {
		if _, _, ok := sc.Next(); !ok {
			break
		}
	}
	if n != 10 {
		t.Fatalf("zero snapshot scan saw %d rows, want 10", n)
	}
	// Fresh snapshot: row 0 deleted, one insert added.
	dev.Snap = mgr.ReadSnap()
	ids := []int{}
	for sc := hf.Scan(); ; {
		_, id, ok := sc.Next()
		if !ok {
			break
		}
		ids = append(ids, id)
	}
	if len(ids) != 10 || ids[0] != 1 || ids[len(ids)-1] != 10 {
		t.Fatalf("fresh snapshot scan ids = %v", ids)
	}
}

func TestBatchScannerNilHoles(t *testing.T) {
	dev, hf := newHeap(t)
	mgr := txn.NewManager()
	tx := mgr.Begin()
	if err := hf.DeleteTxn(tx, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Commit(tx); err != nil {
		t.Fatal(err)
	}
	dev.Snap = mgr.ReadSnap()
	rows, base, ok := hf.BatchScan(64).NextBatch()
	if !ok || base != 0 || len(rows) != 10 {
		t.Fatalf("batch = %d rows at %d (ok=%v)", len(rows), base, ok)
	}
	for i, r := range rows {
		if i == 4 && r != nil {
			t.Fatal("deleted slot not a nil hole")
		}
		if i != 4 && r == nil {
			t.Fatalf("live slot %d is a nil hole", i)
		}
	}
}

func TestChainWalkChargesReader(t *testing.T) {
	dev, hf := newHeap(t)
	mgr := txn.NewManager()
	old := mgr.ReadSnap()
	for i := 0; i < 3; i++ {
		tx := mgr.Begin()
		if _, err := hf.UpdateTxn(tx, 0, value.Row{value.Int(0), value.Float(float64(i)), value.Str("u")}); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Commit(tx); err != nil {
			t.Fatal(err)
		}
	}
	// Reading through the old snapshot walks 3 chain hops; a fresh
	// snapshot reads the head directly. Same row payload width, so the
	// load-count difference is the chain traversal.
	dev.Snap = mgr.ReadSnap()
	before := dev.M.Hier.Counters()
	if _, visible, _ := hf.ReadRow(0, true); !visible {
		t.Fatal("head invisible to fresh snapshot")
	}
	headLoads := dev.M.Hier.Counters().Sub(before).Loads

	dev.Snap = old
	before = dev.M.Hier.Counters()
	row, visible, _ := hf.ReadRow(0, true)
	if !visible || row[1].F != 0 {
		t.Fatalf("old snapshot read = %v (visible=%v)", row, visible)
	}
	oldLoads := dev.M.Hier.Counters().Sub(before).Loads
	if oldLoads < headLoads+3 {
		t.Fatalf("chain walk charged %d loads vs head %d, want >= +3", oldLoads, headLoads)
	}
}
