// Package txn implements the transaction manager for MVCC snapshot
// isolation: monotonically published commit timestamps, transaction
// identities, and the begin/end-timestamp visibility rule every versioned
// tuple chain in internal/db/storage is read through.
//
// # Timestamp encoding
//
// A version's begin and end fields hold either a commit timestamp (below
// TxnIDBase) or the identity of the transaction that wrote it (at or above
// TxnIDBase, Hekaton-style). Bulk-loaded data carries begin 0 — committed
// before every snapshot. Infinity marks a live version's open end; Aborted
// marks a version whose creating transaction rolled back (never visible to
// anyone, forever).
//
// # Commit protocol
//
// Commit serializes on the manager's commit mutex: the committing
// transaction stamps every version it wrote with the next timestamp and
// only then publishes that timestamp as the new snapshot horizon
// (publish-last). A reader that snapshots the horizon therefore either sees
// none of a transaction's versions (it began before publication) or all of
// them — partially stamped state is unreachable because the horizon still
// points below the new timestamp while stamping runs. Aborts need no mutex:
// they only un-write the aborting transaction's own versions.
//
// # Locking model
//
// The manager's commit mutex is a txn-level lock in the engine stack's
// documented order (engine → txn → storage → btree, enforced by the
// lockorder analyzer): commit stamping touches only version atomics, never
// a storage or btree lock. Undo records MAY take storage.TableData's lock
// (to swap a chain head back), which respects the order.
package txn

import (
	"errors"
	"sync"
	"sync/atomic"
)

// TxnIDBase splits the timestamp space: values below are commit timestamps,
// values at or above are transaction IDs (uncommitted versions).
const TxnIDBase = uint64(1) << 62

// Infinity is the open end timestamp of a live version.
const Infinity = ^uint64(0)

// Aborted marks a version whose creating transaction rolled back. It sits
// above TxnIDBase and can never equal a real transaction ID, so the
// visibility rule rejects it for every snapshot.
const Aborted = Infinity - 1

// MaxCommitTS is the largest valid commit timestamp.
const MaxCommitTS = TxnIDBase - 1

// ErrWriteConflict is the first-updater-wins outcome: the head version of
// the target row was written by another in-flight transaction, or committed
// after this transaction's snapshot. The statement's transaction must
// abort; retrying on a fresh snapshot is the client's move.
var ErrWriteConflict = errors.New("txn: write-write conflict (first updater wins)")

// ErrNotActive reports a commit or abort of a finished transaction.
var ErrNotActive = errors.New("txn: transaction is not active")

// Snap is a snapshot: the published commit horizon this reader observes,
// plus the reader's own transaction ID (0 for autocommit reads) so a
// transaction sees its own uncommitted writes.
type Snap struct {
	// TS is the commit horizon: versions committed at or below it are
	// visible.
	TS uint64
	// ID is the observing transaction (0 when reading outside one).
	ID uint64
}

// Latest is the read-latest-committed snapshot: every committed version is
// visible, every in-flight one is not. Maintenance paths (index builds,
// statistics, recovery checks) read through it.
func Latest() Snap { return Snap{TS: MaxCommitTS} }

// Visible applies the snapshot-isolation visibility rule to one version's
// begin/end pair.
func (s Snap) Visible(begin, end uint64) bool {
	if begin >= TxnIDBase {
		// Uncommitted (or aborted): visible only to its own writer.
		if begin != s.ID {
			return false
		}
	} else if begin > s.TS {
		// Committed after this snapshot.
		return false
	}
	if end == s.ID {
		// Deleted or superseded by this transaction itself.
		return false
	}
	if end < TxnIDBase && end <= s.TS {
		// Deleted at or before this snapshot.
		return false
	}
	return true
}

// Record is one undoable write registered with its transaction: Commit
// stamps the commit timestamp into the version(s) it touched, Abort
// un-writes them. Implementations live in the storage layer.
type Record interface {
	Commit(ts uint64)
	Abort()
}

// Status is a transaction's lifecycle state.
type Status int

// Transaction states.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Txn is one transaction: an identity, the snapshot taken at begin
// (repeatable reads), and the undo/commit log of its writes. A Txn is owned
// by one goroutine (the session's worker); only the manager's commit path
// touches shared state.
type Txn struct {
	id      uint64
	snap    Snap
	mgr     *Manager
	status  Status
	records []Record
}

// ID returns the transaction identity (>= TxnIDBase).
func (t *Txn) ID() uint64 { return t.id }

// Snap returns the transaction's snapshot (horizon at begin + own ID).
func (t *Txn) Snap() Snap { return t.snap }

// Status returns the lifecycle state.
func (t *Txn) Status() Status { return t.status }

// Writes returns the number of registered write records.
func (t *Txn) Writes() int { return len(t.records) }

// Log registers one write for commit stamping / abort undo.
func (t *Txn) Log(r Record) { t.records = append(t.records, r) }

// Manager allocates transaction IDs and commit timestamps and publishes the
// snapshot horizon. One manager serves one table store; all fields are
// atomics or guarded by commitMu, so Begin/Commit/Abort may be called from
// any worker goroutine.
type Manager struct {
	// last is the published commit horizon (read by every new snapshot).
	last atomic.Uint64
	// next allocates transaction serials.
	next atomic.Uint64

	// commitMu serializes commit stamping and horizon publication.
	commitMu sync.Mutex

	active    atomic.Int64
	started   atomic.Uint64
	committed atomic.Uint64
	aborted   atomic.Uint64
}

// NewManager returns a manager with an empty history (horizon 0).
func NewManager() *Manager { return &Manager{} }

// ReadSnap returns a fresh autocommit read snapshot at the current horizon.
func (m *Manager) ReadSnap() Snap { return Snap{TS: m.last.Load()} }

// Begin starts a transaction with a snapshot at the current horizon.
func (m *Manager) Begin() *Txn {
	id := TxnIDBase + m.next.Add(1)
	m.started.Add(1)
	m.active.Add(1)
	return &Txn{
		id:   id,
		snap: Snap{TS: m.last.Load(), ID: id},
		mgr:  m,
	}
}

// Commit stamps every version the transaction wrote with the next commit
// timestamp, then publishes it (publish-last; see the package comment). It
// returns the commit timestamp; read-only transactions commit without
// consuming one.
func (m *Manager) Commit(t *Txn) (uint64, error) {
	if t.status != StatusActive {
		return 0, ErrNotActive
	}
	var ts uint64
	if len(t.records) > 0 {
		m.commitMu.Lock()
		ts = m.last.Load() + 1
		// The manager is shared across workers and machine-free; the
		// committing worker pays for each stamp via Device.ChargeCommit
		// in engine.Commit.
		//lint:nocharge stamping is charged by engine.Commit (Device.ChargeCommit)
		for _, r := range t.records {
			r.Commit(ts)
		}
		m.last.Store(ts)
		m.commitMu.Unlock()
	} else {
		ts = m.last.Load()
	}
	t.status = StatusCommitted
	t.records = nil
	m.active.Add(-1)
	m.committed.Add(1)
	return ts, nil
}

// Abort un-writes the transaction's versions in reverse order and marks it
// aborted. No timestamp is consumed and no horizon moves, so concurrent
// readers notice nothing.
func (m *Manager) Abort(t *Txn) error {
	if t.status != StatusActive {
		return ErrNotActive
	}
	// The undo walk is charged by engine.Rollback (Device.ChargeUndo) on
	// the aborting worker's device; the shared manager stays machine-free.
	//lint:nocharge undo is charged by engine.Rollback (Device.ChargeUndo)
	for i := len(t.records) - 1; i >= 0; i-- {
		t.records[i].Abort()
	}
	t.status = StatusAborted
	t.records = nil
	m.active.Add(-1)
	m.aborted.Add(1)
	return nil
}

// Stats is a snapshot of the manager's transaction counters.
type Stats struct {
	Active    int64
	Started   uint64
	Committed uint64
	Aborted   uint64
}

// StatsSnapshot reads the counters (each atomically; the set is advisory).
func (m *Manager) StatsSnapshot() Stats {
	return Stats{
		Active:    m.active.Load(),
		Started:   m.started.Load(),
		Committed: m.committed.Load(),
		Aborted:   m.aborted.Load(),
	}
}

// Horizon returns the published commit timestamp horizon.
func (m *Manager) Horizon() uint64 { return m.last.Load() }
