package txn

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestVisibilityTable(t *testing.T) {
	const (
		idA = TxnIDBase + 7
		idB = TxnIDBase + 9
	)
	cases := []struct {
		name       string
		snap       Snap
		begin, end uint64
		want       bool
	}{
		{"bulk-load visible to zero snapshot", Snap{}, 0, Infinity, true},
		{"committed at horizon", Snap{TS: 5}, 5, Infinity, true},
		{"committed after horizon", Snap{TS: 4}, 5, Infinity, false},
		{"deleted before horizon", Snap{TS: 5}, 1, 5, false},
		{"deleted after horizon", Snap{TS: 4}, 1, 5, true},
		{"own uncommitted insert", Snap{TS: 4, ID: idA}, idA, Infinity, true},
		{"foreign uncommitted insert", Snap{TS: 4, ID: idA}, idB, Infinity, false},
		{"foreign uncommitted insert, autocommit reader", Snap{TS: 4}, idB, Infinity, false},
		{"own delete hides version", Snap{TS: 4, ID: idA}, 1, idA, false},
		{"foreign uncommitted delete still visible", Snap{TS: 4, ID: idA}, 1, idB, true},
		{"aborted version", Snap{TS: 4}, Aborted, Infinity, false},
		{"aborted version, latest reader", Latest(), Aborted, Infinity, false},
		{"latest sees any committed", Latest(), 1 << 40, Infinity, true},
		{"latest rejects uncommitted", Latest(), idA, Infinity, false},
	}
	for _, c := range cases {
		if got := c.snap.Visible(c.begin, c.end); got != c.want {
			t.Errorf("%s: Visible(%#x,%#x) with snap %+v = %v, want %v",
				c.name, c.begin, c.end, c.snap, got, c.want)
		}
	}
}

// fakeRecord stamps a begin field like a storage-layer insert record.
type fakeRecord struct {
	begin   atomic.Uint64
	aborted atomic.Bool
}

func (r *fakeRecord) Commit(ts uint64) { r.begin.Store(ts) }
func (r *fakeRecord) Abort()           { r.aborted.Store(true); r.begin.Store(Aborted) }

func TestCommitPublishLast(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	rec := &fakeRecord{}
	rec.begin.Store(tx.ID())
	tx.Log(rec)

	if m.Horizon() != 0 {
		t.Fatalf("horizon before commit = %d, want 0", m.Horizon())
	}
	ts, err := m.Commit(tx)
	if err != nil {
		t.Fatal(err)
	}
	if ts != 1 || m.Horizon() != 1 {
		t.Fatalf("commit ts = %d horizon = %d, want 1/1", ts, m.Horizon())
	}
	if got := rec.begin.Load(); got != 1 {
		t.Fatalf("record stamped with %d, want 1", got)
	}
	if _, err := m.Commit(tx); err != ErrNotActive {
		t.Fatalf("double commit err = %v, want ErrNotActive", err)
	}
}

func TestReadOnlyCommitConsumesNoTimestamp(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if _, err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if m.Horizon() != 0 {
		t.Fatalf("read-only commit moved horizon to %d", m.Horizon())
	}
}

func TestAbortUndoesInReverse(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	a, b := &fakeRecord{}, &fakeRecord{}
	tx.Log(a)
	tx.Log(b)
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if !a.aborted.Load() || !b.aborted.Load() {
		t.Fatal("abort did not undo all records")
	}
	if tx.Status() != StatusAborted {
		t.Fatalf("status = %v, want aborted", tx.Status())
	}
	if err := m.Abort(tx); err != ErrNotActive {
		t.Fatalf("double abort err = %v, want ErrNotActive", err)
	}
	s := m.StatsSnapshot()
	if s.Active != 0 || s.Started != 1 || s.Aborted != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestConcurrentCommitAtomicity drives writers and readers together: a
// reader that snapshots the horizon must see either all or none of a
// transaction's stamps — never a partially committed pair.
func TestConcurrentCommitAtomicity(t *testing.T) {
	m := NewManager()
	const writers = 8
	const rounds = 200

	type pair struct{ a, b *fakeRecord }
	var mu sync.Mutex
	all := make([]*pair, 0, writers*rounds)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				p := &pair{&fakeRecord{}, &fakeRecord{}}
				p.a.begin.Store(tx.ID())
				p.b.begin.Store(tx.ID())
				tx.Log(p.a)
				tx.Log(p.b)
				mu.Lock()
				all = append(all, p)
				mu.Unlock()
				if _, err := m.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := m.ReadSnap()
			mu.Lock()
			pairs := append([]*pair(nil), all...)
			mu.Unlock()
			for _, p := range pairs {
				av := snap.Visible(p.a.begin.Load(), Infinity)
				bv := snap.Visible(p.b.begin.Load(), Infinity)
				if av != bv {
					t.Errorf("torn commit: a visible=%v b visible=%v", av, bv)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	s := m.StatsSnapshot()
	if s.Committed != writers*rounds || s.Active != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if m.Horizon() != writers*rounds {
		t.Fatalf("horizon = %d, want %d", m.Horizon(), writers*rounds)
	}
}
