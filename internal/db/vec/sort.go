package vec

import (
	"sort"

	"energydb/internal/db/catalog"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// Sort is the batch-at-a-time sort: sort keys are extracted in bulk — one
// kernel per key per input batch, through the same typed vectors every other
// kernel uses — into columnar key stores, the ordering pass produces a
// selection vector over the collected rows (the comparator keeps the row
// sort's discipline: a poll and two dependent buffer loads per comparison),
// and output batches are emitted lazily backed by the sorted run, so a
// parent kernel only materializes the columns it actually touches and no
// per-row output copy happens at all.
type Sort struct {
	Ctx   *exec.Ctx
	Child Operator
	Keys  []exec.SortKey
	// BatchSize overrides the L1D-derived output batch width (benchmarks
	// sweep it); 0 picks BatchSizeFor.
	BatchSize int

	rows    []value.Row
	keys    [][]value.Value // columnar: keys[k][i] is key k of collected row i
	idx     []int32         // ordering selection vector over rows
	base    uint64
	keyBase uint64
	pos     int
	out     *Batch
	chunk   []value.Row
	p       *pool
}

// Schema implements Operator.
func (s *Sort) Schema() *catalog.Schema { return s.Child.Schema() }

// Open implements Operator: drains the child batch-at-a-time, extracting
// key columns in bulk, then orders the collected rows.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	h := s.Ctx.M.Hier
	ncols := len(s.Child.Schema().Columns)
	width := s.BatchSize
	if width <= 0 {
		width = BatchSizeFor(s.Ctx.M.Profile.Mem)
	}
	if width > MaxBatch {
		width = MaxBatch
	}
	s.p = newPool(s.Ctx, MaxBatch)
	s.keyBase = s.Ctx.Arena.Alloc(uint64(MaxBatch)*8*uint64(len(s.Keys)+1), memsim.LineSize)
	s.rows = s.rows[:0]
	s.keys = make([][]value.Value, len(s.Keys))
	for {
		b, err := s.Child.Next()
		if err != nil {
			s.Child.Close()
			return err
		}
		if b == nil {
			break
		}
		s.Ctx.Poll()
		n := b.Len()
		if n == 0 {
			continue
		}
		// Bulk key extraction: evalVec computes each key as a typed vector
		// (columns alias the batch, computed keys run as kernels), then one
		// packing primitive per key appends it to the columnar key store.
		s.p.reset()
		for kc := range s.Keys {
			kv := evalVec(s.Ctx, s.p, s.Keys[kc].Expr, b)
			s.Ctx.TupleCost()
			if !kv.Const() {
				h.LoadRepeat(kv.addr, uint64(n)*KernelLoadsPerVal)
			}
			h.Exec(uint64(n), memsim.InstrAdd)
			h.StoreRepeat(s.keyBase, uint64(n)*KernelStoresPerVal)
			for k := 0; k < n; k++ {
				s.keys[kc] = append(s.keys[kc], kv.Get(b.Pos(k)))
			}
		}
		// Collect the rows behind the keys (one dispatch per batch; the
		// sort-buffer entry stores are charged when the buffer is sized).
		s.Ctx.TupleCost()
		for k := 0; k < n; k++ {
			dst := make(value.Row, ncols)
			b.Row(k, dst)
			s.rows = append(s.rows, dst)
		}
	}
	if err := s.Child.Close(); err != nil {
		return err
	}

	// The sort buffer: one pointer-sized entry per row, written in
	// batch-width chunks with batch-granularity cancellation.
	n := len(s.rows)
	nn := uint64(n)
	if nn == 0 {
		nn = 1
	}
	s.base = s.Ctx.Arena.Alloc(nn*16, memsim.PageSize)
	for lo := 0; lo < n; lo += width {
		hi := lo + width
		if hi > n {
			hi = n
		}
		s.Ctx.PollEvery(lo)
		s.Ctx.TupleCost()
		h.StoreRepeat(s.base+uint64(lo)*16, uint64(hi-lo))
	}

	// Ordering pass: identical comparator discipline to the row sort — the
	// O(n log n) comparison loop has no batch boundary, so it polls and
	// chases both row pointers itself.
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		s.Ctx.Poll()
		h.Load(s.base+uint64(idx[a])*16%(nn*16), true)
		h.Load(s.base+uint64(idx[b])*16%(nn*16), true)
		s.Ctx.Compute(len(s.Keys))
		return s.less(int(idx[a]), int(idx[b]))
	})
	s.idx = idx
	// Final placement: the ordering selection vector is stored in one bulk
	// pass instead of a per-row store loop.
	if n > 0 {
		h.StoreRepeat(s.base, uint64(n))
	}

	s.pos = 0
	s.out = NewBatch(s.Ctx.Arena, s.Schema(), width)
	s.chunk = make([]value.Row, 0, width)
	return nil
}

func (s *Sort) less(a, b int) bool {
	for k, sk := range s.Keys {
		c := value.Compare(s.keys[k][a], s.keys[k][b])
		if c == 0 {
			continue
		}
		if sk.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Next implements Operator: emits the next batch of the sorted run, lazily
// backed by the ordered rows — one dispatch and one streaming read of the
// run per batch, no per-row output copy.
func (s *Sort) Next() (*Batch, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	s.Ctx.Poll()
	n := s.out.Cap()
	if rem := len(s.rows) - s.pos; rem < n {
		n = rem
	}
	s.Ctx.TupleCost()
	s.Ctx.M.Hier.LoadRange(s.base+uint64(s.pos)*16, uint64(n)*16)
	s.chunk = s.chunk[:0]
	for _, j := range s.idx[s.pos : s.pos+n] {
		s.chunk = append(s.chunk, s.rows[j])
	}
	s.out.N = n
	s.out.Sel = nil
	s.out.SetRows(s.chunk)
	s.pos += n
	return s.out, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	s.keys = nil
	s.idx = nil
	return nil
}
