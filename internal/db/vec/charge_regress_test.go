package vec

import (
	"math/rand"
	"testing"

	"energydb/internal/db/exec"
	"energydb/internal/db/value"
)

// TestProjectChargesDispatch is the regression test for the chargepath
// finding fixed in this PR: a projection whose expressions reach no
// kernel (constants broadcast, and evalVec's Col case hands back the
// child's vector as-is) charged nothing per batch, so before
// Project.Next paid its per-batch TupleCost the operator emitted every
// batch with zero attributed work in its Next phase — exactly the shape
// the fuzz oracle's zero-meter check now guards at runtime. Open-phase
// setup charges (pool allocation) are excluded by snapshotting the
// meter after Open, so the assertion sees only the emit path.
func TestProjectChargesDispatch(t *testing.T) {
	const batchSize = 64
	e, tbl := fuzzTable(rand.New(rand.NewSource(42)), 300)
	ms := exec.NewMeterSet(e.Ctx)
	mScan := &exec.Meter{Label: "scan"}
	mProj := &exec.Meter{Label: "project", Kids: []*exec.Meter{mScan}}
	top := &Metered{Set: ms, M: mProj, Child: &Project{
		Ctx: e.Ctx,
		Child: &Metered{Set: ms, M: mScan, Child: &Scan{
			Ctx: e.Ctx, File: tbl.File, BatchSize: batchSize,
		}},
		Exprs: []exec.Expr{exec.Const{V: value.Int(7)}, exec.Const{V: value.Str("k")}},
	}}
	if err := top.Open(); err != nil {
		t.Fatalf("open failed: %v", err)
	}
	defer top.Close()
	setup := mProj.Own()
	batches, rows := 0, 0
	for {
		b, err := top.Next()
		if err != nil {
			t.Fatalf("next failed: %v", err)
		}
		if b == nil {
			break
		}
		batches++
		rows += b.Len()
	}
	if rows == 0 {
		t.Fatal("projection emitted no rows")
	}
	delta := mProj.Own().Sub(setup)
	if got := delta.Instructions(); got < uint64(batches) {
		t.Fatalf("kernel-free projection charged %d instructions while emitting %d batches; want at least one dispatch per batch",
			got, batches)
	}
}
