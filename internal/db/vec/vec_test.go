package vec

import (
	"reflect"
	"sync/atomic"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

func TestBatchSizeFor(t *testing.T) {
	if got := BatchSizeFor(memsim.I7_4790()); got != 1024 {
		t.Errorf("i7-4790 batch size = %d, want 1024", got)
	}
	if got := BatchSizeFor(memsim.ARM1176JZFS()); got != 512 {
		t.Errorf("ARM1176JZF-S batch size = %d, want 512", got)
	}
	tiny := memsim.Config{L1D: memsim.CacheConfig{SizeBytes: 16, Ways: 1, LatencyCycles: 1}}
	if got := BatchSizeFor(tiny); got < MinBatch || got > MaxBatch {
		t.Errorf("tiny L1D batch size = %d, out of [%d, %d]", got, MinBatch, MaxBatch)
	}
}

// testEngine builds a small SQLite-profile engine with one table covering
// every datum type, including NULLs.
func testEngine(t testing.TB, rows int) (*engine.Engine, *engine.Table) {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	tbl := e.CreateTable("t", catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "price", Type: value.TypeFloat},
		catalog.Column{Name: "name", Type: value.TypeStr, Width: 8},
		catalog.Column{Name: "day", Type: value.TypeDate},
	))
	names := []string{"alpha", "beta", "gamma", ""}
	for i := 0; i < rows; i++ {
		price := value.Float(float64(i%97) / 4)
		if i%13 == 0 {
			price = value.Null()
		}
		e.Insert(tbl, value.Row{
			value.Int(int64(i)),
			value.Int(int64(i % 7)),
			price,
			value.Str(names[i%len(names)]),
			value.Date(int64(i % 365)),
		})
	}
	return e, tbl
}

func col(idx int) exec.Expr { return exec.Col{Idx: idx} }

func testPred() exec.Expr {
	// (price > 3 AND id < 900) OR name LIKE 'a%'
	return exec.BinOp{Op: exec.OpOr,
		L: exec.BinOp{Op: exec.OpAnd,
			L: exec.BinOp{Op: exec.OpGt, L: col(2), R: exec.Const{V: value.Float(3)}},
			R: exec.BinOp{Op: exec.OpLt, L: col(0), R: exec.Const{V: value.Int(900)}},
		},
		R: exec.Like{E: col(3), Pattern: "a%"},
	}
}

// collectVec drains a vectorized chain through the RowSource adapter.
func collectVec(t *testing.T, op Operator) []value.Row {
	t.Helper()
	rows, err := exec.Collect(&RowSource{Child: op})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestScanFilterProjectMatchesRow(t *testing.T) {
	for _, batch := range []int{1, 3, 64, 1024} {
		e, tbl := testEngine(t, 500)
		pred := testPred()
		exprs := []exec.Expr{
			col(0),
			exec.BinOp{Op: exec.OpMul, L: col(2), R: exec.Const{V: value.Float(2)}},
			exec.BinOp{Op: exec.OpDiv, L: col(2), R: col(1)},
			exec.Not{E: exec.InList{E: col(1), List: []value.Value{value.Int(2), value.Int(4)}}},
		}
		want, err := exec.Collect(&exec.Project{
			Ctx: e.Ctx, Child: e.Scan(tbl, pred), Exprs: exprs,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := collectVec(t, &Project{
			Ctx:   e.Ctx,
			Child: &Scan{Ctx: e.Ctx, File: tbl.File, Pred: pred, BatchSize: batch},
			Exprs: exprs,
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch=%d: vector result differs from row result (%d vs %d rows)",
				batch, len(got), len(want))
		}
	}
}

func TestPruneMatchesRow(t *testing.T) {
	e, tbl := testEngine(t, 200)
	cols := []int{3, 0}
	want, err := exec.Collect(&exec.Prune{Ctx: e.Ctx, Child: e.Scan(tbl, nil), Cols: cols})
	if err != nil {
		t.Fatal(err)
	}
	vp := &Prune{Ctx: e.Ctx, Child: &Scan{Ctx: e.Ctx, File: tbl.File}, Cols: cols}
	got := collectVec(t, vp)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("vector prune differs from row prune")
	}
	if !reflect.DeepEqual(vp.Schema().Names(), []string{"name", "id"}) {
		t.Fatalf("prune schema = %v", vp.Schema().Names())
	}
}

func TestAggMatchesRow(t *testing.T) {
	e, tbl := testEngine(t, 700)
	groupBy := []exec.Expr{col(1)}
	aggs := []exec.AggSpec{
		{Kind: exec.AggSum, Arg: col(2), Name: "total"},
		{Kind: exec.AggCount, Name: "n"},
		{Kind: exec.AggMin, Arg: col(0), Name: "lo"},
		{Kind: exec.AggMax, Arg: col(2), Name: "hi"},
		{Kind: exec.AggAvg, Arg: col(2), Name: "mean"},
	}
	pred := testPred()
	want, err := exec.Collect(&exec.GroupBy{
		Ctx: e.Ctx, Child: e.Scan(tbl, pred), GroupBy: groupBy, Aggs: aggs,
	})
	if err != nil {
		t.Fatal(err)
	}
	va := &Agg{
		Ctx:     e.Ctx,
		Child:   &Scan{Ctx: e.Ctx, File: tbl.File, Pred: pred, BatchSize: 64},
		GroupBy: groupBy, Aggs: aggs,
	}
	got := collectVec(t, va)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("vector agg differs from row agg:\n got %v\nwant %v", got, want)
	}
	if !reflect.DeepEqual(va.Schema().Names(), []string{"g0", "total", "n", "lo", "hi", "mean"}) {
		t.Fatalf("agg schema = %v", va.Schema().Names())
	}
}

// TestScalarAggNoGroups checks the no-group degenerate case (one output row).
func TestScalarAggNoGroups(t *testing.T) {
	e, tbl := testEngine(t, 100)
	aggs := []exec.AggSpec{{Kind: exec.AggSum, Arg: col(0), Name: "s"}}
	want, err := exec.Collect(&exec.GroupBy{Ctx: e.Ctx, Child: e.Scan(tbl, nil), Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	got := collectVec(t, &Agg{Ctx: e.Ctx, Child: &Scan{Ctx: e.Ctx, File: tbl.File}, Aggs: aggs})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scalar agg differs: got %v want %v", got, want)
	}
}

// TestVectorDemote checks that a vector demotes to the exact fallback
// payload when a kernel produces mixed types, without losing values.
func TestVectorDemote(t *testing.T) {
	arena := memsim.NewArena(1<<20, 1<<20)
	v := NewVector(arena, value.TypeNull, 8)
	v.Set(0, value.Int(4))
	v.Set(1, value.Null())
	v.Set(2, value.Float(2.5)) // mismatch with Int: demotes
	v.Set(3, value.Str("x"))
	want := []value.Value{value.Int(4), value.Null(), value.Float(2.5), value.Str("x")}
	for i, w := range want {
		if got := v.Get(i); !reflect.DeepEqual(got, w) {
			t.Errorf("Get(%d) = %v, want %v", i, got, w)
		}
	}
}

// TestMeterPartition checks the EXPLAIN ENERGY invariant on a metered
// vectorized chain: the per-operator exclusive counters sum exactly to the
// statement's counter delta.
func TestMeterPartition(t *testing.T) {
	e, tbl := testEngine(t, 400)
	ms := exec.NewMeterSet(e.Ctx)
	mScan := &exec.Meter{Label: "scan"}
	mProj := &exec.Meter{Label: "proj", Kids: []*exec.Meter{mScan}}
	mTop := &exec.Meter{Label: "top", Kids: []*exec.Meter{mProj}}
	chain := &Metered{Set: ms, M: mProj, Child: &Project{
		Ctx: e.Ctx,
		Child: &Metered{Set: ms, M: mScan, Child: &Scan{
			Ctx: e.Ctx, File: tbl.File, Pred: testPred(), BatchSize: 128,
		}},
		Exprs: []exec.Expr{col(0), exec.BinOp{Op: exec.OpAdd, L: col(2), R: col(1)}},
	}}
	top := &exec.Metered{Set: ms, M: mTop, Child: &RowSource{Child: chain}}

	before := e.M.Hier.Counters()
	n, err := exec.Drain(top)
	if err != nil {
		t.Fatal(err)
	}
	delta := e.M.Hier.Counters().Sub(before)
	sum := mScan.Own().Add(mProj.Own()).Add(mTop.Own())
	if sum != delta {
		t.Fatalf("metered sum %+v != statement delta %+v", sum, delta)
	}
	if inc := mTop.Inclusive(); inc != delta {
		t.Fatalf("root inclusive %+v != statement delta %+v", inc, delta)
	}
	if mProj.Rows() != n || mTop.Rows() != n {
		t.Fatalf("meter rows scan=%d proj=%d top=%d, drained %d",
			mScan.Rows(), mProj.Rows(), mTop.Rows(), n)
	}
}

// TestCancelVecScan checks that a pre-armed cancel flag stops a vectorized
// scan at its per-batch checkpoint.
func TestCancelVecScan(t *testing.T) {
	e, tbl := testEngine(t, 300)
	var flag atomic.Bool
	flag.Store(true)
	e.Ctx.Cancel = &flag
	_, err := exec.Drain(&RowSource{Child: &Scan{Ctx: e.Ctx, File: tbl.File, BatchSize: 32}})
	if err != exec.ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestVecCheaperPerRow checks the premise of the planner's mode choice: on a
// full-table filter the vector path advances strictly fewer counters per row
// than the row path, while a tiny input keeps the row path cheaper in total
// (batch dispatch overhead dominates).
func TestVecCheaperPerRow(t *testing.T) {
	e, tbl := testEngine(t, 2000)
	pred := testPred()

	before := e.M.Hier.Counters()
	if _, err := exec.Drain(e.Scan(tbl, pred)); err != nil {
		t.Fatal(err)
	}
	rowDelta := e.M.Hier.Counters().Sub(before)

	before = e.M.Hier.Counters()
	if _, err := exec.Drain(&RowSource{Child: &Scan{Ctx: e.Ctx, File: tbl.File, Pred: pred}}); err != nil {
		t.Fatal(err)
	}
	vecDelta := e.M.Hier.Counters().Sub(before)

	if vecDelta.L1DAccesses >= rowDelta.L1DAccesses {
		t.Errorf("vector L1D %d >= row L1D %d on 2000 rows", vecDelta.L1DAccesses, rowDelta.L1DAccesses)
	}
	if vecDelta.Instructions() >= rowDelta.Instructions() {
		t.Errorf("vector instructions %d >= row instructions %d on 2000 rows",
			vecDelta.Instructions(), rowDelta.Instructions())
	}
}
