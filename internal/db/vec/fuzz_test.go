package vec

import (
	"math/rand"
	"reflect"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// fuzzTable seeds a table covering every datum type (NULLs included) with
// deterministic pseudo-random content.
func fuzzTable(r *rand.Rand, rows int) (*engine.Engine, *engine.Table) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	tbl := e.CreateTable("t", catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "price", Type: value.TypeFloat},
		catalog.Column{Name: "name", Type: value.TypeStr, Width: 8},
		catalog.Column{Name: "day", Type: value.TypeDate},
	))
	names := []string{"alpha", "beta", "gamma", "ax", ""}
	for i := 0; i < rows; i++ {
		price := value.Float(float64(r.Intn(500)) / 4)
		if r.Intn(11) == 0 {
			price = value.Null()
		}
		e.Insert(tbl, value.Row{
			value.Int(int64(r.Intn(2000))),
			value.Int(int64(r.Intn(6))),
			price,
			value.Str(names[r.Intn(len(names))]),
			value.Date(int64(r.Intn(365))),
		})
	}
	return e, tbl
}

var fuzzOps = []exec.BinOpKind{
	exec.OpAdd, exec.OpSub, exec.OpMul, exec.OpDiv,
	exec.OpEq, exec.OpNe, exec.OpLt, exec.OpLe, exec.OpGt, exec.OpGe,
	exec.OpAnd, exec.OpOr,
}

var fuzzPatterns = []string{"a%", "%a", "%am%", "alpha", "", "%"}

// randExpr draws a random expression over the fuzz table's five columns,
// including shapes that demote vectors (mixed int/float arithmetic over
// nullable inputs), NULL propagation, and division by zero.
func randExpr(r *rand.Rand, depth int) exec.Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return exec.Const{V: value.Int(int64(r.Intn(100)))}
		case 1:
			return exec.Const{V: value.Float(float64(r.Intn(400)) / 4)}
		default:
			return exec.Col{Idx: r.Intn(5)}
		}
	}
	switch r.Intn(10) {
	case 0:
		return exec.Not{E: randExpr(r, depth-1)}
	case 1:
		return exec.Like{E: exec.Col{Idx: 3}, Pattern: fuzzPatterns[r.Intn(len(fuzzPatterns))]}
	case 2:
		list := make([]value.Value, r.Intn(3)+1)
		for i := range list {
			list[i] = value.Int(int64(r.Intn(8)))
		}
		return exec.InList{E: exec.Col{Idx: r.Intn(5)}, List: list}
	default:
		return exec.BinOp{
			Op: fuzzOps[r.Intn(len(fuzzOps))],
			L:  randExpr(r, depth-1),
			R:  randExpr(r, depth-1),
		}
	}
}

// runMetered drains op with every operator's meter registered in ms and
// checks the ledger-partition invariant: the per-operator exclusive
// counters must sum exactly to the statement's counter delta.
func runMetered(t *testing.T, e *engine.Engine, op exec.Operator, ms *exec.MeterSet, meters []*exec.Meter) []value.Row {
	t.Helper()
	before := e.M.Hier.Counters()
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	delta := e.M.Hier.Counters().Sub(before)
	var sum memsim.Counters
	for _, m := range meters {
		sum = sum.Add(m.Own())
	}
	if sum != delta {
		t.Fatalf("metered counters do not partition the statement delta:\n sum   %+v\n delta %+v", sum, delta)
	}
	return rows
}

// FuzzVecExec is the differential fuzzer for the vectorized engine: any
// random table, predicate and projection/aggregation must produce an
// identical result set through the row and vector paths, and on both paths
// the per-operator metered counters must sum exactly to that path's
// statement counter delta (the EXPLAIN ENERGY partition invariant).
func FuzzVecExec(f *testing.F) {
	f.Add(int64(1), uint16(50), uint16(0), false)
	f.Add(int64(2), uint16(300), uint16(1), true)
	f.Add(int64(3), uint16(700), uint16(64), false)
	f.Add(int64(4), uint16(128), uint16(4096), true)
	f.Add(int64(5), uint16(1), uint16(7), true)
	f.Add(int64(6), uint16(0), uint16(13), false)
	f.Fuzz(func(t *testing.T, seed int64, nRows, batch uint16, aggregate bool) {
		rows := int(nRows) % 800
		batchSize := int(batch)%MaxBatch + 1
		r := rand.New(rand.NewSource(seed))
		pred := randExpr(r, 2)
		exprSeed := r.Int63()

		// Row path.
		er, tr := fuzzTable(rand.New(rand.NewSource(seed)), rows)
		msR := exec.NewMeterSet(er.Ctx)
		mScanR := &exec.Meter{Label: "scan"}
		mTopR := &exec.Meter{Label: "top", Kids: []*exec.Meter{mScanR}}
		scanR := &exec.Metered{Set: msR, M: mScanR, Child: er.Scan(tr, pred)}

		// Vector path on an identically seeded engine.
		ev, tv := fuzzTable(rand.New(rand.NewSource(seed)), rows)
		msV := exec.NewMeterSet(ev.Ctx)
		mScanV := &exec.Meter{Label: "scan"}
		mTopV := &exec.Meter{Label: "top", Kids: []*exec.Meter{mScanV}}
		scanV := &Metered{Set: msV, M: mScanV, Child: &Scan{
			Ctx: ev.Ctx, File: tv.File, Pred: pred, BatchSize: batchSize,
		}}

		var want, got []value.Row
		if aggregate {
			ra := rand.New(rand.NewSource(exprSeed))
			groupBy := []exec.Expr{exec.Col{Idx: ra.Intn(5)}}
			aggs := []exec.AggSpec{
				{Kind: exec.AggSum, Arg: randExpr(ra, 1), Name: "s"},
				{Kind: exec.AggCount, Name: "n"},
				{Kind: exec.AggMin, Arg: exec.Col{Idx: ra.Intn(5)}, Name: "lo"},
			}
			want = runMetered(t, er, &exec.Metered{Set: msR, M: mTopR, Child: &exec.GroupBy{
				Ctx: er.Ctx, Child: scanR, GroupBy: groupBy, Aggs: aggs,
			}}, msR, []*exec.Meter{mScanR, mTopR})
			got = runMetered(t, ev, &RowSource{
				Child: &Metered{Set: msV, M: mTopV, Child: &Agg{
					Ctx: ev.Ctx, Child: scanV, GroupBy: groupBy, Aggs: aggs,
				}},
			}, msV, []*exec.Meter{mScanV, mTopV})
		} else {
			ra := rand.New(rand.NewSource(exprSeed))
			exprs := make([]exec.Expr, ra.Intn(3)+1)
			for i := range exprs {
				exprs[i] = randExpr(ra, 2)
			}
			want = runMetered(t, er, &exec.Metered{Set: msR, M: mTopR, Child: &exec.Project{
				Ctx: er.Ctx, Child: scanR, Exprs: exprs,
			}}, msR, []*exec.Meter{mScanR, mTopR})
			got = runMetered(t, ev, &RowSource{
				Child: &Metered{Set: msV, M: mTopV, Child: &Project{
					Ctx: ev.Ctx, Child: scanV, Exprs: exprs,
				}},
			}, msV, []*exec.Meter{mScanV, mTopV})
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("vector result differs from row result: %d vs %d rows\nseed=%d rows=%d batch=%d agg=%v",
				len(got), len(want), seed, rows, batchSize, aggregate)
		}
	})
}
