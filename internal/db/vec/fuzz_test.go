package vec

import (
	"math/rand"
	"reflect"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// fuzzTable seeds a table covering every datum type (NULLs included) with
// deterministic pseudo-random content.
func fuzzTable(r *rand.Rand, rows int) (*engine.Engine, *engine.Table) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	tbl := e.CreateTable("t", catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "price", Type: value.TypeFloat},
		catalog.Column{Name: "name", Type: value.TypeStr, Width: 8},
		catalog.Column{Name: "day", Type: value.TypeDate},
	))
	names := []string{"alpha", "beta", "gamma", "ax", ""}
	for i := 0; i < rows; i++ {
		price := value.Float(float64(r.Intn(500)) / 4)
		if r.Intn(11) == 0 {
			price = value.Null()
		}
		e.Insert(tbl, value.Row{
			value.Int(int64(r.Intn(2000))),
			value.Int(int64(r.Intn(6))),
			price,
			value.Str(names[r.Intn(len(names))]),
			value.Date(int64(r.Intn(365))),
		})
	}
	return e, tbl
}

var fuzzOps = []exec.BinOpKind{
	exec.OpAdd, exec.OpSub, exec.OpMul, exec.OpDiv,
	exec.OpEq, exec.OpNe, exec.OpLt, exec.OpLe, exec.OpGt, exec.OpGe,
	exec.OpAnd, exec.OpOr,
}

var fuzzPatterns = []string{"a%", "%a", "%am%", "alpha", "", "%"}

// randExpr draws a random expression over the first ncols columns of the
// operator's schema, including shapes that demote vectors (mixed int/float
// arithmetic over nullable inputs), NULL propagation, and division by zero.
// Join residuals pass ncols=10 to range over the concatenated schema.
func randExpr(r *rand.Rand, depth, ncols int) exec.Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return exec.Const{V: value.Int(int64(r.Intn(100)))}
		case 1:
			return exec.Const{V: value.Float(float64(r.Intn(400)) / 4)}
		default:
			return exec.Col{Idx: r.Intn(ncols)}
		}
	}
	switch r.Intn(10) {
	case 0:
		return exec.Not{E: randExpr(r, depth-1, ncols)}
	case 1:
		return exec.Like{E: exec.Col{Idx: 3}, Pattern: fuzzPatterns[r.Intn(len(fuzzPatterns))]}
	case 2:
		list := make([]value.Value, r.Intn(3)+1)
		for i := range list {
			list[i] = value.Int(int64(r.Intn(8)))
		}
		return exec.InList{E: exec.Col{Idx: r.Intn(ncols)}, List: list}
	default:
		return exec.BinOp{
			Op: fuzzOps[r.Intn(len(fuzzOps))],
			L:  randExpr(r, depth-1, ncols),
			R:  randExpr(r, depth-1, ncols),
		}
	}
}

// runMetered drains op with every operator's meter registered in ms and
// checks two ledger invariants: the per-operator exclusive counters must
// sum exactly to the statement's counter delta (the EXPLAIN ENERGY
// partition), and whenever the statement emits rows, no operator on the
// plan may report zero charged micro-ops — every metered operator sits on
// the path that produced those rows, so a zero meter means its work went
// unattributed (exactly the silent-loop defect the chargepath analyzer
// guards statically).
func runMetered(t *testing.T, e *engine.Engine, op exec.Operator, ms *exec.MeterSet, meters []*exec.Meter) []value.Row {
	t.Helper()
	before := e.M.Hier.Counters()
	rows, err := exec.Collect(op)
	if err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	delta := e.M.Hier.Counters().Sub(before)
	var sum memsim.Counters
	for _, m := range meters {
		sum = sum.Add(m.Own())
	}
	if sum != delta {
		t.Fatalf("metered counters do not partition the statement delta:\n sum   %+v\n delta %+v", sum, delta)
	}
	if len(rows) > 0 {
		for _, m := range meters {
			if m.Own().Instructions() == 0 {
				t.Fatalf("operator %q reports zero charged micro-ops while the statement emitted %d rows (unattributed work)",
					m.Label, len(rows))
			}
		}
	}
	return rows
}

// FuzzVecExec is the differential fuzzer for the vectorized engine: any
// random table, predicate and plan shape — projection (mode 0), aggregation
// (mode 1), hash join + sort (mode 2), or a broken chain (mode 3: a row
// consumer over a RowSource-adapted vector scan, the transition the
// chain-wise mode chooser prices as a chain top's boundary) — must produce
// an identical result set through the row and vector paths, and on both
// paths the per-operator metered counters must sum exactly to that path's
// statement counter delta (the EXPLAIN ENERGY partition invariant; in the
// broken-chain shape the adapter's boundary charges land on the chain-top
// scan's meter, exactly where the planner folds the transition price). Join
// keys include the price column, whose NULLs exercise the
// NULL-key-never-matches rule on both sides.
func FuzzVecExec(f *testing.F) {
	f.Add(int64(1), uint16(50), uint16(0), uint8(0))
	f.Add(int64(2), uint16(300), uint16(1), uint8(1))
	f.Add(int64(3), uint16(700), uint16(64), uint8(2))
	f.Add(int64(4), uint16(128), uint16(4096), uint8(1))
	f.Add(int64(5), uint16(1), uint16(7), uint8(2))
	f.Add(int64(6), uint16(0), uint16(13), uint8(2))
	f.Add(int64(7), uint16(211), uint16(97), uint8(5))
	f.Add(int64(8), uint16(420), uint16(32), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRows, batch uint16, mode uint8) {
		rows := int(nRows) % 800
		batchSize := int(batch)%MaxBatch + 1
		shape := int(mode) % 4
		r := rand.New(rand.NewSource(seed))
		pred := randExpr(r, 2, 5)
		exprSeed := r.Int63()

		// Row path.
		er, tr := fuzzTable(rand.New(rand.NewSource(seed)), rows)
		msR := exec.NewMeterSet(er.Ctx)
		mScanR := &exec.Meter{Label: "scan"}
		mTopR := &exec.Meter{Label: "top", Kids: []*exec.Meter{mScanR}}
		scanR := &exec.Metered{Set: msR, M: mScanR, Child: er.Scan(tr, pred)}

		// Vector path on an identically seeded engine.
		ev, tv := fuzzTable(rand.New(rand.NewSource(seed)), rows)
		msV := exec.NewMeterSet(ev.Ctx)
		mScanV := &exec.Meter{Label: "scan"}
		mTopV := &exec.Meter{Label: "top", Kids: []*exec.Meter{mScanV}}
		scanV := &Metered{Set: msV, M: mScanV, Child: &Scan{
			Ctx: ev.Ctx, File: tv.File, Pred: pred, BatchSize: batchSize,
		}}

		var want, got []value.Row
		switch shape {
		case 1:
			ra := rand.New(rand.NewSource(exprSeed))
			groupBy := []exec.Expr{exec.Col{Idx: ra.Intn(5)}}
			aggs := []exec.AggSpec{
				{Kind: exec.AggSum, Arg: randExpr(ra, 1, 5), Name: "s"},
				{Kind: exec.AggCount, Name: "n"},
				{Kind: exec.AggMin, Arg: exec.Col{Idx: ra.Intn(5)}, Name: "lo"},
			}
			want = runMetered(t, er, &exec.Metered{Set: msR, M: mTopR, Child: &exec.GroupBy{
				Ctx: er.Ctx, Child: scanR, GroupBy: groupBy, Aggs: aggs,
			}}, msR, []*exec.Meter{mScanR, mTopR})
			got = runMetered(t, ev, &RowSource{
				Child: &Metered{Set: msV, M: mTopV, Child: &Agg{
					Ctx: ev.Ctx, Child: scanV, GroupBy: groupBy, Aggs: aggs,
				}},
			}, msV, []*exec.Meter{mScanV, mTopV})
		case 2:
			// Hash join (random key columns on each side, NULLs included) under
			// a multi-key sort — the scan meters above feed the probe side; the
			// build side gets its own scan and meter.
			ra := rand.New(rand.NewSource(exprSeed))
			buildKey := []int{ra.Intn(5)}
			probeKey := []int{ra.Intn(5)}
			var residual exec.Expr
			if ra.Intn(2) == 0 {
				residual = randExpr(ra, 1, 10)
			}
			keys := make([]exec.SortKey, ra.Intn(2)+1)
			for i := range keys {
				keys[i] = exec.SortKey{Expr: exec.Col{Idx: ra.Intn(10)}, Desc: ra.Intn(2) == 0}
			}

			mBuildR := &exec.Meter{Label: "build"}
			mJoinR := &exec.Meter{Label: "join", Kids: []*exec.Meter{mScanR, mBuildR}}
			mTopR.Kids = []*exec.Meter{mJoinR}
			want = runMetered(t, er, &exec.Metered{Set: msR, M: mTopR, Child: &exec.Sort{
				Ctx: er.Ctx,
				Child: &exec.Metered{Set: msR, M: mJoinR, Child: &exec.HashJoin{
					Ctx:   er.Ctx,
					Build: &exec.Metered{Set: msR, M: mBuildR, Child: er.Scan(tr, pred)},
					Probe: scanR, BuildKey: buildKey, ProbeKey: probeKey,
					Residual: residual,
				}},
				Keys: keys,
			}}, msR, []*exec.Meter{mScanR, mBuildR, mJoinR, mTopR})

			mBuildV := &exec.Meter{Label: "build"}
			mJoinV := &exec.Meter{Label: "join", Kids: []*exec.Meter{mScanV, mBuildV}}
			mTopV.Kids = []*exec.Meter{mJoinV}
			got = runMetered(t, ev, &RowSource{
				Child: &Metered{Set: msV, M: mTopV, Child: &Sort{
					Ctx: ev.Ctx,
					Child: &Metered{Set: msV, M: mJoinV, Child: &HashJoin{
						Ctx: ev.Ctx,
						Build: &Metered{Set: msV, M: mBuildV, Child: &Scan{
							Ctx: ev.Ctx, File: tv.File, Pred: pred, BatchSize: batchSize,
						}},
						Probe: scanV, BuildKey: buildKey, ProbeKey: probeKey,
						Residual: residual, BatchSize: batchSize,
					}},
					Keys: keys, BatchSize: batchSize,
				}},
			}, msV, []*exec.Meter{mScanV, mBuildV, mJoinV, mTopV})
		case 3:
			// Broken chain: the vector scan is a chain top adapted back to
			// rows mid-plan, feeding a row-mode aggregate. The RowSource's
			// boundary charges are attributed to the chain-top scan's meter
			// (Set/M), so the partition check proves the transition cost
			// lands exactly where the planner prices it.
			ra := rand.New(rand.NewSource(exprSeed))
			groupBy := []exec.Expr{exec.Col{Idx: ra.Intn(5)}}
			aggs := []exec.AggSpec{
				{Kind: exec.AggSum, Arg: randExpr(ra, 1, 5), Name: "s"},
				{Kind: exec.AggCount, Name: "n"},
			}
			want = runMetered(t, er, &exec.Metered{Set: msR, M: mTopR, Child: &exec.GroupBy{
				Ctx: er.Ctx, Child: scanR, GroupBy: groupBy, Aggs: aggs,
			}}, msR, []*exec.Meter{mScanR, mTopR})
			got = runMetered(t, ev, &exec.Metered{Set: msV, M: mTopV, Child: &exec.GroupBy{
				Ctx: ev.Ctx,
				Child: &RowSource{
					Ctx: ev.Ctx, Set: msV, M: mScanV,
					Child: scanV,
				},
				GroupBy: groupBy, Aggs: aggs,
			}}, msV, []*exec.Meter{mScanV, mTopV})
		default:
			ra := rand.New(rand.NewSource(exprSeed))
			exprs := make([]exec.Expr, ra.Intn(3)+1)
			for i := range exprs {
				exprs[i] = randExpr(ra, 2, 5)
			}
			want = runMetered(t, er, &exec.Metered{Set: msR, M: mTopR, Child: &exec.Project{
				Ctx: er.Ctx, Child: scanR, Exprs: exprs,
			}}, msR, []*exec.Meter{mScanR, mTopR})
			got = runMetered(t, ev, &RowSource{
				Child: &Metered{Set: msV, M: mTopV, Child: &Project{
					Ctx: ev.Ctx, Child: scanV, Exprs: exprs,
				}},
			}, msV, []*exec.Meter{mScanV, mTopV})
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("vector result differs from row result: %d vs %d rows\nseed=%d rows=%d batch=%d shape=%d",
				len(got), len(want), seed, rows, batchSize, shape)
		}
	})
}
