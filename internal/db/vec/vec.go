// Package vec implements a MonetDB/X100-style vectorized executor: operators
// exchange columnar batches of a few thousand values instead of single rows,
// so the per-tuple interpretation overhead the paper traces to the L1D energy
// bottleneck — hot-structure loads and stores, dispatch instructions, cursor
// bookkeeping — is paid once per batch per primitive rather than once per
// tuple. Batches are sized from the simulated L1D capacity so the working set
// of a kernel pipeline stays cache-resident, and every kernel charges its
// payload traffic through the same memory-hierarchy simulator as the row
// executor, so EXPLAIN ENERGY attribution and the calibrated ΔE_m pricing
// work identically for both modes.
//
// Semantics are shared with the row path by construction: kernels evaluate
// elements with exec.ApplyBin, exec.Truthy, exec.LikeMatch and exec.AggAcc —
// the same helpers the row interpreter uses — so the two paths cannot drift
// (FuzzVecExec checks this differentially).
package vec

import (
	"energydb/internal/db/catalog"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// Batch width bounds: a batch carries between 1 and 4K values per vector.
const (
	MinBatch = 1
	MaxBatch = 4096
)

// activeVectors is the pipeline depth the batch sizing assumes stays hot: a
// kernel reads up to two input vectors and writes one output while the scan's
// source column sits behind them.
const activeVectors = 4

// valWidth is the nominal payload width of one vector element.
const valWidth = 8

// BatchSizeFor derives the batch width from the simulated L1D capacity: the
// largest power of two (within [MinBatch, MaxBatch]) such that activeVectors
// vectors of valWidth-byte values fit the L1D — X100's "fit the vector
// pipeline in cache" rule. The paper's i7-4790 (32KB L1D) yields 1024; the
// ARM1176JZF-S profile (16KB) yields 512.
func BatchSizeFor(cfg memsim.Config) int {
	budget := cfg.L1D.SizeBytes / (activeVectors * valWidth)
	n := MinBatch
	for n*2 <= budget && n*2 <= MaxBatch {
		n *= 2
	}
	return n
}

// Per-value kernel costs, charged per selected element per primitive and
// mirrored by the planner's vector-mode estimators (internal/db/plan): one
// L1D payload load per input vector element, one payload store per output
// element, and kernelInstrPerVal ALU instructions per element.
const (
	KernelLoadsPerVal  = 1
	KernelStoresPerVal = 1
	KernelInstrPerVal  = 4
)

// nullWord locates bit i in a []uint64 bitmap.
func nullWord(i int) (int, uint64) { return i >> 6, 1 << uint(i&63) }

// Vector is one column of a batch: a typed payload (int64, float64 or
// string) plus a null bitmap. Values that do not fit the payload type —
// mixed int/float results of arithmetic over nullable inputs, say — demote
// the vector to an exact row-value fallback payload, so kernels never lose
// information. Constant vectors broadcast one value to every position.
type Vector struct {
	// T is the payload type (TypeNull until the first typed Set).
	T value.Type

	i    []int64
	f    []float64
	s    []string
	null []uint64
	raw  []value.Value

	isConst bool
	cv      value.Value

	cap  int
	addr uint64
}

// NewVector allocates a vector of the given capacity, with a simulated
// payload address drawn from the arena (kernels charge their element traffic
// against it).
func NewVector(arena *memsim.Arena, t value.Type, cap int) *Vector {
	return &Vector{
		T:    t,
		cap:  cap,
		addr: arena.Alloc(uint64(cap)*16, memsim.LineSize),
	}
}

// NewConst builds a constant (broadcast) vector. It has no payload and no
// simulated address: kernels skip load charges for constant inputs, as a
// real vectorized interpreter keeps constants in registers.
func NewConst(v value.Value) *Vector {
	return &Vector{T: v.T, isConst: true, cv: v}
}

// Const reports whether the vector broadcasts a single value.
func (v *Vector) Const() bool { return v.isConst }

// Addr returns the simulated payload address.
func (v *Vector) Addr() uint64 { return v.addr }

// IsNull reports whether position i holds NULL.
func (v *Vector) IsNull(i int) bool {
	if v.isConst {
		return v.cv.IsNull()
	}
	if v.raw != nil {
		return v.raw[i].IsNull()
	}
	if v.null == nil {
		return false
	}
	w, bit := nullWord(i)
	return v.null[w]&bit != 0
}

// Get reconstructs the datum at position i.
func (v *Vector) Get(i int) value.Value {
	if v.isConst {
		return v.cv
	}
	if v.raw != nil {
		return v.raw[i]
	}
	if v.IsNull(i) {
		return value.Null()
	}
	// Payload slices allocate on first typed Set; positions read before any
	// store (demote's full sweep) count as NULL.
	switch {
	case v.T == value.TypeInt && v.i != nil:
		return value.Int(v.i[i])
	case v.T == value.TypeDate && v.i != nil:
		return value.Date(v.i[i])
	case v.T == value.TypeFloat && v.f != nil:
		return value.Float(v.f[i])
	case v.T == value.TypeStr && v.s != nil:
		return value.Str(v.s[i])
	default:
		return value.Null()
	}
}

// Set stores the datum at position i, fixing the payload type on the first
// typed store and demoting to the exact fallback payload on a type mismatch.
func (v *Vector) Set(i int, val value.Value) {
	if v.raw != nil {
		v.raw[i] = val
		return
	}
	if val.T == value.TypeNull {
		v.setNull(i)
		return
	}
	if v.T == value.TypeNull {
		v.T = val.T
	} else if v.T != val.T {
		v.demote()
		v.raw[i] = val
		return
	}
	v.clearNull(i)
	switch v.T {
	case value.TypeInt, value.TypeDate:
		if v.i == nil {
			v.i = make([]int64, v.cap)
		}
		v.i[i] = val.I
	case value.TypeFloat:
		if v.f == nil {
			v.f = make([]float64, v.cap)
		}
		v.f[i] = val.F
	case value.TypeStr:
		if v.s == nil {
			v.s = make([]string, v.cap)
		}
		v.s[i] = val.S
	}
}

func (v *Vector) setNull(i int) {
	if v.null == nil {
		v.null = make([]uint64, (v.cap+63)/64)
	}
	w, bit := nullWord(i)
	v.null[w] |= bit
}

func (v *Vector) clearNull(i int) {
	if v.null == nil {
		return
	}
	w, bit := nullWord(i)
	v.null[w] &^= bit
}

// demote switches the vector to the row-value fallback payload, preserving
// every position representable so far.
func (v *Vector) demote() {
	raw := make([]value.Value, v.cap)
	//lint:nocharge representation demotion copies within one already-allocated vector; the triggering kernel charged its payload stores
	for i := range raw {
		raw[i] = v.Get(i)
	}
	v.raw = raw
}

// Batch is one unit of exchange between vectorized operators: up to cap
// values per column, with an optional selection vector listing the positions
// that survive upstream filters (nil means all N are selected). The
// selection vector — X100's trick for filtering without compacting — lets
// downstream kernels skip dead positions without moving any payload bytes.
type Batch struct {
	Cols []*Vector
	// N is the number of materialized positions.
	N int
	// Sel lists the selected positions in ascending order; nil selects
	// all N.
	Sel []int32

	// rows backs a scan batch with its raw source rows: columns materialize
	// lazily, on first kernel touch (Col), so columns the query never
	// references move no payload bytes and charge nothing — projection
	// pushdown falls out of the representation instead of needing a planner
	// rule. nil means every vector is materialized (kernel outputs).
	rows []value.Row
	mat  []bool

	selBuf  []int32
	selAddr uint64
	cap     int
}

// NewBatch allocates a batch for the schema with vectors typed from the
// column types.
func NewBatch(arena *memsim.Arena, schema *catalog.Schema, cap int) *Batch {
	cols := make([]*Vector, len(schema.Columns))
	//lint:nocharge one-time batch allocation; payload traffic is charged when kernels fill the vectors
	for i, c := range schema.Columns {
		cols[i] = NewVector(arena, c.Type, cap)
	}
	return &Batch{
		Cols:    cols,
		selBuf:  make([]int32, 0, cap),
		selAddr: arena.Alloc(uint64(cap)*4, memsim.LineSize),
		cap:     cap,
	}
}

// Cap returns the batch capacity (positions per vector).
func (b *Batch) Cap() int { return b.cap }

// Len returns the number of selected positions.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Pos maps a selection index to a batch position.
func (b *Batch) Pos(k int) int {
	if b.Sel != nil {
		return int(b.Sel[k])
	}
	return k
}

// SetRows points the batch at one raw source batch and marks every column
// unmaterialized. The slice is only read until the next SetRows call.
func (b *Batch) SetRows(rows []value.Row) {
	b.rows = rows
	if b.mat == nil {
		b.mat = make([]bool, len(b.Cols))
		return
	}
	//lint:nocharge per-column dirty-flag reset, no payload movement; materialization charges in Col
	for j := range b.mat {
		b.mat[j] = false
	}
}

// Col returns column j's vector, materializing it from the raw source rows
// on first touch: one vectorized materialization primitive — a batch
// dispatch, one move instruction and one payload store per value. The loop
// covers every source position (not just selected ones), so a column's
// vector is valid under any later selection narrowing.
func (b *Batch) Col(ctx *exec.Ctx, j int) *Vector {
	v := b.Cols[j]
	if b.rows == nil || b.mat[j] {
		return v
	}
	b.mat[j] = true
	ctx.TupleCost()
	//lint:nopoll bounded by one batch (at most MaxBatch positions); the TupleCost dispatch above is the per-batch checkpoint
	for i, row := range b.rows {
		if row == nil {
			// Snapshot-invisible hole: never selected, but the vector
			// position must hold a defined value.
			v.Set(i, value.Null())
			continue
		}
		v.Set(i, row[j])
	}
	h := ctx.M.Hier
	h.Exec(uint64(len(b.rows)), memsim.InstrAdd)
	h.StoreRepeat(v.addr, uint64(len(b.rows))*KernelStoresPerVal)
	return v
}

// Row materializes the selected position k into dst (which must have one
// slot per column). A lazily backed batch copies straight from the source
// row — the charge-free path RowSource uses when a row-mode parent consumes
// a scan batch, mirroring the row SeqScan handing out stored rows.
func (b *Batch) Row(k int, dst value.Row) {
	i := b.Pos(k)
	if b.rows != nil {
		copy(dst, b.rows[i])
		return
	}
	//lint:nocharge deliberately charge-free materialization helper: callers charge per batch (TupleCost/LoadRange) before copying rows out
	for j, c := range b.Cols {
		dst[j] = c.Get(i)
	}
}

// narrowSel replaces the batch's selection with the positions where keep
// returns true, charging the selection-vector store. The compaction writes
// at or behind the read cursor, so reusing the buffer while iterating the
// previous selection is safe.
func (b *Batch) narrowSel(ctx *exec.Ctx, keep func(i int) bool) {
	sel := b.selBuf[:0]
	n := b.Len()
	//lint:nocharge predicate loads are charged by the calling kernel; the selection-vector store is charged below when any position survives
	for k := 0; k < n; k++ {
		i := b.Pos(k)
		if keep(i) {
			sel = append(sel, int32(i))
		}
	}
	b.Sel = sel
	b.selBuf = sel[:0]
	if len(sel) > 0 {
		ctx.M.Hier.StoreRepeat(b.selAddr, uint64(len(sel)))
	}
}
