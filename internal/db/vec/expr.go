package vec

import (
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// pool hands out scratch vectors for expression temporaries, reused across
// batches: reset rewinds the pool at each batch boundary and get returns the
// next scratch vector, allocating (Go slice + simulated address) only on
// first use. Evaluation order is deterministic, so each expression node sees
// the same scratch vector every batch.
type pool struct {
	ctx  *exec.Ctx
	cap  int
	vecs []*Vector
	next int
}

func newPool(ctx *exec.Ctx, cap int) *pool {
	return &pool{ctx: ctx, cap: cap}
}

func (p *pool) reset() { p.next = 0 }

func (p *pool) get() *Vector {
	if p.next == len(p.vecs) {
		p.vecs = append(p.vecs, NewVector(p.ctx.Arena, value.TypeNull, p.cap))
	}
	v := p.vecs[p.next]
	p.next++
	return v
}

// Supported reports whether the expression can be compiled to vectorized
// kernels. The planner only chooses vector mode for supported trees; an
// unsupported node reaching evalVec anyway falls back to exact row-at-a-time
// evaluation inside the kernel.
func Supported(e exec.Expr) bool {
	switch t := e.(type) {
	case exec.Col, exec.Const:
		return true
	case exec.BinOp:
		return Supported(t.L) && Supported(t.R)
	case exec.Not:
		return Supported(t.E)
	case exec.Like:
		return Supported(t.E)
	case exec.InList:
		return Supported(t.E)
	default:
		return false
	}
}

// chargeKernel charges one vectorized primitive over n selected elements:
// a single per-batch dispatch (one tuple's worth of interpretation overhead,
// via TupleCost — which doubles as the cancellation checkpoint the
// cancelpoll analyzer requires at batch granularity), one payload load per
// element per non-constant input, the ALU work, and one payload store per
// element into out.
func chargeKernel(ctx *exec.Ctx, out *Vector, n int, ins ...*Vector) {
	ctx.TupleCost()
	if n == 0 {
		return
	}
	h := ctx.M.Hier
	for _, in := range ins {
		if in != nil && !in.isConst {
			h.LoadRepeat(in.addr, uint64(n)*KernelLoadsPerVal)
		}
	}
	h.Exec(uint64(n)*KernelInstrPerVal, memsim.InstrAdd)
	if out != nil {
		h.StoreRepeat(out.addr, uint64(n)*KernelStoresPerVal)
	}
}

// evalVec evaluates the expression over the batch's selected positions.
// Column references alias the batch's vectors and constants broadcast; every
// computed node runs as one kernel — dispatch charged per batch, payload
// traffic per element — with element semantics delegated to the exact same
// helpers the row interpreter uses.
func evalVec(ctx *exec.Ctx, p *pool, e exec.Expr, b *Batch) *Vector {
	switch t := e.(type) {
	case exec.Col:
		return b.Col(ctx, t.Idx)
	case exec.Const:
		return NewConst(t.V)
	case exec.BinOp:
		l := evalVec(ctx, p, t.L, b)
		r := evalVec(ctx, p, t.R, b)
		out := p.get()
		n := b.Len()
		chargeKernel(ctx, out, n, l, r)
		for k := 0; k < n; k++ {
			i := b.Pos(k)
			out.Set(i, exec.ApplyBin(t.Op, l.Get(i), r.Get(i)))
		}
		return out
	case exec.Not:
		in := evalVec(ctx, p, t.E, b)
		out := p.get()
		n := b.Len()
		chargeKernel(ctx, out, n, in)
		for k := 0; k < n; k++ {
			i := b.Pos(k)
			out.Set(i, boolVal(!exec.Truthy(in.Get(i))))
		}
		return out
	case exec.Like:
		in := evalVec(ctx, p, t.E, b)
		out := p.get()
		n := b.Len()
		chargeKernel(ctx, out, n, in)
		for k := 0; k < n; k++ {
			i := b.Pos(k)
			out.Set(i, boolVal(exec.LikeMatch(in.Get(i).S, t.Pattern)))
		}
		return out
	case exec.InList:
		in := evalVec(ctx, p, t.E, b)
		out := p.get()
		n := b.Len()
		chargeKernel(ctx, out, n, in)
		for k := 0; k < n; k++ {
			i := b.Pos(k)
			v := in.Get(i)
			hit := false
			for _, c := range t.List {
				if value.Equal(v, c) {
					hit = true
					break
				}
			}
			out.Set(i, boolVal(hit))
		}
		return out
	default:
		// Exact fallback for expression types without a kernel: rebuild
		// each selected row and run the row interpreter's Eval, charging
		// its per-node cost so the energy model stays honest.
		out := p.get()
		n := b.Len()
		chargeKernel(ctx, out, n)
		nodes := e.Nodes()
		row := make(value.Row, len(b.Cols))
		for k := 0; k < n; k++ {
			i := b.Pos(k)
			b.Row(k, row)
			ctx.EvalCost(nodes)
			out.Set(i, e.Eval(row))
		}
		return out
	}
}

func boolVal(b bool) value.Value {
	if b {
		return value.Int(1)
	}
	return value.Int(0)
}

// applyPred narrows the batch's selection to positions where the predicate
// vector is truthy: one kernel (dispatch + predicate loads + branch
// instructions) plus the selection-vector store inside narrowSel.
func applyPred(ctx *exec.Ctx, pred *Vector, b *Batch) {
	ctx.TupleCost()
	n := b.Len()
	if n == 0 {
		return
	}
	h := ctx.M.Hier
	if !pred.isConst {
		h.LoadRepeat(pred.addr, uint64(n)*KernelLoadsPerVal)
	}
	h.Exec(uint64(n), memsim.InstrOther)
	b.narrowSel(ctx, func(i int) bool { return exec.Truthy(pred.Get(i)) })
}
