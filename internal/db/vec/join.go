package vec

import (
	"energydb/internal/db/catalog"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// hashEntryBytes is the simulated size of one hash-table bucket entry,
// matching the row executor's bucket geometry so the two modes probe the
// same simulated table shape.
const hashEntryBytes = 16

// HashJoin is the batch-at-a-time equijoin: the build side is drained into
// a row buffer and hashed in batch-width chunks (one dispatch per chunk
// instead of per row), then each probe batch runs one key-hash kernel and
// one probe pass, and matches are gathered into an output batch charged one
// gather dispatch per batch plus two block row-copies per match, backed
// lazily by the assembled rows (like the sort's emit), so a parent kernel
// pays materialization only for the columns it actually touches.
//
// The simulated traffic keeps the row join's shape where the hardware would
// not change: bucket probes and chain walks stay dependent loads into a
// table usually larger than L1D. What vectorization removes is the per-tuple
// interpretation — the dispatch, the probe-row clone, the per-match output
// copy — which is exactly the L1D/Reg2L1D component the paper's micro
// analysis prices.
//
// NULL join keys never match (including NULL = NULL): build rows with a
// NULL key are never inserted and probe elements with a NULL key are never
// probed, the same semantics as the row HashJoin.
type HashJoin struct {
	Ctx      *exec.Ctx
	Build    Operator
	Probe    Operator
	BuildKey []int
	ProbeKey []int
	// Residual is an optional non-equi predicate over the joined row,
	// evaluated vectorized over the gathered output batch.
	Residual exec.Expr
	// BatchSize overrides the L1D-derived build-chunk and output-batch
	// width (benchmarks sweep it); 0 picks BatchSizeFor.
	BatchSize int

	schema    *catalog.Schema
	buildRows []value.Row
	table     map[value.Key][]int32
	tableBase uint64
	tableSize uint64
	buildBase uint64
	rowBase   uint64 // scratch address of the assembled-row output buffer

	out   *Batch
	pairP []int32 // per output position: probe batch position
	pairB []int32 // per output position: build row index

	probe   *Batch
	keys    []value.Key
	keyOK   []bool
	pk      int // next selection index within the probe batch
	curK    int // selection index whose bucket chain is being drained
	matches []int32
	mi      int

	p       *pool
	keyCols []*Vector
	scratch []value.Value
	rowBuf  []value.Row // reused backing rows for the lazily backed output
}

// Schema implements Operator (probe columns first, like the row join).
func (j *HashJoin) Schema() *catalog.Schema {
	if j.schema == nil {
		j.schema = j.Probe.Schema().Concat(j.Build.Schema())
	}
	return j.schema
}

// Open implements Operator: drains the build side batch-at-a-time into a
// row buffer, then hashes the buffer in batch-width chunks.
func (j *HashJoin) Open() error {
	if err := j.Build.Open(); err != nil {
		return err
	}
	h := j.Ctx.M.Hier
	ncols := len(j.Build.Schema().Columns)
	var rows []value.Row
	for {
		b, err := j.Build.Next()
		if err != nil {
			j.Build.Close()
			return err
		}
		if b == nil {
			break
		}
		j.Ctx.Poll()
		n := b.Len()
		if n == 0 {
			continue
		}
		// One collect dispatch per batch; the copy into the build buffer is
		// charged once the buffer address exists (below).
		j.Ctx.TupleCost()
		for k := 0; k < n; k++ {
			dst := make(value.Row, ncols)
			b.Row(k, dst)
			rows = append(rows, dst)
		}
	}
	if err := j.Build.Close(); err != nil {
		return err
	}
	j.buildRows = rows

	width := j.Build.Schema().RowWidth()
	if width <= 0 {
		width = 8
	}
	rowLines := uint64((width + 63) / 64)
	bufBytes := uint64(len(rows)) * uint64(width)
	if bufBytes == 0 {
		bufBytes = memsim.LineSize
	}
	j.buildBase = j.Ctx.Arena.Alloc(bufBytes, memsim.LineSize)
	j.tableSize = uint64(len(rows)+1) * hashEntryBytes * 2
	j.tableBase = j.Ctx.Arena.Alloc(j.tableSize, memsim.PageSize)
	j.table = make(map[value.Key][]int32, len(rows))

	chunk := j.BatchSize
	if chunk <= 0 {
		chunk = BatchSizeFor(j.Ctx.M.Profile.Mem)
	}
	if chunk > MaxBatch {
		chunk = MaxBatch
	}
	scratch := make([]value.Value, len(j.BuildKey))
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		// Batch-granularity cancellation plus one build-kernel dispatch per
		// chunk: hash arithmetic, the buffer copy, and the key loads are
		// charged in bulk; bucket accesses stay per-row dependent loads.
		j.Ctx.PollEvery(lo)
		j.Ctx.TupleCost()
		n := uint64(hi - lo)
		h.StoreRepeat(j.buildBase+uint64(lo)*uint64(width), n*rowLines)
		h.LoadRepeat(j.buildBase+uint64(lo)*uint64(width), n)
		h.Exec(3*n, memsim.InstrAdd)
		for i, r := range rows[lo:hi] {
			null := false
			for c, ci := range j.BuildKey {
				if r[ci].IsNull() {
					null = true
					break
				}
				scratch[c] = r[ci]
			}
			if null {
				continue
			}
			key := value.MakeKey(scratch...)
			j.table[key] = append(j.table[key], int32(lo+i))
			slot := j.tableBase + uint64(lo+i)*hashEntryBytes*2%j.tableSize
			h.Load(slot, true)
			h.Store(slot)
		}
	}

	j.out = NewBatch(j.Ctx.Arena, j.Schema(), chunk)
	outWidth := uint64(j.Schema().RowWidth())
	if outWidth == 0 {
		outWidth = 8
	}
	outLines := (outWidth + 63) / 64
	j.rowBase = j.Ctx.Arena.Alloc(uint64(chunk)*outLines*memsim.LineSize, memsim.LineSize)
	j.rowBuf = make([]value.Row, chunk)
	//lint:nopoll bounded by one batch (at most MaxBatch rows), pure allocation
	for i := range j.rowBuf { //lint:nocharge one-time output-buffer allocation; emitted rows are charged per batch in gather
		j.rowBuf[i] = make(value.Row, len(j.Schema().Columns))
	}
	j.p = newPool(j.Ctx, chunk)
	j.keyCols = make([]*Vector, len(j.ProbeKey))
	j.scratch = make([]value.Value, len(j.ProbeKey))
	j.probe = nil
	j.pk = 0
	j.matches = nil
	j.mi = 0
	return j.Probe.Open()
}

// probeKeys is the vectorized key-hash kernel: one dispatch per probe
// batch, bulk key-column loads and hash arithmetic, then a dependent
// bucket-head load per non-NULL key element.
func (j *HashJoin) probeKeys(b *Batch) {
	n := b.Len()
	j.Ctx.TupleCost()
	h := j.Ctx.M.Hier
	for i, c := range j.ProbeKey {
		j.keyCols[i] = b.Col(j.Ctx, c)
	}
	for _, v := range j.keyCols {
		if !v.Const() {
			h.LoadRepeat(v.addr, uint64(n)*KernelLoadsPerVal)
		}
	}
	h.Exec(uint64(2*n), memsim.InstrAdd)
	j.keys = j.keys[:0]
	j.keyOK = j.keyOK[:0]
	for k := 0; k < n; k++ {
		i := b.Pos(k)
		null := false
		for c, v := range j.keyCols {
			if v.IsNull(i) {
				null = true
				break
			}
			j.scratch[c] = v.Get(i)
		}
		if null {
			j.keys = append(j.keys, value.Key{})
			j.keyOK = append(j.keyOK, false)
			continue
		}
		key := value.MakeKey(j.scratch...)
		h.Load(j.tableBase+key.Hash()%j.tableSize, true)
		j.keys = append(j.keys, key)
		j.keyOK = append(j.keyOK, true)
	}
}

// Next implements Operator: fills one output batch of matches. The probe
// cursor (batch, element, bucket chain position) persists across calls, so
// a bucket chain longer than the output batch resumes where it stopped.
func (j *HashJoin) Next() (*Batch, error) {
	out := j.out
	capN := out.Cap()
	h := j.Ctx.M.Hier
	j.pairP = j.pairP[:0]
	j.pairB = j.pairB[:0]
	for {
		// Drain the current bucket chain: each entry is a pointer chase,
		// exactly as the row join walks it.
		//lint:nocharge dispatch is charged per probe batch (probeKeys) and per emitted batch (gather); the chain walk itself charges a dependent load each hop
		for j.mi < len(j.matches) && len(j.pairP) < capN {
			h.Load(j.tableBase+uint64(j.mi+1)*hashEntryBytes%j.tableSize, true)
			j.pairP = append(j.pairP, int32(j.curK))
			j.pairB = append(j.pairB, j.matches[j.mi])
			j.mi++
		}
		if len(j.pairP) == capN {
			break
		}
		if j.probe != nil && j.pk < j.probe.Len() {
			k := j.pk
			j.pk++
			if !j.keyOK[k] {
				continue
			}
			j.curK = k
			j.matches = j.table[j.keys[k]]
			j.mi = 0
			continue
		}
		// The current probe batch is exhausted. Emit pending pairs before
		// pulling the next batch — gather still reads this batch's vectors.
		if len(j.pairP) > 0 && j.probe != nil {
			break
		}
		b, err := j.Probe.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.probe = nil
			break
		}
		j.Ctx.Poll()
		j.probe = b //lint:poolescape held only until the next Probe.Next pull; every row is gathered out before re-pulling
		j.pk = 0
		if b.Len() == 0 {
			continue
		}
		j.probeKeys(b)
	}
	if len(j.pairP) == 0 {
		return nil, nil
	}
	j.gather(out)
	if j.Residual != nil {
		j.p.reset()
		pv := evalVec(j.Ctx, j.p, j.Residual, out)
		applyPred(j.Ctx, pv, out)
	}
	return out, nil
}

// gather emits the matched pairs as an output batch backed lazily by the
// assembled rows. The charge is one gather dispatch per batch plus the real
// row assembly — two block copies per pair: the probe row out of the
// (cache-hot, just-produced) probe batch and the build row out of the build
// buffer, whose scattered first-line access keeps real buffer addresses so
// the simulator sees the table-sized working set. No per-column vector
// traffic happens here: the output stays rows-backed, and a parent kernel
// pays materialization (Batch.Col) only for the columns it actually touches
// — the consumer's demand, not the join's supply — so unreferenced columns
// of wide rows move nothing beyond the block copy.
func (j *HashJoin) gather(out *Batch) {
	n := uint64(len(j.pairP))
	h := j.Ctx.M.Hier
	np := len(j.Probe.Schema().Columns)
	width := uint64(j.Build.Schema().RowWidth())
	if width == 0 {
		width = 8
	}
	buildLines := (width + 63) / 64
	probeWidth := uint64(j.Probe.Schema().RowWidth())
	if probeWidth == 0 {
		probeWidth = 8
	}
	probeLines := (probeWidth + 63) / 64
	bufBytes := uint64(len(j.buildRows)) * width
	if bufBytes == 0 {
		bufBytes = memsim.LineSize
	}
	j.Ctx.TupleCost()
	for _, bi := range j.pairB {
		// Dependent first-line load of the matched build row at its real
		// buffer offset; trailing lines of the row ride the open line(s).
		h.Load(j.buildBase+uint64(bi)*width%bufBytes, true)
	}
	h.LoadRepeat(j.rowBase, n*(buildLines-1))
	h.LoadRepeat(j.rowBase, n*probeLines)
	h.StoreRepeat(j.rowBase, n*(probeLines+buildLines))
	h.Exec(2*n, memsim.InstrAdd)
	for i := range j.pairP {
		dst := j.rowBuf[i]
		j.probe.Row(int(j.pairP[i]), dst[:np])
		copy(dst[np:], j.buildRows[j.pairB[i]])
	}
	out.N = len(j.pairP)
	out.Sel = nil
	out.SetRows(j.rowBuf[:len(j.pairP)])
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.table = nil
	j.buildRows = nil
	return j.Probe.Close()
}
