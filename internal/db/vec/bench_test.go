package vec_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/db/vec"
	"energydb/internal/tpch"
)

// benchRow is one cell of the row-versus-vector throughput sweep,
// serialized into BENCH_vector.json. Batch is 0 for the row path;
// SpeedupVsRow is filled in by the writer from the row-path baseline at the
// same selectivity.
type benchRow struct {
	Mode         string  `json:"mode"`
	Batch        int     `json:"batch,omitempty"`
	Selectivity  float64 `json:"selectivity"`
	TableRows    int     `json:"table_rows"`
	Runs         int     `json:"runs"`
	Seconds      float64 `json:"seconds"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	SpeedupVsRow float64 `json:"speedup_vs_row,omitempty"`
}

// benchCase is one predicate of the selectivity sweep over lineitem
// (l_quantity is uniform on [1,50], so the threshold is ~the selectivity).
type benchCase struct {
	label string
	pred  exec.Expr
}

// BenchmarkVectorThroughput measures base-table rows per wall-clock second
// for the ISSUE's acceptance query — a full-table filter+aggregate over the
// TPC-H subset's lineitem (SELECT l_returnflag, SUM(l_extendedprice),
// COUNT(*) FROM lineitem WHERE l_quantity < c GROUP BY l_returnflag) —
// through the row executor and through the vectorized executor at batch
// widths 1/64/256/1024/4096, across low/medium/full selectivities. Both
// paths run the same simulated machine and charge the same meter; the
// speedup is the vectorized engine's interpretation saving (one dispatch
// per primitive per batch instead of per tuple). The sweep is written to
// BENCH_vector.json at the repo root for the acceptance check (vector >=
// 2x row rows/sec at batch >= 256).
func BenchmarkVectorThroughput(b *testing.B) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	tpch.Setup(e, tpch.Size10MB)
	tbl := e.MustTable("lineitem")

	const (
		colQuantity = 4 // l_quantity
		colPrice    = 5 // l_extendedprice
		colFlag     = 8 // l_returnflag
	)
	lt := func(c float64) exec.Expr {
		return exec.BinOp{Op: exec.OpLt, L: exec.Col{Idx: colQuantity}, R: exec.Const{V: value.Float(c)}}
	}
	// l_quantity is uniform on [1,50], so lt(51) is an always-true filter:
	// the "full" cell is still a genuine filter+aggregate query (the
	// acceptance shape), just with selectivity 1.
	cases := []benchCase{
		{"low", lt(5)},
		{"half", lt(25)},
		{"full", lt(51)},
	}
	groupBy := []exec.Expr{exec.Col{Idx: colFlag}}
	aggs := []exec.AggSpec{
		{Kind: exec.AggSum, Arg: exec.Col{Idx: colPrice}, Name: "sum_price"},
		{Kind: exec.AggCount, Name: "n"},
	}

	all, err := exec.Collect(e.Scan(tbl, nil))
	if err != nil {
		b.Fatal(err)
	}
	tableRows := len(all)
	selectivity := func(pred exec.Expr) float64 {
		if pred == nil {
			return 1
		}
		n := 0
		for _, r := range all {
			if exec.Truthy(pred.Eval(r)) {
				n++
			}
		}
		return float64(n) / float64(tableRows)
	}

	var rows []benchRow
	record := func(b *testing.B, mode string, batch int, sel float64) {
		rps := float64(b.N) * float64(tableRows) / b.Elapsed().Seconds()
		b.ReportMetric(rps, "rows/sec")
		rows = append(rows, benchRow{
			Mode: mode, Batch: batch, Selectivity: sel, TableRows: tableRows,
			Runs: b.N, Seconds: b.Elapsed().Seconds(), RowsPerSec: rps,
		})
	}

	for _, c := range cases {
		sel := selectivity(c.pred)
		b.Run(fmt.Sprintf("mode=row/sel=%s", c.label), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.Collect(e.GroupBy(e.Scan(tbl, c.pred), groupBy, aggs)); err != nil {
					b.Fatal(err)
				}
			}
			record(b, "row", 0, sel)
		})
		for _, batch := range []int{1, 64, 256, 1024, 4096} {
			b.Run(fmt.Sprintf("mode=vector/batch=%d/sel=%s", batch, c.label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					plan := &vec.RowSource{Child: &vec.Agg{
						Ctx: e.Ctx,
						Child: &vec.Scan{
							Ctx: e.Ctx, File: tbl.File, Pred: c.pred, BatchSize: batch,
						},
						GroupBy: groupBy,
						Aggs:    aggs,
					}}
					if _, err := exec.Collect(plan); err != nil {
						b.Fatal(err)
					}
				}
				record(b, "vector", batch, sel)
			})
		}
	}
	writeVectorBenchJSON(b, rows)
}

// writeVectorBenchJSON writes the sweep to BENCH_vector.json next to
// go.mod. Sub-benchmarks rerun with growing b.N; only each cell's final
// (largest-N) measurement is kept, and every vector cell is annotated with
// its speedup over the row path at the same selectivity.
func writeVectorBenchJSON(b *testing.B, rows []benchRow) {
	if len(rows) == 0 {
		return
	}
	type key struct {
		mode  string
		batch int
		sel   float64
	}
	final := make(map[key]benchRow, len(rows))
	order := make([]key, 0, len(rows))
	for _, r := range rows {
		k := key{r.Mode, r.Batch, r.Selectivity}
		if _, seen := final[k]; !seen {
			order = append(order, k)
		}
		final[k] = r
	}
	rowBase := make(map[float64]float64)
	for k, r := range final {
		if k.mode == "row" {
			rowBase[k.sel] = r.RowsPerSec
		}
	}
	out := make([]benchRow, 0, len(order))
	for _, k := range order {
		r := final[k]
		if k.mode == "vector" && rowBase[k.sel] > 0 {
			r.SpeedupVsRow = r.RowsPerSec / rowBase[k.sel]
		}
		out = append(out, r)
	}
	root, err := repoRoot()
	if err != nil {
		b.Logf("BENCH_vector.json not written: %v", err)
		return
	}
	data, err := json.MarshalIndent(struct {
		Benchmark string     `json:"benchmark"`
		Query     string     `json:"query"`
		Rows      []benchRow `json:"rows"`
	}{
		Benchmark: "BenchmarkVectorThroughput",
		Query:     "SELECT l_returnflag, SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_quantity < c GROUP BY l_returnflag",
		Rows:      out,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(root, "BENCH_vector.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Logf("BENCH_vector.json not written: %v", err)
		return
	}
	b.Logf("wrote %s", path)
}

// repoRoot walks up from the working directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
