package vec_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/db/exec"
	"energydb/internal/db/value"
	"energydb/internal/db/vec"
	"energydb/internal/tpch"
)

// benchRow is one cell of the row-versus-vector throughput sweep,
// serialized into BENCH_vector.json. Op names the operator slice
// (filter_agg, hash_join, sort), Batch is 0 for the row path, and
// SpeedupVsRow is filled in by the writer from the row-path baseline of the
// same op at the same selectivity.
type benchRow struct {
	Op           string  `json:"op,omitempty"`
	Mode         string  `json:"mode"`
	Batch        int     `json:"batch,omitempty"`
	Selectivity  float64 `json:"selectivity"`
	TableRows    int     `json:"table_rows"`
	Runs         int     `json:"runs"`
	Seconds      float64 `json:"seconds"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	SpeedupVsRow float64 `json:"speedup_vs_row,omitempty"`
}

// benchQueries documents the statement shape behind each op slice.
var benchQueries = map[string]string{
	"filter_agg": "SELECT l_returnflag, SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_quantity < c GROUP BY l_returnflag",
	"hash_join":  "SELECT * FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
	"sort":       "SELECT * FROM lineitem ORDER BY l_extendedprice DESC, l_quantity",
}

// benchCase is one predicate of the selectivity sweep over lineitem
// (l_quantity is uniform on [1,50], so the threshold is ~the selectivity).
type benchCase struct {
	label string
	pred  exec.Expr
}

// BenchmarkVectorThroughput measures base-table rows per wall-clock second
// for the filter+aggregate acceptance query — SELECT l_returnflag,
// SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_quantity < c GROUP BY
// l_returnflag over the TPC-H subset — through the row executor and through
// the vectorized executor at batch widths 1/64/256/1024/4096, across
// low/medium/full selectivities. Both paths run the same simulated machine
// and charge the same meter; the speedup is the vectorized engine's
// interpretation saving (one dispatch per primitive per batch instead of per
// tuple). The sweep is merged into BENCH_vector.json at the repo root.
func BenchmarkVectorThroughput(b *testing.B) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	tpch.Setup(e, tpch.Size10MB)
	tbl := e.MustTable("lineitem")

	const (
		colQuantity = 4 // l_quantity
		colPrice    = 5 // l_extendedprice
		colFlag     = 8 // l_returnflag
	)
	lt := func(c float64) exec.Expr {
		return exec.BinOp{Op: exec.OpLt, L: exec.Col{Idx: colQuantity}, R: exec.Const{V: value.Float(c)}}
	}
	// l_quantity is uniform on [1,50], so lt(51) is an always-true filter:
	// the "full" cell is still a genuine filter+aggregate query (the
	// acceptance shape), just with selectivity 1.
	cases := []benchCase{
		{"low", lt(5)},
		{"half", lt(25)},
		{"full", lt(51)},
	}
	groupBy := []exec.Expr{exec.Col{Idx: colFlag}}
	aggs := []exec.AggSpec{
		{Kind: exec.AggSum, Arg: exec.Col{Idx: colPrice}, Name: "sum_price"},
		{Kind: exec.AggCount, Name: "n"},
	}

	all, err := exec.Collect(e.Scan(tbl, nil))
	if err != nil {
		b.Fatal(err)
	}
	tableRows := len(all)
	selectivity := func(pred exec.Expr) float64 {
		if pred == nil {
			return 1
		}
		n := 0
		for _, r := range all {
			if exec.Truthy(pred.Eval(r)) {
				n++
			}
		}
		return float64(n) / float64(tableRows)
	}

	var rows []benchRow
	record := func(b *testing.B, mode string, batch int, sel float64) {
		rps := float64(b.N) * float64(tableRows) / b.Elapsed().Seconds()
		b.ReportMetric(rps, "rows/sec")
		rows = append(rows, benchRow{
			Op: "filter_agg", Mode: mode, Batch: batch, Selectivity: sel,
			TableRows: tableRows, Runs: b.N, Seconds: b.Elapsed().Seconds(), RowsPerSec: rps,
		})
	}

	for _, c := range cases {
		sel := selectivity(c.pred)
		b.Run(fmt.Sprintf("mode=row/sel=%s", c.label), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.Collect(e.GroupBy(e.Scan(tbl, c.pred), groupBy, aggs)); err != nil {
					b.Fatal(err)
				}
			}
			record(b, "row", 0, sel)
		})
		for _, batch := range []int{1, 64, 256, 1024, 4096} {
			b.Run(fmt.Sprintf("mode=vector/batch=%d/sel=%s", batch, c.label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					plan := &vec.RowSource{Child: &vec.Agg{
						Ctx: e.Ctx,
						Child: &vec.Scan{
							Ctx: e.Ctx, File: tbl.File, Pred: c.pred, BatchSize: batch,
						},
						GroupBy: groupBy,
						Aggs:    aggs,
					}}
					if _, err := exec.Collect(plan); err != nil {
						b.Fatal(err)
					}
				}
				record(b, "vector", batch, sel)
			})
		}
	}
	writeVectorBenchJSON(b, rows)
}

// BenchmarkVectorJoinSort measures the join and sort slices of the sweep:
// lineitem ⋈ orders on orderkey (probe-side rows per second) and a two-key
// lineitem sort, through the row operators and the batch kernels at batch
// widths 64/256/1024. Cells merge into BENCH_vector.json without disturbing
// the filter_agg slice, so partial reruns (make bench-join) stay consistent.
// Acceptance floor: the vectorized join sustains >= 1.5x the row join's
// rows/sec at batch >= 256.
func BenchmarkVectorJoinSort(b *testing.B) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	tpch.Setup(e, tpch.Size10MB)
	lineitem := e.MustTable("lineitem")
	orders := e.MustTable("orders")
	probeRows := lineitem.File.RowCount()
	batches := []int{64, 256, 1024}

	var rows []benchRow
	record := func(b *testing.B, op, mode string, batch int) {
		rps := float64(b.N) * float64(probeRows) / b.Elapsed().Seconds()
		b.ReportMetric(rps, "rows/sec")
		rows = append(rows, benchRow{
			Op: op, Mode: mode, Batch: batch, Selectivity: 1,
			TableRows: probeRows, Runs: b.N, Seconds: b.Elapsed().Seconds(), RowsPerSec: rps,
		})
	}

	b.Run("op=hash_join/mode=row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exec.Drain(&exec.HashJoin{
				Ctx: e.Ctx, Build: e.Scan(orders, nil), Probe: e.Scan(lineitem, nil),
				BuildKey: []int{0}, ProbeKey: []int{0},
			}); err != nil {
				b.Fatal(err)
			}
		}
		record(b, "hash_join", "row", 0)
	})
	for _, batch := range batches {
		b.Run(fmt.Sprintf("op=hash_join/mode=vector/batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.Drain(&vec.RowSource{Child: &vec.HashJoin{
					Ctx:      e.Ctx,
					Build:    &vec.Scan{Ctx: e.Ctx, File: orders.File, BatchSize: batch},
					Probe:    &vec.Scan{Ctx: e.Ctx, File: lineitem.File, BatchSize: batch},
					BuildKey: []int{0}, ProbeKey: []int{0}, BatchSize: batch,
				}}); err != nil {
					b.Fatal(err)
				}
			}
			record(b, "hash_join", "vector", batch)
		})
	}

	sortKeys := []exec.SortKey{
		{Expr: exec.Col{Idx: 5}, Desc: true}, // l_extendedprice
		{Expr: exec.Col{Idx: 4}},             // l_quantity
	}
	b.Run("op=sort/mode=row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exec.Drain(e.Sort(e.Scan(lineitem, nil), sortKeys)); err != nil {
				b.Fatal(err)
			}
		}
		record(b, "sort", "row", 0)
	})
	for _, batch := range batches {
		b.Run(fmt.Sprintf("op=sort/mode=vector/batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.Drain(&vec.RowSource{Child: &vec.Sort{
					Ctx:   e.Ctx,
					Child: &vec.Scan{Ctx: e.Ctx, File: lineitem.File, BatchSize: batch},
					Keys:  sortKeys, BatchSize: batch,
				}}); err != nil {
					b.Fatal(err)
				}
			}
			record(b, "sort", "vector", batch)
		})
	}
	writeVectorBenchJSON(b, rows)
}

// benchFile is the BENCH_vector.json document.
type benchFile struct {
	Benchmark string            `json:"benchmark"`
	Queries   map[string]string `json:"queries"`
	Rows      []benchRow        `json:"rows"`
}

type benchKey struct {
	op    string
	mode  string
	batch int
	sel   float64
}

// writeVectorBenchJSON merges the measured cells into BENCH_vector.json
// next to go.mod. Sub-benchmarks rerun with growing b.N, so only each
// cell's final (largest-N) measurement is kept; cells already in the file
// but not re-measured in this run survive untouched, which keeps partial
// reruns (make bench-join) from clobbering the other slices. Every vector
// cell is annotated with its speedup over the row path of the same op at
// the same selectivity.
func writeVectorBenchJSON(b *testing.B, rows []benchRow) {
	if len(rows) == 0 {
		return
	}
	root, err := repoRoot()
	if err != nil {
		b.Logf("BENCH_vector.json not written: %v", err)
		return
	}
	path := filepath.Join(root, "BENCH_vector.json")

	final := make(map[benchKey]benchRow)
	if data, err := os.ReadFile(path); err == nil {
		var prior benchFile
		if err := json.Unmarshal(data, &prior); err == nil {
			for _, r := range prior.Rows {
				if r.Op == "" { // rows written before the op field existed
					r.Op = "filter_agg"
				}
				final[benchKey{r.Op, r.Mode, r.Batch, r.Selectivity}] = r
			}
		}
	}
	for _, r := range rows {
		final[benchKey{r.Op, r.Mode, r.Batch, r.Selectivity}] = r
	}

	rowBase := make(map[[2]interface{}]float64)
	for k, r := range final {
		if k.mode == "row" {
			rowBase[[2]interface{}{k.op, k.sel}] = r.RowsPerSec
		}
	}
	keys := make([]benchKey, 0, len(final))
	for k := range final {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.op != c.op {
			return a.op < c.op
		}
		if a.sel != c.sel {
			return a.sel < c.sel
		}
		if a.mode != c.mode {
			return a.mode < c.mode
		}
		return a.batch < c.batch
	})
	out := make([]benchRow, 0, len(keys))
	for _, k := range keys {
		r := final[k]
		if k.mode == "vector" {
			if base := rowBase[[2]interface{}{k.op, k.sel}]; base > 0 {
				r.SpeedupVsRow = r.RowsPerSec / base
			}
		}
		out = append(out, r)
	}

	data, err := json.MarshalIndent(benchFile{
		Benchmark: "BenchmarkVectorThroughput + BenchmarkVectorJoinSort",
		Queries:   benchQueries,
		Rows:      out,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Logf("BENCH_vector.json not written: %v", err)
		return
	}
	b.Logf("wrote %s", path)
}

// repoRoot walks up from the working directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
