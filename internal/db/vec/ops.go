package vec

import (
	"fmt"

	"energydb/internal/db/catalog"
	"energydb/internal/db/exec"
	"energydb/internal/db/storage"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// Operator is the vectorized Volcano iterator: Next returns the next batch,
// or nil at end of stream. Returned batches are only valid until the
// following Next call (operators reuse their batch buffers).
type Operator interface {
	Schema() *catalog.Schema
	Open() error
	Next() (*Batch, error)
	Close() error
}

// Scan streams a heap file batch-at-a-time: one BatchScanner call per batch
// (page fetches plus one range load per page run — the same pages and lines
// as the row scan), lazily materialized columns (Batch.Col charges one
// primitive per column a kernel actually touches), and an optional
// pushed-down predicate evaluated into the selection vector. One charge-free
// Poll bounds cancellation latency per batch instead of per tuple.
type Scan struct {
	Ctx  *exec.Ctx
	File *storage.HeapFile
	Pred exec.Expr
	// BatchSize overrides the L1D-derived batch width (benchmarks sweep
	// it); 0 picks BatchSizeFor on the context machine's hierarchy.
	BatchSize int

	bs *storage.BatchScanner
	b  *Batch
	p  *pool
}

// Schema implements Operator.
func (s *Scan) Schema() *catalog.Schema { return s.File.Schema() }

// Open implements Operator.
func (s *Scan) Open() error {
	n := s.BatchSize
	if n <= 0 {
		n = BatchSizeFor(s.Ctx.M.Profile.Mem)
	}
	if n > MaxBatch {
		n = MaxBatch
	}
	s.bs = s.File.BatchScan(n)
	s.b = NewBatch(s.Ctx.Arena, s.Schema(), n)
	s.p = newPool(s.Ctx, n)
	return nil
}

// Next implements Operator.
func (s *Scan) Next() (*Batch, error) {
	s.Ctx.Poll()
	rows, _, ok := s.bs.NextBatch()
	if !ok {
		return nil, nil
	}
	b := s.b
	b.N = len(rows)
	b.Sel = nil
	b.SetRows(rows)
	// One driver dispatch per batch: the scan's cursor bookkeeping and
	// batch handoff cost one tuple's worth of interpretation overhead.
	s.Ctx.TupleCost()
	// Slots invisible to the snapshot arrive as nil holes; drop them via
	// the selection vector so kernels only see rows this snapshot may read.
	for _, r := range rows {
		if r == nil {
			b.narrowSel(s.Ctx, func(i int) bool { return rows[i] != nil })
			break
		}
	}
	if s.Pred != nil {
		s.p.reset()
		pv := evalVec(s.Ctx, s.p, s.Pred, b)
		applyPred(s.Ctx, pv, b)
	}
	return b, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// Filter narrows the selection vector of each batch by a predicate.
type Filter struct {
	Ctx   *exec.Ctx
	Child Operator
	Pred  exec.Expr

	p *pool
}

// Schema implements Operator.
func (f *Filter) Schema() *catalog.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error {
	f.p = newPool(f.Ctx, MaxBatch)
	return f.Child.Open()
}

// Next implements Operator.
func (f *Filter) Next() (*Batch, error) {
	b, err := f.Child.Next()
	if b == nil || err != nil {
		return nil, err
	}
	f.Ctx.Poll()
	f.p.reset()
	pv := evalVec(f.Ctx, f.p, f.Pred, b)
	applyPred(f.Ctx, pv, b)
	return b, nil
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Prune narrows each batch to a subset of its columns. Vectors are shared
// with the child batch — pruning moves no payload bytes, it only remaps the
// column slots (one batch dispatch).
type Prune struct {
	Ctx   *exec.Ctx
	Child Operator
	Cols  []int

	schema *catalog.Schema
	out    Batch
}

// Schema implements Operator.
func (p *Prune) Schema() *catalog.Schema {
	if p.schema == nil {
		p.schema = p.Child.Schema().Project(p.Cols)
	}
	return p.schema
}

// Open implements Operator.
func (p *Prune) Open() error {
	p.out.Cols = make([]*Vector, len(p.Cols))
	return p.Child.Open()
}

// Next implements Operator.
func (p *Prune) Next() (*Batch, error) {
	b, err := p.Child.Next()
	if b == nil || err != nil {
		return nil, err
	}
	p.Ctx.Poll()
	p.Ctx.TupleCost()
	p.Ctx.Compute(len(p.Cols))
	for i, c := range p.Cols {
		p.out.Cols[i] = b.Col(p.Ctx, c)
	}
	p.out.N = b.N
	p.out.Sel = b.Sel
	return &p.out, nil
}

// Close implements Operator.
func (p *Prune) Close() error { return p.Child.Close() }

// Project computes one kernel per output expression. Output column typing
// mirrors the row executor's Project (anonymous float slots).
type Project struct {
	Ctx   *exec.Ctx
	Child Operator
	Exprs []exec.Expr
	Names []string

	schema *catalog.Schema
	out    Batch
	p      *pool
}

// Schema implements Operator.
func (p *Project) Schema() *catalog.Schema {
	if p.schema == nil {
		cols := make([]catalog.Column, len(p.Exprs))
		for i := range p.Exprs {
			name := fmt.Sprintf("col%d", i)
			if i < len(p.Names) && p.Names[i] != "" {
				name = p.Names[i]
			}
			cols[i] = catalog.Column{Name: name, Type: value.TypeFloat, Width: 8}
		}
		p.schema = catalog.NewSchema(cols...)
	}
	return p.schema
}

// Open implements Operator.
func (p *Project) Open() error {
	p.out.Cols = make([]*Vector, len(p.Exprs))
	p.p = newPool(p.Ctx, MaxBatch)
	return p.Child.Open()
}

// Next implements Operator.
func (p *Project) Next() (*Batch, error) {
	b, err := p.Child.Next()
	if b == nil || err != nil {
		return nil, err
	}
	p.Ctx.Poll()
	// One driver dispatch per projected batch, mirroring Scan and Prune: a
	// column-only projection reaches no kernel (evalVec hands the child's
	// vector back as-is), and without this charge it would emit every batch
	// with zero attributed work (chargepath finding).
	p.Ctx.TupleCost()
	p.p.reset()
	for i, e := range p.Exprs {
		p.out.Cols[i] = evalVec(p.Ctx, p.p, e, b)
	}
	p.out.N = b.N
	p.out.Sel = b.Sel
	return &p.out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// aggTableBytes is the simulated size of one aggregation hash bucket
// (matching the row executor's hash-bucket geometry).
const aggTableBytes = 16

// Agg is batch-at-a-time hash aggregation: group keys and aggregate
// arguments are evaluated as vectors (one kernel each), then one
// table-update primitive per batch probes and updates the simulated hash
// table for every selected element. Accumulator arithmetic is exec.AggAcc —
// the row GroupBy's accumulator — so results are bit-identical to the row
// path. Groups are emitted in first-seen order, batch by batch.
type Agg struct {
	Ctx      *exec.Ctx
	Child    Operator
	GroupBy  []exec.Expr
	Aggs     []exec.AggSpec
	GroupCap int

	schema *catalog.Schema
	out    *Batch
	groups []value.Row
	pos    int
	p      *pool
}

// Schema implements Operator (mirrors the row GroupBy's schema).
func (g *Agg) Schema() *catalog.Schema {
	if g.schema == nil {
		cols := make([]catalog.Column, 0, len(g.GroupBy)+len(g.Aggs))
		for i := range g.GroupBy {
			cols = append(cols, catalog.Column{
				Name: fmt.Sprintf("g%d", i), Type: value.TypeStr, Width: 16,
			})
		}
		for _, a := range g.Aggs {
			name := a.Name
			if name == "" {
				name = a.Kind.String()
			}
			cols = append(cols, catalog.Column{Name: name, Type: value.TypeFloat, Width: 8})
		}
		g.schema = catalog.NewSchema(cols...)
	}
	return g.schema
}

// Open implements Operator: drains the child and builds the groups.
func (g *Agg) Open() error {
	if err := g.Child.Open(); err != nil {
		return err
	}
	defer g.Child.Close()

	cap := g.GroupCap
	if cap <= 0 {
		cap = 1024
	}
	tableSize := uint64(cap) * aggTableBytes * 2
	tableBase := g.Ctx.Arena.Alloc(tableSize, memsim.PageSize)
	h := g.Ctx.M.Hier
	g.p = newPool(g.Ctx, MaxBatch)

	type group struct {
		keyVals []value.Value
		states  []exec.AggAcc
	}
	groups := make(map[value.Key]*group)
	var order []*group

	kvs := make([]*Vector, len(g.GroupBy))
	avs := make([]*Vector, len(g.Aggs))
	scratch := make([]value.Value, len(g.GroupBy))
	for {
		b, err := g.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		g.Ctx.Poll()
		g.p.reset()
		for i, e := range g.GroupBy {
			kvs[i] = evalVec(g.Ctx, g.p, e, b)
		}
		for i, a := range g.Aggs {
			if a.Arg != nil {
				avs[i] = evalVec(g.Ctx, g.p, a.Arg, b)
			} else {
				avs[i] = nil
			}
		}
		n := b.Len()
		// One table-update primitive for the whole batch: the probe
		// loads, accumulator stores and update arithmetic for n
		// elements, dispatched once.
		g.Ctx.TupleCost()
		if n > 0 {
			h.LoadRepeat(tableBase, uint64(2*n))
			h.StoreRepeat(tableBase+aggTableBytes, uint64(n))
			h.Exec(uint64(n*(2+len(g.Aggs))), memsim.InstrAdd)
		}
		for k := 0; k < n; k++ {
			i := b.Pos(k)
			for j, kv := range kvs {
				scratch[j] = kv.Get(i)
			}
			key := value.MakeKey(scratch...)
			grp, found := groups[key]
			if !found {
				grp = &group{
					keyVals: append([]value.Value(nil), scratch...),
					states:  make([]exec.AggAcc, len(g.Aggs)),
				}
				groups[key] = grp
				order = append(order, grp)
			}
			for j := range g.Aggs {
				v := value.Int(1)
				if avs[j] != nil {
					v = avs[j].Get(i)
				}
				grp.states[j].UpdateKind(g.Aggs[j].Kind, v)
			}
		}
	}

	// Finalization: one table-scan primitive over the accumulated groups —
	// each group's bucket is re-read and its accumulators folded into output
	// rows. This is real per-group work the meter must see (chargepath
	// finding); the row executor's GroupBy.Open charges the same way.
	g.Ctx.TupleCost()
	if len(order) > 0 {
		h.LoadRepeat(tableBase, uint64(len(order)))
		h.Exec(uint64(len(order)*(len(g.GroupBy)+len(g.Aggs))), memsim.InstrAdd)
	}
	g.groups = make([]value.Row, len(order))
	for i, grp := range order {
		out := make(value.Row, 0, len(grp.keyVals)+len(g.Aggs))
		out = append(out, grp.keyVals...)
		for k, a := range g.Aggs {
			out = append(out, grp.states[k].Result(a.Kind))
		}
		g.groups[i] = out
	}
	g.pos = 0
	g.out = NewBatch(g.Ctx.Arena, g.Schema(), BatchSizeFor(g.Ctx.M.Profile.Mem))
	return nil
}

// Next implements Operator: emits the next batch of groups, one
// materialization primitive per column.
func (g *Agg) Next() (*Batch, error) {
	if g.pos >= len(g.groups) {
		return nil, nil
	}
	g.Ctx.Poll()
	n := g.out.Cap()
	if rem := len(g.groups) - g.pos; rem < n {
		n = rem
	}
	h := g.Ctx.M.Hier
	for j, v := range g.out.Cols {
		g.Ctx.TupleCost()
		for i := 0; i < n; i++ {
			v.Set(i, g.groups[g.pos+i][j])
		}
		h.Exec(uint64(n), memsim.InstrAdd)
		h.StoreRepeat(v.addr, uint64(n)*KernelStoresPerVal)
	}
	g.pos += n
	g.out.N = n
	g.out.Sel = nil
	return g.out, nil
}

// Close implements Operator.
func (g *Agg) Close() error {
	g.groups = nil
	return nil
}

// Boundary-crossing charge model. Adapting a vectorized chain back to rows
// is where the batch representation's lazy-materialization savings end: a
// row consumer takes whole rows, so every vector→row crossing pays one
// adapter dispatch per batch plus a full-width row copy per row —
// BoundaryLoadsPerLine cache-line loads out of the batch's backing and
// BoundaryStoresPerLine stores into the handed-out row, plus
// BoundaryInstrPerRow move/bookkeeping instructions. The constants are
// exported so the planner's transition estimate (plan.costBoundary) mirrors
// the adapter's charges exactly: chain-wise mode selection prices a broken
// chain against precisely what RowSource will charge at run time.
const (
	BoundaryLoadsPerLine  = 1
	BoundaryStoresPerLine = 1
	BoundaryInstrPerRow   = 2
)

// RowSource adapts a vectorized chain back to the row Operator interface so
// it can sit under row-at-a-time parents (sorts, joins, the drain loop).
// The adapter charges the boundary-crossing model above against Ctx; when
// Set/M are provided the charges are attributed to M (the chain-top
// operator's meter), keeping the per-operator partition of a metered plan
// exact and aligned with the planner, which folds the same transition price
// into the chain-top node's estimate.
type RowSource struct {
	Ctx   *exec.Ctx
	Child Operator
	// Set/M optionally attribute the adapter's charges to a meter.
	Set *exec.MeterSet
	M   *exec.Meter

	b     *Batch
	k     int
	out   value.Row
	base  uint64
	lines uint64
}

// Schema implements exec.Operator.
func (r *RowSource) Schema() *catalog.Schema { return r.Child.Schema() }

// Open implements exec.Operator.
func (r *RowSource) Open() error {
	r.b, r.k = nil, 0
	schema := r.Child.Schema()
	r.out = make(value.Row, len(schema.Columns))
	if r.Ctx != nil {
		width := schema.RowWidth()
		if width <= 0 {
			width = 8
		}
		r.lines = uint64((width + 63) / 64)
		r.base = r.Ctx.Arena.Alloc(r.lines*memsim.LineSize, memsim.LineSize)
	}
	return r.Child.Open()
}

// charge prices one boundary event — per-batch dispatch or per-row copy —
// under the adapter's meter window, if any.
func (r *RowSource) charge(rows uint64, dispatch bool) {
	if r.Ctx == nil {
		return
	}
	if r.Set != nil {
		r.Set.Enter(r.M)
		defer r.Set.Exit(r.M)
	}
	if dispatch {
		r.Ctx.TupleCost()
	}
	if rows > 0 {
		h := r.Ctx.M.Hier
		h.LoadRepeat(r.base, rows*r.lines*BoundaryLoadsPerLine)
		h.StoreRepeat(r.base, rows*r.lines*BoundaryStoresPerLine)
		h.Exec(rows*BoundaryInstrPerRow, memsim.InstrOther)
	}
}

// Next implements exec.Operator. The returned row is reused; buffering
// parents clone it, per the Operator contract.
func (r *RowSource) Next() (value.Row, bool, error) {
	for {
		if r.b != nil && r.k < r.b.Len() {
			r.b.Row(r.k, r.out)
			r.charge(1, false)
			r.k++
			return r.out, true, nil
		}
		b, err := r.Child.Next()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		r.charge(0, true)
		r.b, r.k = b, 0 //lint:poolescape held only until the next Child.Next pull; the cursor drains the batch row-by-row before re-pulling
	}
}

// Close implements exec.Operator.
func (r *RowSource) Close() error { return r.Child.Close() }

// Metered wraps a vectorized operator with the same exclusive-counter
// attribution as exec.Metered wraps row operators: one shared
// exec.MeterSet can meter a mixed row/vector plan and the per-operator
// counters still partition the statement's counter delta exactly.
type Metered struct {
	Set   *exec.MeterSet
	Child Operator
	M     *exec.Meter
}

// Schema implements Operator.
func (m *Metered) Schema() *catalog.Schema { return m.Child.Schema() }

// Open implements Operator.
func (m *Metered) Open() error {
	m.Set.Enter(m.M)
	defer m.Set.Exit(m.M)
	return m.Child.Open()
}

// Next implements Operator.
func (m *Metered) Next() (*Batch, error) {
	m.Set.Enter(m.M)
	defer m.Set.Exit(m.M)
	b, err := m.Child.Next()
	if b != nil {
		m.M.AddRows(b.Len())
	}
	return b, err
}

// Close implements Operator.
func (m *Metered) Close() error {
	m.Set.Enter(m.M)
	defer m.Set.Exit(m.M)
	return m.Child.Close()
}
