package vec

import (
	"reflect"
	"sync/atomic"
	"testing"

	"energydb/internal/db/exec"
	"energydb/internal/db/value"
)

// joinResidual keeps probe.id < build.id (probe columns first, 5 each side).
func joinResidual() exec.Expr {
	return exec.BinOp{Op: exec.OpLt, L: col(0), R: col(5)}
}

// TestHashJoinMatchesRow is the differential check for the vectorized
// equijoin: on an identically seeded table, the batch join must produce
// exactly the row join's result — same multiset, same order (probe order ×
// bucket insertion order) — at every batch width, with and without a
// residual. The grp key has no NULLs; the price key has NULLs every 13th
// row, so the NULL-key paths run on both sides.
func TestHashJoinMatchesRow(t *testing.T) {
	for _, key := range []int{1, 2} { // grp (dense), price (sparse, NULLs)
		for _, residual := range []exec.Expr{nil, joinResidual()} {
			e, tbl := testEngine(t, 260)
			want, err := exec.Collect(&exec.HashJoin{
				Ctx: e.Ctx, Build: e.Scan(tbl, nil), Probe: e.Scan(tbl, nil),
				BuildKey: []int{key}, ProbeKey: []int{key}, Residual: residual,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{1, 3, 64, 1024} {
				ev, tv := testEngine(t, 260)
				got := collectVec(t, &HashJoin{
					Ctx:      ev.Ctx,
					Build:    &Scan{Ctx: ev.Ctx, File: tv.File, BatchSize: batch},
					Probe:    &Scan{Ctx: ev.Ctx, File: tv.File, BatchSize: batch},
					BuildKey: []int{key}, ProbeKey: []int{key},
					Residual: residual, BatchSize: batch,
				})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("key=%d residual=%v batch=%d: vector join differs from row join (%d vs %d rows)",
						key, residual != nil, batch, len(got), len(want))
				}
			}
		}
	}
}

// TestHashJoinNullKeysNeverMatch pins the vector join's NULL semantics with
// a hand-counted case: id%13==0 rows have a NULL price, and a price
// self-join must pair only the non-NULL keys — NULL = NULL contributes
// nothing.
func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	e, tbl := testEngine(t, 130)
	// Count the expected pairs by hand from the generator: price is
	// (i%97)/4 unless i%13==0 (NULL).
	freq := map[float64]int{}
	for i := 0; i < 130; i++ {
		if i%13 == 0 {
			continue
		}
		freq[float64(i%97)/4]++
	}
	want := 0
	for _, n := range freq {
		want += n * n
	}
	got := collectVec(t, &HashJoin{
		Ctx:      e.Ctx,
		Build:    &Scan{Ctx: e.Ctx, File: tbl.File},
		Probe:    &Scan{Ctx: e.Ctx, File: tbl.File},
		BuildKey: []int{2}, ProbeKey: []int{2}, BatchSize: 32,
	})
	if len(got) != want {
		t.Fatalf("NULL-key join produced %d rows, want %d", len(got), want)
	}
	for _, r := range got {
		if r[2].IsNull() || r[7].IsNull() {
			t.Fatalf("joined row carries a NULL key: %v", r)
		}
	}
}

// TestHashJoinEmptySides checks the degenerate cardinalities: an empty build
// side or an empty probe side yields zero rows without error.
func TestHashJoinEmptySides(t *testing.T) {
	never := exec.BinOp{Op: exec.OpLt, L: col(0), R: exec.Const{V: value.Int(-1)}}
	for _, tc := range []struct{ buildPred, probePred exec.Expr }{
		{never, nil}, {nil, never}, {never, never},
	} {
		e, tbl := testEngine(t, 80)
		n, err := exec.Drain(&RowSource{Child: &HashJoin{
			Ctx:      e.Ctx,
			Build:    &Scan{Ctx: e.Ctx, File: tbl.File, Pred: tc.buildPred},
			Probe:    &Scan{Ctx: e.Ctx, File: tbl.File, Pred: tc.probePred},
			BuildKey: []int{1}, ProbeKey: []int{1},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("empty-side join produced %d rows", n)
		}
	}
}

// TestSortMatchesRow is the differential check for the vectorized sort: same
// multi-key ordering as the row sort (both use a stable sort over identical
// arrival order, so the full row sequence must be equal), including a key
// column containing NULLs and a computed key expression.
func TestSortMatchesRow(t *testing.T) {
	keys := []exec.SortKey{
		{Expr: col(1)},             // grp asc
		{Expr: col(2), Desc: true}, // price desc, NULLs included
		{Expr: exec.BinOp{Op: exec.OpMul, L: col(0), R: exec.Const{V: value.Int(-1)}}},
	}
	e, tbl := testEngine(t, 400)
	want, err := exec.Collect(&exec.Sort{Ctx: e.Ctx, Child: e.Scan(tbl, nil), Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 256, 1024} {
		ev, tv := testEngine(t, 400)
		got := collectVec(t, &Sort{
			Ctx:   ev.Ctx,
			Child: &Scan{Ctx: ev.Ctx, File: tv.File, BatchSize: batch},
			Keys:  keys, BatchSize: batch,
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch=%d: vector sort differs from row sort (%d vs %d rows)",
				batch, len(got), len(want))
		}
	}
}

// TestSortEmpty checks the zero-row sort.
func TestSortEmpty(t *testing.T) {
	e, tbl := testEngine(t, 0)
	n, err := exec.Drain(&RowSource{Child: &Sort{
		Ctx: e.Ctx, Child: &Scan{Ctx: e.Ctx, File: tbl.File},
		Keys: []exec.SortKey{{Expr: col(0)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty sort produced %d rows", n)
	}
}

// TestJoinSortMeterPartition checks the EXPLAIN ENERGY invariant on a mixed
// batch plan — scan → hash join → sort, every operator metered: the
// per-operator exclusive counters must sum exactly to the statement delta.
func TestJoinSortMeterPartition(t *testing.T) {
	e, tbl := testEngine(t, 300)
	ms := exec.NewMeterSet(e.Ctx)
	mBuild := &exec.Meter{Label: "scan-build"}
	mProbe := &exec.Meter{Label: "scan-probe"}
	mJoin := &exec.Meter{Label: "join", Kids: []*exec.Meter{mProbe, mBuild}}
	mSort := &exec.Meter{Label: "sort", Kids: []*exec.Meter{mJoin}}
	mTop := &exec.Meter{Label: "top", Kids: []*exec.Meter{mSort}}
	chain := &Metered{Set: ms, M: mSort, Child: &Sort{
		Ctx: e.Ctx,
		Child: &Metered{Set: ms, M: mJoin, Child: &HashJoin{
			Ctx:      e.Ctx,
			Build:    &Metered{Set: ms, M: mBuild, Child: &Scan{Ctx: e.Ctx, File: tbl.File, BatchSize: 64}},
			Probe:    &Metered{Set: ms, M: mProbe, Child: &Scan{Ctx: e.Ctx, File: tbl.File, BatchSize: 64}},
			BuildKey: []int{1}, ProbeKey: []int{1},
			Residual: joinResidual(), BatchSize: 64,
		}},
		Keys: []exec.SortKey{{Expr: col(0)}, {Expr: col(5), Desc: true}},
	}}
	top := &exec.Metered{Set: ms, M: mTop, Child: &RowSource{Child: chain}}

	before := e.M.Hier.Counters()
	n, err := exec.Drain(top)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("mixed plan produced no rows")
	}
	delta := e.M.Hier.Counters().Sub(before)
	sum := mBuild.Own().Add(mProbe.Own()).Add(mJoin.Own()).Add(mSort.Own()).Add(mTop.Own())
	if sum != delta {
		t.Fatalf("metered sum %+v != statement delta %+v", sum, delta)
	}
	if inc := mTop.Inclusive(); inc != delta {
		t.Fatalf("root inclusive %+v != statement delta %+v", inc, delta)
	}
}

// TestCancelVecJoinSort checks that a pre-armed cancel flag stops the
// batch join and the batch sort at their per-batch checkpoints.
func TestCancelVecJoinSort(t *testing.T) {
	e, tbl := testEngine(t, 300)
	var flag atomic.Bool
	flag.Store(true)
	e.Ctx.Cancel = &flag
	_, err := exec.Drain(&RowSource{Child: &HashJoin{
		Ctx:      e.Ctx,
		Build:    &Scan{Ctx: e.Ctx, File: tbl.File, BatchSize: 32},
		Probe:    &Scan{Ctx: e.Ctx, File: tbl.File, BatchSize: 32},
		BuildKey: []int{1}, ProbeKey: []int{1},
	}})
	if err != exec.ErrCanceled {
		t.Fatalf("join err = %v, want ErrCanceled", err)
	}
	_, err = exec.Drain(&RowSource{Child: &Sort{
		Ctx: e.Ctx, Child: &Scan{Ctx: e.Ctx, File: tbl.File, BatchSize: 32},
		Keys: []exec.SortKey{{Expr: col(0)}},
	}})
	if err != exec.ErrCanceled {
		t.Fatalf("sort err = %v, want ErrCanceled", err)
	}
}

// TestVecJoinCheaperPerRow checks the planner's crossover premise for joins:
// on a join big enough for batch kernels to amortize dispatch, the vector
// path retires fewer instructions and fewer L1D accesses than the row path.
func TestVecJoinCheaperPerRow(t *testing.T) {
	e, tbl := testEngine(t, 2000)
	before := e.M.Hier.Counters()
	if _, err := exec.Drain(&exec.HashJoin{
		Ctx: e.Ctx, Build: e.Scan(tbl, nil), Probe: e.Scan(tbl, nil),
		BuildKey: []int{0}, ProbeKey: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	rowDelta := e.M.Hier.Counters().Sub(before)

	before = e.M.Hier.Counters()
	if _, err := exec.Drain(&RowSource{Child: &HashJoin{
		Ctx:      e.Ctx,
		Build:    &Scan{Ctx: e.Ctx, File: tbl.File},
		Probe:    &Scan{Ctx: e.Ctx, File: tbl.File},
		BuildKey: []int{0}, ProbeKey: []int{0},
	}}); err != nil {
		t.Fatal(err)
	}
	vecDelta := e.M.Hier.Counters().Sub(before)

	if vecDelta.L1DAccesses >= rowDelta.L1DAccesses {
		t.Errorf("vector join L1D %d >= row join L1D %d", vecDelta.L1DAccesses, rowDelta.L1DAccesses)
	}
	if vecDelta.Instructions() >= rowDelta.Instructions() {
		t.Errorf("vector join instructions %d >= row join instructions %d",
			vecDelta.Instructions(), rowDelta.Instructions())
	}
}
