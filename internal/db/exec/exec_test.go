package exec

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/storage"
	"energydb/internal/db/value"
)

type fixture struct {
	dev  *storage.Device
	ctx  *Ctx
	file *storage.HeapFile
}

func newFixture(t *testing.T, rows int) *fixture {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	dev := storage.NewDevice(m, 512<<20)
	pool := storage.NewBufferPool(dev, 8<<20, 8<<10)
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "amt", Type: value.TypeFloat},
		catalog.Column{Name: "tag", Type: value.TypeStr, Width: 16},
	)
	hf := storage.NewHeapFile(dev, pool, schema, 8)
	tags := []string{"alpha", "beta", "gamma"}
	for i := 0; i < rows; i++ {
		hf.Append(value.Row{
			value.Int(int64(i)),
			value.Int(int64(i % 5)),
			value.Float(float64(i) * 0.5),
			value.Str(tags[i%3]),
		})
	}
	cost := CostModel{TupleInstr: 4, EvalInstr: 2, EvalStores: 1, EmitRowCopy: true}
	return &fixture{
		dev:  dev,
		ctx:  NewCtx(m, dev.Arena, cost),
		file: hf,
	}
}

func TestSeqScanAll(t *testing.T) {
	f := newFixture(t, 100)
	n, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file})
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("scanned %d rows, want 100", n)
	}
}

func TestSeqScanFilter(t *testing.T) {
	f := newFixture(t, 100)
	pred := BinOp{OpLt, Col{Idx: 0}, Const{value.Int(10)}}
	rows, err := Collect(&SeqScan{Ctx: f.ctx, File: f.file, Filter: pred})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("filtered to %d rows, want 10", len(rows))
	}
}

func TestProjectComputes(t *testing.T) {
	f := newFixture(t, 10)
	p := &Project{
		Ctx:   f.ctx,
		Child: &SeqScan{Ctx: f.ctx, File: f.file},
		Exprs: []Expr{
			BinOp{OpMul, Col{Idx: 2}, Const{value.Float(2)}},
			Col{Idx: 0},
		},
		Names: []string{"double_amt", "id"},
	}
	rows, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if rows[4][0].AsFloat() != 4.0 { // amt=2.0 doubled
		t.Fatalf("projected value = %v", rows[4][0])
	}
	if p.Schema().Columns[0].Name != "double_amt" {
		t.Fatalf("schema name = %q", p.Schema().Columns[0].Name)
	}
}

func TestGroupByAggregates(t *testing.T) {
	f := newFixture(t, 100)
	g := &GroupBy{
		Ctx:     f.ctx,
		Child:   &SeqScan{Ctx: f.ctx, File: f.file},
		GroupBy: []Expr{Col{Idx: 1}},
		Aggs: []AggSpec{
			{Kind: AggCount},
			{Kind: AggSum, Arg: Col{Idx: 2}},
			{Kind: AggMin, Arg: Col{Idx: 0}},
			{Kind: AggMax, Arg: Col{Idx: 0}},
			{Kind: AggAvg, Arg: Col{Idx: 2}},
		},
	}
	rows, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("groups = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r[1].AsInt() != 20 {
			t.Fatalf("count = %v, want 20 per group", r[1])
		}
		grp := r[0].AsInt()
		if r[3].AsInt() != grp {
			t.Fatalf("min of group %d = %v", grp, r[3])
		}
		if r[4].AsInt() != 95+grp {
			t.Fatalf("max of group %d = %v", grp, r[4])
		}
	}
}

func TestScalarAggregate(t *testing.T) {
	f := newFixture(t, 100)
	g := &GroupBy{
		Ctx:   f.ctx,
		Child: &SeqScan{Ctx: f.ctx, File: f.file},
		Aggs:  []AggSpec{{Kind: AggSum, Arg: Col{Idx: 0}}},
	}
	rows, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsFloat() != 4950 {
		t.Fatalf("sum = %v", rows)
	}
}

func TestSortOrders(t *testing.T) {
	f := newFixture(t, 50)
	s := &Sort{
		Ctx:   f.ctx,
		Child: &SeqScan{Ctx: f.ctx, File: f.file},
		Keys:  []SortKey{{Expr: Col{Idx: 2}, Desc: true}},
	}
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("sorted %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][2].AsFloat() > rows[i-1][2].AsFloat() {
			t.Fatal("descending sort violated")
		}
	}
}

func TestSortMultiKey(t *testing.T) {
	f := newFixture(t, 30)
	s := &Sort{
		Ctx:   f.ctx,
		Child: &SeqScan{Ctx: f.ctx, File: f.file},
		Keys: []SortKey{
			{Expr: Col{Idx: 1}},             // grp asc
			{Expr: Col{Idx: 0}, Desc: true}, // id desc within grp
		},
	}
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a[1].AsInt() > b[1].AsInt() {
			t.Fatal("primary key order violated")
		}
		if a[1].AsInt() == b[1].AsInt() && a[0].AsInt() < b[0].AsInt() {
			t.Fatal("secondary descending order violated")
		}
	}
}

func TestLimit(t *testing.T) {
	f := newFixture(t, 100)
	n, err := Drain(&Limit{Child: &SeqScan{Ctx: f.ctx, File: f.file}, N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("limit produced %d rows", n)
	}
}

func TestHashJoin(t *testing.T) {
	f := newFixture(t, 60)
	// Self-join on grp: each of 60 rows matches 12 rows (60/5 per group).
	j := &HashJoin{
		Ctx:      f.ctx,
		Build:    &SeqScan{Ctx: f.ctx, File: f.file},
		Probe:    &SeqScan{Ctx: f.ctx, File: f.file},
		BuildKey: []int{1},
		ProbeKey: []int{1},
	}
	n, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60*12 {
		t.Fatalf("join produced %d rows, want %d", n, 60*12)
	}
}

func TestHashJoinResidual(t *testing.T) {
	f := newFixture(t, 60)
	// Join on grp but keep only probe.id < build.id.
	j := &HashJoin{
		Ctx:      f.ctx,
		Build:    &SeqScan{Ctx: f.ctx, File: f.file},
		Probe:    &SeqScan{Ctx: f.ctx, File: f.file},
		BuildKey: []int{1},
		ProbeKey: []int{1},
		Residual: BinOp{OpLt, Col{Idx: 0}, Col{Idx: 4}},
	}
	n, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// Per group: 12 rows, pairs with probe<build: 12*11/2 = 66; 5 groups.
	if n != 5*66 {
		t.Fatalf("residual join produced %d rows, want %d", n, 5*66)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	f := newFixture(t, 20)
	j := &NestedLoopJoin{
		Ctx:   f.ctx,
		Outer: &SeqScan{Ctx: f.ctx, File: f.file},
		Inner: &SeqScan{Ctx: f.ctx, File: f.file},
		Pred:  BinOp{OpEq, Col{Idx: 1}, Col{Idx: 5}},
	}
	n, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20*4 {
		t.Fatalf("NLJ produced %d rows, want 80", n)
	}
}

func TestMemTableRescan(t *testing.T) {
	f := newFixture(t, 10)
	rows, err := Collect(&SeqScan{Ctx: f.ctx, File: f.file})
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMemTable(f.ctx, f.file.Schema(), rows)
	for pass := 0; pass < 2; pass++ {
		n, err := Drain(mt.Scan())
		if err != nil {
			t.Fatal(err)
		}
		if n != 10 {
			t.Fatalf("pass %d scanned %d", pass, n)
		}
	}
}

func TestExpressions(t *testing.T) {
	row := value.Row{value.Int(5), value.Str("SHIP"), value.Float(2.5)}
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{BinOp{OpAdd, Col{Idx: 0}, Const{value.Int(3)}}, value.Int(8)},
		{BinOp{OpMul, Col{Idx: 2}, Const{value.Float(4)}}, value.Float(10)},
		{BinOp{OpDiv, Col{Idx: 0}, Const{value.Int(0)}}, value.Null()},
		{BinOp{OpEq, Col{Idx: 1}, Const{value.Str("SHIP")}}, value.Int(1)},
		{BinOp{OpAnd, Const{value.Int(1)}, Const{value.Int(0)}}, value.Int(0)},
		{BinOp{OpOr, Const{value.Int(0)}, Const{value.Int(1)}}, value.Int(1)},
		{Not{Const{value.Int(0)}}, value.Int(1)},
		{Like{Col{Idx: 1}, "SH%"}, value.Int(1)},
		{Like{Col{Idx: 1}, "%IP"}, value.Int(1)},
		{Like{Col{Idx: 1}, "%HI%"}, value.Int(1)},
		{Like{Col{Idx: 1}, "AIR"}, value.Int(0)},
		{InList{Col{Idx: 0}, []value.Value{value.Int(4), value.Int(5)}}, value.Int(1)},
		{InList{Col{Idx: 0}, []value.Value{value.Int(4)}}, value.Int(0)},
		{Between(Col{Idx: 0}, value.Int(5), value.Int(6)), value.Int(1)},
		{Between(Col{Idx: 0}, value.Int(6), value.Int(9)), value.Int(0)},
	}
	for i, c := range cases {
		if got := c.e.Eval(row); !value.Equal(got, c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("case %d (%s): got %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestScanEnergyPatternIsL1DHeavy(t *testing.T) {
	// The structural claim of the paper: a warm sequential scan's access
	// stream is dominated by L1D hits and stores.
	f := newFixture(t, 5000)
	if _, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file}); err != nil {
		t.Fatal(err) // warm pages
	}
	m := f.ctx.M
	before := m.Hier.Counters()
	if _, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file}); err != nil {
		t.Fatal(err)
	}
	d := m.Hier.Counters().Sub(before)
	if d.StoreL1DHitRate() < 0.99 {
		t.Fatalf("store L1D hit rate = %.4f, paper reports 99.86%%", d.StoreL1DHitRate())
	}
	if d.Stores == 0 || d.Loads == 0 {
		t.Fatal("scan issued no stores or loads")
	}
	ratio := float64(d.Stores) / float64(d.Loads)
	if ratio < 0.2 || ratio > 1.5 {
		t.Fatalf("store/load ratio = %.2f, want the paper's ~0.66 regime", ratio)
	}
}
