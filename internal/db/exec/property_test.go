package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"energydb/internal/cpusim"
	"energydb/internal/db/catalog"
	"energydb/internal/db/storage"
	"energydb/internal/db/value"
)

// randomFixture loads a table with deterministic pseudo-random rows.
func randomFixture(seed int64, rows int) *fixture {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	dev := storage.NewDevice(m, 512<<20)
	pool := storage.NewBufferPool(dev, 8<<20, 8<<10)
	schema := catalog.NewSchema(
		catalog.Column{Name: "id", Type: value.TypeInt},
		catalog.Column{Name: "grp", Type: value.TypeInt},
		catalog.Column{Name: "amt", Type: value.TypeFloat},
		catalog.Column{Name: "tag", Type: value.TypeStr, Width: 16},
	)
	hf := storage.NewHeapFile(dev, pool, schema, 8)
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < rows; i++ {
		hf.Append(value.Row{
			value.Int(int64(rng.Intn(1000))),
			value.Int(int64(rng.Intn(7))),
			value.Float(float64(rng.Intn(10000)) / 100),
			value.Str(tags[rng.Intn(len(tags))]),
		})
	}
	cost := CostModel{TupleInstr: 4, EvalInstr: 2, EvalStores: 1, EmitRowCopy: true}
	return &fixture{dev: dev, ctx: NewCtx(m, dev.Arena, cost), file: hf}
}

// TestPropertyFilterPartitionsScan: a predicate and its negation must
// partition the scan exactly.
func TestPropertyFilterPartitionsScan(t *testing.T) {
	f := func(seed int64, thr uint16) bool {
		fx := randomFixture(seed, 300)
		pred := BinOp{OpLt, Col{Idx: 0}, Const{value.Int(int64(thr % 1000))}}
		all, err := Drain(&SeqScan{Ctx: fx.ctx, File: fx.file})
		if err != nil {
			return false
		}
		pos, err := Drain(&SeqScan{Ctx: fx.ctx, File: fx.file, Filter: pred})
		if err != nil {
			return false
		}
		neg, err := Drain(&SeqScan{Ctx: fx.ctx, File: fx.file, Filter: Not{pred}})
		if err != nil {
			return false
		}
		return pos+neg == all
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySortIsPermutation: sorting returns the same multiset, ordered.
func TestPropertySortIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		fx := randomFixture(seed, 200)
		plain, err := Collect(&SeqScan{Ctx: fx.ctx, File: fx.file})
		if err != nil {
			return false
		}
		sorted, err := Collect(&Sort{
			Ctx:   fx.ctx,
			Child: &SeqScan{Ctx: fx.ctx, File: fx.file},
			Keys:  []SortKey{{Expr: Col{Idx: 0}}},
		})
		if err != nil || len(sorted) != len(plain) {
			return false
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1][0].AsInt() > sorted[i][0].AsInt() {
				return false
			}
		}
		var a, b []int64
		for i := range plain {
			a = append(a, plain[i][0].AsInt())
			b = append(b, sorted[i][0].AsInt())
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGroupByConservesCount: group counts sum to the input count,
// and sums match a reference computed directly.
func TestPropertyGroupByConservesCount(t *testing.T) {
	f := func(seed int64) bool {
		fx := randomFixture(seed, 250)
		rows, err := Collect(&SeqScan{Ctx: fx.ctx, File: fx.file})
		if err != nil {
			return false
		}
		wantSum := map[int64]float64{}
		wantCount := map[int64]int64{}
		for _, r := range rows {
			wantSum[r[1].AsInt()] += r[2].AsFloat()
			wantCount[r[1].AsInt()]++
		}
		groups, err := Collect(&GroupBy{
			Ctx:     fx.ctx,
			Child:   &SeqScan{Ctx: fx.ctx, File: fx.file},
			GroupBy: []Expr{Col{Idx: 1}},
			Aggs: []AggSpec{
				{Kind: AggCount},
				{Kind: AggSum, Arg: Col{Idx: 2}},
			},
		})
		if err != nil || len(groups) != len(wantCount) {
			return false
		}
		total := int64(0)
		for _, g := range groups {
			k := g[0].AsInt()
			total += g[1].AsInt()
			if g[1].AsInt() != wantCount[k] {
				return false
			}
			if diff := g[2].AsFloat() - wantSum[k]; diff > 1e-6 || diff < -1e-6 {
				return false
			}
		}
		return total == int64(len(rows))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHashJoinMatchesNestedLoop: the two equijoin implementations
// must agree on cardinality for any data.
func TestPropertyHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		fx := randomFixture(seed, 120)
		hj, err := Drain(&HashJoin{
			Ctx:      fx.ctx,
			Build:    &SeqScan{Ctx: fx.ctx, File: fx.file},
			Probe:    &SeqScan{Ctx: fx.ctx, File: fx.file},
			BuildKey: []int{1},
			ProbeKey: []int{1},
		})
		if err != nil {
			return false
		}
		nlj, err := Drain(&NestedLoopJoin{
			Ctx:   fx.ctx,
			Outer: &SeqScan{Ctx: fx.ctx, File: fx.file},
			Inner: &SeqScan{Ctx: fx.ctx, File: fx.file},
			Pred:  BinOp{OpEq, Col{Idx: 1}, Col{Idx: 5}},
		})
		if err != nil {
			return false
		}
		return hj == nlj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySimulationNeverBlocksResults: whatever the access pattern,
// operators must produce identical results with the prefetcher on or off
// (the simulation layer must never affect query semantics).
func TestPropertySimulationTransparency(t *testing.T) {
	f := func(seed int64) bool {
		collect := func(prefetch bool) []value.Row {
			fx := randomFixture(seed, 150)
			fx.ctx.M.Hier.SetPrefetchEnabled(prefetch)
			rows, err := Collect(&Sort{
				Ctx:   fx.ctx,
				Child: &SeqScan{Ctx: fx.ctx, File: fx.file},
				Keys:  []SortKey{{Expr: Col{Idx: 0}}, {Expr: Col{Idx: 2}}},
			})
			if err != nil {
				return nil
			}
			return rows
		}
		a, b := collect(true), collect(false)
		if a == nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			for j := range a[i] {
				if !value.Equal(a[i][j], b[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
