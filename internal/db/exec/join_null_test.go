package exec

import (
	"testing"

	"energydb/internal/db/btree"
	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
)

// nullJoinInputs builds two small in-memory tables whose key columns contain
// NULLs. Schema: (k INT, v INT). Expected equijoin matches on k ignore every
// NULL key on either side — in particular NULL = NULL must not match.
func nullJoinInputs(f *fixture) (build, probe *MemTable) {
	schema := catalog.NewSchema(
		catalog.Column{Name: "k", Type: value.TypeInt},
		catalog.Column{Name: "v", Type: value.TypeInt},
	)
	build = NewMemTable(f.ctx, schema, []value.Row{
		{value.Int(1), value.Int(10)},
		{value.Null(), value.Int(11)},
		{value.Int(2), value.Int(12)},
		{value.Null(), value.Int(13)},
		{value.Int(1), value.Int(14)},
	})
	probe = NewMemTable(f.ctx, schema, []value.Row{
		{value.Int(1), value.Int(100)},
		{value.Null(), value.Int(101)},
		{value.Int(2), value.Int(102)},
		{value.Int(3), value.Int(103)},
		{value.Null(), value.Int(104)},
	})
	return build, probe
}

// TestHashJoinNullKeysNeverMatch is the row-mode regression for SQL equijoin
// NULL semantics: build rows with NULL keys never enter the table, probe rows
// with NULL keys never probe it, and NULL = NULL produces no pair.
func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	f := newFixture(t, 1)
	build, probe := nullJoinInputs(f)
	j := &HashJoin{
		Ctx: f.ctx, Build: build.Scan(), Probe: probe.Scan(),
		BuildKey: []int{0}, ProbeKey: []int{0},
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// probe k=1 matches build v∈{10,14}; probe k=2 matches build v=12.
	if len(rows) != 3 {
		t.Fatalf("join produced %d rows, want 3 (NULL keys must not match): %v", len(rows), rows)
	}
	for _, r := range rows {
		if r[0].IsNull() || r[2].IsNull() {
			t.Fatalf("joined row has a NULL key: %v", r)
		}
	}
}

// TestHashJoinNullKeysWithResidual checks the NULL-key rule survives a
// residual predicate: the residual filters pairs that already matched, it
// must never resurrect NULL-key pairs.
func TestHashJoinNullKeysWithResidual(t *testing.T) {
	f := newFixture(t, 1)
	build, probe := nullJoinInputs(f)
	j := &HashJoin{
		Ctx: f.ctx, Build: build.Scan(), Probe: probe.Scan(),
		BuildKey: []int{0}, ProbeKey: []int{0},
		// probe.v < build.v + 100 keeps v=100 vs {10,14} out, v=102 vs 12 out;
		// an always-true shape would hide residual evaluation entirely, so use
		// one that prunes: keep pairs with build.v > 10.
		Residual: BinOp{OpGt, Col{Idx: 3}, Const{value.Int(10)}},
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// Surviving pairs: (k=1, build v=14) and (k=2, build v=12).
	if len(rows) != 2 {
		t.Fatalf("residual join produced %d rows, want 2: %v", len(rows), rows)
	}
}

// TestHashJoinMultiColNullComponent checks a composite key with one NULL
// component is treated as a NULL key.
func TestHashJoinMultiColNullComponent(t *testing.T) {
	f := newFixture(t, 1)
	schema := catalog.NewSchema(
		catalog.Column{Name: "a", Type: value.TypeInt},
		catalog.Column{Name: "b", Type: value.TypeInt},
	)
	rows := []value.Row{
		{value.Int(1), value.Int(1)},
		{value.Int(1), value.Null()},
		{value.Null(), value.Int(1)},
	}
	mt := NewMemTable(f.ctx, schema, rows)
	j := &HashJoin{
		Ctx: f.ctx, Build: mt.Scan(), Probe: mt.Scan(),
		BuildKey: []int{0, 1}, ProbeKey: []int{0, 1},
	}
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// Only (1,1) ⋈ (1,1): rows with a NULL in either key component drop out.
	if len(got) != 1 {
		t.Fatalf("composite-key join produced %d rows, want 1: %v", len(got), got)
	}
}

// TestIndexJoinNullOuterKey checks the index nested-loop join skips outer
// rows whose key is NULL instead of probing the index with a NULL.
func TestIndexJoinNullOuterKey(t *testing.T) {
	f := newFixture(t, 20)
	idx := btree.New(f.ctx.M.Hier, f.ctx.Arena, 4096)
	for i := 0; i < f.file.RowCount(); i++ {
		row, _, err := f.file.ReadRow(i, true)
		if err != nil {
			t.Fatal(err)
		}
		idx.Insert(row[0], i) // index on id
	}
	outerSchema := catalog.NewSchema(catalog.Column{Name: "k", Type: value.TypeInt})
	outer := NewMemTable(f.ctx, outerSchema, []value.Row{
		{value.Int(3)}, {value.Null()}, {value.Int(7)}, {value.Null()},
	})
	j := &IndexJoin{
		Ctx: f.ctx, Outer: outer.Scan(), Inner: f.file, Index: idx, OuterKey: 0,
	}
	n, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("index join produced %d rows, want 2 (NULL outer keys skipped)", n)
	}
}
