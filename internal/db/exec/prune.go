package exec

import (
	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
)

// Prune narrows a row to a subset of its columns, preserving their names,
// types and widths (unlike Project, which computes expressions into
// anonymous float slots). It models the cheap slot-remapping real executors
// do when a projection list is pushed below a join: one move per kept
// column plus the narrowed output-row copy. The optimizer inserts it below
// joins and sorts when the downstream width saving beats this per-row cost.
type Prune struct {
	Ctx   *Ctx
	Child Operator
	// Cols are indexes into the child schema, in output order.
	Cols []int

	schema *catalog.Schema
	out    value.Row
}

// Schema implements Operator.
func (p *Prune) Schema() *catalog.Schema {
	if p.schema == nil {
		p.schema = p.Child.Schema().Project(p.Cols)
	}
	return p.schema
}

// Open implements Operator.
func (p *Prune) Open() error {
	p.out = make(value.Row, len(p.Cols))
	return p.Child.Open()
}

// Next implements Operator.
func (p *Prune) Next() (value.Row, bool, error) {
	row, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	// One register move per kept column, then the narrowed row copy.
	p.Ctx.Compute(len(p.Cols))
	for i, c := range p.Cols {
		p.out[i] = row[c]
	}
	p.Ctx.EmitRow(p.Schema().RowWidth())
	return p.out, true, nil
}

// Close implements Operator.
func (p *Prune) Close() error { return p.Child.Close() }
