// Package exec implements a Volcano-style query executor over the storage
// layer. Every operator issues its real data accesses (page scans, index
// descents, hash probes, sort compares, temporary-tuple stores) through the
// memory-hierarchy simulator, so profiled queries exhibit the access
// patterns the paper attributes the L1D energy bottleneck to: streaming
// scans with high locality, store-heavy intermediate tuples, and
// pointer-chasing index paths.
//
// Interpretation overhead is modelled explicitly. Real engines execute
// thousands of instructions per tuple — expression interpreters, tuple-slot
// bookkeeping, cursor state — and most of their memory traffic targets hot,
// L1D-resident executor structures (the paper measures 70% of SQLite's L1D
// loads inside sqlite3VdbeExec, Section 4.2). The CostModel numbers below
// reproduce that traffic; they are the lever that differentiates the three
// engine profiles.
package exec

import (
	"runtime"
	"sync/atomic"

	"energydb/internal/cpusim"
	"energydb/internal/memsim"
)

// CostModel captures per-engine interpretation overheads.
type CostModel struct {
	// TupleInstr is the non-memory instruction overhead per tuple
	// processed by an operator (dispatch, bookkeeping, branching).
	TupleInstr int
	// TupleLoads is the number of hot L1D loads per tuple (interpreter
	// state, cursors, slot descriptors).
	TupleLoads int
	// TupleStores is the number of hot stores per tuple (slot writes,
	// register spills).
	TupleStores int
	// EvalInstr / EvalLoads / EvalStores are charged per expression node
	// per evaluation.
	EvalInstr  int
	EvalLoads  int
	EvalStores int
	// EmitRowCopy controls whether emitted rows are copied into an
	// output slot (one store per cache line of row width).
	EmitRowCopy bool
}

// hotLines is the number of distinct cache lines the executor's hot
// structures span (VM registers, cursor, slot descriptor, catalog entry).
const hotLines = 8

// Ctx carries the simulated machine, scratch memory and cost model through
// an operator tree.
type Ctx struct {
	M     *cpusim.Machine
	Arena *memsim.Arena
	Cost  CostModel

	// Cancel, when non-nil and set, makes the executor abandon the running
	// statement at the next per-tuple checkpoint: TupleCost panics with a
	// sentinel that Collect and Drain recover into ErrCanceled. It may be
	// flipped from any goroutine (statement-timeout watchdogs use this);
	// everything else on the Ctx stays single-owner.
	Cancel *atomic.Bool

	// hot is the base of the executor's hot working set: a few cache
	// lines that are touched on every tuple and therefore L1D-resident,
	// like real interpreter state.
	hot     uint64
	hotIdx  uint64
	slotOff uint64
	tuples  uint64
}

// yieldEvery is how many tuple checkpoints pass between scheduler yields
// while a cancel flag is armed. The simulation is pure CPU work, so on a
// GOMAXPROCS=1 host a statement could otherwise outrun the watchdog timer
// (Go only delivers expired timers when the scheduler runs); an occasional
// Gosched bounds cancellation latency to a few thousand tuples on any host
// at negligible cost.
const yieldEvery = 4096

// canceledPanic is the unwind sentinel thrown by TupleCost on cancellation.
type canceledPanic struct{}

// NewCtx builds an executor context.
func NewCtx(m *cpusim.Machine, arena *memsim.Arena, cost CostModel) *Ctx {
	return &Ctx{
		M:     m,
		Arena: arena,
		Cost:  cost,
		hot:   arena.Alloc(hotLines*memsim.LineSize, memsim.PageSize),
	}
}

// RelocateHot moves the executor's hot working set to a new base address.
// The Section 4.2 co-design uses this to place the interpreter's "special
// variables" into DTCM, where every per-tuple load and store becomes a
// cheap, never-missing TCM access.
func (c *Ctx) RelocateHot(base uint64) { c.hot = base }

// HotBytes returns the size of the hot working set.
func (c *Ctx) HotBytes() uint64 { return hotLines * memsim.LineSize }

// hotLine returns the next hot line address, rotating across the set.
func (c *Ctx) hotLine() uint64 {
	c.hotIdx++
	return c.hot + (c.hotIdx%hotLines)*memsim.LineSize
}

// TupleCost charges the per-tuple interpretation overhead: the storm of hot
// loads, stores and instructions a real executor spends moving one tuple
// through an operator.
func (c *Ctx) TupleCost() {
	if c.Cancel != nil {
		if c.Cancel.Load() {
			panic(canceledPanic{})
		}
		if c.tuples++; c.tuples%yieldEvery == 0 {
			runtime.Gosched()
		}
	}
	h := c.M.Hier
	if n := c.Cost.TupleLoads; n > 0 {
		third := uint64(n) / 3
		h.LoadRepeat(c.hotLine(), third)
		h.LoadRepeat(c.hotLine(), third)
		h.LoadRepeat(c.hotLine(), uint64(n)-2*third)
	}
	if n := c.Cost.TupleStores; n > 0 {
		half := uint64(n) / 2
		h.StoreRepeat(c.hotLine(), half)
		h.StoreRepeat(c.hotLine(), uint64(n)-half)
	}
	if n := c.Cost.TupleInstr; n > 0 {
		h.Exec(uint64(n), memsim.InstrOther)
	}
}

// Poll is the charge-free cancellation checkpoint: it observes the cancel
// flag (and yields, same as TupleCost) without touching the simulated
// machine, so loops that already account their traffic another way — hash
// builds, sort comparators, materialization copies — can still be timed
// out without perturbing energy numbers.
func (c *Ctx) Poll() {
	if c.Cancel == nil {
		return
	}
	if c.Cancel.Load() {
		panic(canceledPanic{})
	}
	if c.tuples++; c.tuples%yieldEvery == 0 {
		runtime.Gosched()
	}
}

// pollStride is how many buffer elements pass between cancellation checks
// in loops over already-materialized rows (sort key extraction, hash-table
// builds, mem-table copies). Those loops charge their simulated traffic in
// bulk, so a per-element Poll is pure atomic-load overhead on the real
// machine; one check per stride keeps the flag read off the per-element
// fast path while still bounding cancellation latency to a few hundred
// elements.
const pollStride = 256

// PollEvery is Poll amortized across a loop over a materialized buffer: it
// checks the cancel flag on element 0 and every pollStride-th element
// after. The first-element check means a pre-armed cancel still aborts
// before any work, and the stride divides yieldEvery so the scheduler
// yield cadence stays at one Gosched per yieldEvery elements, same as the
// per-tuple checkpoints.
func (c *Ctx) PollEvery(i int) {
	if i%pollStride != 0 || c.Cancel == nil {
		return
	}
	if c.Cancel.Load() {
		panic(canceledPanic{})
	}
	if c.tuples += pollStride; c.tuples%yieldEvery < pollStride {
		runtime.Gosched()
	}
}

// EmitRow simulates copying an emitted tuple of the given width into an
// output slot: one store per cache line.
func (c *Ctx) EmitRow(width int) {
	if !c.Cost.EmitRowCopy || width <= 0 {
		return
	}
	lines := uint64((width + memsim.LineSize - 1) / memsim.LineSize)
	c.M.Hier.StoreRepeat(c.hotLine(), lines)
}

// EvalCost simulates the instruction, load and store cost of evaluating an
// expression with n nodes under an interpreting evaluator.
func (c *Ctx) EvalCost(nodes int) {
	h := c.M.Hier
	if n := nodes * c.Cost.EvalLoads; n > 0 {
		h.LoadRepeat(c.hotLine(), uint64(n))
	}
	if n := nodes * c.Cost.EvalStores; n > 0 {
		h.StoreRepeat(c.hotLine(), uint64(n))
	}
	if n := nodes * c.Cost.EvalInstr; n > 0 {
		h.Exec(uint64(n), memsim.InstrOther)
	}
}

// Compute simulates n arithmetic instructions (aggregate updates, key
// hashing, comparisons that do real work).
func (c *Ctx) Compute(n int) {
	if n > 0 {
		c.M.Hier.Exec(uint64(n), memsim.InstrAdd)
	}
}
