package exec

import (
	"energydb/internal/db/btree"
	"energydb/internal/db/catalog"
	"energydb/internal/db/storage"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// hashBucketBytes is the simulated size of one hash-table bucket entry.
const hashBucketBytes = 16

// HashJoin builds a hash table on the build side and probes it with the
// probe side (PostgreSQL/MySQL-style equijoin). Build stores and probe
// chains are simulated: probes are dependent loads into a table that is
// usually larger than L1D, one of the ways complex executors shift energy
// away from the L1D cache (Section 3.3).
type HashJoin struct {
	Ctx      *Ctx
	Build    Operator
	Probe    Operator
	BuildKey []int
	ProbeKey []int
	// Residual is an optional non-equi predicate over the joined row.
	Residual Expr

	schema    *catalog.Schema
	table     map[value.Key][]value.Row
	tableBase uint64
	tableSize uint64
	probeRow  value.Row
	matches   []value.Row
	matchIdx  int
	out       value.Row
	resNodes  int
}

// Schema implements Operator.
func (j *HashJoin) Schema() *catalog.Schema {
	if j.schema == nil {
		j.schema = j.Probe.Schema().Concat(j.Build.Schema())
	}
	return j.schema
}

// Open implements Operator: drains the build side into the hash table.
func (j *HashJoin) Open() error {
	rows, err := Collect(j.Build)
	if err != nil {
		return err
	}
	j.table = make(map[value.Key][]value.Row, len(rows))
	j.tableSize = uint64(len(rows)+1) * hashBucketBytes * 2
	j.tableBase = j.Ctx.Arena.Alloc(j.tableSize, memsim.PageSize)
	h := j.Ctx.M.Hier
	for i, r := range rows {
		j.Ctx.PollEvery(i)
		key, ok := joinKey(r, j.BuildKey)
		if !ok {
			// A NULL key can never satisfy an equality, so the row can
			// never match; keep it out of the table entirely.
			continue
		}
		j.table[key] = append(j.table[key], r)
		// Hash, bucket write, entry write.
		j.Ctx.Compute(3)
		slot := j.tableBase + uint64(i)*hashBucketBytes*2%j.tableSize
		h.Load(slot, true)
		h.Store(slot)
	}
	if j.Residual != nil {
		j.resNodes = j.Residual.Nodes()
	}
	return j.Probe.Open()
}

// Next implements Operator.
func (j *HashJoin) Next() (value.Row, bool, error) {
	h := j.Ctx.M.Hier
	for {
		if j.matchIdx < len(j.matches) {
			b := j.matches[j.matchIdx]
			j.matchIdx++
			// Walking the bucket chain is a pointer chase.
			h.Load(j.tableBase+uint64(j.matchIdx)*hashBucketBytes%j.tableSize, true)
			if j.out == nil {
				j.out = make(value.Row, 0, len(j.probeRow)+len(b))
			}
			j.out = append(j.out[:0], j.probeRow...)
			j.out = append(j.out, b...)
			j.Ctx.TupleCost()
			if j.Residual != nil {
				j.Ctx.EvalCost(j.resNodes)
				if !Truthy(j.Residual.Eval(j.out)) {
					continue
				}
			}
			j.Ctx.EmitRow(len(j.out) * 8)
			return j.out, true, nil
		}
		row, ok, err := j.Probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key, ok := joinKey(row, j.ProbeKey)
		if !ok {
			// NULL never equals anything (not even NULL): skip the probe.
			continue
		}
		j.probeRow = row.Clone()
		j.Ctx.Compute(2) // hash the probe key
		// Bucket head probe: dependent load.
		h.Load(j.tableBase+key.Hash()%j.tableSize, true)
		j.matches = j.table[key]
		j.matchIdx = 0
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.table = nil
	return j.Probe.Close()
}

// IndexJoin is an index nested-loop join: for each outer row it descends
// the inner table's index and fetches matching rows — SQLite's only join
// strategy and the preferred plan for selective joins elsewhere.
type IndexJoin struct {
	Ctx      *Ctx
	Outer    Operator
	Inner    *storage.HeapFile
	Index    *btree.Tree
	OuterKey int
	// Residual filters the concatenated row.
	Residual Expr

	schema   *catalog.Schema
	outerRow value.Row
	matches  []int
	matchIdx int
	out      value.Row
	resNodes int
}

// Schema implements Operator.
func (j *IndexJoin) Schema() *catalog.Schema {
	if j.schema == nil {
		j.schema = j.Outer.Schema().Concat(j.Inner.Schema())
	}
	return j.schema
}

// Open implements Operator.
func (j *IndexJoin) Open() error {
	if j.Residual != nil {
		j.resNodes = j.Residual.Nodes()
	}
	return j.Outer.Open()
}

// Next implements Operator.
func (j *IndexJoin) Next() (value.Row, bool, error) {
	for {
		if j.matchIdx < len(j.matches) {
			id := j.matches[j.matchIdx]
			j.matchIdx++
			inner, visible, err := j.Inner.ReadRow(id, false)
			if err != nil {
				return nil, false, err
			}
			if !visible {
				j.Ctx.TupleCost()
				continue
			}
			if j.out == nil {
				j.out = make(value.Row, 0, len(j.outerRow)+len(inner))
			}
			j.out = append(j.out[:0], j.outerRow...)
			j.out = append(j.out, inner...)
			j.Ctx.TupleCost()
			if j.Residual != nil {
				j.Ctx.EvalCost(j.resNodes)
				if !Truthy(j.Residual.Eval(j.out)) {
					continue
				}
			}
			j.Ctx.EmitRow(len(j.out) * 8)
			return j.out, true, nil
		}
		row, ok, err := j.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if row[j.OuterKey].IsNull() {
			// Same NULL-key semantics as the hash join: an equality on a
			// NULL outer key matches nothing.
			continue
		}
		j.outerRow = row.Clone()
		j.matches = j.Index.Lookup(row[j.OuterKey])
		j.matchIdx = 0
	}
}

// Close implements Operator.
func (j *IndexJoin) Close() error { return j.Outer.Close() }

// NestedLoopJoin materializes the inner side once and rescans it per outer
// row, applying the predicate to the concatenated row. It handles non-equi
// joins and is the fallback when no index exists.
type NestedLoopJoin struct {
	Ctx   *Ctx
	Outer Operator
	Inner Operator
	Pred  Expr

	schema    *catalog.Schema
	inner     *MemTable
	outerRow  value.Row
	innerIdx  int
	out       value.Row
	predNodes int
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *catalog.Schema {
	if j.schema == nil {
		j.schema = j.Outer.Schema().Concat(j.Inner.Schema())
	}
	return j.schema
}

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	rows, err := Collect(j.Inner)
	if err != nil {
		return err
	}
	j.inner = NewMemTable(j.Ctx, j.Inner.Schema(), rows)
	if j.Pred != nil {
		j.predNodes = j.Pred.Nodes()
	}
	j.innerIdx = 0
	j.outerRow = nil
	return j.Outer.Open()
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (value.Row, bool, error) {
	for {
		if j.outerRow == nil {
			row, ok, err := j.Outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.outerRow = row.Clone()
			j.innerIdx = 0
		}
		for j.innerIdx < j.inner.Len() {
			inner := j.inner.Row(j.innerIdx)
			j.innerIdx++
			if j.out == nil {
				j.out = make(value.Row, 0, len(j.outerRow)+len(inner))
			}
			j.out = append(j.out[:0], j.outerRow...)
			j.out = append(j.out, inner...)
			j.Ctx.TupleCost()
			if j.Pred != nil {
				j.Ctx.EvalCost(j.predNodes)
				if !Truthy(j.Pred.Eval(j.out)) {
					continue
				}
			}
			j.Ctx.EmitRow(len(j.out) * 8)
			return j.out, true, nil
		}
		j.outerRow = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error { return j.Outer.Close() }

// joinKey builds the equijoin key for r over the key columns idx. ok is
// false when any key column is NULL: SQL equality is never true for NULL
// (including NULL = NULL), so a NULL key can neither enter a hash table nor
// match out of one.
func joinKey(r value.Row, idx []int) (value.Key, bool) {
	vals := make([]value.Value, len(idx))
	//lint:nocharge key-column loads are charged by the calling operator's per-tuple cost (EmitRow/EvalCost at the join loop)
	for i, j := range idx {
		if r[j].IsNull() {
			return value.Key{}, false
		}
		vals[i] = r[j]
	}
	return value.MakeKey(vals...), true
}
