package exec

import (
	"strings"
	"testing"

	"energydb/internal/db/btree"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

func TestIndexJoinOperator(t *testing.T) {
	f := newFixture(t, 60)
	idx := btree.New(f.ctx.M.Hier, f.ctx.Arena, 4096)
	for i := 0; i < f.file.RowCount(); i++ {
		row, _, err := f.file.ReadRow(i, true)
		if err != nil {
			t.Fatal(err)
		}
		idx.Insert(row[0], i) // index on id
	}
	j := &IndexJoin{
		Ctx:      f.ctx,
		Outer:    &SeqScan{Ctx: f.ctx, File: f.file},
		Inner:    f.file,
		Index:    idx,
		OuterKey: 0,
	}
	if got := len(j.Schema().Columns); got != 8 {
		t.Fatalf("joined schema width = %d, want 8", got)
	}
	n, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 { // self-join on unique key: one match each
		t.Fatalf("index join produced %d rows, want 60", n)
	}
}

func TestIndexJoinResidual(t *testing.T) {
	f := newFixture(t, 40)
	idx := btree.New(f.ctx.M.Hier, f.ctx.Arena, 4096)
	for i := 0; i < f.file.RowCount(); i++ {
		row, _, err := f.file.ReadRow(i, true)
		if err != nil {
			t.Fatal(err)
		}
		idx.Insert(row[1], i) // index on grp
	}
	j := &IndexJoin{
		Ctx:      f.ctx,
		Outer:    &SeqScan{Ctx: f.ctx, File: f.file},
		Inner:    f.file,
		Index:    idx,
		OuterKey: 1,
		Residual: BinOp{OpLt, Col{Idx: 0}, Col{Idx: 4}}, // outer.id < inner.id
	}
	n, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// 40 rows, 5 groups of 8: pairs within group with outer<inner = 8*7/2
	// per group * 5 groups = 140.
	if n != 140 {
		t.Fatalf("residual index join produced %d rows, want 140", n)
	}
}

func TestExpressionStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Col{Idx: 2}, "$2"},
		{Col{Idx: 2, Name: "amt"}, "amt"},
		{Const{value.Int(5)}, "5"},
		{BinOp{OpAdd, Col{Name: "a", Idx: 0}, Const{value.Int(1)}}, "(a + 1)"},
		{Not{Const{value.Int(0)}}, "NOT 0"},
		{Like{Col{Name: "s", Idx: 0}, "x%"}, `s LIKE "x%"`},
		{InList{Col{Name: "c", Idx: 0}, []value.Value{value.Int(1)}}, "c IN (...1)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if n := (InList{Col{Idx: 0}, []value.Value{value.Int(1), value.Int(2)}}).Nodes(); n != 4 {
		t.Errorf("InList nodes = %d, want 1 + expr + list", n)
	}
	if n := (Like{Col{Idx: 0}, "x"}).Nodes(); n != 3 {
		t.Errorf("Like nodes = %d", n)
	}
}

func TestAggKindStrings(t *testing.T) {
	names := map[AggKind]string{
		AggSum: "sum", AggAvg: "avg", AggCount: "count", AggMin: "min", AggMax: "max",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("AggKind(%d) = %q", k, k.String())
		}
	}
	if AggKind(99).String() != "unknown" {
		t.Error("out-of-range agg kind")
	}
}

func TestGroupBySchemaNames(t *testing.T) {
	f := newFixture(t, 10)
	g := &GroupBy{
		Ctx:     f.ctx,
		Child:   &SeqScan{Ctx: f.ctx, File: f.file},
		GroupBy: []Expr{Col{Idx: 1}},
		Aggs:    []AggSpec{{Kind: AggSum, Arg: Col{Idx: 2}, Name: "total"}},
	}
	names := g.Schema().Names()
	if names[0] != "g0" || names[1] != "total" {
		t.Fatalf("group schema names = %v", names)
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    value.Value
		want bool
	}{
		{value.Int(0), false}, {value.Int(1), true},
		{value.Float(0), false}, {value.Float(0.1), true},
		{value.Str(""), false}, {value.Str("x"), true},
		{value.Null(), false}, {value.Date(3), true},
	}
	for _, c := range cases {
		if Truthy(c.v) != c.want {
			t.Errorf("Truthy(%v) != %v", c.v, c.want)
		}
	}
}

func TestCtxHotRelocation(t *testing.T) {
	f := newFixture(t, 1)
	ctx := NewCtx(f.ctx.M, f.dev.Arena,
		CostModel{TupleLoads: 30, TupleStores: 10, TupleInstr: 5})
	ctx.RelocateHot(0x7000_0000)
	if ctx.HotBytes() == 0 {
		t.Fatal("hot bytes zero")
	}
	before := ctx.M.Hier.Counters()
	ctx.TupleCost()
	d := ctx.M.Hier.Counters().Sub(before)
	if d.Loads != 30 || d.Stores != 10 {
		t.Fatalf("TupleCost issued %d loads, %d stores", d.Loads, d.Stores)
	}
}

func TestHashJoinSchemaAndClose(t *testing.T) {
	f := newFixture(t, 10)
	j := &HashJoin{
		Ctx:      f.ctx,
		Build:    &SeqScan{Ctx: f.ctx, File: f.file},
		Probe:    &SeqScan{Ctx: f.ctx, File: f.file},
		BuildKey: []int{1},
		ProbeKey: []int{1},
	}
	names := j.Schema().Names()
	if len(names) != 8 || !strings.Contains(strings.Join(names, ","), "id") {
		t.Fatalf("hash join schema = %v", names)
	}
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedLoopJoinSchema(t *testing.T) {
	f := newFixture(t, 5)
	j := &NestedLoopJoin{
		Ctx:   f.ctx,
		Outer: &SeqScan{Ctx: f.ctx, File: f.file},
		Inner: &SeqScan{Ctx: f.ctx, File: f.file},
	}
	if got := len(j.Schema().Columns); got != 8 {
		t.Fatalf("NLJ schema width = %d", got)
	}
	// No predicate: full cross product.
	n, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("cross product = %d rows, want 25", n)
	}
}

func TestEmitRowWithoutCopy(t *testing.T) {
	m := newFixture(t, 1)
	cost := CostModel{EmitRowCopy: false}
	ctx := NewCtx(m.ctx.M, m.dev.Arena, cost)
	before := ctx.M.Hier.Counters()
	ctx.EmitRow(64)
	if d := ctx.M.Hier.Counters().Sub(before); d.Stores != 0 {
		t.Fatalf("EmitRow stored %d with copy disabled", d.Stores)
	}
}

func TestLoadRepeatKindSanity(t *testing.T) {
	// Guard: the ctx hot path must stay within its allocation.
	f := newFixture(t, 1)
	for i := 0; i < 100; i++ {
		f.ctx.TupleCost()
		f.ctx.EvalCost(3)
		f.ctx.Compute(2)
	}
	if f.ctx.M.Hier.Counters().Loads == 0 {
		t.Fatal("no loads issued")
	}
	_ = memsim.LineSize
}
