package exec

import (
	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// MeterSet coordinates per-operator counter attribution across one plan
// tree. Every Metered boundary crossing (Open/Next/Close entering or
// leaving an operator) snapshots the machine's PMU counters; the delta
// since the previous boundary is credited to whichever operator was
// running. Because counters are cumulative and every simulated access
// lands between two boundaries, the per-operator exclusive counters sum
// exactly to the whole statement's counter delta — the property the
// EXPLAIN ENERGY attribution relies on to make per-operator energies sum
// to the statement ledger total.
//
// A MeterSet (and the Metered tree built over it) is single-use and
// single-goroutine, like the executor itself.
type MeterSet struct {
	h     *memsim.Hierarchy
	stack []*Metered
	last  memsim.Counters
}

// NewMeterSet builds a meter set over the context's machine.
func NewMeterSet(ctx *Ctx) *MeterSet {
	return &MeterSet{h: ctx.M.Hier}
}

func (ms *MeterSet) enter(m *Metered) {
	now := ms.h.Counters()
	if n := len(ms.stack); n > 0 {
		top := ms.stack[n-1]
		top.own = top.own.Add(now.Sub(ms.last))
	}
	ms.stack = append(ms.stack, m)
	ms.last = now
}

func (ms *MeterSet) exit(m *Metered) {
	now := ms.h.Counters()
	m.own = m.own.Add(now.Sub(ms.last))
	ms.stack = ms.stack[:len(ms.stack)-1]
	ms.last = now
}

// Metered wraps an operator and records the PMU counters its own work (not
// its children's) advances, plus its emitted row count. Wrap every node of
// a plan with Metered over one shared MeterSet to get an exact per-operator
// decomposition of the statement's counter footprint.
type Metered struct {
	Set   *MeterSet
	Child Operator
	// Label names the wrapped operator for EXPLAIN output.
	Label string
	// Kids are the metered children of Child, for inclusive rollups.
	Kids []*Metered

	own  memsim.Counters
	rows int
}

// Schema implements Operator.
func (m *Metered) Schema() *catalog.Schema { return m.Child.Schema() }

// Open implements Operator.
func (m *Metered) Open() error {
	m.Set.enter(m)
	defer m.Set.exit(m)
	return m.Child.Open()
}

// Next implements Operator.
func (m *Metered) Next() (value.Row, bool, error) {
	m.Set.enter(m)
	defer m.Set.exit(m)
	row, ok, err := m.Child.Next()
	if ok {
		m.rows++
	}
	return row, ok, err
}

// Close implements Operator.
func (m *Metered) Close() error {
	m.Set.enter(m)
	defer m.Set.exit(m)
	return m.Child.Close()
}

// Own returns the counters attributed exclusively to this operator.
func (m *Metered) Own() memsim.Counters { return m.own }

// Rows returns how many rows the operator emitted.
func (m *Metered) Rows() int { return m.rows }

// Inclusive returns this operator's counters including all metered
// descendants.
func (m *Metered) Inclusive() memsim.Counters {
	c := m.own
	for _, k := range m.Kids {
		c = c.Add(k.Inclusive())
	}
	return c
}
