package exec

import (
	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// MeterSet coordinates per-operator counter attribution across one plan
// tree. Every meter boundary crossing (Open/Next/Close entering or leaving
// an operator) snapshots the machine's PMU counters; the delta since the
// previous boundary is credited to whichever operator was running. Because
// counters are cumulative and every simulated access lands between two
// boundaries, the per-operator exclusive counters sum exactly to the whole
// statement's counter delta — the property the EXPLAIN ENERGY attribution
// relies on to make per-operator energies sum to the statement ledger total.
//
// The attribution cell (Meter) is split from the row-operator wrapper
// (Metered) so batch-at-a-time operators in other packages can meter their
// boundaries on the same set: one MeterSet can interleave row and vector
// operators in a single plan and the partition property still holds.
//
// A MeterSet (and the Meter tree built over it) is single-use and
// single-goroutine, like the executor itself.
type MeterSet struct {
	h     *memsim.Hierarchy
	stack []*Meter
	last  memsim.Counters
}

// NewMeterSet builds a meter set over the context's machine.
func NewMeterSet(ctx *Ctx) *MeterSet {
	return &MeterSet{h: ctx.M.Hier}
}

// Enter pushes m: counters advanced since the last boundary are credited to
// the operator that was running, and subsequent work accrues to m. Every
// Enter must be paired with an Exit (defer it around the wrapped call).
func (ms *MeterSet) Enter(m *Meter) {
	now := ms.h.Counters()
	if n := len(ms.stack); n > 0 {
		top := ms.stack[n-1]
		top.own = top.own.Add(now.Sub(ms.last))
	}
	ms.stack = append(ms.stack, m)
	ms.last = now
}

// Exit pops m, crediting it with the counters advanced since Enter (minus
// any nested Enter/Exit windows, which were credited to the nested meters).
func (ms *MeterSet) Exit(m *Meter) {
	now := ms.h.Counters()
	m.own = m.own.Add(now.Sub(ms.last))
	ms.stack = ms.stack[:len(ms.stack)-1]
	ms.last = now
}

// Meter is one attribution cell: the PMU counters an operator's own work
// (not its children's) advances, plus its emitted row count.
type Meter struct {
	// Label names the metered operator for EXPLAIN output.
	Label string
	// Kids are the meters of the operator's children, for inclusive
	// rollups.
	Kids []*Meter

	own  memsim.Counters
	rows int
}

// Own returns the counters attributed exclusively to this operator.
func (m *Meter) Own() memsim.Counters { return m.own }

// Rows returns how many rows the operator emitted.
func (m *Meter) Rows() int { return m.rows }

// AddRows records n emitted rows (batch operators count a whole batch at
// once).
func (m *Meter) AddRows(n int) { m.rows += n }

// Inclusive returns this operator's counters including all metered
// descendants.
func (m *Meter) Inclusive() memsim.Counters {
	c := m.own
	for _, k := range m.Kids {
		c = c.Add(k.Inclusive())
	}
	return c
}

// Metered wraps a row operator and records its exclusive counters and row
// count in M. Wrap every node of a plan with Metered over one shared
// MeterSet to get an exact per-operator decomposition of the statement's
// counter footprint.
type Metered struct {
	Set   *MeterSet
	Child Operator
	M     *Meter
}

// Schema implements Operator.
func (m *Metered) Schema() *catalog.Schema { return m.Child.Schema() }

// Open implements Operator.
func (m *Metered) Open() error {
	m.Set.Enter(m.M)
	defer m.Set.Exit(m.M)
	return m.Child.Open()
}

// Next implements Operator.
func (m *Metered) Next() (value.Row, bool, error) {
	m.Set.Enter(m.M)
	defer m.Set.Exit(m.M)
	row, ok, err := m.Child.Next()
	if ok {
		m.M.AddRows(1)
	}
	return row, ok, err
}

// Close implements Operator.
func (m *Metered) Close() error {
	m.Set.Enter(m.M)
	defer m.Set.Exit(m.M)
	return m.Child.Close()
}
