package exec

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestCancelPreArmed checks a statement whose cancel flag is already set
// aborts at the first per-tuple checkpoint and surfaces ErrCanceled.
func TestCancelPreArmed(t *testing.T) {
	f := newFixture(t, 1000)
	cancel := new(atomic.Bool)
	cancel.Store(true)
	f.ctx.Cancel = cancel
	defer func() { f.ctx.Cancel = nil }()

	if _, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Drain under cancel: err = %v, want ErrCanceled", err)
	}
	if _, err := Collect(&SeqScan{Ctx: f.ctx, File: f.file}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Collect under cancel: err = %v, want ErrCanceled", err)
	}
}

// TestCancelMidFlight flips the flag from a filter callback partway through
// the scan: execution must stop early instead of draining the whole table.
func TestCancelMidFlight(t *testing.T) {
	f := newFixture(t, 1000)
	cancel := new(atomic.Bool)
	f.ctx.Cancel = cancel
	defer func() { f.ctx.Cancel = nil }()

	op := &SeqScan{Ctx: f.ctx, File: f.file}
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(canceledPanic); !ok {
					panic(r)
				}
			}
		}()
		for {
			_, ok, err := op.Next()
			if err != nil || !ok {
				return
			}
			n++
			if n == 100 {
				cancel.Store(true)
			}
		}
	}()
	if n < 100 || n >= 1000 {
		t.Fatalf("scan processed %d rows before cancel, want >= 100 and < 1000", n)
	}
}

// TestCancelLeavesEngineUsable checks the flag is per-statement: after a
// canceled statement, clearing Cancel lets the next one run to completion.
func TestCancelLeavesEngineUsable(t *testing.T) {
	f := newFixture(t, 200)
	cancel := new(atomic.Bool)
	cancel.Store(true)
	f.ctx.Cancel = cancel
	if _, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	f.ctx.Cancel = nil
	n, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("post-cancel scan returned %d rows, want 200", n)
	}
}
