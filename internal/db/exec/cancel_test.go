package exec

import (
	"errors"
	"sync/atomic"
	"testing"

	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
)

// TestCancelPreArmed checks a statement whose cancel flag is already set
// aborts at the first per-tuple checkpoint and surfaces ErrCanceled.
func TestCancelPreArmed(t *testing.T) {
	f := newFixture(t, 1000)
	cancel := new(atomic.Bool)
	cancel.Store(true)
	f.ctx.Cancel = cancel
	defer func() { f.ctx.Cancel = nil }()

	if _, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Drain under cancel: err = %v, want ErrCanceled", err)
	}
	if _, err := Collect(&SeqScan{Ctx: f.ctx, File: f.file}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Collect under cancel: err = %v, want ErrCanceled", err)
	}
}

// TestCancelMidFlight flips the flag from a filter callback partway through
// the scan: execution must stop early instead of draining the whole table.
func TestCancelMidFlight(t *testing.T) {
	f := newFixture(t, 1000)
	cancel := new(atomic.Bool)
	f.ctx.Cancel = cancel
	defer func() { f.ctx.Cancel = nil }()

	op := &SeqScan{Ctx: f.ctx, File: f.file}
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(canceledPanic); !ok {
					panic(r)
				}
			}
		}()
		for {
			_, ok, err := op.Next()
			if err != nil || !ok {
				return
			}
			n++
			if n == 100 {
				cancel.Store(true)
			}
		}
	}()
	if n < 100 || n >= 1000 {
		t.Fatalf("scan processed %d rows before cancel, want >= 100 and < 1000", n)
	}
}

// TestCancelLeavesEngineUsable checks the flag is per-statement: after a
// canceled statement, clearing Cancel lets the next one run to completion.
func TestCancelLeavesEngineUsable(t *testing.T) {
	f := newFixture(t, 200)
	cancel := new(atomic.Bool)
	cancel.Store(true)
	f.ctx.Cancel = cancel
	if _, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	f.ctx.Cancel = nil
	n, err := Drain(&SeqScan{Ctx: f.ctx, File: f.file})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("post-cancel scan returned %d rows, want 200", n)
	}
}

// rowSource is an Operator that yields pre-built rows without ever polling
// cancellation, isolating the sort phase's own checkpoints in the test
// below. (The production scans poll in Next via TupleCost, which would mask
// a sort phase that cannot be canceled.)
type rowSource struct {
	schema *catalog.Schema
	rows   []value.Row
	pos    int
}

func (r *rowSource) Schema() *catalog.Schema { return r.schema }
func (r *rowSource) Open() error             { r.pos = 0; return nil }
func (r *rowSource) Close() error            { return nil }

func (r *rowSource) Next() (value.Row, bool, error) {
	if r.pos >= len(r.rows) {
		return nil, false, nil
	}
	row := r.rows[r.pos]
	r.pos++
	return row, true, nil
}

// TestCancelStopsSortPhase is a regression test: Sort.Open's key-extraction
// loop and sort comparator used to run without any cancellation checkpoint,
// so once the child was drained a statement timeout could not stop the
// O(n log n) sort phase. With a child that never polls, cancellation can
// only surface from the sort phase itself.
func TestCancelStopsSortPhase(t *testing.T) {
	f := newFixture(t, 1)
	schema := catalog.NewSchema(catalog.Column{Name: "id", Type: value.TypeInt})
	rows := make([]value.Row, 500)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(len(rows) - i))}
	}
	cancel := new(atomic.Bool)
	cancel.Store(true)
	f.ctx.Cancel = cancel
	defer func() { f.ctx.Cancel = nil }()

	s := &Sort{
		Ctx:   f.ctx,
		Child: &rowSource{schema: schema, rows: rows},
		Keys:  []SortKey{{Expr: Col{Idx: 0}}},
	}
	if _, err := Drain(s); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Drain(Sort) under cancel: err = %v, want ErrCanceled", err)
	}
}
