package exec

import (
	"errors"
	"fmt"

	"energydb/internal/db/btree"
	"energydb/internal/db/catalog"
	"energydb/internal/db/storage"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// Operator is a Volcano iterator.
type Operator interface {
	Schema() *catalog.Schema
	Open() error
	Next() (value.Row, bool, error)
	Close() error
}

// SeqScan streams a heap file in row order, optionally filtering.
type SeqScan struct {
	Ctx    *Ctx
	File   *storage.HeapFile
	Filter Expr

	sc          *storage.Scanner
	filterNodes int
}

// Schema implements Operator.
func (s *SeqScan) Schema() *catalog.Schema { return s.File.Schema() }

// Open implements Operator.
func (s *SeqScan) Open() error {
	s.sc = s.File.Scan()
	if s.Filter != nil {
		s.filterNodes = s.Filter.Nodes()
	}
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next() (value.Row, bool, error) {
	for {
		row, _, ok := s.sc.Next()
		if !ok {
			return nil, false, nil
		}
		s.Ctx.TupleCost()
		if s.Filter != nil {
			s.Ctx.EvalCost(s.filterNodes)
			if !Truthy(s.Filter.Eval(row)) {
				continue
			}
		}
		s.Ctx.EmitRow(s.File.Schema().RowWidth())
		return row, true, nil
	}
}

// Close implements Operator.
func (s *SeqScan) Close() error { return nil }

// IndexScan walks an index range [Lo, Hi] (inclusive bounds; nil means
// unbounded) and fetches matching heap rows in index order — random heap
// access with pointer-chasing loads, the weak-locality pattern of
// Section 3.3's index-scan analysis.
type IndexScan struct {
	Ctx  *Ctx
	File *storage.HeapFile
	Tree *btree.Tree
	Lo   *value.Value
	Hi   *value.Value
	// Filter applies residual predicates after the heap fetch.
	Filter Expr

	it          *btree.Iter
	filterNodes int
}

// Schema implements Operator.
func (s *IndexScan) Schema() *catalog.Schema { return s.File.Schema() }

// Open implements Operator.
func (s *IndexScan) Open() error {
	if s.Lo != nil {
		s.it = s.Tree.Seek(*s.Lo)
	} else {
		s.it = s.Tree.First()
	}
	if s.Filter != nil {
		s.filterNodes = s.Filter.Nodes()
	}
	return nil
}

// Next implements Operator.
func (s *IndexScan) Next() (value.Row, bool, error) {
	for s.it.Valid() {
		if s.Hi != nil && value.Compare(s.it.Key(), *s.Hi) > 0 {
			return nil, false, nil
		}
		id := s.it.RowID()
		s.it.Next()
		row, visible, err := s.File.ReadRow(id, false)
		if err != nil {
			return nil, false, err
		}
		s.Ctx.TupleCost()
		if !visible {
			// Index entry for a version this snapshot cannot see (index
			// entries outlive their heap versions, as in PostgreSQL).
			continue
		}
		if s.Filter != nil {
			s.Ctx.EvalCost(s.filterNodes)
			if !Truthy(s.Filter.Eval(row)) {
				continue
			}
		}
		s.Ctx.EmitRow(s.File.Schema().RowWidth())
		return row, true, nil
	}
	return nil, false, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error { return nil }

// Filter drops rows failing the predicate.
type Filter struct {
	Ctx   *Ctx
	Child Operator
	Pred  Expr

	nodes int
}

// Schema implements Operator.
func (f *Filter) Schema() *catalog.Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open() error {
	f.nodes = f.Pred.Nodes()
	return f.Child.Open()
}

// Next implements Operator.
func (f *Filter) Next() (value.Row, bool, error) {
	for {
		row, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.Ctx.EvalCost(f.nodes)
		if Truthy(f.Pred.Eval(row)) {
			return row, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project computes output expressions per row.
type Project struct {
	Ctx   *Ctx
	Child Operator
	Exprs []Expr
	Names []string

	schema *catalog.Schema
	nodes  int
	out    value.Row
}

// Schema implements Operator.
func (p *Project) Schema() *catalog.Schema {
	if p.schema == nil {
		cols := make([]catalog.Column, len(p.Exprs))
		for i := range p.Exprs {
			name := fmt.Sprintf("col%d", i)
			if i < len(p.Names) && p.Names[i] != "" {
				name = p.Names[i]
			}
			cols[i] = catalog.Column{Name: name, Type: value.TypeFloat, Width: 8}
		}
		p.schema = catalog.NewSchema(cols...)
	}
	return p.schema
}

// Open implements Operator.
func (p *Project) Open() error {
	for _, e := range p.Exprs {
		p.nodes += e.Nodes()
	}
	p.out = make(value.Row, len(p.Exprs))
	return p.Child.Open()
}

// Next implements Operator.
func (p *Project) Next() (value.Row, bool, error) {
	row, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.Ctx.EvalCost(p.nodes)
	for i, e := range p.Exprs {
		p.out[i] = e.Eval(row)
	}
	p.Ctx.EmitRow(len(p.Exprs) * 8)
	return p.out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// Limit stops after N rows.
type Limit struct {
	Child Operator
	N     int

	seen int
}

// Schema implements Operator.
func (l *Limit) Schema() *catalog.Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Child.Open()
}

// Next implements Operator.
func (l *Limit) Next() (value.Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// MemTable is a materialized row set living at simulated addresses,
// scannable many times (the inner side of block nested-loop joins, sort
// buffers, CTE-like temps).
type MemTable struct {
	Ctx    *Ctx
	schema *catalog.Schema
	rows   []value.Row
	base   uint64
	width  int
}

// NewMemTable materializes rows into scratch memory, simulating the copy.
func NewMemTable(ctx *Ctx, schema *catalog.Schema, rows []value.Row) *MemTable {
	width := schema.RowWidth()
	size := uint64(width) * uint64(len(rows))
	if size == 0 {
		size = memsim.LineSize
	}
	base := ctx.Arena.Alloc(size, memsim.LineSize)
	for i := range rows {
		ctx.PollEvery(i)
		ctx.M.Hier.StoreRange(base+uint64(i*width), uint64(width))
	}
	return &MemTable{Ctx: ctx, schema: schema, rows: rows, base: base, width: width}
}

// Len returns the row count.
func (m *MemTable) Len() int { return len(m.rows) }

// Row reads row i with streaming loads.
func (m *MemTable) Row(i int) value.Row {
	m.Ctx.M.Hier.LoadRange(m.base+uint64(i*m.width), uint64(m.width))
	return m.rows[i]
}

// Scan returns an operator over the mem table.
func (m *MemTable) Scan() Operator { return &memScan{t: m} }

type memScan struct {
	t   *MemTable
	pos int
}

func (s *memScan) Schema() *catalog.Schema { return s.t.schema }
func (s *memScan) Open() error             { s.pos = 0; return nil }
func (s *memScan) Next() (value.Row, bool, error) {
	if s.pos >= len(s.t.rows) {
		return nil, false, nil
	}
	row := s.t.Row(s.pos)
	s.pos++
	return row, true, nil
}
func (s *memScan) Close() error { return nil }

// ErrCanceled is returned by Collect and Drain when the statement was
// abandoned through Ctx.Cancel (a statement timeout, typically).
var ErrCanceled = errors.New("exec: statement canceled")

// RecoverCanceled is the deferred guard for loops that charge tuple costs
// outside an operator tree (engine DML, recovery replay): it converts the
// cancellation unwind raised by Ctx.TupleCost/Poll into ErrCanceled and
// re-panics on anything else. Usage: defer exec.RecoverCanceled(&err).
func RecoverCanceled(err *error) {
	switch r := recover(); r {
	case nil:
	case canceledPanic{}:
		*err = ErrCanceled
	default:
		panic(r)
	}
}

// Collect drains an operator into a slice (cloning rows) and closes it.
func Collect(op Operator) (rows []value.Row, err error) {
	defer RecoverCanceled(&err)
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []value.Row
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row.Clone())
	}
}

// Drain runs an operator to completion, discarding rows, and returns the
// row count. The top of every profiled query uses Drain: result display is
// disabled, as in the paper's measurement methodology.
func Drain(op Operator) (n int, err error) {
	defer RecoverCanceled(&err)
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	for {
		_, ok, err := op.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
