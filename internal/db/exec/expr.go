package exec

import (
	"fmt"
	"strings"

	"energydb/internal/db/value"
)

// Expr is a scalar expression over a row.
type Expr interface {
	// Eval computes the value; simulation cost is charged by the caller
	// via Ctx.EvalCost(Nodes()).
	Eval(row value.Row) value.Value
	// Nodes returns the expression tree size, used for cost simulation.
	Nodes() int
	String() string
}

// Col references a column by position.
type Col struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (c Col) Eval(row value.Row) value.Value { return row[c.Idx] }

// Nodes implements Expr.
func (c Col) Nodes() int { return 1 }

func (c Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal.
type Const struct{ V value.Value }

// Eval implements Expr.
func (c Const) Eval(value.Row) value.Value { return c.V }

// Nodes implements Expr.
func (c Const) Nodes() int { return 1 }

func (c Const) String() string { return c.V.String() }

// BinOpKind enumerates binary operators.
type BinOpKind int

// Binary operators.
const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOpKind]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// BinOp applies a binary operator.
type BinOp struct {
	Op   BinOpKind
	L, R Expr
}

// Eval implements Expr.
func (b BinOp) Eval(row value.Row) value.Value {
	l := b.L.Eval(row)
	// Short-circuit booleans.
	switch b.Op {
	case OpAnd:
		if !Truthy(l) {
			return value.Int(0)
		}
		return boolVal(Truthy(b.R.Eval(row)))
	case OpOr:
		if Truthy(l) {
			return value.Int(1)
		}
		return boolVal(Truthy(b.R.Eval(row)))
	}
	return ApplyBin(b.Op, l, b.R.Eval(row))
}

// ApplyBin applies a binary operator to already-evaluated operands. It is
// the single source of truth for operator semantics (Int-preserving
// arithmetic, NULL on divide-by-zero, collating comparisons) shared by the
// row interpreter above and the vectorized kernels, so the two paths cannot
// drift. AND/OR here are non-short-circuit (both operands already
// evaluated), which agrees with BinOp.Eval for pure operand expressions.
func ApplyBin(op BinOpKind, l, r value.Value) value.Value {
	switch op {
	case OpAnd:
		return boolVal(Truthy(l) && Truthy(r))
	case OpOr:
		return boolVal(Truthy(l) || Truthy(r))
	case OpAdd, OpSub, OpMul, OpDiv:
		lf, rf := l.AsFloat(), r.AsFloat()
		var out float64
		switch op {
		case OpAdd:
			out = lf + rf
		case OpSub:
			out = lf - rf
		case OpMul:
			out = lf * rf
		case OpDiv:
			if rf == 0 {
				return value.Null()
			}
			out = lf / rf
		}
		if l.T == value.TypeInt && r.T == value.TypeInt && op != OpDiv {
			return value.Int(int64(out))
		}
		return value.Float(out)
	default:
		c := value.Compare(l, r)
		switch op {
		case OpEq:
			return boolVal(c == 0)
		case OpNe:
			return boolVal(c != 0)
		case OpLt:
			return boolVal(c < 0)
		case OpLe:
			return boolVal(c <= 0)
		case OpGt:
			return boolVal(c > 0)
		case OpGe:
			return boolVal(c >= 0)
		}
	}
	return value.Null()
}

// Nodes implements Expr.
func (b BinOp) Nodes() int { return 1 + b.L.Nodes() + b.R.Nodes() }

func (b BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, binOpNames[b.Op], b.R)
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(row value.Row) value.Value { return boolVal(!Truthy(n.E.Eval(row))) }

// Nodes implements Expr.
func (n Not) Nodes() int { return 1 + n.E.Nodes() }

func (n Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// Like matches a string column against a pattern with %-wildcards at the
// edges (prefix%, %suffix, %contains%), the forms TPC-H uses.
type Like struct {
	E       Expr
	Pattern string
}

// Eval implements Expr.
func (l Like) Eval(row value.Row) value.Value {
	return boolVal(LikeMatch(l.E.Eval(row).S, l.Pattern))
}

// LikeMatch reports whether s matches an edge-%-wildcard LIKE pattern
// (prefix%, %suffix, %contains%, or exact). Shared by the row interpreter
// and the vectorized kernels.
func LikeMatch(s, p string) bool {
	switch {
	case strings.HasPrefix(p, "%") && strings.HasSuffix(p, "%"):
		return strings.Contains(s, strings.Trim(p, "%"))
	case strings.HasPrefix(p, "%"):
		return strings.HasSuffix(s, strings.TrimPrefix(p, "%"))
	case strings.HasSuffix(p, "%"):
		return strings.HasPrefix(s, strings.TrimSuffix(p, "%"))
	default:
		return s == p
	}
}

// Nodes implements Expr.
func (l Like) Nodes() int { return 2 + l.E.Nodes() }

func (l Like) String() string { return fmt.Sprintf("%s LIKE %q", l.E, l.Pattern) }

// InList tests membership in a constant list.
type InList struct {
	E    Expr
	List []value.Value
}

// Eval implements Expr.
func (in InList) Eval(row value.Row) value.Value {
	v := in.E.Eval(row)
	for _, c := range in.List {
		if value.Equal(v, c) {
			return value.Int(1)
		}
	}
	return value.Int(0)
}

// Nodes implements Expr.
func (in InList) Nodes() int { return 1 + in.E.Nodes() + len(in.List) }

func (in InList) String() string { return fmt.Sprintf("%s IN (...%d)", in.E, len(in.List)) }

// Truthy interprets a datum as a boolean.
func Truthy(v value.Value) bool {
	switch v.T {
	case value.TypeInt, value.TypeDate:
		return v.I != 0
	case value.TypeFloat:
		return v.F != 0
	case value.TypeStr:
		return v.S != ""
	default:
		return false
	}
}

func boolVal(b bool) value.Value {
	if b {
		return value.Int(1)
	}
	return value.Int(0)
}

// Between builds lo <= e AND e < hi (the TPC-H date-range idiom).
func Between(e Expr, lo, hi value.Value) Expr {
	return BinOp{OpAnd,
		BinOp{OpGe, e, Const{lo}},
		BinOp{OpLt, e, Const{hi}},
	}
}
