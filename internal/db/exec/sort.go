package exec

import (
	"sort"

	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// SortKey describes one ordering column.
type SortKey struct {
	// Expr computes the key (usually a Col).
	Expr Expr
	Desc bool
}

// Sort materializes the child and sorts it. The simulated cost follows a
// pointer-based quicksort: each comparison loads the two row headers
// (dependent) and each move stores a pointer — the compact sort buffers
// real engines use under work_mem.
type Sort struct {
	Ctx   *Ctx
	Child Operator
	Keys  []SortKey

	rows    []value.Row
	keys    [][]value.Value
	base    uint64
	pos     int
	rowsize int
}

// Schema implements Operator.
func (s *Sort) Schema() *catalog.Schema { return s.Child.Schema() }

// Open implements Operator: drains, sorts, and rewinds.
func (s *Sort) Open() error {
	rows, err := Collect(s.Child)
	if err != nil {
		return err
	}
	s.rows = rows
	s.pos = 0
	s.rowsize = s.Child.Schema().RowWidth()

	// Precompute key columns (engines sort on extracted keys).
	s.keys = make([][]value.Value, len(rows))
	for i, r := range rows {
		s.Ctx.PollEvery(i)
		ks := make([]value.Value, len(s.Keys))
		for k, sk := range s.Keys {
			ks[k] = sk.Expr.Eval(r)
		}
		s.keys[i] = ks
		s.Ctx.EvalCost(1)
	}

	// The sort buffer: one pointer-sized entry per row.
	n := uint64(len(rows))
	if n == 0 {
		n = 1
	}
	s.base = s.Ctx.Arena.Alloc(n*16, memsim.PageSize)
	h := s.Ctx.M.Hier
	for i := range rows {
		s.Ctx.PollEvery(i)
		h.Store(s.base + uint64(i)*16)
	}

	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		// Each comparison touches both entries (dependent: the sort
		// network chases row pointers) and does key compares. The sort
		// phase is O(n log n) comparisons with no tuple boundary, so it
		// must poll here or a statement timeout cannot cancel it.
		s.Ctx.Poll()
		h.Load(s.base+uint64(idx[a])*16%((n)*16), true)
		h.Load(s.base+uint64(idx[b])*16%((n)*16), true)
		s.Ctx.Compute(len(s.Keys))
		return s.less(idx[a], idx[b])
	})
	sorted := make([]value.Row, len(rows))
	sortedKeys := make([][]value.Value, len(rows))
	for i, j := range idx {
		sorted[i] = s.rows[j]
		sortedKeys[i] = s.keys[j]
		h.Store(s.base + uint64(i)*16)
	}
	s.rows = sorted
	s.keys = sortedKeys
	return nil
}

func (s *Sort) less(a, b int) bool {
	for k, sk := range s.Keys {
		c := value.Compare(s.keys[a][k], s.keys[b][k])
		if c == 0 {
			continue
		}
		if sk.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Next implements Operator.
func (s *Sort) Next() (value.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	// Reading the output streams the sorted run.
	s.Ctx.M.Hier.LoadRange(s.base+uint64(s.pos)*16, 16)
	row := s.rows[s.pos]
	s.pos++
	s.Ctx.EmitRow(s.rowsize)
	return row, true, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	s.keys = nil
	return nil
}
