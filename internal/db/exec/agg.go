package exec

import (
	"fmt"

	"energydb/internal/db/catalog"
	"energydb/internal/db/value"
	"energydb/internal/memsim"
)

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregates.
const (
	AggSum AggKind = iota
	AggAvg
	AggCount
	AggMin
	AggMax
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggCount:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "unknown"
	}
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Kind AggKind
	// Arg is the aggregated expression (ignored for Count when nil).
	Arg  Expr
	Name string
}

// AggAcc accumulates one aggregate for one group. It is exported so the
// vectorized aggregation in internal/db/vec folds with exactly the same
// arithmetic as the row-at-a-time GroupBy below.
type AggAcc struct {
	sum   float64
	count int64
	min   value.Value
	max   value.Value
}

// Update folds one input value into the accumulator.
func (a *AggAcc) Update(v value.Value) {
	a.count++
	a.sum += v.AsFloat()
	if a.min.IsNull() || value.Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || value.Compare(v, a.max) > 0 {
		a.max = v
	}
}

// UpdateKind folds one input value, maintaining only the state the given
// aggregate kind reads back in Result. Sum/avg/count updates skip the two
// order comparisons Update pays for min/max tracking — a per-tuple saving
// shared by the row GroupBy and the vectorized Agg, so the two paths stay
// bit-identical.
func (a *AggAcc) UpdateKind(k AggKind, v value.Value) {
	switch k {
	case AggCount:
		a.count++
	case AggSum, AggAvg:
		a.count++
		a.sum += v.AsFloat()
	default:
		a.Update(v)
	}
}

// Result finalizes the accumulator for the given aggregate kind.
func (a *AggAcc) Result(k AggKind) value.Value {
	switch k {
	case AggSum:
		return value.Float(a.sum)
	case AggAvg:
		if a.count == 0 {
			return value.Null()
		}
		return value.Float(a.sum / float64(a.count))
	case AggCount:
		return value.Int(a.count)
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	default:
		return value.Null()
	}
}

// GroupBy is a hash aggregation: group keys are hashed into a simulated
// table; each input row probes (dependent load) and updates (store) its
// group's accumulators. With no group keys it degenerates to a single-group
// scalar aggregate.
type GroupBy struct {
	Ctx      *Ctx
	Child    Operator
	GroupBy  []Expr
	Aggs     []AggSpec
	GroupCap int // optional hint for the hash-table size

	schema *catalog.Schema
	groups []value.Row
	pos    int
}

// Schema implements Operator.
func (g *GroupBy) Schema() *catalog.Schema {
	if g.schema == nil {
		cols := make([]catalog.Column, 0, len(g.GroupBy)+len(g.Aggs))
		for i := range g.GroupBy {
			cols = append(cols, catalog.Column{
				Name: fmt.Sprintf("g%d", i), Type: value.TypeStr, Width: 16,
			})
		}
		for _, a := range g.Aggs {
			name := a.Name
			if name == "" {
				name = a.Kind.String()
			}
			cols = append(cols, catalog.Column{Name: name, Type: value.TypeFloat, Width: 8})
		}
		g.schema = catalog.NewSchema(cols...)
	}
	return g.schema
}

// Open implements Operator: consumes the child and builds the groups.
func (g *GroupBy) Open() error {
	if err := g.Child.Open(); err != nil {
		return err
	}
	defer g.Child.Close()

	cap := g.GroupCap
	if cap <= 0 {
		cap = 1024
	}
	tableSize := uint64(cap) * hashBucketBytes * 2
	tableBase := g.Ctx.Arena.Alloc(tableSize, memsim.PageSize)
	h := g.Ctx.M.Hier

	type group struct {
		keyVals []value.Value
		states  []AggAcc
	}
	groups := make(map[value.Key]*group)
	var order []*group

	keyNodes := 0
	for _, e := range g.GroupBy {
		keyNodes += e.Nodes()
	}
	argNodes := 0
	for _, a := range g.Aggs {
		if a.Arg != nil {
			argNodes += a.Arg.Nodes()
		}
	}

	for {
		row, ok, err := g.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		g.Ctx.TupleCost()
		g.Ctx.EvalCost(keyNodes + argNodes)
		keyVals := make([]value.Value, len(g.GroupBy))
		for i, e := range g.GroupBy {
			keyVals[i] = e.Eval(row)
		}
		key := value.MakeKey(keyVals...)
		g.Ctx.Compute(2) // hash
		slot := tableBase + key.Hash()%tableSize
		h.Load(slot, true) // bucket probe
		grp, found := groups[key]
		if !found {
			grp = &group{keyVals: keyVals, states: make([]AggAcc, len(g.Aggs))}
			groups[key] = grp
			order = append(order, grp)
			h.Store(slot) // insert bucket entry
		}
		// Accumulator update: load + arithmetic + store.
		h.Load(slot+hashBucketBytes, true)
		for i, a := range g.Aggs {
			v := value.Int(1)
			if a.Arg != nil {
				v = a.Arg.Eval(row)
			}
			grp.states[i].UpdateKind(a.Kind, v)
			g.Ctx.Compute(1)
		}
		h.Store(slot + hashBucketBytes)
	}

	g.groups = make([]value.Row, len(order))
	for i, grp := range order {
		// Result extraction: one arithmetic op per aggregate plus the row
		// build — the finalization work the hash-table update loop above
		// never charged (chargepath finding).
		g.Ctx.Compute(1 + len(g.Aggs))
		out := make(value.Row, 0, len(grp.keyVals)+len(g.Aggs))
		out = append(out, grp.keyVals...)
		for k, a := range g.Aggs {
			out = append(out, grp.states[k].Result(a.Kind))
		}
		g.groups[i] = out
	}
	g.pos = 0
	return nil
}

// Next implements Operator.
func (g *GroupBy) Next() (value.Row, bool, error) {
	if g.pos >= len(g.groups) {
		return nil, false, nil
	}
	row := g.groups[g.pos]
	g.pos++
	g.Ctx.EmitRow(len(row) * 8)
	return row, true, nil
}

// Close implements Operator.
func (g *GroupBy) Close() error {
	g.groups = nil
	return nil
}
