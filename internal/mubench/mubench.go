// Package mubench implements the paper's micro-benchmark methodology
// (Section 2.5): a benchmark set MBS that isolates individual
// micro-operations by construction — array traversal for stall-free L1D
// loads, pointer-chasing list traversal for dependent loads from a chosen
// memory layer, a repeated-variable store loop for Reg2L1D — plus the
// verification set VMBS of composite benchmarks used to validate the solved
// per-operation energies (Table 3).
package mubench

import (
	"fmt"
	"math/rand"

	"energydb/internal/cpusim"
	"energydb/internal/memsim"
	"energydb/internal/rapl"
)

// Style selects the benchmark's access framework.
type Style int

// Benchmark styles.
const (
	// StyleArray is Algorithm 1: unrolled sequential traversal of an
	// array of 64-byte items; loads are independent, so architectural
	// optimization hides the latency (no stall cycles).
	StyleArray Style = iota
	// StyleList is Algorithm 2: pointer-chasing traversal in layout
	// order; each load depends on the previous one.
	StyleList
	// StyleRandomList is Algorithm 3: pointer chasing over a randomized,
	// large-span permutation that defeats locality so the traversal only
	// hits the intended memory layer.
	StyleRandomList
	// StyleStoreVar is Algorithm 4: repeated stores of the same 64-byte
	// variable; after write-allocation every store completes in L1D.
	StyleStoreVar
	// StyleExec runs only add or nop instructions (B_add / B_nop).
	StyleExec
	// StyleListPair interleaves two pointer chases over different
	// layers (the B_L1D_list_L2 verification benchmark).
	StyleListPair
)

// Observe selects which RAPL domains constitute the benchmark's Busy-CPU
// energy observation (Section 2.6): core for workloads that stay within
// L1/L2, package when L3 is touched, package+dram when DRAM is touched.
type Observe int

// Observation rules.
const (
	ObserveCore Observe = iota
	ObservePackage
	ObservePackageDRAM
)

// Spec describes one micro-benchmark.
type Spec struct {
	Name  string
	Style Style
	// MemBytes is the allocated region size (Smem). 64-byte items.
	MemBytes uint64
	// MemBytes2 is the second region for StyleListPair.
	MemBytes2 uint64
	// Passes is the number of full traversals measured (the paper's T,
	// scaled down; Runner.Scale rescales it further).
	Passes int
	// SpanThreshold is Algorithm 3's εspan in items.
	SpanThreshold int
	// AddPerOp / NopPerOp interleave verification instructions with each
	// desired operation (VMBS composites).
	AddPerOp int
	NopPerOp int
	// ExecKind and ExecOps define StyleExec benchmarks.
	ExecKind memsim.InstrKind
	ExecOps  uint64
	// OverheadPerKiloOp is the number of loop-control ("other")
	// instructions per 1000 desired operations; it reproduces the BLI
	// (body-loop-instruction share) column of Table 1.
	OverheadPerKiloOp int
	// Observe picks the energy observation rule.
	Observe Observe
	// Seed drives the layout randomization.
	Seed int64
}

// DesiredOps returns how many "desired" instructions one pass issues (loads,
// stores, or exec ops), excluding interleaved add/nop and loop overhead.
func (s Spec) DesiredOps() uint64 {
	switch s.Style {
	case StyleExec:
		return s.ExecOps
	case StyleStoreVar:
		return s.MemBytes / memsim.LineSize * 64 // ut=64 unrolled blocks
	case StyleListPair:
		return s.MemBytes/memsim.LineSize + s.MemBytes2/memsim.LineSize
	default:
		return s.MemBytes / memsim.LineSize
	}
}

// Standard sizes from Section 2.8: 31KB for the L1D benchmarks, 6MB for
// B_L3 and 60MB for B_mem. The paper allocates 260KB for B_L2 (L1D+L2
// capacity on hardware whose L2 is not strictly inclusive); this model's
// hierarchy is strictly inclusive, so B_L2 uses 240KB to keep the working
// set within L2 and preserve the intended "only access L2" behaviour
// (L2 miss rate ~0.02% in Table 1).
const (
	sizeL1D = 31 << 10
	sizeL2  = 240 << 10
	sizeL3  = 6 << 20
	sizeMem = 60 << 20
)

// MBS returns the micro-benchmark set of Section 2.5.2 plus the B_add and
// B_nop instruction benchmarks (8 rows of Table 1).
func MBS() []Spec {
	return []Spec{
		{Name: "B_L1D_list", Style: StyleList, MemBytes: sizeL1D, Passes: 3000,
			OverheadPerKiloOp: 11, Observe: ObserveCore, Seed: 101},
		{Name: "B_L1D_array", Style: StyleArray, MemBytes: sizeL1D, Passes: 3000,
			OverheadPerKiloOp: 5, Observe: ObserveCore, Seed: 102},
		{Name: "B_L2", Style: StyleRandomList, MemBytes: sizeL2, Passes: 300,
			SpanThreshold: 64, OverheadPerKiloOp: 15, Observe: ObserveCore, Seed: 103},
		{Name: "B_L3", Style: StyleRandomList, MemBytes: sizeL3, Passes: 14,
			SpanThreshold: 512, OverheadPerKiloOp: 14, Observe: ObservePackage, Seed: 104},
		{Name: "B_mem", Style: StyleRandomList, MemBytes: sizeMem, Passes: 2,
			SpanThreshold: 4096, OverheadPerKiloOp: 22, Observe: ObservePackageDRAM, Seed: 105},
		{Name: "B_Reg2L1D", Style: StyleStoreVar, MemBytes: sizeL1D, Passes: 50,
			OverheadPerKiloOp: 1, Observe: ObserveCore, Seed: 106},
		{Name: "B_add", Style: StyleExec, ExecKind: memsim.InstrAdd, ExecOps: 1 << 20,
			Passes: 2, OverheadPerKiloOp: 16, Observe: ObserveCore, Seed: 107},
		{Name: "B_nop", Style: StyleExec, ExecKind: memsim.InstrNop, ExecOps: 1 << 20,
			Passes: 2, OverheadPerKiloOp: 1, Observe: ObserveCore, Seed: 108},
	}
}

// VMBS returns the verification micro-benchmark set of Section 2.5.5
// (the 7 rows of Table 3).
func VMBS() []Spec {
	return []Spec{
		{Name: "B_L1D_list_nop", Style: StyleList, MemBytes: sizeL1D, Passes: 3000,
			NopPerOp: 2, OverheadPerKiloOp: 11, Observe: ObserveCore, Seed: 201},
		{Name: "B_L1D_array_add", Style: StyleArray, MemBytes: sizeL1D, Passes: 3000,
			AddPerOp: 1, OverheadPerKiloOp: 5, Observe: ObserveCore, Seed: 202},
		{Name: "B_L2_nop", Style: StyleRandomList, MemBytes: sizeL2, Passes: 300,
			SpanThreshold: 64, NopPerOp: 2, OverheadPerKiloOp: 15, Observe: ObserveCore, Seed: 203},
		{Name: "B_L3_add", Style: StyleRandomList, MemBytes: sizeL3, Passes: 14,
			SpanThreshold: 512, AddPerOp: 2, OverheadPerKiloOp: 14, Observe: ObservePackage, Seed: 204},
		{Name: "B_mem_nop", Style: StyleRandomList, MemBytes: sizeMem, Passes: 2,
			SpanThreshold: 4096, NopPerOp: 4, OverheadPerKiloOp: 22, Observe: ObservePackageDRAM, Seed: 205},
		{Name: "B_L1D_list_L2", Style: StyleListPair, MemBytes: 16 << 10, MemBytes2: sizeL2,
			Passes: 280, SpanThreshold: 64, OverheadPerKiloOp: 13, Observe: ObserveCore, Seed: 206},
		{Name: "B_L1D_list_nop_add", Style: StyleList, MemBytes: sizeL1D, Passes: 3000,
			NopPerOp: 1, AddPerOp: 1, OverheadPerKiloOp: 11, Observe: ObserveCore, Seed: 207},
	}
}

// Result is the outcome of running one micro-benchmark.
type Result struct {
	Spec Spec
	// Counters is the PMU delta over the measured passes.
	Counters memsim.Counters
	// EBusy is the measured Busy-CPU energy (per the observation rule).
	EBusy float64
	// EActive is EBusy minus the background energy over the run.
	EActive float64
	// Seconds is the measured duration.
	Seconds float64
	// BLI is the body-loop-instruction percentage: desired instructions
	// (loads/stores/execs plus interleaved add/nop, which are desired in
	// VMBS composites) over all instructions.
	BLI float64
}

// Runner executes micro-benchmarks on a machine under the paper's runtime
// configuration: fixed P-state, prefetcher off, background power measured
// up front with the only-blocked method.
type Runner struct {
	M     *cpusim.Machine
	Meter *rapl.Meter
	// Background is the measured per-domain background power (watts).
	Background rapl.Reading
	// Scale rescales pass counts (1 = paper-shaped runs; tests use less).
	Scale float64
	// Repetitions is how many measured sessions are averaged per
	// benchmark; the paper runs workloads 100 times (10 for long ones)
	// and averages, which suppresses per-session measurement error.
	Repetitions int
}

// NewRunner prepares a runner, measuring background power once.
func NewRunner(m *cpusim.Machine, meter *rapl.Meter) *Runner {
	return &Runner{
		M:           m,
		Meter:       meter,
		Background:  meter.BackgroundPower(1.0),
		Scale:       1,
		Repetitions: 5,
	}
}

// Run executes one micro-benchmark: cold reset, prefetcher off, one warmup
// pass, then Repetitions measured sessions whose energies are averaged.
func (r *Runner) Run(s Spec) Result {
	r.M.Hier.ResetCaches()
	r.M.Hier.SetPrefetchEnabled(false)

	passes := s.Passes
	if r.Scale > 0 && r.Scale != 1 {
		passes = int(float64(passes) * r.Scale)
		if passes < 1 {
			passes = 1
		}
	}
	reps := r.Repetitions
	if reps < 1 {
		reps = 1
	}

	w := newWalker(r.M.Hier, s)
	w.pass() // warmup: populate the target layer

	var busy, seconds float64
	var delta memsim.Counters
	for rep := 0; rep < reps; rep++ {
		startCtr := r.M.Hier.Counters()
		sess := r.Meter.Begin()
		for i := 0; i < passes; i++ {
			w.pass()
		}
		meas := sess.End()
		if rep == 0 {
			delta = r.M.Hier.Counters().Sub(startCtr)
		}
		switch s.Observe {
		case ObserveCore:
			busy += meas.Energy.Core
		case ObservePackage:
			busy += meas.Energy.Package
		default:
			busy += meas.Energy.Package + meas.Energy.DRAM
		}
		seconds += meas.Seconds
	}
	busy /= float64(reps)
	seconds /= float64(reps)
	var bg float64
	switch s.Observe {
	case ObserveCore:
		bg = r.Background.Core
	case ObservePackage:
		bg = r.Background.Package
	default:
		bg = r.Background.Package + r.Background.DRAM
	}

	// Same-snapshot identity, not a window delta: Instructions() sums
	// AddOps+NopOps+OtherOps of this one delta, so it cannot be smaller.
	desired := delta.Instructions() - delta.OtherOps //lint:monotonic
	bli := 0.0
	if n := delta.Instructions(); n > 0 {
		bli = float64(desired) / float64(n) * 100
	}
	return Result{
		Spec:     s,
		Counters: delta,
		EBusy:    busy,
		EActive:  busy - bg*seconds,
		Seconds:  seconds,
		BLI:      bli,
	}
}

// RunAll executes a list of specs in order.
func (r *Runner) RunAll(specs []Spec) []Result {
	out := make([]Result, 0, len(specs))
	for _, s := range specs {
		out = append(out, r.Run(s))
	}
	return out
}

// walker drives one benchmark's access stream.
type walker struct {
	h    *memsim.Hierarchy
	s    Spec
	base uint64
	// order is the item visit order (line indices) for list styles.
	order []uint32
	// order2/base2 is the second chase for StyleListPair.
	base2  uint64
	order2 []uint32
	// overhead accumulates fractional loop-control instructions.
	overhead      float64
	overheadSlope float64
}

func newWalker(h *memsim.Hierarchy, s Spec) *walker {
	w := &walker{h: h, s: s, overheadSlope: float64(s.OverheadPerKiloOp) / 1000}
	arena := memsim.NewArena(1<<30, s.MemBytes+s.MemBytes2+(4<<20))
	rng := rand.New(rand.NewSource(s.Seed))
	switch s.Style {
	case StyleArray, StyleList, StyleRandomList:
		w.base = arena.Alloc(s.MemBytes, memsim.PageSize)
		n := int(s.MemBytes / memsim.LineSize)
		w.order = layout(n, s.Style == StyleRandomList, s.SpanThreshold, rng)
	case StyleStoreVar:
		w.base = arena.Alloc(memsim.LineSize, memsim.LineSize)
	case StyleListPair:
		w.base = arena.Alloc(s.MemBytes, memsim.PageSize)
		w.order = layout(int(s.MemBytes/memsim.LineSize), false, 0, rng)
		w.base2 = arena.Alloc(s.MemBytes2, memsim.PageSize)
		w.order2 = layout(int(s.MemBytes2/memsim.LineSize), true, s.SpanThreshold, rng)
	}
	return w
}

// layout produces the visit order: identity for sequential lists/arrays, or
// Algorithm 3's large-span random exchange for the deep-layer benchmarks.
func layout(n int, randomize bool, span int, rng *rand.Rand) []uint32 {
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	if !randomize {
		return order
	}
	if span <= 0 || span >= n/2 {
		span = n / 8
	}
	for z := 1; z < n-1; z++ {
		// Pick e with |z-e| > span, avoiding logical neighbors.
		e := 1 + rng.Intn(n-2)
		for tries := 0; abs(z-e) <= span && tries < 8; tries++ {
			e = 1 + rng.Intn(n-2)
		}
		order[z], order[e] = order[e], order[z]
	}
	return order
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// pass runs one full traversal.
func (w *walker) pass() {
	s := w.s
	switch s.Style {
	case StyleArray:
		for _, idx := range w.order {
			w.h.Load(w.base+uint64(idx)*memsim.LineSize, false)
			w.interleave()
		}
	case StyleList, StyleRandomList:
		for _, idx := range w.order {
			w.h.Load(w.base+uint64(idx)*memsim.LineSize, true)
			w.interleave()
		}
	case StyleStoreVar:
		n := s.DesiredOps()
		for i := uint64(0); i < n; i++ {
			w.h.Store(w.base)
			w.interleave()
		}
	case StyleExec:
		w.h.Exec(s.ExecOps, s.ExecKind)
		w.overheadN(float64(s.ExecOps))
	case StyleListPair:
		// Interleave the two chases item by item; the shorter list
		// wraps around.
		n := len(w.order2)
		for i := 0; i < n; i++ {
			w.h.Load(w.base+uint64(w.order[i%len(w.order)])*memsim.LineSize, true)
			w.h.Load(w.base2+uint64(w.order2[i])*memsim.LineSize, true)
			w.interleave()
			w.interleave()
		}
	}
}

// interleave issues the composite add/nop instructions and loop overhead
// after each desired operation.
func (w *walker) interleave() {
	if w.s.AddPerOp > 0 {
		w.h.Exec(uint64(w.s.AddPerOp), memsim.InstrAdd)
	}
	if w.s.NopPerOp > 0 {
		w.h.Exec(uint64(w.s.NopPerOp), memsim.InstrNop)
	}
	w.overheadN(1)
}

func (w *walker) overheadN(ops float64) {
	w.overhead += ops * w.overheadSlope
	if w.overhead >= 1 {
		n := uint64(w.overhead)
		w.h.Exec(n, memsim.InstrOther)
		w.overhead -= float64(n)
	}
}

// FindSpec returns the spec with the given name from MBS or VMBS.
func FindSpec(name string) (Spec, error) {
	for _, s := range append(MBS(), VMBS()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("mubench: unknown benchmark %q", name)
}
