package mubench

import (
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/rapl"
)

func newRunner(t *testing.T, scale float64) *Runner {
	t.Helper()
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	meter := rapl.NewMeter(m, 42, 0) // noise-free for behavioural tests
	r := NewRunner(m, meter)
	r.Scale = scale
	return r
}

func runByName(t *testing.T, r *Runner, name string) Result {
	t.Helper()
	s, err := FindSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	return r.Run(s)
}

// TestTable1Behaviors checks that each micro-benchmark reproduces the
// runtime behaviour the paper reports in Table 1: the right memory layer
// and the right IPC regime.
func TestTable1Behaviors(t *testing.T) {
	r := newRunner(t, 0.02)

	res := runByName(t, r, "B_L1D_list")
	if mr := res.Counters.L1DMissRate(); mr > 0.001 {
		t.Errorf("B_L1D_list L1D miss rate = %.4f, want ~0.0001", mr)
	}
	if ipc := res.Counters.IPC(); ipc < 0.22 || ipc > 0.30 {
		t.Errorf("B_L1D_list IPC = %.3f, want ~0.26", ipc)
	}

	res = runByName(t, r, "B_L1D_array")
	if mr := res.Counters.L1DMissRate(); mr > 0.001 {
		t.Errorf("B_L1D_array L1D miss rate = %.4f", mr)
	}
	if ipc := res.Counters.IPC(); ipc < 1.85 || ipc > 2.15 {
		t.Errorf("B_L1D_array IPC = %.3f, want ~2.0", ipc)
	}
	if res.Counters.StallCycles != 0 {
		t.Errorf("B_L1D_array stalled %d cycles, want 0", res.Counters.StallCycles)
	}

	res = runByName(t, r, "B_L2")
	if mr := res.Counters.L1DMissRate(); mr < 0.95 {
		t.Errorf("B_L2 L1D miss rate = %.3f, want >0.95", mr)
	}
	if mr := res.Counters.L2MissRate(); mr > 0.05 {
		t.Errorf("B_L2 L2 miss rate = %.4f, want ~0", mr)
	}

	res = runByName(t, r, "B_L3")
	if mr := res.Counters.L2MissRate(); mr < 0.95 {
		t.Errorf("B_L3 L2 miss rate = %.3f, want >0.95", mr)
	}
	if mr := res.Counters.L3MissRate(); mr > 0.05 {
		t.Errorf("B_L3 L3 miss rate = %.4f, want ~0", mr)
	}

	res = runByName(t, r, "B_mem")
	if mr := res.Counters.L3MissRate(); mr < 0.90 {
		t.Errorf("B_mem L3 miss rate = %.3f, want >0.90 (paper: 97.45%%)", mr)
	}
	if ipc := res.Counters.IPC(); ipc > 0.02 {
		t.Errorf("B_mem IPC = %.4f, want ~0.005", ipc)
	}

	res = runByName(t, r, "B_Reg2L1D")
	if hr := res.Counters.StoreL1DHitRate(); hr < 0.999 {
		t.Errorf("B_Reg2L1D store hit rate = %.4f, want ~0.9999", hr)
	}
	if ipc := res.Counters.IPC(); ipc < 0.95 || ipc > 1.1 {
		t.Errorf("B_Reg2L1D IPC = %.3f, want ~1.0", ipc)
	}

	res = runByName(t, r, "B_add")
	if ipc := res.Counters.IPC(); ipc < 1.9 || ipc > 2.1 {
		t.Errorf("B_add IPC = %.3f, want ~2.0", ipc)
	}
	res = runByName(t, r, "B_nop")
	if ipc := res.Counters.IPC(); ipc < 3.8 || ipc > 4.1 {
		t.Errorf("B_nop IPC = %.3f, want ~4.0", ipc)
	}
}

func TestBLIMatchesTable1Regime(t *testing.T) {
	r := newRunner(t, 0.02)
	for _, name := range []string{"B_L1D_list", "B_L1D_array", "B_L2", "B_mem", "B_Reg2L1D"} {
		res := runByName(t, r, name)
		if res.BLI < 97.0 || res.BLI > 100.0 {
			t.Errorf("%s BLI = %.2f%%, want 97-100%% (Table 1)", name, res.BLI)
		}
	}
}

func TestActiveEnergyPositiveAndBelowBusy(t *testing.T) {
	r := newRunner(t, 0.02)
	for _, s := range MBS() {
		res := r.Run(s)
		if res.EActive <= 0 {
			t.Errorf("%s EActive = %v, want > 0", s.Name, res.EActive)
		}
		if res.EActive >= res.EBusy {
			t.Errorf("%s EActive %v >= EBusy %v", s.Name, res.EActive, res.EBusy)
		}
	}
}

func TestVMBSCompositesIssueVerificationInstructions(t *testing.T) {
	r := newRunner(t, 0.02)
	res := runByName(t, r, "B_L1D_list_nop")
	if res.Counters.NopOps == 0 {
		t.Error("B_L1D_list_nop issued no nops")
	}
	res = runByName(t, r, "B_L1D_array_add")
	if res.Counters.AddOps == 0 {
		t.Error("B_L1D_array_add issued no adds")
	}
	res = runByName(t, r, "B_L1D_list_L2")
	// The pair benchmark must hit both L1D and L2.
	if res.Counters.L1DHits == 0 || res.Counters.L2Hits == 0 {
		t.Errorf("B_L1D_list_L2 counters: %+v", res.Counters)
	}
}

func TestRandomLayoutIsAPermutation(t *testing.T) {
	specs, err := FindSpec("B_L2")
	if err != nil {
		t.Fatal(err)
	}
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	w := newWalker(m.Hier, specs)
	seen := make(map[uint32]bool, len(w.order))
	for _, idx := range w.order {
		if seen[idx] {
			t.Fatalf("duplicate index %d in layout", idx)
		}
		seen[idx] = true
	}
	if len(seen) != int(specs.MemBytes/64) {
		t.Fatalf("layout covers %d items, want %d", len(seen), specs.MemBytes/64)
	}
}

func TestFindSpecUnknown(t *testing.T) {
	if _, err := FindSpec("B_bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := runByName(t, newRunner(t, 0.02), "B_L2")
	b := runByName(t, newRunner(t, 0.02), "B_L2")
	if a.Counters != b.Counters || a.EActive != b.EActive {
		t.Fatal("identical runs differ")
	}
}
