package trace

import (
	"os"
	"path/filepath"
	"testing"

	"energydb/internal/cpusim"
	"energydb/internal/db/engine"
	"energydb/internal/memsim"
	"energydb/internal/tpch"
)

// driveMixed issues one of every access shape.
func driveMixed(m *cpusim.Machine) {
	h := m.Hier
	h.Load(0x1000, true)
	h.Load(0x2000, false)
	h.Store(0x3000)
	h.LoadRepeat(0x4000, 10)
	h.StoreRepeat(0x5000, 6)
	h.Exec(7, memsim.InstrAdd)
	h.Exec(3, memsim.InstrNop)
	h.Exec(9, memsim.InstrOther)
}

func TestCaptureReplayReproducesCounters(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	tr := Capture(m, func() { driveMixed(m) })
	original := m.Hier.Counters()

	m2 := cpusim.NewMachine(cpusim.IntelI7_4790())
	Replay(tr, m2.Hier)
	replayed := m2.Hier.Counters()
	if original != replayed {
		t.Fatalf("replay diverged:\n  orig:   %+v\n  replay: %+v", original, replayed)
	}
}

func TestCaptureStopsAfterReturn(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	tr := Capture(m, func() { m.Hier.Load(0x40, false) })
	n := tr.Len()
	m.Hier.Load(0x80, false) // outside the capture window
	if tr.Len() != n {
		t.Fatal("recorder still active after Capture returned")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	tr := Capture(m, func() { driveMixed(m) })
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Ops() != tr.Ops() {
		t.Fatalf("round trip lost events: %d/%d vs %d/%d",
			got.Len(), got.Ops(), tr.Len(), tr.Ops())
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := (&Trace{}).Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("empty trace should load: %v", err)
	}
	// Corrupt the magic.
	garbage := filepath.Join(t.TempDir(), "garbage")
	if err := writeFile(garbage, []byte("notatrace...")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(garbage); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// TestReplayOnDifferentArchitecture is the point of the package: the same
// captured query stream produces architecture-dependent stall/energy when
// replayed on a machine with a smaller L1D.
func TestReplayOnDifferentArchitecture(t *testing.T) {
	m := cpusim.NewMachine(cpusim.IntelI7_4790())
	e := engine.New(engine.SQLite, m, engine.SettingBaseline)
	tpch.Setup(e, tpch.Size10MB)
	q, err := tpch.QueryByID(6)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := q.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(plan); err != nil { // warm
		t.Fatal(err)
	}
	plan, err = q.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	tr := Capture(m, func() {
		if _, err := e.Run(plan); err != nil {
			t.Error(err)
		}
	})
	if tr.Len() == 0 {
		t.Fatal("captured nothing")
	}

	missRate := func(l1dBytes int) float64 {
		prof := cpusim.IntelI7_4790()
		prof.Mem.L1D.SizeBytes = l1dBytes
		m := cpusim.NewMachine(prof)
		Replay(tr, m.Hier)
		return m.Hier.Counters().L1DMissRate()
	}
	small := missRate(8 << 10)
	big := missRate(128 << 10)
	if small <= big {
		t.Fatalf("8KB L1D miss rate %.4f should exceed 128KB's %.4f", small, big)
	}
}
