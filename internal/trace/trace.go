// Package trace implements access-trace capture and replay: record the
// exact load/store/instruction stream a workload drives through the
// simulator, persist it compactly, and replay it onto machines with
// *different* architectures — the classic trace-driven methodology for the
// customized-CPU design space the paper motivates ("design a novel
// customized CPU architecture for energy-efficient database machine").
//
// The X5 experiment uses this to sweep L1D geometries and cache-energy
// designs over one captured TPC-H query without re-running the engine.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"energydb/internal/cpusim"
	"energydb/internal/memsim"
)

// Event is one recorded access.
type Event struct {
	Kind memsim.AccessKind
	Addr uint64
	// N is the repeat/instruction count (1 for plain loads and stores).
	N uint64
}

// Trace is a captured access stream.
type Trace struct {
	Events []Event
}

// Len returns the event count.
func (t *Trace) Len() int { return len(t.Events) }

// Ops returns the total simulated operations (expanding repeats).
func (t *Trace) Ops() uint64 {
	var n uint64
	for _, e := range t.Events {
		n += e.N
	}
	return n
}

// Capture runs fn with a recorder installed on the machine's hierarchy and
// returns the trace. Any prior recorder is restored afterwards.
func Capture(m *cpusim.Machine, fn func()) *Trace {
	t := &Trace{}
	m.Hier.SetRecorder(func(kind memsim.AccessKind, addr, n uint64) {
		t.Events = append(t.Events, Event{Kind: kind, Addr: addr, N: n})
	})
	defer m.Hier.SetRecorder(nil)
	fn()
	return t
}

// Replay drives the trace through a hierarchy so the PMU operation counts
// match the capture exactly: repeat events issue only their recorded
// remainder (their head was recorded as the preceding plain access). The
// hierarchy may model any architecture — that is the point.
func Replay(t *Trace, h *memsim.Hierarchy) {
	for _, e := range t.Events {
		switch e.Kind {
		case memsim.AccessLoadDep:
			h.Load(e.Addr, true)
		case memsim.AccessLoadInd:
			h.Load(e.Addr, false)
		case memsim.AccessStore:
			h.Store(e.Addr)
		case memsim.AccessLoadRepeat:
			for i := uint64(0); i < e.N; i++ {
				h.Load(e.Addr, false)
			}
		case memsim.AccessStoreRepeat:
			for i := uint64(0); i < e.N; i++ {
				h.Store(e.Addr)
			}
		case memsim.AccessExecAdd:
			h.Exec(e.N, memsim.InstrAdd)
		case memsim.AccessExecNop:
			h.Exec(e.N, memsim.InstrNop)
		case memsim.AccessExecOther:
			h.Exec(e.N, memsim.InstrOther)
		}
	}
}

// File format: magic, version, event count, then varint-packed events.
const (
	magic   = 0x45545243 // "CRTE"
	version = 1
)

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(t.Events)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [2*binary.MaxVarintLen64 + 1]byte
	for _, e := range t.Events {
		buf[0] = byte(e.Kind)
		n := 1
		n += binary.PutUvarint(buf[n:], e.Addr)
		n += binary.PutUvarint(buf[n:], e.N)
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load reads a trace file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint32(hdr[8:12])
	t := &Trace{Events: make([]Event, 0, count)}
	for i := uint32(0); i < count; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: truncated at event %d: %w", i, err)
		}
		addr, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated addr at event %d: %w", i, err)
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated count at event %d: %w", i, err)
		}
		t.Events = append(t.Events, Event{Kind: memsim.AccessKind(kind), Addr: addr, N: n})
	}
	return t, nil
}
