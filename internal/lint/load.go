package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is a loaded, fully type-checked module: every package under the
// module root (testdata and hidden directories excluded), parsed and
// checked exactly once. All analyzers run over this single view, which is
// what keeps a full ./... run cheap — the expensive go/types pass is shared
// across the whole suite in one process.
type Program struct {
	Fset *token.FileSet
	// Pkgs are the packages selected by the Load patterns, sorted by
	// import path.
	Pkgs []*Package

	modPath string
	modRoot string
	all     map[string]*Package // every module package by import path
	loading map[string]bool     // import-cycle guard
	std     types.Importer      // stdlib importer (gc export data)
	stdSrc  types.Importer      // fallback stdlib importer (source)
	waivers map[string]map[int]map[string]bool

	// chargeSum and cfgCache are lazily-built chargeflow engine state,
	// shared by every analyzer pass over this program (summary.go, cfg.go).
	chargeSum *summary
	cfgCache  map[*ast.BlockStmt]*cfg
}

// chargeSummary returns the interprocedural charge/dispatch/poll summary,
// building it on first use and caching it for every subsequent pass.
func (prog *Program) chargeSummary() *summary {
	if prog.chargeSum == nil {
		prog.chargeSum = buildSummary(prog)
	}
	return prog.chargeSum
}

// cfgOf returns the (cached) control-flow graph of a function body.
func (prog *Program) cfgOf(body *ast.BlockStmt) *cfg {
	if prog.cfgCache == nil {
		prog.cfgCache = make(map[*ast.BlockStmt]*cfg)
	}
	if g, ok := prog.cfgCache[body]; ok {
		return g
	}
	g := buildCFG(body)
	prog.cfgCache[body] = g
	return g
}

// Package is one type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the module containing dir, returning the
// packages matched by patterns ("./..." for the whole module, "./x/..."
// for a subtree, "./x" for one package; paths are relative to dir). Test
// files are excluded: the analyzers enforce invariants on production code,
// and regression tests legitimately reproduce the very shapes the
// analyzers reject.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(absDir)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		modPath: modPath,
		modRoot: root,
		all:     make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.Default(),
	}
	dirs, err := prog.packageDirs()
	if err != nil {
		return nil, err
	}
	// Type-check every package (imports resolve recursively through the
	// same cache, so each package is checked once regardless of fan-in).
	for _, d := range dirs {
		if _, err := prog.check(prog.importPath(d)); err != nil {
			return nil, err
		}
	}
	sel, err := selectPackages(prog, absDir, patterns)
	if err != nil {
		return nil, err
	}
	prog.Pkgs = sel
	var files []*ast.File
	for _, p := range sel {
		files = append(files, p.Files...)
	}
	prog.waivers = collectWaivers(prog.Fset, files)
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// packageDirs lists every directory under the module root that holds at
// least one non-test .go file. testdata, vendor and dot/underscore
// directories are skipped, exactly like the go tool.
func (p *Program) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(p.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != p.modRoot &&
				(name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPath maps a directory under the module root to its import path.
func (p *Program) importPath(dir string) string {
	rel, err := filepath.Rel(p.modRoot, dir)
	if err != nil || rel == "." {
		return p.modPath
	}
	return p.modPath + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module import path back to its directory.
func (p *Program) dirFor(path string) string {
	if path == p.modPath {
		return p.modRoot
	}
	rel := strings.TrimPrefix(path, p.modPath+"/")
	return filepath.Join(p.modRoot, filepath.FromSlash(rel))
}

// internal reports whether an import path belongs to this module.
func (p *Program) internal(path string) bool {
	return path == p.modPath || strings.HasPrefix(path, p.modPath+"/")
}

// Import implements types.Importer: module-internal packages resolve
// through the program's cache (checked on demand), everything else through
// the stdlib importer, falling back to source type-checking when export
// data is unavailable.
func (p *Program) Import(path string) (*types.Package, error) {
	if p.internal(path) {
		pkg, err := p.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if tp, err := p.std.Import(path); err == nil {
		return tp, nil
	}
	if p.stdSrc == nil {
		p.stdSrc = importer.ForCompiler(p.Fset, "source", nil)
	}
	return p.stdSrc.Import(path)
}

// check parses and type-checks one module package, memoized.
func (p *Program) check(path string) (*Package, error) {
	if pkg, ok := p.all[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	dir := p.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: p}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	p.all[path] = pkg
	return pkg, nil
}

// selectPackages filters the loaded packages by the Load patterns.
func selectPackages(prog *Program, baseDir string, patterns []string) ([]*Package, error) {
	match := func(pkg *Package) bool {
		for _, pat := range patterns {
			if pat == "all" {
				return true
			}
			target := pat
			recursive := false
			if rest, ok := strings.CutSuffix(pat, "/..."); ok {
				target, recursive = rest, true
			}
			if target == "" || target == "./" {
				target = "."
			}
			abs := target
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(baseDir, target)
			}
			if pkg.Dir == abs {
				return true
			}
			if recursive && strings.HasPrefix(pkg.Dir+string(filepath.Separator), abs+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}
	var out []*Package
	for _, pkg := range prog.all {
		if match(pkg) {
			out = append(out, pkg)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
