package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerWalErr proves durability-error propagation: an error returned by
// a commit/abort/sync/append call on the engine, transaction, storage or
// WAL layer must reach the caller or the transaction abort path. Dropping
// one turns a failed durability point into a silently "successful"
// statement — the ledger charges the energy, the client sees OK, and the
// data is gone. The check is CFG liveness on the chargeflow engine: the
// error value must be read (returned, tested, joined, deferred) on every
// path from its definition to function exit.
//
// Flagged shapes:
//   - the call as a bare statement (result discarded outright),
//   - the error assigned to the blank identifier,
//   - the error assigned to a variable that can reach function exit
//     without ever being read.
var AnalyzerWalErr = &Analyzer{
	Name:      "walerr",
	Doc:       "WAL/engine/txn durability errors (Commit/Rollback/Abort/Sync/Append) must reach the caller or the abort path",
	WaiverKey: "walerr",
	Run:       runWalErr,
}

// walErrMethods are the durability points.
var walErrMethods = map[string]bool{
	"Commit": true, "Rollback": true, "Abort": true,
	"Sync": true, "Append": true,
}

// walErrPackages are the layers whose durability errors must propagate.
var walErrPackages = map[string]bool{
	"engine": true, "txn": true, "storage": true, "wal": true,
}

func runWalErr(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, fs := range funcScopes(f) {
			checkWalErrScope(p, fs)
		}
	}
}

// durabilityCall reports whether the call is an error-returning durability
// method on one of the guarded layers, and names it for diagnostics.
func durabilityCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !walErrMethods[sel.Sel.Name] {
		return "", false
	}
	if !lastResultIsError(p.TypeOf(call)) {
		return "", false
	}
	var pkg *types.Package
	if s, ok := p.Pkg.Info.Selections[sel]; ok {
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			pkg = named.Obj().Pkg()
		}
	} else if obj := p.Pkg.Info.Uses[sel.Sel]; obj != nil {
		pkg = obj.Pkg() // package-qualified function call
	}
	if pkg == nil || !walErrPackages[pathBase(pkg.Path())] {
		return "", false
	}
	return exprString(sel.X) + "." + sel.Sel.Name, true
}

func lastResultIsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func checkWalErrScope(p *Pass, fs funcScope) {
	// Named results: a bare (or any) return reads them.
	namedResults := map[types.Object]bool{}
	if fd, ok := fs.node.(*ast.FuncDecl); ok && fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := p.Pkg.Info.Defs[name]; obj != nil {
					namedResults[obj] = true
				}
			}
		}
	}

	var g *cfg // built lazily: most scopes have no durability calls
	inspectShallow(fs.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				if name, ok := durabilityCall(p, call); ok {
					p.Reportf(st.Pos(),
						"%s: error from %s is discarded; a failed durability point must reach the caller or the abort path",
						fs.name, name)
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := durabilityCall(p, call)
			if !ok {
				return true
			}
			// The error is the last value on the left.
			lhs := st.Lhs[len(st.Lhs)-1]
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				p.Reportf(st.Pos(),
					"%s: error from %s is assigned to _; a failed durability point must reach the caller or the abort path",
					fs.name, name)
				return true
			}
			obj := p.Pkg.Info.Defs[id]
			if obj == nil {
				obj = p.Pkg.Info.Uses[id]
			}
			if obj == nil {
				return true
			}
			// Assigning to a variable captured from an enclosing function
			// propagates the error out of this closure by construction —
			// the enclosing scope reads it after the closure runs (the
			// prof.Profile(func(){ err = ... }) shape).
			if obj.Pos() < fs.node.Pos() || fs.node.End() < obj.Pos() {
				return true
			}
			if g == nil {
				g = p.Prog.cfgOf(fs.body)
			}
			def := g.byStmt[ast.Stmt(st)]
			if def == nil {
				return true
			}
			reads := func(s ast.Stmt) bool {
				if s == ast.Stmt(st) {
					return false // the definition itself
				}
				if _, isRet := s.(*ast.ReturnStmt); isRet && namedResults[obj] {
					return true
				}
				return stmtMentions(p, s, obj)
			}
			if avoidSearch(def, map[*cnode]bool{g.exit: true}, reads) {
				p.Reportf(st.Pos(),
					"%s: error from %s can reach function exit without being read; a failed durability point must reach the caller or the abort path",
					fs.name, name)
			}
		}
		return true
	})
}

// stmtMentions reports whether the CFG node for st evaluates the object
// (compound statements count only their condition/tag; function literals
// inside simple statements count — a deferred or synchronous closure
// reading the error is a legitimate consumer).
func stmtMentions(p *Pass, st ast.Stmt, obj types.Object) bool {
	root := stmtEvalNode(st)
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
