package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// AnalyzerCounterDelta flags raw `a - b` subtraction on uint64 values that
// look like monotonic PMU or ledger counters. Cumulative counters go
// backwards when they are reset (Machine.Reset, Hierarchy.ResetCounters)
// or when a baseline is re-synchronized across machines; raw uint64
// subtraction then underflows to ~2^64 and poisons every downstream energy
// figure. This exact bug shipped twice: StallAwareGovernor.Tick (fixed in
// PR 4) and perfmon.Sample.DeltaSince / memsim.Counters.Sub (fixed in this
// PR). The invariant: every counter delta must clamp at zero.
//
// A subtraction is exempt when either operand is a constant (index/align
// arithmetic), when the enclosing function guards the same operand pair
// with an ordering comparison (the monotonicDelta clamp shape), or when
// the site carries a //lint:monotonic waiver explaining why the pair
// cannot go backwards.
var AnalyzerCounterDelta = &Analyzer{
	Name:      "counterdelta",
	Doc:       "raw uint64 subtraction on monotonic PMU/ledger counters underflows on counter reset",
	WaiverKey: "monotonic",
	Run:       runCounterDelta,
}

// counterName matches identifiers and field names that the codebase uses
// for cumulative hardware/ledger counters (memsim.Counters fields, governor
// baselines, ledger tallies).
var counterName = regexp.MustCompile(`(?i)(cycle|stall|counter|tick|transition|quer(y|ies)|access|hit|miss|load|store|ops\b|slot|crossing|prefetch|instr|uops|events?\b|retired)`)

func runCounterDelta(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fn := range declScopes(file) {
			fn := fn
			ast.Inspect(fn.body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || bin.Op != token.SUB {
					return true
				}
				if !isUint64(pass, bin.X) || !isUint64(pass, bin.Y) {
					return true
				}
				if isConst(pass, bin.X) || isConst(pass, bin.Y) {
					return true
				}
				if !counterMarked(pass, bin.X) && !counterMarked(pass, bin.Y) {
					return true
				}
				if clampGuarded(fn.body, bin.X, bin.Y) {
					return true
				}
				pass.Reportf(bin.OpPos,
					"raw uint64 counter delta %s - %s can underflow when the counter resets; clamp it (see cpusim.monotonicDelta) or waive with //lint:monotonic",
					exprString(bin.X), exprString(bin.Y))
				return true
			})
		}
	}
}

// isUint64 reports whether the expression's type has underlying uint64.
func isUint64(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// isConst reports whether the expression is a compile-time constant.
func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// counterMarked reports whether the expression names a counter: the final
// identifier/selector matches the counter-name vocabulary, or it selects a
// field of (or calls a method on) a type whose name ends in "Counters".
func counterMarked(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		return counterName.MatchString(e.Name)
	case *ast.SelectorExpr:
		if counterName.MatchString(e.Sel.Name) {
			return true
		}
		return countersOwner(pass, e.X)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if counterName.MatchString(sel.Sel.Name) {
				return true
			}
			return countersOwner(pass, sel.X)
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			return counterName.MatchString(id.Name)
		}
	}
	return false
}

// countersOwner reports whether the expression's type is named and its name
// ends in "Counters" (memsim.Counters and friends): every field or method
// of such a type is treated as counter-marked regardless of its own name.
func countersOwner(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && strings.HasSuffix(named.Obj().Name(), "Counters")
}

// clampGuarded reports whether the function body contains an ordering
// comparison over the same operand pair (in either order) — the clamp shape
//
//	if cur < last { return 0 }
//	return cur - last
//
// which proves the author considered the backwards case.
func clampGuarded(body *ast.BlockStmt, x, y ast.Expr) bool {
	xs, ys := exprString(x), exprString(y)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		a, b := exprString(bin.X), exprString(bin.Y)
		if (a == xs && b == ys) || (a == ys && b == xs) {
			found = true
			return false
		}
		return true
	})
	return found
}
