// Package ledger reproduces the client.Dial handshake leak (fixed in an
// earlier PR) and a dropped energy measurement, next to the accepted
// shapes, for the ledgerretire analyzer's golden test.
package ledger

// Conn is the dialed resource.
type Conn struct {
	open bool
}

// Close releases the connection.
func (c *Conn) Close() error {
	c.open = false
	return nil
}

// Dial opens a connection.
func Dial(addr string) (*Conn, error) {
	_ = addr
	return &Conn{open: true}, nil
}

// Client wraps an established connection.
type Client struct {
	nc *Conn
}

// Close releases the client's connection.
func (c *Client) Close() error { return c.nc.Close() }

// handshake may fail after the socket is already open.
func handshake(nc *Conn) error {
	_ = nc
	return nil
}

// DialLeaky is the historical leak: the handshake error path returns
// without closing the freshly dialed socket.
func DialLeaky(addr string) (*Client, error) {
	nc, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := handshake(nc); err != nil {
		return nil, err
	}
	return &Client{nc: nc}, nil
}

// DialGuarded is the accepted shape: a deferred guard-flag cleanup closes
// the socket on every early return.
func DialGuarded(addr string) (*Client, error) {
	nc, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			nc.Close()
		}
	}()
	if err := handshake(nc); err != nil {
		return nil, err
	}
	ok = true
	return &Client{nc: nc}, nil
}
