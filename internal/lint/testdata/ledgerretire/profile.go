package ledger

// Ledger accumulates per-session energy; its presence arms the
// profileretire half of the analyzer.
type Ledger struct {
	total float64
}

// Add retires measured energy into the ledger.
func (l *Ledger) Add(j float64) { l.total += j }

// Breakdown is a measured energy split.
type Breakdown struct {
	Total float64
}

// meter measures a region.
type meter struct{}

// Profile measures the region's energy.
func (m *meter) Profile() Breakdown {
	_ = m
	return Breakdown{}
}

// measureAndDrop profiles but never retires the measurement: the session
// ledgers no longer sum to the server total.
func measureAndDrop(m *meter) float64 {
	b := m.Profile()
	return b.Total
}

// measureAndRetire is the accepted shape: the breakdown lands in a ledger.
func measureAndRetire(m *meter, l *Ledger) {
	b := m.Profile()
	l.Add(b.Total)
}

// measureForCaller returns the Breakdown: retirement is the caller's job.
func measureForCaller(m *meter) Breakdown {
	return m.Profile()
}
