module fixture.example/ledgerretire

go 1.22
