// Package exec mirrors the row-at-a-time executor and MVCC shapes the
// chargepath analyzer guards outside the vectorized engine: row loops
// and version-chain walks must charge the meter, but (unlike package
// vec) carry no per-batch dispatch obligation.
package exec

// Row mirrors the executor's tuple.
type Row []int

// Version is one MVCC version-chain entry.
type Version struct {
	Next *Version
	TS   int
}

// Hier is the memory-hierarchy stand-in.
type Hier struct{}

func (h *Hier) Load(addr uint64, dependent bool) {}

// Ctx is the energy-context stand-in.
type Ctx struct{}

func (c *Ctx) EvalCost(n int) {}

// visibleUncharged walks the version chain without charging the pointer
// chase: every hop is a dependent load the model never sees.
func visibleUncharged(v *Version, ts int) *Version {
	for v != nil {
		if v.TS <= ts {
			return v
		}
		v = v.Next
	}
	return nil
}

// visibleCharged charges one dependent load per hop: clean.
func visibleCharged(h *Hier, base uint64, v *Version, ts int) *Version {
	for v != nil {
		h.Load(base, true)
		if v.TS <= ts {
			return v
		}
		v = v.Next
	}
	return nil
}

// sumUncharged iterates materialized rows without charging: silent work.
func sumUncharged(rows []Row) int {
	s := 0
	for _, r := range rows {
		s += r[0]
	}
	return s
}

// sumCharged charges per row: clean.
func sumCharged(ctx *Ctx, rows []Row) int {
	s := 0
	for _, r := range rows {
		ctx.EvalCost(1)
		s += r[0]
	}
	return s
}
