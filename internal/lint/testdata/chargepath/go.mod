module fixture.example/chargepath

go 1.22
