// Package vec mirrors the vectorized executor's shapes: a pooled Batch
// with Len/Pos/Cap, kernels that charge the memory hierarchy per batch,
// and operators that pull batches from a child. The chargepath analyzer
// keys on names and package basename, so the fixture defines local
// stand-ins rather than importing the real executor.
package vec

// Row mirrors exec.Row.
type Row []int

// Hier is the memory-hierarchy stand-in.
type Hier struct{}

func (h *Hier) LoadRepeat(addr, n uint64)  {}
func (h *Hier) StoreRepeat(addr, n uint64) {}
func (h *Hier) Exec(n uint64)              {}

// Machine bundles the hierarchy.
type Machine struct{ Hier *Hier }

// Ctx is the energy/cancellation context stand-in.
type Ctx struct{ M *Machine }

func (c *Ctx) Poll()           {}
func (c *Ctx) PollEvery(n int) {}
func (c *Ctx) TupleCost()      {}

// Vector is one pooled column.
type Vector struct{ addr uint64 }

func (v *Vector) Get(i int) int { return 0 }
func (v *Vector) Set(i, x int)  {}

// Batch is one pooled batch of columns.
type Batch struct {
	Cols []*Vector
	N    int
}

func (b *Batch) Len() int      { return b.N }
func (b *Batch) Pos(k int) int { return k }
func (b *Batch) Cap() int      { return len(b.Cols) }

// Operator is the batch-at-a-time contract.
type Operator interface {
	Next() (*Batch, error)
}

// filterOp pulls batches from a child.
type filterOp struct {
	Ctx   *Ctx
	Child Operator
}

// drainUnpolled skips both the poll and the charge on the empty-batch
// fast path: an iteration can complete via the continue without the
// driver ever paying for the pull.
func (f *filterOp) drainUnpolled() error {
	for {
		b, err := f.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if b.Len() == 0 {
			continue
		}
		f.Ctx.TupleCost()
	}
}

// drainPolled polls before branching, so every completing iteration is
// accounted: clean.
func (f *filterOp) drainPolled() error {
	for {
		b, err := f.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		f.Ctx.Poll()
		if b.Len() == 0 {
			continue
		}
		f.Ctx.TupleCost()
	}
}

// copyOut moves one value per batch position without charging anything:
// silent work the energy model never sees.
func copyOut(ctx *Ctx, b *Batch, out *Vector) {
	n := b.Len()
	for k := 0; k < n; k++ {
		out.Set(k, b.Cols[0].Get(b.Pos(k)))
	}
}

// kernel pays the per-batch dispatch and the bulk payload traffic before
// the element loop: clean (the charges dominate the loop head).
func kernel(ctx *Ctx, b *Batch, in, out *Vector) {
	ctx.TupleCost()
	n := b.Len()
	h := ctx.M.Hier
	h.LoadRepeat(in.addr, uint64(n))
	for k := 0; k < n; k++ {
		out.Set(k, in.Get(b.Pos(k)))
	}
	h.StoreRepeat(out.addr, uint64(n))
}

// chargedNoDispatch charges payload traffic per element but never pays
// the per-batch driver dispatch the vectorized cost model requires.
func chargedNoDispatch(ctx *Ctx, b *Batch, in, out *Vector) {
	n := b.Len()
	h := ctx.M.Hier
	for k := 0; k < n; k++ {
		h.LoadRepeat(in.addr, 1)
		out.Set(k, in.Get(k))
	}
}

// emitter buffers rows and emits batches.
type emitter struct {
	Ctx  *Ctx
	out  *Batch
	rows []Row
	pos  int
}

// Next emits batches without a direct cancellation poll at the emit
// boundary: a statement timeout could never interrupt the drain.
func (e *emitter) Next() (*Batch, error) {
	if e.pos >= len(e.rows) {
		return nil, nil
	}
	e.Ctx.TupleCost()
	n := e.out.Cap()
	for k := 0; k < n; k++ {
		e.out.Cols[0].Set(k, e.rows[e.pos][0])
	}
	e.pos += n
	return e.out, nil
}

// polledEmitter is the corrected shape: Poll at the emit boundary.
type polledEmitter struct {
	Ctx  *Ctx
	out  *Batch
	rows []Row
	pos  int
}

func (e *polledEmitter) Next() (*Batch, error) {
	if e.pos >= len(e.rows) {
		return nil, nil
	}
	e.Ctx.Poll()
	e.Ctx.TupleCost()
	n := e.out.Cap()
	for k := 0; k < n; k++ {
		e.out.Cols[0].Set(k, e.rows[e.pos][0])
	}
	e.pos += n
	return e.out, nil
}

// alloc is setup-only work: waived, not silently skipped.
func alloc(n int) []*Vector {
	out := make([]*Vector, n)
	//lint:nocharge one-time allocation, no payload movement
	for i := range out {
		out[i] = &Vector{}
	}
	return out
}
