module fixture.example/wiresym

go 1.22
