// Package wire reproduces frame-symmetry breaks for the wiresym analyzer:
// an enum constant with no Decode case, one with no String case, a frame
// with an encoder but no decoder, and a fully symmetric frame that Decode
// nevertheless never constructs.
package wire

// Type tags a frame on the wire.
type Type byte

// Frame types.
const (
	TypeHello Type = iota
	TypeQuery
	TypeResult
	TypeGone
)

// Hello is fully symmetric and constructed in Decode: the clean shape.
type Hello struct{}

// FrameType implements the frame contract.
func (Hello) FrameType() Type { return TypeHello }

func (h *Hello) encode() []byte { return nil }

func (h *Hello) decode(b []byte) error {
	_ = b
	return nil
}

// Query has an encoder but no decoder: the peer cannot read it.
type Query struct{}

// FrameType implements the frame contract.
func (Query) FrameType() Type { return TypeQuery }

func (q *Query) encode() []byte { return nil }

// Result is symmetric but Decode never constructs it, so inbound Result
// frames are rejected as unknown.
type Result struct{}

// FrameType implements the frame contract.
func (Result) FrameType() Type { return TypeResult }

func (r *Result) encode() []byte { return nil }

func (r *Result) decode(b []byte) error {
	_ = b
	return nil
}

// Decode parses one frame. TypeResult and TypeGone have no case.
func Decode(t Type, b []byte) (any, error) {
	switch t {
	case TypeHello:
		h := &Hello{}
		return h, h.decode(b)
	case TypeQuery:
		return nil, nil
	}
	return nil, nil
}

// String names the frame type. TypeGone has no case.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeQuery:
		return "query"
	case TypeResult:
		return "result"
	}
	return "?"
}
