module fixture.example/counterdelta

go 1.22
