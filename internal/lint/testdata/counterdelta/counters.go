// Package counterdelta reproduces the repository's two shipped
// counter-underflow bugs — the pre-PR-4 StallAwareGovernor.Tick shape and
// the pre-fix Counters.Sub raw field subtraction — alongside the accepted
// clamped and waived shapes, for the analyzer's golden test.
package counterdelta

// Counters mirrors the PMU snapshot struct.
type Counters struct {
	StallCycles uint64
	Loads       uint64
	Other       uint64
}

type governor struct {
	lastStall uint64
}

// Tick is the historical stallgov.Tick underflow: the baseline is not
// clamped, so a counter reset wraps the delta to ~2^64.
func (g *governor) Tick(c Counters) uint64 {
	delta := c.StallCycles - g.lastStall
	g.lastStall = c.StallCycles
	return delta
}

// Sub is the historical Counters.Sub shape: raw per-field subtraction.
// Other has a neutral field name; it is caught via the Counters owner type.
func (c Counters) Sub(base Counters) Counters {
	return Counters{
		StallCycles: c.StallCycles - base.StallCycles,
		Loads:       c.Loads - base.Loads,
		Other:       c.Other - base.Other,
	}
}

// clampedDelta is the accepted monotonicDelta shape: the ordering guard
// over the same operand pair proves the backwards case was considered.
func clampedDelta(stallNow, stallBase uint64) uint64 {
	if stallNow < stallBase {
		return 0
	}
	return stallNow - stallBase
}

// windowTransitions demonstrates the waiver syntax for a pair that cannot
// go backwards (both reads on the owning goroutine, no reset in between).
func windowTransitions(nowTransitions, baseTransitions uint64) uint64 {
	return nowTransitions - baseTransitions //lint:monotonic same-goroutine window, no reset between reads
}

// lastSlot is index arithmetic: constant operands are exempt.
func lastSlot(issueSlots uint64) uint64 {
	return issueSlots - 1
}
