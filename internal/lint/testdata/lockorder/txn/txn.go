// Package txn is the fixture's transaction-manager lock layer (level 1):
// after the engine catalog lock, before storage row locks.
package txn

import "sync"

// Manager owns the commit lock.
type Manager struct {
	Mu sync.Mutex
}
