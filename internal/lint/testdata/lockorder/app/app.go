// Package app exercises the lockorder analyzer: ordering inversions,
// locks held across channel operations, and mutex value copies, next to
// the accepted shapes of each.
package app

import (
	"fixture.example/lockorder/btree"
	"fixture.example/lockorder/engine"
	"fixture.example/lockorder/storage"
	"fixture.example/lockorder/txn"
)

type system struct {
	store *engine.Store
	txns  *txn.Manager
	rows  *storage.Rows
	tree  *btree.Tree
	work  chan int
}

// goodOrder follows the documented engine → txn → storage → btree order.
func (s *system) goodOrder() {
	s.store.Mu.Lock()
	defer s.store.Mu.Unlock()
	s.txns.Mu.Lock()
	defer s.txns.Mu.Unlock()
	s.rows.Mu.Lock()
	defer s.rows.Mu.Unlock()
	s.tree.Mu.Lock()
	defer s.tree.Mu.Unlock()
}

// badOrder acquires the engine lock while already inside the btree layer.
func (s *system) badOrder() {
	s.tree.Mu.Lock()
	s.store.Mu.Lock()
	s.store.Mu.Unlock()
	s.tree.Mu.Unlock()
}

// badCommitOrder takes the transaction manager's commit lock while already
// holding a storage row lock — a commit publishing versions must never
// wait on a row lock held by a statement that is itself waiting to commit.
func (s *system) badCommitOrder() {
	s.rows.Mu.Lock()
	s.txns.Mu.Lock()
	s.txns.Mu.Unlock()
	s.rows.Mu.Unlock()
}

// publishLocked blocks on a channel send while holding the row lock.
func (s *system) publishLocked(v int) {
	s.rows.Mu.Lock()
	s.work <- v
	s.rows.Mu.Unlock()
}

// publish releases before blocking: the accepted shape.
func (s *system) publish(v int) {
	s.rows.Mu.Lock()
	s.rows.Mu.Unlock()
	s.work <- v
}

// snapshot copies a lock-bearing value, silently forking its lock state.
func snapshot(t *btree.Tree) btree.Tree {
	cp := *t
	return cp
}

// scanAll ranges over lock-bearing values, copying each element.
func scanAll(trees []btree.Tree) int {
	n := 0
	for _, t := range trees {
		_ = t
		n++
	}
	return n
}
