// Package btree is the fixture's bottom lock layer (level 2).
package btree

import "sync"

// Tree owns the node lock.
type Tree struct {
	Mu sync.Mutex
}
