// Package storage is the fixture's middle lock layer (level 1).
package storage

import "sync"

// Rows owns the row lock.
type Rows struct {
	Mu sync.Mutex
}
