// Package engine is the fixture's top lock layer (level 0).
package engine

import "sync"

// Store owns the statement-scoped lock.
type Store struct {
	Mu sync.RWMutex
}
