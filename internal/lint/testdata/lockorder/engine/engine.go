// Package engine is the fixture's top lock layer (level 0).
package engine

import "sync"

// Store owns the short catalog lock.
type Store struct {
	Mu sync.RWMutex
}

// RLock resurrects the retired statement-scoped store lock wrapper: the
// analyzer must flag exported lock wrappers on engine types.
func (s *Store) RLock() { s.Mu.RLock() }

// RUnlock pairs with RLock; flagged for the same reason.
func (s *Store) RUnlock() { s.Mu.RUnlock() }
