module fixture.example/poolescape

go 1.22
