// Package poolescape exercises the pooled-loan analyzer: batches and
// vectors handed out by Next/NextBatch/evalVec/pool.get are loans that
// the pool will overwrite on the next pull, so retaining one in a field
// or a growing slice aliases memory that is about to be recycled.
package poolescape

// Batch is the pooled batch stand-in.
type Batch struct{ N int }

// Vector is the pooled column stand-in.
type Vector struct{}

// Operator is the batch-at-a-time contract.
type Operator interface {
	Next() (*Batch, error)
}

// pool hands out recycled vectors.
type pool struct{ vecs []*Vector }

func (p *pool) get() *Vector { return p.vecs[0] }

type collector struct {
	Child Operator
	p     *pool
	saved *Batch
	all   []*Batch
	cols  []*Vector
}

// buffer retains every pulled batch: both the field store and the append
// alias memory the child's pool reuses on the next Next call.
func (c *collector) buffer() error {
	for {
		b, err := c.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		c.saved = b
		c.all = append(c.all, b)
	}
}

// scratch parks a pooled vector in a long-lived slot.
func (c *collector) scratch() {
	v := c.p.get()
	c.cols[0] = v
}

// consume reads the loan and drops it before re-pulling: clean.
func (c *collector) consume() (int, error) {
	n := 0
	for {
		b, err := c.Child.Next()
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += b.N
	}
}

// cursor is the waived operator-cursor shape: the batch is held only
// until the cursor drains it and pulls again.
type cursor struct {
	Child Operator
	b     *Batch
}

func (c *cursor) advance() error {
	b, err := c.Child.Next()
	if err != nil {
		return err
	}
	c.b = b //lint:poolescape drained row-by-row before the next pull
	return nil
}
