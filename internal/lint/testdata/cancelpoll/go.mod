module fixture.example/cancelpoll

go 1.22
