// Package vec mirrors the vectorized executor's cancellation surface: a
// batch Operator interface, a raw batch cursor (NextBatch), and kernels
// that poll at batch granularity instead of per tuple. It exercises the
// cancelpoll analyzer's batch rules: an uncancellable batch loop is a
// finding, while a bounded per-batch materialization loop under a
// batch-granularity checkpoint is accepted.
package vec

import exec "fixture.example/cancelpoll"

// Batch mirrors the vectorized unit of exchange.
type Batch struct {
	Rows []exec.Row
}

// Operator is the vectorized Volcano interface; every implementation polls
// in Next, so a driver loop pulling batches from it inherits the polling.
type Operator interface {
	Open() error
	Next() (*Batch, error)
	Close() error
}

// scanner is a raw batch cursor (the storage batch scanner's shape): not an
// Operator, so loops driving it must poll themselves.
type scanner struct {
	n int
}

// NextBatch returns the next bounded slice of rows.
func (s *scanner) NextBatch() ([]exec.Row, bool) {
	s.n--
	return nil, s.n >= 0
}

// materializeUnpolled drives the batch cursor and materializes every batch
// without a single checkpoint: the uncancellable vectorized kernel.
func materializeUnpolled(ctx *exec.Ctx, s *scanner) int {
	n := 0
	for {
		rows, ok := s.NextBatch()
		if !ok {
			return n
		}
		for range rows {
			n++
		}
	}
}

// materializePolled is the accepted vectorized shape: one free checkpoint
// per batch plus a charged per-primitive dispatch; the inner loop is
// bounded by the batch width and inherits the batch-granularity polling.
func materializePolled(ctx *exec.Ctx, s *scanner) int {
	n := 0
	for {
		ctx.Poll()
		rows, ok := s.NextBatch()
		if !ok {
			return n
		}
		ctx.TupleCost()
		for range rows {
			n++
		}
	}
}

// drain pulls from the vectorized Operator without its own checkpoint:
// accepted, each child's Next polls once per batch.
func drain(ctx *exec.Ctx, op Operator) (int, error) {
	n := 0
	for {
		b, err := op.Next()
		if err != nil || b == nil {
			return n, err
		}
		n += len(b.Rows)
	}
}

// buildChunked is the hash-join build / sort-extraction kernel shape: a
// materialized buffer walked in batch-width chunks, ranging over the
// bounded sub-slice rows[lo:hi], with a batch-granularity PollEvery at the
// head of each chunk. Accepted: the uncancellable stretch is one chunk.
func buildChunked(ctx *exec.Ctx, rows []exec.Row, chunk int) int {
	n := 0
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		ctx.PollEvery(lo)
		for range rows[lo:hi] {
			n++
		}
	}
	return n
}

// buildChunkedUnpolled walks the same chunked shape without any checkpoint
// in the enclosing scope: still a finding — chunking alone does not make
// the loop cancellable.
func buildChunkedUnpolled(rows []exec.Row, chunk int) int {
	n := 0
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		for range rows[lo:hi] {
			n++
		}
	}
	return n
}
