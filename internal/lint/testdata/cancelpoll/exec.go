// Package exec mirrors the executor's cancellation surface — Ctx with
// TupleCost/Poll, the Operator interface, raw cursors and materialized
// row slices — and exercises the cancelpoll analyzer with unpolled loops,
// unpolled sort comparators, and the accepted shapes of each.
package exec

import "sort"

// Row mirrors the executor's tuple type.
type Row []int

// Ctx mirrors the executor context.
type Ctx struct {
	canceled bool
}

// TupleCost is the charged per-tuple checkpoint.
func (c *Ctx) TupleCost() {}

// Poll is the charge-free checkpoint.
func (c *Ctx) Poll() {}

// PollEvery is the strided checkpoint for loops over materialized buffers.
func (c *Ctx) PollEvery(i int) {}

// Operator is the Volcano interface; loops pulling from an Operator
// inherit the child's polling.
type Operator interface {
	Open() error
	Next() (Row, bool, error)
	Close() error
}

// cursor is a raw storage iterator: not an Operator, so loops driving it
// must poll themselves.
type cursor struct {
	n int
}

// Next advances the cursor.
func (c *cursor) Next() bool {
	c.n--
	return c.n >= 0
}

// scanRaw drives a raw cursor without ever polling cancellation.
func scanRaw(ctx *Ctx, cur *cursor) int {
	n := 0
	for cur.Next() {
		n++
	}
	return n
}

// scanPolled is the accepted cursor shape: TupleCost per tuple.
func scanPolled(ctx *Ctx, cur *cursor) int {
	n := 0
	for cur.Next() {
		ctx.TupleCost()
		n++
	}
	return n
}

// materialize ranges over a materialized row set without polling.
func materialize(ctx *Ctx, rows []Row) int {
	n := 0
	for range rows {
		n++
	}
	return n
}

// materializePolled is the accepted shape: the free checkpoint per row.
func materializePolled(ctx *Ctx, rows []Row) int {
	n := 0
	for range rows {
		ctx.Poll()
		n++
	}
	return n
}

// materializeStrided is the other accepted shape: the strided checkpoint,
// which reads the cancel flag only every few hundred elements.
func materializeStrided(ctx *Ctx, rows []Row) int {
	n := 0
	for i := range rows {
		ctx.PollEvery(i)
		n++
	}
	return n
}

// drain inherits polling from the child Operator's Next.
func drain(op Operator) (int, error) {
	n := 0
	for {
		_, ok, err := op.Next()
		if err != nil || !ok {
			return n, err
		}
		n++
	}
}

// orderRows sorts with a comparator that never polls: the O(n log n)
// comparison phase cannot be timed out.
func orderRows(ctx *Ctx, rows []Row) {
	sort.SliceStable(rows, func(a, b int) bool {
		return rows[a][0] < rows[b][0]
	})
}

// orderRowsPolled is the accepted comparator shape.
func orderRowsPolled(ctx *Ctx, rows []Row) {
	sort.SliceStable(rows, func(a, b int) bool {
		ctx.Poll()
		return rows[a][0] < rows[b][0]
	})
}

// header is provably bounded and carries the documented waiver.
func header(ctx *Ctx, rows []Row) int {
	n := 0
	//lint:nopoll bounded: at most two header rows
	for _, r := range rows[:2] {
		n += len(r)
	}
	return n
}
