// Package driver mixes both executor modes the way the planner does: one
// scope can pull rows from the row Operator and batches from the
// vectorized Operator. Delegation must work through either interface — the
// analyzer collects every Operator in scope, not just the first one found.
package driver

import (
	exec "fixture.example/cancelpoll"
	"fixture.example/cancelpoll/vec"
)

// drainRows pulls from the row Operator: accepted, the child polls per
// tuple.
func drainRows(ctx *exec.Ctx, op exec.Operator) (int, error) {
	n := 0
	for {
		_, ok, err := op.Next()
		if err != nil || !ok {
			return n, err
		}
		n++
	}
}

// drainBatches pulls from the vectorized Operator: accepted, the child
// polls per batch.
func drainBatches(ctx *exec.Ctx, op vec.Operator) (int, error) {
	n := 0
	for {
		b, err := op.Next()
		if err != nil || b == nil {
			return n, err
		}
		n += len(b.Rows)
	}
}
