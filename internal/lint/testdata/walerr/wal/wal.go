// Package wal is the write-ahead-log stand-in: its Append/Sync errors
// are durability points the walerr analyzer guards.
package wal

// Log is the WAL handle.
type Log struct{}

func (l *Log) Append(rec []byte) error { return nil }
func (l *Log) Sync() error             { return nil }
