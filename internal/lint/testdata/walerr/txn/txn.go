// Package txn is the transaction-manager stand-in: Commit/Abort errors
// are durability points the walerr analyzer guards.
package txn

// Txn is one transaction.
type Txn struct{}

// Manager commits and aborts transactions.
type Manager struct{}

func (m *Manager) Commit(t *Txn) error { return nil }
func (m *Manager) Abort(t *Txn) error  { return nil }
