// Package app consumes the durability layers. The broken shapes discard
// or strand commit/sync errors; the clean shapes propagate, join, or
// export them through a captured variable.
package app

import (
	"errors"

	"fixture.example/walerr/txn"
	"fixture.example/walerr/wal"
)

// commitDropped discards every durability error outright.
func commitDropped(w *wal.Log, m *txn.Manager, t *txn.Txn) {
	w.Append(nil)
	_ = w.Sync()
	m.Commit(t)
}

// commitDead assigns the error but lets the quiet path reach function
// exit without ever reading it.
func commitDead(m *txn.Manager, t *txn.Txn, verbose bool) {
	err := m.Commit(t)
	if verbose {
		println(err)
	}
}

// commitChecked propagates the error: clean.
func commitChecked(m *txn.Manager, t *txn.Txn) error {
	if err := m.Commit(t); err != nil {
		return err
	}
	return nil
}

// abortJoined folds the abort error into the statement error: clean.
func abortJoined(m *txn.Manager, t *txn.Txn, runErr error) error {
	if err := m.Abort(t); err != nil {
		runErr = errors.Join(runErr, err)
	}
	return runErr
}

// syncNamed assigns into a named result, so every return reads it: clean.
func syncNamed(w *wal.Log) (err error) {
	err = w.Sync()
	return
}

// commitCaptured assigns to a variable captured from the enclosing
// function — the profiled-section shape. The closure scope never reads
// err, but the assignment propagates out by construction: clean.
func commitCaptured(m *txn.Manager, t *txn.Txn) error {
	var err error
	run(func() { err = m.Commit(t) })
	return err
}

func run(f func()) { f() }
