module fixture.example/walerr

go 1.22
