// Package retirepath exercises the energy-conservation analyzer: a
// profiled statement section must be retired into the ledgers on every
// path — success, error, and early return alike — or the measured
// joules vanish between the per-query and per-session views.
package retirepath

// Breakdown is the profiled energy result.
type Breakdown struct{ E float64 }

// Prof measures one section.
type Prof struct{}

func (p *Prof) Profile(name string, f func()) Breakdown {
	f()
	return Breakdown{}
}

// Ledger accumulates retired breakdowns.
type Ledger struct{}

func (l *Ledger) retire(b Breakdown)       {}
func (l *Ledger) retireEnergy(b Breakdown) {}

type session struct {
	prof   *Prof
	ledger *Ledger
}

// executeLeaky retires only the success path: the error return exits
// with the measured energy unaccounted.
func (s *session) executeLeaky(run func() error) error {
	var runErr error
	b := s.prof.Profile("execute", func() { runErr = run() })
	if runErr != nil {
		return runErr
	}
	s.ledger.retire(b)
	return nil
}

// executeBalanced accounts both paths: clean.
func (s *session) executeBalanced(run func() error) error {
	var runErr error
	b := s.prof.Profile("execute", func() { runErr = run() })
	if runErr != nil {
		s.ledger.retireEnergy(b)
		return runErr
	}
	s.ledger.retire(b)
	return nil
}
