module fixture.example/retirepath

go 1.22
