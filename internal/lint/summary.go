package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file computes the chargeflow engine's interprocedural summary: for
// every function declared in the module, whether calling it may charge the
// meter (advance PMU counters through the memory hierarchy or an explicit
// Charge* helper), may dispatch per-tuple cost (Ctx.TupleCost transitively,
// which both charges and polls), and may poll cancellation. Helpers that
// charge on behalf of callers — vec.Metered sections, Ctx.PollEvery,
// Device.ChargeChain — therefore propagate to the loops that call them,
// which is what lifts chargepath from per-function AST matching to a real
// dataflow analysis.
//
// Resolution is intentionally conservative: only statically-resolved callees
// (package functions and methods found through go/types object identity)
// propagate. Interface calls resolve to nothing — an interface method call
// is never assumed to charge, so delegating work through an interface does
// not silently satisfy a charging obligation. (Loops that pull through the
// executor Operator interfaces are handled by the analyzers' delegation
// rules instead.)

// chargeFacts is one function's summary bits. The may-facts answer "could
// a call to this function charge/dispatch/poll"; the must-facts answer the
// stronger "does every terminating path through this function
// charge/dispatch", which the chargepath analyzer needs to accept a helper
// call as satisfying a loop's charging obligation.
type chargeFacts struct {
	charges    bool // may advance hierarchy counters / Charge* / AddIdle
	dispatches bool // may call Ctx.TupleCost (charged per-tuple dispatch)
	polls      bool // may check cancellation (Poll / PollEvery / TupleCost)

	mustCharges    bool // every path entry->exit charges
	mustDispatches bool // every path entry->exit dispatches
}

// summary maps declared functions (their types.Object) to facts.
type summary struct {
	facts map[types.Object]*chargeFacts
}

// chargeMethodNames are the hierarchy / machine primitives that directly
// charge energy when called on any receiver.
func isDirectChargeName(name string) bool {
	switch name {
	case "Load", "Store", "LoadRepeat", "StoreRepeat",
		"LoadRange", "StoreRange", "Exec", "AddIdle",
		"EvalCost", "EmitRow", "Compute":
		return true
	}
	return strings.HasPrefix(name, "Charge")
}

// isDirectPollName mirrors cancelpoll's poll set.
func isDirectPollName(name string) bool {
	return name == "Poll" || name == "PollEvery" || name == "TupleCost"
}

// buildSummary computes the fixed point of the may-charge/may-dispatch/
// may-poll facts over every function declared in the program's module
// packages. The iteration is a simple worklist over a static call graph;
// with monotone boolean facts it converges in at most a few passes.
func buildSummary(prog *Program) *summary {
	s := &summary{facts: make(map[types.Object]*chargeFacts)}

	// callees[f] lists the declared functions f statically calls.
	callees := make(map[types.Object][]types.Object)
	// decls maps objects back to their bodies for the direct-fact scan.
	type declFn struct {
		pkg  *Package
		body *ast.BlockStmt
	}
	decls := make(map[types.Object]declFn)

	for _, pkg := range prog.all {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				decls[obj] = declFn{pkg: pkg, body: fd.Body}
				s.facts[obj] = &chargeFacts{}
			}
		}
	}

	// Direct facts + static call edges. Closures count toward their
	// enclosing declaration: a charge inside a func literal still happens
	// when the surrounding code runs it, and treating it as part of the
	// declaration errs toward "may charge", which is the safe direction
	// for a may-analysis.
	for obj, fn := range decls {
		f := s.facts[obj]
		ast.Inspect(fn.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var name string
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if isDirectChargeName(name) {
				f.charges = true
			}
			if name == "TupleCost" {
				// TupleCost is dispatch + charge + poll in one call.
				f.dispatches = true
				f.charges = true
			}
			if isDirectPollName(name) {
				f.polls = true
			}
			if callee := calleeObject(fn.pkg, call); callee != nil {
				if _, declared := decls[callee]; declared {
					callees[obj] = append(callees[obj], callee)
				}
			}
			return true
		})
	}

	// Fixed point: propagate facts callee -> caller.
	for changed := true; changed; {
		changed = false
		for obj, cs := range callees {
			f := s.facts[obj]
			for _, c := range cs {
				cf := s.facts[c]
				if cf == nil {
					continue
				}
				if cf.charges && !f.charges {
					f.charges, changed = true, true
				}
				if cf.dispatches && !f.dispatches {
					f.dispatches, changed = true, true
				}
				if cf.polls && !f.polls {
					f.polls, changed = true, true
				}
			}
		}
	}

	// Must fixed point: a function must-charge (must-dispatch) when every
	// entry->exit path in its CFG passes a statement that directly charges
	// (dispatches) or calls a must-charging (must-dispatching) callee.
	// Facts only flip false->true, so iterating guaranteedOn to a fixed
	// point terminates; the may-facts gate skips functions that cannot
	// possibly acquire the must-fact.
	for changed := true; changed; {
		changed = false
		for obj, fn := range decls {
			f := s.facts[obj]
			pkg := fn.pkg
			var g *cfg
			if f.charges && !f.mustCharges {
				g = prog.cfgOf(fn.body)
				if guaranteedOn(g.entry, g.exit, func(st ast.Stmt) bool {
					return s.stmtMustCharges(pkg, st)
				}) {
					f.mustCharges, changed = true, true
				}
			}
			if f.dispatches && !f.mustDispatches {
				if g == nil {
					g = prog.cfgOf(fn.body)
				}
				if guaranteedOn(g.entry, g.exit, func(st ast.Stmt) bool {
					return s.stmtMustDispatches(pkg, st)
				}) {
					f.mustDispatches, changed = true, true
				}
			}
		}
	}
	return s
}

// stmtMustCharges reports whether executing this statement is guaranteed
// to charge the meter: it lexically contains a direct charging primitive
// call or a call to a must-charging declared function. (Calls inside
// function literals count — the Profile(func(){...}) shapes in this
// codebase run their literal synchronously.)
func (s *summary) stmtMustCharges(pkg *Package, st ast.Stmt) bool {
	return s.stmtMust(pkg, st, func(name string, f *chargeFacts) bool {
		if isDirectChargeName(name) || name == "TupleCost" {
			return true
		}
		return f != nil && f.mustCharges
	})
}

// stmtMustDispatches is stmtMustCharges for the per-batch dispatch fact
// (Ctx.TupleCost transitively on every path).
func (s *summary) stmtMustDispatches(pkg *Package, st ast.Stmt) bool {
	return s.stmtMust(pkg, st, func(name string, f *chargeFacts) bool {
		if name == "TupleCost" {
			return true
		}
		return f != nil && f.mustDispatches
	})
}

func (s *summary) stmtMust(pkg *Package, st ast.Stmt, hit func(string, *chargeFacts) bool) bool {
	found := false
	root := stmtEvalNode(st)
	if root == nil {
		return false
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		var f *chargeFacts
		if callee := calleeObject(pkg, call); callee != nil {
			f = s.facts[callee]
		}
		if hit(name, f) {
			found = true
			return false
		}
		return true
	})
	return found
}

// stmtEvalNode returns the AST fragment a CFG node for this statement
// actually evaluates: compound statements (if/for/range/switch/select) are
// represented in the CFG by their condition/tag alone — their nested
// statements have their own nodes — so fact queries must not descend into
// them, or a conditional charge inside a branch would look unconditional.
// Simple statements evaluate themselves.
func stmtEvalNode(st ast.Stmt) ast.Node {
	switch s := st.(type) {
	case *ast.IfStmt:
		if s.Cond != nil {
			return s.Cond
		}
		return nil
	case *ast.ForStmt:
		if s.Cond != nil {
			return s.Cond
		}
		return nil
	case *ast.RangeStmt:
		return s.X
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return s.Tag
		}
		return nil
	case *ast.TypeSwitchStmt:
		return s.Assign
	case *ast.SelectStmt, *ast.BlockStmt, *ast.LabeledStmt:
		return nil
	}
	return st
}

// calleeObject resolves a call expression to the types.Object of its callee
// when it is a statically-known function or method of this module; nil for
// interface calls, builtins, and function values.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			// Method call: concrete receivers resolve to the declaration;
			// interface receivers resolve to the interface method, which
			// has no body in decls and therefore propagates nothing.
			return sel.Obj()
		}
		// Package-qualified call (pkg.Fn).
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}

// callFacts returns the summary facts a call expression contributes at its
// call site: direct primitive names count immediately, declared callees
// contribute their fixed-point facts.
func (s *summary) callFacts(pkg *Package, call *ast.CallExpr) chargeFacts {
	var out chargeFacts
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if isDirectChargeName(name) {
		out.charges = true
	}
	if name == "TupleCost" {
		out.dispatches = true
		out.charges = true
	}
	if isDirectPollName(name) {
		out.polls = true
	}
	if callee := calleeObject(pkg, call); callee != nil {
		if f := s.facts[callee]; f != nil {
			out.charges = out.charges || f.charges
			out.dispatches = out.dispatches || f.dispatches
			out.polls = out.polls || f.polls
		}
	}
	return out
}

// stmtFacts folds callFacts over every call lexically inside one statement
// (not descending into function literals: a closure's body runs when the
// closure runs, not when the statement defining it executes — except that
// passing a closure to a call usually runs it synchronously; the summary
// already attributed closure facts to the enclosing declaration, and for
// statement-level queries the conservative choice is to count calls in
// literals too, since Profile(func(){...}) shapes are synchronous in this
// codebase).
func (s *summary) stmtFacts(pkg *Package, st ast.Stmt) chargeFacts {
	var out chargeFacts
	n := stmtEvalNode(st)
	if n == nil {
		return out
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			f := s.callFacts(pkg, call)
			out.charges = out.charges || f.charges
			out.dispatches = out.dispatches || f.dispatches
			out.polls = out.polls || f.polls
		}
		return true
	})
	return out
}
