package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// AnalyzerLockOrder enforces the documented locking model of the engine
// stack (see the internal/db/engine package comment): the engine's short
// catalog lock is always taken before the transaction manager's commit
// lock, which is always taken before the storage layer's row lock, which
// is always taken before anything in the btree layer — engine → txn →
// storage → btree. It additionally flags three shapes that have bitten
// concurrent Go systems forever and that `make race` can only catch when a
// test happens to interleave badly:
//
//   - copying a value whose type contains a sync.Mutex/RWMutex/Once/
//     WaitGroup (the copy silently forks the lock state);
//   - blocking on a channel operation while holding a lock (the scheduler
//     and store-provision paths must release before waiting, or a slow
//     peer deadlocks every other session);
//   - reintroducing the retired statement-scoped store lock: an exported
//     Lock/RLock/Unlock/RUnlock wrapper method on an engine-package type.
//     That pattern (Shared.RLock held for a whole statement) serialized
//     readers against writers and was replaced by MVCC snapshots; new
//     code must not grow it back.
//
// The analysis is per-function and linear: function literals are separate
// scopes (they usually run on other goroutines), an Unlock anywhere clears
// the held state for the rest of the scan (under-reporting is the right
// bias for a required CI gate), and a deferred Unlock holds to scope end.
var AnalyzerLockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "engine→txn→storage→btree lock ordering, mutex copies, locks held across channel ops, retired store-lock wrappers",
	Run:  runLockOrder,
}

// lockLevels orders the layers: lower acquires first. Classification is by
// the final import-path element of the package declaring the lock's owner
// type, so the rule applies to the real engine/txn/storage/btree packages
// and to fixture packages of the same names alike.
var lockLevels = map[string]int{
	"engine":  0,
	"txn":     1,
	"storage": 2,
	"btree":   3,
}

// heldLock is one acquisition the linear scan still considers live.
type heldLock struct {
	expr     string // rendered base expression, for release matching
	pkgBase  string // declaring package's final path element
	level    int    // lockLevels rank, -1 when unordered
	deferred bool   // released only at scope end
}

func runLockOrder(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fn := range funcScopes(file) {
			scanLockScope(pass, fn)
		}
		checkMutexCopies(pass, file)
		checkStoreLockWrappers(pass, file)
	}
}

// checkStoreLockWrappers flags exported Lock/RLock/Unlock/RUnlock methods
// declared on engine-package types — the retired Shared.mu pattern, where
// every statement held a store-scoped RWMutex for its whole execution.
// MVCC snapshots replaced it; an exported lock wrapper on the engine layer
// means some caller is again serializing statements on the store.
func checkStoreLockWrappers(pass *Pass, file *ast.File) {
	if path.Base(pass.Pkg.Path) != "engine" {
		return
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || !fd.Name.IsExported() {
			continue
		}
		if !isLockName(fd.Name.Name) && !isUnlockName(fd.Name.Name) {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"exported %s method on an engine type resurrects the retired statement-scoped store lock; statements read MVCC snapshots instead",
			fd.Name.Name)
	}
}

// scanLockScope walks one function body in source order tracking held
// locks, reporting order inversions and channel operations under a lock.
func scanLockScope(pass *Pass, fn funcScope) {
	var held []heldLock
	release := func(expr string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].expr == expr && !held[i].deferred {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
		// Unlock with no matching tracked Lock (e.g. branch-local
		// lock/unlock pairs): be conservative and clear non-deferred
		// state so later channel ops are not falsely flagged.
		for i := len(held) - 1; i >= 0; i-- {
			if !held[i].deferred {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	reportChan := func(n ast.Node, what string) {
		if len(held) == 0 {
			return
		}
		pass.Reportf(n.Pos(), "%s while holding %s lock; release before blocking on a channel",
			what, held[len(held)-1].expr)
	}
	inspectShallow(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if base, name, ok := lockCall(pass, n.Call); ok && isUnlockName(name) {
				for i := range held {
					if held[i].expr == base {
						held[i].deferred = true
					}
				}
			}
			// Don't descend: the deferred call runs at scope end.
			return false
		case *ast.CallExpr:
			base, name, ok := lockCall(pass, n)
			if !ok {
				return true
			}
			if isUnlockName(name) {
				release(base)
				return true
			}
			lvl, pkgBase := lockLevel(pass, n)
			for _, h := range held {
				if h.level >= 0 && lvl >= 0 && h.level > lvl {
					pass.Reportf(n.Pos(),
						"acquires %s lock (%s) while holding %s lock (%s); documented order is engine → txn → storage → btree",
						pkgBase, base, h.pkgBase, h.expr)
				}
			}
			held = append(held, heldLock{expr: base, pkgBase: pkgBase, level: lvl})
			return true
		case *ast.SendStmt:
			reportChan(n, "channel send")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportChan(n, "channel receive")
			}
			return true
		case *ast.SelectStmt:
			reportChan(n, "select")
			return true
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					reportChan(n, "range over channel")
				}
			}
			return true
		}
		return true
	})
}

// lockNames / unlock classification.
func isLockName(name string) bool {
	switch name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return true
	}
	return false
}

func isUnlockName(name string) bool {
	switch name {
	case "Unlock", "RUnlock":
		return true
	}
	return false
}

// lockCall decides whether the call is a mutex (un)lock and returns the
// rendered base expression owning the lock plus the method name. It
// recognizes direct sync.Mutex/RWMutex method calls (x.mu.Lock()) and
// wrapper methods named exactly Lock/RLock/Unlock/RUnlock on a named type
// (engine.Shared.RLock style).
func lockCall(pass *Pass, call *ast.CallExpr) (base string, name string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	name = sel.Sel.Name
	if !isLockName(name) && !isUnlockName(name) {
		return "", "", false
	}
	recv := ast.Unparen(sel.X)
	if isSyncLocker(pass.TypeOf(recv)) {
		// x.mu.Lock(): the owner is the struct holding the mutex field.
		if inner, ok := recv.(*ast.SelectorExpr); ok {
			return exprString(inner.X), name, true
		}
		return exprString(recv), name, true
	}
	// Wrapper method: receiver must be a named (possibly pointer) type
	// declared in some package — sync.Cond etc. excluded above.
	if namedOf(pass.TypeOf(recv)) != nil {
		return exprString(recv), name, true
	}
	return "", "", false
}

// lockLevel ranks the acquisition in the engine→storage→btree order.
func lockLevel(pass *Pass, call *ast.CallExpr) (int, string) {
	sel := call.Fun.(*ast.SelectorExpr)
	recv := ast.Unparen(sel.X)
	t := pass.TypeOf(recv)
	if isSyncLocker(t) {
		if inner, ok := recv.(*ast.SelectorExpr); ok {
			t = pass.TypeOf(inner.X)
		}
	}
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return -1, "unordered"
	}
	base := path.Base(named.Obj().Pkg().Path())
	if lvl, ok := lockLevels[base]; ok {
		return lvl, base
	}
	return -1, base
}

// isSyncLocker reports whether t is sync.Mutex or sync.RWMutex (by value
// or pointer).
func isSyncLocker(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// namedOf unwraps pointers to a named type.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named
}

// checkMutexCopies flags copies of lock-bearing values: assignment from an
// existing location (identifier, selector, deref, index), passing such a
// value as a call argument, or ranging over a slice/array of them. Fresh
// construction (composite literals, call results) is fine — the lock state
// is zero.
func checkMutexCopies(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				checkCopyExpr(pass, rhs)
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				checkCopyExpr(pass, v)
			}
		case *ast.CallExpr:
			if _, _, isLock := lockCall(pass, n); isLock {
				return true
			}
			for _, arg := range n.Args {
				checkCopyExpr(pass, arg)
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				t := pass.TypeOf(n.Value)
				if t != nil && containsLock(t, nil) {
					pass.Reportf(n.Value.Pos(), "range copies %s values containing a mutex; iterate by index or store pointers", t.String())
				}
			}
		}
		return true
	})
}

// checkCopyExpr reports when the expression copies a lock-bearing value
// out of an existing location.
func checkCopyExpr(pass *Pass, e ast.Expr) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypeOf(e)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if containsLock(t, nil) {
		pass.Reportf(e.Pos(), "copies %s which contains a mutex; pass a pointer instead", t.String())
	}
}

// containsLock reports whether the type transitively contains a sync lock
// (not through pointers).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if named := namedOf(t); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
		switch named.Obj().Name() {
		case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Pool", "Map":
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}
