package lint

import (
	"go/ast"
	"strings"
)

// AnalyzerRetirePath proves that statement execution retires its measured
// energy on every path. The server's accounting contract: each profiled
// statement section (prof.Profile(...) returning a core.Breakdown) must be
// folded into the session/worker ledgers whether the statement succeeds,
// fails, or unwinds early — otherwise the energy was measured, the device
// counters advanced, and the joules simply vanish from the ledger
// (energy-conservation violation between the per-query and per-session
// views).
//
// The analysis gates on scopes that both profile and retire (a scope with
// a Profile call but no retire-family call is a measurement harness, not
// statement execution), then checks each Profile-result variable with CFG
// liveness: no path from the Profile call to function exit may avoid every
// statement that consumes the breakdown.
var AnalyzerRetirePath = &Analyzer{
	Name:      "retirepath",
	Doc:       "profiled statement breakdowns must be retired to the ledgers on every path, including error and early-return paths",
	WaiverKey: "retirepath",
	Run:       runRetirePath,
}

func runRetirePath(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, fs := range funcScopes(f) {
			checkRetireScope(p, fs)
		}
	}
}

func checkRetireScope(p *Pass, fs funcScope) {
	hasProfile, hasRetire := false, false
	inspectShallow(fs.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name == "Profile" {
			hasProfile = true
		}
		if strings.Contains(strings.ToLower(name), "retire") {
			hasRetire = true
		}
		return true
	})
	if !hasProfile || !hasRetire {
		return
	}

	g := p.Prog.cfgOf(fs.body)
	inspectShallow(fs.body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 || len(st.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Profile" {
			return true
		}
		id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		def := g.byStmt[ast.Stmt(st)]
		if def == nil {
			return true
		}
		consumes := func(s ast.Stmt) bool {
			if s == ast.Stmt(st) {
				return false
			}
			return stmtMentions(p, s, obj)
		}
		if avoidSearch(def, map[*cnode]bool{g.exit: true}, consumes) {
			p.Reportf(st.Pos(),
				"%s: profiled breakdown %q can reach function exit without being retired to the ledger; every path (success, error, early return) must account the measured energy",
				fs.name, obj.Name())
		}
		return true
	})
}
