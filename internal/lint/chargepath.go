package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerChargePath proves energy-attribution soundness over the executor:
// every loop that advances tuples, batches, pages or version chains in the
// hot packages must charge the energy meter on every iteration path — the
// invariant the paper's micro-measurements depend on, since an uncharged
// loop silently attributes its traffic to the wrong component (or to
// nothing). The analysis runs on the chargeflow engine (cfg.go,
// dataflow.go, summary.go): statement-level CFGs plus an interprocedural
// may/must charge summary, so helpers that charge on behalf of callers
// (vec.Metered sections, chargeKernel, Device.Charge*) satisfy the
// obligation of the loops that call them.
//
// Three rules, in decreasing specificity:
//
//  1. Pull loops (the body pulls a batch via a Next/NextBatch call): no
//     iteration that consumes a pulled batch may complete without touching
//     the meter (a charge or a cancellation poll). This catches the
//     classic "empty batch: continue" fast path skipping Poll.
//
//  2. Element loops (classified by what they iterate: element slices,
//     bounded windows, Len/Cap-bounded counters, batch/vector payloads,
//     version-chain hops): some charge must cover each iteration. The
//     charge may be in the body (may-charge on every completing path, or a
//     touch on every path plus a lexical charge), guaranteed on every path
//     from an enclosing anchor to the loop (batch-granular charging before
//     a per-element loop), or guaranteed between loop exit and the end of
//     the enclosing iteration (charging after the loop, chargeKernel
//     style).
//
//  3. Vectorized dispatch (package vec only): element loops must also be
//     covered by a per-batch dispatch charge (Ctx.TupleCost) — in the
//     body, dominating the loop from an anchor, or guaranteed after it
//     before the enclosing iteration completes. Payload charges alone do
//     not pay the interpretation overhead the model attributes per batch.
//
// Plus one boundary rule: a Next method returning (*Batch, error) that
// emits via element loops without pulling from a child must poll
// cancellation directly (Ctx.Poll/PollEvery) — emit-only operators are the
// top of the pull chain and nobody polls on their behalf.
//
// Setup-only loops (allocation, precomputation whose cost is charged
// elsewhere) are waived with //lint:nocharge on or above the loop.
var AnalyzerChargePath = &Analyzer{
	Name:      "chargepath",
	Doc:       "executor loops advancing tuples/batches/pages/version chains must charge the energy meter on every path",
	WaiverKey: "nocharge",
	Run:       runChargePath,
}

// chargePathPackages are the import-path basenames under analysis.
var chargePathPackages = map[string]bool{
	"exec": true, "vec": true, "btree": true, "storage": true, "txn": true,
}

// elemTypeNames are the named types whose slices/values mark a loop as
// advancing elements of the data plane.
var elemTypeNames = map[string]bool{
	"Row": true, "Version": true, "Record": true,
	"Batch": true, "Vector": true, "Page": true,
}

func pathBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

func runChargePath(p *Pass) {
	if !chargePathPackages[pathBase(p.Pkg.Path)] {
		return
	}
	sum := p.Prog.chargeSummary()
	isVec := pathBase(p.Pkg.Path) == "vec"
	for _, f := range p.Pkg.Files {
		for _, fs := range funcScopes(f) {
			checkChargeScope(p, sum, fs, isVec)
		}
		if isVec {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					checkEmitBoundary(p, fd)
				}
			}
		}
	}
}

// checkChargeScope applies the pull/element/dispatch rules to every loop in
// one function scope.
func checkChargeScope(p *Pass, sum *summary, fs funcScope, isVec bool) {
	var loops []ast.Stmt
	inspectShallow(fs.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, n)
		case *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	g := p.Prog.cfgOf(fs.body)

	mayCharge := func(st ast.Stmt) bool { return sum.stmtFacts(p.Pkg, st).charges }
	touch := func(st ast.Stmt) bool {
		f := sum.stmtFacts(p.Pkg, st)
		return f.charges || f.polls
	}
	mustCharge := func(st ast.Stmt) bool { return sum.stmtMustCharges(p.Pkg, st) }
	mustDispatch := func(st ast.Stmt) bool { return sum.stmtMustDispatches(p.Pkg, st) }

	counts := countVarObjects(p, fs.body)

	for _, loop := range loops {
		// Anchors: enclosing loop heads, innermost first, then scope entry.
		var anchors []*cnode
		var iterEnd *cnode = g.exit
		for _, outer := range enclosingLoops(loops, loop) {
			if n := g.byStmt[outer]; n != nil {
				anchors = append(anchors, n)
				if iterEnd == g.exit {
					iterEnd = n // innermost enclosing head
				}
			}
		}
		anchors = append(anchors, g.entry)
		loopHead := g.byStmt[loop]
		if loopHead == nil {
			continue
		}

		if pulls := pullStmts(p, g, loop); len(pulls) > 0 {
			// Rule 1: pull loops.
			pullPred := func(st ast.Stmt) bool { return pulls[st] }
			if iterationCompletes(g, loop, pullPred, touch) {
				p.Reportf(loop.Pos(),
					"%s: loop can pull a batch and complete the iteration without charging or polling the meter; charge or Poll on every path (or waive with //lint:nocharge)",
					fs.name)
			}
			continue
		}

		kind := classifyElemLoop(p, loop, counts)
		if kind == "" {
			continue
		}

		// Rule 2: some charge covers each iteration.
		chargeOK := !iterationCompletes(g, loop, nil, mayCharge) // A: body charges on every completing path
		if !chargeOK {                                           // B: body touches on every path and charges somewhere
			chargeOK = !iterationCompletes(g, loop, nil, touch) && bodyHasStmt(g, loop, mayCharge)
		}
		for i := 0; !chargeOK && i < len(anchors); i++ { // C: charge dominates the loop from an anchor
			chargeOK = guaranteedOn(anchors[i], loopHead, mustCharge)
		}
		if !chargeOK { // C': charge guaranteed after the loop, before the enclosing iteration ends (or scope exit)
			if after := g.afterOf[loop]; after != nil {
				chargeOK = !avoidSearch(after, map[*cnode]bool{iterEnd: true, g.exit: true}, mustCharge)
			}
		}
		if !chargeOK {
			p.Reportf(loop.Pos(),
				"%s: %s can complete an iteration without charging the meter, and no charge is guaranteed before or after the loop (waive setup-only loops with //lint:nocharge)",
				fs.name, kind)
			continue
		}

		// Rule 3: vectorized loops also need the per-batch dispatch.
		if !isVec {
			continue
		}
		dispatchOK := bodyHasStmt(g, loop, mustDispatch)
		for i := 0; !dispatchOK && i < len(anchors); i++ {
			dispatchOK = guaranteedOn(anchors[i], loopHead, mustDispatch)
		}
		if !dispatchOK {
			if after := g.afterOf[loop]; after != nil {
				dispatchOK = !avoidSearch(after, map[*cnode]bool{iterEnd: true, g.exit: true}, mustDispatch)
			}
		}
		if !dispatchOK {
			p.Reportf(loop.Pos(),
				"%s: %s has no per-batch dispatch charge: no Ctx.TupleCost in the body, dominating the loop, or guaranteed after it (waive with //lint:nocharge)",
				fs.name, kind)
		}
	}
}

// enclosingLoops returns the loops (from the same scope's loop list) that
// lexically enclose target, innermost first.
func enclosingLoops(loops []ast.Stmt, target ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, l := range loops {
		if l != target && l.Pos() <= target.Pos() && target.End() <= l.End() {
			out = append(out, l)
		}
	}
	// Innermost = latest starting position.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Pos() > out[i].Pos() {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// bodyHasStmt reports whether any statement inside the loop body satisfies
// the predicate.
func bodyHasStmt(g *cfg, loop ast.Stmt, pred stmtPred) bool {
	for n := range g.loopBodyNodes(loop) {
		if n.matches(pred) {
			return true
		}
	}
	return false
}

// pullStmts returns the loop-body statements that pull a batch from a child
// operator: a call to a method named Next/NextBatch whose first result is a
// *Batch or a []Row.
func pullStmts(p *Pass, g *cfg, loop ast.Stmt) map[ast.Stmt]bool {
	out := map[ast.Stmt]bool{}
	for n := range g.loopBodyNodes(loop) {
		if n.stmt == nil {
			continue
		}
		if stmtHasPull(p, n.stmt) {
			out[n.stmt] = true
		}
	}
	return out
}

func stmtHasPull(p *Pass, st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Next" && sel.Sel.Name != "NextBatch") {
			return true
		}
		if isBatchPull(p.TypeOf(call)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBatchPull reports whether a call-result type delivers a batch of
// tuples: first result *Batch (any package's named Batch) or []Row.
func isBatchPull(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(0).Type()
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch tt := t.(type) {
	case *types.Named:
		if tt.Obj().Name() == "Batch" {
			return true
		}
		if sl, ok := tt.Underlying().(*types.Slice); ok {
			return isNamedElem(sl.Elem(), "Row")
		}
	case *types.Slice:
		return isNamedElem(tt.Elem(), "Row")
	}
	return false
}

func isNamedElem(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// namedElemType reports whether t (after stripping one pointer) is one of
// the data-plane element types.
func namedElemType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && elemTypeNames[named.Obj().Name()]
}

// elemSliceType reports whether t is a slice/array of data-plane elements.
func elemSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return namedElemType(u.Elem())
	case *types.Array:
		return namedElemType(u.Elem())
	}
	return false
}

// countVarObjects collects the variables in this scope assigned from an
// element count: x.Len() / x.Cap() on a Batch or Vector, or len() of an
// element slice. Loops bounded by these variables iterate per element.
func countVarObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isCountCall(p, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.Pkg.Info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := p.Pkg.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isCountCall reports whether e is an element-count expression.
func isCountCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "len" && len(call.Args) == 1 {
			return elemSliceType(p.TypeOf(call.Args[0]))
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Len" || fun.Sel.Name == "Cap" {
			return namedElemType(p.TypeOf(fun.X))
		}
	}
	return false
}

// classifyElemLoop decides whether the loop advances data-plane elements
// and returns a short description for diagnostics ("" = not classified).
func classifyElemLoop(p *Pass, loop ast.Stmt, counts map[types.Object]bool) string {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		if t := p.TypeOf(l.X); elemSliceType(t) {
			return "loop over " + types.TypeString(t, types.RelativeTo(p.Pkg.Types))
		}
		if se, ok := ast.Unparen(l.X).(*ast.SliceExpr); ok && se.Low != nil && se.High != nil {
			return "loop over window " + exprString(se.X) + "[lo:hi]"
		}
	case *ast.ForStmt:
		if l.Cond != nil && condBoundByCount(p, l.Cond, counts) {
			return "element-count bounded loop"
		}
	}
	// Body-shape triggers, shared by both loop forms.
	body := loopBody(loop)
	if body == nil {
		return ""
	}
	desc := ""
	inspectShallow(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.IndexExpr:
			if elemSliceType(p.TypeOf(n.X)) {
				desc = "loop indexing " + exprString(n.X)
			}
		case ast.Expr:
			if namedElemType(p.TypeOf(n)) {
				desc = "loop touching batch/vector data"
			}
		case *ast.AssignStmt:
			if isChainHop(n) {
				desc = "version-chain walk"
			}
		}
		return true
	})
	return desc
}

func loopBody(loop ast.Stmt) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// condBoundByCount reports whether the loop condition is bounded by an
// element count: a count call inline, or a variable assigned from one.
func condBoundByCount(p *Pass, cond ast.Expr, counts map[types.Object]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isCountCall(p, n) {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := p.Pkg.Info.Uses[n]; obj != nil && counts[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isChainHop matches x = <selector/index path rooted at x> — walking a
// version chain or an intrusive list.
func isChainHop(as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	root := rootIdent(as.Rhs[0])
	if root == nil || root.Name != lhs.Name {
		return false
	}
	// Must actually traverse (not a self-assignment).
	_, isIdent := ast.Unparen(as.Rhs[0]).(*ast.Ident)
	return !isIdent
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// checkEmitBoundary enforces the boundary rule: an emit-only Next method
// (returns (*Batch, error), loops, never pulls from a child) must poll
// cancellation directly — it is the top of the pull chain.
func checkEmitBoundary(p *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || fd.Body == nil || fd.Name.Name != "Next" {
		return
	}
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 2 {
		return
	}
	if !isBatchPull(p.TypeOf(fd.Type.Results.List[0].Type)) {
		return
	}
	hasLoop, hasPull, hasPoll := false, false, false
	inspectShallow(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		case ast.Stmt:
			if stmtHasPull(p, n) {
				hasPull = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Poll" || sel.Sel.Name == "PollEvery" {
					hasPoll = true
				}
			}
		}
		return true
	})
	if hasLoop && !hasPull && !hasPoll {
		p.Reportf(fd.Name.Pos(),
			"%s.Next emits batches without pulling from a child and never polls cancellation; call Ctx.Poll or Ctx.PollEvery at the emit boundary",
			recvTypeName(fd))
	}
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return exprString(t)
}
